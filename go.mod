module ldb

go 1.22
