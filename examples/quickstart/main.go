// Quickstart: compile the paper's fib program for the SPARC with
// debugging, start it under a nub, plant a breakpoint, inspect
// variables, change one, and run to completion — the whole ldb
// pipeline in one page.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/nub"
	"ldb/internal/workload"
)

func run(w io.Writer) error {
	// 1. Compile and link with -g: PostScript symbol tables, anchor
	//    symbols, and a no-op at every stopping point.
	prog, err := driver.Build(
		[]driver.Source{{Name: "fib.c", Text: workload.Fib}},
		driver.Options{Arch: "sparc", Debug: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "compiled fib.c for %s: %d bytes of text\n",
		prog.Arch.Name(), len(prog.Image.Text))

	// 2. Start the target under its debug nub (the "child process"
	//    arrangement) and attach a debugger.
	client, _, proc, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		return err
	}
	d, err := core.New(w)
	if err != nil {
		return err
	}
	tgt, err := d.AttachClient("fib", client, prog.LoaderPS)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "attached; target stopped before main (%v)\n\n", client.Last)

	// 3. Plant a breakpoint at stopping point 7 of fib — the body of
	//    the first loop (the paper's own example).
	addr, err := tgt.BreakStop("fib", 7)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "breakpoint planted at %#x\n", addr)
	if _, err := tgt.ContinueToBreakpoint(); err != nil {
		return err
	}

	// 4. Inspect: values print by interpreting the PostScript printer
	//    procedures from the symbol table.
	for _, name := range []string{"i", "n", "a"} {
		fmt.Fprintf(w, "print %s:\t", name)
		if err := tgt.Print(name); err != nil {
			return err
		}
	}

	// 5. Walk the stack and show the abstract-memory DAG of Fig. 4.
	bt, _ := tgt.Backtrace(8)
	fmt.Fprintf(w, "\nbacktrace: %v\n\n", bt)
	fmt.Fprintln(w, tgt.Frames[0].Describe())

	// 6. Evaluate expressions through the expression server, including
	//    an assignment.
	for _, e := range []string{"a[i-1] + a[i-2]", "n * 2", "n = 6"} {
		v, err := tgt.EvalInt(e)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "eval %-18s = %d\n", e, v)
	}

	// 7. Remove the breakpoint and let the program finish: it now
	//    prints only 6 numbers because of the assignment.
	if err := tgt.Bpts.RemoveAll(); err != nil {
		return err
	}
	ev, err := tgt.Continue()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ntarget %v; its output: %s", ev, proc.Stdout.String())
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
