package main

import (
	"bytes"
	"flag"
	"os"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden transcript")

// hexAddr masks load addresses, which differ across layout changes
// that don't affect the example's behavior.
var hexAddr = regexp.MustCompile(`0x[0-9a-f]+`)

// TestGoldenTranscript runs the whole example and compares its output
// against the checked-in transcript, so the quickstart in the README
// cannot rot: if the pipeline's behavior changes, this fails until the
// golden is regenerated with -update.
func TestGoldenTranscript(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	got := hexAddr.ReplaceAll(buf.Bytes(), []byte("0xADDR"))
	const golden = "testdata/transcript.golden"
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("transcript changed (rerun with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
