// faulty demonstrates §4.2's signature scenario: a program that is not
// being debugged crashes; because the nub is loaded with every program,
// it catches the fault, preserves the state, and waits on the network
// for a debugger. ldb then attaches post-mortem, walks the stack, and
// finds the bad pointer.
package main

import (
	"fmt"
	"log"
	"net"
	"os"

	_ "ldb/internal/arch/sparc"
	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/machine"
	"ldb/internal/nub"
)

const buggy = `
int depth;
int *cursor;
int walk(int *p, int k) {
	depth = k;
	cursor = p;
	if (k == 3) p = (int *) 12;   /* the bug: a wild pointer */
	if (k > 5) return *p;
	return walk(p, k + 1) + *p;
}
int table[4];
int main() {
	table[0] = 42;
	return walk(table, 0);
}
`

func main() {
	prog, err := driver.Build([]driver.Source{{Name: "buggy.c", Text: buggy}},
		driver.Options{Arch: "sparc", Debug: true})
	if err != nil {
		log.Fatal(err)
	}

	// Run the program WITHOUT a debugger: the nub ignores its own
	// pause and lets it run free — until it faults.
	proc := machine.New(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	n := nub.New(proc)
	n.RunFree()
	fmt.Println("the program crashed while running free; its nub preserved the state")

	// The nub waits for a connection from ldb (§4.2).
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go n.ServeListener(l)
	fmt.Printf("nub waiting on %s; attaching...\n\n", l.Addr())

	d, err := core.New(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	client, conn, err := nub.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	tgt, err := d.AttachClient("buggy", client, prog.LoaderPS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stopped: %v\n", client.Last)
	bt, _ := tgt.Backtrace(16)
	fmt.Printf("backtrace: %v\n\n", bt)

	// Post-mortem inspection: what was the program doing?
	fmt.Print("print depth:\t")
	if err := tgt.Print("depth"); err != nil {
		log.Fatal(err)
	}
	fmt.Print("print cursor:\t")
	if err := tgt.Print("cursor"); err != nil {
		log.Fatal(err)
	}
	fmt.Print("print table:\t")
	if err := tgt.Print("table"); err != nil {
		log.Fatal(err)
	}

	// The faulting frame's parameter is the wild pointer.
	if v, err := tgt.EvalInt("p"); err == nil {
		fmt.Printf("\nin the faulting frame, p = %#x — the wild pointer\n", uint32(v))
	}
	if v, err := tgt.EvalInt("k"); err == nil {
		fmt.Printf("and k = %d, so the corruption happened %d frames ago\n", v, v-3)
	}
	// Walk down to the frame where the bug struck.
	for i := 0; ; i++ {
		if err := tgt.SelectFrame(i); err != nil {
			break
		}
		k, err := tgt.EvalInt("k")
		if err != nil {
			break
		}
		if k == 3 {
			fmt.Printf("frame #%d is walk(k=3): here `p = (int *) 12` planted the bug\n", i)
			break
		}
	}
}
