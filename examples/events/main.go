// events builds a small Dalek-style event-action tool above ldb's
// client interface (§6: "event-action debugging techniques seem well
// suited for implementation above ldb"): it plants breakpoints at
// interesting stopping points, and at every event records data instead
// of stopping, producing a trace and a histogram while the target runs
// to completion — the debugger as a library, not a REPL.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	_ "ldb/internal/arch/mips"
	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/nub"
	"ldb/internal/workload"
)

func run(w io.Writer) error {
	prog, err := driver.Build([]driver.Source{{Name: "queens.c", Text: workload.Queens}},
		driver.Options{Arch: "mips", Debug: true})
	if err != nil {
		return err
	}
	client, _, proc, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		return err
	}
	d, err := core.New(w)
	if err != nil {
		return err
	}
	tgt, err := d.AttachClient("queens", client, prog.LoaderPS)
	if err != nil {
		return err
	}

	// Event 1: every entry to place(r) — histogram the recursion depth.
	placeEntry, err := tgt.BreakProc("place")
	if err != nil {
		return err
	}
	// Event 2: every solution found (place returns 1 at r == 8): the
	// stopping point of `if (r == 8) return 1;`'s then-branch.
	stops, _, err := tgt.ProcStops("place")
	if err != nil {
		return err
	}
	// Stop 2 is `return 1` (0 entry, 1 if-condition, 2 return 1).
	solution, err := tgt.BreakStop("place", 2)
	if err != nil {
		return err
	}

	depth := map[int64]int{}
	solutions := 0
	ev, err := tgt.RunEvents(func(t *core.Target, ev *nub.Event) (bool, error) {
		switch ev.PC {
		case placeEntry:
			r, err := t.FetchScalar("r")
			if err != nil {
				return true, err
			}
			depth[r]++
		case solution:
			solutions++
			if solutions <= 3 {
				// Read the board through the expression server.
				var cells []string
				for c := 0; c < 8; c++ {
					v, err := t.EvalInt(fmt.Sprintf("cols[%d]", c))
					if err != nil {
						return true, err
					}
					cells = append(cells, fmt.Sprint(v))
				}
				fmt.Fprintf(w, "solution %d: columns %s\n", solutions, strings.Join(cells, " "))
			}
		}
		return false, nil // never stop: pure event-action
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "...\ntarget %v; its own output: %s\n", ev, strings.TrimSpace(proc.Stdout.String()))
	fmt.Fprintln(w, "calls to place() by recursion depth:")
	for r := int64(0); r < 9; r++ {
		if depth[r] > 0 {
			fmt.Fprintf(w, "  depth %d: %5d  %s\n", r, depth[r], strings.Repeat("▪", depth[r]/25+1))
		}
	}
	fmt.Fprintf(w, "solutions observed via breakpoint events: %d\n", solutions)
	_ = stops
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
