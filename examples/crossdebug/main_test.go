package main

import (
	"bytes"
	"flag"
	"os"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden transcript")

// The nub listens on an ephemeral TCP port and values print with load
// addresses; both are masked so the transcript is stable.
var (
	hexAddr = regexp.MustCompile(`0x[0-9a-f]+`)
	tcpPort = regexp.MustCompile(`127\.0\.0\.1:\d+`)
)

// TestGoldenTranscript drives both targets — m68k in-process and vax
// over TCP — and pins the interleaved cross-architecture session
// transcript.
func TestGoldenTranscript(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	got := hexAddr.ReplaceAll(buf.Bytes(), []byte("0xADDR"))
	got = tcpPort.ReplaceAll(got, []byte("127.0.0.1:PORT"))
	const golden = "testdata/transcript.golden"
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("transcript changed (rerun with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
