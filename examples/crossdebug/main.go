// crossdebug demonstrates §4.1 and §6: one ldb session debugging two
// targets on two different architectures simultaneously — one attached
// in-process, one over a TCP connection — with identical commands.
// Cross-architecture debugging is identical to single-architecture
// debugging; switching targets just rebinds the machine-dependent
// PostScript names (§5).
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"os"

	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/machine"
	"ldb/internal/nub"
	"ldb/internal/workload"
)

func run(w io.Writer) error {
	d, err := core.New(w)
	if err != nil {
		return err
	}

	// Target 1: big-endian 68020, as an in-process child.
	prog1, err := driver.Build([]driver.Source{{Name: "fib.c", Text: workload.Fib}},
		driver.Options{Arch: "m68k", Debug: true})
	if err != nil {
		return err
	}
	c1, _, _, err := nub.Launch(prog1.Arch, prog1.Image.Text, prog1.Image.Data, prog1.Image.Entry)
	if err != nil {
		return err
	}
	t1, err := d.AttachClient("m68k child", c1, prog1.LoaderPS)
	if err != nil {
		return err
	}

	// Target 2: little-endian VAX, over the network. The process runs
	// with its nub listening; ldb dials in — the target is not a child
	// of the debugger (§4.2).
	prog2, err := driver.Build([]driver.Source{{Name: "fib.c", Text: workload.Fib}},
		driver.Options{Arch: "vax", Debug: true})
	if err != nil {
		return err
	}
	proc2 := machine.New(prog2.Arch, prog2.Image.Text, prog2.Image.Data, prog2.Image.Entry)
	n2 := nub.New(proc2)
	n2.Start()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go n2.ServeListener(l)
	fmt.Fprintf(w, "vax target's nub listening on %s\n", l.Addr())
	c2, conn2, err := nub.Dial(l.Addr().String())
	if err != nil {
		return err
	}
	defer conn2.Close()
	t2, err := d.AttachClient("vax over tcp", c2, prog2.LoaderPS)
	if err != nil {
		return err
	}

	// The same session drives both with the same code.
	for _, tgt := range []*core.Target{t1, t2} {
		d.Switch(tgt)
		if _, err := tgt.BreakStop("fib", 7); err != nil {
			return err
		}
		if _, err := tgt.ContinueToBreakpoint(); err != nil {
			return err
		}
	}

	fmt.Fprintln(w, "\nboth targets stopped at stopping point 7 of fib; interleaved inspection:")
	for round := 0; round < 2; round++ {
		for _, tgt := range []*core.Target{t1, t2} {
			d.Switch(tgt)
			i, err := tgt.FetchScalar("i")
			if err != nil {
				return err
			}
			sum, err := tgt.EvalInt("a[i-1] + a[i-2]")
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  [%-12s %-5s] i=%d  a[i-1]+a[i-2]=%d  ", tgt.Name, tgt.Arch.Name(), i, sum)
			fmt.Fprintf(w, "print a: ")
			if err := tgt.Print("a"); err != nil {
				return err
			}
			if round == 0 {
				if _, err := tgt.ContinueToBreakpoint(); err != nil {
					return err
				}
			}
		}
	}

	// Run both to completion; byte order never mattered.
	fmt.Fprintln(w, "\nrunning both to completion:")
	for _, tgt := range []*core.Target{t1, t2} {
		d.Switch(tgt)
		if err := tgt.Bpts.RemoveAll(); err != nil {
			return err
		}
		ev, err := tgt.Continue()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-12s: %v\n", tgt.Name, ev)
	}
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
