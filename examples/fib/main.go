// fib reproduces the paper's figures around its running example: the
// stopping points of Fig. 1, the symbol-table tree of Fig. 2, a sample
// PostScript symbol-table entry (§2), and the abstract-memory DAG of
// Fig. 4 for a live frame.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	_ "ldb/internal/arch/mips"
	"ldb/internal/cc"
	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/nub"
	"ldb/internal/symtab"
	"ldb/internal/workload"
)

func main() {
	tc := &cc.TargetConf{Name: "mips", LDoubleSize: 8}
	unit, err := cc.Compile(workload.Fib, "fib.c", tc)
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 1: the source with its stopping points.
	fmt.Println("=== Fig. 1: stopping points of fib ===")
	fib := unit.Funcs[0]
	lines := strings.Split(workload.Fib, "\n")
	marks := map[int][]int{} // line → stop indices
	for _, sp := range fib.Stops {
		marks[sp.Pos.Line] = append(marks[sp.Pos.Line], sp.Index)
	}
	for i, line := range lines {
		if idx, ok := marks[i+1]; ok {
			tags := make([]string, len(idx))
			for k, v := range idx {
				tags[k] = fmt.Sprint(v)
			}
			fmt.Printf("%10s | %s\n", strings.Join(tags, ","), line)
		} else if strings.TrimSpace(line) != "" {
			fmt.Printf("%10s | %s\n", "", line)
		}
	}

	// Fig. 2: the uplink tree. Children point up; print the tree by
	// grouping symbols under their uplink.
	fmt.Println("\n=== Fig. 2: the tree structure of fib's symbol table ===")
	children := map[*cc.Symbol][]*cc.Symbol{}
	for _, s := range unit.Syms {
		children[s.Uplink] = append(children[s.Uplink], s)
	}
	var dump func(s *cc.Symbol, depth int)
	dump = func(s *cc.Symbol, depth int) {
		fmt.Printf("%s%s (%s)\n", strings.Repeat("    ", depth), s.Name, s.Kind)
		for _, c := range children[s] {
			dump(c, depth+1)
		}
	}
	for _, root := range children[nil] {
		dump(root, 0)
	}

	// §2: one emitted symbol-table entry, verbatim PostScript.
	fmt.Println("\n=== §2: the PostScript symbol-table entry for i ===")
	ps := symtab.EmitUnitPS(unit, symtab.EmitOptions{Prefix: "S", Deferred: false})
	for _, chunk := range strings.SplitAfter(ps, "def\n") {
		if strings.Contains(chunk, "(i)") && strings.Contains(chunk, "/where") {
			fmt.Println(strings.TrimSpace(chunk))
			break
		}
	}

	// Fig. 4: the abstract-memory DAG of a live frame.
	fmt.Println("\n=== Fig. 4: abstract memory for a frame (live) ===")
	prog, err := driver.Build([]driver.Source{{Name: "fib.c", Text: workload.Fib}},
		driver.Options{Arch: "mips", Debug: true})
	if err != nil {
		log.Fatal(err)
	}
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		log.Fatal(err)
	}
	d, err := core.New(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := d.AttachClient("fib", client, prog.LoaderPS)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		log.Fatal(err)
	}
	if _, err := tgt.ContinueToBreakpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(tgt.Frames[0].Describe())
	fmt.Println("\naliases recorded in the frame's alias memory (excerpt):")
	for i, al := range tgt.Frames[0].Alias.Aliases() {
		if i >= 6 && i < len(tgt.Frames[0].Alias.Aliases())-2 {
			if i == 6 {
				fmt.Println("  ...")
			}
			continue
		}
		fmt.Printf("  %-6s -> %s\n", al.From, al.To)
	}
}
