// exprserver traces Fig. 3: the communication paths between ldb and
// the expression server. It wraps the two pipes so every message is
// printed — the expression going down, the server's lookup requests
// coming back as PostScript, ldb's symbol replies as C tokens, and the
// compiled procedure followed by ExpressionServer.result.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	_ "ldb/internal/arch/vax"
	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/nub"
	"ldb/internal/workload"
)

func main() {
	prog, err := driver.Build([]driver.Source{{Name: "fib.c", Text: workload.Fib}},
		driver.Options{Arch: "vax", Debug: true})
	if err != nil {
		log.Fatal(err)
	}
	client, _, proc, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		log.Fatal(err)
	}
	d, err := core.New(os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := d.AttachClient("fib", client, prog.LoaderPS)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		log.Fatal(err)
	}
	if _, err := tgt.ContinueToBreakpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("target stopped at stopping point 7 of fib")

	// Install the message tracer on the session's pipes.
	trace := tgt.TraceExprTraffic(func(dir, line string) {
		for _, l := range strings.Split(strings.TrimRight(line, "\n"), "\n") {
			fmt.Printf("  %s %s\n", dir, l)
		}
	})
	defer trace()

	for _, e := range []string{"i", "a[i-1] + a[i-2]", "n = n - 4"} {
		fmt.Printf("\nldb> eval %s\n", e)
		v, err := tgt.EvalInt(e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result: %d\n", v)
	}

	// §7.1: an expression containing a procedure call. The generated
	// procedure ends in TargetCall, which runs fib(2) inside the stopped
	// target on a scratch stack and restores the session afterward. The
	// breakpoint is removed first so the callee can run to completion.
	if err := tgt.Bpts.RemoveAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nldb> eval fib(2)\n")
	if _, err := tgt.Eval("fib(2)"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: void; the target printed %q\n", proc.Stdout.String())
}
