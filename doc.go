// Package ldb is a from-scratch Go reproduction of "A Retargetable
// Debugger" (Norman Ramsey and David R. Hanson, PLDI 1992): the ldb
// debugger, its PostScript symbol tables and embedded interpreter, its
// debug nub and wire protocol, the lcc-style retargetable compiler it
// depends on, and instruction-set simulators for its four targets
// (MIPS R3000 in both byte orders, SPARC, Motorola 68020, VAX).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks
// in bench_test.go regenerate every measured table in the paper's
// evaluation.
package ldb
