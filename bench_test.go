// Benchmarks that regenerate every measured table in the paper's
// evaluation (see EXPERIMENTS.md for the index and recorded results):
//
//	T1  §4.3 machine-dependent LoC per target       BenchmarkLocTable
//	T2  §7 startup and connect times                BenchmarkStartup*, BenchmarkConnect*, BenchmarkReadStabsBaseline
//	E1  §3 no-op stopping-point growth              BenchmarkNoopOverhead
//	E2  §3 MIPS restricted-scheduling penalty       BenchmarkSchedPenalty
//	E3  §7 symbol-table size ratios                 BenchmarkSymtabSize
//	E4  §5 deferral of lexical analysis             BenchmarkSymtabRead*
//	—   ablation: LazyData memoization (§5, §7)     BenchmarkLazyDataMemo
//
// plus throughput benchmarks for the substrates (interpreter, compiler,
// simulators, nub protocol, breakpoints, expression server).
package ldb_test

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ldb/internal/analysis"
	"ldb/internal/arch"
	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
	"ldb/internal/cc"
	"ldb/internal/core"
	"ldb/internal/driver"
	"ldb/internal/link"
	"ldb/internal/locstats"
	"ldb/internal/machine"
	"ldb/internal/nub"
	"ldb/internal/ps"
	"ldb/internal/stab"
	"ldb/internal/symtab"
	"ldb/internal/workload"
)

var targets = []string{"mips", "mipsbe", "sparc", "m68k", "vax"}

const lccSized = 13000 // source lines of the lcc-sized program (§7)

func buildFor(b *testing.B, archName, name, src string, debug, sched bool) *driver.Program {
	b.Helper()
	prog, err := driver.Build([]driver.Source{{Name: name, Text: src}},
		driver.Options{Arch: archName, Debug: debug, Sched: sched})
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// --- T1 ---

func BenchmarkLocTable(b *testing.B) {
	root, err := locstats.FindRoot(".")
	if err != nil {
		b.Skip(err)
	}
	var table locstats.Table
	for i := 0; i < b.N; i++ {
		table, err = locstats.Collect(root)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, t := range locstats.Targets {
		b.ReportMetric(float64(locstats.PerTargetTotal(table, t)), t+"_loc")
	}
	b.ReportMetric(float64(locstats.SharedTotal(table)), "shared_loc")
}

// --- T2: the startup table, one benchmark per row ---

func BenchmarkStartupInterp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps.New()
	}
}

func BenchmarkStartupPrelude(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.New(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReadSymtab(b *testing.B, lines int) {
	src := workload.Hello
	if lines > 1 {
		src = workload.Big(lines)
	}
	prog := buildFor(b, "mips", "p.c", src, true, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := symtab.Load(ps.New(), prog.LoaderPS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadSymtabHello(b *testing.B) { benchReadSymtab(b, 1) }
func BenchmarkReadSymtabLcc(b *testing.B)   { benchReadSymtab(b, lccSized) }

func benchConnect(b *testing.B, progs ...*driver.Program) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := core.New(nil)
		if err != nil {
			b.Fatal(err)
		}
		for j, prog := range progs {
			client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.AttachClient(fmt.Sprint(j), client, prog.LoaderPS); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkConnectHello(b *testing.B) {
	benchConnect(b, buildFor(b, "mips", "hello.c", workload.Hello, true, false))
}

func BenchmarkConnectLcc(b *testing.B) {
	benchConnect(b, buildFor(b, "mips", "lcc.c", workload.Big(lccSized), true, false))
}

func BenchmarkConnectTwoMips(b *testing.B) {
	p := buildFor(b, "mips", "lcc.c", workload.Big(lccSized), true, false)
	benchConnect(b, p, p)
}

func BenchmarkConnectCrossArch(b *testing.B) {
	benchConnect(b,
		buildFor(b, "mips", "lcc.c", workload.Big(lccSized), true, false),
		buildFor(b, "sparc", "lcc.c", workload.Big(lccSized), true, false))
}

func BenchmarkReadStabsBaseline(b *testing.B) {
	tc := &cc.TargetConf{Name: "mips", LDoubleSize: 8}
	unit, err := cc.Compile(workload.Big(lccSized), "lcc.c", tc)
	if err != nil {
		b.Fatal(err)
	}
	data := stab.Emit([]*cc.Unit{unit})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stab.Read(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E1 ---

func BenchmarkNoopOverhead(b *testing.B) {
	for _, t := range targets {
		b.Run(t, func(b *testing.B) {
			var plain, debug int
			for i := 0; i < b.N; i++ {
				plain, debug = 0, 0
				for _, name := range workload.Names {
					plain += driver.TextWords(buildFor(b, t, name, workload.Programs[name], false, false))
					debug += driver.TextWords(buildFor(b, t, name, workload.Programs[name], true, false))
				}
			}
			b.ReportMetric(100*float64(debug-plain)/float64(plain), "%growth")
		})
	}
}

// --- E2 ---

func BenchmarkSchedPenalty(b *testing.B) {
	var plainPad, debugPad, instrs int
	for i := 0; i < b.N; i++ {
		plainPad, debugPad, instrs = 0, 0, 0
		for _, name := range workload.Names {
			plain := buildFor(b, "mips", name, workload.Programs[name], false, true)
			debug := buildFor(b, "mips", name, workload.Programs[name], true, true)
			plainPad += plain.SchedPadded
			debugPad += debug.SchedPadded
			instrs += driver.TextWords(plain)
		}
	}
	b.ReportMetric(float64(debugPad-plainPad), "extra_nops")
	b.ReportMetric(100*float64(debugPad-plainPad)/float64(instrs), "%growth")
}

// --- E3 ---

func BenchmarkSymtabSize(b *testing.B) {
	tc := &cc.TargetConf{Name: "sparc", LDoubleSize: 8}
	unit, err := cc.Compile(workload.Big(lccSized), "big.c", tc)
	if err != nil {
		b.Fatal(err)
	}
	var pts string
	var stabs []byte
	for i := 0; i < b.N; i++ {
		pts = symtab.EmitProgramPS([]*cc.Unit{unit}, "sparc")
		stabs = stab.Emit([]*cc.Unit{unit})
	}
	b.ReportMetric(float64(len(pts))/float64(len(stabs)), "raw_ratio")
}

// --- E4 ---

func benchSymtabRead(b *testing.B, deferred bool) {
	tc := &cc.TargetConf{Name: "sparc", LDoubleSize: 8}
	unit, err := cc.Compile(workload.Big(lccSized), "big.c", tc)
	if err != nil {
		b.Fatal(err)
	}
	prog := buildFor(b, "sparc", "big.c", workload.Big(lccSized), true, false)
	loaderPS := link.LoaderPS(prog.Image, symtab.EmitProgramPSOpts([]*cc.Unit{unit}, "sparc", deferred))
	b.SetBytes(int64(len(loaderPS)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := symtab.Load(ps.New(), loaderPS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymtabReadEager(b *testing.B)    { benchSymtabRead(b, false) }
func BenchmarkSymtabReadDeferred(b *testing.B) { benchSymtabRead(b, true) }

// --- ablation: LazyData memoization (§5/§7: anchor fetches happen at
// most once per entry because procedures interpreted at most once are
// replaced with their results) ---

func BenchmarkLazyDataMemo(b *testing.B) {
	prog := buildFor(b, "m68k", "fib.c", workload.Fib, true, false)
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.New(nil)
	if err != nil {
		b.Fatal(err)
	}
	tgt, err := d.AttachClient("fib", client, prog.LoaderPS)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.ContinueToBreakpoint(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tgt.FetchScalar("a"); err != nil {
			// a is an array; FetchScalar reads its first word — fine
			// for exercising the where path.
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tgt.LazyFetches), "anchor_fetches")
}

// --- substrate throughput ---

func BenchmarkPSInterp(b *testing.B) {
	in := ps.New()
	if err := in.RunString("/fib { dup 2 lt { pop 1 } { dup 1 sub fib exch 2 sub fib add } ifelse } def"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Eval("15 fib"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	for _, t := range targets {
		b.Run(t, func(b *testing.B) {
			src := workload.Big(500)
			for i := 0; i < b.N; i++ {
				buildFor(b, t, "big.c", src, true, false)
			}
		})
	}
}

func BenchmarkSimulator(b *testing.B) {
	for _, t := range targets {
		b.Run(t, func(b *testing.B) {
			prog := buildFor(b, t, "queens.c", workload.Queens, false, false)
			var steps int64
			for i := 0; i < b.N; i++ {
				p := link.NewProcess(prog.Image)
				if f := p.Run(); f.Kind != arch.FaultHalt {
					b.Fatal(f)
				}
				steps = p.Steps
			}
			b.ReportMetric(float64(steps), "instructions")
		})
	}
}

// simMetrics is one BENCH_sim.json record: simulator throughput with
// the decode cache on and off for one architecture.
type simMetrics struct {
	Arch         string  `json:"arch"`
	Program      string  `json:"program"`
	Instructions float64 `json:"instructions"`
	CachedIPS    float64 `json:"cached_ips"`
	UncachedIPS  float64 `json:"uncached_ips"`
	Speedup      float64 `json:"speedup"`
	HitRate      float64 `json:"hit_rate"`
}

// measureSim runs the program repeatedly for a fixed wall-clock slice
// and returns instructions/sec. Timing by hand instead of through b.N
// keeps the cached-vs-uncached ratio meaningful even under the CI
// smoke run's -benchtime=1x.
func measureSim(b *testing.B, prog *driver.Program, noPredecode bool) (ips, hitRate float64, instr int64) {
	b.Helper()
	const minDur = 150 * time.Millisecond
	var steps int64
	start := time.Now()
	for time.Since(start) < minDur {
		p := link.NewProcess(prog.Image)
		p.NoPredecode = noPredecode
		if f := p.Run(); f.Kind != arch.FaultHalt {
			b.Fatal(f)
		}
		steps += p.Steps
		hitRate = p.SimStats().HitRate()
		instr = p.Steps
	}
	return float64(steps) / time.Since(start).Seconds(), hitRate, instr
}

// BenchmarkSimulatorPredecode measures all four ISAs with the decode
// cache (and superblock fusion) on and off, asserts the headline
// speedup floors — ≥4.5× on MIPS and SPARC, ≥3.5× on the 68020 and
// VAX — and records every row in BENCH_sim.json (the simulator
// counterpart of BENCH_wire.json). The floors sit below the typical
// measurements (~6× mips/sparc, ~4.7× m68k, ~4× vax; see
// EXPERIMENTS.md) to stay robust to machine noise.
func BenchmarkSimulatorPredecode(b *testing.B) {
	var rows []simMetrics
	for _, t := range []string{"mips", "sparc", "m68k", "vax"} {
		prog := buildFor(b, t, "queens.c", workload.Queens, false, false)
		cached, hit, instr := measureSim(b, prog, false)
		uncached, _, _ := measureSim(b, prog, true)
		m := simMetrics{
			Arch:         t,
			Program:      "queens.c",
			Instructions: float64(instr),
			CachedIPS:    cached,
			UncachedIPS:  uncached,
			Speedup:      cached / uncached,
			HitRate:      hit,
		}
		rows = append(rows, m)
		b.ReportMetric(m.Speedup, t+"_speedup")
		floor := 0.0
		switch t {
		case "mips", "sparc":
			floor = 4.5
		case "m68k", "vax":
			floor = 3.5
		}
		if floor > 0 && m.Speedup < floor {
			b.Fatalf("%s: %.0f cached vs %.0f uncached instructions/sec (%.2fx) — want >= %.1fx",
				t, cached, uncached, m.Speedup, floor)
		}
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sim.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
	} // the work above is timed by hand; satisfy the bench driver
}

// serviceScalePoint is one BENCH_service.json scaling row: aggregate
// simulated-instruction throughput with N concurrent sessions stepping
// on one debug-service endpoint.
type serviceScalePoint struct {
	Sessions int     `json:"sessions"`
	AggIPS   float64 `json:"agg_ips"`
	Speedup  float64 `json:"speedup_vs_1"`
}

// serviceMetrics is the BENCH_service.json record.
type serviceMetrics struct {
	Program      string              `json:"program"`
	Arch         string              `json:"arch"`
	MaxParallel  int                 `json:"gomaxprocs"`
	Scaling      []serviceScalePoint `json:"scaling"`
	LinearFrac   float64             `json:"linear_fraction"`
	ColdDecodes  int64               `json:"cold_decodes"`
	WarmDecodes  int64               `json:"warm_decodes"`
	SharedHits   int64               `json:"shared_hits"`
	SharedMisses int64               `json:"shared_misses"`
}

// measureService runs `workers` concurrent debugger clients against the
// service at addr for a fixed wall-clock slice, each looping open →
// run-to-exit → read counters → close, and returns the aggregate
// simulated instructions per second.
func measureService(b *testing.B, addr, program string, workers int) float64 {
	b.Helper()
	const minDur = 400 * time.Millisecond
	var total int64
	var mu sync.Mutex
	start := time.Now()
	deadline := start.Add(minDur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			c, err := nub.Connect(conn)
			if err != nil {
				b.Error(err)
				return
			}
			var steps int64
			for time.Now().Before(deadline) {
				ev, err := c.OpenSession(program)
				if err != nil {
					b.Error(err)
					return
				}
				for !ev.Exited {
					if ev, err = c.Continue(); err != nil {
						b.Error(err)
						return
					}
				}
				st, err := c.SimStats()
				if err != nil {
					b.Error(err)
					return
				}
				steps += st.Steps
				if err := c.CloseSession(); err != nil {
					b.Error(err)
					return
				}
			}
			mu.Lock()
			total += steps
			mu.Unlock()
		}()
	}
	wg.Wait()
	return float64(total) / time.Since(start).Seconds()
}

// BenchmarkDebugService is the session-multiplexing gate: N concurrent
// debugger clients share one TCP debug-service endpoint, each running
// the simulated program to completion over and over. It asserts
//
//   - warm attach does zero decode work: after one session of a program
//     retires, a fresh session's run decodes nothing — the shared
//     decode cache carries it;
//   - aggregate stepped-instructions/sec scales to 8 sessions at >= 0.6
//     of linear, where "linear" is bounded by the machine's actual
//     parallelism (min(8, GOMAXPROCS)): on a many-core box that demands
//     real concurrency, and on a small one it still forbids the
//     multiplexing layer from collapsing aggregate throughput;
//
// and records the scaling curve in BENCH_service.json.
func BenchmarkDebugService(b *testing.B) {
	prog := buildFor(b, "mips", "queens.c", workload.Queens, false, false)
	s := nub.NewService()
	s.Register("queens", prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.ServeListener(l)
	defer s.Shutdown()
	addr := l.Addr().String()

	// Cold/warm decode accounting: the first session pays the decode
	// cost; once it retires (publishing its decode products), a fresh
	// session must attach warm and decode nothing.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	c, err := nub.Connect(conn)
	if err != nil {
		b.Fatal(err)
	}
	runOnce := func() nub.SimStatsReport {
		ev, err := c.OpenSession("queens")
		if err != nil {
			b.Fatal(err)
		}
		for !ev.Exited {
			if ev, err = c.Continue(); err != nil {
				b.Fatal(err)
			}
		}
		st, err := c.SimStats()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.CloseSession(); err != nil {
			b.Fatal(err)
		}
		return st
	}
	cold := runOnce()
	warm := runOnce()
	if cold.Decodes == 0 {
		b.Fatal("cold session decoded nothing; the warm gate below would be vacuous")
	}
	if warm.Decodes != 0 {
		b.Fatalf("warm session decoded %d instructions, want 0", warm.Decodes)
	}

	m := serviceMetrics{
		Program:     "queens.c",
		Arch:        "mips",
		MaxParallel: runtime.GOMAXPROCS(0),
		ColdDecodes: cold.Decodes,
		WarmDecodes: warm.Decodes,
	}
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		ips := measureService(b, addr, "queens", n)
		if n == 1 {
			base = ips
		}
		m.Scaling = append(m.Scaling, serviceScalePoint{Sessions: n, AggIPS: ips, Speedup: ips / base})
		b.ReportMetric(ips/1e6, fmt.Sprintf("mips_%dsess", n))
	}
	last := m.Scaling[len(m.Scaling)-1]
	linear := float64(min(last.Sessions, m.MaxParallel))
	m.LinearFrac = last.Speedup / linear
	b.ReportMetric(m.LinearFrac, "linear_fraction")
	if m.LinearFrac < 0.6 {
		b.Fatalf("8-session aggregate is %.2fx the single session (%.0f%% of the %0.f-way linear ceiling) — want >= 60%%",
			last.Speedup, 100*m.LinearFrac, linear)
	}
	m.SharedHits, m.SharedMisses = func() (int64, int64) {
		st, err := c.ServiceStats()
		if err != nil {
			b.Fatal(err)
		}
		return st.SharedHits, st.SharedMisses
	}()
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_service.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
	} // timed by hand, as in BenchmarkSimulatorPredecode
}

// checkpointMetrics is the BENCH_checkpoint.json record: aggregate
// service throughput with crash-only checkpointing off versus on at the
// default interval, and the overhead the protection costs.
type checkpointMetrics struct {
	Program      string  `json:"program"`
	Arch         string  `json:"arch"`
	Sessions     int     `json:"sessions"`
	Interval     int64   `json:"checkpoint_interval"`
	OffIPS       float64 `json:"off_agg_ips"`
	OnIPS        float64 `json:"on_agg_ips"`
	OverheadFrac float64 `json:"overhead_fraction"`
}

// BenchmarkCheckpoint is the crash-only overhead gate: the same
// debug-service workload as BenchmarkDebugService, run once with
// checkpointing disabled and once with the default interval — dirty
// tracking armed, a baseline checkpoint per session, and paced COW
// snapshots inside Run. The protected service must keep at least 90% of
// the unprotected aggregate throughput; the pair is recorded in
// BENCH_checkpoint.json.
func BenchmarkCheckpoint(b *testing.B) {
	prog := buildFor(b, "mips", "queens.c", workload.Queens, false, false)
	serve := func(interval int64) (string, func()) {
		s := nub.NewService()
		s.CheckpointInterval = interval
		s.Register("queens", prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go s.ServeListener(l)
		return l.Addr().String(), s.Shutdown
	}
	const workers = 4
	measure := func(interval int64) float64 {
		addr, shutdown := serve(interval)
		defer shutdown()
		best := 0.0
		for i := 0; i < 2; i++ { // best-of-two per configuration: scheduler noise, not trend
			if ips := measureService(b, addr, "queens", workers); ips > best {
				best = ips
			}
		}
		return best
	}
	off := measure(-1) // negative interval: checkpointing fully disarmed
	on := measure(0)   // zero: machine.DefaultCheckpointInterval
	m := checkpointMetrics{
		Program:      "queens.c",
		Arch:         "mips",
		Sessions:     workers,
		Interval:     machine.DefaultCheckpointInterval,
		OffIPS:       off,
		OnIPS:        on,
		OverheadFrac: 1 - on/off,
	}
	b.ReportMetric(off/1e6, "mips_off")
	b.ReportMetric(on/1e6, "mips_on")
	b.ReportMetric(m.OverheadFrac, "overhead_fraction")
	if on < 0.9*off {
		b.Fatalf("checkpointing costs %.1f%% of aggregate throughput (%.2fM -> %.2fM ips) — want <= 10%%",
			100*m.OverheadFrac, off/1e6, on/1e6)
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_checkpoint.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
	} // timed by hand, as in BenchmarkSimulatorPredecode
}

func BenchmarkNubRoundTrip(b *testing.B) {
	prog := buildFor(b, "mips", "fib.c", workload.Fib, true, false)
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.FetchInt('d', 0x10000000, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBreakpointHit(b *testing.B) {
	// A full stop-inspect-resume cycle per iteration.
	prog := buildFor(b, "sparc", "fib.c", workload.Fib, true, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
		if err != nil {
			b.Fatal(err)
		}
		d, err := core.New(nil)
		if err != nil {
			b.Fatal(err)
		}
		tgt, err := d.AttachClient("fib", client, prog.LoaderPS)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tgt.BreakStop("fib", 7); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := tgt.ContinueToBreakpoint(); err != nil {
			b.Fatal(err)
		}
		if _, err := tgt.FetchScalar("i"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- wire transport: round trips and bytes per debug scenario ---

// wireScenario is one breakpoint-plant + frame-walk cycle: plant a
// breakpoint in fib, run to it, inspect a scalar, single-step (which
// plants and removes a temporary breakpoint at every stopping point),
// and walk the stack. It is the round-trip-heaviest path a debugger
// user exercises interactively.
func wireScenario(b *testing.B, tgt *core.Target) {
	b.Helper()
	if _, err := tgt.ContinueToBreakpoint(); err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.FetchScalar("i"); err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.Step(); err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.Backtrace(10); err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.EvalInt("a[i-1] + a[i-2]"); err != nil {
		b.Fatal(err)
	}
}

// wireMetrics is one BENCH_wire.json record: per-scenario wire costs.
type wireMetrics struct {
	Scenario      string  `json:"scenario"`
	Transport     string  `json:"transport"`
	RoundTrips    float64 `json:"round_trips"`
	MsgsSent      float64 `json:"msgs_sent"`
	BytesSent     float64 `json:"bytes_sent"`
	BytesReceived float64 `json:"bytes_received"`
	Batches       float64 `json:"batches"`
	CacheHits     float64 `json:"cache_hits"`
}

func benchWireScenario(b *testing.B, optimized bool) wireMetrics {
	b.Helper()
	prog := buildFor(b, "sparc", "fib.c", workload.Fib, true, false)
	var agg nub.StatsSnapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
		if err != nil {
			b.Fatal(err)
		}
		client.SetBatching(optimized)
		client.SetCaching(optimized)
		d, err := core.New(nil)
		if err != nil {
			b.Fatal(err)
		}
		tgt, err := d.AttachClient("fib", client, prog.LoaderPS)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tgt.BreakStop("fib", 7); err != nil {
			b.Fatal(err)
		}
		client.ResetStats()
		b.StartTimer()
		wireScenario(b, tgt)
		b.StopTimer()
		s := client.Stats()
		agg.RoundTrips += s.RoundTrips
		agg.MsgsSent += s.MsgsSent
		agg.BytesSent += s.BytesSent
		agg.BytesReceived += s.BytesReceived
		agg.Batches += s.Batches
		agg.CacheHits += s.CacheHits
		b.StartTimer()
	}
	n := float64(b.N)
	transport := "plain"
	if optimized {
		transport = "batch+cache"
	}
	m := wireMetrics{
		Scenario:      "breakpoint-plant+frame-walk",
		Transport:     transport,
		RoundTrips:    float64(agg.RoundTrips) / n,
		MsgsSent:      float64(agg.MsgsSent) / n,
		BytesSent:     float64(agg.BytesSent) / n,
		BytesReceived: float64(agg.BytesReceived) / n,
		Batches:       float64(agg.Batches) / n,
		CacheHits:     float64(agg.CacheHits) / n,
	}
	b.ReportMetric(m.RoundTrips, "round_trips")
	b.ReportMetric(m.BytesSent+m.BytesReceived, "wire_bytes")
	return m
}

// BenchmarkWireScenario measures the same debug scenario with the
// optimized transport (batching + caching) and the paper's plain
// one-request-one-reply protocol, asserts the headline ≥3× round-trip
// reduction, and records both rows in BENCH_wire.json.
func BenchmarkWireScenario(b *testing.B) {
	results := map[string]wireMetrics{}
	b.Run("plain", func(b *testing.B) { results["plain"] = benchWireScenario(b, false) })
	b.Run("optimized", func(b *testing.B) { results["optimized"] = benchWireScenario(b, true) })
	plain, optimized := results["plain"], results["optimized"]
	if plain.RoundTrips == 0 || optimized.RoundTrips == 0 {
		return // a -bench filter selected only one arm
	}
	ratio := plain.RoundTrips / optimized.RoundTrips
	if ratio < 3 {
		b.Fatalf("round trips: %.1f plain vs %.1f optimized (%.2fx) — want >= 3x",
			plain.RoundTrips, optimized.RoundTrips, ratio)
	}
	out, err := json.MarshalIndent([]wireMetrics{plain, optimized}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_wire.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEvalExpression(b *testing.B) {
	prog := buildFor(b, "vax", "fib.c", workload.Fib, true, false)
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.New(nil)
	if err != nil {
		b.Fatal(err)
	}
	tgt, err := d.AttachClient("fib", client, prog.LoaderPS)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.ContinueToBreakpoint(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tgt.EvalInt("a[i-1] + a[i-2]"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcedureCall measures the §7.1 call extension: synthesize a
// frame, run square in the target, read the result, restore the
// context record.
func BenchmarkProcedureCall(b *testing.B) {
	src := `
int square(int x) { return x * x; }
int main() { return square(3); }
`
	prog := buildFor(b, "sparc", "call.c", src, true, false)
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.New(nil)
	if err != nil {
		b.Fatal(err)
	}
	tgt, err := d.AttachClient("call", client, prog.LoaderPS)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.BreakProc("main"); err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.ContinueToBreakpoint(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, err := tgt.CallInt("square", 9); err != nil || v != 81 {
			b.Fatalf("%d %v", v, err)
		}
	}
}

func BenchmarkPrintValue(b *testing.B) {
	prog := buildFor(b, "m68k", "fib.c", workload.Fib, true, false)
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		b.Fatal(err)
	}
	var sink strings.Builder
	d, err := core.New(&sink)
	if err != nil {
		b.Fatal(err)
	}
	tgt, err := d.AttachClient("fib", client, prog.LoaderPS)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.BreakStop("fib", 7); err != nil {
		b.Fatal(err)
	}
	if _, err := tgt.ContinueToBreakpoint(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		if err := tgt.Print("a"); err != nil {
			b.Fatal(err)
		}
	}
}

// analysisMetrics is the BENCH_analysis.json record: what the ldbvet
// suite found over this repository and what it cost.
type analysisMetrics struct {
	Packages  int            `json:"packages"`
	Files     int            `json:"files"`
	LoadMS    float64        `json:"load_ms"`
	RunMS     float64        `json:"run_ms"`
	Failing   int            `json:"failing"`
	Allowed   int            `json:"allowed"`
	ByName    map[string]int `json:"findings_by_analyzer"`
	AllowedBy map[string]int `json:"allowed_by_analyzer"`
}

// BenchmarkAnalysisSuite times the full ldbvet load + run over the
// repository and records the violation and exception counts in
// BENCH_analysis.json; a nonzero failing count fails the benchmark the
// same way it fails cmd/ldbvet and the analysis self-test.
func BenchmarkAnalysisSuite(b *testing.B) {
	root, err := analysis.FindRoot(".")
	if err != nil {
		b.Skip(err)
	}
	fps := analysis.ArchFingerprints()
	var m analysisMetrics
	for i := 0; i < b.N; i++ {
		start := time.Now()
		repo, err := analysis.Load(analysis.Config{Root: root, Fingerprints: fps})
		if err != nil {
			b.Fatal(err)
		}
		loaded := time.Now()
		diags := analysis.RunSuite(repo)
		done := time.Now()
		m = analysisMetrics{
			Packages:  len(repo.Pkgs),
			LoadMS:    float64(loaded.Sub(start).Microseconds()) / 1000,
			RunMS:     float64(done.Sub(loaded).Microseconds()) / 1000,
			Failing:   len(analysis.Failing(diags)),
			ByName:    map[string]int{},
			AllowedBy: map[string]int{},
		}
		for _, p := range repo.Pkgs {
			m.Files += len(p.Files)
		}
		for _, d := range diags {
			if d.Allowed {
				m.Allowed++
				m.AllowedBy[d.Analyzer]++
			} else {
				m.ByName[d.Analyzer]++
			}
		}
		if m.Failing > 0 {
			b.Fatalf("analysis suite found %d unsuppressed violations", m.Failing)
		}
	}
	b.ReportMetric(m.LoadMS, "load_ms")
	b.ReportMetric(m.RunMS, "run_ms")
	b.ReportMetric(float64(m.Allowed), "allowed")
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_analysis.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
