package workload

import (
	"fmt"
	"strings"
)

// gen.go is the seeded scenario generator: Generate(seed) expands a
// 64-bit seed into a random-but-valid C program plus the debug script
// the differential oracle replays against it. The same seed must yield
// byte-identical output forever — the corpus cache keys on the program
// text — so randomness comes from a private splitmix64, not the
// standard library's generator (whose stream may change between Go
// releases).
//
// Every generated program obeys safety rules that make its behavior a
// pure function of the source on all targets:
//   - all stored integers are masked to 20 bits, multiplication
//     operands to 10, so no expression overflows int32;
//   - divisors and shift counts are nonzero constants;
//   - loops have constant trip counts and functions call only
//     lower-numbered functions, so execution terminates;
//   - no pointer is ever printed, so output and debug transcripts are
//     address-free and must match across ISAs byte for byte.

// Scenario is one generated differential test case: the program and
// the debug session to run against it.
type Scenario struct {
	Seed   int64
	Name   string
	Source string

	// The debug script: set a breakpoint at BreakProc's stopping point
	// BreakStop, and at each of up to MaxHits stops print Prints,
	// evaluate Evals, take Steps source-level steps, and resume. Then
	// clear breakpoints and run to exit.
	BreakProc string
	BreakStop int
	MaxHits   int
	Prints    []string
	Evals     []string
	Steps     int
}

// rng is splitmix64 (Steele et al.), chosen for stability and speed.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// n returns a value in [0, n).
func (r *rng) n(n int) int { return int(r.next() % uint64(n)) }

// rangeN returns a value in [lo, hi].
func (r *rng) rangeN(lo, hi int) int { return lo + r.n(hi-lo+1) }

// chance reports true pct percent of the time.
func (r *rng) chance(pct int) bool { return r.n(100) < pct }

func (r *rng) pick(ss []string) string { return ss[r.n(len(ss))] }

// valMask keeps every stored integer in [0, 2^20).
const valMask = "1048575"

// pgen accumulates one program.
type pgen struct {
	r *rng
	b *strings.Builder

	globals []string // int globals
	arrays  []genArr // int arrays, power-of-two lengths
	mats    []genMat // 2-D int arrays
	funcs   []genFn  // defined so far; bodies call only earlier ones
	structs bool     // the program declares struct pair
	fptr    bool     // the program declares a function-pointer global

	locals []string // of the function being generated
	depth  int      // statement nesting depth
	calls  int      // call-expression budget for the current function
}

type genArr struct {
	name string
	len  int // power of two
}

type genMat struct {
	name       string
	rows, cols int
}

type genFn struct {
	name   string
	params []string
	// structArg/structRet mark the struct-by-value helpers.
	structArg, structRet bool
}

// Generate expands seed into a scenario. The result is deterministic:
// Generate(s) == Generate(s) byte for byte.
func Generate(seed int64) Scenario {
	g := &pgen{r: &rng{s: uint64(seed)*0x9e3779b97f4a7c15 + 0x1234567}, b: &strings.Builder{}}
	// Warm the stream so small seeds diverge quickly.
	g.r.next()
	g.r.next()

	g.structs = g.r.chance(70)
	g.fptr = g.r.chance(60)

	g.emitTypesAndGlobals()
	g.emitHelpers()
	nf := g.r.rangeN(2, 4)
	for i := 0; i < nf; i++ {
		g.emitFunc(i)
	}
	sc := g.emitMain()
	sc.Seed = seed
	sc.Name = fmt.Sprintf("s%d", seed)
	sc.Source = g.b.String()
	return sc
}

func (g *pgen) emitTypesAndGlobals() {
	if g.structs {
		g.b.WriteString("struct pair { int fa; int fb; };\n")
	}
	ng := g.r.rangeN(2, 4)
	for i := 0; i < ng; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		fmt.Fprintf(g.b, "int %s = %d;\n", name, g.r.n(1024))
	}
	na := g.r.rangeN(1, 2)
	for i := 0; i < na; i++ {
		a := genArr{name: fmt.Sprintf("arr%d", i), len: 1 << g.r.rangeN(3, 5)}
		g.arrays = append(g.arrays, a)
		fmt.Fprintf(g.b, "int %s[%d];\n", a.name, a.len)
	}
	if g.r.chance(60) {
		m := genMat{name: "mat0", rows: 1 << g.r.rangeN(1, 2), cols: 1 << g.r.rangeN(2, 3)}
		g.mats = append(g.mats, m)
		fmt.Fprintf(g.b, "int %s[%d][%d];\n", m.name, m.rows, m.cols)
	}
	if g.structs {
		g.b.WriteString("struct pair gp;\n")
	}
	if g.fptr {
		g.b.WriteString("int (*op)(int, int);\n")
	}
	g.b.WriteString("\n")
}

// emitHelpers writes the fixed-shape functions the random bodies lean
// on: the function-pointer candidates and the struct-by-value pair.
func (g *pgen) emitHelpers() {
	if g.fptr {
		fmt.Fprintf(g.b, "int alt0(int a, int b) { return (a + b + %d) & %s; }\n", g.r.n(512), valMask)
		fmt.Fprintf(g.b, "int alt1(int a, int b) { return ((a ^ b) + %d) & %s; }\n", g.r.n(512), valMask)
		g.funcs = append(g.funcs,
			genFn{name: "alt0", params: []string{"a", "b"}},
			genFn{name: "alt1", params: []string{"a", "b"}})
	}
	if g.structs {
		fmt.Fprintf(g.b, "struct pair mkpair(int a, int b) {\n\tstruct pair r;\n\tr.fa = (a + %d) & %s;\n\tr.fb = (b ^ %d) & %s;\n\treturn r;\n}\n",
			g.r.n(256), valMask, g.r.n(256), valMask)
		fmt.Fprintf(g.b, "int usepair(struct pair p) { return (p.fa * 3 + p.fb) & %s; }\n", valMask)
		g.funcs = append(g.funcs,
			genFn{name: "mkpair", params: []string{"a", "b"}, structRet: true},
			genFn{name: "usepair", structArg: true})
	}
	g.b.WriteString("\n")
}

// intTerm returns a random readable int-valued term in the current
// scope (no calls).
func (g *pgen) intTerm() string {
	choices := []func() string{
		func() string { return fmt.Sprintf("%d", g.r.n(1024)) },
		func() string { return g.r.pick(g.globals) },
	}
	if len(g.locals) > 0 {
		choices = append(choices, func() string { return g.r.pick(g.locals) })
	}
	if len(g.arrays) > 0 {
		choices = append(choices, func() string {
			a := g.arrays[g.r.n(len(g.arrays))]
			return fmt.Sprintf("%s[(%s) & %d]", a.name, g.expr(1), a.len-1)
		})
	}
	if len(g.mats) > 0 {
		choices = append(choices, func() string {
			m := g.mats[g.r.n(len(g.mats))]
			return fmt.Sprintf("%s[(%s) & %d][(%s) & %d]", m.name, g.expr(0), m.rows-1, g.expr(0), m.cols-1)
		})
	}
	if g.structs {
		choices = append(choices, func() string {
			return "gp.f" + g.r.pick([]string{"a", "b"})
		})
	}
	return choices[g.r.n(len(choices))]()
}

// callTerm returns a call to an already-defined scalar function, or ""
// when none fits the budget.
func (g *pgen) callTerm() string {
	if g.calls <= 0 || len(g.funcs) == 0 {
		return ""
	}
	var cands []genFn
	for _, f := range g.funcs {
		if !f.structArg && !f.structRet {
			cands = append(cands, f)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	g.calls--
	f := cands[g.r.n(len(cands))]
	return fmt.Sprintf("%s(%s)", f.name, strings.Join(g.argList(len(f.params), 1), ", "))
}

// pureTerm returns a term no callee can observe or modify: a constant
// or one of the caller's scalar params/locals (the subset has no
// pointers to locals, so a call cannot change them).
func (g *pgen) pureTerm() string {
	if len(g.locals) == 0 || g.r.chance(40) {
		return fmt.Sprintf("%d", g.r.n(1024))
	}
	return g.r.pick(g.locals)
}

// pureExpr builds an expression entirely from pure terms — no global,
// array, struct, or call subterms — so its value is the same no matter
// when it is evaluated relative to the rest of the statement.
func (g *pgen) pureExpr(depth int) string {
	if depth <= 0 || g.r.chance(40) {
		return g.pureTerm()
	}
	l, rr := g.pureExpr(depth-1), g.pureTerm()
	switch g.r.n(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, rr)
	case 1:
		return fmt.Sprintf("(%s ^ %s)", l, rr)
	case 2:
		return fmt.Sprintf("(%s | %s)", l, rr)
	case 3:
		return fmt.Sprintf("((%s & 8191) %% %d)", l, g.r.rangeN(2, 9))
	default:
		return fmt.Sprintf("(%s & %s)", l, rr)
	}
}

// argList builds an argument list whose value cannot depend on the
// order the arguments are evaluated in. C leaves that order
// unspecified and the backends genuinely differ (MIPS pushes left to
// right, the stack targets right to left), so — like Csmith — the
// generator refuses to emit order-sensitive lists: at most one
// argument (the "hot" one) may read globals or contain calls, and
// every other argument is built only from constants and the caller's
// own scalars, which no callee can touch.
func (g *pgen) argList(n, hotDepth int) []string {
	args := make([]string, n)
	hot := g.r.n(n)
	for i := range args {
		if i == hot {
			args[i] = g.expr(hotDepth)
		} else {
			args[i] = g.pureExpr(1)
		}
	}
	return args
}

// expr returns a random int expression of bounded depth. Stored values
// are 20-bit, so sums of a few terms and 10-bit×10-bit products stay
// far from int32 overflow; / and % see masked non-negative dividends
// and constant nonzero divisors.
func (g *pgen) expr(depth int) string {
	if depth <= 0 || g.r.chance(25) {
		if g.r.chance(15) {
			if c := g.callTerm(); c != "" {
				return c
			}
		}
		return g.intTerm()
	}
	l := g.expr(depth - 1)
	rr := g.expr(depth - 1)
	switch g.r.n(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, rr)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, rr)
	case 2:
		return fmt.Sprintf("((%s & 1023) * (%s & 1023))", l, rr)
	case 3:
		return fmt.Sprintf("((%s & 8191) / %d)", l, g.r.rangeN(1, 9))
	case 4:
		return fmt.Sprintf("((%s & 8191) %% %d)", l, g.r.rangeN(2, 9))
	case 5:
		return fmt.Sprintf("(%s & %s)", l, rr)
	case 6:
		return fmt.Sprintf("(%s | %s)", l, rr)
	case 7:
		return fmt.Sprintf("(%s ^ %s)", l, rr)
	case 8:
		return fmt.Sprintf("((%s & 65535) << %d)", l, g.r.n(8))
	default:
		return fmt.Sprintf("(%s >> %d)", l, g.r.n(8))
	}
}

func (g *pgen) cond() string {
	op := g.r.pick([]string{"<", "<=", ">", ">=", "==", "!="})
	return fmt.Sprintf("%s %s %s", g.expr(1), op, g.expr(1))
}

// lvalue returns a random assignable int location.
func (g *pgen) lvalue() string {
	choices := []string{g.r.pick(g.globals)}
	if len(g.locals) > 0 {
		choices = append(choices, g.r.pick(g.locals))
	}
	if len(g.arrays) > 0 {
		a := g.arrays[g.r.n(len(g.arrays))]
		choices = append(choices, fmt.Sprintf("%s[(%s) & %d]", a.name, g.expr(1), a.len-1))
	}
	if len(g.mats) > 0 {
		m := g.mats[g.r.n(len(g.mats))]
		choices = append(choices, fmt.Sprintf("%s[%d][(%s) & %d]", m.name, g.r.n(m.rows), g.expr(0), m.cols-1))
	}
	if g.structs {
		choices = append(choices, "gp.f"+g.r.pick([]string{"a", "b"}))
	}
	return g.r.pick(choices)
}

func (g *pgen) indent() string { return strings.Repeat("\t", g.depth) }

// stmt writes one random statement.
func (g *pgen) stmt(loopVars *int) {
	in := g.indent()
	switch g.r.n(8) {
	case 0, 1, 2: // assignment
		fmt.Fprintf(g.b, "%s%s = (%s) & %s;\n", in, g.lvalue(), g.expr(2), valMask)
	case 3: // for loop over a fresh counter
		if g.depth >= 3 || *loopVars >= 3 {
			fmt.Fprintf(g.b, "%s%s = (%s) & %s;\n", in, g.lvalue(), g.expr(2), valMask)
			return
		}
		v := fmt.Sprintf("i%d", *loopVars)
		*loopVars++
		fmt.Fprintf(g.b, "%sfor (%s = 0; %s < %d; %s++) {\n", in, v, v, g.r.rangeN(2, 8), v)
		g.depth++
		ns := g.r.rangeN(1, 2)
		for i := 0; i < ns; i++ {
			g.stmt(loopVars)
		}
		g.depth--
		fmt.Fprintf(g.b, "%s}\n", in)
	case 4: // if / else
		if g.depth >= 3 {
			fmt.Fprintf(g.b, "%s%s = (%s) & %s;\n", in, g.lvalue(), g.expr(2), valMask)
			return
		}
		fmt.Fprintf(g.b, "%sif (%s) {\n", in, g.cond())
		g.depth++
		g.stmt(loopVars)
		g.depth--
		if g.r.chance(50) {
			fmt.Fprintf(g.b, "%s} else {\n", in)
			g.depth++
			g.stmt(loopVars)
			g.depth--
		}
		fmt.Fprintf(g.b, "%s}\n", in)
	case 5: // struct traffic
		if g.structs {
			switch g.r.n(3) {
			case 0:
				margs := g.argList(2, 1)
				fmt.Fprintf(g.b, "%sgp = mkpair(%s, %s);\n", in, margs[0], margs[1])
			case 1:
				fmt.Fprintf(g.b, "%slp = gp;\n", in)
			default:
				fmt.Fprintf(g.b, "%s%s = usepair(gp) & %s;\n", in, g.lvalue(), valMask)
			}
			return
		}
		fmt.Fprintf(g.b, "%s%s = (%s) & %s;\n", in, g.lvalue(), g.expr(2), valMask)
	case 6: // function-pointer dispatch
		if g.fptr {
			if g.r.chance(50) {
				fmt.Fprintf(g.b, "%sif ((%s) & 1) { op = alt0; } else { op = alt1; }\n", in, g.expr(1))
			} else {
				oargs := g.argList(2, 1)
			fmt.Fprintf(g.b, "%s%s = op(%s, %s) & %s;\n", in, g.lvalue(), oargs[0], oargs[1], valMask)
			}
			return
		}
		fmt.Fprintf(g.b, "%s%s = (%s) & %s;\n", in, g.lvalue(), g.expr(2), valMask)
	default: // trace output
		fmt.Fprintf(g.b, "%sprintf(\"t%d %%d\\n\", %s);\n", in, g.r.n(100), g.expr(2))
	}
}

// emitFunc writes random compute function fN.
func (g *pgen) emitFunc(n int) {
	name := fmt.Sprintf("f%d", n)
	np := g.r.rangeN(1, 3)
	params := make([]string, np)
	decls := make([]string, np)
	for i := range params {
		params[i] = fmt.Sprintf("p%d", i)
		decls[i] = "int " + params[i]
	}
	fmt.Fprintf(g.b, "int %s(%s)\n{\n", name, strings.Join(decls, ", "))
	g.locals = append([]string{}, params...)
	g.calls = 3
	loopVars := 0
	// Declare the worker locals up front (subset style: decls at the
	// top of the block).
	nl := g.r.rangeN(1, 2)
	save := g.b
	g.b = &strings.Builder{}
	g.depth = 1
	for i := 0; i < nl; i++ {
		v := fmt.Sprintf("t%d", i)
		g.locals = append(g.locals, v)
	}
	// Loop counters i0..i2 are declared eagerly; unused ones are
	// harmless.
	ns := g.r.rangeN(3, 6)
	for i := 0; i < ns; i++ {
		g.stmt(&loopVars)
	}
	fmt.Fprintf(g.b, "\treturn (%s) & %s;\n", g.expr(2), valMask)
	bodyText := g.b.String()
	g.b = save
	g.b.WriteString("\tint i0; int i1; int i2;\n")
	for i := 0; i < nl; i++ {
		fmt.Fprintf(g.b, "\tint t%d;\n", i)
	}
	if g.structs {
		g.b.WriteString("\tstruct pair lp;\n")
	}
	g.b.WriteString("\ti0 = 0; i1 = 0; i2 = 0;\n")
	for i := 0; i < nl; i++ {
		fmt.Fprintf(g.b, "\tt%d = %d;\n", i, g.r.n(1024))
	}
	if g.structs {
		g.b.WriteString("\tlp.fa = 0; lp.fb = 0;\n\tgp = lp;\n")
	}
	g.b.WriteString(bodyText)
	g.b.WriteString("}\n\n")
	g.funcs = append(g.funcs, genFn{name: name, params: params})
	g.locals = nil
}

// emitMain writes main, which seeds the data, drives the compute
// functions, and prints checksums; it also decides the debug script.
func (g *pgen) emitMain() Scenario {
	g.b.WriteString("int main()\n{\n\tint acc;\n\tint k;\n")
	g.b.WriteString("\tacc = 0;\n")
	if g.fptr {
		g.b.WriteString("\top = alt0;\n")
	}
	if g.structs {
		g.b.WriteString("\tgp = mkpair(1, 2);\n")
	}
	for _, a := range g.arrays {
		fmt.Fprintf(g.b, "\tfor (k = 0; k < %d; k++) %s[k] = (k * %d + %d) & %s;\n",
			a.len, a.name, g.r.rangeN(3, 37), g.r.n(512), valMask)
	}
	for _, m := range g.mats {
		fmt.Fprintf(g.b, "\tfor (k = 0; k < %d; k++) %s[k / %d][k %% %d] = (k * %d) & %s;\n",
			m.rows*m.cols, m.name, m.cols, m.cols, g.r.rangeN(3, 29), valMask)
	}

	// Call each random compute function a few times; the first one is
	// the breakpoint target, so its call count bounds the hit count.
	var breakFn genFn
	var nCalls int
	for _, f := range g.funcs {
		if !f.structArg && !f.structRet && strings.HasPrefix(f.name, "f") {
			if breakFn.name == "" {
				breakFn = f
			}
			calls := g.r.rangeN(1, 3)
			if f.name == breakFn.name {
				nCalls = calls
			}
			for c := 0; c < calls; c++ {
				args := make([]string, len(f.params))
				for i := range args {
					args[i] = fmt.Sprintf("%d", g.r.n(1024))
				}
				fmt.Fprintf(g.b, "\tacc = (acc + %s(%s)) & %s;\n", f.name, strings.Join(args, ", "), valMask)
			}
		}
	}
	if g.fptr {
		fmt.Fprintf(g.b, "\tacc = (acc + op(acc, %d)) & %s;\n", g.r.n(1024), valMask)
	}
	if g.structs {
		fmt.Fprintf(g.b, "\tgp = mkpair(acc, %d);\n\tacc = (acc + usepair(gp)) & %s;\n", g.r.n(1024), valMask)
	}
	g.b.WriteString("\tprintf(\"acc %d\\n\", acc);\n")
	for _, a := range g.arrays {
		fmt.Fprintf(g.b, "\tfor (k = 0; k < %d; k++) acc = (acc + %s[k]) & %s;\n", a.len, a.name, valMask)
	}
	for _, gl := range g.globals {
		fmt.Fprintf(g.b, "\tacc = (acc ^ %s) & %s;\n", gl, valMask)
	}
	g.b.WriteString("\tprintf(\"sum %d\\n\", acc);\n\treturn 0;\n}\n")

	// The debug script: break at the first compute function's entry
	// (stop 0: parameters are visible there), inspect its parameters
	// and the globals, evaluate a couple of source expressions, and
	// take a step or two.
	sc := Scenario{
		BreakProc: breakFn.name,
		BreakStop: 0,
		MaxHits:   nCalls,
		Steps:     g.r.n(3),
	}
	sc.Prints = append(sc.Prints, breakFn.params...)
	sc.Prints = append(sc.Prints, g.globals[0])
	if len(g.arrays) > 0 {
		sc.Prints = append(sc.Prints, g.arrays[0].name)
	}
	sc.Evals = append(sc.Evals, fmt.Sprintf("%s + %s", g.globals[0], g.globals[len(g.globals)-1]))
	if len(g.arrays) > 0 {
		a := g.arrays[0]
		sc.Evals = append(sc.Evals, fmt.Sprintf("%s[%d]", a.name, g.r.n(a.len)))
	}
	return sc
}
