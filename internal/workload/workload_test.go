package workload

import (
	"strings"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/driver"
	"ldb/internal/link"
)

var allArches = []string{"mips", "mipsbe", "sparc", "m68k", "vax"}

// TestProgramsRunEverywhere pins the benchmark programs' outputs on
// every target, in every build mode, so the experiments measure
// identical computations.
func TestProgramsRunEverywhere(t *testing.T) {
	for _, name := range Names {
		src := Programs[name]
		want := Outputs[name]
		for _, a := range allArches {
			for _, opts := range []driver.Options{
				{Arch: a},
				{Arch: a, Debug: true},
				{Arch: a, Sched: true},
				{Arch: a, Debug: true, Sched: true},
			} {
				prog, err := driver.Build([]driver.Source{{Name: name + ".c", Text: src}}, opts)
				if err != nil {
					t.Fatalf("%s on %s (%+v): %v", name, a, opts, err)
				}
				p := link.NewProcess(prog.Image)
				f := p.Run()
				for f.Kind == arch.FaultSignal && f.Sig == arch.SigTrap && f.Code == arch.TrapPause {
					// Debug builds pause before main; run free.
					p.SetPC(f.PC + f.Len)
					f = p.Run()
				}
				if f.Kind != arch.FaultHalt {
					t.Fatalf("%s on %s (%+v): died: %v", name, a, opts, f)
				}
				if got := p.Stdout.String(); got != want {
					t.Fatalf("%s on %s (%+v): output %q, want %q", name, a, opts, got, want)
				}
			}
		}
	}
}

func TestBigGeneratesValidProgram(t *testing.T) {
	src := Big(500)
	if got := len(strings.Split(src, "\n")); got < 450 {
		t.Fatalf("Big(500) = %d lines", got)
	}
	prog, err := driver.Build([]driver.Source{{Name: "big.c", Text: src}}, driver.Options{Arch: "sparc", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	p := link.NewProcess(prog.Image)
	// Debug builds pause before main; run free by skipping pauses.
	f := p.Run()
	if f.Sig != arch.SigTrap {
		t.Fatalf("expected the pause trap, got %v", f)
	}
	p.SetPC(f.PC + f.Len)
	if f := p.Run(); f.Kind != arch.FaultHalt {
		t.Fatalf("big program died: %v", f)
	}
	if !strings.HasSuffix(p.Stdout.String(), "\n") {
		t.Fatal("no output")
	}
}

// TestSchedulerRestrictedByDebugging verifies E2's mechanism: with
// stopping-point labels in place the scheduler fills fewer load delay
// slots and pads more.
func TestSchedulerRestrictedByDebugging(t *testing.T) {
	totalPlainPad, totalDebugPad := 0, 0
	for _, name := range Names {
		src := Programs[name]
		plain, err := driver.Build([]driver.Source{{Name: name, Text: src}}, driver.Options{Arch: "mips", Sched: true})
		if err != nil {
			t.Fatal(err)
		}
		debug, err := driver.Build([]driver.Source{{Name: name, Text: src}}, driver.Options{Arch: "mips", Sched: true, Debug: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: plain filled=%d padded=%d; debug filled=%d padded=%d",
			name, plain.SchedFilled, plain.SchedPadded, debug.SchedFilled, debug.SchedPadded)
		totalPlainPad += plain.SchedPadded
		totalDebugPad += debug.SchedPadded
		if plain.SchedFilled+plain.SchedPadded == 0 {
			t.Errorf("%s: no load delay slots at all?", name)
		}
	}
	if totalDebugPad <= totalPlainPad {
		t.Errorf("debugging did not restrict scheduling: plain pads %d, debug pads %d", totalPlainPad, totalDebugPad)
	}
}
