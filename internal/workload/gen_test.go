package workload

import (
	"strings"
	"testing"
)

// Same seed, same bytes: the corpus cache fingerprints generated
// sources, so regeneration must be exact.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, 42, 1 << 40, -3} {
		a := Generate(seed)
		b := Generate(seed)
		if a.Source != b.Source {
			t.Fatalf("seed %d: sources differ", seed)
		}
		if a.Name != b.Name || a.BreakProc != b.BreakProc || a.MaxHits != b.MaxHits ||
			a.Steps != b.Steps || strings.Join(a.Prints, ",") != strings.Join(b.Prints, ",") ||
			strings.Join(a.Evals, ",") != strings.Join(b.Evals, ",") {
			t.Fatalf("seed %d: scripts differ: %+v vs %+v", seed, a, b)
		}
	}
}

// Distinct seeds must give distinct programs — the corpus diversity
// floor. A few colliding pairs would mean the seed isn't feeding the
// stream.
func TestGenerateDiversity(t *testing.T) {
	seen := map[string]int64{}
	for seed := int64(0); seed < 64; seed++ {
		s := Generate(seed)
		if prev, dup := seen[s.Source]; dup {
			t.Fatalf("seeds %d and %d generate identical programs", prev, seed)
		}
		seen[s.Source] = seed
	}
}

// The script must target things the program declares.
func TestGenerateScriptShape(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		s := Generate(seed)
		if s.BreakProc == "" || s.MaxHits < 1 {
			t.Fatalf("seed %d: no breakpoint target: %+v", seed, s)
		}
		if !strings.Contains(s.Source, "int "+s.BreakProc+"(") {
			t.Fatalf("seed %d: break proc %s not defined", seed, s.BreakProc)
		}
		if len(s.Prints) == 0 || len(s.Evals) == 0 {
			t.Fatalf("seed %d: empty script: %+v", seed, s)
		}
	}
}
