// Package workload holds the C benchmark programs the experiments
// compile and debug, and a generator for lcc-sized programs (the paper
// measures symbol-table reading on a 13,000-line version of lcc).
package workload

import (
	"fmt"
	"strings"
)

// Fib is the example program of Fig. 1.
const Fib = `void fib(int n)
{
	static int a[20];
	if (n > 20) n = 20;
	a[0] = a[1] = 1;
	{	int i;
		for (i=2; i<n; i++)
			a[i] = a[i-1] + a[i-2];
	}
	{	int j;
		for (j=0; j<n; j++)
			printf("%d ", a[j]);
	}
	printf("\n");
}
int main() { fib(10); return 0; }
`

// Sort exercises arrays, pointers, and nested loops.
const Sort = `
int v[64];
void sort(int *p, int n) {
	int i; int j;
	for (i = 0; i < n; i++)
		for (j = 0; j < n - 1 - i; j++)
			if (p[j] > p[j+1]) {
				int t;
				t = p[j]; p[j] = p[j+1]; p[j+1] = t;
			}
}
int check(int *p, int n) {
	int i;
	for (i = 1; i < n; i++)
		if (p[i-1] > p[i]) return 0;
	return 1;
}
int main() {
	int i;
	for (i = 0; i < 64; i++) v[i] = (i * 37 + 11) % 64;
	sort(v, 64);
	printf("sorted=%d\n", check(v, 64));
	return 0;
}
`

// Matmul exercises doubles and two-dimensional indexing.
const Matmul = `
double a[8*8];
double b[8*8];
double c[8*8];
void matmul(int n) {
	int i; int j; int k;
	for (i = 0; i < n; i++)
		for (j = 0; j < n; j++) {
			double s;
			s = 0.0;
			for (k = 0; k < n; k++)
				s = s + a[i*n+k] * b[k*n+j];
			c[i*n+j] = s;
		}
}
int main() {
	int i;
	for (i = 0; i < 64; i++) { a[i] = i; b[i] = 64 - i; }
	matmul(8);
	printf("%g\n", c[0]);
	return 0;
}
`

// Queens counts solutions to the 8-queens problem: recursion and
// short-circuit logic.
const Queens = `
int cols[8];
int ok(int r, int c) {
	int i;
	for (i = 0; i < r; i++) {
		int d;
		d = cols[i] - c;
		if (d == 0 || d == r - i || d == i - r) return 0;
	}
	return 1;
}
int place(int r) {
	int c; int n;
	if (r == 8) return 1;
	n = 0;
	for (c = 0; c < 8; c++)
		if (ok(r, c)) {
			cols[r] = c;
			n = n + place(r + 1);
		}
	return n;
}
int main() {
	printf("%d\n", place(0));
	return 0;
}
`

// Sieve finds primes: chars and modular arithmetic.
const Sieve = `
char composite[200];
int main() {
	int i; int j; int n;
	n = 0;
	for (i = 2; i < 200; i++) {
		if (composite[i]) continue;
		n++;
		for (j = i + i; j < 200; j = j + i) composite[j] = 1;
	}
	printf("%d primes\n", n);
	return 0;
}
`

// Programs maps names to the benchmark sources; every one runs to
// completion on all five targets.
var Programs = map[string]string{
	"fib":    Fib,
	"sort":   Sort,
	"matmul": Matmul,
	"queens": Queens,
	"sieve":  Sieve,
}

// Names lists the programs in a fixed order.
var Names = []string{"fib", "sort", "matmul", "queens", "sieve"}

// Hello is the one-line program of the startup experiment.
const Hello = `int main() { printf("hello, world\n"); return 0; }`

// Big synthesizes a program of roughly the requested number of source
// lines — the stand-in for the 13,000-line lcc of §7's startup table.
// It is shaped like real code: many functions with parameters, locals,
// statics, loops, and calls, so its symbol table has realistic density.
func Big(lines int) string {
	var b strings.Builder
	b.WriteString("int acc;\nstatic int seed = 1;\n")
	n := 0
	for i := 0; n < lines; i++ {
		fmt.Fprintf(&b, `
int work%d(int x, int y) {
	int i;
	int total;
	static int memo%d;
	double scale;
	total = memo%d;
	scale = 1.5;
	for (i = 0; i < x; i++) {
		int step;
		step = (y + i) %% 7;
		total = total + step * %d;
		if (total > 100000) total = total - 100000;
	}
	memo%d = total;
	return total + (int)scale;
}
`, i, i, i, i+1, i)
		n += 17
	}
	b.WriteString("int main() {\n\tacc = seed;\n")
	for i := 0; i*17 < lines; i++ {
		fmt.Fprintf(&b, "\tacc = acc + work%d(%d, acc);\n", i, i%9+1)
	}
	b.WriteString("\tprintf(\"%d\\n\", acc);\n\treturn 0;\n}\n")
	return b.String()
}

// Outputs maps program names to their expected standard output.
var Outputs = map[string]string{
	"fib":    "1 1 2 3 5 8 13 21 34 55 \n",
	"sort":   "sorted=1\n",
	"matmul": "672\n",
	"queens": "92\n",
	"sieve":  "46 primes\n",
}
