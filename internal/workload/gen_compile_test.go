package workload_test

// Compile-and-run smoke for the generator, in an external test package
// so it can use the driver (which imports workload) without a cycle:
// every generated program must build and run to a clean exit on every
// target, with identical output. The full debug-session oracle lives
// in internal/corpus; this is the cheaper net that catches generator
// bugs (invalid C, runaway loops, out-of-bounds stores) close to home.

import (
	"testing"

	"ldb/internal/arch"
	"ldb/internal/driver"
	"ldb/internal/link"
	"ldb/internal/workload"
)

var genArches = []string{"mips", "mipsbe", "sparc", "m68k", "vax"}

func TestGeneratedProgramsRunEverywhere(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		sc := workload.Generate(seed)
		var want string
		for _, a := range genArches {
			prog, err := driver.Build([]driver.Source{{Name: sc.Name + ".c", Text: sc.Source}}, driver.Options{Arch: a})
			if err != nil {
				t.Fatalf("seed %d on %s: build: %v\n%s", seed, a, err, sc.Source)
			}
			p := link.NewProcess(prog.Image)
			f := p.Run()
			if f.Kind != arch.FaultHalt {
				t.Fatalf("seed %d on %s: died: %v (output %q)\n%s", seed, a, f, p.Stdout.String(), sc.Source)
			}
			if p.ExitCode != 0 {
				t.Fatalf("seed %d on %s: exit %d\n%s", seed, a, p.ExitCode, sc.Source)
			}
			got := p.Stdout.String()
			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("seed %d: %s output %q, other targets %q\n%s", seed, a, got, want, sc.Source)
			}
		}
		// Debug builds must behave identically too (they add stop
		// no-ops, not semantics).
		prog, err := driver.Build([]driver.Source{{Name: sc.Name + ".c", Text: sc.Source}}, driver.Options{Arch: "mips", Debug: true, Sched: true})
		if err != nil {
			t.Fatalf("seed %d: debug build: %v", seed, err)
		}
		p := link.NewProcess(prog.Image)
		f := p.Run()
		for f.Kind == arch.FaultSignal && f.Sig == arch.SigTrap && f.Code == arch.TrapPause {
			p.SetPC(f.PC + f.Len)
			f = p.Run()
		}
		if f.Kind != arch.FaultHalt {
			t.Fatalf("seed %d: debug run died: %v", seed, f)
		}
		if got := p.Stdout.String(); got != want {
			t.Fatalf("seed %d: debug output %q, release %q", seed, got, want)
		}
	}
}
