package frame

import (
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/nub"
)

// fpWalker is the single walker shared by the SPARC, the 68020, and
// the VAX (§4.3): all three keep a conventional frame-pointer chain
// with *fp = caller's fp and *(fp+4) = return address. Only data
// differs between the three: which register is the frame pointer and
// the context layout, both already captured by the Arch.
type fpWalker struct {
	t *Target
}

// Top implements Walker: the topmost frame's registers live in the
// context, so every register aliases a context slot; the extra
// registers are immediates.
func (w *fpWalker) Top() (*Frame, error) {
	t := w.t
	alias, wire := contextMemory(t)
	pc, err := fetchCtxPC(t)
	if err != nil {
		return nil, err
	}
	j := join(t, alias, wire)
	fpv, err := j.FetchInt(amem.Abs(amem.Reg, int64(t.A.FPReg())), 4)
	if err != nil {
		return nil, err
	}
	alias.Alias(amem.Abs(amem.Extra, XPC), ctxPCAlias(t))
	alias.Alias(amem.Abs(amem.Extra, XBase), amem.Imm(fpv))
	return &Frame{T: t, Depth: 0, PC: pc, Base: uint32(fpv), Mem: j, Alias: alias, walker: w}, nil
}

// ctxPCAlias aliases x:0 to the saved pc slot in the context, so
// assigning the pc (to resume past a breakpoint) is an ordinary store.
func ctxPCAlias(t *Target) amem.Location {
	return amem.Abs(amem.Data, int64(t.Ctx)+int64(t.A.Context().PCOff))
}

// Caller implements Walker: the calling frame's pc is *(fp+4), its
// frame pointer was saved at *fp, and its sp is fp+8 after the return
// pops the saved words. The aliases in the new alias memory stand for
// locations on the stack, not in the context (§4.1).
func (w *fpWalker) Caller(f *Frame) (*Frame, error) {
	t := w.t
	fp := int64(f.Base)
	if fp == 0 {
		return nil, fmt.Errorf("frame: no caller (frame pointer is zero)")
	}
	// The saved fp and return address are adjacent stack words; fetch
	// both in one round trip.
	b := t.C.NewBatch()
	oldfpRes := b.FetchInt(amem.Data, uint32(fp), 4)
	raRes := b.FetchInt(amem.Data, uint32(fp)+4, 4)
	if err := b.Run(); err != nil {
		return nil, err
	}
	if oldfpRes.Err != nil {
		return nil, oldfpRes.Err
	}
	if raRes.Err != nil {
		return nil, raRes.Err
	}
	oldfp, ra := oldfpRes.Val, raRes.Val
	if ra == 0 {
		return nil, fmt.Errorf("frame: end of stack")
	}
	// oldfp == 0 marks the outermost frame (_start never set one up);
	// it is still a valid frame, but walking past it will fail.
	rawWire := &nub.Wire{C: t.C}
	alias := amem.NewAliasMemory(rawWire)
	// The caller's frame pointer was saved on the stack; its sp and pc
	// are synthesized immediates. Other registers are not recoverable
	// in this calling convention (they are caller-save) and stay
	// unaliased.
	alias.Alias(amem.Abs(amem.Reg, int64(t.A.FPReg())), amem.Abs(amem.Data, fp))
	alias.Alias(amem.Abs(amem.Reg, int64(t.A.SPReg())), amem.Imm(uint64(fp+8)))
	alias.Alias(amem.Abs(amem.Extra, XPC), amem.Imm(ra))
	alias.Alias(amem.Abs(amem.Extra, XBase), amem.Imm(oldfp))
	j := join(t, alias, rawWire)
	return &Frame{T: t, Depth: f.Depth + 1, PC: uint32(ra), Base: uint32(oldfp), Mem: j, Alias: alias, walker: w}, nil
}
