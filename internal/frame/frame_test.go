package frame

import (
	"strings"
	"testing"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/driver"
	"ldb/internal/nub"
)

// nested is three frames deep when inner's body runs.
const nested = `
int inner(int x) {
	int loc;
	loc = x + 100;
	return loc;
}
int outer(int y) {
	int mid;
	mid = y * 2;
	return inner(mid);
}
int main() { return outer(7); }
`

// stopInInner builds the program, runs it to inner's second stopping
// point (after loc is assigned), and returns a frame target.
func stopInInner(t *testing.T, archName string) (*Target, *nub.Client) {
	t.Helper()
	prog, err := driver.Build([]driver.Source{{Name: "n.c", Text: nested}},
		driver.Options{Arch: archName, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	client, _, proc, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	_ = proc
	// Find inner's second stop label address from the image symbols.
	addr, ok := prog.Image.SymAddr(".stop_inner_2")
	if !ok {
		// local symbols are not global; search all symbols
		for _, s := range prog.Image.Syms {
			if s.Name == ".stop_inner_2" {
				addr, ok = s.Addr, true
			}
		}
	}
	if !ok {
		t.Fatal("no stop label")
	}
	if err := client.StoreBytes(amem.Code, addr, prog.Arch.BreakInstr()); err != nil {
		t.Fatal(err)
	}
	ev, err := client.Continue()
	if err != nil || ev.Exited || ev.PC != addr {
		t.Fatalf("continue: %v %v", ev, err)
	}
	rpt := uint32(0)
	if prog.Image.RPTAddr != 0 {
		rpt = prog.Image.RPTAddr
	}
	procName := func(pc uint32) string {
		best := ""
		bestAddr := uint32(0)
		for _, f := range prog.Image.Funcs {
			if f.Addr <= pc && f.Addr >= bestAddr {
				best, bestAddr = f.Name, f.Addr
			}
		}
		return best
	}
	return &Target{A: prog.Arch, C: client, Ctx: client.CtxAddr, RPT: rpt, ProcName: procName}, client
}

func TestWalkAllTargets(t *testing.T) {
	for _, a := range []string{"mips", "mipsbe", "sparc", "m68k", "vax"} {
		t.Run(a, func(t *testing.T) {
			ft, _ := stopInInner(t, a)
			w := New(ft)
			top, err := w.Top()
			if err != nil {
				t.Fatal(err)
			}
			if top.Proc() != "_inner" || top.Depth != 0 {
				t.Fatalf("top = %s depth %d", top.Proc(), top.Depth)
			}
			f1, err := top.Caller()
			if err != nil {
				t.Fatal(err)
			}
			if f1.Proc() != "_outer" || f1.Depth != 1 {
				t.Fatalf("caller = %s", f1.Proc())
			}
			f2, err := f1.Caller()
			if err != nil {
				t.Fatal(err)
			}
			if f2.Proc() != "_main" {
				t.Fatalf("caller² = %s", f2.Proc())
			}
			// Frame bases strictly increase walking down (stacks grow
			// down on every target).
			if !(top.Base < f1.Base && f1.Base < f2.Base) {
				t.Fatalf("bases not monotone: %#x %#x %#x", top.Base, f1.Base, f2.Base)
			}
			// The top frame's pc register is readable through the
			// extra space and matches the event.
			pc, err := top.Mem.FetchInt(amem.Abs(amem.Extra, XPC), 4)
			if err != nil || uint32(pc) != top.PC {
				t.Fatalf("x:0 = %#x, pc %#x (%v)", pc, top.PC, err)
			}
			// The frame base is x:1.
			base, err := top.Mem.FetchInt(amem.Abs(amem.Extra, XBase), 4)
			if err != nil || uint32(base) != top.Base {
				t.Fatalf("x:1 = %#x, base %#x (%v)", base, top.Base, err)
			}
		})
	}
}

func TestFrameLocalsReadable(t *testing.T) {
	// Using only the frame abstraction and the known frame layout, read
	// inner's local through the data space: its frame offset comes from
	// the compiled unit.
	for _, a := range []string{"mips", "sparc", "vax"} {
		prog, err := driver.Build([]driver.Source{{Name: "n.c", Text: nested}},
			driver.Options{Arch: a, Debug: true})
		if err != nil {
			t.Fatal(err)
		}
		var locOff int32
		for _, u := range prog.Units {
			for _, fn := range u.Funcs {
				if fn.Sym.Name == "inner" {
					for _, l := range fn.Locals {
						if l.Name == "loc" {
							locOff = l.FrameOff
						}
					}
				}
			}
		}
		ft, _ := stopInInnerWith(t, prog)
		top, err := New(ft).Top()
		if err != nil {
			t.Fatal(err)
		}
		v, err := top.Mem.FetchInt(amem.Abs(amem.Data, int64(top.Base)+int64(locOff)), 4)
		if err != nil || v != 114 { // 7*2+100
			t.Fatalf("%s: loc = %d, %v", a, v, err)
		}
	}
}

// stopInInnerWith is stopInInner for an already-built program.
func stopInInnerWith(t *testing.T, prog *driver.Program) (*Target, *nub.Client) {
	t.Helper()
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	var addr uint32
	for _, s := range prog.Image.Syms {
		if s.Name == ".stop_inner_2" {
			addr = s.Addr
		}
	}
	if err := client.StoreBytes(amem.Code, addr, prog.Arch.BreakInstr()); err != nil {
		t.Fatal(err)
	}
	if ev, err := client.Continue(); err != nil || ev.Exited || ev.PC != addr {
		t.Fatalf("continue: %v %v", ev, err)
	}
	return &Target{A: prog.Arch, C: client, Ctx: client.CtxAddr, RPT: prog.Image.RPTAddr}, client
}

func TestMipsWalkerNeedsRPT(t *testing.T) {
	prog, err := driver.Build([]driver.Source{{Name: "n.c", Text: nested}},
		driver.Options{Arch: "mips", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	ft, _ := stopInInnerWith(t, prog)
	ft.RPT = 0 // pretend the table is missing
	if _, err := New(ft).Top(); err == nil || !strings.Contains(err.Error(), "procedure table") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterWriteThroughFrame(t *testing.T) {
	// Stores through a top frame's register space land in the context
	// and take effect on continue (§4.1's assignment path).
	ft, client := stopInInner(t, "sparc")
	top, err := New(ft).Top()
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the return-value register convention is risky; instead
	// write a scratch register and read it back through the frame.
	if err := top.Mem.StoreInt(amem.Abs(amem.Reg, 16), 4, 0xabcd); err != nil {
		t.Fatal(err)
	}
	v, err := top.Mem.FetchInt(amem.Abs(amem.Reg, 16), 4)
	if err != nil || v != 0xabcd {
		t.Fatalf("reg 16 = %#x, %v", v, err)
	}
	_ = client
}

func TestCallerRegistersMostlyUnaliased(t *testing.T) {
	// In a calling frame only the recoverable registers are aliased;
	// scratch registers correctly report ErrUnaliased rather than
	// stale values (§4.1's honesty about caller-save registers).
	ft, _ := stopInInner(t, "m68k")
	top, err := New(ft).Top()
	if err != nil {
		t.Fatal(err)
	}
	caller, err := top.Caller()
	if err != nil {
		t.Fatal(err)
	}
	// d4 (a scratch register) is unaliased in the caller.
	if _, err := caller.Mem.FetchInt(amem.Abs(amem.Reg, 4), 4); err == nil {
		t.Fatal("scratch register readable in caller frame")
	}
	// The frame pointer is aliased (it was saved on the stack).
	fp, err := caller.Mem.FetchInt(amem.Abs(amem.Reg, int64(ft.A.FPReg())), 4)
	if err != nil || uint32(fp) != caller.Base {
		t.Fatalf("caller fp = %#x, base %#x (%v)", fp, caller.Base, err)
	}
	_ = arch.SigTrap
}
