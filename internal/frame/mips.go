//ldb:target mips
package frame

import (
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/nub"
)

// mipsWalker walks MIPS stacks. The machine has no frame pointer; lcc
// addresses locals through a virtual frame pointer vfp = sp + frame
// size, and the frame size comes from the runtime procedure table in
// the target's address space — available even for procedures without
// debugging symbols (§4.3). The MIPS needs its own linker interface
// for exactly this reason; the extra machine-dependent code here is
// the analog of the paper's extra 250 lines for the MIPS.
type mipsWalker struct {
	t *Target

	rpt []rptEntry // cached after the first read
}

type rptEntry struct {
	addr  uint32
	frame uint32
}

// readRPT fetches the runtime procedure table from target memory,
// on demand and at most once (§7 notes such fetches are memoized).
func (w *mipsWalker) readRPT() error {
	if w.rpt != nil {
		return nil
	}
	t := w.t
	if t.RPT == 0 {
		return fmt.Errorf("frame: no runtime procedure table")
	}
	n, err := t.C.FetchInt(amem.Data, t.RPT, 4)
	if err != nil {
		return err
	}
	if n > 4096 {
		return fmt.Errorf("frame: implausible runtime procedure table (%d entries)", n)
	}
	// The table is 2n consecutive words; batch the reads into one
	// round trip instead of 2n.
	b := t.C.NewBatch()
	type entryRes struct{ a, f *nub.IntRes }
	ents := make([]entryRes, n)
	for i := uint32(0); i < uint32(n); i++ {
		ents[i] = entryRes{
			a: b.FetchInt(amem.Data, t.RPT+4+8*i, 4),
			f: b.FetchInt(amem.Data, t.RPT+4+8*i+4, 4),
		}
	}
	if err := b.Run(); err != nil {
		return err
	}
	for _, e := range ents {
		if e.a.Err != nil {
			return e.a.Err
		}
		if e.f.Err != nil {
			return e.f.Err
		}
		w.rpt = append(w.rpt, rptEntry{addr: uint32(e.a.Val), frame: uint32(e.f.Val)})
	}
	return nil
}

// frameSize finds the frame size of the procedure containing pc.
func (w *mipsWalker) frameSize(pc uint32) (uint32, error) {
	if err := w.readRPT(); err != nil {
		return 0, err
	}
	best := -1
	for i, e := range w.rpt {
		if e.addr <= pc && (best < 0 || e.addr >= w.rpt[best].addr) {
			best = i
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("frame: pc %#x not in the runtime procedure table", pc)
	}
	return w.rpt[best].frame, nil
}

// Top implements Walker: registers alias the context; the extra
// registers (pc and the virtual frame pointer) alias immediates; the
// vfp is sp plus the frame size from the runtime procedure table.
func (w *mipsWalker) Top() (*Frame, error) {
	t := w.t
	alias, wire := contextMemory(t)
	pc, err := fetchCtxPC(t)
	if err != nil {
		return nil, err
	}
	j := join(t, alias, wire)
	sp, err := j.FetchInt(amem.Abs(amem.Reg, int64(t.A.SPReg())), 4)
	if err != nil {
		return nil, err
	}
	fsize, err := w.frameSize(pc)
	if err != nil {
		return nil, err
	}
	vfp := uint32(sp) + fsize
	alias.Alias(amem.Abs(amem.Extra, XPC), ctxPCAlias(t))
	alias.Alias(amem.Abs(amem.Extra, XBase), amem.Imm(uint64(vfp)))
	return &Frame{T: t, Depth: 0, PC: pc, Base: vfp, Mem: j, Alias: alias, walker: w}, nil
}

// Caller implements Walker: the return address was saved at vfp-4, the
// caller's sp is the callee's vfp, and the caller's vfp is its sp plus
// its own frame size from the runtime procedure table.
func (w *mipsWalker) Caller(f *Frame) (*Frame, error) {
	t := w.t
	vfp := int64(f.Base)
	ra, err := f.Mem.FetchInt(amem.Abs(amem.Data, vfp-4), 4)
	if err != nil {
		return nil, err
	}
	if ra == 0 {
		return nil, fmt.Errorf("frame: end of stack")
	}
	callerSP := uint32(vfp)
	fsize, err := w.frameSize(uint32(ra))
	if err != nil {
		return nil, fmt.Errorf("frame: caller at %#x: %w", ra, err)
	}
	callerVFP := callerSP + fsize
	wire := &nub.Wire{C: t.C}
	alias := amem.NewAliasMemory(wire)
	alias.Alias(amem.Abs(amem.Reg, int64(t.A.SPReg())), amem.Imm(uint64(callerSP)))
	alias.Alias(amem.Abs(amem.Reg, int64(t.A.LinkReg())), amem.Abs(amem.Data, int64(callerVFP)-4))
	alias.Alias(amem.Abs(amem.Extra, XPC), amem.Imm(ra))
	alias.Alias(amem.Abs(amem.Extra, XBase), amem.Imm(uint64(callerVFP)))
	j := join(t, alias, wire)
	return &Frame{T: t, Depth: f.Depth + 1, PC: uint32(ra), Base: callerVFP, Mem: j, Alias: alias, walker: w}, nil
}
