// Package frame implements ldb's stack-frame abstraction (§4, §4.1):
// a machine-independent frame class whose machine-dependent instances
// supply only two methods — one that walks down the stack and one that
// reconstructs the register state of the calling frame. Each frame
// carries an abstract memory, the joined memory at the root of a DAG
// like Fig. 4's.
//
// The SPARC, 68020, and VAX share a single frame-pointer-chain walker
// parameterized by machine-dependent data; the MIPS has no frame
// pointer, so its walker consults the runtime procedure table in the
// target's address space (§4.3).
package frame

import (
	"fmt"
	"strings"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/nub"
)

// Target carries what walkers need to know about a stopped target.
type Target struct {
	A   arch.Arch
	C   *nub.Client
	Ctx uint32 // address of the context record
	// RPT is the MIPS runtime procedure table address (zero elsewhere).
	RPT uint32
	// ProcName maps a pc to the name of the procedure containing it
	// (via the loader table); it may be nil.
	ProcName func(pc uint32) string
}

// Frame is one procedure activation.
type Frame struct {
	T     *Target
	Depth int
	PC    uint32
	// Base is the frame base used to address locals: the frame pointer
	// on the SPARC/68020/VAX, the virtual frame pointer on the MIPS.
	Base uint32
	// Mem is the abstract memory presented to the rest of the debugger.
	Mem *amem.JoinedMemory
	// Alias is the frame's alias memory (exposed so callee-save aliases
	// can be reused and for DAG dumps).
	Alias *amem.AliasMemory

	walker Walker
}

// Proc names the procedure this frame activates.
func (f *Frame) Proc() string {
	if f.T.ProcName != nil {
		if n := f.T.ProcName(f.PC); n != "" {
			return n
		}
	}
	return fmt.Sprintf("%#x", f.PC)
}

// Caller walks down the stack to the calling frame.
func (f *Frame) Caller() (*Frame, error) { return f.walker.Caller(f) }

// Describe renders the frame's abstract-memory DAG (Fig. 4).
func (f *Frame) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frame %d: %s pc=%#x base=%#x\n", f.Depth, f.Proc(), f.PC, f.Base)
	b.WriteString(amem.Describe(f.Mem))
	return b.String()
}

// Walker builds the top frame from a stopped target's context and
// walks to callers; instances are machine-dependent.
type Walker interface {
	Top() (*Frame, error)
	Caller(f *Frame) (*Frame, error)
}

// New returns the walker for the target's architecture.
func New(t *Target) Walker {
	if t.A.FPReg() < 0 {
		return &mipsWalker{t: t}
	}
	return &fpWalker{t: t}
}

// contextMemory builds the shared bottom of every frame DAG: the wire
// plus an alias memory mapping register spaces onto the context record
// saved by the nub.
func contextMemory(t *Target) (*amem.AliasMemory, *nub.Wire) {
	wire := &nub.Wire{C: t.C}
	alias := amem.NewAliasMemory(wire)
	l := t.A.Context()
	// The context record is read a word at a time as registers are
	// consulted; pull it over in one round trip instead so the per-word
	// fetches below (and every later register read) hit the cache.
	if t.C.CtxAddr == t.Ctx && t.C.CtxSize > 0 {
		t.C.Prefetch(amem.Data, t.Ctx, int(t.C.CtxSize))
	}
	for i, off := range l.RegOffs {
		alias.Alias(amem.Abs(amem.Reg, int64(i)), amem.Abs(amem.Data, int64(t.Ctx)+int64(off)))
	}
	for i, off := range l.FRegOffs {
		alias.Alias(amem.Abs(amem.Float, int64(i)), amem.Abs(amem.Data, int64(t.Ctx)+int64(off)))
	}
	return alias, wire
}

// fetchCtxPC reads the saved pc from the context.
func fetchCtxPC(t *Target) (uint32, error) {
	l := t.A.Context()
	v, err := t.C.FetchInt(amem.Data, t.Ctx+uint32(l.PCOff), 4)
	return uint32(v), err
}

// join builds the joined memory over an alias memory, routing register
// spaces through a register memory so byte order is irrelevant.
func join(t *Target, alias *amem.AliasMemory, wire *nub.Wire) *amem.JoinedMemory {
	regs := amem.NewRegisterMemory(alias, t.A.WordSize())
	j := amem.NewJoinedMemory()
	j.Route(amem.Code, wire)
	j.Route(amem.Data, wire)
	j.Route(amem.Reg, regs)
	j.Route(amem.Extra, regs)
	j.Route(amem.Float, alias) // floats fetch full-width; no widening needed
	return j
}

// Extra-register numbering in the x space: pc is x:0, the frame base
// (virtual frame pointer on the MIPS, frame pointer elsewhere) is x:1.
const (
	XPC   = 0
	XBase = 1
)
