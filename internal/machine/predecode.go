// The decode cache: Process executes from predecoded instructions when
// its architecture implements arch.Decoder. Each segment lazily grows a
// slice of decoded entries indexed by byte offset (variable-length
// instructions key naturally; fixed-width ISAs simply leave the
// intermediate offsets nil), filled on first execution and consulted on
// every subsequent one. Any write into a segment that has been executed
// from — a data store, a planted breakpoint, a trap restoration —
// invalidates the entries the written bytes could cover, so the next
// execution at those addresses re-decodes what is actually in memory.
// This is the §3 retargeting seam made fast: ldb plants breakpoints by
// overwriting no-ops in text through ordinary stores, and the
// invalidation contract is what keeps plant, unplant, and stale decoded
// instructions from ever disagreeing.
package machine

import "ldb/internal/arch"

// maxInsnBytes bounds how many bytes before a written address an
// instruction may start and still cover it: the longest instruction any
// target emits (a VAX three-operand op with long-displacement specifiers)
// is 16 bytes.
const maxInsnBytes = 16

// SimStats counts decode-cache activity. Steps (on Process) counts
// executed instructions; here Hits is how many executed from a cached
// entry, Decodes how many had to be decoded first, Fallbacks how many
// went through the uncached Step path (no decoder, predecode disabled,
// or bytes that do not decode), and Invalidations how many cached
// entries text writes destroyed. Hits is not counted on the hot path:
// every executed instruction is exactly one of a hit, a decode, or a
// fallback, so SimStats derives it from Steps. Read stats through
// Process.SimStats, which fills it in.
type SimStats struct {
	Hits          int64
	Decodes       int64
	Invalidations int64
	Fallbacks     int64
	// Blocks counts superblocks formed and BlockInsns the instructions
	// fused into them, so BlockInsns/Blocks is the mean fused-run
	// length. Both stay zero with fusion off; neither changes the
	// meaning of the per-instruction counters above — a fused block
	// retiring N instructions still advances Steps by N, so Hits and
	// HitRate remain comparable across engines.
	Blocks     int64
	BlockInsns int64
}

// SimStats returns the decode-cache counters with the derived Hits
// filled in. With predecoding off every step is a fallback, whether or
// not the slow path bothered to count it.
func (p *Process) SimStats() SimStats {
	s := p.Sim
	if p.dec != nil && !p.NoPredecode {
		s.Hits = p.Steps - s.Decodes - s.Fallbacks
	} else {
		s.Hits, s.Fallbacks = 0, p.Steps
	}
	return s
}

// HitRate is the fraction of executed instructions served from the
// decode cache.
func (s SimStats) HitRate() float64 {
	total := s.Hits + s.Decodes + s.Fallbacks
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// step executes one instruction, through the decode cache when the
// architecture supports it. It has exactly Step's contract.
func (p *Process) step() *arch.Fault {
	if p.dec == nil || p.NoPredecode {
		return p.A.Step(p)
	}
	pc := p.pc
	s := p.lastText
	if s == nil || pc-s.Base >= uint32(len(s.Data)) {
		s = nil
		for _, t := range p.Segs {
			if pc-t.Base < uint32(len(t.Data)) {
				s = t
				break
			}
		}
		if s == nil {
			// Unmapped pc: let Step raise the fault it always raised.
			p.Sim.Fallbacks++
			return p.A.Step(p)
		}
		p.lastText = s
	}
	off := pc - s.Base
	if s.decoded == nil {
		s.decoded = make([]arch.DecodedInsn, len(s.Data))
	}
	d := &s.decoded[off]
	if d.Exec == nil {
		dn := p.dec.Decode(s.Data, int(off), pc)
		if dn == nil {
			p.Sim.Fallbacks++
			return p.A.Step(p)
		}
		if s.ro {
			s.privatize()
			d = &s.decoded[off]
		}
		*d = *dn
		p.Sim.Decodes++
	}
	next, f := d.Exec(p, p.regs, &p.flag, pc)
	if f != nil {
		return f
	}
	p.pc = next
	return nil
}

// invalidate clears every cached entry that the write of n bytes at
// addr could cover. The lookback is entry-length-aware: a decoded
// instruction starts at most maxInsnBytes-1 before the written range,
// but a superblock spans a whole fused run, so a store landing
// mid-block — a breakpoint plant or unplant included — must drop the
// entire entry, and the block scan looks back maxBlockBytes-1.
// Dropping any block bumps the segment generation, which severs
// predicted-successor links and aborts a block caught mid-execution.
// Segments never executed from carry no caches and cost two nil checks.
func (p *Process) invalidate(s *Segment, addr uint32, n int) {
	// Thin enough to inline: data and stack stores pay three nil checks,
	// not a call.
	if sh := s.shadow; sh != nil {
		sh.Mark(int(addr-s.Base), n)
	}
	if s.decoded == nil && s.sblocks == nil {
		return
	}
	p.invalidateCaches(s, addr, n)
}

func (p *Process) invalidateCaches(s *Segment, addr uint32, n int) {
	if n <= 0 {
		return
	}
	// A shared decoded slice must be copied before entries are cleared:
	// the other processes referencing it did not write these bytes.
	s.privatize()
	lo := addr - s.Base
	if s.decoded != nil {
		start := int(lo) - (maxInsnBytes - 1)
		if start < 0 {
			start = 0
		}
		end := int(lo) + n
		if end > len(s.decoded) {
			end = len(s.decoded)
		}
		for i := start; i < end; i++ {
			d := &s.decoded[i]
			if d.Exec == nil {
				continue
			}
			if uint32(i)+d.Len <= lo {
				continue // ends before the written range
			}
			*d = arch.DecodedInsn{}
			p.Sim.Invalidations++
		}
	}
	if s.sblocks != nil {
		start := int(lo) - (maxBlockBytes - 1)
		if start < 0 {
			start = 0
		}
		end := int(lo) + n
		if end > len(s.sblocks) {
			end = len(s.sblocks)
		}
		dropped := false
		for i := start; i < end; i++ {
			b := s.sblocks[i]
			if b == nil {
				continue
			}
			if uint32(i)+b.nbytes <= lo {
				continue // the whole run ends before the written range
			}
			s.sblocks[i] = nil
			dropped = true
			p.Sim.Invalidations++
		}
		if dropped {
			s.gen++
		}
	}
}
