// Superblock execution: Run fuses straight-line runs of decoded
// instructions into compiled blocks and dispatches block-at-a-time, so
// the per-instruction costs of the decode-cache hit loop — the offset
// computation, bounds check, slot load, nil check, and pc store — are
// paid once per block instead of once per step. A block runs from its
// entry point to the first instruction whose decoder marked it
// arch.InsnTerm (branch, call, return, trap, syscall, halt): every
// earlier instruction is guaranteed to fall through to pc+Len, which is
// what licenses executing the run without consulting the cache between
// instructions — and licenses not threading a pc through the run at
// all: each op records its byte offset from the block entry, and only
// the final instruction's successor decides where execution goes next.
// Blocks chain through a predicted-successor link, so a hot loop whose
// branch keeps jumping to the same entry never leaves fused code.
//
// Within a block, instructions the decoder translated to
// machine-independent micro-ops (arch.Uop: register arithmetic, NZC
// compares, sized memory accesses) execute inline in the dispatch
// switch — no indirect call, no closure environment — and everything
// else escapes to the instruction's Exec closure. Formation and
// dispatch are machine-independent: they consume only the Len, Flags,
// and Uop metadata each arch.Decoder attaches to its entries, keeping
// the fusion on the machine-independent side of the paper's
// retargeting seam.
package machine

import (
	"ldb/internal/amem"
	"ldb/internal/arch"
)

// maxBlockInsns bounds how many instructions one superblock fuses; a
// run longer than this is split, which costs one extra dispatch per 64
// instructions and keeps invalidation lookback bounded.
const maxBlockInsns = 64

// maxBlockBytes bounds how many bytes before a written address a
// superblock may start and still cover it (see invalidate).
const maxBlockBytes = maxBlockInsns * maxInsnBytes

// execFn is the predecoded handler signature, named so block slices
// stay readable.
type execFn func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault)

// fusedOp is one compiled instruction of a superblock: an inline
// micro-op (op != arch.UopNone) the dispatch loop executes directly, or
// an escape to the instruction's Exec closure. off is the instruction's
// byte offset from the block entry, from which its own pc is
// reconstructed on the paths that need one (closure calls, faults,
// mid-block aborts). Micro-ops that can abort or branch imply a 4-byte
// instruction — buildBlock compiles memory and terminator ops only from
// entries with Len 4, because the abort and fall-through paths
// reconstruct per-instruction pcs as off+4. Pure register/flag ops
// (arch.Uop.Pure) never reach those paths and fuse at any length, which
// is how the variable-width 68020 joins the fused fast path.
type fusedOp struct {
	x       execFn
	imm     uint32
	op      arch.Uop
	d, s, t uint8
	off     uint16
}

// sblock is one fused run of decoded instructions. nbytes is the byte
// span the run covers, which invalidation uses to drop a block when a
// text write lands anywhere inside it. succ caches the block the last
// execution continued into (valid while succGen matches the segment's
// generation), so stable control flow skips the entry lookup.
type sblock struct {
	ops    []fusedOp
	nbytes uint32
	// fall is true when the final op falls through (a run split
	// mid-stream at maxBlockInsns or the segment edge): the successor is
	// the byte after the block. Otherwise the final op — a terminator
	// micro-op or a closure — computed the successor itself.
	fall bool

	succ    *sblock
	succPC  uint32
	succGen uint64
}

// buildBlock fuses the straight-line run starting at off/pc. It reuses
// decoded entries already in the segment cache and decodes the rest
// (counting them, so hit-rate accounting matches the per-instruction
// engine); the run ends at the first terminator, the first undecodable
// instruction, the end of the segment, or maxBlockInsns. A nil return
// means the entry instruction itself does not decode and the caller
// must fall back to Step.
func (p *Process) buildBlock(s *Segment, off, pc uint32) *sblock {
	var b sblock
	for len(b.ops) < maxBlockInsns {
		d := &s.decoded[off]
		if d.Exec == nil {
			dn := p.dec.Decode(s.Data, int(off), pc)
			if dn == nil {
				break
			}
			if s.ro {
				s.privatize()
				d = &s.decoded[off]
			}
			*d = *dn
			p.Sim.Decodes++
		}
		u := fusedOp{off: uint16(b.nbytes)}
		if d.Uop != arch.UopNone && (d.Len == 4 || d.Uop.Pure()) {
			u.op, u.d, u.s, u.t, u.imm = d.Uop, d.UD, d.US, d.UT, d.UImm
		} else {
			u.x = execFn(d.Exec)
		}
		b.ops = append(b.ops, u)
		b.nbytes += d.Len
		off += d.Len
		pc += d.Len
		if d.Flags&arch.InsnTerm != 0 || off >= uint32(len(s.decoded)) {
			break
		}
	}
	if len(b.ops) == 0 {
		return nil
	}
	last := b.ops[len(b.ops)-1].op
	b.fall = last != arch.UopNone && !last.Term()
	return &b
}

// runFused executes from superblocks until something forces
// per-instruction execution: a fault (returned for Run to deliver), an
// unmapped or undecodable pc, or the step limit drawing near (nil
// return; the caller either fires a due auto-checkpoint or lets the
// step() fallback take over at the committed pc, one checked
// instruction at a time). limit is MaxSteps, possibly tightened to the
// next auto-checkpoint boundary — pacing costs the fast path nothing.

func (p *Process) runFused(limit int64) *arch.Fault {
	pc := p.pc
	s := p.lastText
	if s == nil || pc-s.Base >= uint32(len(s.Data)) {
		s = nil
		for _, t := range p.Segs {
			if pc-t.Base < uint32(len(t.Data)) {
				s = t
				break
			}
		}
		if s == nil {
			return nil // unmapped pc: step() raises the fault Step always raised
		}
		p.lastText = s
	}
	if s.decoded == nil {
		s.decoded = make([]arch.DecodedInsn, len(s.Data))
	}
	if s.sblocks == nil {
		s.sblocks = make([]*sblock, len(s.Data))
	}
	regs := p.regs
	flag := &p.flag
	ap := arch.Proc(p)
	be := p.be
	steps := p.Steps
	var prev *sblock
	for {
		off := pc - s.Base
		if off >= uint32(len(s.sblocks)) {
			break // left the segment; the caller re-resolves
		}
		var b *sblock
		if prev != nil && prev.succ != nil && prev.succPC == pc && prev.succGen == s.gen {
			b = prev.succ
		} else {
			b = s.sblocks[off]
			if b == nil {
				b = p.buildBlock(s, off, pc)
				if b == nil {
					break // entry does not decode: step() falls back
				}
				s.sblocks[off] = b
				p.Sim.Blocks++
				p.Sim.BlockInsns += int64(len(b.ops))
			}
			if prev != nil {
				prev.succ, prev.succPC, prev.succGen = b, pc, s.gen
			}
		}
		ops := b.ops
		n := len(ops)
		if steps+int64(n) > limit {
			break // take the last few instructions through step()'s per-step check
		}
		gen := s.gen
		bpc := pc
		i := 0
		var f *arch.Fault
		var next, v uint32
		for ; i < n; i++ {
			u := &ops[i]
			switch u.op {
			case arch.UopNone:
				next, f = u.x(ap, regs, flag, bpc+uint32(u.off))
				if f != nil {
					goto fault
				}
				if s.gen != gen {
					goto abort
				}
			case arch.UopNop:
			case arch.UopConst:
				regs[u.d] = u.imm
			case arch.UopAddI:
				regs[u.d] = regs[u.s] + u.imm
			case arch.UopAdd:
				regs[u.d] = regs[u.s] + regs[u.t]
			case arch.UopSub:
				regs[u.d] = regs[u.s] - regs[u.t]
			case arch.UopAnd:
				regs[u.d] = regs[u.s] & regs[u.t]
			case arch.UopAndI:
				regs[u.d] = regs[u.s] & u.imm
			case arch.UopOr:
				regs[u.d] = regs[u.s] | regs[u.t]
			case arch.UopOrI:
				regs[u.d] = regs[u.s] | u.imm
			case arch.UopXor:
				regs[u.d] = regs[u.s] ^ regs[u.t]
			case arch.UopXorI:
				regs[u.d] = regs[u.s] ^ u.imm
			case arch.UopNor:
				regs[u.d] = ^(regs[u.s] | regs[u.t])
			case arch.UopMul:
				regs[u.d] = regs[u.s] * regs[u.t]
			case arch.UopShlI:
				regs[u.d] = regs[u.s] << u.imm
			case arch.UopShrI:
				regs[u.d] = regs[u.s] >> u.imm
			case arch.UopSarI:
				regs[u.d] = uint32(int32(regs[u.s]) >> u.imm)
			case arch.UopShl:
				regs[u.d] = regs[u.s] << (regs[u.t] & 31)
			case arch.UopShr:
				regs[u.d] = regs[u.s] >> (regs[u.t] & 31)
			case arch.UopSar:
				regs[u.d] = uint32(int32(regs[u.s]) >> (regs[u.t] & 31))
			case arch.UopSltI:
				v = 0
				if int32(regs[u.s]) < int32(u.imm) {
					v = 1
				}
				regs[u.d] = v
			case arch.UopSlt:
				v = 0
				if int32(regs[u.s]) < int32(regs[u.t]) {
					v = 1
				}
				regs[u.d] = v
			case arch.UopSltu:
				v = 0
				if regs[u.s] < regs[u.t] {
					v = 1
				}
				regs[u.d] = v
			case arch.UopCmp:
				*flag = arch.SubFlags(regs[u.s], regs[u.t])
			case arch.UopCmpI:
				*flag = arch.SubFlags(regs[u.s], u.imm)
			case arch.UopSubCC:
				a, bb := regs[u.s], regs[u.t]
				regs[u.d] = a - bb
				*flag = arch.SubFlags(a, bb)
			case arch.UopSubCCI:
				a := regs[u.s]
				regs[u.d] = a - u.imm
				*flag = arch.SubFlags(a, u.imm)
			case arch.UopLd32:
				addr := regs[u.s] + regs[u.t] + u.imm
				wd, wb := p.memData, p.memBase
				if uint64(addr-wb)+4 > uint64(len(wd)) {
					wd, wb = p.memData2, p.memBase2
				}
				if uint64(addr-wb)+4 <= uint64(len(wd)) {
					d := wd[addr-wb:]
					if be {
						v = uint32(d[3]) | uint32(d[2])<<8 | uint32(d[1])<<16 | uint32(d[0])<<24 //ldb:allow endian open-coded load in the arch's declared order; the fused dispatch loop
					} else {
						v = uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24 //ldb:allow endian open-coded load in the arch's declared order; the fused dispatch loop
					}
				} else {
					if v, f = p.Load(addr, 4); f != nil {
						goto fault
					}
				}
				regs[u.d] = v
			case arch.UopLd16U, arch.UopLd16S:
				addr := regs[u.s] + regs[u.t] + u.imm
				wd, wb := p.memData, p.memBase
				if uint64(addr-wb)+2 > uint64(len(wd)) {
					wd, wb = p.memData2, p.memBase2
				}
				if uint64(addr-wb)+2 <= uint64(len(wd)) {
					d := wd[addr-wb:]
					if be {
						v = uint32(d[1]) | uint32(d[0])<<8 //ldb:allow endian open-coded load in the arch's declared order; the fused dispatch loop
					} else {
						v = uint32(d[0]) | uint32(d[1])<<8 //ldb:allow endian open-coded load in the arch's declared order; the fused dispatch loop
					}
				} else {
					if v, f = p.Load(addr, 2); f != nil {
						goto fault
					}
				}
				if u.op == arch.UopLd16S {
					v = uint32(int32(int16(v)))
				}
				regs[u.d] = v
			case arch.UopLd8U, arch.UopLd8S:
				addr := regs[u.s] + regs[u.t] + u.imm
				wd, wb := p.memData, p.memBase
				if uint64(addr-wb)+1 > uint64(len(wd)) {
					wd, wb = p.memData2, p.memBase2
				}
				if uint64(addr-wb)+1 <= uint64(len(wd)) {
					v = uint32(wd[addr-wb])
				} else {
					if v, f = p.Load(addr, 1); f != nil {
						goto fault
					}
				}
				if u.op == arch.UopLd8S {
					v = uint32(int32(int8(v)))
				}
				regs[u.d] = v
			case arch.UopSt32:
				addr := regs[u.s] + regs[u.t] + u.imm
				v = regs[u.d]
				wd, wb, ws := p.memData, p.memBase, p.lastSeg
				if uint64(addr-wb)+4 > uint64(len(wd)) {
					wd, wb, ws = p.memData2, p.memBase2, p.memSeg2
				}
				if uint64(addr-wb)+4 <= uint64(len(wd)) {
					d := wd[addr-wb:]
					if be {
						d[0], d[1], d[2], d[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
					} else {
						d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
					}
					if sh := ws.shadow; sh != nil {
						pg := (addr - wb) >> amem.SnapShift
						sh.Dirty[pg] = true
						if pg2 := (addr - wb + 3) >> amem.SnapShift; pg2 != pg {
							sh.Dirty[pg2] = true
						}
					}
					if ws.decoded != nil || ws.sblocks != nil {
						p.invalidateCaches(ws, addr, 4)
						if s.gen != gen {
							goto abort
						}
					}
				} else {
					if f = p.Store(addr, 4, v); f != nil {
						goto fault
					}
					if s.gen != gen {
						goto abort
					}
				}
			case arch.UopSt16:
				addr := regs[u.s] + regs[u.t] + u.imm
				v = regs[u.d]
				wd, wb, ws := p.memData, p.memBase, p.lastSeg
				if uint64(addr-wb)+2 > uint64(len(wd)) {
					wd, wb, ws = p.memData2, p.memBase2, p.memSeg2
				}
				if uint64(addr-wb)+2 <= uint64(len(wd)) {
					d := wd[addr-wb:]
					if be {
						d[0], d[1] = byte(v>>8), byte(v)
					} else {
						d[0], d[1] = byte(v), byte(v>>8)
					}
					if sh := ws.shadow; sh != nil {
						pg := (addr - wb) >> amem.SnapShift
						sh.Dirty[pg] = true
						if pg2 := (addr - wb + 1) >> amem.SnapShift; pg2 != pg {
							sh.Dirty[pg2] = true
						}
					}
					if ws.decoded != nil || ws.sblocks != nil {
						p.invalidateCaches(ws, addr, 2)
						if s.gen != gen {
							goto abort
						}
					}
				} else {
					if f = p.Store(addr, 2, v); f != nil {
						goto fault
					}
					if s.gen != gen {
						goto abort
					}
				}
			case arch.UopSt8:
				addr := regs[u.s] + regs[u.t] + u.imm
				v = regs[u.d]
				wd, wb, ws := p.memData, p.memBase, p.lastSeg
				if uint64(addr-wb)+1 > uint64(len(wd)) {
					wd, wb, ws = p.memData2, p.memBase2, p.memSeg2
				}
				if uint64(addr-wb)+1 <= uint64(len(wd)) {
					wd[addr-wb] = byte(v)
					if sh := ws.shadow; sh != nil {
						sh.Dirty[(addr-wb)>>amem.SnapShift] = true
					}
					if ws.decoded != nil || ws.sblocks != nil {
						p.invalidateCaches(ws, addr, 1)
						if s.gen != gen {
							goto abort
						}
					}
				} else {
					if f = p.Store(addr, 1, v); f != nil {
						goto fault
					}
					if s.gen != gen {
						goto abort
					}
				}
			// Terminators: always the final op of a block (buildBlock ends
			// the run at InsnTerm), never fault, never invalidate; they
			// compute next and the block-end code below commits it.
			case arch.UopJmp:
				next = u.imm
			case arch.UopJmpL:
				regs[u.d] = bpc + uint32(u.off) + uint32(u.t)
				next = u.imm
			case arch.UopJmpInd:
				next = regs[u.s] + regs[u.t] + u.imm
			case arch.UopJmpIndL:
				v = regs[u.s] + u.imm
				regs[u.d] = bpc + uint32(u.off) + uint32(u.t)
				next = v
			case arch.UopBeq:
				next = bpc + uint32(u.off) + 4
				if regs[u.s] == regs[u.t] {
					next = u.imm
				}
			case arch.UopBne:
				next = bpc + uint32(u.off) + 4
				if regs[u.s] != regs[u.t] {
					next = u.imm
				}
			case arch.UopBlt:
				next = bpc + uint32(u.off) + 4
				if int32(regs[u.s]) < int32(regs[u.t]) {
					next = u.imm
				}
			case arch.UopBge:
				next = bpc + uint32(u.off) + 4
				if int32(regs[u.s]) >= int32(regs[u.t]) {
					next = u.imm
				}
			case arch.UopBle:
				next = bpc + uint32(u.off) + 4
				if int32(regs[u.s]) <= int32(regs[u.t]) {
					next = u.imm
				}
			case arch.UopBgt:
				next = bpc + uint32(u.off) + 4
				if int32(regs[u.s]) > int32(regs[u.t]) {
					next = u.imm
				}
			case arch.UopBcc:
				next = bpc + uint32(u.off) + 4
				if uint32(u.d)>>(*flag&7)&1 != 0 {
					next = u.imm
				}
			}
		}
		steps += int64(n)
		// Only the final instruction decides the next pc: a terminator —
		// micro-op or closure — computed it in next; a fused run split
		// mid-stream falls through to the byte after the block.
		if b.fall {
			pc = bpc + b.nbytes
		} else {
			pc = next
		}
		prev = b
		continue
	abort:
		// Instruction i stored over this segment's text, so the rest of
		// the fused run may be stale. Commit what retired and re-enter
		// through the cache.
		steps += int64(i) + 1
		if ops[i].op != arch.UopNone {
			pc = bpc + uint32(ops[i].off) + 4
		} else {
			pc = next
		}
		prev = nil
		continue
	fault:
		// Steps counts the faulting instruction, exactly as the
		// per-instruction loop does. The Proc-visible pc is not stored
		// per instruction in fused mode, so signal faults minted from
		// it inside Load/Store carry a stale address — restamp them
		// with the faulting instruction's own pc, which is what
		// per-instruction execution would have recorded. The committed
		// pc is that address too, unless the handler advanced it itself
		// (syscalls SetPC before trapping, as Step does).
		p.Steps = steps + int64(i) + 1
		if f.Kind != arch.FaultSyscall {
			fpc := bpc + uint32(ops[i].off)
			f.PC = fpc
			p.pc = fpc
		}
		return f
	}
	p.Steps = steps
	p.pc = pc
	return nil
}
