package machine

import (
	"bytes"
	"fmt"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/arch/mips"
)

// ckLoop assembles a mips loop that runs n iterations, each writing its
// counter into the data segment (dirtying memory between checkpoints),
// then traps.
func ckLoop(t *testing.T, n int32) []byte {
	t.Helper()
	const (
		ctr   = mips.T0
		bound = mips.T0 + 1
		base  = mips.T0 + 2
		off   = mips.T0 + 3
		ptr   = mips.T0 + 4
	)
	as := mips.NewAsm(mips.Little)
	as.LI(ctr, 0)
	as.LI(bound, n)
	as.LI(base, int32(DataBase))
	as.LI(off, 0)
	as.Label("loop")
	as.I(mips.OpAddiu, ctr, ctr, 1)    // counter++
	as.R(mips.FnAddu, ptr, base, off)  // ptr = base + off
	as.I(mips.OpSw, ctr, ptr, 0)       // store counter
	as.I(mips.OpAddiu, off, off, 4)    // advance, wrapped inside the
	as.I(mips.OpAndi, off, off, 0xffc) // 4KB data segment
	as.Branch(mips.OpBne, ctr, bound, "loop")
	as.Break(7)
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// stateSig summarizes everything observable about a process.
func stateSig(p *Process) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "pc=%#x steps=%d state=%v exit=%d flag=%#x regs=%v stdout=%q",
		p.PC(), p.Steps, p.State, p.ExitCode, p.Flag(), p.regs, p.Stdout.String())
	for _, s := range p.Segs {
		fmt.Fprintf(&b, " %s=%x", s.Name, s.Data)
	}
	return b.String()
}

// ckLoopProcess builds the loop program on a fresh process with a small
// data segment (the andi keeps the store pointer inside it).
func ckLoopProcess(t *testing.T, n int32) *Process {
	t.Helper()
	code := ckLoop(t, n)
	p := New(mips.Little, code, make([]byte, 0x1000), TextBase)
	return p
}

func TestCheckpointRestoreReconverges(t *testing.T) {
	p := ckLoopProcess(t, 50_000)
	var cks []*Checkpoint
	p.EnableCheckpoints()
	p.SetAutoCheckpoint(9_000, func() { cks = append(cks, p.TakeCheckpoint()) })
	f := p.Run()
	if f == nil || f.Sig != arch.SigTrap || f.Code != 7 {
		t.Fatalf("run: %+v", f)
	}
	final := stateSig(p)
	if len(cks) < 5 {
		t.Fatalf("only %d auto-checkpoints fired", len(cks))
	}

	for i, ck := range cks {
		// Scribble over the live state, then rewind.
		p.SetReg(mips.T0, 0xdeadbeef)
		p.Segs[1].Data[0] = 0xEE
		if err := p.Restore(ck); err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
		if p.Steps != ck.Steps {
			t.Fatalf("restore %d: steps %d, want %d", i, p.Steps, ck.Steps)
		}
		if f := p.Run(); f == nil || f.Sig != arch.SigTrap {
			t.Fatalf("rerun from %d: %+v", i, f)
		}
		if got := stateSig(p); got != final {
			t.Fatalf("rerun from checkpoint %d diverged:\n got %.200s\nwant %.200s", i, got, final)
		}
	}
}

func TestFromCheckpointReconverges(t *testing.T) {
	p := ckLoopProcess(t, 20_000)
	var ck *Checkpoint
	p.SetAutoCheckpoint(7_000, func() {
		if ck == nil {
			ck = p.TakeCheckpoint()
		}
	})
	if f := p.Run(); f == nil || f.Sig != arch.SigTrap {
		t.Fatal("run did not trap")
	}
	final := stateSig(p)
	if ck == nil {
		t.Fatal("no checkpoint fired")
	}

	q, err := FromCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	if f := q.Run(); f == nil || f.Sig != arch.SigTrap {
		t.Fatal("resurrected run did not trap")
	}
	if got := stateSig(q); got != final {
		t.Fatalf("resurrected process diverged:\n got %.200s\nwant %.200s", got, final)
	}

	// The checkpoint is immutable: the original and the resurrection
	// both ran past it, yet restoring it again still rewinds correctly.
	if err := p.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if f := p.Run(); f == nil || f.Sig != arch.SigTrap {
		t.Fatal("second rewind did not trap")
	}
	if got := stateSig(p); got != final {
		t.Fatal("second rewind diverged")
	}
}

// TestCheckpointPacingModes pins that auto-checkpoints fire at the
// configured interval in all three engines (fused, per-instruction,
// uncached), and that disabling them restores the plain step limit.
func TestCheckpointPacingModes(t *testing.T) {
	for _, mode := range []struct {
		name                string
		noPredecode, noFuse bool
	}{{"fused", false, false}, {"perinsn", false, true}, {"uncached", true, false}} {
		p := ckLoopProcess(t, 30_000)
		p.NoPredecode, p.NoFuse = mode.noPredecode, mode.noFuse
		fired := 0
		p.SetAutoCheckpoint(10_000, func() { fired++ })
		if f := p.Run(); f == nil || f.Sig != arch.SigTrap {
			t.Fatalf("%s: run did not trap", mode.name)
		}
		// ~6 instructions per iteration: 30k iterations is ~180k steps,
		// so an interval of 10k must fire at least 15 times and close to
		// steps/interval overall.
		want := p.Steps / 10_000
		if int64(fired) < want-1 || int64(fired) > want+1 {
			t.Fatalf("%s: %d checkpoints over %d steps, want ~%d", mode.name, fired, p.Steps, want)
		}
	}

	// Disabled: callback never fires.
	p := ckLoopProcess(t, 1_000)
	fired := 0
	p.SetAutoCheckpoint(10_000, func() { fired++ })
	p.SetAutoCheckpoint(-1, nil)
	if f := p.Run(); f == nil || f.Sig != arch.SigTrap {
		t.Fatal("run did not trap")
	}
	if fired != 0 {
		t.Fatalf("disabled pacing fired %d times", fired)
	}
}

// TestRestoreRejectsMismatch pins the validation errors.
func TestRestoreRejectsMismatch(t *testing.T) {
	p := ckLoopProcess(t, 10)
	ck := p.TakeCheckpoint()

	q := New(mips.Little, make([]byte, 8), nil, TextBase)
	if err := q.Restore(ck); err == nil {
		t.Fatal("mismatched segment shape accepted")
	}
	ck2 := p.TakeCheckpoint()
	ck2.Arch = "nonesuch"
	if err := p.Restore(ck2); err == nil {
		t.Fatal("mismatched arch accepted")
	}
	if _, err := FromCheckpoint(ck2); err == nil {
		t.Fatal("unknown arch resurrected")
	}
}
