// Checkpoints: a Process can fork an immutable copy-on-write snapshot
// of its entire state — memory (page-granular, O(dirty pages) per
// checkpoint via amem's Shadow), registers, lifecycle, simulator
// accounting — and later restore it in place or rebuild a fresh process
// from it. The simulators are deterministic, so a checkpoint plus a
// compact log of externally-visible inputs since it (nub stores,
// breakpoint plants, resume requests) reaches any later point by
// bounded re-execution; the nub records and replays that log, the
// machine only carries it. Periodic auto-checkpointing rides Run at a
// configurable instruction interval: the pacing is folded into the
// existing step limit, so the superblock fast path is untouched between
// checkpoints.
package machine

import (
	"encoding/binary"
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/arch"
)

// EventKind labels one replayable input in a checkpoint's event log.
type EventKind uint8

// Event kinds: the externally-visible inputs that can change target
// state between checkpoints, mirroring the nub's mutating requests.
const (
	EvStoreInt EventKind = iota + 1
	EvStoreFloat
	EvStoreBytes
	EvPlant
	EvUnplant
	EvContinue // resume request: restore the context area, then run
	EvStep     // resume request: restore the context area, then step
	EvResume   // bare resume (no context restore): the checkpoint was taken mid-run
)

// Event is one replayable input. The fields mirror the wire request the
// nub originally served, so replaying an event through the same handler
// reproduces exactly the original semantics (space checks, float
// quirks, plant bookkeeping included).
type Event struct {
	Kind  EventKind
	Space byte
	Addr  uint32
	Size  uint32
	Val   uint64
	Data  []byte
}

// SegSnapshot is the immutable snapshot of one segment.
type SegSnapshot struct {
	Name string
	Base uint32
	Mem  *amem.PageMap
}

// Checkpoint bundles everything needed to reconstruct a Process — and,
// with the nub-owned Planted and Events fields filled in, a whole debug
// session — at the moment it was taken. The snapshot itself is
// immutable; Events is the log of inputs accepted after it, which the
// nub appends to and replays.
type Checkpoint struct {
	Arch     string
	Steps    int64
	PC       uint32
	Flag     uint32
	State    State
	ExitCode int
	Regs     []uint32
	FRegs    []float64
	Stdout   []byte
	Sim      SimStats
	Segs     []SegSnapshot

	// Planted is the debug layer's planted-breakpoint set (address →
	// overwritten bytes); the nub fills it, the machine carries it.
	Planted map[uint32][]byte
	// Events is the log of externally-visible inputs accepted since the
	// snapshot, in order. Replaying it through the nub's handlers
	// re-derives any later state.
	Events []Event
}

// DefaultCheckpointInterval is the auto-checkpoint pacing Run uses when
// the caller does not choose one: every 2^20 executed instructions.
const DefaultCheckpointInterval = 1 << 20

// EnableCheckpoints arms page-granular dirty tracking on every segment,
// so TakeCheckpoint costs O(pages written since the last one). Stores
// pay one predictable branch per access once armed.
func (p *Process) EnableCheckpoints() {
	for _, s := range p.Segs {
		if s.shadow == nil {
			s.shadow = amem.NewShadow(len(s.Data))
		}
	}
}

// SetAutoCheckpoint installs fn to be called from Run's outer loop
// every `every` executed instructions (0 means
// DefaultCheckpointInterval, negative disables). fn runs between fused
// blocks with the process state fully committed, so it may call
// TakeCheckpoint.
func (p *Process) SetAutoCheckpoint(every int64, fn func()) {
	if every == 0 {
		every = DefaultCheckpointInterval
	}
	if every < 0 {
		p.ckEvery, p.ckFn = 0, nil
		return
	}
	p.ckEvery, p.ckFn = every, fn
	p.ckNext = p.Steps + every
}

// autoCheckpoint fires the pacing callback and schedules the next one.
func (p *Process) autoCheckpoint() {
	p.ckNext = p.Steps + p.ckEvery
	if p.ckFn != nil {
		p.ckFn()
	}
}

// ckLimit folds the next auto-checkpoint into the run step limit.
func (p *Process) ckLimit() int64 {
	limit := MaxSteps
	if p.ckEvery > 0 && p.ckNext < limit {
		limit = p.ckNext
	}
	return limit
}

// TakeCheckpoint forks an immutable snapshot of the process. The first
// call arms dirty tracking and copies everything; later calls copy only
// pages written since the previous checkpoint and share the rest.
//
//ldb:deterministic
func (p *Process) TakeCheckpoint() *Checkpoint {
	p.EnableCheckpoints()
	ck := &Checkpoint{
		Arch:     p.A.Name(),
		Steps:    p.Steps,
		PC:       p.pc,
		Flag:     p.flag,
		State:    p.State,
		ExitCode: p.ExitCode,
		Regs:     append([]uint32(nil), p.regs...),
		FRegs:    append([]float64(nil), p.fregs...),
		Stdout:   append([]byte(nil), p.Stdout.Bytes()...),
		Sim:      p.Sim,
	}
	for _, s := range p.Segs {
		ck.Segs = append(ck.Segs, SegSnapshot{Name: s.Name, Base: s.Base, Mem: s.shadow.Fork(s.Data)})
	}
	return ck
}

// Restore rewinds the process in place to a checkpoint taken from it
// (or from an identically shaped process). Decode and superblock caches
// over restored segments are dropped — the restored bytes may disagree
// with them — and the memory fast-path windows are reset.
func (p *Process) Restore(ck *Checkpoint) error {
	if ck.Arch != p.A.Name() {
		return fmt.Errorf("machine: checkpoint for %q restored into %q process", ck.Arch, p.A.Name())
	}
	if len(ck.Segs) != len(p.Segs) {
		return fmt.Errorf("machine: checkpoint has %d segments, process has %d", len(ck.Segs), len(p.Segs))
	}
	for i, snap := range ck.Segs {
		s := p.Segs[i]
		if snap.Name != s.Name || snap.Base != s.Base || snap.Mem.Len() != len(s.Data) {
			return fmt.Errorf("machine: checkpoint segment %q@%#x/%d does not match %q@%#x/%d",
				snap.Name, snap.Base, snap.Mem.Len(), s.Name, s.Base, len(s.Data))
		}
	}
	for i, snap := range ck.Segs {
		s := p.Segs[i]
		snap.Mem.CopyTo(s.Data)
		s.decoded = nil
		s.sblocks = nil
		s.ro = false
		s.gen++
		if s.shadow != nil {
			s.shadow.Reset(snap.Mem)
		}
	}
	copy(p.regs, ck.Regs)
	copy(p.fregs, ck.FRegs)
	p.pc = ck.PC
	p.flag = ck.Flag
	p.State = ck.State
	p.ExitCode = ck.ExitCode
	p.Steps = ck.Steps
	p.Sim = ck.Sim
	p.Stdout.Reset()
	p.Stdout.Write(ck.Stdout)
	p.lastSeg, p.lastText = nil, nil
	p.memBase, p.memData = 0, nil
	p.memBase2, p.memData2, p.memSeg2 = 0, nil, nil
	if p.ckEvery > 0 {
		p.ckNext = p.Steps + p.ckEvery
	}
	return nil
}

// FromCheckpoint rebuilds a fresh Process from a checkpoint — the
// resurrection path. Dirty tracking is armed against the checkpoint's
// own pages, so the first checkpoint of the resurrected process is
// again O(dirty).
func FromCheckpoint(ck *Checkpoint) (*Process, error) {
	a, ok := arch.Lookup(ck.Arch)
	if !ok {
		return nil, fmt.Errorf("machine: checkpoint names unknown architecture %q", ck.Arch)
	}
	p := &Process{
		A:        a,
		regs:     make([]uint32, a.NumRegs()),
		fregs:    make([]float64, a.NumFRegs()),
		pc:       ck.PC,
		flag:     ck.Flag,
		State:    ck.State,
		ExitCode: ck.ExitCode,
		Steps:    ck.Steps,
		Sim:      ck.Sim,
	}
	p.dec, _ = a.(arch.Decoder)
	p.be = a.Order() == binary.BigEndian //ldb:allow endian caches the arch's declared order for the hot load/store path, as New does
	copy(p.regs, ck.Regs)
	copy(p.fregs, ck.FRegs)
	p.Stdout.Write(ck.Stdout)
	for _, snap := range ck.Segs {
		s := &Segment{Name: snap.Name, Base: snap.Base, Data: snap.Mem.Materialize()}
		s.shadow = amem.NewShadow(len(s.Data))
		s.shadow.Reset(snap.Mem)
		p.Segs = append(p.Segs, s)
	}
	return p, nil
}
