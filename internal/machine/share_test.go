package machine

import (
	"testing"

	"ldb/internal/arch"
	"ldb/internal/arch/mips"
)

// The cross-process sharing suite: a warm adopter must execute with
// zero decode work, one session's breakpoint plant must never reach
// another session's view of the shared cache, and mutated text must key
// away from the pristine entry.

func shareProg(t *testing.T) []byte {
	t.Helper()
	m := mips.Little
	as := mips.NewAsm(m)
	as.I(mips.OpAddiu, mips.T0+1, mips.R0, 20)
	as.Label("loop")
	as.I(mips.OpAddiu, mips.T0, mips.T0, 1)
	as.Branch(mips.OpBne, mips.T0, mips.T0+1, "loop")
	as.Break(3)
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func shareRun(t *testing.T, p *Process) {
	t.Helper()
	if f := p.Run(); f == nil || f.Sig != arch.SigTrap || f.Code != 3 {
		t.Fatalf("run: %+v", f)
	}
}

// TestShareWarmAdoptZeroDecodes publishes one process's decode products
// and checks a second identical process runs entirely from them: zero
// decodes, full hit rate, same architectural outcome.
func TestShareWarmAdoptZeroDecodes(t *testing.T) {
	code := shareProg(t)
	c := NewTextCache()

	p1 := New(mips.Little, code, nil, TextBase)
	if c.Adopt(p1) {
		t.Fatal("adopted from an empty cache")
	}
	shareRun(t, p1)
	if !c.Publish(p1) {
		t.Fatal("publish failed")
	}
	if c.Publish(p1) {
		t.Fatal("second publish of the same content replaced the entry")
	}

	p2 := New(mips.Little, code, nil, TextBase)
	if !c.Adopt(p2) {
		t.Fatal("identical text did not adopt")
	}
	shareRun(t, p2)
	if s := p2.SimStats(); s.Decodes != 0 {
		t.Fatalf("warm process decoded %d instructions, want 0 (%+v)", s.Decodes, s)
	}
	if p1.Steps != p2.Steps || p1.Reg(mips.T0) != p2.Reg(mips.T0) {
		t.Fatalf("warm run diverged: steps %d vs %d, t0 %d vs %d",
			p1.Steps, p2.Steps, p1.Reg(mips.T0), p2.Reg(mips.T0))
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache counters: %d hits, %d misses, want 1/1", hits, misses)
	}
}

// TestSharePlantIsolation plants a breakpoint in an adopted process and
// verifies the copy-on-write seam: the planter traps, while a second
// adopter of the same shared entry still sees pristine text and decoded
// state — one user's breakpoint never slows (or breaks) another's run.
func TestSharePlantIsolation(t *testing.T) {
	code := shareProg(t)
	m := mips.Little
	c := NewTextCache()

	p1 := New(m, code, nil, TextBase)
	shareRun(t, p1)
	c.Publish(p1)

	pa := New(m, code, nil, TextBase)
	pb := New(m, code, nil, TextBase)
	if !c.Adopt(pa) || !c.Adopt(pb) {
		t.Fatal("adopt failed")
	}
	// Plant in pa: the write privatizes its decoded slice and drops its
	// own blocks, but must leave the published entry untouched.
	if err := pa.WriteBytes(TextBase+4, m.BreakInstr()); err != nil {
		t.Fatal(err)
	}
	if f := pa.Run(); f == nil || f.Sig != arch.SigTrap || f.Code != arch.TrapBreakpoint || f.PC != TextBase+4 {
		t.Fatalf("planted run: %+v", f)
	}
	// pb runs to completion on the shared entry, still decode-free.
	shareRun(t, pb)
	if s := pb.SimStats(); s.Decodes != 0 || s.Invalidations != 0 {
		t.Fatalf("unplanted adopter disturbed: %+v", s)
	}
	// A third adopter after the plant still gets the pristine entry.
	pc := New(m, code, nil, TextBase)
	if !c.Adopt(pc) {
		t.Fatal("pristine adopt failed after another session planted")
	}
	shareRun(t, pc)
	if s := pc.SimStats(); s.Decodes != 0 {
		t.Fatalf("third adopter decoded %d, want 0", s.Decodes)
	}
}

// TestShareMutatedTextKeysAway: a process that published with a planted
// trap in text publishes under the mutated content's key, so a pristine
// process never adopts it — and a process with the same mutation does.
func TestShareMutatedTextKeysAway(t *testing.T) {
	code := shareProg(t)
	m := mips.Little
	c := NewTextCache()

	p1 := New(m, code, nil, TextBase)
	shareRun(t, p1)
	if err := p1.WriteBytes(TextBase+4, m.BreakInstr()); err != nil {
		t.Fatal(err)
	}
	p1.SetPC(TextBase)
	if f := p1.Run(); f == nil || f.Code != arch.TrapBreakpoint {
		t.Fatalf("planted run: %+v", f)
	}
	if !c.Publish(p1) {
		t.Fatal("publish of mutated text failed")
	}

	clean := New(m, code, nil, TextBase)
	if c.Adopt(clean) {
		t.Fatal("pristine text adopted a mutated-content entry")
	}

	mut := append([]byte(nil), code...)
	copy(mut[4:], m.BreakInstr())
	same := New(m, mut, nil, TextBase)
	if !c.Adopt(same) {
		t.Fatal("identically mutated text did not adopt")
	}
	if f := same.Run(); f == nil || f.Code != arch.TrapBreakpoint || f.PC != TextBase+4 {
		t.Fatalf("mutated adopter: %+v", f)
	}
	if s := same.SimStats(); s.Decodes != 0 {
		t.Fatalf("mutated adopter decoded %d, want 0", s.Decodes)
	}
}

// TestSharePublisherKeepsRunning: publishing marks the owner's cache
// read-only, so a plant after publish privatizes instead of corrupting
// the shared entry a later adopter receives.
func TestSharePublisherKeepsRunning(t *testing.T) {
	code := shareProg(t)
	m := mips.Little
	c := NewTextCache()

	p1 := New(m, code, nil, TextBase)
	shareRun(t, p1)
	c.Publish(p1)
	// Owner mutates after publishing.
	if err := p1.WriteBytes(TextBase+4, m.BreakInstr()); err != nil {
		t.Fatal(err)
	}
	p1.SetPC(TextBase)
	if f := p1.Run(); f == nil || f.Code != arch.TrapBreakpoint {
		t.Fatalf("owner planted run: %+v", f)
	}

	p2 := New(m, code, nil, TextBase)
	if !c.Adopt(p2) {
		t.Fatal("adopt failed")
	}
	shareRun(t, p2)
	if s := p2.SimStats(); s.Decodes != 0 {
		t.Fatalf("adopter decoded %d after owner mutation, want 0", s.Decodes)
	}
	if p2.Reg(mips.T0) != 20 {
		t.Fatalf("adopter t0 = %d, want 20", p2.Reg(mips.T0))
	}
}
