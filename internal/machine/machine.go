// Package machine simulates the target process and the small slice of
// operating system ldb's nub depends on: a flat address space with
// text, data, and stack segments, registers, signals, and a few system
// calls for program output and exit. The nub (package nub) attaches to
// a Process the way the paper's nub is loaded with the target program.
package machine

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/arch"
)

// Conventional segment addresses shared by all four targets.
const (
	TextBase  = 0x00400000
	DataBase  = 0x10000000
	StackTop  = 0x7fff0000
	StackSize = 0x40000
)

// Segment is a contiguous mapped region.
type Segment struct {
	Name string
	Base uint32
	Data []byte
	// decoded is the segment's decode cache, indexed by byte offset;
	// allocated lazily on first execution from the segment, so data and
	// stack segments never pay for it. See predecode.go.
	// Entries are stored by value (a nil Exec means "not decoded") so
	// dispatch loads the handler with one indirection, not two.
	decoded []arch.DecodedInsn
	// sblocks is the superblock cache, indexed by entry byte offset,
	// and gen is the segment's invalidation generation: any text write
	// that drops a block bumps it, which both severs predicted-successor
	// links and tells a block in mid-execution to abandon its remaining
	// fused instructions. See superblock.go.
	sblocks []*sblock
	gen     uint64
	// shadow, when armed by EnableCheckpoints, tracks dirty pages so a
	// checkpoint forks O(dirty pages), not O(memory). See checkpoint.go.
	shadow *amem.Shadow
	// ro marks decoded as shared read-only (adopted from, or published
	// into, a TextCache): mutators must call privatize before writing a
	// decoded entry. sblocks is always private — adoption clones block
	// headers — so only the decoded slice participates in copy-on-write.
	ro bool
}

// privatize unshares the segment's decode cache before its first
// mutation: the decoded slice may be referenced by other processes, so
// the writer copies it and drops the read-only mark. No-op on segments
// that were never shared.
func (s *Segment) privatize() {
	if !s.ro {
		return
	}
	s.decoded = append([]arch.DecodedInsn(nil), s.decoded...)
	s.ro = false
}

// Contains reports whether [addr, addr+size) lies inside the segment.
func (s *Segment) Contains(addr uint32, size int) bool {
	return addr >= s.Base && uint64(addr)+uint64(size) <= uint64(s.Base)+uint64(len(s.Data))
}

// State describes a process's lifecycle.
type State int

// Process states.
const (
	StateStopped State = iota
	StateRunning
	StateExited
)

func (s State) String() string {
	switch s {
	case StateStopped:
		return "stopped"
	case StateRunning:
		return "running"
	case StateExited:
		return "exited"
	}
	return "?"
}

// Process is a simulated target process.
type Process struct {
	A        arch.Arch
	Segs     []*Segment
	regs     []uint32
	fregs    []float64
	pc       uint32
	flag     uint32
	State    State
	ExitCode int
	// Stdout collects the program's output (write syscalls).
	Stdout bytes.Buffer
	// Steps counts executed instructions.
	Steps int64
	// Sim counts decode-cache activity (see predecode.go).
	Sim SimStats
	// NoPredecode forces the uncached fetch/decode/dispatch path even
	// when the architecture implements arch.Decoder. Differential tests
	// and the cached-vs-uncached benchmarks flip it.
	NoPredecode bool
	// NoFuse keeps the decode cache but dispatches one instruction at a
	// time instead of fusing straight-line runs into superblocks — the
	// engine as it was before superblocks existed. The differential
	// tests pin all three modes (uncached, per-instruction, fused)
	// against each other.
	NoFuse bool

	dec      arch.Decoder // non-nil when A supports predecoding
	be       bool         // big-endian target; avoids per-access Order() dispatch
	lastSeg  *Segment     // memory fast path: last segment hit by seg()
	lastText *Segment     // execution fast path: last segment fetched from

	// memBase/memData mirror lastSeg's window so the fused dispatch
	// loop's memory micro-ops bounds-check against Process fields
	// directly — one load fewer on the critical path than chasing the
	// Segment pointer. The second window holds the previously hit
	// segment, demoted by seg() when the first misses: a workload
	// alternating between two segments (stack locals and globals, the
	// common case) stays on the fast path instead of paying a segment
	// scan per alternation. Zero windows (nil data) simply miss.
	// memSeg2 is the demoted window's segment, which stores need for
	// invalidation; window one's segment is lastSeg itself.
	memBase  uint32
	memData  []byte
	memBase2 uint32
	memData2 []byte
	memSeg2  *Segment

	// Auto-checkpoint pacing (checkpoint.go): when ckEvery > 0, Run
	// calls ckFn from its outer loop every ckEvery instructions by
	// folding ckNext into the step limit — the fused dispatch loop is
	// untouched between checkpoints.
	ckEvery int64
	ckNext  int64
	ckFn    func()
}

// New returns a stopped process with text and data segments holding the
// given images and a fresh stack.
func New(a arch.Arch, text, data []byte, entry uint32) *Process {
	p := &Process{
		A:     a,
		regs:  make([]uint32, a.NumRegs()),
		fregs: make([]float64, a.NumFRegs()),
		pc:    entry,
	}
	p.dec, _ = a.(arch.Decoder)
	p.be = a.Order() == binary.BigEndian //ldb:allow endian caches the arch's declared order for the hot load/store path
	p.Segs = []*Segment{
		{Name: "text", Base: TextBase, Data: append([]byte(nil), text...)},
		{Name: "data", Base: DataBase, Data: append([]byte(nil), data...)},
		{Name: "stack", Base: StackTop - StackSize, Data: make([]byte, StackSize)},
	}
	p.SetReg(a.SPReg(), StackTop-64)
	return p
}

// PC implements arch.Proc.
func (p *Process) PC() uint32 { return p.pc }

// SetPC implements arch.Proc.
func (p *Process) SetPC(v uint32) { p.pc = v }

// Reg implements arch.Proc.
func (p *Process) Reg(i int) uint32 {
	if i < 0 || i >= len(p.regs) {
		return 0
	}
	return p.regs[i]
}

// SetReg implements arch.Proc.
func (p *Process) SetReg(i int, v uint32) {
	if i >= 0 && i < len(p.regs) {
		p.regs[i] = v
	}
}

// FReg implements arch.Proc.
func (p *Process) FReg(i int) float64 {
	if i < 0 || i >= len(p.fregs) {
		return 0
	}
	return p.fregs[i]
}

// SetFReg implements arch.Proc.
func (p *Process) SetFReg(i int, v float64) {
	if i >= 0 && i < len(p.fregs) {
		p.fregs[i] = v
	}
}

// Flag implements arch.Proc.
func (p *Process) Flag() uint32 { return p.flag }

// SetFlag implements arch.Proc.
func (p *Process) SetFlag(v uint32) { p.flag = v }

func (p *Process) seg(addr uint32, size int) (*Segment, *arch.Fault) {
	if s := p.lastSeg; s != nil && s.Contains(addr, size) {
		return s, nil
	}
	for _, s := range p.Segs {
		if s.Contains(addr, size) {
			p.memBase2, p.memData2, p.memSeg2 = p.memBase, p.memData, p.lastSeg
			p.lastSeg = s
			p.memBase, p.memData = s.Base, s.Data
			return s, nil
		}
	}
	return nil, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigSegv, Addr: addr, PC: p.pc}
}

// Load implements arch.Proc. The last-segment check is open-coded
// here rather than delegated to seg(): Load is the hottest call the
// decoded handlers make, and the extra call frame showed up in
// profiles.
func (p *Process) Load(addr uint32, size int) (uint32, *arch.Fault) {
	s := p.lastSeg
	if s == nil || !s.Contains(addr, size) {
		var f *arch.Fault
		if s, f = p.seg(addr, size); f != nil {
			return 0, f
		}
	}
	b := s.Data[addr-s.Base:]
	switch size {
	case 4:
		if p.be {
			return uint32(b[3]) | uint32(b[2])<<8 | uint32(b[1])<<16 | uint32(b[0])<<24, nil //ldb:allow endian open-coded load in the arch's declared order; the simulators' hot path
		}
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil //ldb:allow endian open-coded load in the arch's declared order; the simulators' hot path
	case 2:
		if p.be {
			return uint32(b[1]) | uint32(b[0])<<8, nil //ldb:allow endian open-coded load in the arch's declared order; the simulators' hot path
		}
		return uint32(b[0]) | uint32(b[1])<<8, nil //ldb:allow endian open-coded load in the arch's declared order; the simulators' hot path
	}
	return uint32(b[0]), nil
}

// Store implements arch.Proc. Open-coded fast path, as in Load.
func (p *Process) Store(addr uint32, size int, v uint32) *arch.Fault {
	s := p.lastSeg
	if s == nil || !s.Contains(addr, size) {
		var f *arch.Fault
		if s, f = p.seg(addr, size); f != nil {
			return f
		}
	}
	b := s.Data[addr-s.Base:]
	switch size {
	case 4:
		if p.be {
			b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		} else {
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		}
	case 2:
		if p.be {
			b[0], b[1] = byte(v>>8), byte(v)
		} else {
			b[0], b[1] = byte(v), byte(v>>8)
		}
	default:
		b[0] = byte(v)
	}
	p.invalidate(s, addr, size)
	return nil
}

// LoadFloat implements arch.Proc.
func (p *Process) LoadFloat(addr uint32, size int) (float64, *arch.Fault) {
	n := size
	if size == amem.Float80 {
		n = 12
	}
	s, f := p.seg(addr, n)
	if f != nil {
		return 0, f
	}
	off := addr - s.Base
	return amem.DecodeFloat(p.A.Order(), s.Data[off:off+uint32(n)], size), nil
}

// StoreFloat implements arch.Proc.
func (p *Process) StoreFloat(addr uint32, size int, v float64) *arch.Fault {
	n := size
	if size == amem.Float80 {
		n = 12
	}
	s, f := p.seg(addr, n)
	if f != nil {
		return f
	}
	off := addr - s.Base
	amem.EncodeFloat(p.A.Order(), s.Data[off:off+uint32(n)], size, v)
	p.invalidate(s, addr, n)
	return nil
}

// ReadBytes copies raw memory (for the nub's fetch requests).
func (p *Process) ReadBytes(addr uint32, out []byte) error {
	s, f := p.seg(addr, len(out))
	if f != nil {
		return f
	}
	copy(out, s.Data[addr-s.Base:])
	return nil
}

// WriteBytes writes raw memory (for the nub's store requests,
// including planting breakpoints in text).
func (p *Process) WriteBytes(addr uint32, in []byte) error {
	s, f := p.seg(addr, len(in))
	if f != nil {
		return f
	}
	copy(s.Data[addr-s.Base:], in)
	p.invalidate(s, addr, len(in))
	return nil
}

// cstring reads a NUL-terminated string for the putstr syscall: the
// containing segment is resolved once and scanned for the NUL in a
// single pass, instead of one 1-byte ReadBytes (with its own segment
// lookup and allocation) per character. A string that runs off the end
// of its segment continues in the next one only if that address is
// mapped, exactly as the byte-at-a-time loop behaved.
func (p *Process) cstring(addr uint32) (string, error) {
	const limit = 1 << 16
	var out []byte
	for len(out) < limit {
		s, f := p.seg(addr, 1)
		if f != nil {
			return "", f
		}
		data := s.Data[addr-s.Base:]
		if n := limit - len(out); len(data) > n {
			data = data[:n]
		}
		if i := bytes.IndexByte(data, 0); i >= 0 {
			return string(append(out, data[:i]...)), nil
		}
		out = append(out, data...)
		addr += uint32(len(data))
	}
	return "", fmt.Errorf("machine: unterminated string at %#x", addr)
}

// syscall services a system-call fault; it returns nil when execution
// may continue.
func (p *Process) syscall(f *arch.Fault) *arch.Fault {
	a := p.A
	switch f.Code {
	case arch.SysExit:
		p.State = StateExited
		p.ExitCode = int(int32(a.SyscallArg(p, 0)))
		return &arch.Fault{Kind: arch.FaultHalt, PC: f.PC}
	case arch.SysPutInt:
		fmt.Fprintf(&p.Stdout, "%d", int32(a.SyscallArg(p, 0)))
	case arch.SysPutChar:
		p.Stdout.WriteByte(byte(a.SyscallArg(p, 0)))
	case arch.SysPutStr:
		s, err := p.cstring(a.SyscallArg(p, 0))
		if err != nil {
			return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigSegv, Addr: a.SyscallArg(p, 0), PC: f.PC}
		}
		p.Stdout.WriteString(s)
	case arch.SysPutHex:
		fmt.Fprintf(&p.Stdout, "%x", a.SyscallArg(p, 0))
	case arch.SysPutUint:
		fmt.Fprintf(&p.Stdout, "%d", a.SyscallArg(p, 0))
	case arch.SysPutFloat:
		v, ff := p.LoadFloat(a.SyscallArg(p, 0), 8)
		if ff != nil {
			return ff
		}
		fmt.Fprintf(&p.Stdout, "%g", v)
	default:
		return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigIll, Code: f.Code, PC: f.PC}
	}
	a.SyscallRet(p, 0)
	return nil
}

// MaxSteps bounds Run against runaway programs. It is a variable so
// tests can tighten it.
var MaxSteps int64 = 200_000_000

// Run executes until a signal arrives or the process exits. System
// calls are serviced transparently. The returned fault is FaultHalt on
// exit or FaultSignal for the nub.
func (p *Process) Run() *arch.Fault {
	if p.State == StateExited {
		return &arch.Fault{Kind: arch.FaultHalt, PC: p.pc}
	}
	p.State = StateRunning
	predecode := p.dec != nil && !p.NoPredecode
	fuse := predecode && !p.NoFuse
	for {
		// The decode-cache hit case of step(), unrolled into a tight
		// loop: per instruction, one bounds check, one cache load, and
		// one indirect call. The decoded slice is re-read through the
		// segment each iteration rather than hoisted: invalidation may
		// privatize an adopted (copy-on-write) cache, swapping the
		// backing array, and a hoisted slice would keep serving entries
		// a self-modifying store just invalidated.
		var f *arch.Fault
		limit := p.ckLimit()
		if fuse {
			f = p.runFused(limit)
		} else if predecode {
			if s := p.lastText; s != nil && s.decoded != nil {
				base, regs := s.Base, p.regs
				steps := p.Steps
				for {
					off := p.pc - base
					if off >= uint32(len(s.decoded)) {
						break
					}
					d := &s.decoded[off]
					if d.Exec == nil {
						break
					}
					if steps >= limit {
						// Limit reached: fall out so the outer loop fires a
						// due checkpoint, or takes the last few instructions
						// through step()'s per-step MaxSteps check.
						break
					}
					steps++
					var next uint32
					next, f = d.Exec(p, regs, &p.flag, p.pc)
					if f != nil {
						break
					}
					p.pc = next
				}
				p.Steps = steps
			}
		}
		if f == nil {
			if p.ckEvery > 0 && p.Steps >= p.ckNext {
				p.autoCheckpoint()
				continue
			}
			p.Steps++
			if p.Steps > MaxSteps {
				p.State = StateStopped
				return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigIll, Code: -1, PC: p.pc}
			}
			f = p.step()
			if f == nil {
				continue
			}
		}
		if f.Kind == arch.FaultSyscall {
			if hf := p.syscall(f); hf != nil {
				if hf.Kind == arch.FaultHalt {
					p.State = StateExited
				} else {
					p.State = StateStopped
				}
				return hf
			}
			continue
		}
		if f.Kind == arch.FaultHalt {
			p.State = StateExited
		} else {
			p.State = StateStopped
		}
		return f
	}
}

// StepOne executes exactly one instruction (servicing a syscall if one
// occurs) and returns the fault, if any.
func (p *Process) StepOne() *arch.Fault {
	p.Steps++
	f := p.step()
	if f != nil && f.Kind == arch.FaultSyscall {
		return p.syscall(f)
	}
	return f
}
