// Package machine simulates the target process and the small slice of
// operating system ldb's nub depends on: a flat address space with
// text, data, and stack segments, registers, signals, and a few system
// calls for program output and exit. The nub (package nub) attaches to
// a Process the way the paper's nub is loaded with the target program.
package machine

import (
	"bytes"
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/arch"
)

// Conventional segment addresses shared by all four targets.
const (
	TextBase  = 0x00400000
	DataBase  = 0x10000000
	StackTop  = 0x7fff0000
	StackSize = 0x40000
)

// Segment is a contiguous mapped region.
type Segment struct {
	Name string
	Base uint32
	Data []byte
}

// Contains reports whether [addr, addr+size) lies inside the segment.
func (s *Segment) Contains(addr uint32, size int) bool {
	return addr >= s.Base && uint64(addr)+uint64(size) <= uint64(s.Base)+uint64(len(s.Data))
}

// State describes a process's lifecycle.
type State int

// Process states.
const (
	StateStopped State = iota
	StateRunning
	StateExited
)

func (s State) String() string {
	switch s {
	case StateStopped:
		return "stopped"
	case StateRunning:
		return "running"
	case StateExited:
		return "exited"
	}
	return "?"
}

// Process is a simulated target process.
type Process struct {
	A        arch.Arch
	Segs     []*Segment
	regs     []uint32
	fregs    []float64
	pc       uint32
	flag     uint32
	State    State
	ExitCode int
	// Stdout collects the program's output (write syscalls).
	Stdout bytes.Buffer
	// Steps counts executed instructions.
	Steps int64
}

// New returns a stopped process with text and data segments holding the
// given images and a fresh stack.
func New(a arch.Arch, text, data []byte, entry uint32) *Process {
	p := &Process{
		A:     a,
		regs:  make([]uint32, a.NumRegs()),
		fregs: make([]float64, a.NumFRegs()),
		pc:    entry,
	}
	p.Segs = []*Segment{
		{Name: "text", Base: TextBase, Data: append([]byte(nil), text...)},
		{Name: "data", Base: DataBase, Data: append([]byte(nil), data...)},
		{Name: "stack", Base: StackTop - StackSize, Data: make([]byte, StackSize)},
	}
	p.SetReg(a.SPReg(), StackTop-64)
	return p
}

// PC implements arch.Proc.
func (p *Process) PC() uint32 { return p.pc }

// SetPC implements arch.Proc.
func (p *Process) SetPC(v uint32) { p.pc = v }

// Reg implements arch.Proc.
func (p *Process) Reg(i int) uint32 {
	if i < 0 || i >= len(p.regs) {
		return 0
	}
	return p.regs[i]
}

// SetReg implements arch.Proc.
func (p *Process) SetReg(i int, v uint32) {
	if i >= 0 && i < len(p.regs) {
		p.regs[i] = v
	}
}

// FReg implements arch.Proc.
func (p *Process) FReg(i int) float64 {
	if i < 0 || i >= len(p.fregs) {
		return 0
	}
	return p.fregs[i]
}

// SetFReg implements arch.Proc.
func (p *Process) SetFReg(i int, v float64) {
	if i >= 0 && i < len(p.fregs) {
		p.fregs[i] = v
	}
}

// Flag implements arch.Proc.
func (p *Process) Flag() uint32 { return p.flag }

// SetFlag implements arch.Proc.
func (p *Process) SetFlag(v uint32) { p.flag = v }

func (p *Process) seg(addr uint32, size int) (*Segment, *arch.Fault) {
	for _, s := range p.Segs {
		if s.Contains(addr, size) {
			return s, nil
		}
	}
	return nil, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigSegv, Addr: addr, PC: p.pc}
}

// Load implements arch.Proc.
func (p *Process) Load(addr uint32, size int) (uint32, *arch.Fault) {
	s, f := p.seg(addr, size)
	if f != nil {
		return 0, f
	}
	off := addr - s.Base
	return uint32(amem.ReadInt(p.A.Order(), s.Data[off:off+uint32(size)])), nil
}

// Store implements arch.Proc.
func (p *Process) Store(addr uint32, size int, v uint32) *arch.Fault {
	s, f := p.seg(addr, size)
	if f != nil {
		return f
	}
	off := addr - s.Base
	amem.WriteInt(p.A.Order(), s.Data[off:off+uint32(size)], uint64(v))
	return nil
}

// LoadFloat implements arch.Proc.
func (p *Process) LoadFloat(addr uint32, size int) (float64, *arch.Fault) {
	n := size
	if size == amem.Float80 {
		n = 12
	}
	s, f := p.seg(addr, n)
	if f != nil {
		return 0, f
	}
	off := addr - s.Base
	return amem.DecodeFloat(p.A.Order(), s.Data[off:off+uint32(n)], size), nil
}

// StoreFloat implements arch.Proc.
func (p *Process) StoreFloat(addr uint32, size int, v float64) *arch.Fault {
	n := size
	if size == amem.Float80 {
		n = 12
	}
	s, f := p.seg(addr, n)
	if f != nil {
		return f
	}
	off := addr - s.Base
	amem.EncodeFloat(p.A.Order(), s.Data[off:off+uint32(n)], size, v)
	return nil
}

// ReadBytes copies raw memory (for the nub's fetch requests).
func (p *Process) ReadBytes(addr uint32, out []byte) error {
	s, f := p.seg(addr, len(out))
	if f != nil {
		return f
	}
	copy(out, s.Data[addr-s.Base:])
	return nil
}

// WriteBytes writes raw memory (for the nub's store requests,
// including planting breakpoints in text).
func (p *Process) WriteBytes(addr uint32, in []byte) error {
	s, f := p.seg(addr, len(in))
	if f != nil {
		return f
	}
	copy(s.Data[addr-s.Base:], in)
	return nil
}

// cstring reads a NUL-terminated string for the putstr syscall.
func (p *Process) cstring(addr uint32) (string, error) {
	var out []byte
	for i := 0; i < 1<<16; i++ {
		b := make([]byte, 1)
		if err := p.ReadBytes(addr+uint32(i), b); err != nil {
			return "", err
		}
		if b[0] == 0 {
			return string(out), nil
		}
		out = append(out, b[0])
	}
	return "", fmt.Errorf("machine: unterminated string at %#x", addr)
}

// syscall services a system-call fault; it returns nil when execution
// may continue.
func (p *Process) syscall(f *arch.Fault) *arch.Fault {
	a := p.A
	switch f.Code {
	case arch.SysExit:
		p.State = StateExited
		p.ExitCode = int(int32(a.SyscallArg(p, 0)))
		return &arch.Fault{Kind: arch.FaultHalt, PC: f.PC}
	case arch.SysPutInt:
		fmt.Fprintf(&p.Stdout, "%d", int32(a.SyscallArg(p, 0)))
	case arch.SysPutChar:
		p.Stdout.WriteByte(byte(a.SyscallArg(p, 0)))
	case arch.SysPutStr:
		s, err := p.cstring(a.SyscallArg(p, 0))
		if err != nil {
			return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigSegv, Addr: a.SyscallArg(p, 0), PC: f.PC}
		}
		p.Stdout.WriteString(s)
	case arch.SysPutHex:
		fmt.Fprintf(&p.Stdout, "%x", a.SyscallArg(p, 0))
	case arch.SysPutUint:
		fmt.Fprintf(&p.Stdout, "%d", a.SyscallArg(p, 0))
	case arch.SysPutFloat:
		v, ff := p.LoadFloat(a.SyscallArg(p, 0), 8)
		if ff != nil {
			return ff
		}
		fmt.Fprintf(&p.Stdout, "%g", v)
	default:
		return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigIll, Code: f.Code, PC: f.PC}
	}
	a.SyscallRet(p, 0)
	return nil
}

// MaxSteps bounds Run against runaway programs. It is a variable so
// tests can tighten it.
var MaxSteps int64 = 200_000_000

// Run executes until a signal arrives or the process exits. System
// calls are serviced transparently. The returned fault is FaultHalt on
// exit or FaultSignal for the nub.
func (p *Process) Run() *arch.Fault {
	if p.State == StateExited {
		return &arch.Fault{Kind: arch.FaultHalt, PC: p.pc}
	}
	p.State = StateRunning
	for {
		p.Steps++
		if p.Steps > MaxSteps {
			p.State = StateStopped
			return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigIll, Code: -1, PC: p.pc}
		}
		f := p.A.Step(p)
		if f == nil {
			continue
		}
		if f.Kind == arch.FaultSyscall {
			if hf := p.syscall(f); hf != nil {
				if hf.Kind == arch.FaultHalt {
					p.State = StateExited
				} else {
					p.State = StateStopped
				}
				return hf
			}
			continue
		}
		if f.Kind == arch.FaultHalt {
			p.State = StateExited
		} else {
			p.State = StateStopped
		}
		return f
	}
}

// StepOne executes exactly one instruction (servicing a syscall if one
// occurs) and returns the fault, if any.
func (p *Process) StepOne() *arch.Fault {
	p.Steps++
	f := p.A.Step(p)
	if f != nil && f.Kind == arch.FaultSyscall {
		return p.syscall(f)
	}
	return f
}
