package machine

import (
	"testing"

	"ldb/internal/arch"
	"ldb/internal/arch/mips"
)

// The superblock regression suite. Fusion must be invisible except in
// speed: planting a breakpoint in the middle of a built block, a block
// storing over its own tail, and single-stepping through hot fused
// text must all behave exactly as per-instruction execution does.

// breakWord assembles the mips break instruction with the given code
// and returns its word, for tests that store trap instructions over
// text the way a debugger's plant does.
func breakWord(t *testing.T, code int) uint32 {
	t.Helper()
	as := mips.NewAsm(mips.Little)
	as.Break(code)
	b, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return mips.Little.Order().Uint32(b)
}

// TestSuperblockPlantMidBlock plants a breakpoint in the interior of an
// already-built superblock — not at its entry — and re-executes from
// the entry. Entry-slot-only invalidation would leave the fused run
// intact and blast straight past the plant; the block must be dropped
// and the trap taken at the planted pc.
func TestSuperblockPlantMidBlock(t *testing.T) {
	m := mips.Little
	as := mips.NewAsm(m)
	as.I(mips.OpAddiu, mips.T0, mips.R0, 0) // TextBase+0: t0 = 0
	as.I(mips.OpAddiu, mips.T0, mips.T0, 1) // +4
	as.I(mips.OpAddiu, mips.T0, mips.T0, 1) // +8: plant target
	as.I(mips.OpAddiu, mips.T0, mips.T0, 1) // +12
	as.Break(3)                             // +16
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p := New(m, code, nil, TextBase)
	f := p.Run()
	if f == nil || f.Sig != arch.SigTrap || f.Code != 3 || p.Reg(mips.T0) != 3 {
		t.Fatalf("first run: %+v, t0=%d", f, p.Reg(mips.T0))
	}
	// The run is hot: the block at TextBase is built. Plant mid-block.
	old := make([]byte, 4)
	if err := p.ReadBytes(TextBase+8, old); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteBytes(TextBase+8, m.BreakInstr()); err != nil {
		t.Fatal(err)
	}
	p.SetPC(TextBase)
	f = p.Run()
	if f == nil || f.Sig != arch.SigTrap || f.Code != arch.TrapBreakpoint {
		t.Fatalf("planted run: %+v", f)
	}
	if f.PC != TextBase+8 || p.PC() != TextBase+8 {
		t.Fatalf("trapped at %#x (pc %#x), want %#x", f.PC, p.PC(), uint32(TextBase+8))
	}
	if got := p.Reg(mips.T0); got != 1 {
		t.Fatalf("t0 = %d at the breakpoint, want 1 (stale fused tail executed?)", got)
	}
	// Unplant and resume at the restored instruction.
	if err := p.WriteBytes(TextBase+8, old); err != nil {
		t.Fatal(err)
	}
	p.SetPC(TextBase + 8)
	f = p.Run()
	if f == nil || f.Code != 3 || p.Reg(mips.T0) != 3 {
		t.Fatalf("resumed run: %+v, t0=%d", f, p.Reg(mips.T0))
	}
}

// TestSuperblockSelfModifyingStore fuses a store that overwrites a
// later instruction of its own block. The fused run must abort at the
// store and re-enter through the cache, so the overwritten instruction
// executes in its new form — and the retired-step accounting must match
// uncached execution exactly.
func TestSuperblockSelfModifyingStore(t *testing.T) {
	m := mips.Little
	brk := breakWord(t, 3)
	as := mips.NewAsm(m)
	// First pass with a placeholder address of the same LI width, to
	// learn where the block under test starts; LI expands to lui+ori
	// for large values, so the placeholder must be one too.
	as.LI(mips.T0+1, int32(TextBase))
	as.LI(mips.T0+2, int32(brk))             // the word the store plants
	entry := uint32(as.Off())                // block under test starts here
	as.I(mips.OpSw, mips.T0+2, mips.T0+1, 0) // entry: text store into own block
	as.I(mips.OpAddiu, mips.T0, mips.T0, 1)  // entry+4
	as.I(mips.OpAddiu, mips.T0, mips.T0, 1)  // entry+8: the victim
	as.Break(5)                              // entry+12
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Second pass with the victim's real address.
	as = mips.NewAsm(m)
	as.LI(mips.T0+1, int32(TextBase+entry+8))
	as.LI(mips.T0+2, int32(brk))
	as.I(mips.OpSw, mips.T0+2, mips.T0+1, 0)
	as.I(mips.OpAddiu, mips.T0, mips.T0, 1)
	as.I(mips.OpAddiu, mips.T0, mips.T0, 1)
	as.Break(5)
	code2, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(code2) != len(code) {
		t.Fatalf("LI width changed: %d vs %d bytes", len(code2), len(code))
	}
	run := func(noPredecode bool) (*Process, *arch.Fault) {
		p := New(m, code2, nil, TextBase)
		p.NoPredecode = noPredecode
		return p, p.Run()
	}
	pf, ff := run(false)
	pu, fu := run(true)
	if ff == nil || ff.Sig != arch.SigTrap || ff.Code != 3 {
		t.Fatalf("fused: %+v (stale tail executed past the planted word?)", ff)
	}
	if ff.PC != TextBase+entry+8 {
		t.Fatalf("fused trapped at %#x, want %#x", ff.PC, TextBase+entry+8)
	}
	if got := pf.Reg(mips.T0); got != 1 {
		t.Fatalf("fused t0 = %d, want 1", got)
	}
	if fu == nil || *ff != *fu {
		t.Fatalf("fused fault %+v, uncached %+v", ff, fu)
	}
	if pf.Steps != pu.Steps || pf.PC() != pu.PC() || pf.Reg(mips.T0) != pu.Reg(mips.T0) {
		t.Fatalf("fused steps=%d pc=%#x t0=%d; uncached steps=%d pc=%#x t0=%d",
			pf.Steps, pf.PC(), pf.Reg(mips.T0), pu.Steps, pu.PC(), pu.Reg(mips.T0))
	}
}

// TestSuperblockStatsAccounting pins the counter contract: a fused
// block retiring N instructions advances Steps by N, so Hits + Decodes
// + Fallbacks == Steps exactly as in per-instruction mode, and the
// fusion counters describe formation without disturbing hit-rate
// arithmetic.
func TestSuperblockStatsAccounting(t *testing.T) {
	m := mips.Little
	as := mips.NewAsm(m)
	as.I(mips.OpAddiu, mips.T0+1, mips.R0, 50)
	as.Label("loop")
	as.I(mips.OpAddiu, mips.T0, mips.T0, 1)
	as.Branch(mips.OpBne, mips.T0, mips.T0+1, "loop")
	as.Break(3)
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	run := func(noFuse bool) *Process {
		p := New(m, code, nil, TextBase)
		p.NoFuse = noFuse
		if f := p.Run(); f == nil || f.Sig != arch.SigTrap || f.Code != 3 {
			t.Fatalf("noFuse=%v: %+v", noFuse, f)
		}
		return p
	}
	pf, pi := run(false), run(true)
	const wantSteps = 1 + 2*50 + 1 // li, 50 loop iterations, break
	if pf.Steps != wantSteps || pi.Steps != wantSteps {
		t.Fatalf("fused ran %d steps, per-insn %d, want %d", pf.Steps, pi.Steps, wantSteps)
	}
	sf, si := pf.SimStats(), pi.SimStats()
	if sf.Hits+sf.Decodes+sf.Fallbacks != pf.Steps {
		t.Fatalf("fused counters do not partition steps: %+v (steps %d)", sf, pf.Steps)
	}
	if sf.Hits != si.Hits || sf.Decodes != si.Decodes || sf.Fallbacks != si.Fallbacks {
		t.Fatalf("fused counters %+v, per-insn %+v", sf, si)
	}
	if sf.HitRate() != si.HitRate() {
		t.Fatalf("fused hit rate %v, per-insn %v", sf.HitRate(), si.HitRate())
	}
	if sf.Blocks == 0 || sf.BlockInsns < sf.Blocks {
		t.Fatalf("fusion counters: %d blocks, %d fused instructions", sf.Blocks, sf.BlockInsns)
	}
	if si.Blocks != 0 || si.BlockInsns != 0 {
		t.Fatalf("per-insn run reports fusion counters: %+v", si)
	}
}

// TestSuperblockStepOne: single steps through text that is hot in the
// block cache retire exactly one instruction each, and a run resumed
// afterwards continues correctly from the mid-block pc.
func TestSuperblockStepOne(t *testing.T) {
	m := mips.Little
	as := mips.NewAsm(m)
	for i := 0; i < 5; i++ {
		as.I(mips.OpAddiu, mips.T0, mips.T0, 1)
	}
	as.Break(3)
	code, _, err := as.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p := New(m, code, nil, TextBase)
	if f := p.Run(); f == nil || f.Code != 3 || p.Reg(mips.T0) != 5 {
		t.Fatalf("first run: %+v, t0=%d", f, p.Reg(mips.T0))
	}
	// The whole run is one hot block. Step from its entry: one
	// instruction per StepOne, no fused lookahead.
	p.SetPC(TextBase)
	for i := 0; i < 3; i++ {
		before := p.Steps
		if f := p.StepOne(); f != nil {
			t.Fatalf("step %d: %+v", i, f)
		}
		if p.Steps != before+1 {
			t.Fatalf("step %d retired %d instructions", i, p.Steps-before)
		}
		if want := TextBase + uint32(4*(i+1)); p.PC() != want {
			t.Fatalf("step %d: pc %#x, want %#x", i, p.PC(), want)
		}
	}
	if got := p.Reg(mips.T0); got != 8 {
		t.Fatalf("t0 = %d after 3 steps, want 8", got)
	}
	// Resume mid-block: the fused engine picks up at an interior pc.
	if f := p.Run(); f == nil || f.Code != 3 || p.Reg(mips.T0) != 10 {
		t.Fatalf("resumed: %+v, t0=%d", p.Run(), p.Reg(mips.T0))
	}
}
