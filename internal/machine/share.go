// Cross-process sharing of decode products: every session debugging the
// same binary re-decodes and re-fuses the same text bytes, so a
// TextCache publishes one process's predecoded instructions and
// superblocks under an (arch, content-hash) key and hands them to later
// processes that load identical text. Sharing is safe because decode
// products are functions of the bytes alone: Exec closures capture only
// decode-time constants (immediates, branch targets, pre-computed
// successors), text always loads at TextBase so even absolute pcs baked
// into closures agree across processes, and the invalidation contract
// guarantees a published cache describes exactly the bytes it was
// hashed over — a session that has planted a breakpoint has different
// bytes and therefore a different key, so it can neither poison the
// pristine entry nor adopt from it.
//
// Adopted state is copy-on-write: the decoded slice is installed
// read-only (Segment.ro) and privatized — copied — before the first
// mutation, so one session's breakpoint plant never touches another
// session's view. Superblock structs carry per-session mutable
// predicted-successor links, so adoption clones per-block headers (the
// ops arrays themselves are immutable after formation and stay shared);
// the per-segment generation counter starts fresh per process, keeping
// plant invalidation session-local.
package machine

import (
	"sync"
	"sync/atomic"

	"ldb/internal/arch"
)

// SharedText is one published text segment's decode products. Immutable
// once inserted into a TextCache.
type SharedText struct {
	decoded []arch.DecodedInsn
	// blocks are superblock templates: ops/nbytes/fall only, with the
	// per-session predicted-successor links stripped. Adopt clones the
	// headers and shares the ops arrays.
	blocks []*sblock
}

// TextCache shares decode products across processes. The zero value is
// not ready; use NewTextCache. All methods are safe for concurrent use.
type TextCache struct {
	mu sync.Mutex //ldb:lock textcache.mu 30
	m  map[arch.TextKey]*SharedText

	hits   atomic.Int64
	misses atomic.Int64
}

// NewTextCache returns an empty cache.
func NewTextCache() *TextCache {
	return &TextCache{m: make(map[arch.TextKey]*SharedText)}
}

// text finds p's text segment, or nil when p has none or cannot
// predecode (nothing to share either way).
func shareText(p *Process) *Segment {
	if p.dec == nil {
		return nil
	}
	for _, s := range p.Segs {
		if s.Name == "text" {
			return s
		}
	}
	return nil
}

// Adopt installs published decode products for p's text segment when
// its exact current content has been published, and reports whether it
// did (a warm attach: the process executes with zero decode work for
// every published entry). Call it on a freshly created process, before
// it executes or plants anything.
func (c *TextCache) Adopt(p *Process) bool {
	s := shareText(p)
	if s == nil || s.decoded != nil {
		return false
	}
	key := arch.SumText(p.A.Name(), s.Data)
	c.mu.Lock()
	st := c.m[key]
	c.mu.Unlock()
	if st == nil {
		c.misses.Add(1)
		return false
	}
	s.decoded = st.decoded
	s.ro = true
	s.sblocks = make([]*sblock, len(st.blocks))
	for i, t := range st.blocks {
		if t != nil {
			s.sblocks[i] = &sblock{ops: t.ops, nbytes: t.nbytes, fall: t.fall}
		}
	}
	s.gen = 0
	c.hits.Add(1)
	return true
}

// Publish records p's text-segment decode products under the hash of
// the segment's *current* bytes, so whatever invalidation has kept
// consistent with those bytes is exactly what later identical processes
// adopt. The first publisher of a key wins; the entry is never replaced
// (immutability is the whole argument). Publishing marks the segment's
// decoded slice read-only, so the owner privatizes before any further
// mutation of its own. Reports whether a new entry was published.
func (c *TextCache) Publish(p *Process) bool {
	s := shareText(p)
	if s == nil || s.decoded == nil {
		return false
	}
	key := arch.SumText(p.A.Name(), s.Data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return false
	}
	st := &SharedText{decoded: s.decoded, blocks: make([]*sblock, len(s.sblocks))}
	for i, b := range s.sblocks {
		if b != nil {
			st.blocks[i] = &sblock{ops: b.ops, nbytes: b.nbytes, fall: b.fall}
		}
	}
	c.m[key] = st
	s.ro = true
	return true
}

// Stats reports warm attaches (hits) and cold ones (misses).
func (c *TextCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
