package machine

import (
	"testing"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/arch/vax"
)

func TestSegments(t *testing.T) {
	p := New(vax.Target, []byte{vax.OpNop}, make([]byte, 16), TextBase)
	// Text, data, and stack are mapped; gaps are not.
	if err := p.WriteBytes(DataBase, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	var out [3]byte
	if err := p.ReadBytes(DataBase, out[:]); err != nil || out[1] != 2 {
		t.Fatalf("%v %v", out, err)
	}
	if err := p.ReadBytes(0x1000, out[:]); err == nil {
		t.Fatal("unmapped read succeeded")
	}
	if _, f := p.Load(DataBase+14, 4); f == nil || f.Sig != arch.SigSegv {
		t.Fatalf("straddling read: %v", f)
	}
	// Stack is mapped near the top.
	sp := p.Reg(vax.Target.SPReg())
	if f := p.Store(sp-4, 4, 42); f != nil {
		t.Fatalf("stack store: %v", f)
	}
}

func TestFloatMemory(t *testing.T) {
	p := New(vax.Target, nil, make([]byte, 64), TextBase)
	if f := p.StoreFloat(DataBase, 8, 3.25); f != nil {
		t.Fatal(f)
	}
	v, f := p.LoadFloat(DataBase, 8)
	if f != nil || v != 3.25 {
		t.Fatalf("%g %v", v, f)
	}
	if f := p.StoreFloat(DataBase+16, amem.Float80, -1.5); f != nil {
		t.Fatal(f)
	}
	v, f = p.LoadFloat(DataBase+16, amem.Float80)
	if f != nil || v != -1.5 {
		t.Fatalf("float80: %g %v", v, f)
	}
}

func TestSyscallsAndHalt(t *testing.T) {
	// movl #'A', r1; chmk #putchar; movl #0, r1; chmk #exit
	a := vaxAsm()
	a.MoveImm(1, 'A')
	a.Chmk(arch.SysPutChar)
	a.MoveImm(1, 7)
	a.Chmk(arch.SysExit)
	code, _, _ := a.Finish()
	p := New(vax.Target, code, nil, TextBase)
	f := p.Run()
	if f.Kind != arch.FaultHalt {
		t.Fatalf("%v", f)
	}
	if p.State != StateExited || p.ExitCode != 7 {
		t.Fatalf("state=%v code=%d", p.State, p.ExitCode)
	}
	if p.Stdout.String() != "A" {
		t.Fatalf("stdout %q", p.Stdout.String())
	}
	// Running an exited process reports halt immediately.
	if f := p.Run(); f.Kind != arch.FaultHalt {
		t.Fatalf("re-run: %v", f)
	}
}

func TestPutStrAndUnknownSyscall(t *testing.T) {
	a := vaxAsm()
	a.MoveImm(1, int32(DataBase))
	a.Chmk(arch.SysPutStr)
	a.MoveImm(1, 0)
	a.Chmk(99) // unknown syscall → SIGILL
	code, _, _ := a.Finish()
	data := append([]byte("hey"), 0)
	p := New(vax.Target, code, data, TextBase)
	f := p.Run()
	if f.Sig != arch.SigIll {
		t.Fatalf("%v", f)
	}
	if p.Stdout.String() != "hey" {
		t.Fatalf("stdout %q", p.Stdout.String())
	}
}

func TestStepOne(t *testing.T) {
	a := vaxAsm()
	a.Nop()
	a.Nop()
	a.Bpt()
	code, _, _ := a.Finish()
	p := New(vax.Target, code, nil, TextBase)
	if f := p.StepOne(); f != nil {
		t.Fatal(f)
	}
	if p.PC() != TextBase+1 {
		t.Fatalf("pc = %#x", p.PC())
	}
	p.StepOne()
	if f := p.StepOne(); f == nil || f.Sig != arch.SigTrap {
		t.Fatalf("%v", f)
	}
}

func vaxAsm() *vax.Asm { return vax.NewAsm() }

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateStopped: "stopped", StateRunning: "running",
		StateExited: "exited", State(99): "?",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d) = %q, want %q", int(s), got, want)
		}
	}
}
