package mips

import (
	"math"

	"ldb/internal/arch"
)

// dst maps a destination register for decode time: writes to r0 are
// architecturally discarded, so they predecode to the -1 slot that
// arch.RegWrite suppresses. Side effects (load faults, divide checks)
// still execute.
func dst(r int) int {
	if r == 0 {
		return -1
	}
	return r
}

// Decode implements arch.Decoder. All bit fields, sign extensions, and
// branch/jump targets are extracted here, once; the returned handlers
// are flat closures that touch only the register file and memory.
// Anything that would raise SIGILL decodes to nil so the Step fallback
// reports the fault identically.
func (m *Mips) Decode(code []byte, off int, pc uint32) *arch.DecodedInsn {
	if off < 0 || off+4 > len(code) || off&3 != 0 {
		return nil
	}
	w := m.Order().Uint32(code[off : off+4])
	op := w >> 26
	rs := int(w >> 21 & 31)
	rt := int(w >> 16 & 31)
	rd := int(w >> 11 & 31)
	sh := int(w >> 6 & 31)
	imm := int32(int16(w))
	uimm := uint32(uint16(w))
	next := pc + 4
	btarget := pc + 4 + uint32(imm)<<2

	mk := func(x func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault)) *arch.DecodedInsn {
		return &arch.DecodedInsn{Len: 4, Exec: x}
	}
	// mkT marks control-transfer instructions (branches, jumps, traps,
	// syscalls) that may not fall through to pc+4; superblock formation
	// ends a fused run at the first one.
	mkT := func(x func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault)) *arch.DecodedInsn {
		return &arch.DecodedInsn{Len: 4, Exec: x, Flags: arch.InsnTerm}
	}

	switch op {
	case OpSpecial:
		fn := w & 63
		d := dst(rd)
		switch fn {
		case FnSll:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rt]<<sh)
				return next, nil
			}).AluUop(arch.UopShlI, d, rt, 0, uint32(sh))
		case FnSrl:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rt]>>sh)
				return next, nil
			}).AluUop(arch.UopShrI, d, rt, 0, uint32(sh))
		case FnSra:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, uint32(int32(regs[rt])>>sh))
				return next, nil
			}).AluUop(arch.UopSarI, d, rt, 0, uint32(sh))
		case FnSllv:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rt]<<(regs[rs]&31))
				return next, nil
			}).AluUop(arch.UopShl, d, rt, rs, 0)
		case FnSrlv:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rt]>>(regs[rs]&31))
				return next, nil
			}).AluUop(arch.UopShr, d, rt, rs, 0)
		case FnSrav:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, uint32(int32(regs[rt])>>(regs[rs]&31)))
				return next, nil
			}).AluUop(arch.UopSar, d, rt, rs, 0)
		case FnJr:
			return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				return regs[rs], nil
			}).TermUop(arch.UopJmpInd, 0, rs, 0, 0)
		case FnJalr:
			di := mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				t := regs[rs]
				arch.RegWrite(regs, d, pc+4)
				return t, nil
			})
			if d < 0 { // link discarded: plain indirect jump
				return di.TermUop(arch.UopJmpInd, 0, rs, 0, 0)
			}
			return di.TermUop(arch.UopJmpIndL, d, rs, 4, 0)
		case FnSyscall:
			return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				p.SetPC(pc + 4)
				return 0, &arch.Fault{Kind: arch.FaultSyscall, Code: int(regs[V0]), PC: pc}
			})
		case FnBreak:
			code := int(w >> 6 & 0xfffff)
			return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: code, PC: pc, Len: 4}
			})
		case FnMul:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, uint32(int32(regs[rs])*int32(regs[rt])))
				return next, nil
			}).AluUop(arch.UopMul, d, rs, rt, 0)
		case FnDiv:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				b := regs[rt]
				if b == 0 {
					return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
				}
				arch.RegWrite(regs, d, uint32(int32(regs[rs])/int32(b)))
				return next, nil
			})
		case FnRem:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				b := regs[rt]
				if b == 0 {
					return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
				}
				arch.RegWrite(regs, d, uint32(int32(regs[rs])%int32(b)))
				return next, nil
			})
		case FnAddu:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rs]+regs[rt])
				return next, nil
			}).AluUop(arch.UopAdd, d, rs, rt, 0)
		case FnSubu:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rs]-regs[rt])
				return next, nil
			}).AluUop(arch.UopSub, d, rs, rt, 0)
		case FnAnd:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rs]&regs[rt])
				return next, nil
			}).AluUop(arch.UopAnd, d, rs, rt, 0)
		case FnOr:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rs]|regs[rt])
				return next, nil
			}).AluUop(arch.UopOr, d, rs, rt, 0)
		case FnXor:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rs]^regs[rt])
				return next, nil
			}).AluUop(arch.UopXor, d, rs, rt, 0)
		case FnNor:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, ^(regs[rs] | regs[rt]))
				return next, nil
			}).AluUop(arch.UopNor, d, rs, rt, 0)
		case FnSlt:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, boolFlag(int32(regs[rs]) < int32(regs[rt])))
				return next, nil
			}).AluUop(arch.UopSlt, d, rs, rt, 0)
		case FnSltu:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, boolFlag(regs[rs] < regs[rt]))
				return next, nil
			}).AluUop(arch.UopSltu, d, rs, rt, 0)
		}
		return nil
	case OpRegimm:
		switch rt {
		case 0: // bltz
			return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if int32(regs[rs]) < 0 {
					return btarget, nil
				}
				return next, nil
			}).TermUop(arch.UopBlt, 0, rs, 0, btarget)
		case 1: // bgez
			return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if int32(regs[rs]) >= 0 {
					return btarget, nil
				}
				return next, nil
			}).TermUop(arch.UopBge, 0, rs, 0, btarget)
		}
		return nil
	case OpJ:
		target := pc&0xf0000000 | w<<6>>4
		return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			return target, nil
		}).TermUop(arch.UopJmp, 0, 0, 0, target)
	case OpJal:
		target := pc&0xf0000000 | w<<6>>4
		return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			regs[RA] = pc + 4
			return target, nil
		}).TermUop(arch.UopJmpL, RA, 0, 4, target)
	case OpBeq:
		return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			if regs[rs] == regs[rt] {
				return btarget, nil
			}
			return next, nil
		}).TermUop(arch.UopBeq, 0, rs, rt, btarget)
	case OpBne:
		return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			if regs[rs] != regs[rt] {
				return btarget, nil
			}
			return next, nil
		}).TermUop(arch.UopBne, 0, rs, rt, btarget)
	case OpBlez:
		return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			if int32(regs[rs]) <= 0 {
				return btarget, nil
			}
			return next, nil
		}).TermUop(arch.UopBle, 0, rs, 0, btarget)
	case OpBgtz:
		return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			if int32(regs[rs]) > 0 {
				return btarget, nil
			}
			return next, nil
		}).TermUop(arch.UopBgt, 0, rs, 0, btarget)
	case OpAddiu:
		d := dst(rt)
		simm := uint32(imm)
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			arch.RegWrite(regs, d, regs[rs]+simm)
			return next, nil
		}).AluUop(arch.UopAddI, d, rs, 0, simm)
	case OpSlti:
		d := dst(rt)
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			arch.RegWrite(regs, d, boolFlag(int32(regs[rs]) < imm))
			return next, nil
		}).AluUop(arch.UopSltI, d, rs, 0, uint32(imm))
	case OpAndi:
		d := dst(rt)
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			arch.RegWrite(regs, d, regs[rs]&uimm)
			return next, nil
		}).AluUop(arch.UopAndI, d, rs, 0, uimm)
	case OpOri:
		d := dst(rt)
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			arch.RegWrite(regs, d, regs[rs]|uimm)
			return next, nil
		}).AluUop(arch.UopOrI, d, rs, 0, uimm)
	case OpXori:
		d := dst(rt)
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			arch.RegWrite(regs, d, regs[rs]^uimm)
			return next, nil
		}).AluUop(arch.UopXorI, d, rs, 0, uimm)
	case OpLui:
		d := dst(rt)
		v := uimm << 16
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			arch.RegWrite(regs, d, v)
			return next, nil
		}).AluUop(arch.UopConst, d, 0, 0, v)
	case OpLb, OpLbu, OpLh, OpLhu, OpLw:
		d := dst(rt)
		simm := uint32(imm)
		size := 4
		switch op {
		case OpLb, OpLbu:
			size = 1
		case OpLh, OpLhu:
			size = 2
		}
		signed := 0
		if op == OpLb {
			signed = 1
		} else if op == OpLh {
			signed = 2
		}
		uop := arch.UopLd32
		switch op {
		case OpLb:
			uop = arch.UopLd8S
		case OpLbu:
			uop = arch.UopLd8U
		case OpLh:
			uop = arch.UopLd16S
		case OpLhu:
			uop = arch.UopLd16U
		}
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			v, f := p.Load(regs[rs]+simm, size)
			if f != nil {
				return 0, f
			}
			switch signed {
			case 1:
				v = uint32(int32(int8(v)))
			case 2:
				v = uint32(int32(int16(v)))
			}
			arch.RegWrite(regs, d, v)
			return next, nil
		}).MemUop(uop, d, rs, 0, simm)
	case OpSb, OpSh, OpSw:
		simm := uint32(imm)
		size := 4
		if op == OpSb {
			size = 1
		} else if op == OpSh {
			size = 2
		}
		uop := arch.UopSt32
		switch op {
		case OpSb:
			uop = arch.UopSt8
		case OpSh:
			uop = arch.UopSt16
		}
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			if f := p.Store(regs[rs]+simm, size, regs[rt]); f != nil {
				return 0, f
			}
			return next, nil
		}).MemUop(uop, rt, rs, 0, simm)
	case OpLwc1, OpLdc1:
		simm := uint32(imm)
		size := 4
		if op == OpLdc1 {
			size = 8
		}
		fr := rt & 7
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			v, f := p.LoadFloat(regs[rs]+simm, size)
			if f != nil {
				return 0, f
			}
			p.SetFReg(fr, v)
			return next, nil
		})
	case OpSwc1, OpSdc1:
		simm := uint32(imm)
		size := 4
		if op == OpSdc1 {
			size = 8
		}
		fr := rt & 7
		return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			if f := p.StoreFloat(regs[rs]+simm, size, p.FReg(fr)); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpCop1:
		switch rs {
		case C1Mfc1:
			d := dst(rt)
			fr := rd & 7
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, uint32(int32(math.Trunc(p.FReg(fr)))))
				return next, nil
			})
		case C1Mtc1:
			fr := rd & 7
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				p.SetFReg(fr, float64(int32(regs[rt])))
				return next, nil
			})
		case C1Bc:
			want := uint32(0)
			if rt&1 != 0 {
				want = 1
			}
			return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if *flag&1 == want {
					return btarget, nil
				}
				return next, nil
			})
		case C1FmtS, C1FmtD:
			fs := int(w >> 11 & 7)
			ft := int(w >> 16 & 7)
			fd := int(w >> 6 & 7)
			single := rs == C1FmtS
			set := func(p arch.Proc, v float64) {
				if single {
					v = float64(float32(v))
				}
				p.SetFReg(fd, v)
			}
			var x func(p arch.Proc)
			switch w & 63 {
			case FpAdd:
				x = func(p arch.Proc) { set(p, p.FReg(fs)+p.FReg(ft)) }
			case FpSub:
				x = func(p arch.Proc) { set(p, p.FReg(fs)-p.FReg(ft)) }
			case FpMul:
				x = func(p arch.Proc) { set(p, p.FReg(fs)*p.FReg(ft)) }
			case FpDiv:
				x = func(p arch.Proc) { set(p, p.FReg(fs)/p.FReg(ft)) }
			case FpMov:
				x = func(p arch.Proc) { p.SetFReg(fd, p.FReg(fs)) }
			case FpNeg:
				x = func(p arch.Proc) { set(p, -p.FReg(fs)) }
			case FpCvtS:
				x = func(p arch.Proc) { p.SetFReg(fd, float64(float32(p.FReg(fs)))) }
			case FpCEq:
				x = func(p arch.Proc) { p.SetFlag(boolFlag(p.FReg(fs) == p.FReg(ft))) }
			case FpCLt:
				x = func(p arch.Proc) { p.SetFlag(boolFlag(p.FReg(fs) < p.FReg(ft))) }
			case FpCLe:
				x = func(p arch.Proc) { p.SetFlag(boolFlag(p.FReg(fs) <= p.FReg(ft))) }
			default:
				return nil
			}
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				x(p)
				return next, nil
			})
		}
		return nil
	}
	return nil
}
