// Package mips simulates a MIPS R3000-flavored target: 32 general
// registers, fixed 32-bit instructions, no frame pointer (lcc addresses
// locals through a virtual frame pointer, and ldb walks the stack with
// the runtime procedure table), and either byte order. The classic
// R3000 load delay slot is honored by the assembler/scheduler; the
// simulator interlocks, so delay slots affect code size (the paper's
// scheduling experiment) but not semantics.
//
// Simplifications from the real ISA, documented here once: mul, div,
// and rem are three-operand register ops (fn 24, 26, 27) instead of
// HI/LO pairs, and mtc1/mfc1 convert between integer and double rather
// than moving raw bits.
package mips

import (
	"encoding/binary"

	"ldb/internal/arch"
)

// Register numbering follows the MIPS convention.
const (
	R0   = 0  // hardwired zero
	V0   = 2  // return value and syscall number
	A0   = 4  // first syscall argument
	A1   = 5  // second syscall argument
	T0   = 8  // first scratch register
	SP   = 29 // stack pointer
	RA   = 31 // return address
	NReg = 32
	NFrg = 8
)

// Mips implements arch.Arch.
type Mips struct {
	name  string
	order binary.ByteOrder
}

// Big and Little are the two byte orders of the R3000; the paper's ldb
// executes the same code on both (§4.1).
var (
	Big    = &Mips{name: "mipsbe", order: binary.BigEndian}
	Little = &Mips{name: "mips", order: binary.LittleEndian}
)

func init() {
	arch.Register(Big)
	arch.Register(Little)
}

// Name implements arch.Arch.
func (m *Mips) Name() string { return m.name }

// Order implements arch.Arch.
func (m *Mips) Order() binary.ByteOrder { return m.order }

// WordSize implements arch.Arch.
func (m *Mips) WordSize() int { return 4 }

func (m *Mips) word(w uint32) []byte {
	b := make([]byte, 4)
	m.order.PutUint32(b, w)
	return b
}

// BreakInstr implements arch.Arch: `break 0`.
func (m *Mips) BreakInstr() []byte { return m.word(encBreak(arch.TrapBreakpoint)) }

// NopInstr implements arch.Arch: `sll r0,r0,0`.
func (m *Mips) NopInstr() []byte { return m.word(0) }

// InstrSize implements arch.Arch.
func (m *Mips) InstrSize() int { return 4 }

// PCAdvance implements arch.Arch.
func (m *Mips) PCAdvance() int64 { return 4 }

// NumRegs implements arch.Arch.
func (m *Mips) NumRegs() int { return NReg }

// NumFRegs implements arch.Arch.
func (m *Mips) NumFRegs() int { return NFrg }

var regNames = [NReg]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "s8", "ra",
}

// RegName implements arch.Arch.
func (m *Mips) RegName(i int) string {
	if i >= 0 && i < NReg {
		return regNames[i]
	}
	return "r?"
}

// SPReg implements arch.Arch.
func (m *Mips) SPReg() int { return SP }

// FPReg implements arch.Arch: the MIPS has no frame pointer.
func (m *Mips) FPReg() int { return -1 }

// RetReg implements arch.Arch.
func (m *Mips) RetReg() int { return V0 }

// LinkReg implements arch.Arch.
func (m *Mips) LinkReg() int { return RA }

// Context implements arch.Arch. The layout is sigcontext-flavored:
// pc, then the flag word, then r0..r31, then f0..f7. On the big-endian
// MIPS the kernel's doubleword quirk applies (§4.3 footnote).
func (m *Mips) Context() arch.ContextLayout {
	l := arch.ContextLayout{
		Size:          8 + 4*NReg + 8*NFrg,
		PCOff:         0,
		FlagOff:       4,
		RegOffs:       make([]int, NReg),
		FRegOffs:      make([]int, NFrg),
		FRegSize:      8,
		FloatWordSwap: m.order == binary.BigEndian,
	}
	for i := range l.RegOffs {
		l.RegOffs[i] = 8 + 4*i
	}
	for i := range l.FRegOffs {
		l.FRegOffs[i] = 8 + 4*NReg + 8*i
	}
	return l
}

// SyscallArg implements arch.Arch.
func (m *Mips) SyscallArg(p arch.Proc, i int) uint32 { return p.Reg(A0 + i) }

// SyscallRet implements arch.Arch.
func (m *Mips) SyscallRet(p arch.Proc, v uint32) { p.SetReg(V0, v) }
