package mips

import (
	"math"

	"ldb/internal/arch"
)

func sigill(pc uint32) *arch.Fault {
	return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigIll, PC: pc}
}

// Step implements arch.Arch. The simulator interlocks load delay slots
// (as the R4000 did), so scheduling affects code size, not semantics.
func (m *Mips) Step(p arch.Proc) *arch.Fault {
	pc := p.PC()
	w, f := p.Load(pc, 4)
	if f != nil {
		return f
	}
	op := w >> 26
	rs := int(w >> 21 & 31)
	rt := int(w >> 16 & 31)
	rd := int(w >> 11 & 31)
	sh := int(w >> 6 & 31)
	imm := int32(int16(w))
	uimm := uint32(uint16(w))
	next := pc + 4

	setReg := func(r int, v uint32) {
		if r != 0 {
			p.SetReg(r, v)
		}
	}
	branch := func(taken bool) {
		if taken {
			next = pc + 4 + uint32(imm)<<2
		}
	}

	switch op {
	case OpSpecial:
		fn := w & 63
		a, b := p.Reg(rs), p.Reg(rt)
		switch fn {
		case FnSll:
			setReg(rd, b<<sh)
		case FnSrl:
			setReg(rd, b>>sh)
		case FnSra:
			setReg(rd, uint32(int32(b)>>sh))
		case FnSllv:
			setReg(rd, b<<(a&31))
		case FnSrlv:
			setReg(rd, b>>(a&31))
		case FnSrav:
			setReg(rd, uint32(int32(b)>>(a&31)))
		case FnJr:
			next = a
		case FnJalr:
			setReg(rd, pc+4)
			next = a
		case FnSyscall:
			p.SetPC(pc + 4)
			return &arch.Fault{Kind: arch.FaultSyscall, Code: int(p.Reg(V0)), PC: pc}
		case FnBreak:
			code := int(w >> 6 & 0xfffff)
			return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: code, PC: pc, Len: 4}
		case FnMul:
			setReg(rd, uint32(int32(a)*int32(b)))
		case FnDiv:
			if b == 0 {
				return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
			}
			setReg(rd, uint32(int32(a)/int32(b)))
		case FnRem:
			if b == 0 {
				return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
			}
			setReg(rd, uint32(int32(a)%int32(b)))
		case FnAddu:
			setReg(rd, a+b)
		case FnSubu:
			setReg(rd, a-b)
		case FnAnd:
			setReg(rd, a&b)
		case FnOr:
			setReg(rd, a|b)
		case FnXor:
			setReg(rd, a^b)
		case FnNor:
			setReg(rd, ^(a | b))
		case FnSlt:
			if int32(a) < int32(b) {
				setReg(rd, 1)
			} else {
				setReg(rd, 0)
			}
		case FnSltu:
			if a < b {
				setReg(rd, 1)
			} else {
				setReg(rd, 0)
			}
		default:
			return sigill(pc)
		}
	case OpRegimm:
		a := int32(p.Reg(rs))
		switch rt {
		case 0: // bltz
			branch(a < 0)
		case 1: // bgez
			branch(a >= 0)
		default:
			return sigill(pc)
		}
	case OpJ, OpJal:
		target := pc&0xf0000000 | w<<6>>4
		if op == OpJal {
			setReg(RA, pc+4)
		}
		next = target
	case OpBeq:
		branch(p.Reg(rs) == p.Reg(rt))
	case OpBne:
		branch(p.Reg(rs) != p.Reg(rt))
	case OpBlez:
		branch(int32(p.Reg(rs)) <= 0)
	case OpBgtz:
		branch(int32(p.Reg(rs)) > 0)
	case OpAddiu:
		setReg(rt, p.Reg(rs)+uint32(imm))
	case OpSlti:
		if int32(p.Reg(rs)) < imm {
			setReg(rt, 1)
		} else {
			setReg(rt, 0)
		}
	case OpAndi:
		setReg(rt, p.Reg(rs)&uimm)
	case OpOri:
		setReg(rt, p.Reg(rs)|uimm)
	case OpXori:
		setReg(rt, p.Reg(rs)^uimm)
	case OpLui:
		setReg(rt, uimm<<16)
	case OpLb, OpLbu, OpLh, OpLhu, OpLw:
		addr := p.Reg(rs) + uint32(imm)
		var size int
		switch op {
		case OpLb, OpLbu:
			size = 1
		case OpLh, OpLhu:
			size = 2
		default:
			size = 4
		}
		v, f := p.Load(addr, size)
		if f != nil {
			return f
		}
		switch op {
		case OpLb:
			v = uint32(int32(int8(v)))
		case OpLh:
			v = uint32(int32(int16(v)))
		}
		setReg(rt, v)
	case OpSb, OpSh, OpSw:
		addr := p.Reg(rs) + uint32(imm)
		size := 4
		if op == OpSb {
			size = 1
		} else if op == OpSh {
			size = 2
		}
		if f := p.Store(addr, size, p.Reg(rt)); f != nil {
			return f
		}
	case OpLwc1:
		v, f := p.LoadFloat(p.Reg(rs)+uint32(imm), 4)
		if f != nil {
			return f
		}
		p.SetFReg(rt&7, v)
	case OpLdc1:
		v, f := p.LoadFloat(p.Reg(rs)+uint32(imm), 8)
		if f != nil {
			return f
		}
		p.SetFReg(rt&7, v)
	case OpSwc1:
		if f := p.StoreFloat(p.Reg(rs)+uint32(imm), 4, p.FReg(rt&7)); f != nil {
			return f
		}
	case OpSdc1:
		if f := p.StoreFloat(p.Reg(rs)+uint32(imm), 8, p.FReg(rt&7)); f != nil {
			return f
		}
	case OpCop1:
		sub := rs
		switch sub {
		case C1Mfc1:
			setReg(rt, uint32(int32(math.Trunc(p.FReg(rd&7)))))
		case C1Mtc1:
			p.SetFReg(rd&7, float64(int32(p.Reg(rt))))
		case C1Bc:
			taken := p.Flag()&1 != 0
			if rt&1 == 0 {
				taken = !taken
			}
			branch(taken)
		case C1FmtS, C1FmtD:
			fs, ft, fd := rd&7, rt&7, sh&7
			// Field positions in COP1 arithmetic: ft<<16 fs<<11 fd<<6.
			fs = int(w >> 11 & 7)
			ft = int(w >> 16 & 7)
			fd = int(w >> 6 & 7)
			av, bv := p.FReg(fs), p.FReg(ft)
			single := sub == C1FmtS
			set := func(v float64) {
				if single {
					v = float64(float32(v))
				}
				p.SetFReg(fd, v)
			}
			switch w & 63 {
			case FpAdd:
				set(av + bv)
			case FpSub:
				set(av - bv)
			case FpMul:
				set(av * bv)
			case FpDiv:
				set(av / bv)
			case FpMov:
				p.SetFReg(fd, av)
			case FpNeg:
				set(-av)
			case FpCvtS:
				p.SetFReg(fd, float64(float32(av)))
			case FpCEq:
				p.SetFlag(boolFlag(av == bv))
			case FpCLt:
				p.SetFlag(boolFlag(av < bv))
			case FpCLe:
				p.SetFlag(boolFlag(av <= bv))
			default:
				return sigill(pc)
			}
		default:
			return sigill(pc)
		}
	default:
		return sigill(pc)
	}
	p.SetPC(next)
	return nil
}

func boolFlag(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
