package mips

import (
	"bytes"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/machine"
)

func run(t *testing.T, m *Mips, build func(a *Asm)) *machine.Process {
	t.Helper()
	a := NewAsm(m)
	build(a)
	code, relocs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(relocs) != 0 {
		t.Fatalf("unexpected relocs in test fragment: %v", relocs)
	}
	p := machine.New(m, code, make([]byte, 4096), machine.TextBase)
	f := p.Run()
	if f.Kind != arch.FaultHalt {
		t.Fatalf("run ended with %v, want halt; pc=%#x", f, p.PC())
	}
	return p
}

// exit emits the exit(0) sequence.
func exitSeq(a *Asm) {
	a.LI(V0, arch.SysExit)
	a.LI(A0, 0)
	a.Syscall()
}

func TestArithmetic(t *testing.T) {
	p := run(t, Little, func(a *Asm) {
		a.LI(T0, 21)
		a.LI(T0+1, 2)
		a.R(FnMul, T0+2, T0, T0+1) // 42
		a.LI(T0+3, 5)
		a.R(FnDiv, T0+4, T0+2, T0+3) // 8
		a.R(FnRem, T0+5, T0+2, T0+3) // 2
		a.R(FnSubu, T0+6, T0+2, T0+3)
		a.R(FnAddu, T0+7, T0+2, T0+3)
		exitSeq(a)
	})
	for i, want := range map[int]uint32{T0 + 2: 42, T0 + 4: 8, T0 + 5: 2, T0 + 6: 37, T0 + 7: 47} {
		if got := p.Reg(i); got != want {
			t.Errorf("reg %d = %d, want %d", i, got, want)
		}
	}
}

func TestMemoryAndBranches(t *testing.T) {
	for _, m := range []*Mips{Big, Little} {
		p := run(t, m, func(a *Asm) {
			a.LI(T0, int32(machine.DataBase))
			a.LI(T0+1, 0x12345678)
			a.I(OpSw, T0+1, T0, 0)
			a.I(OpLw, T0+2, T0, 0)
			a.I(OpLb, T0+3, T0, 0) // byte 0 depends on byte order
			a.I(OpLbu, T0+4, T0, 0)
			a.I(OpLhu, T0+5, T0, 0)
			// Loop: sum 1..5 in t6.
			a.LI(T0+6, 0)
			a.LI(T0+7, 1)
			a.Label("loop")
			a.R(FnAddu, T0+6, T0+6, T0+7)
			a.I(OpAddiu, T0+7, T0+7, 1)
			a.LI(1, 6)
			a.Branch(OpBne, T0+7, 1, "loop")
			exitSeq(a)
		})
		if got := p.Reg(T0 + 2); got != 0x12345678 {
			t.Errorf("%s: lw = %#x", m.Name(), got)
		}
		wantB := uint32(0x78)
		wantH := uint32(0x5678)
		if m == Big {
			wantB = 0x12
			wantH = 0x1234
		}
		if got := p.Reg(T0 + 4); got != wantB {
			t.Errorf("%s: lbu = %#x, want %#x", m.Name(), got, wantB)
		}
		if got := p.Reg(T0 + 5); got != wantH {
			t.Errorf("%s: lhu = %#x, want %#x", m.Name(), got, wantH)
		}
		if got := p.Reg(T0 + 6); got != 15 {
			t.Errorf("%s: loop sum = %d, want 15", m.Name(), got)
		}
	}
}

func TestSignExtension(t *testing.T) {
	p := run(t, Little, func(a *Asm) {
		a.LI(T0, int32(machine.DataBase))
		a.LI(T0+1, -2) // 0xfffffffe
		a.I(OpSw, T0+1, T0, 0)
		a.I(OpLb, T0+2, T0, 0) // sign-extended byte
		a.I(OpLh, T0+3, T0, 0) // sign-extended half
		exitSeq(a)
	})
	if got := int32(p.Reg(T0 + 2)); got != -2 {
		t.Errorf("lb = %d, want -2", got)
	}
	if got := int32(p.Reg(T0 + 3)); got != -2 {
		t.Errorf("lh = %d, want -2", got)
	}
}

func TestCallAndReturn(t *testing.T) {
	// jal goes through relocations, exercised in the link tests; here
	// test the jr/jalr round trip.
	p2 := run(t, Little, func(a *Asm) {
		a.LI(1, int32(machine.TextBase)+6*4) // address of "func"
		a.R(FnJalr, RA, 1, 0)
		a.J("done")
		a.Nop()
		a.Nop()
		a.Nop() // padding so func lands at word 6
		a.Label("func")
		a.LI(V0, 99)
		a.R(FnJr, 0, RA, 0)
		a.Label("done")
		a.R(FnAddu, T0, V0, 0)
		exitSeq(a)
	})
	if got := p2.Reg(T0); got != 99 {
		t.Errorf("call/return: t0 = %d, want 99", got)
	}
}

func TestFloat(t *testing.T) {
	p := run(t, Little, func(a *Asm) {
		a.LI(T0, 7)
		a.Mtc1(T0, 0) // f0 = 7.0
		a.LI(T0, 2)
		a.Mtc1(T0, 1) // f1 = 2.0
		a.Fp(FpDiv, C1FmtD, 2, 0, 1)
		a.Fp(FpMul, C1FmtD, 3, 2, 1) // back to 7
		a.Mfc1(T0+1, 3)
		a.Fp(FpCLt, C1FmtD, 0, 1, 0) // 2 < 7 → flag 1
		a.Bc1(1, "lt")
		a.LI(T0+2, 0)
		a.J("end")
		a.Label("lt")
		a.LI(T0+2, 1)
		a.Label("end")
		// store/load double through memory
		a.LI(T0+3, int32(machine.DataBase))
		a.I(OpSdc1, 2, T0+3, 0)
		a.I(OpLdc1, 4, T0+3, 0)
		a.Fp(FpCEq, C1FmtD, 0, 4, 2)
		a.Bc1(1, "eq")
		a.LI(T0+4, 0)
		a.J("end2")
		a.Label("eq")
		a.LI(T0+4, 1)
		a.Label("end2")
		exitSeq(a)
	})
	if got := p.Reg(T0 + 1); got != 7 {
		t.Errorf("float mul/div = %d, want 7", got)
	}
	if got := p.Reg(T0 + 2); got != 1 {
		t.Errorf("float compare branch not taken")
	}
	if got := p.Reg(T0 + 4); got != 1 {
		t.Errorf("double store/load not equal")
	}
}

func TestSyscallOutput(t *testing.T) {
	p := run(t, Little, func(a *Asm) {
		a.LI(V0, arch.SysPutInt)
		a.LI(A0, -42)
		a.Syscall()
		a.LI(V0, arch.SysPutChar)
		a.LI(A0, '\n')
		a.Syscall()
		exitSeq(a)
	})
	if got := p.Stdout.String(); got != "-42\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestFaults(t *testing.T) {
	// Divide by zero.
	a := NewAsm(Little)
	a.LI(T0, 1)
	a.LI(T0+1, 0)
	a.R(FnDiv, T0+2, T0, T0+1)
	code, _, _ := a.Finish()
	p := machine.New(Little, code, nil, machine.TextBase)
	f := p.Run()
	if f.Sig != arch.SigFPE {
		t.Errorf("div by zero: %v, want SIGFPE", f)
	}
	// Wild load.
	a = NewAsm(Little)
	a.LI(T0, 0x00000004)
	a.I(OpLw, T0+1, T0, 0)
	code, _, _ = a.Finish()
	p = machine.New(Little, code, nil, machine.TextBase)
	f = p.Run()
	if f.Sig != arch.SigSegv {
		t.Errorf("wild load: %v, want SIGSEGV", f)
	}
	// Break instruction raises SIGTRAP with its code.
	a = NewAsm(Little)
	a.Break(arch.TrapPause)
	code, _, _ = a.Finish()
	p = machine.New(Little, code, nil, machine.TextBase)
	f = p.Run()
	if f.Sig != arch.SigTrap || f.Code != arch.TrapPause {
		t.Errorf("pause: %v", f)
	}
	// Illegal instruction.
	p = machine.New(Little, []byte{0xff, 0xff, 0xff, 0xfc}, nil, machine.TextBase)
	f = p.Run()
	if f.Sig != arch.SigIll {
		t.Errorf("illegal: %v", f)
	}
}

func TestBreakInstrMatchesEncoding(t *testing.T) {
	for _, m := range []*Mips{Big, Little} {
		bi := m.BreakInstr()
		if len(bi) != m.InstrSize() {
			t.Fatalf("%s: break width %d != instr size %d", m.Name(), len(bi), m.InstrSize())
		}
		p := machine.New(m, bi, nil, machine.TextBase)
		f := p.Run()
		if f.Sig != arch.SigTrap || f.Code != arch.TrapBreakpoint {
			t.Errorf("%s: planted break: %v", m.Name(), f)
		}
		// The nop pattern executes as a no-op.
		nop := append(append([]byte{}, m.NopInstr()...), m.BreakInstr()...)
		p = machine.New(m, nop, nil, machine.TextBase)
		f = p.Run()
		if f.PC != machine.TextBase+uint32(m.PCAdvance()) {
			t.Errorf("%s: nop advance: trap at %#x", m.Name(), f.PC)
		}
	}
}

func TestSchedulerPredicates(t *testing.T) {
	a := NewAsm(Little)
	a.I(OpLw, T0, SP, 4)
	code, _, _ := a.Finish()
	w := Little.order.Uint32(code)
	if !IsLoad(w) || LoadTarget(w) != T0 {
		t.Fatalf("IsLoad/LoadTarget failed on lw")
	}
	a = NewAsm(Little)
	a.R(FnAddu, 1, T0, 2)
	code, _, _ = a.Finish()
	add := Little.order.Uint32(code)
	if !Reads(add, T0) || Reads(add, 5) || !Writes(add, 1) || Writes(add, T0) {
		t.Fatalf("Reads/Writes misclassify addu")
	}
	a = NewAsm(Little)
	a.Branch(OpBeq, 0, 0, "x")
	a.Label("x")
	code, _, _ = a.Finish()
	if !IsBranch(Little.order.Uint32(code)) {
		t.Fatalf("IsBranch misclassifies beq")
	}
	a = NewAsm(Little)
	a.I(OpSw, T0, SP, 0)
	code, _, _ = a.Finish()
	if !IsStore(Little.order.Uint32(code)) {
		t.Fatalf("IsStore misclassifies sw")
	}
	if IsLoad(0) || Writes(0, 1) || Reads(0, 1) {
		t.Fatalf("nop misclassified")
	}
}

func TestContextLayout(t *testing.T) {
	for _, m := range []*Mips{Big, Little} {
		l := m.Context()
		if len(l.RegOffs) != m.NumRegs() || len(l.FRegOffs) != m.NumFRegs() {
			t.Fatalf("%s: context layout sizes", m.Name())
		}
		max := 0
		for _, o := range l.RegOffs {
			if o+4 > max {
				max = o + 4
			}
		}
		for _, o := range l.FRegOffs {
			if o+l.FRegSize > max {
				max = o + l.FRegSize
			}
		}
		if l.PCOff+4 > max {
			max = l.PCOff + 4
		}
		if max > l.Size {
			t.Fatalf("%s: context layout overflows Size (%d > %d)", m.Name(), max, l.Size)
		}
	}
	if !Big.Context().FloatWordSwap {
		t.Error("big-endian MIPS must have the sigcontext word-swap quirk")
	}
	if Little.Context().FloatWordSwap {
		t.Error("little-endian MIPS must not word-swap")
	}
}

func TestRegistered(t *testing.T) {
	for _, n := range []string{"mips", "mipsbe"} {
		a, ok := arch.Lookup(n)
		if !ok {
			t.Fatalf("%s not registered", n)
		}
		if a.Name() != n {
			t.Fatalf("registered name %q", a.Name())
		}
	}
}

func TestEndiannessOfCode(t *testing.T) {
	// The same instruction assembles to different bytes per byte order.
	ab := NewAsm(Big)
	ab.LI(T0, 1)
	cb, _, _ := ab.Finish()
	al := NewAsm(Little)
	al.LI(T0, 1)
	cl, _, _ := al.Finish()
	if bytes.Equal(cb, cl) {
		t.Fatal("big- and little-endian code identical")
	}
}

func TestShiftAndBranchZ(t *testing.T) {
	p := run(t, Little, func(a *Asm) {
		a.LI(T0, 1)
		a.Shift(FnSll, T0+1, T0, 5) // 32
		a.Shift(FnSra, T0+2, T0+1, 2)
		a.LI(T0+3, -1)
		a.BranchZ(0, T0+3, "neg") // bltz taken
		a.LI(T0+4, 0)
		a.J("c1")
		a.Label("neg")
		a.LI(T0+4, 1)
		a.Label("c1")
		a.BranchZ(1, T0, "pos") // bgez on 1: taken
		a.LI(T0+5, 0)
		a.J("c2")
		a.Label("pos")
		a.LI(T0+5, 1)
		a.Label("c2")
		exitSeq(a)
	})
	if p.Reg(T0+1) != 32 || p.Reg(T0+2) != 8 {
		t.Fatalf("shifts: %d %d", p.Reg(T0+1), p.Reg(T0+2))
	}
	if p.Reg(T0+4) != 1 || p.Reg(T0+5) != 1 {
		t.Fatalf("branchz: %d %d", p.Reg(T0+4), p.Reg(T0+5))
	}
}
