package mips

import (
	"fmt"

	"ldb/internal/arch"
)

// R-type function codes.
const (
	FnSll     = 0
	FnSrl     = 2
	FnSra     = 3
	FnSllv    = 4
	FnSrlv    = 6
	FnSrav    = 7
	FnJr      = 8
	FnJalr    = 9
	FnSyscall = 12
	FnBreak   = 13
	FnMul     = 24 // simplified three-operand multiply
	FnDiv     = 26 // simplified three-operand signed divide
	FnRem     = 27 // simplified three-operand signed remainder
	FnAddu    = 33
	FnSubu    = 35
	FnAnd     = 36
	FnOr      = 37
	FnXor     = 38
	FnNor     = 39
	FnSlt     = 42
	FnSltu    = 43
)

// Major opcodes.
const (
	OpSpecial = 0
	OpRegimm  = 1 // bltz/bgez
	OpJ       = 2
	OpJal     = 3
	OpBeq     = 4
	OpBne     = 5
	OpBlez    = 6
	OpBgtz    = 7
	OpAddiu   = 9
	OpSlti    = 10
	OpAndi    = 12
	OpOri     = 13
	OpXori    = 14
	OpLui     = 15
	OpCop1    = 17
	OpLb      = 32
	OpLh      = 33
	OpLw      = 35
	OpLbu     = 36
	OpLhu     = 37
	OpSb      = 40
	OpSh      = 41
	OpSw      = 43
	OpLwc1    = 49
	OpLdc1    = 53
	OpSwc1    = 57
	OpSdc1    = 61
)

// COP1 rs-field sub-ops and function codes.
const (
	C1Mfc1 = 0 // rt = int(fs)   (simplified: converts)
	C1Mtc1 = 4 // fs = float(rt) (simplified: converts)
	C1Bc   = 8 // bc1f/bc1t
	C1FmtS = 16
	C1FmtD = 17

	FpAdd  = 0
	FpSub  = 1
	FpMul  = 2
	FpDiv  = 3
	FpMov  = 6
	FpNeg  = 7
	FpCvtS = 32 // round to single precision
	FpCEq  = 50
	FpCLt  = 60
	FpCLe  = 62
)

func encR(fn, rd, rs, rt int) uint32 {
	return uint32(rs&31)<<21 | uint32(rt&31)<<16 | uint32(rd&31)<<11 | uint32(fn&63)
}

func encShift(fn, rd, rt, sh int) uint32 {
	return uint32(rt&31)<<16 | uint32(rd&31)<<11 | uint32(sh&31)<<6 | uint32(fn&63)
}

func encI(op, rt, rs int, imm uint16) uint32 {
	return uint32(op&63)<<26 | uint32(rs&31)<<21 | uint32(rt&31)<<16 | uint32(imm)
}

func encBreak(code int) uint32 {
	return uint32(code&0xfffff)<<6 | FnBreak
}

// insn is one pending instruction. Instructions are kept as records
// until Finish so the delay-slot scheduler can reorder them; labels,
// branch fixups, and relocations travel with their instructions.
type insn struct {
	w        uint32
	fixLabel string       // branch target, resolved at layout
	relocs   []arch.Reloc // Off is relative to this instruction
}

// Asm assembles MIPS instructions. Unlike the other three targets, the
// MIPS assembler schedules load delay slots (§3): when it cannot fill a
// slot it pads with a no-op. Labels bound stopping points restrict the
// scheduling window when compiling for debugging, which is exactly the
// restriction the paper measures.
type Asm struct {
	M *Mips
	// Sched enables the delay-slot scheduler.
	Sched bool
	// Filled and Padded report scheduling results after Finish.
	Filled int
	Padded int

	insns          []insn
	labelsAt       map[int][]string // instruction index → labels bound there
	resolvedLabels map[string]int   // filled by Finish
}

// NewAsm returns an assembler for the given MIPS variant.
func NewAsm(m *Mips) *Asm {
	return &Asm{M: m, labelsAt: make(map[int][]string)}
}

// Off returns the current offset in bytes.
func (a *Asm) Off() int { return 4 * len(a.insns) }

// Instrs reports how many instructions have been emitted (before any
// scheduler padding).
func (a *Asm) Instrs() int { return len(a.insns) }

// Label binds name to the current position.
func (a *Asm) Label(name string) {
	i := len(a.insns)
	a.labelsAt[i] = append(a.labelsAt[i], name)
}

func (a *Asm) word(w uint32) {
	a.insns = append(a.insns, insn{w: w})
}

// R emits an R-type instruction.
func (a *Asm) R(fn, rd, rs, rt int) { a.word(encR(fn, rd, rs, rt)) }

// Shift emits a shift-by-constant.
func (a *Asm) Shift(fn, rd, rt, sh int) { a.word(encShift(fn, rd, rt, sh)) }

// I emits an I-type instruction with a signed immediate.
func (a *Asm) I(op, rt, rs int, imm int32) { a.word(encI(op, rt, rs, uint16(imm))) }

// Nop emits the canonical no-op.
func (a *Asm) Nop() { a.word(0) }

// Break emits `break code`.
func (a *Asm) Break(code int) { a.word(encBreak(code)) }

// Syscall emits the syscall instruction.
func (a *Asm) Syscall() { a.word(FnSyscall) }

// Branch emits a conditional branch to a local label.
func (a *Asm) Branch(op, rs, rt int, label string) {
	a.insns = append(a.insns, insn{w: encI(op, rt, rs, 0), fixLabel: label})
}

// BranchZ emits bltz (cond=0) or bgez (cond=1).
func (a *Asm) BranchZ(cond, rs int, label string) {
	a.Branch(OpRegimm, rs, cond, label)
}

// Bc1 emits bc1t (cond=1) or bc1f (cond=0) on the float compare flag.
func (a *Asm) Bc1(cond int, label string) {
	a.insns = append(a.insns, insn{
		w:        uint32(OpCop1)<<26 | uint32(C1Bc)<<21 | uint32(cond&1)<<16,
		fixLabel: label,
	})
}

// Jal emits a call to a global symbol.
func (a *Asm) Jal(sym string) {
	a.insns = append(a.insns, insn{
		w:      uint32(OpJal) << 26,
		relocs: []arch.Reloc{{Kind: arch.RelPC26, Sym: sym}},
	})
}

// J emits a jump to a local label (as beq r0,r0 for simplicity of
// range handling).
func (a *Asm) J(label string) { a.Branch(OpBeq, R0, R0, label) }

// LA loads the address of sym+add into rd (lui/ori pair).
func (a *Asm) LA(rd int, sym string, add int64) {
	a.insns = append(a.insns, insn{
		w:      encI(OpLui, rd, 0, 0),
		relocs: []arch.Reloc{{Kind: arch.RelHi16, Sym: sym, Add: add}},
	})
	a.insns = append(a.insns, insn{
		w:      encI(OpOri, rd, rd, 0),
		relocs: []arch.Reloc{{Kind: arch.RelLo16, Sym: sym, Add: add}},
	})
}

// LI loads a 32-bit constant into rd.
func (a *Asm) LI(rd int, v int32) {
	if v >= -32768 && v < 32768 {
		a.I(OpAddiu, rd, R0, v)
		return
	}
	a.word(encI(OpLui, rd, 0, uint16(uint32(v)>>16)))
	a.word(encI(OpOri, rd, rd, uint16(uint32(v))))
}

// Fp emits a COP1 arithmetic op: fd = fs OP ft in the given format.
func (a *Asm) Fp(fn, fmt, fd, fs, ft int) {
	a.word(uint32(OpCop1)<<26 | uint32(fmt&31)<<21 | uint32(ft&31)<<16 |
		uint32(fs&31)<<11 | uint32(fd&31)<<6 | uint32(fn&63))
}

// Mtc1 moves (converting) an integer register into a float register.
func (a *Asm) Mtc1(rt, fs int) {
	a.word(uint32(OpCop1)<<26 | uint32(C1Mtc1)<<21 | uint32(rt&31)<<16 | uint32(fs&31)<<11)
}

// Mfc1 moves (converting, truncating) a float register into an integer
// register.
func (a *Asm) Mfc1(rt, fs int) {
	a.word(uint32(OpCop1)<<26 | uint32(C1Mfc1)<<21 | uint32(rt&31)<<16 | uint32(fs&31)<<11)
}

// Finish schedules (when enabled), lays out the instructions, resolves
// label branches, and returns the code and relocations.
func (a *Asm) Finish() ([]byte, []arch.Reloc, error) {
	if a.Sched {
		a.schedule()
	}
	labelOff := make(map[string]int, len(a.labelsAt))
	for idx, names := range a.labelsAt {
		for _, n := range names {
			labelOff[n] = 4 * idx
		}
	}
	buf := make([]byte, 0, 4*len(a.insns))
	var relocs []arch.Reloc
	for i, ins := range a.insns {
		w := ins.w
		if ins.fixLabel != "" {
			target, ok := labelOff[ins.fixLabel]
			if !ok {
				return nil, nil, fmt.Errorf("mips: undefined label %q", ins.fixLabel)
			}
			disp := (target - (4*i + 4)) / 4
			if disp < -32768 || disp > 32767 {
				return nil, nil, fmt.Errorf("mips: branch to %q out of range", ins.fixLabel)
			}
			w = w&0xffff0000 | uint32(uint16(int16(disp)))
		}
		for _, r := range ins.relocs {
			r.Off = 4 * i
			relocs = append(relocs, r)
		}
		var b [4]byte
		a.M.order.PutUint32(b[:], w)
		buf = append(buf, b[:]...)
	}
	a.resolvedLabels = labelOff
	return buf, relocs, nil
}

// Labels exposes the bound labels (offsets within the fragment). Valid
// only after Finish, which accounts for scheduler-inserted padding.
func (a *Asm) Labels() map[string]int { return a.resolvedLabels }

// IsLoad reports whether the word encodes a delayed load (the R3000
// load delay slot applies to integer loads).
func IsLoad(w uint32) bool {
	switch w >> 26 {
	case OpLb, OpLh, OpLw, OpLbu, OpLhu:
		return true
	}
	return false
}

// LoadTarget returns the register written by a delayed load.
func LoadTarget(w uint32) int { return int(w >> 16 & 31) }

// Reads reports whether the word encodes an instruction that reads
// register r, conservatively (used by the delay-slot scheduler).
func Reads(w uint32, r int) bool {
	if r == 0 {
		return false
	}
	op := w >> 26
	rs := int(w >> 21 & 31)
	rt := int(w >> 16 & 31)
	switch op {
	case OpSpecial:
		return rs == r || rt == r
	case OpJ, OpJal:
		return false
	case OpLui:
		return false
	case OpCop1:
		sub := int(w >> 21 & 31)
		if sub == C1Mtc1 {
			return rt == r
		}
		return false
	case OpSb, OpSh, OpSw, OpSwc1, OpSdc1:
		return rs == r || (op != OpSwc1 && op != OpSdc1 && rt == r)
	case OpBeq, OpBne:
		return rs == r || rt == r
	case OpBlez, OpBgtz, OpRegimm:
		return rs == r
	default: // immediates and loads read rs
		return rs == r
	}
}

// Writes reports whether the word writes register r.
func Writes(w uint32, r int) bool {
	if r == 0 {
		return false
	}
	op := w >> 26
	switch op {
	case OpSpecial:
		fn := w & 63
		if fn == FnJalr {
			return int(w>>11&31) == r
		}
		if fn == FnBreak || fn == FnSyscall || fn == FnJr {
			return false
		}
		return int(w>>11&31) == r
	case OpJal:
		return r == RA
	case OpCop1:
		sub := int(w >> 21 & 31)
		return sub == C1Mfc1 && int(w>>16&31) == r
	case OpLb, OpLh, OpLw, OpLbu, OpLhu, OpAddiu, OpSlti, OpAndi, OpOri, OpXori, OpLui:
		return int(w>>16&31) == r
	}
	return false
}

// IsBranch reports whether the word transfers control (branches end
// scheduling windows).
func IsBranch(w uint32) bool {
	op := w >> 26
	switch op {
	case OpJ, OpJal, OpBeq, OpBne, OpBlez, OpBgtz, OpRegimm:
		return true
	case OpSpecial:
		fn := w & 63
		return fn == FnJr || fn == FnJalr || fn == FnBreak || fn == FnSyscall
	case OpCop1:
		return int(w>>21&31) == C1Bc
	}
	return false
}

// IsStore reports whether the word writes memory.
func IsStore(w uint32) bool {
	switch w >> 26 {
	case OpSb, OpSh, OpSw, OpSwc1, OpSdc1:
		return true
	}
	return false
}
