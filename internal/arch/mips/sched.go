package mips

// The load delay slot scheduler. On the R3000 the register written by
// a load must not be read by the immediately following instruction;
// the assembler fills such slots by moving a later independent
// instruction up, and pads with a no-op when nothing can move (§3).
//
// Scheduling never crosses a label or a control transfer. When lcc
// compiles for debugging it places a label at every stopping point, so
// the scheduler "may rearrange instructions only within top-level
// expressions, not within basic blocks" — the windows shrink, fewer
// slots can be filled, and the code grows. That penalty, independent
// of the explicitly inserted no-ops, is the paper's 13% measurement.
//
// The simulator interlocks (as the R4000 did), so scheduling affects
// code size and fidelity, not correctness.

// regsOf conservatively reports the registers an instruction reads and
// writes.
func regsOf(w uint32) (reads, writes uint32) {
	for r := 1; r < 32; r++ {
		if Reads(w, r) {
			reads |= 1 << uint(r)
		}
		if Writes(w, r) {
			writes |= 1 << uint(r)
		}
	}
	return
}

// movable reports whether an instruction may be hoisted into a delay
// slot at all: no control transfers, no stores, no no-ops (a
// stopping-point no-op must stay put for breakpoints), and no
// floating-point operations (their dependences are not modeled).
// Loads may move only when no store is skipped over (memory order).
func movable(w uint32, skippedStore bool) bool {
	if w == 0 || IsBranch(w) || IsStore(w) {
		return false
	}
	if IsLoad(w) && skippedStore {
		return false
	}
	if w>>26 == OpCop1 || w>>26 == OpLwc1 || w>>26 == OpLdc1 || w>>26 == OpSwc1 || w>>26 == OpSdc1 {
		return false
	}
	return true
}

const schedScan = 8 // how far ahead the scheduler looks for a filler

// schedule fills or pads every hazardous load delay slot.
func (a *Asm) schedule() {
	i := 0
	for i < len(a.insns) {
		w := a.insns[i].w
		if !IsLoad(w) {
			i++
			continue
		}
		r := LoadTarget(w)
		// A hazard exists when the next instruction (fall-through)
		// reads the loaded register.
		if i+1 >= len(a.insns) || !Reads(a.insns[i+1].w, r) {
			i++
			continue
		}
		if j := a.findFiller(i); j >= 0 {
			a.moveUp(j, i+1)
			a.Filled++
		} else {
			a.insertNop(i + 1)
			a.Padded++
		}
		i += 2 // past the load and its (now safe) slot
	}
}

// findFiller looks for an instruction after the hazard that can move
// into the slot at i+1 without changing meaning. The search stops at
// the window boundary: any label (branch targets and stopping points)
// or control transfer.
func (a *Asm) findFiller(i int) int {
	if len(a.labelsAt[i+1]) > 0 {
		// The hazard instruction is a branch target: filling would put
		// the filler under the label. Pad instead.
		return -1
	}
	w := a.insns[i].w
	loadR := uint32(1) << uint(LoadTarget(w))
	// Registers the skipped-over instructions touch; the filler must be
	// fully independent of them, and of the loaded register.
	var blockR, blockW uint32
	skippedStore := false
	r0, w0 := regsOf(a.insns[i+1].w)
	blockR, blockW = r0, w0
	if IsStore(a.insns[i+1].w) {
		skippedStore = true
	}
	for j := i + 2; j < len(a.insns) && j <= i+schedScan; j++ {
		if len(a.labelsAt[j]) > 0 {
			return -1 // window ends at a label
		}
		c := a.insns[j]
		if IsBranch(c.w) {
			return -1
		}
		if movable(c.w, skippedStore) {
			cr, cw := regsOf(c.w)
			indep := cr&(blockW|loadR) == 0 &&
				cw&(blockR|blockW|loadR) == 0 &&
				cr&loadR == 0
			if indep {
				return j
			}
		}
		cr, cw := regsOf(c.w)
		blockR |= cr
		blockW |= cw
		if IsStore(c.w) {
			skippedStore = true
		}
	}
	return -1
}

// moveUp removes the instruction at j and reinserts it at position at,
// keeping labels attached to their original instructions.
func (a *Asm) moveUp(j, at int) {
	ins := a.insns[j]
	a.insns = append(a.insns[:j], a.insns[j+1:]...)
	a.insns = append(a.insns, insn{})
	copy(a.insns[at+1:], a.insns[at:])
	a.insns[at] = ins
	a.shiftLabels(at, j)
}

// insertNop inserts a no-op at position at.
func (a *Asm) insertNop(at int) {
	a.insns = append(a.insns, insn{})
	copy(a.insns[at+1:], a.insns[at:])
	a.insns[at] = insn{w: 0}
	a.shiftLabelsFrom(at)
}

// shiftLabels adjusts label bindings after moving the instruction at j
// up to position at (labels in (at, j] move down by one).
func (a *Asm) shiftLabels(at, j int) {
	// No labels exist inside the window (findFiller refuses them), so
	// only bindings strictly beyond j could be affected — and those
	// keep their indices because the move is a rotation within [at, j].
	_ = at
	_ = j
}

// shiftLabelsFrom adjusts label bindings after inserting one
// instruction at position at: bindings at ≥ at move up by one.
func (a *Asm) shiftLabelsFrom(at int) {
	updated := make(map[int][]string, len(a.labelsAt))
	for idx, names := range a.labelsAt {
		if idx >= at {
			idx++
		}
		updated[idx] = append(updated[idx], names...)
	}
	a.labelsAt = updated
}
