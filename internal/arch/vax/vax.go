// Package vax simulates a VAX-flavored target: little-endian, byte-
// coded variable-length instructions with operand specifiers, sixteen
// general registers with a conventional frame pointer, and one-byte
// break and no-op instructions (so breakpoints fetch and store single
// bytes — the smallest "instruction type" of the four targets).
//
// Documented simplifications: jsb/rsb calls instead of the call-frame
// calls/ret machinery; conditional branches take 16-bit displacements;
// floating values use IEEE formats in eight dedicated float registers
// (addressed by custom operand mode 4) instead of D_floating register
// pairs; and 0x79 is a custom logical-shift-right opcode.
package vax

import (
	"encoding/binary"

	"ldb/internal/arch"
)

// Register numbering follows the VAX convention.
const (
	R0   = 0 // return value
	R1   = 1 // first syscall argument
	R2   = 2 // second syscall argument
	AP   = 12
	FP   = 13
	SP   = 14
	PCr  = 15 // pc lives in the r15 slot of a saved context
	NReg = 16
	NFrg = 8
)

// Vax implements arch.Arch.
type Vax struct{}

// Target is the singleton VAX target.
var Target = &Vax{}

func init() { arch.Register(Target) }

// Name implements arch.Arch.
func (v *Vax) Name() string { return "vax" }

// Order implements arch.Arch.
func (v *Vax) Order() binary.ByteOrder { return binary.LittleEndian }

// WordSize implements arch.Arch.
func (v *Vax) WordSize() int { return 4 }

// BreakInstr implements arch.Arch: the one-byte bpt opcode.
func (v *Vax) BreakInstr() []byte { return []byte{OpBpt} }

// NopInstr implements arch.Arch: the one-byte nop opcode.
func (v *Vax) NopInstr() []byte { return []byte{OpNop} }

// InstrSize implements arch.Arch: instructions are fetched and stored
// byte-by-byte.
func (v *Vax) InstrSize() int { return 1 }

// PCAdvance implements arch.Arch.
func (v *Vax) PCAdvance() int64 { return 1 }

// NumRegs implements arch.Arch.
func (v *Vax) NumRegs() int { return NReg }

// NumFRegs implements arch.Arch.
func (v *Vax) NumFRegs() int { return NFrg }

// RegName implements arch.Arch.
func (v *Vax) RegName(i int) string {
	switch i {
	case AP:
		return "ap"
	case FP:
		return "fp"
	case SP:
		return "sp"
	case PCr:
		return "pc"
	}
	if i >= 0 && i < 12 {
		if i < 10 {
			return "r" + string(rune('0'+i))
		}
		return "r1" + string(rune('0'+i-10))
	}
	return "r?"
}

// SPReg implements arch.Arch.
func (v *Vax) SPReg() int { return SP }

// FPReg implements arch.Arch.
func (v *Vax) FPReg() int { return FP }

// RetReg implements arch.Arch.
func (v *Vax) RetReg() int { return R0 }

// LinkReg implements arch.Arch: jsb pushes the return address.
func (v *Vax) LinkReg() int { return -1 }

// Context implements arch.Arch: r0-r15 (the saved pc occupies the r15
// slot — a piece of machine-dependent dirt the VAX frame code knows),
// then the psl (flag), then the float registers.
func (v *Vax) Context() arch.ContextLayout {
	l := arch.ContextLayout{
		Size:     4*NReg + 4 + 8*NFrg,
		PCOff:    4 * PCr,
		FlagOff:  4 * NReg,
		RegOffs:  make([]int, NReg),
		FRegOffs: make([]int, NFrg),
		FRegSize: 8,
	}
	for i := range l.RegOffs {
		l.RegOffs[i] = 4 * i
	}
	for i := range l.FRegOffs {
		l.FRegOffs[i] = 4*NReg + 4 + 8*i
	}
	return l
}

// SyscallArg implements arch.Arch.
func (v *Vax) SyscallArg(p arch.Proc, i int) uint32 { return p.Reg(R1 + i) }

// SyscallRet implements arch.Arch.
func (v *Vax) SyscallRet(p arch.Proc, u uint32) { p.SetReg(R0, u) }
