package vax

import (
	"testing"

	"ldb/internal/arch"
	"ldb/internal/machine"
)

func run(t *testing.T, build func(a *Asm)) *machine.Process {
	t.Helper()
	a := NewAsm()
	build(a)
	code, relocs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(relocs) != 0 {
		t.Fatalf("unexpected relocs: %v", relocs)
	}
	p := machine.New(Target, code, make([]byte, 4096), machine.TextBase)
	f := p.Run()
	if f.Kind != arch.FaultHalt {
		t.Fatalf("run ended with %v, want halt; pc=%#x", f, p.PC())
	}
	return p
}

func exitSeq(a *Asm) {
	a.MoveImm(R1, 0)
	a.Chmk(arch.SysExit)
}

func TestArithmetic(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(2, 21)
		a.MoveImm(3, 2)
		a.Op(OpMull3, Rn(2), Rn(3), Rn(4))     // 42
		a.Op(OpAddl3, Rn(4), ImmL(5), Rn(5))   // 47
		a.Op(OpSubl3, ImmL(2), Rn(4), Rn(6))   // 42-2 = 40
		a.Op(OpDivl3, ImmL(5), Rn(4), Rn(7))   // 42/5 = 8
		a.Op(OpBisl3, ImmL(1), Rn(4), Rn(8))   // 43
		a.Op(OpXorl3, ImmL(0xf), Rn(4), Rn(9)) // 37
		// and via mcoml+bicl3: r10 = 42 & 15 = 10
		a.Op(OpMcoml, ImmL(0xf), Rn(1))
		a.Op(OpBicl3, Rn(1), Rn(4), Rn(10))
		a.Op(OpAshl, ImmL(3), Rn(3), Rn(11))          // 2<<3 = 16
		a.Op(OpAshl, ImmL(^uint32(0)), Rn(11), Rn(6)) // wait: count -1
		exitSeq(a)
	})
	want := map[int]uint32{4: 42, 5: 47, 7: 8, 8: 43, 9: 37, 10: 10, 11: 16, 6: 8}
	for r, w := range want {
		if got := p.Reg(r); got != w {
			t.Errorf("r%d = %d, want %d", r, got, w)
		}
	}
}

func TestMemoryBranchesCalls(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(2, int32(machine.DataBase))
		a.Op(OpMovl, ImmL(0xfffffffe), Disp(2, 0))
		a.Op(OpMovl, Disp(2, 0), Rn(3))
		a.Op(OpCvtbl, Disp(2, 0), Rn(4))  // little-endian: byte 0 = 0xfe → -2
		a.Op(OpMovzbl, Disp(2, 0), Rn(5)) // 0xfe
		a.Op(OpCvtwl, Disp(2, 0), Rn(6))  // -2
		a.Op(OpMovzwl, Disp(2, 2), Rn(7)) // 0xffff
		// Loop: sum 1..5 in r8.
		a.MoveImm(8, 0)
		a.MoveImm(9, 1)
		a.Label("loop")
		a.Op(OpAddl2, Rn(9), Rn(8))
		a.Op(OpAddl2, ImmL(1), Rn(9))
		a.Op(OpCmpl, Rn(9), ImmL(6))
		a.Branch(OpBneq, "loop")
		exitSeq(a)
	})
	if got := p.Reg(3); got != 0xfffffffe {
		t.Errorf("movl load = %#x", got)
	}
	if got := int32(p.Reg(4)); got != -2 {
		t.Errorf("cvtbl = %d", got)
	}
	if got := p.Reg(5); got != 0xfe {
		t.Errorf("movzbl = %#x", got)
	}
	if got := int32(p.Reg(6)); got != -2 {
		t.Errorf("cvtwl = %d", got)
	}
	if got := p.Reg(7); got != 0xffff {
		t.Errorf("movzwl = %#x", got)
	}
	if got := p.Reg(8); got != 15 {
		t.Errorf("loop sum = %d", got)
	}
}

func TestJsbRsbFrames(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(2, int32(machine.TextBase)+100)
		a.Op(OpJsb, Deferred(2))
		a.Op(OpMovl, Rn(R0), Rn(11))
		exitSeq(a)
		for a.Off() < 100 {
			a.Nop()
		}
		// callee: classic pushl fp; movl sp,fp; subl2 #frame,sp
		a.Op(OpPushl, Rn(FP))
		a.Op(OpMovl, Rn(SP), Rn(FP))
		a.Op(OpSubl2, ImmL(16), Rn(SP))
		a.Op(OpMovl, ImmL(21), Disp(FP, -4))
		a.Op(OpAddl3, Disp(FP, -4), Disp(FP, -4), Rn(R0))
		a.Op(OpMovl, Rn(FP), Rn(SP))
		a.Op(OpMovl, Pop(), Rn(FP))
		a.Rsb()
	})
	if got := p.Reg(11); got != 42 {
		t.Errorf("frame call = %d, want 42", got)
	}
}

func TestFloat(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.Op(OpCvtld, ImmL(9), Fn(0))
		a.Op(OpCvtld, ImmL(2), Fn(1))
		a.Op(OpDivd3, Fn(1), Fn(0), Fn(2)) // f2 = f0/f1 = 4.5
		a.Op(OpMuld3, Fn(1), Fn(2), Fn(3)) // 9.0
		a.Op(OpCvtdl, Fn(3), Rn(6))
		// doubles through memory, little-endian
		a.MoveImm(2, int32(machine.DataBase))
		a.Op(OpMovd, Fn(2), Disp(2, 0))
		a.Op(OpMovd, Disp(2, 0), Fn(4))
		a.Op(OpCmpd, Fn(4), Fn(2))
		a.Branch(OpBeql, "eq")
		a.MoveImm(7, 0)
		a.Branch(OpBrw, "end")
		a.Label("eq")
		a.MoveImm(7, 1)
		a.Label("end")
		a.Op(OpMnegd, Fn(3), Fn(5))
		a.Op(OpCvtdl, Fn(5), Rn(8))
		exitSeq(a)
	})
	if p.Reg(6) != 9 {
		t.Errorf("float arith = %d, want 9", p.Reg(6))
	}
	if p.Reg(7) != 1 {
		t.Error("double memory round trip failed")
	}
	if got := int32(p.Reg(8)); got != -9 {
		t.Errorf("mnegd = %d", got)
	}
}

func TestOneBytePatterns(t *testing.T) {
	v := Target
	if v.InstrSize() != 1 || v.PCAdvance() != 1 {
		t.Fatal("the VAX fetches instructions as bytes")
	}
	if len(v.BreakInstr()) != 1 || v.BreakInstr()[0] != OpBpt {
		t.Fatal("bpt pattern")
	}
	prog := []byte{OpNop, OpBpt}
	p := machine.New(v, prog, nil, machine.TextBase)
	f := p.Run()
	if f.Sig != arch.SigTrap || f.PC != machine.TextBase+1 {
		t.Errorf("nop+bpt: %v", f)
	}
}

func TestPauseAndFaults(t *testing.T) {
	a := NewAsm()
	a.Chmk(arch.TrapPause)
	code, _, _ := a.Finish()
	p := machine.New(Target, code, nil, machine.TextBase)
	if f := p.Run(); f.Sig != arch.SigTrap || f.Code != arch.TrapPause {
		t.Errorf("pause: %v", f)
	}
	a = NewAsm()
	a.Op(OpDivl3, ImmL(0), ImmL(5), Rn(2))
	code, _, _ = a.Finish()
	p = machine.New(Target, code, nil, machine.TextBase)
	if f := p.Run(); f.Sig != arch.SigFPE {
		t.Errorf("div0: %v", f)
	}
	a = NewAsm()
	a.Op(OpMovl, Disp(0, 16), Rn(2)) // r0 = 0 → wild
	code, _, _ = a.Finish()
	p = machine.New(Target, code, nil, machine.TextBase)
	if f := p.Run(); f.Sig != arch.SigSegv {
		t.Errorf("wild: %v", f)
	}
	p = machine.New(Target, []byte{0xff}, nil, machine.TextBase)
	if f := p.Run(); f.Sig != arch.SigIll {
		t.Errorf("illegal: %v", f)
	}
}

func TestContextPCInR15Slot(t *testing.T) {
	l := Target.Context()
	if l.PCOff != l.RegOffs[PCr] {
		t.Error("the saved pc must occupy the r15 slot")
	}
	if Target.RegName(FP) != "fp" || Target.RegName(SP) != "sp" {
		t.Error("register names")
	}
}

func TestStdout(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(R1, 7)
		a.Chmk(arch.SysPutInt)
		a.MoveImm(R1, '!')
		a.Chmk(arch.SysPutChar)
		exitSeq(a)
	})
	if p.Stdout.String() != "7!" {
		t.Errorf("stdout = %q", p.Stdout.String())
	}
}

func TestFloatOpBadOperand(t *testing.T) {
	// A float instruction with a general-register operand (not a float
	// register or memory) is an illegal encoding.
	a := NewAsm()
	a.Op(OpMovd, Rn(R1), Fn(0))
	code, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p := machine.New(Target, code, nil, machine.TextBase)
	if f := p.Run(); f.Sig != arch.SigIll {
		t.Fatalf("movd r1, f0: %v", f)
	}
}
