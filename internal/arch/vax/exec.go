package vax

import (
	"math"

	"ldb/internal/arch"
)

func sigill(pc uint32) *arch.Fault {
	return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigIll, PC: pc}
}

// opnd is a decoded operand.
type opnd struct {
	kind int // 0 reg, 1 freg, 2 imm, 3 mem
	reg  int
	imm  uint32
	addr uint32
}

const (
	oReg = iota
	oFReg
	oImm
	oMem
)

type cursor struct {
	p   arch.Proc
	pc  uint32
	at  uint32
	err *arch.Fault
}

func (c *cursor) byteAt() byte {
	if c.err != nil {
		return 0
	}
	v, f := c.p.Load(c.at, 1)
	if f != nil {
		c.err = f
		return 0
	}
	c.at++
	return byte(v)
}

func (c *cursor) word16() uint32 {
	if c.err != nil {
		return 0
	}
	v, f := c.p.Load(c.at, 2)
	if f != nil {
		c.err = f
		return 0
	}
	c.at += 2
	return v
}

func (c *cursor) word32() uint32 {
	if c.err != nil {
		return 0
	}
	v, f := c.p.Load(c.at, 4)
	if f != nil {
		c.err = f
		return 0
	}
	c.at += 4
	return v
}

func (c *cursor) operand() opnd {
	spec := c.byteAt()
	if c.err != nil {
		return opnd{}
	}
	mode := int(spec >> 4)
	reg := int(spec & 15)
	switch mode {
	case ModeReg:
		return opnd{kind: oReg, reg: reg}
	case ModeFReg:
		return opnd{kind: oFReg, reg: reg & 7}
	case ModeDefer:
		return opnd{kind: oMem, addr: c.p.Reg(reg)}
	case ModeAuto:
		if reg == PCr { // immediate long
			return opnd{kind: oImm, imm: c.word32()}
		}
		addr := c.p.Reg(reg)
		c.p.SetReg(reg, addr+4)
		return opnd{kind: oMem, addr: addr}
	case ModeAbs:
		return opnd{kind: oMem, addr: c.word32()}
	case ModeBDisp:
		d := int32(int8(c.byteAt()))
		return opnd{kind: oMem, addr: c.p.Reg(reg) + uint32(d)}
	case ModeWDisp:
		d := int32(int16(c.word16()))
		return opnd{kind: oMem, addr: c.p.Reg(reg) + uint32(d)}
	case ModeLDisp:
		d := c.word32()
		return opnd{kind: oMem, addr: c.p.Reg(reg) + d}
	default:
		if c.err == nil {
			c.err = sigill(c.pc)
		}
		return opnd{}
	}
}

func (c *cursor) read(o opnd, size int) uint32 {
	if c.err != nil {
		return 0
	}
	switch o.kind {
	case oReg:
		v := c.p.Reg(o.reg)
		switch size {
		case 1:
			return v & 0xff
		case 2:
			return v & 0xffff
		}
		return v
	case oImm:
		return o.imm
	case oMem:
		v, f := c.p.Load(o.addr, size)
		if f != nil {
			c.err = f
			return 0
		}
		return v
	default:
		c.err = sigill(c.pc)
		return 0
	}
}

func (c *cursor) write(o opnd, size int, v uint32) {
	if c.err != nil {
		return
	}
	switch o.kind {
	case oReg:
		old := c.p.Reg(o.reg)
		switch size {
		case 1:
			v = old&^0xff | v&0xff
		case 2:
			v = old&^0xffff | v&0xffff
		}
		c.p.SetReg(o.reg, v)
	case oMem:
		if f := c.p.Store(o.addr, size, v); f != nil {
			c.err = f
		}
	default:
		c.err = sigill(c.pc)
	}
}

func (c *cursor) readF(o opnd, size int) float64 {
	if c.err != nil {
		return 0
	}
	switch o.kind {
	case oFReg:
		return c.p.FReg(o.reg)
	case oMem:
		v, f := c.p.LoadFloat(o.addr, size)
		if f != nil {
			c.err = f
			return 0
		}
		return v
	default:
		c.err = sigill(c.pc)
		return 0
	}
}

func (c *cursor) writeF(o opnd, size int, v float64) {
	if c.err != nil {
		return
	}
	switch o.kind {
	case oFReg:
		if size == 4 {
			v = float64(float32(v))
		}
		c.p.SetFReg(o.reg, v)
	case oMem:
		if f := c.p.StoreFloat(o.addr, size, v); f != nil {
			c.err = f
		}
	default:
		c.err = sigill(c.pc)
	}
}

func compareFlags(a, b uint32) uint32 {
	var f uint32
	if a == b {
		f |= FlagZ
	}
	if int32(a) < int32(b) {
		f |= FlagN
	}
	if a < b {
		f |= FlagC
	}
	return f
}

// Step implements arch.Arch.
func (v *Vax) Step(p arch.Proc) *arch.Fault {
	pc := p.PC()
	c := &cursor{p: p, pc: pc, at: pc}
	opc := c.byteAt()
	if c.err != nil {
		return c.err
	}

	branch16 := func(taken bool) {
		d := int32(int16(c.word16()))
		if c.err == nil && taken {
			c.at += uint32(d)
		}
	}

	flag := p.Flag()
	z := flag&FlagZ != 0
	n := flag&FlagN != 0
	cu := flag&FlagC != 0

	switch opc {
	case OpNop:
	case OpHalt:
		return &arch.Fault{Kind: arch.FaultHalt, PC: pc}
	case OpBpt:
		return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: arch.TrapBreakpoint, PC: pc}
	case OpRsb:
		c.at = c.pop()
	case OpBrw:
		branch16(true)
	case OpBneq:
		branch16(!z)
	case OpBeql:
		branch16(z)
	case OpBgtr:
		branch16(!z && !n)
	case OpBleq:
		branch16(z || n)
	case OpBgeq:
		branch16(!n)
	case OpBlss:
		branch16(n)
	case OpBgtru:
		branch16(!cu && !z)
	case OpBlequ:
		branch16(cu || z)
	case OpBgequ:
		branch16(!cu)
	case OpBlssu:
		branch16(cu)
	case OpJsb:
		o := c.operand()
		if c.err != nil {
			return c.err
		}
		target := o.addr
		if o.kind == oReg {
			target = p.Reg(o.reg)
		}
		c.push(c.at)
		c.at = target
	case OpJmp:
		o := c.operand()
		if c.err != nil {
			return c.err
		}
		if o.kind == oReg {
			c.at = p.Reg(o.reg)
		} else {
			c.at = o.addr
		}
	case OpChmk:
		o := c.operand()
		num := c.read(o, 4)
		if c.err != nil {
			return c.err
		}
		if num == arch.TrapPause {
			return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: arch.TrapPause, PC: pc, Len: c.at - pc}
		}
		p.SetPC(c.at)
		return &arch.Fault{Kind: arch.FaultSyscall, Code: int(num), PC: pc}
	case OpPushl:
		o := c.operand()
		c.push(c.read(o, 4))
	case OpMovl, OpMovb, OpMovw:
		size := 4
		if opc == OpMovb {
			size = 1
		} else if opc == OpMovw {
			size = 2
		}
		src := c.operand()
		val := c.read(src, size)
		dst := c.operand()
		c.write(dst, size, val)
	case OpMovzbl:
		src := c.operand()
		val := c.read(src, 1)
		dst := c.operand()
		c.write(dst, 4, val&0xff)
	case OpMovzwl:
		src := c.operand()
		val := c.read(src, 2)
		dst := c.operand()
		c.write(dst, 4, val&0xffff)
	case OpCvtbl:
		src := c.operand()
		val := c.read(src, 1)
		dst := c.operand()
		c.write(dst, 4, uint32(int32(int8(val))))
	case OpCvtwl:
		src := c.operand()
		val := c.read(src, 2)
		dst := c.operand()
		c.write(dst, 4, uint32(int32(int16(val))))
	case OpTstl:
		o := c.operand()
		val := c.read(o, 4)
		p.SetFlag(compareFlags(val, 0))
	case OpCmpl:
		a := c.read(c.operand(), 4)
		b := c.read(c.operand(), 4)
		p.SetFlag(compareFlags(a, b))
	case OpAddl2, OpSubl2:
		src := c.operand()
		sv := c.read(src, 4)
		dst := c.operand()
		dv := c.read(dst, 4)
		if opc == OpAddl2 {
			c.write(dst, 4, dv+sv)
		} else {
			c.write(dst, 4, dv-sv)
		}
	case OpAddl3, OpSubl3, OpMull3, OpDivl3, OpBisl3, OpBicl3, OpXorl3:
		a := c.read(c.operand(), 4)
		b := c.read(c.operand(), 4)
		dst := c.operand()
		var r uint32
		switch opc {
		case OpAddl3:
			r = b + a
		case OpSubl3:
			r = b - a // subl3 src1, src2, dst: dst = src2 - src1
		case OpMull3:
			r = uint32(int32(a) * int32(b))
		case OpDivl3:
			if a == 0 {
				return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
			}
			r = uint32(int32(b) / int32(a)) // dst = src2 / src1
		case OpBisl3:
			r = a | b
		case OpBicl3:
			r = b &^ a
		case OpXorl3:
			r = a ^ b
		}
		c.write(dst, 4, r)
	case OpMcoml:
		src := c.operand()
		val := c.read(src, 4)
		dst := c.operand()
		c.write(dst, 4, ^val)
	case OpAshl, OpLsrl:
		cnt := int32(c.read(c.operand(), 4))
		src := c.read(c.operand(), 4)
		dst := c.operand()
		var r uint32
		if opc == OpAshl {
			if cnt >= 0 {
				r = src << (uint32(cnt) & 31)
			} else {
				r = uint32(int32(src) >> (uint32(-cnt) & 31))
			}
		} else {
			r = src >> (uint32(cnt) & 31)
		}
		c.write(dst, 4, r)
	case OpMovd, OpMovf:
		size := 8
		if opc == OpMovf {
			size = 4
		}
		src := c.operand()
		val := c.readF(src, size)
		dst := c.operand()
		c.writeF(dst, size, val)
	case OpAddd3, OpSubd3, OpMuld3, OpDivd3:
		a := c.readF(c.operand(), 8)
		b := c.readF(c.operand(), 8)
		dst := c.operand()
		var r float64
		switch opc {
		case OpAddd3:
			r = b + a
		case OpSubd3:
			r = b - a
		case OpMuld3:
			r = b * a
		case OpDivd3:
			r = b / a
		}
		c.writeF(dst, 8, r)
	case OpMnegd:
		src := c.operand()
		val := c.readF(src, 8)
		dst := c.operand()
		c.writeF(dst, 8, -val)
	case OpCmpd:
		a := c.readF(c.operand(), 8)
		b := c.readF(c.operand(), 8)
		var f uint32
		if a == b {
			f |= FlagZ
		}
		if a < b {
			f |= FlagN | FlagC
		}
		p.SetFlag(f)
	case OpCvtld:
		src := c.operand()
		val := c.read(src, 4)
		dst := c.operand()
		c.writeF(dst, 8, float64(int32(val)))
	case OpCvtdl:
		src := c.operand()
		val := c.readF(src, 8)
		dst := c.operand()
		c.write(dst, 4, uint32(int32(math.Trunc(val))))
	default:
		return sigill(pc)
	}
	if c.err != nil {
		return c.err
	}
	p.SetPC(c.at)
	return nil
}
