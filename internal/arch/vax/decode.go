package vax

import (
	"math"

	"ldb/internal/arch"
)

// copnd is a compiled operand specifier: the addressing-mode dispatch
// Step pays per execution is resolved once at decode time. Register,
// float-register, immediate, and absolute operands are fully static;
// the register-relative modes compile to a small effective-address
// closure over the register file (adr), which also carries any deferred
// register side effect — autoincrement writes back when the address is
// taken, which is the point in Step's sequencing where operand() ran.
// Evaluating an operand therefore never touches memory and never
// faults; only the read or write through it can.
type copnd struct {
	kind int    // oReg, oFReg, oImm, oMem
	reg  int    // oReg/oFReg register number
	imm  uint32 // oImm value, or the oMem absolute address when adr is nil
	adr  func(regs []uint32) uint32
}

// addr returns the operand's effective address, applying any deferred
// register side effect (autoincrement). Callers evaluate it exactly
// once per operand evaluation, and never after a fault has latched —
// matching Step, where a latched error makes operand() side-effect
// free.
func (o *copnd) addr(regs []uint32) uint32 {
	if o.adr != nil {
		return o.adr(regs)
	}
	return o.imm
}

// readOp reads size bytes through a compiled operand, with exactly
// cursor.read's semantics: registers read low bytes, immediates yield
// their value, memory may fault, and a float-register operand is the
// SIGILL Step latches.
func readOp(p arch.Proc, regs []uint32, o *copnd, size int, pc uint32) (uint32, *arch.Fault) {
	switch o.kind {
	case oReg:
		v := regs[o.reg]
		switch size {
		case 1:
			return v & 0xff, nil
		case 2:
			return v & 0xffff, nil
		}
		return v, nil
	case oImm:
		return o.imm, nil
	case oMem:
		return p.Load(o.addr(regs), size)
	default:
		return 0, sigill(pc)
	}
}

// writeOp writes size bytes through a compiled operand (cursor.write's
// semantics: register writes merge into the low bytes, writes to
// immediates or float registers are SIGILL).
func writeOp(p arch.Proc, regs []uint32, o *copnd, size int, v uint32, pc uint32) *arch.Fault {
	switch o.kind {
	case oReg:
		old := regs[o.reg]
		switch size {
		case 1:
			v = old&^0xff | v&0xff
		case 2:
			v = old&^0xffff | v&0xffff
		}
		regs[o.reg] = v
		return nil
	case oMem:
		return p.Store(o.addr(regs), size, v)
	default:
		return sigill(pc)
	}
}

// readFOp and writeFOp are the float counterparts (cursor.readF /
// cursor.writeF).
func readFOp(p arch.Proc, regs []uint32, o *copnd, size int, pc uint32) (float64, *arch.Fault) {
	switch o.kind {
	case oFReg:
		return p.FReg(o.reg), nil
	case oMem:
		return p.LoadFloat(o.addr(regs), size)
	default:
		return 0, sigill(pc)
	}
}

func writeFOp(p arch.Proc, regs []uint32, o *copnd, size int, v float64, pc uint32) *arch.Fault {
	switch o.kind {
	case oFReg:
		if size == 4 {
			v = float64(float32(v))
		}
		p.SetFReg(o.reg, v)
		return nil
	case oMem:
		return p.StoreFloat(o.addr(regs), size, v)
	default:
		return sigill(pc)
	}
}

// push and pop are Step's stack closures hoisted onto the cursor so the
// interpreter shares one definition (including leaving SP decremented
// when the push's store faults).
func (c *cursor) push(val uint32) {
	if c.err != nil {
		return
	}
	sp := c.p.Reg(SP) - 4
	c.p.SetReg(SP, sp)
	if f := c.p.Store(sp, 4, val); f != nil {
		c.err = f
	}
}

func (c *cursor) pop() uint32 {
	if c.err != nil {
		return 0
	}
	sp := c.p.Reg(SP)
	val, f := c.p.Load(sp, 4)
	if f != nil {
		c.err = f
		return 0
	}
	c.p.SetReg(SP, sp+4)
	return val
}

// dec walks the instruction bytes at decode time. ok goes false when
// the instruction runs off the segment image (Step would fault or read
// another segment there; the caller returns nil and falls back).
type dec struct {
	code []byte
	at   int
	ok   bool
}

func (d *dec) u8() uint32 {
	if d.at+1 > len(d.code) {
		d.ok = false
		return 0
	}
	v := d.code[d.at]
	d.at++
	return uint32(v)
}

func (d *dec) u16() uint32 {
	if d.at+2 > len(d.code) {
		d.ok = false
		return 0
	}
	v := uint32(d.code[d.at]) | uint32(d.code[d.at+1])<<8
	d.at += 2
	return v
}

func (d *dec) u32() uint32 {
	if d.at+4 > len(d.code) {
		d.ok = false
		return 0
	}
	v := uint32(d.code[d.at]) | uint32(d.code[d.at+1])<<8 |
		uint32(d.code[d.at+2])<<16 | uint32(d.code[d.at+3])<<24
	d.at += 4
	return v
}

// spec parses one operand specifier and compiles it to a copnd.
func (d *dec) spec() copnd {
	b := d.u8()
	mode := int(b >> 4)
	reg := int(b & 15)
	switch mode {
	case ModeReg:
		return copnd{kind: oReg, reg: reg}
	case ModeFReg:
		return copnd{kind: oFReg, reg: reg & 7}
	case ModeDefer:
		return copnd{kind: oMem, adr: func(regs []uint32) uint32 { return regs[reg] }}
	case ModeAuto:
		if reg == PCr { // immediate long
			return copnd{kind: oImm, imm: d.u32()}
		}
		return copnd{kind: oMem, adr: func(regs []uint32) uint32 {
			a := regs[reg]
			regs[reg] = a + 4
			return a
		}}
	case ModeAbs:
		return copnd{kind: oMem, imm: d.u32()}
	case ModeBDisp, ModeWDisp, ModeLDisp:
		var disp uint32
		switch mode {
		case ModeBDisp:
			disp = uint32(int32(int8(d.u8())))
		case ModeWDisp:
			disp = uint32(int32(int16(d.u16())))
		default:
			disp = d.u32()
		}
		return copnd{kind: oMem, adr: func(regs []uint32) uint32 { return regs[reg] + disp }}
	default:
		d.ok = false // Step raises SIGILL; fall back
		return copnd{}
	}
}

// Decode implements arch.Decoder. Opcode dispatch, operand-specifier
// parsing, and addressing-mode dispatch all happen once here; the
// handlers evaluate compiled operands in Step's operand order, latching
// the first fault exactly as the interpreter's cursor does: a faulting
// operand stops later operands from being evaluated (so their register
// side effects never run), while the few instructions that act after an
// error latches — tstl/cmpl/cmpd set their flags from zero values,
// divl3 checks the divisor — reproduce that ordering explicitly.
// Control-transfer instructions carry arch.InsnTerm for the superblock
// builder; everything else is guaranteed to fall through to pc+Len.
func (v *Vax) Decode(code []byte, off int, pc uint32) *arch.DecodedInsn {
	if off < 0 || off >= len(code) {
		return nil
	}
	d := &dec{code: code, at: off + 1, ok: true}
	opc := code[off]

	length := func() uint32 { return uint32(d.at - off) }
	mk := func(term arch.InsnFlags, x func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault)) *arch.DecodedInsn {
		if !d.ok {
			return nil
		}
		return &arch.DecodedInsn{Len: length(), Exec: x, Flags: term}
	}
	// branch16 predecodes a conditional branch: the flags live in bits
	// 0-2, so the condition compiles to an 8-entry truth table indexed
	// by flag&7, and both successor pcs are computed here.
	branch16 := func(cond func(z, n, cu bool) bool) *arch.DecodedInsn {
		disp := uint32(int32(int16(d.u16())))
		if !d.ok {
			return nil
		}
		target := pc + 3 + disp
		next := pc + 3
		var tbl uint32
		for fl := uint32(0); fl < 8; fl++ {
			if cond(fl&FlagZ != 0, fl&FlagN != 0, fl&FlagC != 0) {
				tbl |= 1 << fl
			}
		}
		return &arch.DecodedInsn{Len: 3, Flags: arch.InsnTerm, Exec: func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			if tbl>>(*flag&7)&1 != 0 {
				return target, nil
			}
			return next, nil
		}}
	}

	switch opc {
	case OpNop:
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			return next, nil
		})
	case OpHalt:
		return mk(arch.InsnTerm, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			return 0, &arch.Fault{Kind: arch.FaultHalt, PC: pc}
		})
	case OpBpt:
		return mk(arch.InsnTerm, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: arch.TrapBreakpoint, PC: pc}
		})
	case OpRsb:
		return mk(arch.InsnTerm, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			sp := regs[SP]
			v, f := p.Load(sp, 4)
			if f != nil {
				return 0, f // SP untouched, exactly as pop latches
			}
			regs[SP] = sp + 4
			return v, nil
		})
	case OpBrw:
		return branch16(func(z, n, cu bool) bool { return true })
	case OpBneq:
		return branch16(func(z, n, cu bool) bool { return !z })
	case OpBeql:
		return branch16(func(z, n, cu bool) bool { return z })
	case OpBgtr:
		return branch16(func(z, n, cu bool) bool { return !z && !n })
	case OpBleq:
		return branch16(func(z, n, cu bool) bool { return z || n })
	case OpBgeq:
		return branch16(func(z, n, cu bool) bool { return !n })
	case OpBlss:
		return branch16(func(z, n, cu bool) bool { return n })
	case OpBgtru:
		return branch16(func(z, n, cu bool) bool { return !cu && !z })
	case OpBlequ:
		return branch16(func(z, n, cu bool) bool { return cu || z })
	case OpBgequ:
		return branch16(func(z, n, cu bool) bool { return !cu })
	case OpBlssu:
		return branch16(func(z, n, cu bool) bool { return cu })
	case OpJsb:
		o := d.spec()
		if !d.ok {
			return nil
		}
		ln := length()
		return mk(arch.InsnTerm, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			var target uint32
			switch o.kind {
			case oReg:
				target = regs[o.reg]
			case oMem:
				target = o.addr(regs)
			}
			// A faulting push leaves SP decremented, as cursor.push does.
			sp := regs[SP] - 4
			regs[SP] = sp
			if f := p.Store(sp, 4, pc+ln); f != nil {
				return 0, f
			}
			return target, nil
		})
	case OpJmp:
		o := d.spec()
		return mk(arch.InsnTerm, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			switch o.kind {
			case oReg:
				return regs[o.reg], nil
			case oMem:
				return o.addr(regs), nil
			}
			return 0, nil // Step jumps to the zero addr an immediate carries
		})
	case OpChmk:
		o := d.spec()
		if !d.ok {
			return nil
		}
		ln := length()
		return mk(arch.InsnTerm, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			num, f := readOp(p, regs, &o, 4, pc)
			if f != nil {
				return 0, f
			}
			if num == arch.TrapPause {
				return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: arch.TrapPause, PC: pc, Len: ln}
			}
			p.SetPC(pc + ln)
			return 0, &arch.Fault{Kind: arch.FaultSyscall, Code: int(num), PC: pc}
		})
	case OpPushl:
		o := d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			v, f := readOp(p, regs, &o, 4, pc)
			if f != nil {
				return 0, f // a faulting source read leaves SP alone
			}
			sp := regs[SP] - 4
			regs[SP] = sp
			if f := p.Store(sp, 4, v); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpMovl, OpMovb, OpMovw, OpMovzbl, OpMovzwl, OpCvtbl, OpCvtwl:
		rsize, wsize := 4, 4
		ext := func(v uint32) uint32 { return v }
		switch opc {
		case OpMovb:
			rsize, wsize = 1, 1
		case OpMovw:
			rsize, wsize = 2, 2
		case OpMovzbl:
			rsize = 1
			ext = func(v uint32) uint32 { return v & 0xff }
		case OpMovzwl:
			rsize = 2
			ext = func(v uint32) uint32 { return v & 0xffff }
		case OpCvtbl:
			rsize = 1
			ext = func(v uint32) uint32 { return uint32(int32(int8(v))) }
		case OpCvtwl:
			rsize = 2
			ext = func(v uint32) uint32 { return uint32(int32(int16(v))) }
		}
		src, dst := d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			v, f := readOp(p, regs, &src, rsize, pc)
			if f != nil {
				return 0, f // dst is never evaluated after a latched error
			}
			if f := writeOp(p, regs, &dst, wsize, ext(v), pc); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpTstl:
		o := d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			// The flags are set even when the read faults (from the
			// zero value), exactly as Step sequences it.
			v, f := readOp(p, regs, &o, 4, pc)
			*flag = compareFlags(v, 0)
			if f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpCmpl:
		s1, s2 := d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			a, f := readOp(p, regs, &s1, 4, pc)
			var b uint32
			if f == nil {
				b, f = readOp(p, regs, &s2, 4, pc)
			}
			*flag = compareFlags(a, b) // set even on a fault, from zeros
			if f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpAddl2, OpSubl2:
		add := opc == OpAddl2
		src, dst := d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			sv, f := readOp(p, regs, &src, 4, pc)
			if f != nil {
				return 0, f
			}
			if !add {
				sv = -sv
			}
			// The destination is evaluated once (its autoincrement must
			// not run twice), then read and written through that address.
			switch dst.kind {
			case oReg:
				regs[dst.reg] += sv
			case oMem:
				a := dst.addr(regs)
				dv, f := p.Load(a, 4)
				if f != nil {
					return 0, f
				}
				if f := p.Store(a, 4, dv+sv); f != nil {
					return 0, f
				}
			default:
				// Step reads an immediate destination fine and latches
				// SIGILL on the write.
				return 0, sigill(pc)
			}
			return next, nil
		})
	case OpAddl3, OpSubl3, OpMull3, OpBisl3, OpBicl3, OpXorl3:
		s1, s2, s3 := d.spec(), d.spec(), d.spec()
		op := func(a, b uint32) uint32 { return b + a }
		switch opc {
		case OpSubl3:
			op = func(a, b uint32) uint32 { return b - a } // dst = src2 - src1
		case OpMull3:
			op = func(a, b uint32) uint32 { return uint32(int32(a) * int32(b)) }
		case OpBisl3:
			op = func(a, b uint32) uint32 { return a | b }
		case OpBicl3:
			op = func(a, b uint32) uint32 { return b &^ a }
		case OpXorl3:
			op = func(a, b uint32) uint32 { return a ^ b }
		}
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			a, f := readOp(p, regs, &s1, 4, pc)
			if f != nil {
				return 0, f
			}
			b, f := readOp(p, regs, &s2, 4, pc)
			if f != nil {
				return 0, f
			}
			if f := writeOp(p, regs, &s3, 4, op(a, b), pc); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpDivl3:
		s1, s2, s3 := d.spec(), d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			a, f := readOp(p, regs, &s1, 4, pc)
			var b uint32
			if f == nil {
				b, f = readOp(p, regs, &s2, 4, pc)
			}
			// The destination's side effects run before the divisor
			// check, and the divide fault wins over a latched error —
			// Step's exact ordering.
			var da uint32
			if f == nil && s3.kind == oMem {
				da = s3.addr(regs)
			}
			if a == 0 {
				return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
			}
			if f != nil {
				return 0, f
			}
			r := uint32(int32(b) / int32(a)) // dst = src2 / src1
			switch s3.kind {
			case oReg:
				regs[s3.reg] = r
			case oMem:
				if f := p.Store(da, 4, r); f != nil {
					return 0, f
				}
			default:
				return 0, sigill(pc)
			}
			return next, nil
		})
	case OpMcoml:
		src, dst := d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			v, f := readOp(p, regs, &src, 4, pc)
			if f != nil {
				return 0, f
			}
			if f := writeOp(p, regs, &dst, 4, ^v, pc); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpAshl, OpLsrl:
		ash := opc == OpAshl
		s1, s2, s3 := d.spec(), d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			cv, f := readOp(p, regs, &s1, 4, pc)
			if f != nil {
				return 0, f
			}
			src, f := readOp(p, regs, &s2, 4, pc)
			if f != nil {
				return 0, f
			}
			cnt := int32(cv)
			var r uint32
			if ash {
				if cnt >= 0 {
					r = src << (uint32(cnt) & 31)
				} else {
					r = uint32(int32(src) >> (uint32(-cnt) & 31))
				}
			} else {
				r = src >> (uint32(cnt) & 31)
			}
			if f := writeOp(p, regs, &s3, 4, r, pc); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpMovd, OpMovf:
		size := 8
		if opc == OpMovf {
			size = 4
		}
		src, dst := d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			v, f := readFOp(p, regs, &src, size, pc)
			if f != nil {
				return 0, f
			}
			if f := writeFOp(p, regs, &dst, size, v, pc); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpAddd3, OpSubd3, OpMuld3, OpDivd3:
		s1, s2, s3 := d.spec(), d.spec(), d.spec()
		op := func(a, b float64) float64 { return b + a }
		switch opc {
		case OpSubd3:
			op = func(a, b float64) float64 { return b - a }
		case OpMuld3:
			op = func(a, b float64) float64 { return b * a }
		case OpDivd3:
			op = func(a, b float64) float64 { return b / a }
		}
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			a, f := readFOp(p, regs, &s1, 8, pc)
			if f != nil {
				return 0, f
			}
			b, f := readFOp(p, regs, &s2, 8, pc)
			if f != nil {
				return 0, f
			}
			if f := writeFOp(p, regs, &s3, 8, op(a, b), pc); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpMnegd:
		src, dst := d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			v, f := readFOp(p, regs, &src, 8, pc)
			if f != nil {
				return 0, f
			}
			if f := writeFOp(p, regs, &dst, 8, -v, pc); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpCmpd:
		s1, s2 := d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			a, f := readFOp(p, regs, &s1, 8, pc)
			var b float64
			if f == nil {
				b, f = readFOp(p, regs, &s2, 8, pc)
			}
			var fl uint32
			if a == b {
				fl |= FlagZ
			}
			if a < b {
				fl |= FlagN | FlagC
			}
			*flag = fl // set even on a fault, from zeros
			if f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpCvtld:
		src, dst := d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			v, f := readOp(p, regs, &src, 4, pc)
			if f != nil {
				return 0, f
			}
			if f := writeFOp(p, regs, &dst, 8, float64(int32(v)), pc); f != nil {
				return 0, f
			}
			return next, nil
		})
	case OpCvtdl:
		src, dst := d.spec(), d.spec()
		next := pc + length()
		return mk(0, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			v, f := readFOp(p, regs, &src, 8, pc)
			if f != nil {
				return 0, f
			}
			if f := writeOp(p, regs, &dst, 4, uint32(int32(math.Trunc(v))), pc); f != nil {
				return 0, f
			}
			return next, nil
		})
	}
	return nil
}
