package vax

import (
	"math"

	"ldb/internal/arch"
)

// ospec is a predecoded operand specifier: the mode byte, register
// number, and any displacement/immediate/absolute-address bytes, parsed
// once from the instruction stream. It carries no processor state —
// autoincrement and register-relative addressing are applied when the
// spec is evaluated against a cursor, in operand order, so a decoded
// instruction has exactly the side effects and fault ordering of the
// interpreted one.
type ospec struct {
	mode int
	reg  int
	imm  uint32
}

// spec evaluates a predecoded operand specifier, performing the
// register reads and autoincrement writes operand() would have done at
// this point in the instruction.
func (c *cursor) spec(s ospec) opnd {
	switch s.mode {
	case ModeReg:
		return opnd{kind: oReg, reg: s.reg}
	case ModeFReg:
		return opnd{kind: oFReg, reg: s.reg}
	case ModeDefer:
		return opnd{kind: oMem, addr: c.p.Reg(s.reg)}
	case ModeAuto:
		if s.reg == PCr { // immediate long
			return opnd{kind: oImm, imm: s.imm}
		}
		addr := c.p.Reg(s.reg)
		c.p.SetReg(s.reg, addr+4)
		return opnd{kind: oMem, addr: addr}
	case ModeAbs:
		return opnd{kind: oMem, addr: s.imm}
	default: // ModeBDisp, ModeWDisp, ModeLDisp: displacement in imm
		return opnd{kind: oMem, addr: c.p.Reg(s.reg) + s.imm}
	}
}

// push and pop are Step's stack closures hoisted onto the cursor so the
// decoded handlers share them (including leaving SP decremented when
// the push's store faults).
func (c *cursor) push(val uint32) {
	if c.err != nil {
		return
	}
	sp := c.p.Reg(SP) - 4
	c.p.SetReg(SP, sp)
	if f := c.p.Store(sp, 4, val); f != nil {
		c.err = f
	}
}

func (c *cursor) pop() uint32 {
	if c.err != nil {
		return 0
	}
	sp := c.p.Reg(SP)
	val, f := c.p.Load(sp, 4)
	if f != nil {
		c.err = f
		return 0
	}
	c.p.SetReg(SP, sp+4)
	return val
}

// dec walks the instruction bytes at decode time. ok goes false when
// the instruction runs off the segment image (Step would fault or read
// another segment there; the caller returns nil and falls back).
type dec struct {
	code []byte
	at   int
	ok   bool
}

func (d *dec) u8() uint32 {
	if d.at+1 > len(d.code) {
		d.ok = false
		return 0
	}
	v := d.code[d.at]
	d.at++
	return uint32(v)
}

func (d *dec) u16() uint32 {
	if d.at+2 > len(d.code) {
		d.ok = false
		return 0
	}
	v := uint32(d.code[d.at]) | uint32(d.code[d.at+1])<<8
	d.at += 2
	return v
}

func (d *dec) u32() uint32 {
	if d.at+4 > len(d.code) {
		d.ok = false
		return 0
	}
	v := uint32(d.code[d.at]) | uint32(d.code[d.at+1])<<8 |
		uint32(d.code[d.at+2])<<16 | uint32(d.code[d.at+3])<<24
	d.at += 4
	return v
}

func (d *dec) spec() ospec {
	b := d.u8()
	mode := int(b >> 4)
	reg := int(b & 15)
	switch mode {
	case ModeReg, ModeDefer:
		return ospec{mode: mode, reg: reg}
	case ModeFReg:
		return ospec{mode: mode, reg: reg & 7}
	case ModeAuto:
		if reg == PCr {
			return ospec{mode: mode, reg: reg, imm: d.u32()}
		}
		return ospec{mode: mode, reg: reg}
	case ModeAbs:
		return ospec{mode: mode, imm: d.u32()}
	case ModeBDisp:
		return ospec{mode: mode, reg: reg, imm: uint32(int32(int8(d.u8())))}
	case ModeWDisp:
		return ospec{mode: mode, reg: reg, imm: uint32(int32(int16(d.u16())))}
	case ModeLDisp:
		return ospec{mode: mode, reg: reg, imm: d.u32()}
	default:
		d.ok = false // Step raises SIGILL; fall back
		return ospec{}
	}
}

// Decode implements arch.Decoder. Opcode dispatch and operand-specifier
// parsing happen once; the handlers evaluate the predecoded specs in
// operand order against a cursor whose at starts past the instruction,
// which reproduces Step's sequencing (autoincrement between operands,
// error latching, final SetPC(c.at)) exactly.
func (v *Vax) Decode(code []byte, off int, pc uint32) *arch.DecodedInsn {
	if off < 0 || off >= len(code) {
		return nil
	}
	d := &dec{code: code, at: off + 1, ok: true}
	opc := code[off]

	length := func() uint32 { return uint32(d.at - off) }
	run := func(x func(c *cursor)) *arch.DecodedInsn {
		if !d.ok {
			return nil
		}
		ln := length()
		return &arch.DecodedInsn{Len: ln, Exec: func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			c := &cursor{p: p, pc: pc, at: pc + ln}
			x(c)
			if c.err != nil {
				return 0, c.err
			}
			return c.at, nil
		}}
	}
	branch16 := func(cond func(z, n, cu bool) bool) *arch.DecodedInsn {
		disp := uint32(int32(int16(d.u16())))
		return run(func(c *cursor) {
			flag := c.p.Flag()
			if cond(flag&FlagZ != 0, flag&FlagN != 0, flag&FlagC != 0) {
				c.at += disp
			}
		})
	}

	switch opc {
	case OpNop:
		return run(func(*cursor) {})
	case OpHalt:
		if !d.ok {
			return nil
		}
		return &arch.DecodedInsn{Len: 1, Exec: func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			return 0, &arch.Fault{Kind: arch.FaultHalt, PC: pc}
		}}
	case OpBpt:
		return &arch.DecodedInsn{Len: 1, Exec: func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: arch.TrapBreakpoint, PC: pc}
		}}
	case OpRsb:
		return run(func(c *cursor) { c.at = c.pop() })
	case OpBrw:
		return branch16(func(z, n, cu bool) bool { return true })
	case OpBneq:
		return branch16(func(z, n, cu bool) bool { return !z })
	case OpBeql:
		return branch16(func(z, n, cu bool) bool { return z })
	case OpBgtr:
		return branch16(func(z, n, cu bool) bool { return !z && !n })
	case OpBleq:
		return branch16(func(z, n, cu bool) bool { return z || n })
	case OpBgeq:
		return branch16(func(z, n, cu bool) bool { return !n })
	case OpBlss:
		return branch16(func(z, n, cu bool) bool { return n })
	case OpBgtru:
		return branch16(func(z, n, cu bool) bool { return !cu && !z })
	case OpBlequ:
		return branch16(func(z, n, cu bool) bool { return cu || z })
	case OpBgequ:
		return branch16(func(z, n, cu bool) bool { return !cu })
	case OpBlssu:
		return branch16(func(z, n, cu bool) bool { return cu })
	case OpJsb:
		s := d.spec()
		return run(func(c *cursor) {
			o := c.spec(s)
			target := o.addr
			if o.kind == oReg {
				target = c.p.Reg(o.reg)
			}
			c.push(c.at)
			c.at = target
		})
	case OpJmp:
		s := d.spec()
		return run(func(c *cursor) {
			o := c.spec(s)
			if o.kind == oReg {
				c.at = c.p.Reg(o.reg)
			} else {
				c.at = o.addr
			}
		})
	case OpChmk:
		s := d.spec()
		if !d.ok {
			return nil
		}
		ln := length()
		return &arch.DecodedInsn{Len: ln, Exec: func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			c := &cursor{p: p, pc: pc, at: pc + ln}
			num := c.read(c.spec(s), 4)
			if c.err != nil {
				return 0, c.err
			}
			if num == arch.TrapPause {
				return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: arch.TrapPause, PC: pc, Len: ln}
			}
			p.SetPC(c.at)
			return 0, &arch.Fault{Kind: arch.FaultSyscall, Code: int(num), PC: pc}
		}}
	case OpPushl:
		s := d.spec()
		return run(func(c *cursor) { c.push(c.read(c.spec(s), 4)) })
	case OpMovl, OpMovb, OpMovw:
		size := 4
		if opc == OpMovb {
			size = 1
		} else if opc == OpMovw {
			size = 2
		}
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.read(c.spec(src), size)
			c.write(c.spec(dst), size, val)
		})
	case OpMovzbl:
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.read(c.spec(src), 1)
			c.write(c.spec(dst), 4, val&0xff)
		})
	case OpMovzwl:
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.read(c.spec(src), 2)
			c.write(c.spec(dst), 4, val&0xffff)
		})
	case OpCvtbl:
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.read(c.spec(src), 1)
			c.write(c.spec(dst), 4, uint32(int32(int8(val))))
		})
	case OpCvtwl:
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.read(c.spec(src), 2)
			c.write(c.spec(dst), 4, uint32(int32(int16(val))))
		})
	case OpTstl:
		s := d.spec()
		return run(func(c *cursor) {
			val := c.read(c.spec(s), 4)
			c.p.SetFlag(compareFlags(val, 0))
		})
	case OpCmpl:
		s1, s2 := d.spec(), d.spec()
		return run(func(c *cursor) {
			a := c.read(c.spec(s1), 4)
			b := c.read(c.spec(s2), 4)
			c.p.SetFlag(compareFlags(a, b))
		})
	case OpAddl2, OpSubl2:
		add := opc == OpAddl2
		src, dsts := d.spec(), d.spec()
		return run(func(c *cursor) {
			sv := c.read(c.spec(src), 4)
			dst := c.spec(dsts)
			dv := c.read(dst, 4)
			if add {
				c.write(dst, 4, dv+sv)
			} else {
				c.write(dst, 4, dv-sv)
			}
		})
	case OpAddl3, OpSubl3, OpMull3, OpBisl3, OpBicl3, OpXorl3:
		s1, s2, s3 := d.spec(), d.spec(), d.spec()
		op := func(a, b uint32) uint32 { return b + a }
		switch opc {
		case OpSubl3:
			op = func(a, b uint32) uint32 { return b - a } // dst = src2 - src1
		case OpMull3:
			op = func(a, b uint32) uint32 { return uint32(int32(a) * int32(b)) }
		case OpBisl3:
			op = func(a, b uint32) uint32 { return a | b }
		case OpBicl3:
			op = func(a, b uint32) uint32 { return b &^ a }
		case OpXorl3:
			op = func(a, b uint32) uint32 { return a ^ b }
		}
		return run(func(c *cursor) {
			a := c.read(c.spec(s1), 4)
			b := c.read(c.spec(s2), 4)
			dst := c.spec(s3)
			c.write(dst, 4, op(a, b))
		})
	case OpDivl3:
		s1, s2, s3 := d.spec(), d.spec(), d.spec()
		if !d.ok {
			return nil
		}
		ln := length()
		return &arch.DecodedInsn{Len: ln, Exec: func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			c := &cursor{p: p, pc: pc, at: pc + ln}
			a := c.read(c.spec(s1), 4)
			b := c.read(c.spec(s2), 4)
			dst := c.spec(s3)
			if a == 0 { // Step checks the divisor before latched errors
				return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
			}
			c.write(dst, 4, uint32(int32(b)/int32(a))) // dst = src2 / src1
			if c.err != nil {
				return 0, c.err
			}
			return c.at, nil
		}}
	case OpMcoml:
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.read(c.spec(src), 4)
			c.write(c.spec(dst), 4, ^val)
		})
	case OpAshl, OpLsrl:
		ash := opc == OpAshl
		s1, s2, s3 := d.spec(), d.spec(), d.spec()
		return run(func(c *cursor) {
			cnt := int32(c.read(c.spec(s1), 4))
			src := c.read(c.spec(s2), 4)
			dst := c.spec(s3)
			var r uint32
			if ash {
				if cnt >= 0 {
					r = src << (uint32(cnt) & 31)
				} else {
					r = uint32(int32(src) >> (uint32(-cnt) & 31))
				}
			} else {
				r = src >> (uint32(cnt) & 31)
			}
			c.write(dst, 4, r)
		})
	case OpMovd, OpMovf:
		size := 8
		if opc == OpMovf {
			size = 4
		}
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.readF(c.spec(src), size)
			c.writeF(c.spec(dst), size, val)
		})
	case OpAddd3, OpSubd3, OpMuld3, OpDivd3:
		s1, s2, s3 := d.spec(), d.spec(), d.spec()
		op := func(a, b float64) float64 { return b + a }
		switch opc {
		case OpSubd3:
			op = func(a, b float64) float64 { return b - a }
		case OpMuld3:
			op = func(a, b float64) float64 { return b * a }
		case OpDivd3:
			op = func(a, b float64) float64 { return b / a }
		}
		return run(func(c *cursor) {
			a := c.readF(c.spec(s1), 8)
			b := c.readF(c.spec(s2), 8)
			dst := c.spec(s3)
			c.writeF(dst, 8, op(a, b))
		})
	case OpMnegd:
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.readF(c.spec(src), 8)
			c.writeF(c.spec(dst), 8, -val)
		})
	case OpCmpd:
		s1, s2 := d.spec(), d.spec()
		return run(func(c *cursor) {
			a := c.readF(c.spec(s1), 8)
			b := c.readF(c.spec(s2), 8)
			var f uint32
			if a == b {
				f |= FlagZ
			}
			if a < b {
				f |= FlagN | FlagC
			}
			c.p.SetFlag(f)
		})
	case OpCvtld:
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.read(c.spec(src), 4)
			c.writeF(c.spec(dst), 8, float64(int32(val)))
		})
	case OpCvtdl:
		src, dst := d.spec(), d.spec()
		return run(func(c *cursor) {
			val := c.readF(c.spec(src), 8)
			c.write(c.spec(dst), 4, uint32(int32(math.Trunc(val))))
		})
	}
	return nil
}
