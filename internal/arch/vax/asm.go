package vax

import (
	"encoding/binary"
	"fmt"

	"ldb/internal/arch"
)

// Opcodes (real VAX values where iconic).
const (
	OpHalt  = 0x00
	OpNop   = 0x01
	OpBpt   = 0x03
	OpRsb   = 0x05
	OpBrw   = 0x31 // word displacement
	OpBneq  = 0x12
	OpBeql  = 0x13
	OpBgtr  = 0x14
	OpBleq  = 0x15
	OpJsb   = 0x16
	OpJmp   = 0x17
	OpBgeq  = 0x18
	OpBlss  = 0x19
	OpBgtru = 0x1a
	OpBlequ = 0x1b
	OpBgequ = 0x1e
	OpBlssu = 0x1f

	OpCvtwl  = 0x32
	OpMovzwl = 0x3c
	OpAshl   = 0x78 // ashl count, src, dst (negative count = arithmetic right)
	OpLsrl   = 0x79 // custom: logical shift right count, src, dst
	OpMovb   = 0x90
	OpCvtbl  = 0x98
	OpMovzbl = 0x9a
	OpMovw   = 0xb0
	OpChmk   = 0xbc // one operand: the syscall number
	OpAddl2  = 0xc0
	OpAddl3  = 0xc1
	OpSubl2  = 0xc2
	OpSubl3  = 0xc3
	OpMull3  = 0xc5
	OpDivl3  = 0xc7
	OpBisl3  = 0xc9 // or
	OpBicl3  = 0xcb // dst = src2 AND NOT src1
	OpXorl3  = 0xcd
	OpMcoml  = 0xd2 // complement
	OpMovl   = 0xd0
	OpCmpl   = 0xd1
	OpTstl   = 0xd5
	OpPushl  = 0xdd

	// Floating (IEEE here; see the package comment).
	OpMovf  = 0x50 // single-precision memory ↔ float register
	OpAddd3 = 0x61
	OpSubd3 = 0x63
	OpMuld3 = 0x65
	OpDivd3 = 0x67
	OpMovd  = 0x70
	OpCmpd  = 0x71
	OpCvtdl = 0x6a // double → int (truncate)
	OpCvtld = 0x6e // int → double
	OpMnegd = 0x72
)

// Operand specifier modes.
const (
	ModeFReg  = 0x4 // custom: float register
	ModeReg   = 0x5 // rN
	ModeDefer = 0x6 // (rN)
	ModeAuto  = 0x8 // (rN)+; 0x8F = immediate long
	ModeAbs   = 0x9 // 0x9F = absolute long address
	ModeBDisp = 0xa // byte displacement (rN)
	ModeWDisp = 0xc // word displacement (rN)
	ModeLDisp = 0xe // long displacement (rN)
)

// Flag bits (psl condition codes, simplified).
const (
	FlagZ = 1 << 0
	FlagN = 1 << 1
	FlagC = 1 << 2
)

// Operand is an assembly-time operand.
type Operand struct {
	Mode int
	Reg  int
	Disp int32
	Imm  uint32
	Sym  string // with ModeAbs or immediate relocation
	Add  int64
}

// Rn names a register operand.
func Rn(r int) Operand { return Operand{Mode: ModeReg, Reg: r} }

// Fn names a float-register operand.
func Fn(r int) Operand { return Operand{Mode: ModeFReg, Reg: r} }

// Deferred names (rN).
func Deferred(r int) Operand { return Operand{Mode: ModeDefer, Reg: r} }

// ImmL names an immediate long.
func ImmL(v uint32) Operand { return Operand{Mode: ModeAuto, Reg: PCr, Imm: v} }

// ImmSym names an immediate long holding a symbol address.
func ImmSym(sym string, add int64) Operand {
	return Operand{Mode: ModeAuto, Reg: PCr, Sym: sym, Add: add}
}

// AbsSym names an absolute-address operand (for jsb/jmp).
func AbsSym(sym string, add int64) Operand {
	return Operand{Mode: ModeAbs, Reg: PCr, Sym: sym, Add: add}
}

// Disp names disp(rN) with a word displacement.
func Disp(r int, d int32) Operand { return Operand{Mode: ModeWDisp, Reg: r, Disp: d} }

// Pop names (sp)+.
func Pop() Operand { return Operand{Mode: ModeAuto, Reg: SP} }

type fixup struct {
	off   int
	label string
}

// Asm assembles VAX instructions.
type Asm struct {
	n      int // instructions emitted
	buf    []byte
	relocs []arch.Reloc
	labels map[string]int
	fixes  []fixup
}

// NewAsm returns a fresh assembler.
func NewAsm() *Asm { return &Asm{labels: make(map[string]int)} }

// Off returns the current offset.
func (a *Asm) Off() int { return len(a.buf) }

// Label binds name to the current offset.
func (a *Asm) Label(name string) { a.labels[name] = len(a.buf) }

func (a *Asm) b(v byte)     { a.buf = append(a.buf, v) }
func (a *Asm) w16(v uint16) { a.buf = append(a.buf, byte(v), byte(v>>8)) }
func (a *Asm) w32(v uint32) {
	a.buf = append(a.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (a *Asm) operand(o Operand) {
	a.b(byte(o.Mode<<4 | o.Reg&15))
	switch o.Mode {
	case ModeReg, ModeFReg, ModeDefer:
	case ModeAuto:
		if o.Reg == PCr { // immediate
			if o.Sym != "" {
				a.relocs = append(a.relocs, arch.Reloc{Off: len(a.buf), Kind: arch.RelAbs32, Sym: o.Sym, Add: o.Add})
			}
			a.w32(o.Imm)
		}
	case ModeAbs:
		if o.Sym != "" {
			a.relocs = append(a.relocs, arch.Reloc{Off: len(a.buf), Kind: arch.RelAbs32, Sym: o.Sym, Add: o.Add})
		}
		a.w32(o.Imm)
	case ModeBDisp:
		a.b(byte(int8(o.Disp)))
	case ModeWDisp:
		a.w16(uint16(int16(o.Disp)))
	case ModeLDisp:
		a.w32(uint32(o.Disp))
	}
}

// Op emits an opcode with its operands.
func (a *Asm) Op(opcode byte, operands ...Operand) {
	a.n++
	a.b(opcode)
	for _, o := range operands {
		a.operand(o)
	}
}

// Branch emits a conditional (or brw) branch to a local label with a
// word displacement.
func (a *Asm) Branch(opcode byte, label string) {
	a.n++
	a.b(opcode)
	a.fixes = append(a.fixes, fixup{off: len(a.buf), label: label})
	a.w16(0)
}

// Nop emits the one-byte nop.
func (a *Asm) Nop() {
	a.n++
	a.b(OpNop)
}

// Bpt emits the one-byte breakpoint.
func (a *Asm) Bpt() {
	a.n++
	a.b(OpBpt)
}

// Chmk emits a system call with an immediate number.
func (a *Asm) Chmk(num uint32) { a.Op(OpChmk, ImmL(num)) }

// Jsb emits a call to a global symbol.
func (a *Asm) Jsb(sym string) { a.Op(OpJsb, AbsSym(sym, 0)) }

// Rsb emits the return.
func (a *Asm) Rsb() {
	a.n++
	a.b(OpRsb)
}

// MoveImm emits movl #imm, rd.
func (a *Asm) MoveImm(rd int, v int32) { a.Op(OpMovl, ImmL(uint32(v)), Rn(rd)) }

// Finish resolves branches and returns code plus relocations.
func (a *Asm) Finish() ([]byte, []arch.Reloc, error) {
	for _, f := range a.fixes {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, nil, fmt.Errorf("vax: undefined label %q", f.label)
		}
		disp := target - (f.off + 2)
		if disp < -32768 || disp > 32767 {
			return nil, nil, fmt.Errorf("vax: branch to %q out of range", f.label)
		}
		binary.LittleEndian.PutUint16(a.buf[f.off:], uint16(int16(disp)))
	}
	return a.buf, a.relocs, nil
}

// Labels exposes bound labels.
func (a *Asm) Labels() map[string]int { return a.labels }

// Instrs reports how many instructions have been emitted.
func (a *Asm) Instrs() int { return a.n }
