// Package sparc simulates a SPARC-flavored target: big-endian, fixed
// 32-bit instructions, 32 general registers, and a conventional frame
// pointer (%i6), so it shares ldb's frame-pointer stack walker with the
// 68020 and the VAX.
//
// Documented simplifications: there are no register windows (save and
// restore are not implemented; the compiler uses an explicit
// frame-pointer chain), there is no delay slot (a call's return address
// is %o7+4), the eight floating registers are doubles rather than
// single-precision pairs, fitod/fdtoi exchange values with integer
// registers directly, and the float branches use the integer condition
// encoding (fcmp sets the same flag).
package sparc

import (
	"encoding/binary"

	"ldb/internal/arch"
)

// Register numbering: g0-g7, o0-o7, l0-l7, i0-i7.
const (
	G0   = 0  // hardwired zero
	G1   = 1  // syscall number
	O0   = 8  // return value, first syscall argument
	O1   = 9  // second syscall argument
	SP   = 14 // %o6
	O7   = 15 // link register
	FP   = 30 // %i6
	NReg = 32
	NFrg = 8
)

// Sparc implements arch.Arch.
type Sparc struct{}

// Target is the singleton SPARC target.
var Target = &Sparc{}

func init() { arch.Register(Target) }

// Name implements arch.Arch.
func (s *Sparc) Name() string { return "sparc" }

// Order implements arch.Arch.
func (s *Sparc) Order() binary.ByteOrder { return binary.BigEndian }

// WordSize implements arch.Arch.
func (s *Sparc) WordSize() int { return 4 }

func word(w uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, w)
	return b
}

// BreakInstr implements arch.Arch: `ta 0`.
func (s *Sparc) BreakInstr() []byte { return word(encTrap(arch.TrapBreakpoint)) }

// NopInstr implements arch.Arch: `sethi 0, %g0`.
func (s *Sparc) NopInstr() []byte { return word(uint32(0)<<30 | 4<<22) }

// InstrSize implements arch.Arch.
func (s *Sparc) InstrSize() int { return 4 }

// PCAdvance implements arch.Arch.
func (s *Sparc) PCAdvance() int64 { return 4 }

// NumRegs implements arch.Arch.
func (s *Sparc) NumRegs() int { return NReg }

// NumFRegs implements arch.Arch.
func (s *Sparc) NumFRegs() int { return NFrg }

// RegName implements arch.Arch.
func (s *Sparc) RegName(i int) string {
	names := []string{"g", "o", "l", "i"}
	if i < 0 || i >= NReg {
		return "r?"
	}
	return names[i/8] + string(rune('0'+i%8))
}

// SPReg implements arch.Arch.
func (s *Sparc) SPReg() int { return SP }

// FPReg implements arch.Arch.
func (s *Sparc) FPReg() int { return FP }

// RetReg implements arch.Arch.
func (s *Sparc) RetReg() int { return O0 }

// LinkReg implements arch.Arch.
func (s *Sparc) LinkReg() int { return O7 }

// Context implements arch.Arch: registers first (the operating system
// provides most of the registers, §4.3), then pc, flag, and the
// floating registers.
func (s *Sparc) Context() arch.ContextLayout {
	l := arch.ContextLayout{
		Size:     4*NReg + 8 + 8*NFrg,
		PCOff:    4 * NReg,
		FlagOff:  4*NReg + 4,
		RegOffs:  make([]int, NReg),
		FRegOffs: make([]int, NFrg),
		FRegSize: 8,
	}
	for i := range l.RegOffs {
		l.RegOffs[i] = 4 * i
	}
	for i := range l.FRegOffs {
		l.FRegOffs[i] = 4*NReg + 8 + 8*i
	}
	return l
}

// SyscallArg implements arch.Arch.
func (s *Sparc) SyscallArg(p arch.Proc, i int) uint32 { return p.Reg(O0 + i) }

// SyscallRet implements arch.Arch.
func (s *Sparc) SyscallRet(p arch.Proc, v uint32) { p.SetReg(O0, v) }
