package sparc

import (
	"math"

	"ldb/internal/arch"
)

// subFlags computes the condition codes subcc sets for a - b.
func subFlags(a, b uint32) uint32 {
	var fl uint32
	if a == b {
		fl |= FlagZ
	}
	if int32(a) < int32(b) {
		fl |= FlagN
	}
	if a < b {
		fl |= FlagC
	}
	return fl
}

// Decode implements arch.Decoder. The second operand of arithmetic and
// memory forms is either a sign-extended 13-bit immediate or a register
// read; decode resolves which once (rs2 < 0 means "use the immediate"),
// and the hottest forms predecode to separate register and immediate
// closures so execution never re-tests it.
// Writes to %g0 predecode to the -1 slot that arch.RegWrite discards.
// Undecodable words return nil and fall back to Step for the SIGILL.
func (s *Sparc) Decode(code []byte, off int, pc uint32) *arch.DecodedInsn {
	if off < 0 || off+4 > len(code) || off&3 != 0 {
		return nil
	}
	w := s.Order().Uint32(code[off : off+4])
	next := pc + 4

	dst := func(r int) int {
		if r == 0 {
			return -1
		}
		return r
	}
	mk := func(x func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault)) *arch.DecodedInsn {
		return &arch.DecodedInsn{Len: 4, Exec: x}
	}
	// mkT marks control-transfer instructions (call, branches, jmpl,
	// traps) that may not fall through to pc+4; superblock formation
	// ends a fused run at the first one.
	mkT := func(x func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault)) *arch.DecodedInsn {
		return &arch.DecodedInsn{Len: 4, Exec: x, Flags: arch.InsnTerm}
	}
	// rs2/simm resolve the register-or-immediate second operand once.
	rs2 := -1
	var simm uint32
	if w&(1<<13) != 0 {
		simm = signExt13(w & 0x1fff)
	} else {
		rs2 = int(w & 31)
	}

	switch w >> 30 {
	case 1: // call
		disp := int32(w<<2) >> 2
		target := pc + uint32(disp)*4
		return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			regs[O7] = pc
			return target, nil
		}).TermUop(arch.UopJmpL, O7, 0, 0, target)
	case 0: // sethi / branches
		switch w >> 22 & 7 {
		case 4: // sethi
			d := dst(int(w >> 25 & 31))
			v := w << 10
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, v)
				return next, nil
			}).AluUop(arch.UopConst, d, 0, 0, v)
		case 2, 6: // Bicc / FBfcc
			cond := int(w >> 25 & 15)
			disp := int32(w<<10) >> 10
			target := pc + uint32(disp)*4
			// The flags live in bits 0-2, so the condition predecodes
			// to an 8-entry truth table indexed by flag&7.
			var tbl uint32
			for fl := uint32(0); fl < 8; fl++ {
				if condTrue(cond, fl) {
					tbl |= 1 << fl
				}
			}
			return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if tbl>>(*flag&7)&1 != 0 {
					return target, nil
				}
				return next, nil
			}).TermUop(arch.UopBcc, int(tbl), 0, 0, target)
		}
		return nil
	case 2: // arithmetic
		rd := int(w >> 25 & 31)
		d := dst(rd)
		op3 := int(w >> 19 & 63)
		rs1 := int(w >> 14 & 31)
		alu := func(x func(a, b uint32) uint32) *arch.DecodedInsn {
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				b := simm
				if rs2 >= 0 {
					b = regs[rs2]
				}
				arch.RegWrite(regs, d, x(regs[rs1], b))
				return next, nil
			})
		}
		switch op3 {
		case Op3Add:
			if r2 := rs2; r2 >= 0 {
				return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					arch.RegWrite(regs, d, regs[rs1]+regs[r2])
					return next, nil
				}).AluUop(arch.UopAdd, d, rs1, r2, 0)
			}
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rs1]+simm)
				return next, nil
			}).AluUop(arch.UopAddI, d, rs1, 0, simm)
		case Op3Sub:
			if r2 := rs2; r2 >= 0 {
				return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					arch.RegWrite(regs, d, regs[rs1]-regs[r2])
					return next, nil
				}).AluUop(arch.UopSub, d, rs1, r2, 0)
			}
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rs1]-simm)
				return next, nil
			}).AluUop(arch.UopAddI, d, rs1, 0, -simm)
		case Op3And:
			if r2 := rs2; r2 >= 0 {
				return alu(func(a, b uint32) uint32 { return a & b }).AluUop(arch.UopAnd, d, rs1, r2, 0)
			}
			return alu(func(a, b uint32) uint32 { return a & b }).AluUop(arch.UopAndI, d, rs1, 0, simm)
		case Op3Or:
			if r2 := rs2; r2 >= 0 {
				return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					arch.RegWrite(regs, d, regs[rs1]|regs[r2])
					return next, nil
				}).AluUop(arch.UopOr, d, rs1, r2, 0)
			}
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				arch.RegWrite(regs, d, regs[rs1]|simm)
				return next, nil
			}).AluUop(arch.UopOrI, d, rs1, 0, simm)
		case Op3Xor:
			if r2 := rs2; r2 >= 0 {
				return alu(func(a, b uint32) uint32 { return a ^ b }).AluUop(arch.UopXor, d, rs1, r2, 0)
			}
			return alu(func(a, b uint32) uint32 { return a ^ b }).AluUop(arch.UopXorI, d, rs1, 0, simm)
		case Op3SMul:
			if r2 := rs2; r2 >= 0 {
				return alu(func(a, b uint32) uint32 { return uint32(int32(a) * int32(b)) }).AluUop(arch.UopMul, d, rs1, r2, 0)
			}
			return alu(func(a, b uint32) uint32 { return uint32(int32(a) * int32(b)) })
		case Op3SDiv:
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				b := simm
				if rs2 >= 0 {
					b = regs[rs2]
				}
				if b == 0 {
					return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
				}
				arch.RegWrite(regs, d, uint32(int32(regs[rs1])/int32(b)))
				return next, nil
			})
		case Op3Sll:
			if r2 := rs2; r2 >= 0 {
				return alu(func(a, b uint32) uint32 { return a << (b & 31) }).AluUop(arch.UopShl, d, rs1, r2, 0)
			}
			return alu(func(a, b uint32) uint32 { return a << (b & 31) }).AluUop(arch.UopShlI, d, rs1, 0, simm&31)
		case Op3Srl:
			if r2 := rs2; r2 >= 0 {
				return alu(func(a, b uint32) uint32 { return a >> (b & 31) }).AluUop(arch.UopShr, d, rs1, r2, 0)
			}
			return alu(func(a, b uint32) uint32 { return a >> (b & 31) }).AluUop(arch.UopShrI, d, rs1, 0, simm&31)
		case Op3Sra:
			if r2 := rs2; r2 >= 0 {
				return alu(func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }).AluUop(arch.UopSar, d, rs1, r2, 0)
			}
			return alu(func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }).AluUop(arch.UopSarI, d, rs1, 0, simm&31)
		case Op3SubCC:
			if r2 := rs2; r2 >= 0 {
				di := mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					a, b := regs[rs1], regs[r2]
					arch.RegWrite(regs, d, a-b)
					*flag = subFlags(a, b)
					return next, nil
				})
				if d < 0 {
					return di.FlagUop(arch.UopCmp, rs1, r2, 0)
				}
				return di.AluUop(arch.UopSubCC, d, rs1, r2, 0)
			}
			di := mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				a := regs[rs1]
				arch.RegWrite(regs, d, a-simm)
				*flag = subFlags(a, simm)
				return next, nil
			})
			if d < 0 {
				return di.FlagUop(arch.UopCmpI, rs1, 0, simm)
			}
			return di.AluUop(arch.UopSubCCI, d, rs1, 0, simm)
		case Op3Jmpl:
			if r2 := rs2; r2 >= 0 {
				di := mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					t := regs[rs1] + regs[r2]
					arch.RegWrite(regs, d, pc)
					return t, nil
				})
				if d < 0 { // link discarded: plain indirect jump
					return di.TermUop(arch.UopJmpInd, 0, rs1, r2, 0)
				}
				return di // linked register-register jmpl is rare; keep the closure
			}
			di := mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				t := regs[rs1] + simm
				arch.RegWrite(regs, d, pc)
				return t, nil
			})
			if d < 0 { // ret / retl and friends: link discarded
				return di.TermUop(arch.UopJmpInd, 0, rs1, 0, simm)
			}
			return di.TermUop(arch.UopJmpIndL, d, rs1, 0, simm)
		case Op3Trap:
			return mkT(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				b := simm
				if rs2 >= 0 {
					b = regs[rs2]
				}
				code := int(b & 0x7f)
				if code == 1 { // ta 1: syscall, number in %g1
					p.SetPC(pc + 4)
					return 0, &arch.Fault{Kind: arch.FaultSyscall, Code: int(regs[G1]), PC: pc}
				}
				return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: code, PC: pc, Len: 4}
			})
		case Op3FPop1:
			opf := int(w >> 5 & 0x1ff)
			fs1 := int(w >> 14 & 31)
			f1, f2 := fs1&7, int(w&31)&7
			fd := rd & 7
			var x func(p arch.Proc, regs []uint32)
			switch opf {
			case OpfFMovs:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, p.FReg(f1)) }
			case OpfFNegs:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, -p.FReg(f1)) }
			case OpfFAddS:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, float64(float32(p.FReg(f1)+p.FReg(f2)))) }
			case OpfFSubS:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, float64(float32(p.FReg(f1)-p.FReg(f2)))) }
			case OpfFMulS:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, float64(float32(p.FReg(f1)*p.FReg(f2)))) }
			case OpfFDivS:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, float64(float32(p.FReg(f1)/p.FReg(f2)))) }
			case OpfFAddD:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, p.FReg(f1)+p.FReg(f2)) }
			case OpfFSubD:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, p.FReg(f1)-p.FReg(f2)) }
			case OpfFMulD:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, p.FReg(f1)*p.FReg(f2)) }
			case OpfFDivD:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, p.FReg(f1)/p.FReg(f2)) }
			case OpfFiToD:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, float64(int32(regs[fs1]))) }
			case OpfFdToI:
				x = func(p arch.Proc, regs []uint32) {
					arch.RegWrite(regs, d, uint32(int32(math.Trunc(p.FReg(f2)))))
				}
			case OpfFsToD:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, p.FReg(f1)) }
			case OpfFdToS:
				x = func(p arch.Proc, regs []uint32) { p.SetFReg(fd, float64(float32(p.FReg(f1)))) }
			default:
				return nil
			}
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				x(p, regs)
				return next, nil
			})
		case Op3FPop2:
			opf := int(w >> 5 & 0x1ff)
			if opf != OpfFCmpS && opf != OpfFCmpD {
				return nil
			}
			f1, f2 := int(w>>14&31)&7, int(w&31)&7
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				av, bv := p.FReg(f1), p.FReg(f2)
				var fl uint32
				if av == bv {
					fl |= FlagZ
				}
				if av < bv {
					fl |= FlagN | FlagC
				}
				*flag = fl
				return next, nil
			})
		}
		return nil
	case 3: // memory
		rd := int(w >> 25 & 31)
		op3 := int(w >> 19 & 63)
		rs1 := int(w >> 14 & 31)
		load := func(size, signed int) *arch.DecodedInsn {
			d := dst(rd)
			uop := arch.UopLd32
			switch {
			case size == 1 && signed != 0:
				uop = arch.UopLd8S
			case size == 1:
				uop = arch.UopLd8U
			case size == 2 && signed != 0:
				uop = arch.UopLd16S
			case size == 2:
				uop = arch.UopLd16U
			}
			if r2 := rs2; r2 >= 0 {
				return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					v, f := p.Load(regs[rs1]+regs[r2], size)
					if f != nil {
						return 0, f
					}
					switch signed {
					case 1:
						v = uint32(int32(int8(v)))
					case 2:
						v = uint32(int32(int16(v)))
					}
					arch.RegWrite(regs, d, v)
					return next, nil
				}).MemUop(uop, d, rs1, r2, 0)
			}
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				v, f := p.Load(regs[rs1]+simm, size)
				if f != nil {
					return 0, f
				}
				switch signed {
				case 1:
					v = uint32(int32(int8(v)))
				case 2:
					v = uint32(int32(int16(v)))
				}
				arch.RegWrite(regs, d, v)
				return next, nil
			}).MemUop(uop, d, rs1, 0, simm)
		}
		store := func(size int) *arch.DecodedInsn {
			uop := arch.UopSt32
			switch size {
			case 1:
				uop = arch.UopSt8
			case 2:
				uop = arch.UopSt16
			}
			if r2 := rs2; r2 >= 0 {
				return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					if f := p.Store(regs[rs1]+regs[r2], size, regs[rd]); f != nil {
						return 0, f
					}
					return next, nil
				}).MemUop(uop, rd, rs1, r2, 0)
			}
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if f := p.Store(regs[rs1]+simm, size, regs[rd]); f != nil {
					return 0, f
				}
				return next, nil
			}).MemUop(uop, rd, rs1, 0, simm)
		}
		switch op3 {
		case Op3Ld:
			return load(4, 0)
		case Op3Ldub:
			return load(1, 0)
		case Op3Lduh:
			return load(2, 0)
		case Op3Ldsb:
			return load(1, 1)
		case Op3Ldsh:
			return load(2, 2)
		case Op3St:
			return store(4)
		case Op3Stb:
			return store(1)
		case Op3Sth:
			return store(2)
		case Op3Ldf, Op3Lddf:
			size := 4
			if op3 == Op3Lddf {
				size = 8
			}
			fd := rd & 7
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				b := simm
				if rs2 >= 0 {
					b = regs[rs2]
				}
				v, f := p.LoadFloat(regs[rs1]+b, size)
				if f != nil {
					return 0, f
				}
				p.SetFReg(fd, v)
				return next, nil
			})
		case Op3Stf, Op3Stdf:
			size := 4
			if op3 == Op3Stdf {
				size = 8
			}
			fd := rd & 7
			return mk(func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				b := simm
				if rs2 >= 0 {
					b = regs[rs2]
				}
				if f := p.StoreFloat(regs[rs1]+b, size, p.FReg(fd)); f != nil {
					return 0, f
				}
				return next, nil
			})
		}
		return nil
	}
	return nil
}
