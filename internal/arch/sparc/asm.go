package sparc

import (
	"encoding/binary"
	"fmt"

	"ldb/internal/arch"
)

// op3 codes for format-3 (op=2) arithmetic instructions.
const (
	Op3Add   = 0x00
	Op3And   = 0x01
	Op3Or    = 0x02
	Op3Xor   = 0x03
	Op3Sub   = 0x04
	Op3SMul  = 0x0b
	Op3SDiv  = 0x0f
	Op3SubCC = 0x14
	Op3Sll   = 0x25
	Op3Srl   = 0x26
	Op3Sra   = 0x27
	Op3FPop1 = 0x34
	Op3FPop2 = 0x35
	Op3Jmpl  = 0x38
	Op3Trap  = 0x3a
)

// op3 codes for format-3 (op=3) memory instructions.
const (
	Op3Ld   = 0x00
	Op3Ldub = 0x01
	Op3Lduh = 0x02
	Op3St   = 0x04
	Op3Stb  = 0x05
	Op3Sth  = 0x06
	Op3Ldsb = 0x09
	Op3Ldsh = 0x0a
	Op3Ldf  = 0x20
	Op3Lddf = 0x23
	Op3Stf  = 0x24
	Op3Stdf = 0x27
)

// Integer condition codes for Bicc (and, in this dialect, FBfcc).
const (
	CondN   = 0
	CondE   = 1
	CondLE  = 2
	CondL   = 3
	CondLEU = 4 // unsigned <=
	CondCS  = 5 // unsigned <
	CondA   = 8
	CondNE  = 9
	CondG   = 10
	CondGE  = 11
	CondGU  = 12 // unsigned >
	CondCC  = 13 // unsigned >=
)

// opf codes for FPop1.
const (
	OpfFMovs = 0x01
	OpfFNegs = 0x05
	OpfFAddS = 0x41
	OpfFAddD = 0x42
	OpfFSubS = 0x45
	OpfFSubD = 0x46
	OpfFMulS = 0x49
	OpfFMulD = 0x4a
	OpfFDivS = 0x4d
	OpfFDivD = 0x4e
	OpfFdToS = 0xc6
	OpfFiToD = 0xc8
	OpfFsToD = 0xc9
	OpfFdToI = 0xd2
	// FPop2
	OpfFCmpS = 0x51
	OpfFCmpD = 0x52
)

// Flag bits set by subcc and fcmp.
const (
	FlagZ = 1 << 0 // equal
	FlagN = 1 << 1 // signed less-than
	FlagC = 1 << 2 // unsigned less-than
)

func encRR(op3, rd, rs1, rs2 int) uint32 {
	return 2<<30 | uint32(rd&31)<<25 | uint32(op3&63)<<19 | uint32(rs1&31)<<14 | uint32(rs2&31)
}

func encRI(op3, rd, rs1 int, imm int32) uint32 {
	return 2<<30 | uint32(rd&31)<<25 | uint32(op3&63)<<19 | uint32(rs1&31)<<14 | 1<<13 | uint32(imm)&0x1fff
}

func encMemRI(op, op3, rd, rs1 int, imm int32) uint32 {
	return uint32(op)<<30 | uint32(rd&31)<<25 | uint32(op3&63)<<19 | uint32(rs1&31)<<14 | 1<<13 | uint32(imm)&0x1fff
}

func encTrap(code int) uint32 {
	// ta imm: op=2, cond=CondA in rd field, op3=0x3a, i=1.
	return encRI(Op3Trap, CondA, G0, int32(code))
}

func encSethi(rd int, imm22 uint32) uint32 {
	return uint32(rd&31)<<25 | 4<<22 | imm22&0x3fffff
}

type fixup struct {
	off   int
	label string
}

// Asm assembles SPARC instructions.
type Asm struct {
	n      int // instructions emitted
	buf    []byte
	relocs []arch.Reloc
	labels map[string]int
	fixes  []fixup
}

// NewAsm returns a fresh assembler.
func NewAsm() *Asm { return &Asm{labels: make(map[string]int)} }

// Off returns the current offset.
func (a *Asm) Off() int { return len(a.buf) }

// Label binds name to the current offset.
func (a *Asm) Label(name string) { a.labels[name] = len(a.buf) }

func (a *Asm) word(w uint32) {
	a.n++
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], w)
	a.buf = append(a.buf, b[:]...)
}

// RR emits rd = rs1 op rs2.
func (a *Asm) RR(op3, rd, rs1, rs2 int) { a.word(encRR(op3, rd, rs1, rs2)) }

// RI emits rd = rs1 op simm13.
func (a *Asm) RI(op3, rd, rs1 int, imm int32) { a.word(encRI(op3, rd, rs1, imm)) }

// Load emits a load of the given op3 from [rs1+imm] into rd.
func (a *Asm) Load(op3, rd, rs1 int, imm int32) { a.word(encMemRI(3, op3, rd, rs1, imm)) }

// Store emits a store of rd to [rs1+imm].
func (a *Asm) Store(op3, rd, rs1 int, imm int32) { a.word(encMemRI(3, op3, rd, rs1, imm)) }

// Nop emits the canonical no-op.
func (a *Asm) Nop() { a.word(4 << 22) }

// Trap emits `ta code`.
func (a *Asm) Trap(code int) { a.word(encTrap(code)) }

// Branch emits a Bicc to a local label.
func (a *Asm) Branch(cond int, label string) {
	a.fixes = append(a.fixes, fixup{off: len(a.buf), label: label})
	a.word(uint32(cond&15)<<25 | 2<<22)
}

// FBranch emits an FBfcc (same condition encoding in this dialect).
func (a *Asm) FBranch(cond int, label string) {
	a.fixes = append(a.fixes, fixup{off: len(a.buf), label: label})
	a.word(uint32(cond&15)<<25 | 6<<22)
}

// Ba emits an unconditional branch.
func (a *Asm) Ba(label string) { a.Branch(CondA, label) }

// Call emits a call to a global symbol; %o7 receives the call address.
func (a *Asm) Call(sym string) {
	a.relocs = append(a.relocs, arch.Reloc{Off: len(a.buf), Kind: arch.RelPC30, Sym: sym})
	a.word(1 << 30)
}

// Jmpl emits jmpl rs1+imm, rd (ret is jmpl %o7+4, %g0).
func (a *Asm) Jmpl(rd, rs1 int, imm int32) { a.word(encRI(Op3Jmpl, rd, rs1, imm)) }

// Ret emits the return sequence.
func (a *Asm) Ret() { a.Jmpl(G0, O7, 4) }

// Sethi emits sethi imm22, rd.
func (a *Asm) Sethi(rd int, imm22 uint32) { a.word(encSethi(rd, imm22)) }

// LA loads the address of sym+add into rd (sethi/or pair).
func (a *Asm) LA(rd int, sym string, add int64) {
	a.relocs = append(a.relocs,
		arch.Reloc{Off: len(a.buf), Kind: arch.RelHi22, Sym: sym, Add: add},
		arch.Reloc{Off: len(a.buf) + 4, Kind: arch.RelLo10, Sym: sym, Add: add})
	a.word(encSethi(rd, 0))
	a.word(encRI(Op3Or, rd, rd, 0))
}

// LI loads a 32-bit constant into rd.
func (a *Asm) LI(rd int, v int32) {
	if v >= -4096 && v < 4096 {
		a.RI(Op3Or, rd, G0, v)
		return
	}
	a.Sethi(rd, uint32(v)>>10)
	a.RI(Op3Or, rd, rd, v&0x3ff)
}

// Fp emits an FPop1: fd = fs1 opf fs2.
func (a *Asm) Fp(opf, fd, fs1, fs2 int) {
	a.word(2<<30 | uint32(fd&31)<<25 | Op3FPop1<<19 | uint32(fs1&31)<<14 | uint32(opf&0x1ff)<<5 | uint32(fs2&31))
}

// FCmp emits an FPop2 compare setting the flag.
func (a *Asm) FCmp(opf, fs1, fs2 int) {
	a.word(2<<30 | Op3FPop2<<19 | uint32(fs1&31)<<14 | uint32(opf&0x1ff)<<5 | uint32(fs2&31))
}

// FiToD emits fd = double(int register rs).
func (a *Asm) FiToD(fd, rs int) { a.Fp(OpfFiToD, fd, rs, 0) }

// FdToI emits integer register rd = trunc(fs).
func (a *Asm) FdToI(rd, fs int) { a.Fp(OpfFdToI, rd, 0, fs) }

// Finish resolves label branches and returns code plus relocations.
func (a *Asm) Finish() ([]byte, []arch.Reloc, error) {
	for _, f := range a.fixes {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, nil, fmt.Errorf("sparc: undefined label %q", f.label)
		}
		disp := (target - f.off) / 4
		if disp < -(1<<21) || disp >= 1<<21 {
			return nil, nil, fmt.Errorf("sparc: branch to %q out of range", f.label)
		}
		w := binary.BigEndian.Uint32(a.buf[f.off:])
		w = w&0xffc00000 | uint32(disp)&0x3fffff
		binary.BigEndian.PutUint32(a.buf[f.off:], w)
	}
	return a.buf, a.relocs, nil
}

// Labels exposes bound labels.
func (a *Asm) Labels() map[string]int { return a.labels }

// Instrs reports how many instructions have been emitted.
func (a *Asm) Instrs() int { return a.n }
