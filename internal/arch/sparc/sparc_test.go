package sparc

import (
	"testing"

	"ldb/internal/arch"
	"ldb/internal/machine"
)

func run(t *testing.T, build func(a *Asm)) *machine.Process {
	t.Helper()
	a := NewAsm()
	build(a)
	code, relocs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(relocs) != 0 {
		t.Fatalf("unexpected relocs: %v", relocs)
	}
	p := machine.New(Target, code, make([]byte, 4096), machine.TextBase)
	f := p.Run()
	if f.Kind != arch.FaultHalt {
		t.Fatalf("run ended with %v, want halt; pc=%#x", f, p.PC())
	}
	return p
}

func exitSeq(a *Asm) {
	a.LI(G1, arch.SysExit)
	a.LI(O0, 0)
	a.Trap(1)
}

func TestArithmetic(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.LI(1, 21)
		a.LI(2, 2)
		a.RR(Op3SMul, 3, 1, 2) // 42
		a.RI(Op3Add, 4, 3, 5)  // 47
		a.RI(Op3Sub, 5, 3, 2)  // 40
		a.LI(6, 5)
		a.RR(Op3SDiv, 7, 3, 6)   // 8
		a.RI(Op3Sll, 16, 2, 4)   // 32
		a.RI(Op3Sra, 17, 16, 2)  // 8
		a.RI(Op3Xor, 18, 3, 0xf) // 42^15 = 37
		exitSeq(a)
	})
	want := map[int]uint32{3: 42, 4: 47, 5: 40, 7: 8, 16: 32, 17: 8, 18: 37}
	for r, w := range want {
		if got := p.Reg(r); got != w {
			t.Errorf("r%d = %d, want %d", r, got, w)
		}
	}
	// %g0 is hardwired.
	p2 := run(t, func(a *Asm) {
		a.LI(G0, 99)
		exitSeq(a)
	})
	if p2.Reg(G0) != 0 {
		t.Error("g0 must stay zero")
	}
}

func TestMemoryBranchesCalls(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.LI(1, int32(machine.DataBase))
		a.LI(2, -2)
		a.Store(Op3St, 2, 1, 0)
		a.Load(Op3Ld, 3, 1, 0)
		a.Load(Op3Ldsb, 4, 1, 0) // big-endian: byte 0 = 0xff → -1
		a.Load(Op3Ldub, 5, 1, 3) // low byte = 0xfe
		a.Load(Op3Ldsh, 6, 1, 2) // low half = 0xfffe → -2
		// Loop: sum 1..5.
		a.LI(16, 0)
		a.LI(17, 1)
		a.Label("loop")
		a.RR(Op3Add, 16, 16, 17)
		a.RI(Op3Add, 17, 17, 1)
		a.RI(Op3SubCC, G0, 17, 6)
		a.Branch(CondNE, "loop")
		exitSeq(a)
	})
	if got := p.Reg(3); got != 0xfffffffe {
		t.Errorf("ld = %#x", got)
	}
	if got := int32(p.Reg(4)); got != -1 {
		t.Errorf("ldsb = %d", got)
	}
	if got := p.Reg(5); got != 0xfe {
		t.Errorf("ldub = %#x", got)
	}
	if got := int32(p.Reg(6)); got != -2 {
		t.Errorf("ldsh = %d", got)
	}
	if got := p.Reg(16); got != 15 {
		t.Errorf("loop sum = %d", got)
	}
}

func TestCallJmpl(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.LI(1, int32(machine.TextBase)+5*4)
		a.Jmpl(O7, 1, 0) // call through register
		a.Ba("done")
		a.Nop()
		a.Nop() // padding: func at word 5
		a.LI(O0, 77)
		a.Ret()
		a.Label("done")
		a.RR(Op3Add, 16, O0, G0)
		exitSeq(a)
	})
	if got := p.Reg(16); got != 77 {
		t.Errorf("call/ret: %d, want 77", got)
	}
}

func TestFloat(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.LI(1, 9)
		a.FiToD(0, 1) // f0 = 9.0
		a.LI(1, 2)
		a.FiToD(1, 1)           // f1 = 2.0
		a.Fp(OpfFDivD, 2, 0, 1) // 4.5
		a.Fp(OpfFMulD, 3, 2, 1) // 9.0
		a.FdToI(16, 3)
		a.FCmp(OpfFCmpD, 1, 0) // 2 < 9 → N
		a.FBranch(CondL, "less")
		a.LI(17, 0)
		a.Ba("out")
		a.Label("less")
		a.LI(17, 1)
		a.Label("out")
		// doubles through memory
		a.LI(1, int32(machine.DataBase))
		a.Store(Op3Stdf, 2, 1, 8)
		a.Load(Op3Lddf, 4, 1, 8)
		a.FCmp(OpfFCmpD, 4, 2)
		a.FBranch(CondE, "eq")
		a.LI(18, 0)
		a.Ba("out2")
		a.Label("eq")
		a.LI(18, 1)
		a.Label("out2")
		exitSeq(a)
	})
	if p.Reg(16) != 9 {
		t.Errorf("fdiv/fmul = %d, want 9", p.Reg(16))
	}
	if p.Reg(17) != 1 {
		t.Error("float compare branch not taken")
	}
	if p.Reg(18) != 1 {
		t.Error("double memory round trip failed")
	}
}

func TestTrapsAndFaults(t *testing.T) {
	a := NewAsm()
	a.Trap(arch.TrapBreakpoint)
	code, _, _ := a.Finish()
	p := machine.New(Target, code, nil, machine.TextBase)
	f := p.Run()
	if f.Sig != arch.SigTrap || f.Code != arch.TrapBreakpoint {
		t.Errorf("ta 0: %v", f)
	}
	a = NewAsm()
	a.Trap(arch.TrapPause)
	code, _, _ = a.Finish()
	p = machine.New(Target, code, nil, machine.TextBase)
	f = p.Run()
	if f.Sig != arch.SigTrap || f.Code != arch.TrapPause {
		t.Errorf("pause: %v", f)
	}
	a = NewAsm()
	a.LI(1, 5)
	a.LI(2, 0)
	a.RR(Op3SDiv, 3, 1, 2)
	code, _, _ = a.Finish()
	p = machine.New(Target, code, nil, machine.TextBase)
	if f := p.Run(); f.Sig != arch.SigFPE {
		t.Errorf("div0: %v", f)
	}
	a = NewAsm()
	a.LI(1, 16)
	a.Load(Op3Ld, 2, 1, 0)
	code, _, _ = a.Finish()
	p = machine.New(Target, code, nil, machine.TextBase)
	if f := p.Run(); f.Sig != arch.SigSegv {
		t.Errorf("wild load: %v", f)
	}
}

func TestBreakNopPatterns(t *testing.T) {
	s := Target
	if len(s.BreakInstr()) != s.InstrSize() || len(s.NopInstr()) != s.InstrSize() {
		t.Fatal("pattern sizes")
	}
	prog := append(append([]byte{}, s.NopInstr()...), s.BreakInstr()...)
	p := machine.New(s, prog, nil, machine.TextBase)
	f := p.Run()
	if f.Sig != arch.SigTrap || f.PC != machine.TextBase+uint32(s.PCAdvance()) {
		t.Errorf("nop+break: %v", f)
	}
}

func TestStdout(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.LI(G1, arch.SysPutInt)
		a.LI(O0, 123)
		a.Trap(1)
		exitSeq(a)
	})
	if p.Stdout.String() != "123" {
		t.Errorf("stdout = %q", p.Stdout.String())
	}
}

func TestMetadata(t *testing.T) {
	s := Target
	if s.FPReg() != FP || s.SPReg() != SP || s.LinkReg() != O7 {
		t.Error("register roles")
	}
	l := s.Context()
	if l.PCOff != 128 || l.RegOffs[FP] != FP*4 || l.FRegSize != 8 || l.FloatWordSwap {
		t.Errorf("context layout: %+v", l)
	}
	if _, ok := arch.Lookup("sparc"); !ok {
		t.Error("not registered")
	}
	if s.RegName(O0) != "o0" || s.RegName(FP) != "i6" {
		t.Errorf("names: %s %s", s.RegName(O0), s.RegName(FP))
	}
}

func TestIllegalInstruction(t *testing.T) {
	// Unassigned op2 values in format-2 words raise SIGILL at the
	// faulting pc.
	for _, w := range []uint32{0x00000000, 0x01c00000} {
		prog := []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
		p := machine.New(Target, prog, nil, machine.TextBase)
		f := p.Run()
		if f.Sig != arch.SigIll || f.PC != machine.TextBase {
			t.Errorf("word %#08x: %v", w, f)
		}
	}
}
