package sparc

import (
	"math"

	"ldb/internal/arch"
)

func sigill(pc uint32) *arch.Fault {
	return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigIll, PC: pc}
}

func condTrue(cond int, flag uint32) bool {
	z := flag&FlagZ != 0
	n := flag&FlagN != 0
	c := flag&FlagC != 0
	switch cond {
	case CondLEU:
		return c || z
	case CondCS:
		return c
	case CondGU:
		return !c && !z
	case CondCC:
		return !c
	case CondN:
		return false
	case CondA:
		return true
	case CondE:
		return z
	case CondNE:
		return !z
	case CondL:
		return n
	case CondGE:
		return !n
	case CondLE:
		return z || n
	case CondG:
		return !z && !n
	}
	return false
}

func signExt13(w uint32) uint32 {
	return uint32(int32(w<<19) >> 19)
}

// Step implements arch.Arch.
func (s *Sparc) Step(p arch.Proc) *arch.Fault {
	pc := p.PC()
	w, f := p.Load(pc, 4)
	if f != nil {
		return f
	}
	next := pc + 4
	op := w >> 30
	setReg := func(r int, v uint32) {
		if r != 0 {
			p.SetReg(r, v)
		}
	}

	switch op {
	case 1: // call
		disp := int32(w<<2) >> 2 // sign-extended disp30
		setReg(O7, pc)
		next = pc + uint32(disp)*4
	case 0: // sethi / branches
		op2 := w >> 22 & 7
		switch op2 {
		case 4: // sethi
			setReg(int(w>>25&31), w<<10)
		case 2, 6: // Bicc / FBfcc (same flag in this dialect)
			cond := int(w >> 25 & 15)
			if condTrue(cond, p.Flag()) {
				disp := int32(w<<10) >> 10
				next = pc + uint32(disp)*4
			}
		default:
			return sigill(pc)
		}
	case 2: // arithmetic
		rd := int(w >> 25 & 31)
		op3 := int(w >> 19 & 63)
		rs1 := int(w >> 14 & 31)
		var b uint32
		if w&(1<<13) != 0 {
			b = signExt13(w & 0x1fff)
		} else {
			b = p.Reg(int(w & 31))
		}
		a := p.Reg(rs1)
		switch op3 {
		case Op3Add:
			setReg(rd, a+b)
		case Op3Sub:
			setReg(rd, a-b)
		case Op3And:
			setReg(rd, a&b)
		case Op3Or:
			setReg(rd, a|b)
		case Op3Xor:
			setReg(rd, a^b)
		case Op3SMul:
			setReg(rd, uint32(int32(a)*int32(b)))
		case Op3SDiv:
			if b == 0 {
				return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
			}
			setReg(rd, uint32(int32(a)/int32(b)))
		case Op3Sll:
			setReg(rd, a<<(b&31))
		case Op3Srl:
			setReg(rd, a>>(b&31))
		case Op3Sra:
			setReg(rd, uint32(int32(a)>>(b&31)))
		case Op3SubCC:
			d := a - b
			setReg(rd, d)
			var flag uint32
			if d == 0 {
				flag |= FlagZ
			}
			if int32(a) < int32(b) {
				flag |= FlagN
			}
			if a < b {
				flag |= FlagC
			}
			p.SetFlag(flag)
		case Op3Jmpl:
			setReg(rd, pc)
			next = a + b
		case Op3Trap:
			code := int(b & 0x7f)
			if code == 1 { // syscall convention: ta 1, number in %g1
				p.SetPC(pc + 4)
				return &arch.Fault{Kind: arch.FaultSyscall, Code: int(p.Reg(G1)), PC: pc}
			}
			return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: code, PC: pc, Len: 4}
		case Op3FPop1:
			opf := int(w >> 5 & 0x1ff)
			fs1 := int(w >> 14 & 31)
			fs2 := int(w & 31)
			fd := rd & 7
			av, bv := p.FReg(fs1&7), p.FReg(fs2&7)
			switch opf {
			case OpfFMovs:
				p.SetFReg(fd, av)
			case OpfFNegs:
				p.SetFReg(fd, -av)
			case OpfFAddS, OpfFSubS, OpfFMulS, OpfFDivS:
				var v float64
				switch opf {
				case OpfFAddS:
					v = av + bv
				case OpfFSubS:
					v = av - bv
				case OpfFMulS:
					v = av * bv
				default:
					v = av / bv
				}
				p.SetFReg(fd, float64(float32(v)))
			case OpfFAddD:
				p.SetFReg(fd, av+bv)
			case OpfFSubD:
				p.SetFReg(fd, av-bv)
			case OpfFMulD:
				p.SetFReg(fd, av*bv)
			case OpfFDivD:
				p.SetFReg(fd, av/bv)
			case OpfFiToD:
				p.SetFReg(fd, float64(int32(p.Reg(fs1))))
			case OpfFdToI:
				setReg(rd, uint32(int32(math.Trunc(bv))))
			case OpfFsToD:
				p.SetFReg(fd, av)
			case OpfFdToS:
				p.SetFReg(fd, float64(float32(av)))
			default:
				return sigill(pc)
			}
		case Op3FPop2:
			opf := int(w >> 5 & 0x1ff)
			av, bv := p.FReg(int(w>>14&31)&7), p.FReg(int(w&31)&7)
			if opf != OpfFCmpS && opf != OpfFCmpD {
				return sigill(pc)
			}
			var flag uint32
			if av == bv {
				flag |= FlagZ
			}
			if av < bv {
				flag |= FlagN | FlagC
			}
			p.SetFlag(flag)
		default:
			return sigill(pc)
		}
	case 3: // memory
		rd := int(w >> 25 & 31)
		op3 := int(w >> 19 & 63)
		rs1 := int(w >> 14 & 31)
		var off uint32
		if w&(1<<13) != 0 {
			off = signExt13(w & 0x1fff)
		} else {
			off = p.Reg(int(w & 31))
		}
		addr := p.Reg(rs1) + off
		switch op3 {
		case Op3Ld, Op3Ldub, Op3Lduh, Op3Ldsb, Op3Ldsh:
			size := 4
			switch op3 {
			case Op3Ldub, Op3Ldsb:
				size = 1
			case Op3Lduh, Op3Ldsh:
				size = 2
			}
			v, f := p.Load(addr, size)
			if f != nil {
				return f
			}
			switch op3 {
			case Op3Ldsb:
				v = uint32(int32(int8(v)))
			case Op3Ldsh:
				v = uint32(int32(int16(v)))
			}
			setReg(rd, v)
		case Op3St, Op3Stb, Op3Sth:
			size := 4
			if op3 == Op3Stb {
				size = 1
			} else if op3 == Op3Sth {
				size = 2
			}
			if f := p.Store(addr, size, p.Reg(rd)); f != nil {
				return f
			}
		case Op3Ldf:
			v, f := p.LoadFloat(addr, 4)
			if f != nil {
				return f
			}
			p.SetFReg(rd&7, v)
		case Op3Lddf:
			v, f := p.LoadFloat(addr, 8)
			if f != nil {
				return f
			}
			p.SetFReg(rd&7, v)
		case Op3Stf:
			if f := p.StoreFloat(addr, 4, p.FReg(rd&7)); f != nil {
				return f
			}
		case Op3Stdf:
			if f := p.StoreFloat(addr, 8, p.FReg(rd&7)); f != nil {
				return f
			}
		default:
			return sigill(pc)
		}
	}
	p.SetPC(next)
	return nil
}
