package arch_test

import (
	"testing"

	"ldb/internal/arch"
	"ldb/internal/arch/m68k"
	"ldb/internal/arch/mips"
	"ldb/internal/arch/sparc"
	"ldb/internal/arch/vax"
)

func TestRegistryAndMetadata(t *testing.T) {
	want := []string{"m68k", "mips", "mipsbe", "sparc", "vax"}
	got := arch.Names()
	if len(got) != len(want) {
		t.Fatalf("registered: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered: %v", got)
		}
	}
	if _, ok := arch.Lookup("pdp11"); ok {
		t.Fatal("phantom architecture")
	}
	// Per-arch invariants the debugger relies on.
	for _, name := range want {
		a, _ := arch.Lookup(name)
		if len(a.BreakInstr()) != a.InstrSize() || len(a.NopInstr()) != a.InstrSize() {
			t.Errorf("%s: pattern widths", name)
		}
		if a.PCAdvance() != int64(a.InstrSize()) {
			t.Errorf("%s: pc advance %d vs instr size %d", name, a.PCAdvance(), a.InstrSize())
		}
		l := a.Context()
		if len(l.RegOffs) != a.NumRegs() || len(l.FRegOffs) != a.NumFRegs() {
			t.Errorf("%s: context layout arity", name)
		}
		if l.PCOff+4 > l.Size || l.FlagOff+4 > l.Size {
			t.Errorf("%s: pc/flag outside context", name)
		}
		if a.SPReg() < 0 || a.SPReg() >= a.NumRegs() {
			t.Errorf("%s: sp register", name)
		}
	}
	// The instruction widths genuinely differ across the family.
	widths := map[int]bool{}
	for _, a := range []arch.Arch{mips.Little, sparc.Target, m68k.Target, vax.Target} {
		widths[a.InstrSize()] = true
	}
	if len(widths) != 3 { // 4, 2, and 1 byte units
		t.Errorf("instruction widths: %v", widths)
	}
	// Exactly one target lacks a frame pointer (the MIPS).
	noFP := 0
	for _, name := range want {
		a, _ := arch.Lookup(name)
		if a.FPReg() < 0 {
			noFP++
		}
	}
	if noFP != 2 { // mips and mipsbe
		t.Errorf("targets without fp: %d", noFP)
	}
}

func TestFaultErrorStrings(t *testing.T) {
	f := &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigSegv, PC: 0x100, Addr: 0x4}
	if f.Error() == "" {
		t.Fatal("empty error")
	}
	f = &arch.Fault{Kind: arch.FaultHalt, PC: 0x100}
	if f.Error() == "" {
		t.Fatal("empty halt")
	}
	f = &arch.Fault{Kind: arch.FaultSyscall, Code: 1, PC: 0x100}
	if f.Error() == "" {
		t.Fatal("empty syscall")
	}
}

func TestRegisterRoles(t *testing.T) {
	// RetReg/LinkReg are debugger-facing metadata; pin them.
	cases := map[string][2]int{
		"mips":   {2, 31},
		"mipsbe": {2, 31},
		"sparc":  {8, 15},
		"m68k":   {0, -1},
		"vax":    {0, -1},
	}
	for name, want := range cases {
		a, _ := arch.Lookup(name)
		if a.RetReg() != want[0] || a.LinkReg() != want[1] {
			t.Errorf("%s: ret=%d link=%d, want %v", name, a.RetReg(), a.LinkReg(), want)
		}
	}
	for _, s := range []arch.Signal{arch.SigNone, arch.SigIll, arch.SigTrap, arch.SigFPE, arch.SigBus, arch.SigSegv, arch.Signal(99)} {
		if s.String() == "" {
			t.Error("empty signal name")
		}
	}
}
