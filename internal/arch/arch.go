// Package arch defines the interface between ldb and its target
// architectures. Machine-independent code manipulates machine-dependent
// *data* wherever possible (§4 of the paper): the breakpoint
// implementation needs only four items of data per target, the context
// code is parameterized by a layout description, and only stepping,
// encoding, and stack walking need per-target code.
//
// The four targets — MIPS R3000, SPARC, Motorola 68020, and VAX — are
// implemented as instruction-set simulators in subpackages. They differ
// in byte order (MIPS is configurable, SPARC and 68020 are big-endian,
// VAX is little-endian), instruction width (4 bytes on MIPS and SPARC,
// 2 on the 68020, 1-byte opcodes on the VAX), frame-pointer discipline
// (the MIPS has none and needs the runtime procedure table), and context
// layout.
package arch

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Signal numbers delivered by the simulated OS, matching the UNIX
// numbers ldb's nub would see.
type Signal int

// The signals a target can raise.
const (
	SigNone Signal = 0
	SigIll  Signal = 4  // illegal instruction
	SigTrap Signal = 5  // breakpoint or pause trap
	SigFPE  Signal = 8  // arithmetic fault (integer divide by zero)
	SigBus  Signal = 10 // unaligned or wild access (unused by default)
	SigSegv Signal = 11 // reference outside mapped segments
)

func (s Signal) String() string {
	switch s {
	case SigNone:
		return "0"
	case SigIll:
		return "SIGILL"
	case SigTrap:
		return "SIGTRAP"
	case SigFPE:
		return "SIGFPE"
	case SigBus:
		return "SIGBUS"
	case SigSegv:
		return "SIGSEGV"
	}
	return fmt.Sprintf("SIG(%d)", int(s))
}

// FaultKind classifies why Step stopped.
type FaultKind int

// Fault kinds.
const (
	FaultSignal  FaultKind = iota // a signal; the nub takes over
	FaultSyscall                  // a system-call trap; the OS layer services it
	FaultHalt                     // the process exited
)

// Trap codes with architectural meaning. Code 0 is the code a planted
// breakpoint raises; the pause trap is executed by the startup code
// before main (§4.3: each machine has a different one-line "pause"
// procedure).
const (
	TrapBreakpoint = 0
	TrapPause      = 126
	// TrapStep is the code the nub reports for an MStepInst stop: the
	// single instruction retired without faulting. Like the pause trap,
	// it is a convention between nub and debugger, not a real trap the
	// hardware raises.
	TrapStep = 125
)

// Fault reports why execution stopped.
type Fault struct {
	Kind FaultKind
	Sig  Signal
	Code int    // trap code or syscall number
	Addr uint32 // faulting address, when meaningful
	PC   uint32 // pc of the faulting instruction
	// Len is the length in bytes of the trapping instruction, when the
	// architecture reports it; the nub uses it to step past its own
	// pause trap. Planted breakpoints use PCAdvance instead (§3).
	Len uint32
}

func (f *Fault) Error() string {
	switch f.Kind {
	case FaultSyscall:
		return fmt.Sprintf("syscall %d at %#x", f.Code, f.PC)
	case FaultHalt:
		return fmt.Sprintf("halt at %#x", f.PC)
	default:
		return fmt.Sprintf("%v (code %d) at pc=%#x addr=%#x", f.Sig, f.Code, f.PC, f.Addr)
	}
}

// Proc is the processor-state access an Arch needs to execute
// instructions. machine.Process implements it.
type Proc interface {
	PC() uint32
	SetPC(uint32)
	Reg(i int) uint32
	SetReg(i int, v uint32)
	FReg(i int) float64
	SetFReg(i int, v float64)
	// Flag is a status word each architecture uses as it pleases
	// (condition codes, floating compare bits). It is saved in contexts.
	Flag() uint32
	SetFlag(uint32)
	// Load and Store access memory in the target byte order; size is
	// 1, 2, or 4 bytes.
	Load(addr uint32, size int) (uint32, *Fault)
	Store(addr uint32, size int, v uint32) *Fault
	// LoadFloat and StoreFloat access floats of logical size 4, 8, or
	// 10 (the 80-bit format occupies 12 bytes) in the target format.
	LoadFloat(addr uint32, size int) (float64, *Fault)
	StoreFloat(addr uint32, size int, v float64) *Fault
}

// ContextLayout describes where the nub saves processor state in a
// context record (§4.1: "the code that fetches and stores fields of a
// context is machine-independent, but is parameterized by a
// machine-dependent description of those fields").
type ContextLayout struct {
	Size     int
	PCOff    int
	FlagOff  int
	RegOffs  []int // byte offset of each general register
	FRegOffs []int // byte offset of each floating register
	// FRegSize is the storage footprint of one saved floating register
	// (8, or 12 for the 68020's extended format).
	FRegSize int
	// FloatWordSwap reproduces the big-endian MIPS kernel quirk (§4.3
	// footnote): doubleword floating values are stored most significant
	// word first, except that the kernel saves floating registers in a
	// struct sigcontext least significant word first.
	FloatWordSwap bool
}

// Arch describes one target architecture.
type Arch interface {
	Name() string
	Order() binary.ByteOrder
	WordSize() int

	// The four items of machine-dependent data the breakpoint
	// implementation needs (§3): the bit patterns used for break and
	// no-op, the type (width) used to fetch and store instructions, and
	// the amount to advance the program counter after "interpreting"
	// the no-op.
	BreakInstr() []byte
	NopInstr() []byte
	InstrSize() int
	PCAdvance() int64

	NumRegs() int
	NumFRegs() int
	RegName(i int) string
	SPReg() int
	// FPReg returns the frame-pointer register, or -1 on machines
	// without one (the MIPS uses a virtual frame pointer, §4.1).
	FPReg() int
	RetReg() int
	// LinkReg returns the register holding the return address after a
	// call, or -1 on machines that push it on the stack.
	LinkReg() int

	Context() ContextLayout

	// Step decodes and executes one instruction. It returns nil if
	// execution may simply continue.
	Step(p Proc) *Fault

	// SyscallArg reads argument i of a system call per the target's
	// convention; SyscallRet delivers the result.
	SyscallArg(p Proc, i int) uint32
	SyscallRet(p Proc, v uint32)
}

// InsnFlags is decode-time metadata about an instruction's control
// flow. It is machine-dependent *data* in the paper's sense: the
// machine-independent superblock builder asks only "can this
// instruction end up anywhere other than pc+Len?", and each decoder
// answers for its own encoding.
type InsnFlags uint8

const (
	// InsnTerm marks an instruction that may not fall through to
	// pc+Len: branches (taken or not), jumps, calls, returns, traps,
	// syscalls, and halts. A superblock run ends at the first InsnTerm
	// instruction; everything else is guaranteed to return (pc+Len, nil)
	// on success, which is what licenses fusing it into the middle of a
	// block.
	InsnTerm InsnFlags = 1 << iota
)

// DecodedInsn is one predecoded instruction: the bit fields are
// extracted, immediates sign-extended, and branch targets computed once
// at decode time, so executing the instruction again costs one indirect
// call instead of a fetch/decode pass. Len is the instruction's size in
// bytes — variable on the 68020 and VAX — which the decode cache uses
// to invalidate entries covered by a text write.
type DecodedInsn struct {
	// Exec executes the instruction against the current processor
	// state. pc is the instruction's own address (the cache guarantees
	// an entry only ever executes at the pc it was decoded for) and
	// regs and flag are the backing general-register file and condition
	// flags — the same storage Proc.Reg, Proc.SetReg, Proc.Flag, and
	// Proc.SetFlag expose, passed directly so the hot arithmetic and
	// compare/branch handlers skip the interface dispatch. On success Exec
	// returns the next pc and nil, and the caller commits the pc; on a
	// fault it returns the fault and the caller leaves the pc alone
	// (handlers that must advance it first, like syscalls, call
	// p.SetPC themselves, exactly as Step does).
	Exec func(p Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *Fault)
	Len  uint32
	// Flags carries the control-flow metadata the superblock builder
	// consumes; a zero value means "always falls through to pc+Len".
	Flags InsnFlags
	// Uop, when not UopNone, is a machine-independent micro-op
	// equivalent of Exec that the superblock engine executes inline in
	// its dispatch loop, skipping the indirect call entirely. Exec is
	// always present and always agrees with the micro-op — the
	// per-instruction engine and single-stepping ignore Uop. Micro-ops
	// are only attached to 4-byte fixed-width instructions (the
	// dispatch loop advances the pc by 4); variable-length back ends
	// keep closures.
	Uop        Uop
	UD, US, UT uint8
	UImm       uint32
}

// Uop enumerates the machine-independent micro-ops: register-file
// arithmetic, NZC compares, and sized memory accesses, the operations
// every fixed-width back end shares once decode has resolved registers
// and immediates. The destination UD, sources US/UT, and immediate UImm
// are pre-extracted; immediates arrive already sign- or zero-extended
// and shift counts pre-masked, so the executor applies the operation
// verbatim. Register 0 may appear as an unused source only when the
// back end guarantees it reads as zero (the MIPS r0 / SPARC %g0
// convention); back ends without such a register pass explicit
// operands.
type Uop uint8

const (
	UopNone   Uop = iota // no micro-op: execute through Exec
	UopNop               // retires with no architectural effect (discarded destination)
	UopConst             // UD = UImm
	UopAddI              // UD = US + UImm
	UopAdd               // UD = US + UT
	UopSub               // UD = US - UT
	UopAnd               // UD = US & UT
	UopAndI              // UD = US & UImm
	UopOr                // UD = US | UT
	UopOrI               // UD = US | UImm
	UopXor               // UD = US ^ UT
	UopXorI              // UD = US ^ UImm
	UopNor               // UD = ^(US | UT)
	UopMul               // UD = US * UT
	UopShlI              // UD = US << UImm
	UopShrI              // UD = US >> UImm (logical)
	UopSarI              // UD = US >> UImm (arithmetic)
	UopShl               // UD = US << (UT & 31)
	UopShr               // UD = US >> (UT & 31) (logical)
	UopSar               // UD = US >> (UT & 31) (arithmetic)
	UopSltI              // UD = int32(US) < int32(UImm)
	UopSlt               // UD = int32(US) < int32(UT)
	UopSltu              // UD = US < UT (unsigned)
	UopCmp               // flags = SubFlags(US, UT)
	UopCmpI              // flags = SubFlags(US, UImm)
	UopSubCC             // UD = US - UT, flags = SubFlags(US, UT)
	UopSubCCI            // UD = US - UImm, flags = SubFlags(US, UImm)
	UopLd32              // UD = mem32[US + UT + UImm]
	UopLd16U             // UD = zext(mem16[US + UT + UImm])
	UopLd16S             // UD = sext(mem16[US + UT + UImm])
	UopLd8U              // UD = zext(mem8[US + UT + UImm])
	UopLd8S              // UD = sext(mem8[US + UT + UImm])
	UopSt32              // mem32[US + UT + UImm] = UD
	UopSt16              // mem16[US + UT + UImm] = UD (low half)
	UopSt8               // mem8[US + UT + UImm] = UD (low byte)

	// Terminator micro-ops: control transfers compiled inline. A decoder
	// attaches one only to an instruction it also marks InsnTerm, so a
	// fused run ends with it; instead of falling through, the op computes
	// the successor pc (branches not taken fall through to pc+4 — these
	// are only attached to 4-byte instructions). In the link forms UT is
	// the byte offset of the return address past the instruction itself:
	// 4 on MIPS (jal links pc+4), 0 on SPARC (call links its own
	// address). Terminators sit at the end of the enum so Term can test
	// membership by ordering.
	UopJmp     // next = UImm
	UopJmpL    // UD = pc + UT (link offset); next = UImm
	UopJmpInd  // next = US + UT + UImm (register values; UT a register)
	UopJmpIndL // t := US + UImm; UD = pc + UT (link offset); next = t
	UopBeq     // next = UImm if US == UT else pc+4
	UopBne     // next = UImm if US != UT else pc+4
	UopBlt     // next = UImm if int32(US) < int32(UT) else pc+4
	UopBge     // next = UImm if int32(US) >= int32(UT) else pc+4
	UopBle     // next = UImm if int32(US) <= int32(UT) else pc+4
	UopBgt     // next = UImm if int32(US) > int32(UT) else pc+4
	UopBcc     // next = UImm if UD>>(flags&7)&1 != 0 else pc+4 (truth table over NZC)
)

// Term reports whether u is a terminator micro-op: one that computes
// the successor pc rather than falling through.
func (u Uop) Term() bool {
	return u >= UopJmp
}

// Pure reports whether u is a pure register/flag micro-op: no memory
// access, no control transfer, and no way to fault. Pure ops never
// abort a fused block mid-run and never read the pc, so the superblock
// builder may fuse them regardless of the instruction's byte length
// (the 4-byte restriction exists only for ops that can abort or branch,
// where the engine reconstructs per-instruction pcs from fixed widths).
func (u Uop) Pure() bool {
	return u > UopNone && u < UopLd32
}

// SubFlags computes the generic NZC condition flags for the comparison
// a - b, in the shared encoding the compare micro-ops and the
// flag-setting back ends agree on: bit 0 set when equal, bit 1 when
// signed less-than, bit 2 when unsigned less-than.
func SubFlags(a, b uint32) uint32 {
	var fl uint32
	if a == b {
		fl |= 1
	}
	if int32(a) < int32(b) {
		fl |= 2
	}
	if a < b {
		fl |= 4
	}
	return fl
}

// AluUop attaches a register-writing arithmetic micro-op. A discarded
// destination (rd < 0, the predecode of a MIPS r0 / SPARC %g0 write)
// compiles to UopNop: the write is architecturally suppressed and
// arithmetic operands are side-effect-free, so the instruction retires
// with no effect.
func (d *DecodedInsn) AluUop(op Uop, rd, rs, rt int, imm uint32) *DecodedInsn {
	if rd < 0 {
		d.Uop = UopNop
		return d
	}
	d.Uop, d.UD, d.US, d.UT, d.UImm = op, uint8(rd), uint8(rs), uint8(rt), imm
	return d
}

// FlagUop attaches a flag-only micro-op (compares): no destination.
func (d *DecodedInsn) FlagUop(op Uop, rs, rt int, imm uint32) *DecodedInsn {
	d.Uop, d.US, d.UT, d.UImm = op, uint8(rs), uint8(rt), imm
	return d
}

// TermUop attaches a terminator micro-op. Field meanings are per-op
// (see the Uop constants); the caller passes only the fields its op
// reads and zeros for the rest — there is no discarded-destination
// suppression here, because the jump itself must still happen, so call
// sites with a discarded link register pick the link-free op instead.
func (d *DecodedInsn) TermUop(op Uop, rd, rs, rt int, imm uint32) *DecodedInsn {
	d.Uop, d.UD, d.US, d.UT, d.UImm = op, uint8(rd), uint8(rs), uint8(rt), imm
	return d
}

// MemUop attaches a load or store micro-op. A load with a discarded
// destination keeps its closure (the access must still fault exactly as
// it always did), so rd < 0 leaves the entry Exec-only. For stores rd
// names the value register, which is never discarded.
func (d *DecodedInsn) MemUop(op Uop, rd, rs, rt int, imm uint32) *DecodedInsn {
	if rd < 0 {
		return d
	}
	d.Uop, d.UD, d.US, d.UT, d.UImm = op, uint8(rd), uint8(rs), uint8(rt), imm
	return d
}

// Decoder is an optional extension of Arch: architectures that
// implement it execute from predecoded instructions. Decode examines
// the instruction starting at code[off] (code is the raw segment image
// in the target's byte order; pc is the virtual address of code[off])
// and returns its predecoded form, or nil when the bytes do not decode
// cleanly — the caller then falls back to Step, which reports the
// fault exactly as uncached execution would.
//
// Decode must be free of side effects on the processor state: operand
// modes that write registers (the VAX's autoincrement) defer those
// writes to Exec time.
type Decoder interface {
	Decode(code []byte, off int, pc uint32) *DecodedInsn
}

// RegWrite stores v into register r unless r is a hardwired-zero
// register slot (r < 0 suppresses the write; MIPS and SPARC pass -1
// for their r0/g0 destinations at decode time). It is the hoisted form
// of the per-step setReg closures the interpreters used to rebuild on
// every instruction.
func RegWrite(regs []uint32, r int, v uint32) {
	if r >= 0 {
		regs[r] = v
	}
}

// TextKey identifies the immutable decode products of one text segment:
// the architecture that decodes it plus a content hash of the bytes.
// Two processes running the same binary on the same ISA produce equal
// keys, which is what licenses sharing their predecoded instructions
// (text always loads at the same base, so even absolute pcs baked into
// decode closures agree). A planted breakpoint changes the bytes and
// therefore the key, so sessions that have mutated text can never
// publish into — or adopt from — the pristine entry.
type TextKey struct {
	Arch string
	Sum  [sha256.Size]byte
}

// SumText computes the shared-cache key for a text segment's current
// contents under the named architecture.
func SumText(archName string, text []byte) TextKey {
	return TextKey{Arch: archName, Sum: sha256.Sum256(text)}
}

var (
	regMu    sync.Mutex //ldb:lock arch.registry 50
	registry = make(map[string]Arch)
)

// Register adds an architecture to the registry; the four target
// packages call it from init.
func Register(a Arch) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[a.Name()] = a
}

// Lookup finds a registered architecture by name.
func Lookup(name string) (Arch, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	a, ok := registry[name]
	return a, ok
}

// Names lists the registered architectures, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RelocKind identifies a relocation applied by the linker.
type RelocKind int

// Relocation kinds used by the four assemblers.
const (
	RelAbs32 RelocKind = iota // 32-bit absolute address
	RelHi16                   // high 16 bits of an absolute address (MIPS lui)
	RelLo16                   // low 16 bits of an absolute address
	RelPC26                   // MIPS jal: word offset in 26 bits
	RelPC30                   // SPARC call: word displacement in 30 bits
	RelPC32                   // 32-bit pc-relative displacement
	RelHi22                   // SPARC sethi: high 22 bits
	RelLo10                   // SPARC or-immediate: low 10 bits
)

// Reloc asks the linker to patch the bytes at Off once Sym's address is
// known.
type Reloc struct {
	Off  int
	Kind RelocKind
	Sym  string
	Add  int64
}

// Syscall numbers serviced by the simulated OS.
const (
	SysExit     = 1
	SysPutInt   = 2
	SysPutChar  = 3
	SysPutStr   = 4 // arg is the address of a NUL-terminated string
	SysPutFloat = 5 // arg is the address of a double
	SysPutHex   = 6 // value printed as lowercase hexadecimal
	SysPutUint  = 7 // value printed as unsigned decimal
)
