// Package m68k simulates a Motorola 68020-flavored target: big-endian,
// variable-length instructions built from 16-bit opwords, eight data
// and eight address registers, link/unlk frame discipline, and 80-bit
// extended-precision floating storage (the paper's third float size).
//
// Iconic opwords use the real 68000 encodings (trap #n, nop, rts, link,
// unlk, jsr, Bcc); the move and arithmetic groups use a simplified
// regular encoding documented in asm.go. Floating arithmetic happens in
// double precision (as K&R C promotes anyway); the extended format
// matters for storage, which is what the debugger sees.
package m68k

import (
	"encoding/binary"

	"ldb/internal/arch"
)

// Register numbering: d0-d7 are 0-7, a0-a7 are 8-15.
const (
	D0   = 0
	D1   = 1 // syscall number
	D2   = 2 // first syscall argument
	D3   = 3 // second syscall argument
	D4   = 4
	D5   = 5
	D6   = 6
	D7   = 7
	A0   = 8
	A1   = 9
	FPr  = 14 // a6, the frame pointer
	SPr  = 15 // a7, the stack pointer
	NReg = 16
	NFrg = 8
)

// M68k implements arch.Arch.
type M68k struct{}

// Target is the singleton 68020 target.
var Target = &M68k{}

func init() { arch.Register(Target) }

// Name implements arch.Arch.
func (m *M68k) Name() string { return "m68k" }

// Order implements arch.Arch.
func (m *M68k) Order() binary.ByteOrder { return binary.BigEndian }

// WordSize implements arch.Arch.
func (m *M68k) WordSize() int { return 4 }

// BreakInstr implements arch.Arch: `trap #0`.
func (m *M68k) BreakInstr() []byte { return []byte{0x4e, 0x40} }

// NopInstr implements arch.Arch: the real 68000 nop.
func (m *M68k) NopInstr() []byte { return []byte{0x4e, 0x71} }

// InstrSize implements arch.Arch: instructions are fetched and stored
// as 16-bit words.
func (m *M68k) InstrSize() int { return 2 }

// PCAdvance implements arch.Arch.
func (m *M68k) PCAdvance() int64 { return 2 }

// NumRegs implements arch.Arch.
func (m *M68k) NumRegs() int { return NReg }

// NumFRegs implements arch.Arch.
func (m *M68k) NumFRegs() int { return NFrg }

// RegName implements arch.Arch.
func (m *M68k) RegName(i int) string {
	switch {
	case i >= 0 && i < 8:
		return "d" + string(rune('0'+i))
	case i >= 8 && i < 16:
		return "a" + string(rune('0'+i-8))
	}
	return "r?"
}

// SPReg implements arch.Arch.
func (m *M68k) SPReg() int { return SPr }

// FPReg implements arch.Arch.
func (m *M68k) FPReg() int { return FPr }

// RetReg implements arch.Arch.
func (m *M68k) RetReg() int { return D0 }

// LinkReg implements arch.Arch: jsr pushes the return address.
func (m *M68k) LinkReg() int { return -1 }

// Context implements arch.Arch: d0-d7, a0-a7, pc, flag, then the eight
// floating registers in 12-byte extended format (the struct sigcontext
// cannot serve as a context on the 68020, §4.3; this is the "other
// representation").
func (m *M68k) Context() arch.ContextLayout {
	l := arch.ContextLayout{
		Size:     72 + 12*NFrg,
		PCOff:    64,
		FlagOff:  68,
		RegOffs:  make([]int, NReg),
		FRegOffs: make([]int, NFrg),
		FRegSize: 12,
	}
	for i := range l.RegOffs {
		l.RegOffs[i] = 4 * i
	}
	for i := range l.FRegOffs {
		l.FRegOffs[i] = 72 + 12*i
	}
	return l
}

// SyscallArg implements arch.Arch.
func (m *M68k) SyscallArg(p arch.Proc, i int) uint32 { return p.Reg(D2 + i) }

// SyscallRet implements arch.Arch.
func (m *M68k) SyscallRet(p arch.Proc, v uint32) { p.SetReg(D0, v) }
