package m68k

import (
	"math"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/machine"
)

func run(t *testing.T, build func(a *Asm)) *machine.Process {
	t.Helper()
	a := NewAsm()
	build(a)
	code, relocs, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(relocs) != 0 {
		t.Fatalf("unexpected relocs: %v", relocs)
	}
	p := machine.New(Target, code, make([]byte, 4096), machine.TextBase)
	f := p.Run()
	if f.Kind != arch.FaultHalt {
		t.Fatalf("run ended with %v, want halt; pc=%#x", f, p.PC())
	}
	return p
}

func exitSeq(a *Asm) {
	a.MoveImm(D1, arch.SysExit)
	a.MoveImm(D2, 0)
	a.Trap(1)
}

func TestArithmetic(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(D2, 21)
		a.MoveImm(D3, 2)
		a.Move(D4, D2)
		a.Arith(ArMul, D4, D3) // 42
		a.Move(D5, D4)
		a.MoveImm(D6, 5)
		a.Arith(ArDiv, D5, D6) // 8
		a.Move(D7, D4)
		a.Arith(ArSub, D7, D3) // 40
		a.AddI(D7, 2)          // 42
		exitSeq(a)
	})
	if p.Reg(D4) != 42 || p.Reg(D5) != 8 || p.Reg(D7) != 42 {
		t.Errorf("d4=%d d5=%d d7=%d", p.Reg(D4), p.Reg(D5), p.Reg(D7))
	}
}

func TestMemoryAndBranches(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(A0, int32(machine.DataBase))
		a.MoveImm(D2, -2)
		a.Mem(MvStoreL, D2, A0, 0)
		a.Mem(MvLoadL, D3, A0, 0)
		a.Mem(MvLoadB, D4, A0, 0)  // big-endian: byte 0 = 0xff → -1
		a.Mem(MvLoadBu, D5, A0, 3) // 0xfe
		a.Mem(MvLoadW, D6, A0, 2)  // -2
		// Loop: sum 1..5 in d7.
		a.MoveImm(D7, 0)
		a.MoveImm(D2, 1)
		a.MoveImm(D3, 6)
		a.Label("loop")
		a.Arith(ArAdd, D7, D2)
		a.AddI(D2, 1)
		a.Cmp(D2, D3)
		a.Branch(CcNE, "loop")
		exitSeq(a)
	})
	if got := int32(p.Reg(D3)); got != 6 {
		t.Errorf("d3 = %d", got)
	}
	if got := int32(p.Reg(D4)); got != -1 {
		t.Errorf("sext byte load = %d", got)
	}
	if got := p.Reg(D5); got != 0xfe {
		t.Errorf("zext byte load = %#x", got)
	}
	if got := int32(p.Reg(D6)); got != -2 {
		t.Errorf("sext word load = %d", got)
	}
	if got := p.Reg(D7); got != 15 {
		t.Errorf("loop sum = %d", got)
	}
}

func TestLinkUnlkJsrRts(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(A0, int32(machine.TextBase)+100)
		a.JsrReg(A0 - 8) // jsr (a0)
		a.Move(D7, D0)
		exitSeq(a)
		for a.Off() < 100 {
			a.Nop()
		}
		// callee: a classic link/unlk frame
		a.Link(6, -16) // link a6, #-16
		a.MoveImm(D0, 5)
		a.Mem(MvStoreL, D0, FPr, -4) // local at -4(a6)
		a.Mem(MvLoadL, D0, FPr, -4)
		a.Arith(ArAdd, D0, D0) // 10
		a.Unlk(6)
		a.Rts()
	})
	if got := p.Reg(D7); got != 10 {
		t.Errorf("link/unlk call = %d, want 10", got)
	}
}

func TestPushPop(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(D2, 0x1234)
		a.Push(D2)
		a.Pop(D3)
		exitSeq(a)
	})
	if p.Reg(D3) != 0x1234 {
		t.Errorf("push/pop = %#x", p.Reg(D3))
	}
}

func TestFloatIncludingExtended(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(D2, 7)
		a.F(FFromI, 0, D2) // f0 = 7.0
		a.MoveImm(D2, 2)
		a.F(FFromI, 1, D2) // f1 = 2.0
		a.F(FMove, 2, 0)
		a.F(FDiv, 2, 1) // 3.5
		a.MoveImm(A0, int32(machine.DataBase))
		a.FMem(FStoreX, 2, A0, 0) // 12-byte extended store
		a.FMem(FLoadX, 3, A0, 0)
		a.F(FCmp, 3, 2)
		a.Branch(CcEQ, "ok")
		a.MoveImm(D7, 0)
		a.Bra("end")
		a.Label("ok")
		a.MoveImm(D7, 1)
		a.Label("end")
		a.F(FToI, D6, 2) // trunc(3.5) = 3
		exitSeq(a)
	})
	if p.Reg(D7) != 1 {
		t.Error("extended-precision store/load round trip failed")
	}
	if p.Reg(D6) != 3 {
		t.Errorf("ftoi = %d", p.Reg(D6))
	}
}

func TestExtendedFormatInMemory(t *testing.T) {
	// The stored extended value must be the genuine m68k 96-bit image.
	p := run(t, func(a *Asm) {
		a.MoveImm(D2, 1)
		a.F(FFromI, 0, D2)
		a.MoveImm(A0, int32(machine.DataBase))
		a.FMem(FStoreX, 0, A0, 0)
		exitSeq(a)
	})
	var img [12]byte
	if err := p.ReadBytes(machine.DataBase, img[:]); err != nil {
		t.Fatal(err)
	}
	if got := decode80(img); got != 1.0 {
		t.Errorf("extended image decodes to %g, want 1.0", got)
	}
	// exponent of 1.0 is the bias 16383 = 0x3fff
	if img[0] != 0x3f || img[1] != 0xff {
		t.Errorf("extended exponent bytes = %x %x", img[0], img[1])
	}
}

func decode80(b [12]byte) float64 {
	se := uint16(b[0])<<8 | uint16(b[1])
	exp := int(se & 0x7fff)
	var mant uint64
	for i := 0; i < 8; i++ {
		mant = mant<<8 | uint64(b[4+i])
	}
	if exp == 0 && mant == 0 {
		return 0
	}
	frac := float64(mant) / (1 << 63) / 2
	v := math.Ldexp(frac, exp-16383+1)
	if se&0x8000 != 0 {
		v = -v
	}
	return v
}

func TestTrapsFaultsPatterns(t *testing.T) {
	m := Target
	if len(m.BreakInstr()) != 2 || m.InstrSize() != 2 || m.PCAdvance() != 2 {
		t.Fatal("instruction metadata")
	}
	prog := append(append([]byte{}, m.NopInstr()...), m.BreakInstr()...)
	p := machine.New(m, prog, nil, machine.TextBase)
	f := p.Run()
	if f.Sig != arch.SigTrap || f.Code != arch.TrapBreakpoint || f.PC != machine.TextBase+2 {
		t.Errorf("nop+trap: %v", f)
	}
	a := NewAsm()
	a.Trap(14) // pause
	code, _, _ := a.Finish()
	p = machine.New(m, code, nil, machine.TextBase)
	if f := p.Run(); f.Code != arch.TrapPause {
		t.Errorf("pause: %v", f)
	}
	a = NewAsm()
	a.MoveImm(D2, 1)
	a.MoveImm(D3, 0)
	a.Arith(ArDiv, D2, D3)
	code, _, _ = a.Finish()
	p = machine.New(m, code, nil, machine.TextBase)
	if f := p.Run(); f.Sig != arch.SigFPE {
		t.Errorf("div0: %v", f)
	}
}

func TestUnsignedBranches(t *testing.T) {
	p := run(t, func(a *Asm) {
		a.MoveImm(D2, -1) // 0xffffffff: unsigned max
		a.MoveImm(D3, 1)
		a.Cmp(D2, D3) // signed: -1 < 1; unsigned: max > 1
		a.MoveImm(D4, 0)
		a.Branch(CcLT, "siglt")
		a.Bra("c1")
		a.Label("siglt")
		a.MoveImm(D4, 1)
		a.Label("c1")
		a.Cmp(D2, D3)
		a.MoveImm(D5, 0)
		a.Branch(CcHI, "unsgt")
		a.Bra("c2")
		a.Label("unsgt")
		a.MoveImm(D5, 1)
		a.Label("c2")
		exitSeq(a)
	})
	if p.Reg(D4) != 1 {
		t.Error("signed lt branch")
	}
	if p.Reg(D5) != 1 {
		t.Error("unsigned hi branch")
	}
}

func TestIllegalInstruction(t *testing.T) {
	// An opword in an unassigned major group raises SIGILL at the
	// faulting pc, like the 68020's illegal-instruction exception.
	for _, w := range []uint16{0x7000, 0x1fc0, 0x2fc0, 0x4fff, 0xffff} {
		prog := []byte{byte(w >> 8), byte(w)}
		p := machine.New(Target, prog, nil, machine.TextBase)
		f := p.Run()
		if f.Sig != arch.SigIll || f.PC != machine.TextBase {
			t.Errorf("opword %#04x: %v", w, f)
		}
	}
}
