package m68k

import (
	"math"

	"ldb/internal/arch"
)

func sigill(pc uint32) *arch.Fault {
	return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigIll, PC: pc}
}

func compareFlags(signedLess, unsignedLess, equal bool) uint32 {
	var f uint32
	if equal {
		f |= FlagZ
	}
	if signedLess {
		f |= FlagN
	}
	if unsignedLess {
		f |= FlagC
	}
	return f
}

func condTrue(cond int, flag uint32) bool {
	z := flag&FlagZ != 0
	n := flag&FlagN != 0
	c := flag&FlagC != 0
	switch cond {
	case CcRA:
		return true
	case CcEQ:
		return z
	case CcNE:
		return !z
	case CcLT:
		return n
	case CcGE:
		return !n
	case CcGT:
		return !z && !n
	case CcLE:
		return z || n
	case CcCS:
		return c
	case CcCC:
		return !c
	case CcHI:
		return !c && !z
	case CcLS:
		return c || z
	}
	return false
}

// Step implements arch.Arch.
func (m *M68k) Step(p arch.Proc) *arch.Fault {
	pc := p.PC()
	w32, f := p.Load(pc, 2)
	if f != nil {
		return f
	}
	w := uint16(w32)
	next := pc + 2

	ext16 := func() (int16, *arch.Fault) {
		v, f := p.Load(next, 2)
		if f != nil {
			return 0, f
		}
		next += 2
		return int16(v), nil
	}
	ext32 := func() (uint32, *arch.Fault) {
		v, f := p.Load(next, 4)
		if f != nil {
			return 0, f
		}
		next += 4
		return v, nil
	}
	major := w >> 12
	minor := int(w >> 8 & 15)
	rx := int(w >> 4 & 15)
	ry := int(w & 15)

	switch major {
	case 1: // moves
		switch minor {
		case MvReg:
			p.SetReg(rx, p.Reg(ry))
		case MvImm:
			v, f := ext32()
			if f != nil {
				return f
			}
			p.SetReg(rx, v)
		case MvQ:
			v, f := ext16()
			if f != nil {
				return f
			}
			p.SetReg(rx, uint32(int32(v)))
		case MvLea:
			v, f := ext32()
			if f != nil {
				return f
			}
			p.SetReg(rx, v)
		case MvLeaD:
			d, f := ext16()
			if f != nil {
				return f
			}
			p.SetReg(rx, p.Reg(ry)+uint32(int32(d)))
		case MvPush:
			if f := push(p, p.Reg(rx)); f != nil {
				return f
			}
		case MvPop:
			v, f := pop(p)
			if f != nil {
				return f
			}
			p.SetReg(rx, v)
		case MvLoadL, MvLoadB, MvLoadW, MvLoadBu, MvLoadWu:
			d, f := ext16()
			if f != nil {
				return f
			}
			addr := p.Reg(ry) + uint32(int32(d))
			size := 4
			switch minor {
			case MvLoadB, MvLoadBu:
				size = 1
			case MvLoadW, MvLoadWu:
				size = 2
			}
			v, f2 := p.Load(addr, size)
			if f2 != nil {
				return f2
			}
			switch minor {
			case MvLoadB:
				v = uint32(int32(int8(v)))
			case MvLoadW:
				v = uint32(int32(int16(v)))
			}
			p.SetReg(rx, v)
		case MvStoreL, MvStoreB, MvStoreW:
			d, f := ext16()
			if f != nil {
				return f
			}
			addr := p.Reg(ry) + uint32(int32(d))
			size := 4
			switch minor {
			case MvStoreB:
				size = 1
			case MvStoreW:
				size = 2
			}
			if f := p.Store(addr, size, p.Reg(rx)); f != nil {
				return f
			}
		default:
			return sigill(pc)
		}
	case 2: // arithmetic
		a, b := p.Reg(rx), p.Reg(ry)
		switch minor {
		case ArAdd:
			p.SetReg(rx, a+b)
		case ArSub:
			p.SetReg(rx, a-b)
		case ArMul:
			p.SetReg(rx, uint32(int32(a)*int32(b)))
		case ArDiv:
			if b == 0 {
				return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
			}
			p.SetReg(rx, uint32(int32(a)/int32(b)))
		case ArAnd:
			p.SetReg(rx, a&b)
		case ArOr:
			p.SetReg(rx, a|b)
		case ArXor:
			p.SetReg(rx, a^b)
		case ArLsl:
			p.SetReg(rx, a<<(b&31))
		case ArLsr:
			p.SetReg(rx, a>>(b&31))
		case ArAsr:
			p.SetReg(rx, uint32(int32(a)>>(b&31)))
		case ArNeg:
			p.SetReg(rx, -a)
		case ArNot:
			p.SetReg(rx, ^a)
		case ArCmp:
			p.SetFlag(compareFlags(int32(a) < int32(b), a < b, a == b))
		case ArAddI:
			d, f := ext16()
			if f != nil {
				return f
			}
			p.SetReg(rx, a+uint32(int32(d)))
		default:
			return sigill(pc)
		}
	case 4: // the real 68000 encodings
		switch {
		case w&0xfff0 == 0x4e40: // trap #n
			n := int(w & 15)
			switch n {
			case 1: // syscall: number in d1
				p.SetPC(next)
				return &arch.Fault{Kind: arch.FaultSyscall, Code: int(p.Reg(D1)), PC: pc}
			case 14: // pause
				return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: arch.TrapPause, PC: pc, Len: 2}
			default:
				return &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: n, PC: pc, Len: 2}
			}
		case w == 0x4e71: // nop
		case w == 0x4e75: // rts
			v, f := pop(p)
			if f != nil {
				return f
			}
			next = v
		case w&0xfff8 == 0x4e50: // link aN, #disp
			an := A0 + int(w&7)
			d, f := ext16()
			if f != nil {
				return f
			}
			if f := push(p, p.Reg(an)); f != nil {
				return f
			}
			p.SetReg(an, p.Reg(SPr))
			p.SetReg(SPr, p.Reg(SPr)+uint32(int32(d)))
		case w&0xfff8 == 0x4e58: // unlk aN
			an := A0 + int(w&7)
			p.SetReg(SPr, p.Reg(an))
			v, f := pop(p)
			if f != nil {
				return f
			}
			p.SetReg(an, v)
		case w == 0x4eb9: // jsr abs32
			target, f := ext32()
			if f != nil {
				return f
			}
			if f := push(p, next); f != nil {
				return f
			}
			next = target
		case w&0xfff8 == 0x4e90: // jsr (aN)
			an := A0 + int(w&7)
			if f := push(p, next); f != nil {
				return f
			}
			next = p.Reg(an)
		default:
			return sigill(pc)
		}
	case 6: // Bcc with 16-bit displacement
		cond := minor
		d, f := ext16()
		if f != nil {
			return f
		}
		if condTrue(cond, p.Flag()) {
			// The displacement is relative to the end of the extension
			// word (pc+4), matching Asm.Finish.
			next = pc + 4 + uint32(int32(d))
		}
	case 0xf: // floats
		fx, fy := rx&7, ry
		switch minor {
		case FAdd:
			p.SetFReg(fx, p.FReg(fx)+p.FReg(fy&7))
		case FSub:
			p.SetFReg(fx, p.FReg(fx)-p.FReg(fy&7))
		case FMul:
			p.SetFReg(fx, p.FReg(fx)*p.FReg(fy&7))
		case FDiv:
			p.SetFReg(fx, p.FReg(fx)/p.FReg(fy&7))
		case FNeg:
			p.SetFReg(fx, -p.FReg(fx))
		case FMove:
			p.SetFReg(fx, p.FReg(fy&7))
		case FCmp:
			a, b := p.FReg(fx), p.FReg(fy&7)
			p.SetFlag(compareFlags(a < b, a < b, a == b))
		case FFromI:
			p.SetFReg(fx, float64(int32(p.Reg(fy))))
		case FToI:
			p.SetReg(rx, uint32(int32(math.Trunc(p.FReg(fy&7)))))
		case FLoadS, FLoadD, FLoadX:
			d, f := ext16()
			if f != nil {
				return f
			}
			addr := p.Reg(fy) + uint32(int32(d))
			size := 4
			if minor == FLoadD {
				size = 8
			} else if minor == FLoadX {
				size = 10
			}
			v, f2 := p.LoadFloat(addr, size)
			if f2 != nil {
				return f2
			}
			p.SetFReg(fx, v)
		case FStoreS, FStoreD, FStoreX:
			d, f := ext16()
			if f != nil {
				return f
			}
			addr := p.Reg(fy) + uint32(int32(d))
			size := 4
			if minor == FStoreD {
				size = 8
			} else if minor == FStoreX {
				size = 10
			}
			if f := p.StoreFloat(addr, size, p.FReg(fx)); f != nil {
				return f
			}
		default:
			return sigill(pc)
		}
	default:
		return sigill(pc)
	}
	p.SetPC(next)
	return nil
}
