package m68k

import (
	"encoding/binary"
	"fmt"

	"ldb/internal/arch"
)

// The regular opword groups (majors 1, 2, 6, and 0xF). Major 4 carries
// the real 68000 encodings (trap/link/unlk/nop/rts/jsr).
//
//	opword = major<<12 | minor<<8 | rx<<4 | ry
//
// Move group (major 1) minors:
const (
	MvReg    = 0x0 // rx = ry
	MvImm    = 0x1 // rx = imm32 (ext: 4 bytes)
	MvQ      = 0x2 // rx = imm16 sign-extended (ext: 2 bytes)
	MvLoadL  = 0x3 // rx = *(ry + disp16).l
	MvStoreL = 0x4 // *(ry + disp16).l = rx
	MvLoadB  = 0x5 // rx = sext *(ry+disp16).b
	MvStoreB = 0x6
	MvLoadW  = 0x7 // rx = sext *(ry+disp16).w
	MvStoreW = 0x8
	MvLoadBu = 0x9 // zero-extended byte load
	MvLoadWu = 0xa // zero-extended word load
	MvPush   = 0xb // move.l rx, -(sp)
	MvPop    = 0xc // move.l (sp)+, rx
	MvLea    = 0xd // rx = abs32 (ext: 4 bytes, relocatable)
	MvLeaD   = 0xe // rx = ry + disp16
)

// Arithmetic group (major 2) minors: rx = rx OP ry unless noted.
const (
	ArAdd  = 0x0
	ArSub  = 0x1
	ArMul  = 0x2
	ArDiv  = 0x3
	ArAnd  = 0x4
	ArOr   = 0x5
	ArXor  = 0x6
	ArLsl  = 0x7
	ArLsr  = 0x8
	ArAsr  = 0x9
	ArNeg  = 0xa // rx = -rx
	ArNot  = 0xb // rx = ^rx
	ArCmp  = 0xc // flag = compare(rx, ry)
	ArAddI = 0xe // rx += imm16 (ext)
)

// Branch conditions (major 6, real 68000 numbering), always with a
// 16-bit displacement extension word relative to the opword end.
const (
	CcRA = 0x0 // bra
	CcHI = 0x2
	CcLS = 0x3
	CcCC = 0x4 // unsigned >=
	CcCS = 0x5 // unsigned <
	CcNE = 0x6
	CcEQ = 0x7
	CcGE = 0xc
	CcLT = 0xd
	CcGT = 0xe
	CcLE = 0xf
)

// Float group (major 0xF) minors. Two-operand like the 68881:
// fx = fx OP fy.
const (
	FAdd    = 0x0
	FSub    = 0x1
	FMul    = 0x2
	FDiv    = 0x3
	FNeg    = 0x4 // fx = -fx
	FMove   = 0x5 // fx = fy
	FCmp    = 0x6 // flag = compare(fx, fy)
	FFromI  = 0x7 // fx = float(dy)
	FToI    = 0x8 // dy? no: dx = trunc(fy): rx is the data register
	FLoadS  = 0x9 // fx = *(ay+disp16) single
	FLoadD  = 0xa
	FLoadX  = 0xb // 12-byte extended
	FStoreS = 0xc
	FStoreD = 0xd
	FStoreX = 0xe
)

// Flag bits (shared scheme with the SPARC simulator, private to each
// arch's Step).
const (
	FlagZ = 1 << 0
	FlagN = 1 << 1 // signed less-than after Cmp(a, b)
	FlagC = 1 << 2 // unsigned less-than
)

type fixup struct {
	off   int // offset of the displacement extension word
	label string
}

// Asm assembles 68k instructions.
type Asm struct {
	n      int // instructions emitted
	buf    []byte
	relocs []arch.Reloc
	labels map[string]int
	fixes  []fixup
}

// NewAsm returns a fresh assembler.
func NewAsm() *Asm { return &Asm{labels: make(map[string]int)} }

// Off returns the current offset.
func (a *Asm) Off() int { return len(a.buf) }

// Label binds name to the current offset.
func (a *Asm) Label(name string) { a.labels[name] = len(a.buf) }

func (a *Asm) w16(v uint16) {
	a.buf = append(a.buf, byte(v>>8), byte(v))
}

func (a *Asm) w32(v uint32) {
	a.buf = append(a.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func op(major, minor, rx, ry int) uint16 {
	return uint16(major&15)<<12 | uint16(minor&15)<<8 | uint16(rx&15)<<4 | uint16(ry&15)
}

// Move emits rx = ry.
func (a *Asm) Move(rx, ry int) {
	a.n++
	a.w16(op(1, MvReg, rx, ry))
}

// MoveImm emits rx = imm.
func (a *Asm) MoveImm(rx int, imm int32) {
	a.n++
	if imm >= -32768 && imm < 32768 {
		a.w16(op(1, MvQ, rx, 0))
		a.w16(uint16(imm))
		return
	}
	a.w16(op(1, MvImm, rx, 0))
	a.w32(uint32(imm))
}

// Lea emits rx = address of sym+add.
func (a *Asm) Lea(rx int, sym string, add int64) {
	a.n++
	a.w16(op(1, MvLea, rx, 0))
	a.relocs = append(a.relocs, arch.Reloc{Off: len(a.buf), Kind: arch.RelAbs32, Sym: sym, Add: add})
	a.w32(0)
}

// LeaD emits rx = ry + disp.
func (a *Asm) LeaD(rx, ry int, disp int16) {
	a.n++
	a.w16(op(1, MvLeaD, rx, ry))
	a.w16(uint16(disp))
}

// Mem emits a load or store minor with a 16-bit displacement.
func (a *Asm) Mem(minor, rx, ry int, disp int16) {
	a.n++
	a.w16(op(1, minor, rx, ry))
	a.w16(uint16(disp))
}

// Push emits move.l rx, -(sp).
func (a *Asm) Push(rx int) {
	a.n++
	a.w16(op(1, MvPush, rx, 0))
}

// Pop emits move.l (sp)+, rx.
func (a *Asm) Pop(rx int) {
	a.n++
	a.w16(op(1, MvPop, rx, 0))
}

// Arith emits rx = rx OP ry.
func (a *Asm) Arith(minor, rx, ry int) {
	a.n++
	a.w16(op(2, minor, rx, ry))
}

// AddI emits rx += imm.
func (a *Asm) AddI(rx int, imm int16) {
	a.n++
	a.w16(op(2, ArAddI, rx, 0))
	a.w16(uint16(imm))
}

// Cmp emits flag = compare(rx, ry).
func (a *Asm) Cmp(rx, ry int) {
	a.n++
	a.w16(op(2, ArCmp, rx, ry))
}

// Branch emits Bcc to a local label.
func (a *Asm) Branch(cond int, label string) {
	a.n++
	a.w16(0x6000 | uint16(cond&15)<<8)
	a.fixes = append(a.fixes, fixup{off: len(a.buf), label: label})
	a.w16(0)
}

// Bra emits an unconditional branch.
func (a *Asm) Bra(label string) { a.Branch(CcRA, label) }

// Trap emits trap #n.
func (a *Asm) Trap(n int) {
	a.n++
	a.w16(0x4e40 | uint16(n&15))
}

// Nop emits the 68000 nop.
func (a *Asm) Nop() {
	a.n++
	a.w16(0x4e71)
}

// Rts emits rts.
func (a *Asm) Rts() {
	a.n++
	a.w16(0x4e75)
}

// Link emits link aN, #disp (disp is negative: the frame size).
func (a *Asm) Link(an int, disp int16) {
	a.n++
	a.w16(0x4e50 | uint16(an&7))
	a.w16(uint16(disp))
}

// Unlk emits unlk aN.
func (a *Asm) Unlk(an int) {
	a.n++
	a.w16(0x4e58 | uint16(an&7))
}

// Jsr emits jsr abs32 to a global symbol.
func (a *Asm) Jsr(sym string) {
	a.n++
	a.w16(0x4eb9)
	a.relocs = append(a.relocs, arch.Reloc{Off: len(a.buf), Kind: arch.RelAbs32, Sym: sym})
	a.w32(0)
}

// JsrReg emits jsr (aN) for calls through pointers.
func (a *Asm) JsrReg(an int) {
	a.n++
	a.w16(0x4e90 | uint16(an&7))
}

// F emits a float-group opword (fx = fx OP fy and friends).
func (a *Asm) F(minor, fx, fy int) {
	a.n++
	a.w16(op(0xf, minor, fx, fy))
}

// FMem emits a float load/store minor with a displacement: the fx field
// is the float register, fy the address register.
func (a *Asm) FMem(minor, fx, ay int, disp int16) {
	a.n++
	a.w16(op(0xf, minor, fx, ay))
	a.w16(uint16(disp))
}

// Finish resolves branches and returns the code and relocations.
func (a *Asm) Finish() ([]byte, []arch.Reloc, error) {
	for _, f := range a.fixes {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, nil, fmt.Errorf("m68k: undefined label %q", f.label)
		}
		disp := target - (f.off + 2)
		if disp < -32768 || disp > 32767 {
			return nil, nil, fmt.Errorf("m68k: branch to %q out of range", f.label)
		}
		binary.BigEndian.PutUint16(a.buf[f.off:], uint16(int16(disp)))
	}
	return a.buf, a.relocs, nil
}

// Labels exposes bound labels.
func (a *Asm) Labels() map[string]int { return a.labels }

// Instrs reports how many instructions have been emitted.
func (a *Asm) Instrs() int { return a.n }
