package m68k

import (
	"math"

	"ldb/internal/arch"
)

// push and pop are the stack helpers Step used to rebuild as closures
// every instruction, hoisted to package level so the decoded handlers
// and the interpreter share one definition (including the quirk that a
// faulting push leaves SP decremented).
func push(p arch.Proc, v uint32) *arch.Fault {
	sp := p.Reg(SPr) - 4
	p.SetReg(SPr, sp)
	return p.Store(sp, 4, v)
}

func pop(p arch.Proc) (uint32, *arch.Fault) {
	sp := p.Reg(SPr)
	v, f := p.Load(sp, 4)
	if f != nil {
		return 0, f
	}
	p.SetReg(SPr, sp+4)
	return v, nil
}

// Decode implements arch.Decoder. 68020 instructions are one 16-bit
// word plus zero, one, or two extension words; the extensions are read
// from the segment image here, so Len records the true byte length and
// the handlers never re-fetch them. Register fields are 4 bits and the
// register file is 16 long, so the handlers index regs directly. Words
// that do not decode (or whose extensions run off the segment) return
// nil for the Step fallback.
func (m *M68k) Decode(code []byte, off int, pc uint32) *arch.DecodedInsn {
	if off < 0 || off+2 > len(code) || off&1 != 0 {
		return nil
	}
	ord := m.Order()
	w := ord.Uint16(code[off : off+2])

	ext16 := func() (int16, bool) {
		if off+4 > len(code) {
			return 0, false
		}
		return int16(ord.Uint16(code[off+2 : off+4])), true
	}
	ext32 := func() (uint32, bool) {
		if off+6 > len(code) {
			return 0, false
		}
		return ord.Uint32(code[off+2 : off+6]), true
	}
	done := func(n uint32, x func(p arch.Proc, regs []uint32)) *arch.DecodedInsn {
		next := pc + n
		return &arch.DecodedInsn{Len: n, Exec: func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			x(p, regs)
			return next, nil
		}}
	}
	raw := func(n uint32, x func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault)) *arch.DecodedInsn {
		return &arch.DecodedInsn{Len: n, Exec: x}
	}
	// rawT marks control-transfer and trapping instructions (trap, rts,
	// jsr, Bcc) that may not fall through to pc+Len; superblock
	// formation ends a fused run at the first one.
	rawT := func(n uint32, x func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault)) *arch.DecodedInsn {
		return &arch.DecodedInsn{Len: n, Exec: x, Flags: arch.InsnTerm}
	}

	minor := int(w >> 8 & 15)
	rx := int(w >> 4 & 15)
	ry := int(w & 15)

	switch w >> 12 {
	case 1: // moves
		switch minor {
		case MvReg:
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] = regs[ry] }).
				AluUop(arch.UopAddI, rx, ry, 0, 0)
		case MvImm, MvLea:
			v, ok := ext32()
			if !ok {
				return nil
			}
			return done(6, func(p arch.Proc, regs []uint32) { regs[rx] = v }).
				AluUop(arch.UopConst, rx, 0, 0, v)
		case MvQ:
			d, ok := ext16()
			if !ok {
				return nil
			}
			v := uint32(int32(d))
			return done(4, func(p arch.Proc, regs []uint32) { regs[rx] = v }).
				AluUop(arch.UopConst, rx, 0, 0, v)
		case MvLeaD:
			d, ok := ext16()
			if !ok {
				return nil
			}
			disp := uint32(int32(d))
			return done(4, func(p arch.Proc, regs []uint32) { regs[rx] = regs[ry] + disp }).
				AluUop(arch.UopAddI, rx, ry, 0, disp)
		case MvPush:
			return raw(2, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if f := push(p, regs[rx]); f != nil {
					return 0, f
				}
				return pc + 2, nil
			})
		case MvPop:
			return raw(2, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				v, f := pop(p)
				if f != nil {
					return 0, f
				}
				regs[rx] = v
				return pc + 2, nil
			})
		case MvLoadL, MvLoadB, MvLoadW, MvLoadBu, MvLoadWu:
			d, ok := ext16()
			if !ok {
				return nil
			}
			disp := uint32(int32(d))
			size := 4
			switch minor {
			case MvLoadB, MvLoadBu:
				size = 1
			case MvLoadW, MvLoadWu:
				size = 2
			}
			signed := 0
			switch minor {
			case MvLoadB:
				signed = 1
			case MvLoadW:
				signed = 2
			}
			return raw(4, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				v, f := p.Load(regs[ry]+disp, size)
				if f != nil {
					return 0, f
				}
				switch signed {
				case 1:
					v = uint32(int32(int8(v)))
				case 2:
					v = uint32(int32(int16(v)))
				}
				regs[rx] = v
				return pc + 4, nil
			})
		case MvStoreL, MvStoreB, MvStoreW:
			d, ok := ext16()
			if !ok {
				return nil
			}
			disp := uint32(int32(d))
			size := 4
			switch minor {
			case MvStoreB:
				size = 1
			case MvStoreW:
				size = 2
			}
			return raw(4, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if f := p.Store(regs[ry]+disp, size, regs[rx]); f != nil {
					return 0, f
				}
				return pc + 4, nil
			})
		}
		return nil
	case 2: // arithmetic
		switch minor {
		case ArAdd:
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] += regs[ry] }).
				AluUop(arch.UopAdd, rx, rx, ry, 0)
		case ArSub:
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] -= regs[ry] }).
				AluUop(arch.UopSub, rx, rx, ry, 0)
		case ArMul:
			// The low 32 bits of a product are the same signed or unsigned,
			// so the generic unsigned UopMul matches.
			return done(2, func(p arch.Proc, regs []uint32) {
				regs[rx] = uint32(int32(regs[rx]) * int32(regs[ry]))
			}).AluUop(arch.UopMul, rx, rx, ry, 0)
		case ArDiv:
			return raw(2, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				b := regs[ry]
				if b == 0 {
					return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigFPE, PC: pc}
				}
				regs[rx] = uint32(int32(regs[rx]) / int32(b))
				return pc + 2, nil
			})
		case ArAnd:
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] &= regs[ry] }).
				AluUop(arch.UopAnd, rx, rx, ry, 0)
		case ArOr:
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] |= regs[ry] }).
				AluUop(arch.UopOr, rx, rx, ry, 0)
		case ArXor:
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] ^= regs[ry] }).
				AluUop(arch.UopXor, rx, rx, ry, 0)
		case ArLsl:
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] <<= regs[ry] & 31 }).
				AluUop(arch.UopShl, rx, rx, ry, 0)
		case ArLsr:
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] >>= regs[ry] & 31 }).
				AluUop(arch.UopShr, rx, rx, ry, 0)
		case ArAsr:
			return done(2, func(p arch.Proc, regs []uint32) {
				regs[rx] = uint32(int32(regs[rx]) >> (regs[ry] & 31))
			}).AluUop(arch.UopSar, rx, rx, ry, 0)
		case ArNeg:
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] = -regs[rx] })
		case ArNot:
			// ^a == ^(a|a); there is no hardwired-zero register to pair
			// with, so NOT compiles to a self-NOR.
			return done(2, func(p arch.Proc, regs []uint32) { regs[rx] = ^regs[rx] }).
				AluUop(arch.UopNor, rx, rx, rx, 0)
		case ArCmp:
			// compareFlags lays out equal/signed-less/unsigned-less in the
			// same bits as arch.SubFlags (see condTrue), so the generic
			// compare micro-op produces identical flags.
			return done(2, func(p arch.Proc, regs []uint32) {
				a, b := regs[rx], regs[ry]
				p.SetFlag(compareFlags(int32(a) < int32(b), a < b, a == b))
			}).FlagUop(arch.UopCmp, rx, ry, 0)
		case ArAddI:
			d, ok := ext16()
			if !ok {
				return nil
			}
			disp := uint32(int32(d))
			return done(4, func(p arch.Proc, regs []uint32) { regs[rx] += disp }).
				AluUop(arch.UopAddI, rx, rx, 0, disp)
		}
		return nil
	case 4: // the real 68000 encodings
		switch {
		case w&0xfff0 == 0x4e40: // trap #n
			n := int(w & 15)
			switch n {
			case 1: // syscall: number in d1
				return rawT(2, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					p.SetPC(pc + 2)
					return 0, &arch.Fault{Kind: arch.FaultSyscall, Code: int(regs[D1]), PC: pc}
				})
			case 14: // pause
				return rawT(2, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: arch.TrapPause, PC: pc, Len: 2}
				})
			default:
				return rawT(2, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
					return 0, &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: n, PC: pc, Len: 2}
				})
			}
		case w == 0x4e71: // nop
			return done(2, func(arch.Proc, []uint32) {})
		case w == 0x4e75: // rts
			return rawT(2, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				v, f := pop(p)
				if f != nil {
					return 0, f
				}
				return v, nil
			})
		case w&0xfff8 == 0x4e50: // link aN, #disp
			an := A0 + int(w&7)
			d, ok := ext16()
			if !ok {
				return nil
			}
			disp := uint32(int32(d))
			return raw(4, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if f := push(p, regs[an]); f != nil {
					return 0, f
				}
				regs[an] = regs[SPr]
				regs[SPr] += disp
				return pc + 4, nil
			})
		case w&0xfff8 == 0x4e58: // unlk aN
			an := A0 + int(w&7)
			return raw(2, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				regs[SPr] = regs[an]
				v, f := pop(p)
				if f != nil {
					return 0, f
				}
				regs[an] = v
				return pc + 2, nil
			})
		case w == 0x4eb9: // jsr abs32
			target, ok := ext32()
			if !ok {
				return nil
			}
			return rawT(6, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if f := push(p, pc+6); f != nil {
					return 0, f
				}
				return target, nil
			})
		case w&0xfff8 == 0x4e90: // jsr (aN)
			an := A0 + int(w&7)
			return rawT(2, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if f := push(p, pc+2); f != nil {
					return 0, f
				}
				return regs[an], nil
			})
		}
		return nil
	case 6: // Bcc with 16-bit displacement
		cond := minor
		d, ok := ext16()
		if !ok {
			return nil
		}
		// The displacement is relative to the end of the extension word
		// (pc+4), matching Asm.Finish.
		target := pc + 4 + uint32(int32(d))
		next := pc + 4
		// Compile the condition to a truth table over the three flag bits
		// (the same NZC encoding arch.SubFlags produces), so the fused
		// engine tests the branch with one shift instead of re-evaluating
		// the condition code.
		var tbl uint32
		for fl := uint32(0); fl < 8; fl++ {
			if condTrue(cond, fl) {
				tbl |= 1 << fl
			}
		}
		return rawT(4, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
			if condTrue(cond, *flag) {
				return target, nil
			}
			return next, nil
		}).TermUop(arch.UopBcc, int(tbl), 0, 0, target)
	case 0xf: // floats
		fx, fy := rx&7, ry
		switch minor {
		case FAdd:
			return done(2, func(p arch.Proc, regs []uint32) { p.SetFReg(fx, p.FReg(fx)+p.FReg(fy&7)) })
		case FSub:
			return done(2, func(p arch.Proc, regs []uint32) { p.SetFReg(fx, p.FReg(fx)-p.FReg(fy&7)) })
		case FMul:
			return done(2, func(p arch.Proc, regs []uint32) { p.SetFReg(fx, p.FReg(fx)*p.FReg(fy&7)) })
		case FDiv:
			return done(2, func(p arch.Proc, regs []uint32) { p.SetFReg(fx, p.FReg(fx)/p.FReg(fy&7)) })
		case FNeg:
			return done(2, func(p arch.Proc, regs []uint32) { p.SetFReg(fx, -p.FReg(fx)) })
		case FMove:
			return done(2, func(p arch.Proc, regs []uint32) { p.SetFReg(fx, p.FReg(fy&7)) })
		case FCmp:
			return done(2, func(p arch.Proc, regs []uint32) {
				a, b := p.FReg(fx), p.FReg(fy&7)
				p.SetFlag(compareFlags(a < b, a < b, a == b))
			})
		case FFromI:
			return done(2, func(p arch.Proc, regs []uint32) { p.SetFReg(fx, float64(int32(regs[fy]))) })
		case FToI:
			return done(2, func(p arch.Proc, regs []uint32) {
				regs[rx] = uint32(int32(math.Trunc(p.FReg(fy & 7))))
			})
		case FLoadS, FLoadD, FLoadX:
			d, ok := ext16()
			if !ok {
				return nil
			}
			disp := uint32(int32(d))
			size := 4
			if minor == FLoadD {
				size = 8
			} else if minor == FLoadX {
				size = 10
			}
			return raw(4, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				v, f := p.LoadFloat(regs[fy]+disp, size)
				if f != nil {
					return 0, f
				}
				p.SetFReg(fx, v)
				return pc + 4, nil
			})
		case FStoreS, FStoreD, FStoreX:
			d, ok := ext16()
			if !ok {
				return nil
			}
			disp := uint32(int32(d))
			size := 4
			if minor == FStoreD {
				size = 8
			} else if minor == FStoreX {
				size = 10
			}
			return raw(4, func(p arch.Proc, regs []uint32, flag *uint32, pc uint32) (uint32, *arch.Fault) {
				if f := p.StoreFloat(regs[fy]+disp, size, p.FReg(fx)); f != nil {
					return 0, f
				}
				return pc + 4, nil
			})
		}
		return nil
	}
	return nil
}
