package locstats

import (
	"sort"
	"strings"
	"testing"

	"ldb/internal/analysis"

	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
)

func TestCollectAndShape(t *testing.T) {
	root, err := FindRoot(".")
	if err != nil {
		t.Skip(err)
	}
	table, err := Collect(root)
	if err != nil {
		t.Fatal(err)
	}
	// The T1 shape the paper reports: per-target machine-dependent code
	// is small; the shared core dwarfs every column; the MIPS needs
	// more debugger-side code than the others (no frame pointer).
	shared := SharedTotal(table)
	if shared < 5000 {
		t.Fatalf("shared total = %d; classification is broken", shared)
	}
	for _, target := range Targets {
		per := PerTargetTotal(table, target)
		if per == 0 {
			t.Fatalf("no machine-dependent lines for %s", target)
		}
		if per*3 > shared {
			t.Fatalf("%s machine-dependent code (%d) not small against shared (%d)", target, per, shared)
		}
	}
	mipsDbg := table[RowDebugger]["mips"]
	for _, other := range []string{"sparc", "m68k", "vax"} {
		if mipsDbg <= table[RowDebugger][other] {
			t.Errorf("mips debugger code (%d) should exceed %s (%d): the runtime procedure table walker",
				mipsDbg, other, table[RowDebugger][other])
		}
	}
	// Per-target PostScript exists and is tiny (§4.3: 13-18 lines).
	for _, target := range Targets {
		n := table[RowPS][target]
		if n == 0 || n > 40 {
			t.Errorf("%s PostScript lines = %d", target, n)
		}
	}
}

func TestClassify(t *testing.T) {
	// The target argument is what analysis.FileTargets reports: the ISA
	// package the file lives in, or its //ldb:target annotation.
	cases := []struct {
		rel    string
		target string
		row    string
		col    string
		ok     bool
	}{
		{"internal/arch/mips/mips.go", "mips", RowDebugger, "mips", true},
		{"internal/arch/mips/exec.go", "mips", RowSimulator, "mips", true},
		{"internal/arch/mipsbe/x.go", "mipsbe", RowSimulator, "mips", true},
		{"internal/arch/vax/asm.go", "vax", RowSimulator, "vax", true},
		{"internal/arch/arch.go", "", RowDebugger, "shared", true},
		{"internal/frame/mips.go", "mips", RowDebugger, "mips", true},
		{"internal/frame/fp.go", "", RowDebugger, "shared", true},
		{"internal/codegen/sparc.go", "sparc", RowBackend, "sparc", true},
		{"internal/codegen/codegen.go", "", RowBackend, "shared", true},
		{"internal/cc/parse.go", "", RowBackend, "shared", true},
		{"internal/core/target.go", "", RowDebugger, "shared", true},
		{"internal/core/target_test.go", "", "", "", false},
		{"README.md", "", "", "", false},
		{"cmd/experiments/main.go", "", "", "", false},
		{"internal/analysis/machdep.go", "", "", "", false},
		{"cmd/ldbvet/main.go", "", "", "", false},
	}
	for _, c := range cases {
		row, col, ok := classify(c.rel, c.target)
		if ok != c.ok || row != c.row || col != c.col {
			t.Errorf("classify(%q, %q) = %q %q %v, want %q %q %v", c.rel, c.target, row, col, ok, c.row, c.col, c.ok)
		}
	}
}

// TestAgreesWithMachdep pins the satellite claim: locstats and the
// machdep analyzer agree on the machine-dependent file set. A file gets
// a per-target column exactly when the analyzer assigns it a target,
// and every per-target file the analyzer knows is counted in some row.
func TestAgreesWithMachdep(t *testing.T) {
	root, err := FindRoot(".")
	if err != nil {
		t.Skip(err)
	}
	repo, err := analysis.Parse(analysis.Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	targets := analysis.FileTargets(repo)
	if len(targets) == 0 {
		t.Fatal("analyzer saw no files")
	}
	var machineDependent, counted int
	for rel, target := range targets {
		row, col, ok := classify(rel, target)
		if target != "" {
			machineDependent++
			if !ok {
				t.Errorf("%s: analyzer says %s-specific, locstats does not count it", rel, target)
				continue
			}
			want := target
			if want == "mipsbe" {
				want = "mips"
			}
			if col != want {
				t.Errorf("%s: analyzer says %s, locstats column %s", rel, target, col)
			}
		} else if ok && col != "shared" {
			t.Errorf("%s: analyzer says shared, locstats column %s (row %s)", rel, col, row)
		}
		if ok {
			counted++
		}
	}
	if machineDependent == 0 {
		t.Fatal("analyzer found no machine-dependent files")
	}
	if counted == 0 {
		t.Fatal("locstats counted no files")
	}
}

func TestFormat(t *testing.T) {
	table := Table{
		RowDebugger: {"mips": 10, "shared": 100},
		RowPS:       {"mips": 2},
	}
	out := Format(table)
	if len(out) == 0 {
		t.Fatal("empty format")
	}
	for _, want := range []string{"Debugger (Go)", "PostScript", "total", "shared"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Sorted enumerates every populated cell, deterministically.
	keys := Sorted(table)
	want := []string{RowDebugger + "/mips", RowDebugger + "/shared", RowPS + "/mips"}
	sort.Strings(want)
	if len(keys) != len(want) {
		t.Fatalf("Sorted = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", keys, want)
		}
	}
}
