// Package locstats regenerates the paper's §4.3 table — the lines of
// machine-dependent code that collaborate to implement each target,
// against the machine-independent remainder — by classifying and
// counting this repository's own sources. cmd/locstats and the T1
// benchmark print it.
//
// Which files are machine-dependent, and for which target, comes from
// the machdep analyzer's view of the package graph (analysis.FileTargets:
// membership in an ISA package, or a //ldb:target annotation), not from
// path guessing — the table counts exactly the boundary ldbvet
// enforces. Only the row (debugger, simulator, back end) is assigned
// here, from the package's layer.
package locstats

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ldb/internal/analysis"
	"ldb/internal/core"
)

// Targets lists the columns in paper order (the two MIPS byte orders
// share one column, as the paper's single MIPS column covered both).
var Targets = []string{"mips", "m68k", "sparc", "vax"}

// Row names (the paper's rows were Debugger (M3) / PostScript /
// Nub (C, asm); ours adds the simulator and compiler back ends we had
// to build in place of real hardware and lcc).
const (
	RowDebugger  = "Debugger (Go)"
	RowPS        = "PostScript"
	RowSimulator = "Simulator (Go)"
	RowBackend   = "Back end (Go)"
)

// Rows in display order.
var Rows = []string{RowDebugger, RowPS, RowSimulator, RowBackend}

// Table maps row → target (or "shared") → line count.
type Table map[string]map[string]int

// countFile counts non-blank, non-test lines of a Go file.
func countFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n, nil
}

// classify maps a repo-relative Go file plus the machdep analyzer's
// target for it ("" when shared, "mipsbe" folded into the paper's
// single MIPS column) to (row, column). The column is the analyzer's
// verdict; only the row — which layer of the system the file belongs
// to — is read off the path. The analysis suite and its command are
// tooling about the debugger, not part of it, and are not counted.
func classify(rel, target string) (row, col string, ok bool) {
	rel = filepath.ToSlash(rel)
	if strings.HasSuffix(rel, "_test.go") || !strings.HasSuffix(rel, ".go") {
		return "", "", false
	}
	col = target
	if col == "mipsbe" {
		col = "mips"
	}
	if col == "" {
		col = "shared"
	}
	switch {
	case strings.HasPrefix(rel, "internal/analysis/"), strings.HasPrefix(rel, "cmd/ldbvet/"):
		return "", "", false
	case strings.HasPrefix(rel, "internal/arch/"):
		parts := strings.Split(rel, "/")
		if len(parts) < 4 {
			return RowDebugger, "shared", true // the Arch interface itself
		}
		// The metadata file (break/nop patterns, context layout,
		// register roles) is the debugger-facing machine-dependent
		// data; the assembler, interpreter, and scheduler are the
		// simulated hardware and its assembler.
		if parts[3] == parts[2]+".go" {
			return RowDebugger, col, true
		}
		return RowSimulator, col, true
	case strings.HasPrefix(rel, "internal/codegen/"),
		strings.HasPrefix(rel, "internal/cc/"),
		strings.HasPrefix(rel, "internal/asm/"),
		strings.HasPrefix(rel, "internal/link/"),
		strings.HasPrefix(rel, "internal/driver/"):
		return RowBackend, col, true
	case strings.HasPrefix(rel, "internal/machine/"):
		return RowSimulator, col, true
	case strings.HasPrefix(rel, "internal/"), strings.HasPrefix(rel, "cmd/ldb"):
		return RowDebugger, col, true
	}
	return "", "", false
}

// Collect parses the repository rooted at root (through the analysis
// loader, so the file set and per-file targets are exactly the machdep
// analyzer's) and builds the table.
func Collect(root string) (Table, error) {
	table := Table{}
	add := func(row, col string, n int) {
		if table[row] == nil {
			table[row] = map[string]int{}
		}
		table[row][col] += n
	}
	repo, err := analysis.Parse(analysis.Config{Root: root})
	if err != nil {
		return nil, err
	}
	for rel, target := range analysis.FileTargets(repo) {
		row, col, ok := classify(rel, target)
		if !ok {
			continue
		}
		n, err := countFile(filepath.Join(root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		add(row, col, n)
	}
	// The machine-dependent PostScript is compiled into the binary.
	for name, n := range core.ArchPSLines() {
		if name == "mipsbe" {
			name = "mips"
		}
		add(RowPS, name, n)
	}
	add(RowPS, "shared", core.PreludeLines())
	return table, nil
}

// Format renders the table the way the paper's §4.3 table reads.
func Format(t Table) string {
	var b strings.Builder
	cols := append(append([]string{}, Targets...), "shared")
	fmt.Fprintf(&b, "%-16s", "")
	for _, c := range cols {
		fmt.Fprintf(&b, "%8s", c)
	}
	b.WriteString("\n")
	for _, row := range Rows {
		fmt.Fprintf(&b, "%-16s", row)
		for _, c := range cols {
			fmt.Fprintf(&b, "%8d", t[row][c])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-16s", "total")
	for _, c := range cols {
		sum := 0
		for _, row := range Rows {
			sum += t[row][c]
		}
		fmt.Fprintf(&b, "%8d", sum)
	}
	b.WriteString("\n")
	return b.String()
}

// PerTargetTotal sums the machine-dependent lines for one target.
func PerTargetTotal(t Table, target string) int {
	sum := 0
	for _, row := range Rows {
		sum += t[row][target]
	}
	return sum
}

// SharedTotal sums the machine-independent lines.
func SharedTotal(t Table) int { return PerTargetTotal(t, "shared") }

// FindRoot locates the module root (the directory containing go.mod),
// starting from dir.
func FindRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("locstats: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Sorted returns the table's row/col pairs deterministically (handy in
// tests).
func Sorted(t Table) []string {
	var keys []string
	for row, cols := range t {
		for col := range cols {
			keys = append(keys, row+"/"+col)
		}
	}
	sort.Strings(keys)
	return keys
}
