package cc

import (
	"strings"
	"testing"
)

var testConf = &TargetConf{Name: "test", LDoubleSize: 8}

// fibSrc is the example program of Fig. 1.
const fibSrc = `
void fib(int n)
{
	static int a[20];
	if (n > 20) n = 20;
	a[0] = a[1] = 1;
	{	int i;
		for (i=2; i<n; i++)
			a[i] = a[i-1] + a[i-2];
	}
	{	int j;
		for (j=0; j<n; j++)
			printf("%d ", a[j]);
	}
	printf("\n");
}
int main() { fib(10); return 0; }
`

func compile(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := Compile(src, "test.c", testConf)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return u
}

func compileErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := Compile(src, "test.c", testConf)
	if err == nil {
		t.Fatalf("Compile(%q): expected error containing %q", src, want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Compile(%q): error %q does not contain %q", src, err, want)
	}
}

func TestFibCompiles(t *testing.T) {
	u := compile(t, fibSrc)
	if len(u.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(u.Funcs))
	}
	fib := u.Funcs[0]
	if fib.Sym.Name != "fib" {
		t.Fatalf("first func = %s", fib.Sym.Name)
	}
	if len(fib.Params) != 1 || fib.Params[0].Name != "n" {
		t.Fatalf("params: %v", fib.Params)
	}
	if len(fib.Statics) != 1 || fib.Statics[0].Name != "a" {
		t.Fatalf("statics: %v", fib.Statics)
	}
	if len(fib.Locals) != 2 {
		t.Fatalf("locals: %v", fib.Locals)
	}
	// Fig. 1 shows 14 stopping points (0-13) for fib.
	if len(fib.Stops) != 14 {
		for _, s := range fib.Stops {
			t.Logf("stop %d at %v", s.Index, s.Pos)
		}
		t.Fatalf("stopping points = %d, want 14", len(fib.Stops))
	}
}

func TestUplinkTree(t *testing.T) {
	// Fig. 2: i's uplink is a; j's uplink is a; a's uplink is n.
	u := compile(t, fibSrc)
	fib := u.Funcs[0]
	var n, a, i, j *Symbol
	for _, s := range u.Syms {
		switch s.Name {
		case "n":
			n = s
		case "a":
			a = s
		case "i":
			i = s
		case "j":
			j = s
		}
	}
	if n == nil || a == nil || i == nil || j == nil {
		t.Fatal("missing symbols")
	}
	if i.Uplink != a || j.Uplink != a {
		t.Fatalf("i.Uplink=%v j.Uplink=%v, want a for both", i.Uplink, j.Uplink)
	}
	if a.Uplink != n {
		t.Fatalf("a.Uplink = %v, want n", a.Uplink)
	}
	if n.Uplink != fib.Sym {
		t.Fatalf("n.Uplink = %v, want fib", n.Uplink)
	}
	// The stopping point in the j-loop condition sees j (9th element
	// of fib's stopping-point array per §2).
	sp := fib.Stops[9]
	if sp.Visible != j {
		t.Fatalf("stop 9 sees %v, want j", sp.Visible)
	}
	// Walking up from stop 9: j, a, n, fib are visible.
	var names []string
	for s := sp.Visible; s != nil; s = s.Uplink {
		names = append(names, s.Name)
	}
	want := []string{"j", "a", "n", "fib"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("visible chain = %v, want %v", names, want)
	}
}

func TestStopPointAnchors(t *testing.T) {
	u := compile(t, fibSrc)
	seen := map[int]bool{}
	for _, f := range u.Funcs {
		for _, s := range f.Stops {
			if seen[s.AnchorIdx] {
				t.Fatalf("anchor index %d reused", s.AnchorIdx)
			}
			seen[s.AnchorIdx] = true
		}
	}
	for _, f := range u.Funcs {
		for _, s := range f.Statics {
			if seen[s.AnchorIdx] {
				t.Fatalf("static anchor index %d collides", s.AnchorIdx)
			}
			seen[s.AnchorIdx] = true
		}
	}
	if len(seen) != u.AnchorWords {
		t.Fatalf("anchor words = %d, indices = %d", u.AnchorWords, len(seen))
	}
	if !strings.HasPrefix(u.AnchorSym, "_stanchor__V") {
		t.Fatalf("anchor symbol = %q", u.AnchorSym)
	}
}

func TestTypesAndSizes(t *testing.T) {
	m68k := &TargetConf{Name: "m68k", LDoubleSize: 12}
	cases := []struct {
		ty   *Type
		conf *TargetConf
		size int
	}{
		{CharType, testConf, 1},
		{ShortType, testConf, 2},
		{IntType, testConf, 4},
		{FloatType, testConf, 4},
		{DoubleType, testConf, 8},
		{LDoubleType, testConf, 8},
		{LDoubleType, m68k, 12},
		{PtrTo(IntType), testConf, 4},
		{ArrayOf(IntType, 20), testConf, 80},
	}
	for _, c := range cases {
		if got := c.ty.Size(c.conf); got != c.size {
			t.Errorf("%s size on %s = %d, want %d", c.ty, c.conf.Name, got, c.size)
		}
	}
}

func TestStructLayout(t *testing.T) {
	u := compile(t, `
struct point { char tag; short s; int x; double d; };
struct point g;
int size() { return sizeof(struct point); }
`)
	var st *Type
	for _, s := range u.Globals {
		if s.Name == "g" {
			st = s.Type
		}
	}
	if st == nil || st.Kind != TyStruct {
		t.Fatal("missing struct global")
	}
	offs := map[string]int{}
	for _, f := range st.Fields {
		offs[f.Name] = f.Off
	}
	if offs["tag"] != 0 || offs["s"] != 2 || offs["x"] != 4 || offs["d"] != 8 {
		t.Fatalf("offsets: %v", offs)
	}
	if st.Size(testConf) != 16 {
		t.Fatalf("struct size = %d", st.Size(testConf))
	}
}

func TestDeclStrings(t *testing.T) {
	cases := []struct {
		ty   *Type
		name string
		want string
	}{
		{IntType, "i", "int i"},
		{ArrayOf(IntType, 20), "a", "int a[20]"},
		{PtrTo(CharType), "s", "char *s"},
		{PtrTo(ArrayOf(IntType, 3)), "p", "int (*p)[3]"},
		{&Type{Kind: TyFunc, Base: IntType, Params: []*Type{IntType}}, "f", "int f(int)"},
	}
	for _, c := range cases {
		if got := c.ty.Decl(c.name); got != c.want {
			t.Errorf("Decl = %q, want %q", got, c.want)
		}
	}
}

func TestConversions(t *testing.T) {
	u := compile(t, `
double mix(int i, float f, char c) { return i + f + c; }
`)
	ret := u.Funcs[0].Body.Body[0]
	if ret.Op != SReturn {
		t.Fatalf("statement is %v", ret.Op)
	}
	// i + f + c is computed in double: the whole tree has double type.
	if ret.Expr.Type.Kind != TyDouble {
		t.Fatalf("return expr type = %s", ret.Expr.Type)
	}
}

func TestPointerArithmeticTypes(t *testing.T) {
	u := compile(t, `
int deref(int *p, int i) { return p[i] + *(p + 1); }
int diff(int *p, int *q) { return q - p; }
`)
	if u.Funcs[0].Sym.Type.Base.Kind != TyInt {
		t.Fatal("return type")
	}
}

func TestSizeofIsTargetDependent(t *testing.T) {
	src := `int s() { return sizeof(long double); }`
	u1, err := Compile(src, "t.c", &TargetConf{Name: "sparc", LDoubleSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Compile(src, "t.c", &TargetConf{Name: "m68k", LDoubleSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := constInt(u1.Funcs[0].Body.Body[0].Expr)
	v2, _ := constInt(u2.Funcs[0].Body.Body[0].Expr)
	if v1 != 8 || v2 != 12 {
		t.Fatalf("sizeof(long double) = %d / %d, want 8 / 12", v1, v2)
	}
}

func TestConstantFolding(t *testing.T) {
	u := compile(t, `int f() { return 2*3+4<<1; }`)
	e := u.Funcs[0].Body.Body[0].Expr
	if e.Op != EConst || e.IVal != 20 {
		t.Fatalf("folded = %v %d", e.Op, e.IVal)
	}
}

func TestErrors(t *testing.T) {
	compileErr(t, `int f() { return x; }`, "undeclared identifier")
	compileErr(t, `int f(int a, int a) { return 0; }`, "redeclaration")
	compileErr(t, `int f() { 1 = 2; }`, "non-lvalue")
	compileErr(t, `int f(int *p, double d) { p = d; }`, "type mismatch")
	compileErr(t, `int f() { break; }`, "break outside")
	compileErr(t, `struct s { int x; }; int f(struct s v) { return v + 1; }`, "arithmetic")
	compileErr(t, `int f(int a) { return a.x; }`, "non-struct")
	compileErr(t, `int a[3.5];`, "constant expression")
	compileErr(t, `int f(double d) { return *d; }`, "dereference")
	compileErr(t, `int f(int a) { return a %%; }`, "expression")
}

func TestImplicitFunctionDeclaration(t *testing.T) {
	u := compile(t, `int f() { return g(1, 2); }`)
	found := false
	for _, s := range u.Syms {
		if s.Name == "g" && s.Kind == SymFunc {
			found = true
			if s.Type.Base.Kind != TyInt || s.Type.Params != nil {
				t.Fatal("implicit declaration shape")
			}
		}
	}
	if !found {
		t.Fatal("implicit function not declared")
	}
}

func TestStringLiterals(t *testing.T) {
	u := compile(t, `int f() { printf("hi %d\n", 3); return 0; }`)
	if len(u.Strings) != 1 || u.Strings[0] != "hi %d\n" {
		t.Fatalf("strings: %q", u.Strings)
	}
}

func TestGlobalsAndInitializers(t *testing.T) {
	u := compile(t, `
int g = 42;
static int hidden = 7;
double d = 1.5;
char *msg = "hello";
`)
	byName := map[string]*Symbol{}
	for _, s := range u.Globals {
		byName[s.Name] = s
	}
	if v, _ := constInt(byName["g"].Init); v != 42 {
		t.Fatalf("g init = %v", byName["g"].Init)
	}
	if byName["hidden"].Storage != Static {
		t.Fatal("hidden not static")
	}
	if byName["hidden"].AnchorIdx == byName["g"].AnchorIdx && byName["g"].Storage == Static {
		t.Fatal("anchor collision")
	}
	if byName["d"].Init.Op != EFConst || byName["d"].Init.FVal != 1.5 {
		t.Fatalf("d init = %v", byName["d"].Init)
	}
	if byName["msg"].Init.Op != EAddr {
		t.Fatalf("msg init = %v", byName["msg"].Init.Op)
	}
}

func TestLocalInitializerBecomesAssignment(t *testing.T) {
	u := compile(t, `int f() { int x = 5; return x; }`)
	body := u.Funcs[0].Body.Body
	if len(body) != 2 || body[0].Op != SExpr || body[0].Expr.Op != EAssign {
		t.Fatalf("local initializer lowering: %+v", body[0])
	}
	if body[0].Stop == nil {
		t.Fatal("initializer assignment needs a stopping point")
	}
}

func TestControlFlowParsing(t *testing.T) {
	u := compile(t, `
int classify(int x) {
	int r;
	r = 0;
	if (x > 0) r = 1; else if (x < 0) r = -1;
	while (x > 10) { x = x / 2; if (x == 13) break; else continue; }
	for (;;) { break; }
	return r > 0 ? r : -r;
}
`)
	fn := u.Funcs[0]
	if fn.Sym.Name != "classify" {
		t.Fatal("name")
	}
	// The empty for(;;) contributes no init/cond/post stops.
	if fn.Body == nil {
		t.Fatal("no body")
	}
}

func TestNestedScopeShadowing(t *testing.T) {
	u := compile(t, `
int f(int x) {
	int y;
	y = x;
	{ int x; x = 2; y = y + x; }
	return y + x;
}
`)
	// Two distinct x symbols must exist.
	count := 0
	for _, s := range u.Syms {
		if s.Name == "x" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("x symbols = %d, want 2", count)
	}
	fn := u.Funcs[0]
	if len(fn.Locals) != 2 { // y and inner x
		t.Fatalf("locals = %d", len(fn.Locals))
	}
}

func TestCharAndEscapes(t *testing.T) {
	u := compile(t, `int f() { return 'A' + '\n'; }`)
	e := u.Funcs[0].Body.Body[0].Expr
	if v, ok := constInt(e); !ok || v != 65+10 {
		t.Fatalf("char fold = %v", e)
	}
	// Every escape the lexer documents, in both character and string
	// literals.
	for _, c := range []struct {
		lit  string
		want int64
	}{
		{`'\n'`, '\n'}, {`'\t'`, '\t'}, {`'\r'`, '\r'}, {`'\0'`, 0},
		{`'\b'`, '\b'}, {`'\f'`, '\f'}, {`'\\'`, '\\'}, {`'\''`, '\''},
		{`'\"'`, '"'},
	} {
		u := compile(t, `int f() { return `+c.lit+`; }`)
		if v, ok := constInt(u.Funcs[0].Body.Body[0].Expr); !ok || v != c.want {
			t.Errorf("%s = %d, want %d", c.lit, v, c.want)
		}
	}
	var errs ErrorList
	lx := NewLexer(`"a\tb\\c\"d\0"`, "esc.c", &errs)
	tok := lx.Next()
	if tok.Kind != TString || tok.Text != "a\tb\\c\"d\x00" {
		t.Fatalf("string escapes: %q (kind %v)", tok.Text, tok.Kind)
	}
	if len(errs.Errs) != 0 {
		t.Fatalf("errors: %v", errs.Errs)
	}
	// An unknown escape is reported and passes the raw byte through.
	errs = ErrorList{}
	lx = NewLexer(`'\q'`, "esc.c", &errs)
	tok = lx.Next()
	if tok.IVal != 'q' || len(errs.Errs) == 0 {
		t.Fatalf("unknown escape: %d, errs %v", tok.IVal, errs.Errs)
	}
}

func TestFunctionPointers(t *testing.T) {
	compile(t, `
int add1(int x) { return x + 1; }
int apply(int (*f)(int), int v) { return f(v); }
int main() { return apply(&add1, 41); }
`)
}

func TestExpressionParserEntry(t *testing.T) {
	p := NewParser("1 + 2 * 3", "<expr>", testConf)
	e, err := p.ParseExpression()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := constInt(e); !ok || v != 7 {
		t.Fatalf("expr = %v", e)
	}
}

func TestLookupHook(t *testing.T) {
	// The expression-server hook: an unknown identifier is supplied by
	// the debugger instead of failing (§3).
	p := NewParser("a + 1", "<expr>", testConf)
	var asked []string
	p.Lookup = func(name string) *Symbol {
		asked = append(asked, name)
		return &Symbol{Name: name, Type: IntType, Kind: SymVar, Storage: Auto}
	}
	e, err := p.ParseExpression()
	if err != nil {
		t.Fatal(err)
	}
	if len(asked) != 1 || asked[0] != "a" {
		t.Fatalf("lookups = %v", asked)
	}
	if e.Op != EAdd || e.L.Op != EIdent {
		t.Fatalf("tree = %v", e.Op)
	}
}

func TestStopVisibilityAtFunctionEntry(t *testing.T) {
	u := compile(t, fibSrc)
	fib := u.Funcs[0]
	// Stop 0 (the opening brace) sees n but not i or j.
	vis := map[string]bool{}
	for s := fib.Stops[0].Visible; s != nil; s = s.Uplink {
		vis[s.Name] = true
	}
	if !vis["n"] || !vis["fib"] || vis["i"] || vis["j"] {
		t.Fatalf("entry visibility: %v", vis)
	}
}

func TestCommentHandling(t *testing.T) {
	compile(t, `
/* block comment */ int f() {
	// line comment
	return 1; /* trailing */
}
`)
}

func TestHexLiterals(t *testing.T) {
	u := compile(t, `int f() { return 0xff; }`)
	if v, _ := constInt(u.Funcs[0].Body.Body[0].Expr); v != 255 {
		t.Fatalf("hex = %d", v)
	}
}

func TestUnsignedComparisonType(t *testing.T) {
	u := compile(t, `int f(unsigned a, int b) { return a < b; }`)
	cmp := u.Funcs[0].Body.Body[0].Expr
	if cmp.Op != ELt || cmp.L.Type.Kind != TyUInt || cmp.R.Type.Kind != TyUInt {
		t.Fatalf("unsigned comparison: %s vs %s", cmp.L.Type, cmp.R.Type)
	}
}

func TestSymbolString(t *testing.T) {
	u := compile(t, `int g; int f(int p) { return p + g; }`)
	f := u.Funcs[0]
	if s := f.Sym.String(); s != "procedure f" {
		t.Errorf("func symbol = %q", s)
	}
	var nilSym *Symbol
	if nilSym.String() != "<nil>" {
		t.Error("nil symbol string")
	}
}

func TestUnionLayout(t *testing.T) {
	u := compile(t, `
union value { int i; char c; double d; };
union value v;
int size() { return sizeof(union value); }
`)
	var un *Type
	for _, s := range u.Globals {
		if s.Name == "v" {
			un = s.Type
		}
	}
	if un == nil || un.Kind != TyUnion {
		t.Fatal("missing union global")
	}
	// All members at offset 0; size is the widest member, aligned.
	for _, f := range un.Fields {
		if f.Off != 0 {
			t.Errorf("member %s at offset %d", f.Name, f.Off)
		}
	}
	if got := un.Size(testConf); got != 8 {
		t.Errorf("union size = %d, want 8", got)
	}
	if got := un.Decl("%s"); got != "union value %s" {
		t.Errorf("decl = %q", got)
	}
	// Tag kinds don't mix.
	compileErr(t, `struct s { int x; }; union s u;`, "different aggregate kind")
	// Whole-union assignment is a value copy, like whole-struct.
	compile(t, `union u { int i; }; union u a; union u b; int f() { a = b; return 0; }`)
}

func TestEnums(t *testing.T) {
	u := compile(t, `
enum color { RED, GREEN = 5, BLUE };
enum color c;
int f() { return RED + GREEN + BLUE; }
int g() { enum { LOCAL = -3 }; return LOCAL; }
`)
	if v, ok := constInt(u.Funcs[0].Body.Body[0].Expr); !ok || v != 0+5+6 {
		t.Fatalf("enum fold = %d, %v", v, ok)
	}
	if v, ok := constInt(u.Funcs[1].Body.Body[0].Expr); !ok || v != -3 {
		t.Fatalf("local enum = %d, %v", v, ok)
	}
	// The enum-typed variable is an int to the rest of the system.
	for _, s := range u.Globals {
		if s.Name == "c" && s.Type.Kind != TyInt {
			t.Fatalf("enum variable type = %s", s.Type)
		}
	}
	// Named enum types resolve by tag; unknown tags are errors.
	compileErr(t, `enum nosuch e;`, "undefined enum")
	compileErr(t, `enum e { A, A };`, "redeclaration")
	compileErr(t, `int x; enum e { B = x };`, "constant expression")
}
