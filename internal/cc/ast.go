package cc

import "fmt"

// Storage classifies where a symbol lives.
type Storage int

// Storage classes.
const (
	Auto   Storage = iota // frame-resident local or parameter
	Static                // file- or function-scope static: anchored data
	Extern                // global with external linkage
)

// SymKind classifies a symbol.
type SymKind int

// Symbol kinds.
const (
	SymVar SymKind = iota
	SymParam
	SymFunc
	SymEnumConst
)

func (k SymKind) String() string {
	switch k {
	case SymParam:
		return "parameter"
	case SymFunc:
		return "procedure"
	case SymEnumConst:
		return "enumeration constant"
	default:
		return "variable"
	}
}

// Symbol is a declared identifier. Uplink is the entry for the
// preceding symbol in the current or enclosing scope; the uplinks link
// the entries into the tree of Fig. 2, which handles nested scopes
// without the complications of flattened tables.
type Symbol struct {
	Name    string
	Type    *Type
	Kind    SymKind
	Storage Storage
	Pos     Pos
	Uplink  *Symbol
	// Seq numbers the symbol within its compilation unit: its
	// PostScript name is S<Seq>.
	Seq int

	// Back-end placement:
	// FrameOff for autos (relative to the virtual frame pointer or
	// frame pointer per target); AnchorIdx for statics and stopping
	// points (word index in the unit's anchor table); Label for
	// externs and functions.
	FrameOff  int32
	AnchorIdx int
	Label     string

	// Init is the constant initializer of a global or static, if any.
	Init *Expr

	// For functions:
	Def *Func

	// Ext is free for embedders; the expression server hangs the
	// debugger-supplied location ("where") here when it reconstructs a
	// symbol on the fly (§3).
	Ext any
}

func (s *Symbol) String() string {
	if s == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s %s", s.Kind, s.Name)
}

// ExprOp is an expression operator.
type ExprOp int

// Expression operators. The typed trees play the role of lcc's
// intermediate representation: the expression server rewrites them into
// PostScript (§3).
const (
	EConst ExprOp = iota
	EFConst
	EString
	EIdent
	ECall
	EMember // L.field (R unused; Field set)
	EDeref  // *L
	EAddr   // &L
	ENeg
	ELogNot
	EBitNot
	ECast // conversion to Type
	EAssign
	EAdd
	ESub
	EMul
	EDiv
	ERem
	EAnd
	EOr
	EXor
	EShl
	EShr
	EEq
	ENe
	ELt
	ELe
	EGt
	EGe
	ELogAnd
	ELogOr
	EPostInc
	EPostDec
	EPreInc
	EPreDec
	ECond     // L ? Args[0] : Args[1]
	EComma    // L, R: evaluate L for effect, yield R
	EInitList // braced initializer: Args are element/member initializers
)

var exprOpNames = map[ExprOp]string{
	EConst: "CNST", EFConst: "FCNST", EString: "STR", EIdent: "ID",
	EInitList: "INIT",
	ECall:     "CALL", EMember: "MEMBER", EDeref: "INDIR", EAddr: "ADDR",
	ENeg: "NEG", ELogNot: "NOT", EBitNot: "BCOM", ECast: "CVT",
	EAssign: "ASGN", EAdd: "ADD", ESub: "SUB", EMul: "MUL", EDiv: "DIV",
	ERem: "MOD", EAnd: "BAND", EOr: "BOR", EXor: "BXOR", EShl: "LSH",
	EShr: "RSH", EEq: "EQ", ENe: "NE", ELt: "LT", ELe: "LE", EGt: "GT",
	EGe: "GE", ELogAnd: "ANDAND", ELogOr: "OROR",
	EPostInc: "POSTINC", EPostDec: "POSTDEC", EPreInc: "PREINC",
	EPreDec: "PREDEC", ECond: "COND", EComma: "COMMA",
}

func (op ExprOp) String() string {
	if s, ok := exprOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Expr is a typed expression tree node.
type Expr struct {
	Op    ExprOp
	Type  *Type
	L, R  *Expr
	Args  []*Expr
	Sym   *Symbol
	Field Field
	IVal  int64
	FVal  float64
	SVal  string
	Pos   Pos
}

// IsLValue reports whether e designates an object.
func (e *Expr) IsLValue() bool {
	switch e.Op {
	case EIdent:
		return e.Sym != nil && e.Sym.Kind != SymFunc
	case EDeref:
		return true
	case EMember:
		return e.L.IsLValue()
	}
	return false
}

// StmtOp is a statement kind.
type StmtOp int

// Statement kinds.
const (
	SExpr StmtOp = iota
	SIf
	SWhile
	SFor
	SReturn
	SBlock
	SBreak
	SContinue
	SEmpty
	SDo
	SSwitch
	SGoto
	SLabel
)

// Stmt is a statement node.
type Stmt struct {
	Op   StmtOp
	Pos  Pos
	Expr *Expr // SExpr, SReturn (may be nil)
	Cond *Expr // SIf, SWhile, SFor
	Init *Expr // SFor
	Post *Expr // SFor
	Then *Stmt
	Else *Stmt
	Body []*Stmt // SBlock
	// Cases holds a switch statement's arms, in source order.
	Cases []SwitchCase
	// Name is the label of an SGoto or SLabel statement.
	Name string
	// Stopping points attached to this statement: one at the statement
	// itself, and for loops one each at init/cond/post.
	Stop     *StopPoint
	CondStop *StopPoint
	PostStop *StopPoint
}

// SwitchCase is one arm of a switch; execution falls through to the
// following arm unless the body breaks, as in C.
type SwitchCase struct {
	Val       int64
	IsDefault bool
	Body      []*Stmt
}

// StopPoint is a stopping point (the superscripts of Fig. 1): a source
// location, an object-code location (bound at link time through the
// anchor table), and the symbol-table entry visible there.
type StopPoint struct {
	Index   int
	Pos     Pos
	Visible *Symbol // head of the uplink chain visible here
	// AnchorIdx is the word index of this point's code address in the
	// unit's anchor table.
	AnchorIdx int
	// Label is the assembly label lcc places at the stopping point.
	Label string
}

// Func is a function definition.
type Func struct {
	Sym     *Symbol
	Params  []*Symbol
	Locals  []*Symbol // every block-scoped auto, outermost first
	Statics []*Symbol // function-scope statics
	Body    *Stmt
	Stops   []*StopPoint
	// ExitStop is the stopping point at the closing brace.
	ExitStop *StopPoint
	// FrameSize is filled by the back end (the MIPS runtime procedure
	// table needs it).
	FrameSize int32
	// Labels records user goto labels; Gotos the references to check.
	Labels map[string]bool
	Gotos  []GotoRef
}

// GotoRef is a goto's target name and source position, checked against
// the function's labels when its body is complete.
type GotoRef struct {
	Name string
	Pos  Pos
}

// Unit is one compiled translation unit.
type Unit struct {
	File    string
	Target  *TargetConf
	Funcs   []*Func
	Globals []*Symbol // file-scope variables (externs and statics)
	Syms    []*Symbol // every symbol, in Seq order
	Strings []string  // string literals, indexed by EString.IVal
	// AnchorWords is the number of words in the unit's anchor table
	// (statics and stopping points each own one).
	AnchorWords int
	// AnchorSym is the generated anchor symbol name, derived from a
	// hash of the contents (like _stanchor__V2935334b_e288a in §2).
	AnchorSym string
}
