package cc

import (
	"fmt"
	"strings"
)

// TypeKind classifies a type.
type TypeKind int

// Type kinds. The integer and float kinds correspond to the three
// integer sizes and three float sizes of the abstract memory model
// (§4.1, §7): 8/16/32-bit integers and 32/64/80-bit floats.
const (
	TyVoid TypeKind = iota
	TyChar
	TyShort
	TyInt
	TyUInt
	TyFloat
	TyDouble
	TyLDouble // long double: 80-bit extended on the 68020
	TyPtr
	TyArray
	TyStruct
	TyUnion
	TyFunc
)

// Type is a C type.
type Type struct {
	Kind   TypeKind
	Base   *Type // element (ptr/array), return (func)
	Len    int   // array length
	Tag    string
	Fields []Field
	Params []*Type
	// ParamNames parallels Params for function definitions.
	ParamNames []string
}

// Field is one struct member.
type Field struct {
	Name string
	Type *Type
	Off  int // assigned at layout time, target-dependent
}

// TargetConf carries the target-dependent type parameters the compiler
// is instantiated with (sizes go into the PostScript type dictionaries,
// §2: "This information, which may be machine-dependent, is placed in
// the type dictionary by the compiler").
type TargetConf struct {
	Name string
	// LDoubleSize is 12 on the 68020 (80-bit extended storage) and 8
	// elsewhere.
	LDoubleSize int
}

// Predefined types.
var (
	VoidType    = &Type{Kind: TyVoid}
	CharType    = &Type{Kind: TyChar}
	ShortType   = &Type{Kind: TyShort}
	IntType     = &Type{Kind: TyInt}
	UIntType    = &Type{Kind: TyUInt}
	FloatType   = &Type{Kind: TyFloat}
	DoubleType  = &Type{Kind: TyDouble}
	LDoubleType = &Type{Kind: TyLDouble}
)

// PtrTo returns a pointer type.
func PtrTo(base *Type) *Type { return &Type{Kind: TyPtr, Base: base} }

// ArrayOf returns an array type.
func ArrayOf(base *Type, n int) *Type { return &Type{Kind: TyArray, Base: base, Len: n} }

// Size returns the type's size in bytes on the given target.
func (t *Type) Size(tc *TargetConf) int {
	switch t.Kind {
	case TyVoid:
		return 0
	case TyChar:
		return 1
	case TyShort:
		return 2
	case TyInt, TyUInt, TyPtr, TyFunc:
		return 4
	case TyFloat:
		return 4
	case TyDouble:
		return 8
	case TyLDouble:
		if tc != nil && tc.LDoubleSize != 0 {
			return tc.LDoubleSize
		}
		return 8
	case TyArray:
		return t.Len * t.Base.Size(tc)
	case TyStruct:
		size := 0
		for _, f := range t.Fields {
			a := f.Type.Align(tc)
			size = alignUp(size, a)
			size += f.Type.Size(tc)
		}
		return alignUp(size, t.Align(tc))
	case TyUnion:
		size := 0
		for _, f := range t.Fields {
			if fs := f.Type.Size(tc); fs > size {
				size = fs
			}
		}
		return alignUp(size, t.Align(tc))
	}
	return 4
}

// Align returns the type's alignment on the given target.
func (t *Type) Align(tc *TargetConf) int {
	switch t.Kind {
	case TyChar:
		return 1
	case TyShort:
		return 2
	case TyArray:
		return t.Base.Align(tc)
	case TyStruct, TyUnion:
		// Aggregates are word-aligned and word-sized on every target
		// (Size aligns up to Align): the retargetable back end copies
		// them — assignments, by-value arguments, returns — as whole
		// words, so the subset fixes their granularity at one word.
		a := 4
		for _, f := range t.Fields {
			if fa := f.Type.Align(tc); fa > a {
				a = fa
			}
		}
		return a
	default:
		return 4
	}
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Layout assigns member offsets for the given target. Union members
// all live at offset zero.
func (t *Type) Layout(tc *TargetConf) {
	if t.Kind == TyUnion {
		for i := range t.Fields {
			t.Fields[i].Off = 0
		}
		return
	}
	if t.Kind != TyStruct {
		return
	}
	off := 0
	for i := range t.Fields {
		a := t.Fields[i].Type.Align(tc)
		off = alignUp(off, a)
		t.Fields[i].Off = off
		off += t.Fields[i].Type.Size(tc)
	}
}

// FieldByName finds a struct member.
func (t *Type) FieldByName(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case TyChar, TyShort, TyInt, TyUInt:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating type.
func (t *Type) IsFloat() bool {
	switch t.Kind {
	case TyFloat, TyDouble, TyLDouble:
		return true
	}
	return false
}

// IsArith reports whether t is arithmetic.
func (t *Type) IsArith() bool { return t.IsInteger() || t.IsFloat() }

// IsScalar reports whether t is arithmetic or a pointer.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == TyPtr }

// Same reports structural type equality (structs by tag identity).
func Same(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TyPtr:
		return Same(a.Base, b.Base)
	case TyArray:
		return a.Len == b.Len && Same(a.Base, b.Base)
	case TyStruct, TyUnion:
		return a.Tag != "" && a.Tag == b.Tag
	case TyFunc:
		if !Same(a.Base, b.Base) || len(a.Params) != len(b.Params) {
			return false
		}
		for i := range a.Params {
			if !Same(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

// Decl renders the type as a C declaration of name — the string the
// symbol table's /decl entry holds, with %s standing for the name
// ("int %s[20]" in §2's example).
func (t *Type) Decl(name string) string {
	switch t.Kind {
	case TyVoid:
		return "void " + name
	case TyChar:
		return "char " + name
	case TyShort:
		return "short " + name
	case TyInt:
		return "int " + name
	case TyUInt:
		return "unsigned " + name
	case TyFloat:
		return "float " + name
	case TyDouble:
		return "double " + name
	case TyLDouble:
		return "long double " + name
	case TyPtr:
		inner := "*" + name
		if t.Base.Kind == TyArray || t.Base.Kind == TyFunc {
			inner = "(" + inner + ")"
		}
		return t.Base.Decl(inner)
	case TyArray:
		return t.Base.Decl(fmt.Sprintf("%s[%d]", name, t.Len))
	case TyStruct:
		return "struct " + t.Tag + " " + name
	case TyUnion:
		return "union " + t.Tag + " " + name
	case TyFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, strings.TrimSpace(p.Decl("")))
		}
		return t.Base.Decl(fmt.Sprintf("%s(%s)", name, strings.Join(ps, ", ")))
	}
	return name
}

// String renders the type without a declared name.
func (t *Type) String() string { return strings.TrimSpace(t.Decl("")) }
