package cc

import "testing"

// Table-driven front-end coverage for the constructs grown for the
// scenario corpus: multi-dimensional arrays, structs and unions passed
// and returned by value, and function pointers. Each table pairs the
// accepted forms with the rejected ones, pinning the diagnostic text
// the corpus and its users see.

func TestMultiDimArrayDecls(t *testing.T) {
	positives := []struct{ name, src string }{
		{"two-dim global", "int m[3][4]; int f() { m[1][2] = 5; return m[1][2]; }"},
		{"three-dim char", "char c[2][3][4]; int f() { c[1][2][3] = 'x'; return c[1][2][3]; }"},
		{"two-dim param", "int f(int m[3][4]) { return m[2][1]; }"},
		{"row as pointer", "int m[3][4]; int f() { int *p; p = m[1]; return p[2]; }"},
		{"sizeof row", "int m[3][4]; int f() { return sizeof m[0]; }"},
	}
	for _, tc := range positives {
		t.Run(tc.name, func(t *testing.T) { compile(t, tc.src) })
	}
	negatives := []struct{ name, src, want string }{
		{"assign whole array", "int a[4]; int b[4]; int f() { a = b; return 0; }",
			"cannot assign whole arrays"},
		{"assign whole row", "int m[3][4]; int n[3][4]; int f() { m[1] = n[1]; return 0; }",
			"cannot assign whole arrays"},
	}
	for _, tc := range negatives {
		t.Run(tc.name, func(t *testing.T) { compileErr(t, tc.src, tc.want) })
	}
}

func TestStructByValueDecls(t *testing.T) {
	positives := []struct{ name, src string }{
		{"pass by value", "struct p { int x; int y; }; int use(struct p v) { return v.x + v.y; } int f() { struct p a; a.x = 1; a.y = 2; return use(a); }"},
		{"return by value", "struct p { int x; int y; }; struct p mk(int x) { struct p r; r.x = x; r.y = 0; return r; } int f() { return mk(3).x; }"},
		{"assign whole struct", "struct p { int x; int y; }; struct p a; struct p b; int f() { a = b; return a.x; }"},
		{"assign whole union", "union u { int i; char c; }; union u a; union u b; int f() { a = b; return a.i; }"},
		{"nested struct copy", "struct in { int v; }; struct out { struct in i; int w; }; struct out a; struct out b; int f() { a = b; return a.i.v; }"},
		{"struct array element", "struct p { int x; int y; }; struct p t[4]; int f() { t[0] = t[3]; return t[0].x; }"},
	}
	for _, tc := range positives {
		t.Run(tc.name, func(t *testing.T) { compile(t, tc.src) })
	}
	negatives := []struct{ name, src, want string }{
		{"aggregate arg without prototype", "struct p { int x; int y; }; struct p g; int f() { return h(g); }",
			"aggregate argument requires a prototype"},
		{"self-referential member", "struct s { int a; struct s inner; }; int f() { return 0; }",
			"member inner has incomplete aggregate type"},
		{"self-referential member array", "struct s { struct s inner[2]; }; int f() { return 0; }",
			"member inner has incomplete aggregate type"},
		{"mutually incomplete member", "union u { struct u2 { union u inner; } v; }; int f() { return 0; }",
			"member inner has incomplete aggregate type"},
	}
	for _, tc := range negatives {
		t.Run(tc.name, func(t *testing.T) { compileErr(t, tc.src, tc.want) })
	}
}

func TestFunctionPointerDecls(t *testing.T) {
	positives := []struct{ name, src string }{
		{"assign without address-of", "int add(int a, int b) { return a + b; } int (*op)(int, int); int f() { op = add; return op(1, 2); }"},
		{"assign with address-of", "int add(int a, int b) { return a + b; } int (*op)(int, int); int f() { op = &add; return (*op)(1, 2); }"},
		{"file-scope initializer", "int twice(int n) { return n + n; } int (*scale)(int) = twice; int f() { return scale(4); }"},
		{"array of function pointers", "int one() { return 1; } int two() { return 2; } int (*tab[2])() = { one, two }; int f() { return tab[0]() + tab[1](); }"},
		{"function pointer parameter", "int apply(int (*g)(int), int v) { return g(v); } int twice(int n) { return n + n; } int f() { return apply(twice, 5); }"},
	}
	for _, tc := range positives {
		t.Run(tc.name, func(t *testing.T) { compile(t, tc.src) })
	}
}
