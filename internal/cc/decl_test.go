package cc

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseDeclRoundTrip: Decl() output parses back to the same type —
// the property the expression-server reply format depends on (§3:
// symbol data travels as sequences of C tokens).
func TestParseDeclRoundTrip(t *testing.T) {
	types := []*Type{
		IntType,
		CharType,
		ShortType,
		UIntType,
		FloatType,
		DoubleType,
		LDoubleType,
		PtrTo(IntType),
		PtrTo(PtrTo(CharType)),
		ArrayOf(IntType, 20),
		ArrayOf(ArrayOf(IntType, 3), 4),
		PtrTo(ArrayOf(DoubleType, 8)),
		ArrayOf(PtrTo(CharType), 5),
		{Kind: TyFunc, Base: IntType, Params: []*Type{IntType, PtrTo(CharType)}},
		PtrTo(&Type{Kind: TyFunc, Base: IntType, Params: []*Type{IntType}}),
	}
	for _, ty := range types {
		decl := ty.Decl("x")
		name, parsed, err := ParseDecl(decl, testConf)
		if err != nil {
			t.Errorf("ParseDecl(%q): %v", decl, err)
			continue
		}
		if name != "x" {
			t.Errorf("ParseDecl(%q) name = %q", decl, name)
		}
		if !Same(ty, parsed) {
			t.Errorf("ParseDecl(%q) = %s, want %s", decl, parsed, ty)
		}
	}
}

func TestParseDeclAnonymousStruct(t *testing.T) {
	name, ty, err := ParseDecl("struct { int x; int y; } p", testConf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "p" || ty.Kind != TyStruct || len(ty.Fields) != 2 {
		t.Fatalf("%q %v", name, ty)
	}
	if ty.Fields[1].Off != 4 {
		t.Fatalf("field offsets not laid out: %+v", ty.Fields)
	}
}

func TestDeclaratorShapes(t *testing.T) {
	u := compile(t, `
int (*fp)(int, char *);
int (*arr_of_fp[4])(int);
double (*ptr_to_arr)[6];
char *argvlike[3];
`)
	byName := map[string]*Type{}
	for _, s := range u.Globals {
		byName[s.Name] = s.Type
	}
	if ty := byName["fp"]; ty.Kind != TyPtr || ty.Base.Kind != TyFunc || len(ty.Base.Params) != 2 {
		t.Fatalf("fp: %s", ty)
	}
	if ty := byName["arr_of_fp"]; ty.Kind != TyArray || ty.Len != 4 || ty.Base.Kind != TyPtr || ty.Base.Base.Kind != TyFunc {
		t.Fatalf("arr_of_fp: %s", ty)
	}
	if ty := byName["ptr_to_arr"]; ty.Kind != TyPtr || ty.Base.Kind != TyArray || ty.Base.Len != 6 {
		t.Fatalf("ptr_to_arr: %s", ty)
	}
	if ty := byName["argvlike"]; ty.Kind != TyArray || ty.Base.Kind != TyPtr || ty.Base.Base.Kind != TyChar {
		t.Fatalf("argvlike: %s", ty)
	}
}

func TestRecursiveStructViaPointer(t *testing.T) {
	u := compile(t, `
struct node { int v; struct node *next; };
struct node head;
int walk(struct node *p) {
	int n;
	n = 0;
	while (p != 0) { n = n + p->v; p = p->next; }
	return n;
}
`)
	var node *Type
	for _, s := range u.Globals {
		if s.Name == "head" {
			node = s.Type
		}
	}
	if node == nil || node.Fields[1].Type.Kind != TyPtr {
		t.Fatal("node shape")
	}
	if node.Fields[1].Type.Base != node {
		t.Fatal("recursive pointer does not close the cycle")
	}
	if !strings.Contains(node.Decl("x"), "struct node x") {
		t.Fatalf("decl: %q", node.Decl("x"))
	}
}

func TestSizeofExprAndTypes(t *testing.T) {
	u := compile(t, `
struct s { char c; double d; };
int a = sizeof(int);
int b = sizeof(struct s);
int c = sizeof(int [10]);
struct s gv;
int d = sizeof gv;
`)
	vals := map[string]int64{}
	for _, s := range u.Globals {
		if s.Init != nil {
			if v, ok := constInt(s.Init); ok {
				vals[s.Name] = v
			}
		}
	}
	// Doubles align to 4 in this implementation (uniformly on all
	// targets), so the struct is 12 bytes.
	if vals["a"] != 4 || vals["b"] != 12 || vals["c"] != 40 || vals["d"] != 12 {
		t.Fatalf("sizeof values: %v", vals)
	}
}

func TestLexerEdgeCases(t *testing.T) {
	u := compile(t, `
int a = 0x10;
int b = 'A';
int c = '\n';
int d = '\\';
int e = '\'';
double f = 1e2;
double g = 2.5e-1;
`)
	vals := map[string]*Expr{}
	for _, s := range u.Globals {
		vals[s.Name] = s.Init
	}
	if vals["a"].IVal != 16 || vals["b"].IVal != 65 || vals["c"].IVal != 10 ||
		vals["d"].IVal != 92 || vals["e"].IVal != 39 {
		t.Fatalf("literals: %v", vals)
	}
	if vals["f"].FVal != 100 || vals["g"].FVal != 0.25 {
		t.Fatalf("floats: %v %v", vals["f"].FVal, vals["g"].FVal)
	}
}

// TestDeclRoundTripProperty: for random bounded types, the C
// declaration the symbol table carries (Type.Decl) parses back to a
// structurally identical type — the invariant under the expression
// server's "sym ... ; <decl>" replies.
func TestDeclRoundTripProperty(t *testing.T) {
	var build func(seed int64, depth int) *Type
	build = func(seed int64, depth int) *Type {
		scalars := []*Type{CharType, ShortType, IntType, UIntType, FloatType, DoubleType, PtrTo(CharType)}
		if seed < 0 {
			seed = -seed
		}
		if depth <= 0 {
			return scalars[seed%int64(len(scalars))]
		}
		switch seed % 4 {
		case 0:
			return scalars[(seed/4)%int64(len(scalars))]
		case 1:
			return PtrTo(build(seed/4, depth-1))
		case 2:
			return ArrayOf(build(seed/4, depth-1), int(seed/4%9)+1)
		default:
			n := int(seed / 4 % 3)
			ft := &Type{Kind: TyFunc, Base: build(seed/4, depth-1)}
			for i := 0; i < n; i++ {
				ft.Params = append(ft.Params, build(seed/16+int64(i), depth-1))
			}
			return ft
		}
	}
	var structEq func(a, b *Type) bool
	structEq = func(a, b *Type) bool {
		if a.Kind != b.Kind || a.Len != b.Len || len(a.Params) != len(b.Params) {
			return false
		}
		if a.Base != nil || b.Base != nil {
			if a.Base == nil || b.Base == nil || !structEq(a.Base, b.Base) {
				return false
			}
		}
		for i := range a.Params {
			if !structEq(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		ty := build(seed, 4)
		// Arrays of functions and functions returning arrays/functions
		// are not valid C; the generator can produce them, so skip.
		var valid func(t *Type) bool
		valid = func(t *Type) bool {
			switch t.Kind {
			case TyArray:
				if t.Base.Kind == TyFunc {
					return false
				}
				return valid(t.Base)
			case TyFunc:
				if t.Base.Kind == TyFunc || t.Base.Kind == TyArray {
					return false
				}
				if !valid(t.Base) {
					return false
				}
				for _, p := range t.Params {
					// A parameter of function type is not valid C (it
					// must be written as a pointer to function).
					if p.Kind == TyFunc || !valid(p) {
						return false
					}
				}
				return true
			case TyPtr:
				return valid(t.Base)
			}
			return true
		}
		if !valid(ty) {
			return true
		}
		// C adjusts array parameters to pointers; the parser applies
		// that, so compare against the adjusted type.
		var adjust func(t *Type, inParam bool) *Type
		adjust = func(t *Type, inParam bool) *Type {
			if t == nil {
				return nil
			}
			if inParam && t.Kind == TyArray {
				return PtrTo(adjust(t.Base, false))
			}
			cp := *t
			cp.Base = adjust(t.Base, false)
			cp.Params = nil
			for _, p := range t.Params {
				cp.Params = append(cp.Params, adjust(p, true))
			}
			return &cp
		}
		decl := ty.Decl("x")
		name, back, err := ParseDecl(decl, testConf)
		if err != nil || name != "x" {
			t.Logf("decl %q: %v", decl, err)
			return false
		}
		if !structEq(adjust(ty, false), back) {
			t.Logf("decl %q parsed to %q", decl, back.Decl("x"))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
