// Package cc is a one-pass compiler front end for the C subset the
// reproduction uses, in the mold of lcc: the parser typechecks as it
// parses, building typed expression trees, a scoped symbol table whose
// entries are linked by uplinks into the tree of Fig. 2, and the
// stopping points of Fig. 1 (one before every top-level expression).
//
// The front end also runs as the expression server (§3): a Lookup hook
// lets a debugger supply symbol-table entries for identifiers the
// server has never seen, reconstructing them on the fly.
package cc

import (
	"fmt"
	"strings"
)

// Tok is a lexical token kind.
type Tok int

// Token kinds. Single-character operators use their character value.
const (
	TEOF Tok = iota + 256
	TIdent
	TNumber
	TFNumber
	TChar
	TString
	// multi-character operators
	TArrow  // ->
	TInc    // ++
	TDec    // --
	TShl    // <<
	TShr    // >>
	TLe     // <=
	TGe     // >=
	TEq     // ==
	TNe     // !=
	TAndAnd // &&
	TOrOr   // ||
	TAddEq  // +=
	TSubEq  // -=
	TMulEq  // *=
	TDivEq  // /=
	TRemEq  // %=
	TAndEq  // &=
	TOrEq   // |=
	TXorEq  // ^=
	TShlEq  // <<=
	TShrEq  // >>=
	// keywords
	TVoid
	TCharKw
	TShort
	TInt
	TLong
	TUnsigned
	TFloat
	TDouble
	TStruct
	TUnion
	TEnum
	TStatic
	TExtern
	TIf
	TElse
	TWhile
	TFor
	TReturn
	TBreak
	TContinue
	TSizeof
	TDo
	TSwitch
	TGoto
	TCase
	TDefault
)

var keywords = map[string]Tok{
	"void": TVoid, "char": TCharKw, "short": TShort, "int": TInt,
	"long": TLong, "unsigned": TUnsigned, "float": TFloat,
	"double": TDouble, "struct": TStruct, "union": TUnion, "enum": TEnum,
	"static": TStatic,
	"extern": TExtern, "if": TIf, "else": TElse, "while": TWhile,
	"for": TFor, "return": TReturn, "break": TBreak,
	"continue": TContinue, "sizeof": TSizeof,
	"do": TDo, "switch": TSwitch, "case": TCase, "default": TDefault,
	"goto": TGoto,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// Token is one lexed token.
type Token struct {
	Kind Tok
	Text string
	IVal int64
	FVal float64
	Pos  Pos
}

// Lexer tokenizes C source.
type Lexer struct {
	src  string
	off  int
	pos  Pos
	errs *ErrorList
}

// NewLexer returns a lexer over src, attributing positions to file.
func NewLexer(src, file string, errs *ErrorList) *Lexer {
	return &Lexer{src: src, pos: Pos{File: file, Line: 1, Col: 1}, errs: errs}
}

// ErrorList accumulates compile errors.
type ErrorList struct {
	Errs []error
}

// Add records an error at a position.
func (e *ErrorList) Add(pos Pos, format string, args ...any) {
	if len(e.Errs) < 50 {
		e.Errs = append(e.Errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	}
}

// Err returns the combined error, or nil.
func (e *ErrorList) Err() error {
	if len(e.Errs) == 0 {
		return nil
	}
	var b strings.Builder
	for i, err := range e.Errs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(err.Error())
	}
	return fmt.Errorf("%s", b.String())
}

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekByte2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.pos.Line++
		l.pos.Col = 1
	} else {
		l.pos.Col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f':
			l.advance()
		case c == '/' && l.peekByte2() == '*':
			l.advance()
			l.advance()
			for l.off < len(l.src) {
				if l.peekByte() == '*' && l.peekByte2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case c == '/' && l.peekByte2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	start := l.pos
	if l.off >= len(l.src) {
		return Token{Kind: TEOF, Pos: start}
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		a := l.off
		for l.off < len(l.src) && (isIdentStart(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		text := l.src[a:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: start}
		}
		return Token{Kind: TIdent, Text: text, Pos: start}
	case isDigit(c) || (c == '.' && isDigit(l.peekByte2())):
		return l.number(start)
	case c == '\'':
		return l.charLit(start)
	case c == '"':
		return l.stringLit(start)
	}
	l.advance()
	two := func(second byte, kind Tok) (Token, bool) {
		if l.peekByte() == second {
			l.advance()
			return Token{Kind: kind, Pos: start}, true
		}
		return Token{}, false
	}
	switch c {
	case '-':
		if t, ok := two('>', TArrow); ok {
			return t
		}
		if t, ok := two('-', TDec); ok {
			return t
		}
		if t, ok := two('=', TSubEq); ok {
			return t
		}
	case '+':
		if t, ok := two('+', TInc); ok {
			return t
		}
		if t, ok := two('=', TAddEq); ok {
			return t
		}
	case '*':
		if t, ok := two('=', TMulEq); ok {
			return t
		}
	case '/':
		if t, ok := two('=', TDivEq); ok {
			return t
		}
	case '%':
		if t, ok := two('=', TRemEq); ok {
			return t
		}
	case '^':
		if t, ok := two('=', TXorEq); ok {
			return t
		}
	case '<':
		if l.peekByte() == '<' {
			l.advance()
			if t, ok := two('=', TShlEq); ok {
				return t
			}
			return Token{Kind: TShl, Pos: start}
		}
		if t, ok := two('=', TLe); ok {
			return t
		}
	case '>':
		if l.peekByte() == '>' {
			l.advance()
			if t, ok := two('=', TShrEq); ok {
				return t
			}
			return Token{Kind: TShr, Pos: start}
		}
		if t, ok := two('=', TGe); ok {
			return t
		}
	case '=':
		if t, ok := two('=', TEq); ok {
			return t
		}
	case '!':
		if t, ok := two('=', TNe); ok {
			return t
		}
	case '&':
		if t, ok := two('&', TAndAnd); ok {
			return t
		}
		if t, ok := two('=', TAndEq); ok {
			return t
		}
	case '|':
		if t, ok := two('|', TOrOr); ok {
			return t
		}
		if t, ok := two('=', TOrEq); ok {
			return t
		}
	}
	return Token{Kind: Tok(c), Text: string(c), Pos: start}
}

func (l *Lexer) number(start Pos) Token {
	a := l.off
	isFloat := false
	if l.peekByte() == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHex(l.peekByte()) {
			l.advance()
		}
		var v int64
		fmt.Sscanf(l.src[a:l.off], "%v", &v)
		_, err := fmt.Sscanf(l.src[a:l.off], "0x%x", &v)
		if err != nil {
			_, _ = fmt.Sscanf(l.src[a:l.off], "0X%x", &v)
		}
		return Token{Kind: TNumber, IVal: v, Text: l.src[a:l.off], Pos: start}
	}
	for l.off < len(l.src) && isDigit(l.peekByte()) {
		l.advance()
	}
	if l.peekByte() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	if l.peekByte() == 'e' || l.peekByte() == 'E' {
		isFloat = true
		l.advance()
		if l.peekByte() == '+' || l.peekByte() == '-' {
			l.advance()
		}
		for l.off < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	text := l.src[a:l.off]
	if isFloat {
		var f float64
		fmt.Sscanf(text, "%g", &f)
		return Token{Kind: TFNumber, FVal: f, Text: text, Pos: start}
	}
	var v int64
	fmt.Sscanf(text, "%d", &v)
	return Token{Kind: TNumber, IVal: v, Text: text, Pos: start}
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) escape() byte {
	c := l.advance()
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case 'b':
		return '\b'
	case 'f':
		return '\f'
	case '\\', '\'', '"':
		return c
	}
	l.errs.Add(l.pos, "unknown escape \\%c", c)
	return c
}

func (l *Lexer) charLit(start Pos) Token {
	l.advance() // '
	var v byte
	if l.peekByte() == '\\' {
		l.advance()
		v = l.escape()
	} else if l.off < len(l.src) {
		v = l.advance()
	}
	if l.peekByte() == '\'' {
		l.advance()
	} else {
		l.errs.Add(start, "unterminated character constant")
	}
	return Token{Kind: TChar, IVal: int64(v), Pos: start}
}

func (l *Lexer) stringLit(start Pos) Token {
	l.advance() // "
	var b strings.Builder
	for l.off < len(l.src) && l.peekByte() != '"' {
		if l.peekByte() == '\\' {
			l.advance()
			b.WriteByte(l.escape())
		} else {
			b.WriteByte(l.advance())
		}
	}
	if l.off < len(l.src) {
		l.advance()
	} else {
		l.errs.Add(start, "unterminated string literal")
	}
	return Token{Kind: TString, Text: b.String(), Pos: start}
}
