package cc

import (
	"crypto/sha256"
	"fmt"
)

// Parser is the one-pass parser/typechecker.
type Parser struct {
	lex   *Lexer
	tok   Token
	ahead *Token // one-token lookahead (label-colon disambiguation)
	errs  *ErrorList
	tc    *TargetConf
	unit  *Unit

	scopes  []map[string]*Symbol
	tags    []map[string]*Type
	lastSym *Symbol // head of the uplink chain
	curFn   *Func
	loop    int

	// defining tracks aggregates whose bodies are being parsed, so a
	// member of the aggregate's own (still-incomplete) type is rejected
	// instead of building a cyclic type that Size/Align recurse on
	// forever.
	defining []*Type

	// Lookup, when set, is consulted for identifiers not found in any
	// scope — the expression-server hook (§3): instead of failing, the
	// symbol-table code asks the debugger and reconstructs the entry.
	Lookup func(name string) *Symbol
}

// NewParser returns a parser over src.
func NewParser(src, file string, tc *TargetConf) *Parser {
	errs := &ErrorList{}
	p := &Parser{
		lex:    NewLexer(src, file, errs),
		errs:   errs,
		tc:     tc,
		unit:   &Unit{File: file, Target: tc},
		scopes: []map[string]*Symbol{{}},
		tags:   []map[string]*Type{{}},
	}
	p.next()
	return p
}

// Compile parses and typechecks one translation unit.
func Compile(src, file string, tc *TargetConf) (*Unit, error) {
	p := NewParser(src, file, tc)
	return p.ParseUnit()
}

func (p *Parser) next() {
	if p.ahead != nil {
		p.tok, p.ahead = *p.ahead, nil
		return
	}
	p.tok = p.lex.Next()
}

// peekNext returns the token after the current one without consuming.
func (p *Parser) peekNext() Token {
	if p.ahead == nil {
		t := p.lex.Next()
		p.ahead = &t
	}
	return *p.ahead
}

func (p *Parser) errf(format string, args ...any) {
	p.errs.Add(p.tok.Pos, format, args...)
}

func (p *Parser) expect(k Tok, what string) Token {
	t := p.tok
	if t.Kind != k {
		p.errf("expected %s, found %q", what, t.Text)
		// best-effort recovery: skip one token unless at EOF
		if p.tok.Kind != TEOF {
			p.next()
		}
		return t
	}
	p.next()
	return t
}

func (p *Parser) accept(k Tok) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// --- scopes and symbols ---

func (p *Parser) pushScope() {
	p.scopes = append(p.scopes, map[string]*Symbol{})
	p.tags = append(p.tags, map[string]*Type{})
}

func (p *Parser) popScope(saved *Symbol) {
	p.scopes = p.scopes[:len(p.scopes)-1]
	p.tags = p.tags[:len(p.tags)-1]
	p.lastSym = saved
}

func (p *Parser) declare(sym *Symbol) *Symbol {
	top := p.scopes[len(p.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		p.errs.Add(sym.Pos, "redeclaration of %s", sym.Name)
	}
	top[sym.Name] = sym
	sym.Uplink = p.lastSym
	p.lastSym = sym
	sym.Seq = len(p.unit.Syms) + 1
	p.unit.Syms = append(p.unit.Syms, sym)
	return sym
}

func (p *Parser) resolve(name string) *Symbol {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if s, ok := p.scopes[i][name]; ok {
			return s
		}
	}
	if p.Lookup != nil {
		if s := p.Lookup(name); s != nil {
			// Cache the reconstructed entry at file scope; the server
			// discards new entries after each expression by discarding
			// the parser.
			p.scopes[0][name] = s
			return s
		}
	}
	return nil
}

func (p *Parser) resolveTag(name string) *Type {
	for i := len(p.tags) - 1; i >= 0; i-- {
		if t, ok := p.tags[i][name]; ok {
			return t
		}
	}
	return nil
}

func (p *Parser) anchorWord() int {
	w := p.unit.AnchorWords
	p.unit.AnchorWords++
	return w
}

// --- declarations ---

// isTypeStart reports whether the current token begins a declaration.
func (p *Parser) isTypeStart() bool {
	switch p.tok.Kind {
	case TVoid, TCharKw, TShort, TInt, TLong, TUnsigned, TFloat, TDouble, TStruct, TUnion, TEnum, TStatic, TExtern:
		return true
	}
	return false
}

// baseType parses storage class and type specifiers.
func (p *Parser) baseType() (*Type, Storage) {
	storage := Auto
	if len(p.scopes) == 1 {
		storage = Extern
	}
	for {
		switch p.tok.Kind {
		case TStatic:
			storage = Static
			p.next()
			continue
		case TExtern:
			storage = Extern
			p.next()
			continue
		}
		break
	}
	switch p.tok.Kind {
	case TVoid:
		p.next()
		return VoidType, storage
	case TCharKw:
		p.next()
		return CharType, storage
	case TShort:
		p.next()
		p.accept(TInt)
		return ShortType, storage
	case TInt:
		p.next()
		return IntType, storage
	case TUnsigned:
		p.next()
		p.accept(TInt)
		return UIntType, storage
	case TFloat:
		p.next()
		return FloatType, storage
	case TLong:
		p.next()
		if p.accept(TDouble) {
			return LDoubleType, storage
		}
		p.accept(TInt)
		return IntType, storage
	case TDouble:
		p.next()
		return DoubleType, storage
	case TStruct:
		p.next()
		return p.structType(TyStruct), storage
	case TUnion:
		p.next()
		return p.structType(TyUnion), storage
	case TEnum:
		p.next()
		return p.enumType(), storage
	}
	p.errf("expected type, found %q", p.tok.Text)
	p.next()
	return IntType, storage
}

func (p *Parser) structType(kind TypeKind) *Type {
	tag := ""
	if p.tok.Kind == TIdent {
		tag = p.tok.Text
		p.next()
	}
	if p.tok.Kind != Tok('{') {
		if tag == "" {
			p.errf("anonymous struct requires a body")
			return &Type{Kind: kind}
		}
		if t := p.resolveTag(tag); t != nil {
			if t.Kind != kind {
				p.errf("tag %s is a different aggregate kind", tag)
			}
			return t
		}
		// forward reference; usable only through pointers
		t := &Type{Kind: kind, Tag: tag}
		p.tags[len(p.tags)-1][tag] = t
		return t
	}
	p.next() // {
	t := p.resolveTag(tag)
	if t == nil || t.Kind != kind || len(t.Fields) > 0 {
		t = &Type{Kind: kind, Tag: tag}
	}
	if tag != "" {
		p.tags[len(p.tags)-1][tag] = t
	}
	p.defining = append(p.defining, t)
	for p.tok.Kind != Tok('}') && p.tok.Kind != TEOF {
		base, _ := p.baseType()
		for {
			name, ft := p.declarator(base)
			if name == "" {
				p.errf("aggregate member needs a name")
			}
			if p.incompleteMember(ft) {
				p.errf("member %s has incomplete aggregate type", name)
			} else {
				t.Fields = append(t.Fields, Field{Name: name, Type: ft})
			}
			if !p.accept(Tok(',')) {
				break
			}
		}
		p.expect(Tok(';'), "';'")
	}
	p.defining = p.defining[:len(p.defining)-1]
	p.expect(Tok('}'), "'}'")
	t.Layout(p.tc)
	return t
}

// incompleteMember reports whether ft — after stripping array layers,
// which embed their element — is an aggregate that cannot be laid out
// yet: one whose body is still being parsed (a member of the struct's
// own type would make the layout cyclic). Pointers to such types are
// fine and never reach here (the declarator wraps them in TyPtr).
func (p *Parser) incompleteMember(ft *Type) bool {
	for ft != nil && ft.Kind == TyArray {
		ft = ft.Base
	}
	if ft == nil || (ft.Kind != TyStruct && ft.Kind != TyUnion) {
		return false
	}
	for _, d := range p.defining {
		if d == ft {
			return true
		}
	}
	return false
}

// enumType parses an enumeration. Enumerators become integer constant
// symbols in the current scope and fold wherever they are used; the
// enum type itself is int, as it is on all four targets.
func (p *Parser) enumType() *Type {
	tag := ""
	if p.tok.Kind == TIdent {
		tag = p.tok.Text
		p.next()
	}
	if p.tok.Kind != Tok('{') {
		if tag == "" {
			p.errf("anonymous enum requires a body")
		} else if p.resolveTag(tag) == nil {
			p.errf("undefined enum %s", tag)
		}
		return IntType
	}
	p.next() // {
	next := int64(0)
	for p.tok.Kind != Tok('}') && p.tok.Kind != TEOF {
		pos := p.tok.Pos
		name := p.expect(TIdent, "enumerator").Text
		if p.accept(Tok('=')) {
			if v, ok := constInt(p.condExpr()); ok {
				next = v
			} else {
				p.errs.Add(pos, "enumerator value must be a constant expression")
			}
		}
		top := p.scopes[len(p.scopes)-1]
		if _, dup := top[name]; dup {
			p.errs.Add(pos, "redeclaration of %s", name)
		}
		top[name] = &Symbol{
			Name: name, Kind: SymEnumConst, Type: IntType, Pos: pos,
			Init: intConst(next, pos),
		}
		next++
		if !p.accept(Tok(',')) {
			break
		}
	}
	p.expect(Tok('}'), "'}'")
	if tag != "" {
		p.tags[len(p.tags)-1][tag] = IntType
	}
	return IntType
}

// declarator parses pointers, a name (possibly parenthesized), and
// array/function suffixes, returning the declared name and type.
func (p *Parser) declarator(base *Type) (string, *Type) {
	for p.accept(Tok('*')) {
		base = PtrTo(base)
	}
	return p.directDeclarator(base)
}

func (p *Parser) directDeclarator(base *Type) (string, *Type) {
	var name string
	var wrap func(*Type) *Type
	switch p.tok.Kind {
	case TIdent:
		name = p.tok.Text
		p.next()
	case Tok('('):
		p.next()
		inner := base // placeholder; the suffixes apply outside-in
		_ = inner
		// Parse the inner declarator against a marker type and graft.
		marker := &Type{Kind: TyVoid}
		n, it := p.declarator(marker)
		name = n
		wrap = func(outer *Type) *Type { return graft(it, marker, outer) }
		p.expect(Tok(')'), "')'")
	default:
		// abstract declarator (e.g., parameter without a name)
	}
	t := p.suffixes(base)
	if wrap != nil {
		t = wrap(t)
	}
	return name, t
}

// graft replaces marker inside t with outer.
func graft(t, marker, outer *Type) *Type {
	if t == marker {
		return outer
	}
	cp := *t
	if t.Base != nil {
		cp.Base = graft(t.Base, marker, outer)
	}
	return &cp
}

func (p *Parser) suffixes(t *Type) *Type {
	switch p.tok.Kind {
	case Tok('['):
		p.next()
		n := 0
		if p.tok.Kind != Tok(']') {
			e := p.condExpr()
			v, ok := constInt(e)
			if !ok || v < 0 {
				p.errf("array size must be a constant expression")
			} else {
				n = int(v)
			}
		}
		p.expect(Tok(']'), "']'")
		elem := p.suffixes(t)
		return ArrayOf(elem, n)
	case Tok('('):
		p.next()
		ft := &Type{Kind: TyFunc, Base: t}
		if p.tok.Kind == TVoid {
			save := p.tok
			p.next()
			if p.tok.Kind == Tok(')') {
				p.next()
				return ft
			}
			// void* parameter etc.: rewind is impossible in this
			// one-pass parser, so handle the common prefix directly.
			base := VoidType
			for p.accept(Tok('*')) {
				base = PtrTo(base)
			}
			nm, pt := p.directDeclarator(base)
			ft.Params = append(ft.Params, pt)
			ft.ParamNames = append(ft.ParamNames, nm)
			_ = save
			for p.accept(Tok(',')) {
				b, _ := p.baseType()
				nm, pt := p.declarator(b)
				ft.Params = append(ft.Params, pt)
				ft.ParamNames = append(ft.ParamNames, nm)
			}
			p.expect(Tok(')'), "')'")
			return ft
		}
		for p.tok.Kind != Tok(')') && p.tok.Kind != TEOF {
			b, _ := p.baseType()
			nm, pt := p.declarator(b)
			if pt.Kind == TyArray { // parameters of array type decay
				pt = PtrTo(pt.Base)
			}
			ft.Params = append(ft.Params, pt)
			ft.ParamNames = append(ft.ParamNames, nm)
			if !p.accept(Tok(',')) {
				break
			}
		}
		p.expect(Tok(')'), "')'")
		return ft
	}
	return t
}

// ParseUnit parses a whole translation unit.
func (p *Parser) ParseUnit() (*Unit, error) {
	for p.tok.Kind != TEOF {
		p.fileScopeDecl()
	}
	p.unit.AnchorSym = anchorName(p.unit)
	return p.unit, p.errs.Err()
}

func anchorName(u *Unit) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s", u.File)
	for _, s := range u.Syms {
		fmt.Fprintf(h, "/%s:%d", s.Name, s.Seq)
	}
	sum := h.Sum(nil)
	return fmt.Sprintf("_stanchor__V%x_%x", sum[:4], sum[4:7])
}

// initializer parses an initializer for a global or static of type t:
// a constant expression, a braced element list, or a string literal
// for a char array. Braced lists nest; missing trailing elements stay
// zero; an omitted array length is completed from the initializer.
func (p *Parser) initializer(t *Type) *Expr {
	pos := p.tok.Pos
	if p.tok.Kind == Tok('{') {
		p.next()
		var elems []*Expr
		for p.tok.Kind != Tok('}') && p.tok.Kind != TEOF {
			var et *Type
			switch t.Kind {
			case TyArray:
				et = t.Base
			case TyStruct:
				if len(elems) < len(t.Fields) {
					et = t.Fields[len(elems)].Type
				}
			case TyUnion:
				if len(elems) == 0 && len(t.Fields) > 0 {
					et = t.Fields[0].Type
				}
			}
			if et == nil {
				p.errs.Add(p.tok.Pos, "too many initializers for %s", t)
				et = IntType
			}
			elems = append(elems, p.initializer(et))
			if !p.accept(Tok(',')) {
				break
			}
		}
		p.expect(Tok('}'), "'}'")
		if t.Kind == TyArray {
			if t.Len == 0 {
				t.Len = len(elems)
			} else if len(elems) > t.Len {
				p.errs.Add(pos, "too many initializers for %s", t)
			}
		}
		return &Expr{Op: EInitList, Type: t, Args: elems, Pos: pos}
	}
	if t.Kind == TyArray && t.Base.Kind == TyChar && p.tok.Kind == TString {
		idx := len(p.unit.Strings)
		p.unit.Strings = append(p.unit.Strings, p.tok.Text)
		n := len(p.tok.Text)
		e := &Expr{Op: EString, Type: ArrayOf(CharType, n+1), IVal: int64(idx), SVal: p.tok.Text, Pos: pos}
		p.next()
		if t.Len == 0 {
			t.Len = n + 1
		} else if n+1 > t.Len {
			p.errs.Add(pos, "string initializer longer than the array")
		}
		return e
	}
	e := p.condExpr()
	return p.assignConvert(e, t, "initializer")
}

func (p *Parser) fileScopeDecl() {
	base, storage := p.baseType()
	if p.accept(Tok(';')) {
		return // bare struct declaration
	}
	for {
		name, t := p.declarator(base)
		if name == "" {
			p.errf("declaration needs a name")
			p.next()
			return
		}
		if t.Kind == TyFunc && p.tok.Kind == Tok('{') {
			p.funcDef(name, t, storage)
			return
		}
		sym := &Symbol{Name: name, Type: t, Pos: p.tok.Pos, Storage: storage}
		if t.Kind == TyFunc {
			sym.Kind = SymFunc
			sym.Label = "_" + name
		} else {
			sym.Kind = SymVar
			if storage == Static {
				sym.AnchorIdx = p.anchorWord()
				sym.Label = fmt.Sprintf("_%s__static%d", name, sym.Seq)
			} else {
				sym.Label = "_" + name
			}
		}
		if old := p.scopes[0][name]; old != nil && Same(old.Type, t) {
			// harmless redeclaration (e.g., extern after definition)
		} else {
			p.declare(sym)
			if sym.Kind == SymVar {
				p.unit.Globals = append(p.unit.Globals, sym)
			}
		}
		if p.accept(Tok('=')) {
			sym.Init = p.initializer(t)
		}
		if !p.accept(Tok(',')) {
			break
		}
	}
	p.expect(Tok(';'), "';'")
}

func (p *Parser) funcDef(name string, t *Type, storage Storage) {
	sym := p.scopes[0][name]
	if sym == nil {
		sym = &Symbol{Name: name, Type: t, Kind: SymFunc, Pos: p.tok.Pos, Storage: storage, Label: "_" + name}
		p.declare(sym)
	}
	fn := &Func{Sym: sym}
	sym.Def = fn
	p.unit.Funcs = append(p.unit.Funcs, fn)
	p.curFn = fn

	saved := p.lastSym
	p.pushScope()
	for i, pt := range t.Params {
		pn := ""
		if i < len(t.ParamNames) {
			pn = t.ParamNames[i]
		}
		if pn == "" {
			pn = fmt.Sprintf("arg%d", i)
		}
		ps := &Symbol{Name: pn, Type: pt, Kind: SymParam, Storage: Auto, Pos: p.tok.Pos}
		p.declare(ps)
		fn.Params = append(fn.Params, ps)
	}
	// Stopping point 0: the opening brace (Fig. 1 marks it on `{`).
	entry := p.stopPoint(p.tok.Pos)
	fn.Body = p.block()
	// Exit stopping point at the closing brace.
	exit := p.stopPoint(fn.Body.Pos)
	fn.Body.Stop = entry
	fn.ExitStop = exit
	for _, g := range fn.Gotos {
		if !fn.Labels[g.Name] {
			p.errs.Add(g.Pos, "goto to undefined label %q", g.Name)
		}
	}
	p.popScope(saved)
	p.curFn = nil
}

func (p *Parser) stopPoint(pos Pos) *StopPoint {
	if p.curFn == nil {
		return nil
	}
	sp := &StopPoint{
		Index:     len(p.curFn.Stops),
		Pos:       pos,
		Visible:   p.lastSym,
		AnchorIdx: p.anchorWord(),
	}
	sp.Label = fmt.Sprintf(".stop_%s_%d", p.curFn.Sym.Name, sp.Index)
	p.curFn.Stops = append(p.curFn.Stops, sp)
	return sp
}

// --- statements ---

func (p *Parser) block() *Stmt {
	pos := p.tok.Pos
	p.expect(Tok('{'), "'{'")
	blk := &Stmt{Op: SBlock, Pos: pos}
	saved := p.lastSym
	p.pushScope()
	for p.tok.Kind != Tok('}') && p.tok.Kind != TEOF {
		if p.isTypeStart() {
			p.localDecl(blk)
			continue
		}
		blk.Body = append(blk.Body, p.stmt())
	}
	blk.Pos = p.tok.Pos // closing brace
	p.expect(Tok('}'), "'}'")
	p.popScope(saved)
	return blk
}

func (p *Parser) localDecl(blk *Stmt) {
	base, storage := p.baseType()
	if p.accept(Tok(';')) {
		return // bare aggregate or enum declaration
	}
	for {
		pos := p.tok.Pos
		name, t := p.declarator(base)
		if name == "" {
			p.errf("declaration needs a name")
			break
		}
		sym := &Symbol{Name: name, Type: t, Kind: SymVar, Pos: pos, Storage: storage}
		p.declare(sym)
		switch storage {
		case Static:
			sym.AnchorIdx = p.anchorWord()
			sym.Label = fmt.Sprintf("_%s__%s%d", p.curFn.Sym.Name, name, sym.Seq)
			p.curFn.Statics = append(p.curFn.Statics, sym)
		default:
			sym.Storage = Auto
			p.curFn.Locals = append(p.curFn.Locals, sym)
		}
		if p.accept(Tok('=')) {
			if storage == Static {
				sym.Init = p.initializer(t)
			} else if p.tok.Kind == Tok('{') || p.tok.Kind == TString && t.Kind == TyArray {
				p.errs.Add(pos, "braced initializers are only supported for globals and statics")
				p.initializer(t) // consume it
			} else {
				e := p.condExpr()
				lhs := &Expr{Op: EIdent, Type: t, Sym: sym, Pos: pos}
				asg := p.assign(lhs, e, pos)
				st := &Stmt{Op: SExpr, Pos: pos, Expr: asg, Stop: p.stopPoint(pos)}
				blk.Body = append(blk.Body, st)
			}
		}
		if !p.accept(Tok(',')) {
			break
		}
	}
	p.expect(Tok(';'), "';'")
}

func (p *Parser) stmt() *Stmt {
	pos := p.tok.Pos
	if p.tok.Kind == TIdent && p.peekNext().Kind == Tok(':') {
		name := p.tok.Text
		p.next() // label
		p.next() // :
		if p.curFn.Labels == nil {
			p.curFn.Labels = map[string]bool{}
		}
		if p.curFn.Labels[name] {
			p.errs.Add(pos, "duplicate label %q", name)
		}
		p.curFn.Labels[name] = true
		return &Stmt{Op: SLabel, Pos: pos, Name: name, Then: p.stmt()}
	}
	switch p.tok.Kind {
	case Tok('{'):
		return p.block()
	case TGoto:
		p.next()
		name := p.expect(TIdent, "label name").Text
		p.curFn.Gotos = append(p.curFn.Gotos, GotoRef{name, pos})
		p.expect(Tok(';'), "';'")
		return &Stmt{Op: SGoto, Pos: pos, Name: name, Stop: p.stopPoint(pos)}
	case Tok(';'):
		p.next()
		return &Stmt{Op: SEmpty, Pos: pos}
	case TIf:
		p.next()
		p.expect(Tok('('), "'('")
		stop := p.stopPoint(pos)
		cond := p.scalarExpr()
		p.expect(Tok(')'), "')'")
		s := &Stmt{Op: SIf, Pos: pos, Cond: cond, Stop: stop}
		s.Then = p.stmt()
		if p.accept(TElse) {
			s.Else = p.stmt()
		}
		return s
	case TDo:
		p.next()
		p.loop++
		s := &Stmt{Op: SDo, Pos: pos}
		s.Then = p.stmt()
		p.loop--
		p.expect(TWhile, "while")
		p.expect(Tok('('), "'('")
		s.CondStop = p.stopPoint(p.tok.Pos)
		s.Cond = p.scalarExpr()
		p.expect(Tok(')'), "')'")
		p.expect(Tok(';'), "';'")
		return s
	case TSwitch:
		p.next()
		p.expect(Tok('('), "'('")
		stop := p.stopPoint(pos)
		s := &Stmt{Op: SSwitch, Pos: pos, Stop: stop}
		e := p.expr()
		if !e.Type.IsInteger() {
			p.errs.Add(pos, "switch requires an integer expression")
		}
		s.Expr = p.promote(e)
		p.expect(Tok(')'), "')'")
		p.expect(Tok('{'), "'{'")
		p.loop++ // break works inside switch
		seenDefault := false
		seen := map[int64]bool{}
		for p.tok.Kind == TCase || p.tok.Kind == TDefault {
			var c SwitchCase
			if p.accept(TDefault) {
				if seenDefault {
					p.errf("duplicate default")
				}
				seenDefault = true
				c.IsDefault = true
			} else {
				p.expect(TCase, "case")
				ce := p.condExpr()
				v, ok := constInt(ce)
				if !ok {
					p.errf("case requires a constant expression")
				}
				if seen[v] {
					p.errf("duplicate case %d", v)
				}
				seen[v] = true
				c.Val = v
			}
			p.expect(Tok(':'), "':'")
			for p.tok.Kind != TCase && p.tok.Kind != TDefault && p.tok.Kind != Tok('}') && p.tok.Kind != TEOF {
				c.Body = append(c.Body, p.stmt())
			}
			s.Cases = append(s.Cases, c)
		}
		p.loop--
		p.expect(Tok('}'), "'}'")
		return s
	case TWhile:
		p.next()
		p.expect(Tok('('), "'('")
		stop := p.stopPoint(pos)
		cond := p.scalarExpr()
		p.expect(Tok(')'), "')'")
		p.loop++
		s := &Stmt{Op: SWhile, Pos: pos, Cond: cond, Stop: stop}
		s.Then = p.stmt()
		p.loop--
		return s
	case TFor:
		p.next()
		p.expect(Tok('('), "'('")
		s := &Stmt{Op: SFor, Pos: pos}
		if p.tok.Kind != Tok(';') {
			s.Stop = p.stopPoint(p.tok.Pos)
			s.Init = p.expr()
		}
		p.expect(Tok(';'), "';'")
		if p.tok.Kind != Tok(';') {
			s.CondStop = p.stopPoint(p.tok.Pos)
			s.Cond = p.scalarExpr()
		}
		p.expect(Tok(';'), "';'")
		if p.tok.Kind != Tok(')') {
			s.PostStop = p.stopPoint(p.tok.Pos)
			s.Post = p.expr()
		}
		p.expect(Tok(')'), "')'")
		p.loop++
		s.Then = p.stmt()
		p.loop--
		return s
	case TReturn:
		p.next()
		s := &Stmt{Op: SReturn, Pos: pos, Stop: p.stopPoint(pos)}
		if p.tok.Kind != Tok(';') {
			e := p.expr()
			ret := IntType
			if p.curFn != nil {
				ret = p.curFn.Sym.Type.Base
			}
			s.Expr = p.assignConvert(e, ret, "return value")
		}
		p.expect(Tok(';'), "';'")
		return s
	case TBreak:
		p.next()
		if p.loop == 0 {
			p.errf("break outside a loop")
		}
		p.expect(Tok(';'), "';'")
		return &Stmt{Op: SBreak, Pos: pos}
	case TContinue:
		p.next()
		if p.loop == 0 {
			p.errf("continue outside a loop")
		}
		p.expect(Tok(';'), "';'")
		return &Stmt{Op: SContinue, Pos: pos}
	default:
		stop := p.stopPoint(pos)
		e := p.expr()
		p.expect(Tok(';'), "';'")
		return &Stmt{Op: SExpr, Pos: pos, Expr: e, Stop: stop}
	}
}

// ParseDecl parses a single C declaration ("int a[20]") and returns the
// declared name and type. The expression server uses it to reconstruct
// symbol-table entries from the sequences of C tokens ldb sends in
// reply to lookups (§3).
func ParseDecl(src string, tc *TargetConf) (string, *Type, error) {
	p := NewParser(src, "<decl>", tc)
	base, _ := p.baseType()
	name, t := p.declarator(base)
	if err := p.errs.Err(); err != nil {
		return "", nil, err
	}
	return name, t, nil
}
