package cc

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"ldb/internal/workload"
)

// TestParserSurvivesGarbage feeds the parser random token soup and
// mutated programs: it must terminate with a normal error, never panic
// or hang.
func TestParserSurvivesGarbage(t *testing.T) {
	tokens := []string{
		"int", "char", "double", "struct", "union", "enum", "static", "if", "else",
		"while", "for", "do", "switch", "case", "default", "return", "goto",
		"break", "continue", "sizeof", "x", "y", "main", "42", "1.5",
		"'c'", `"str"`, "(", ")", "{", "}", "[", "]", ";", ",", "+",
		"-", "*", "/", "%", "=", "==", "<", ">", "<<", ">>", "&", "|",
		"^", "!", "~", "?", ":", "&&", "||", "++", "--", "->", ".",
		"+=", "<<=", "0x1f",
	}
	r := rand.New(rand.NewSource(7))
	runOne := func(src string) {
		t.Helper()
		done := make(chan struct{})
		go func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("panic on %q: %v", src, p)
				}
				close(done)
			}()
			_, _ = Compile(src, "fuzz.c", testConf)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("parser hung on %q", src)
		}
	}
	for i := 0; i < 300; i++ {
		n := r.Intn(40)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteString(tokens[r.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		runOne(b.String())
	}
	// Mutations of a real program: deletions and swaps.
	base := strings.Fields(fibSrc)
	for i := 0; i < 200; i++ {
		mut := append([]string(nil), base...)
		switch r.Intn(3) {
		case 0:
			if len(mut) > 1 {
				k := r.Intn(len(mut))
				mut = append(mut[:k], mut[k+1:]...)
			}
		case 1:
			a, b := r.Intn(len(mut)), r.Intn(len(mut))
			mut[a], mut[b] = mut[b], mut[a]
		default:
			k := r.Intn(len(mut))
			mut[k] = tokens[r.Intn(len(tokens))]
		}
		runOne(strings.Join(mut, " "))
	}
	// Generator-produced programs as mutation seeds: the scenario
	// corpus generator emits exactly the C-subset shapes grown for it
	// (multi-dimensional arrays, struct-by-value calls and returns,
	// function-pointer dispatch), so mutations of its output probe the
	// parser and typechecker where the new constructs interlock.
	for seed := int64(0); seed < 8; seed++ {
		src := workload.Generate(seed).Source
		runOne(src)
		gtoks := strings.Fields(src)
		for i := 0; i < 25; i++ {
			mut := append([]string(nil), gtoks...)
			switch r.Intn(3) {
			case 0:
				k := r.Intn(len(mut))
				mut = append(mut[:k], mut[k+1:]...)
			case 1:
				a, b := r.Intn(len(mut)), r.Intn(len(mut))
				mut[a], mut[b] = mut[b], mut[a]
			default:
				k := r.Intn(len(mut))
				mut[k] = tokens[r.Intn(len(tokens))]
			}
			runOne(strings.Join(mut, " "))
		}
	}
	// Pathological raw inputs.
	for _, src := range []string{
		"", "((((((((((", "}}}}}}}}", `"unterminated`,
		"/* unterminated", "int a[", "struct {",
		strings.Repeat("{", 200), strings.Repeat("(", 200),
		"int " + strings.Repeat("*", 500) + "p;",
		"'", "\\", "int x = 'a",
	} {
		runOne(src)
	}
}
