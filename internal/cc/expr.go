package cc

// Expression parsing and typechecking. The subset follows K&R practice
// where it simplifies the back ends: float arithmetic is computed in
// double, structs are manipulated through members (no struct
// assignment, parameters, or returns), and calling an undeclared
// function implicitly declares it as returning int with unchecked
// arguments.

func intConst(v int64, pos Pos) *Expr {
	return &Expr{Op: EConst, Type: IntType, IVal: v, Pos: pos}
}

// constInt evaluates a constant integer expression tree.
func constInt(e *Expr) (int64, bool) {
	if e == nil {
		return 0, false
	}
	switch e.Op {
	case EConst:
		return e.IVal, true
	case ENeg:
		v, ok := constInt(e.L)
		return -v, ok
	case EBitNot:
		v, ok := constInt(e.L)
		return ^v, ok
	case ECast:
		if e.Type.IsInteger() {
			return constInt(e.L)
		}
	case EAdd, ESub, EMul, EDiv, ERem, EAnd, EOr, EXor, EShl, EShr:
		a, ok1 := constInt(e.L)
		b, ok2 := constInt(e.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case EAdd:
			return a + b, true
		case ESub:
			return a - b, true
		case EMul:
			return a * b, true
		case EDiv:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case ERem:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case EAnd:
			return a & b, true
		case EOr:
			return a | b, true
		case EXor:
			return a ^ b, true
		case EShl:
			return a << (uint(b) & 31), true
		case EShr:
			return a >> (uint(b) & 31), true
		}
	}
	return 0, false
}

// decay converts arrays to pointers to their first element and
// function designators to pointers to the function, so `fp = f` and
// `ops[2] = f` work without an explicit &.
func (p *Parser) decay(e *Expr) *Expr {
	if e.Type != nil && e.Type.Kind == TyArray {
		return &Expr{Op: EAddr, Type: PtrTo(e.Type.Base), L: e, Pos: e.Pos}
	}
	if e.Type != nil && e.Type.Kind == TyFunc {
		return &Expr{Op: EAddr, Type: PtrTo(e.Type), L: e, Pos: e.Pos}
	}
	return e
}

// cast wraps e in a conversion to t unless it already has that type.
func (p *Parser) cast(e *Expr, t *Type) *Expr {
	if Same(e.Type, t) {
		return e
	}
	// Fold constant conversions.
	if e.Op == EConst && t.IsInteger() {
		v := e.IVal
		switch t.Kind {
		case TyChar:
			v = int64(int8(v))
		case TyShort:
			v = int64(int16(v))
		case TyUInt:
			v = int64(uint32(v))
		default:
			v = int64(int32(v))
		}
		return &Expr{Op: EConst, Type: t, IVal: v, Pos: e.Pos}
	}
	if e.Op == EConst && t.IsFloat() {
		return &Expr{Op: EFConst, Type: t, FVal: float64(e.IVal), Pos: e.Pos}
	}
	return &Expr{Op: ECast, Type: t, L: e, Pos: e.Pos}
}

// promote applies the default promotions: char/short → int, float →
// double.
func (p *Parser) promote(e *Expr) *Expr {
	switch e.Type.Kind {
	case TyChar, TyShort:
		return p.cast(e, IntType)
	case TyFloat:
		return p.cast(e, DoubleType)
	}
	return e
}

// usual applies the usual arithmetic conversions to both operands.
func (p *Parser) usual(a, b *Expr) (*Expr, *Expr, *Type) {
	a, b = p.promote(a), p.promote(b)
	var t *Type
	switch {
	case a.Type.Kind == TyLDouble || b.Type.Kind == TyLDouble:
		t = LDoubleType
	case a.Type.IsFloat() || b.Type.IsFloat():
		t = DoubleType
	case a.Type.Kind == TyUInt || b.Type.Kind == TyUInt:
		t = UIntType
	default:
		t = IntType
	}
	return p.cast(a, t), p.cast(b, t), t
}

// assignConvert converts e for assignment to type t.
func (p *Parser) assignConvert(e *Expr, t *Type, what string) *Expr {
	if e == nil || t == nil {
		return e
	}
	e = p.decay(e)
	switch {
	case t.IsArith() && e.Type.IsArith():
		return p.cast(e, t)
	case t.Kind == TyPtr && e.Type.Kind == TyPtr:
		if !Same(t.Base, e.Type.Base) && t.Base.Kind != TyVoid && e.Type.Base.Kind != TyVoid {
			p.errs.Add(e.Pos, "incompatible pointer types in %s", what)
		}
		return p.cast(e, t)
	case t.Kind == TyPtr && e.Op == EConst && e.IVal == 0:
		return p.cast(e, t)
	case t.Kind == TyVoid:
		return e
	case Same(t, e.Type):
		return e
	}
	p.errs.Add(e.Pos, "type mismatch in %s: cannot convert %s to %s", what, e.Type, t)
	return e
}

// scalarExpr parses an expression and requires a scalar result.
func (p *Parser) scalarExpr() *Expr {
	e := p.decay(p.expr())
	if e.Type != nil && !e.Type.IsScalar() {
		p.errs.Add(e.Pos, "scalar required, found %s", e.Type)
	}
	return e
}

// expr parses a full expression, including the comma operator.
func (p *Parser) expr() *Expr {
	e := p.assignExpr()
	for p.tok.Kind == Tok(',') {
		pos := p.tok.Pos
		p.next()
		r := p.assignExpr()
		e = &Expr{Op: EComma, Type: r.Type, L: e, R: r, Pos: pos}
	}
	return e
}

var compoundOps = map[Tok]ExprOp{
	TAddEq: EAdd, TSubEq: ESub, TMulEq: EMul, TDivEq: EDiv, TRemEq: ERem,
	TAndEq: EAnd, TOrEq: EOr, TXorEq: EXor, TShlEq: EShl, TShrEq: EShr,
}

func (p *Parser) assignExpr() *Expr {
	lhs := p.condExpr()
	if p.tok.Kind == Tok('=') {
		pos := p.tok.Pos
		p.next()
		rhs := p.assignExpr()
		return p.assign(lhs, rhs, pos)
	}
	if op, ok := compoundOps[p.tok.Kind]; ok {
		pos := p.tok.Pos
		// a op= b desugars to a = a op b; the lvalue is evaluated
		// twice, so side effects in it are rejected.
		if hasSideEffects(lhs) {
			p.errs.Add(pos, "compound assignment to an lvalue with side effects")
		}
		p.next()
		rhs := p.assignExpr()
		return p.assign(lhs, p.mkBin(op, lhs, rhs, pos), pos)
	}
	return lhs
}

// hasSideEffects conservatively detects calls, assignments, and
// increments inside an expression.
func hasSideEffects(e *Expr) bool {
	if e == nil {
		return false
	}
	switch e.Op {
	case ECall, EAssign, EPostInc, EPostDec, EPreInc, EPreDec, EComma:
		return true
	}
	if hasSideEffects(e.L) || hasSideEffects(e.R) {
		return true
	}
	for _, a := range e.Args {
		if hasSideEffects(a) {
			return true
		}
	}
	return false
}

func (p *Parser) assign(lhs, rhs *Expr, pos Pos) *Expr {
	if !lhs.IsLValue() {
		p.errs.Add(pos, "assignment to a non-lvalue")
	}
	if lhs.Type.Kind == TyArray {
		p.errs.Add(pos, "cannot assign whole arrays")
	}
	rhs = p.assignConvert(rhs, lhs.Type, "assignment")
	return &Expr{Op: EAssign, Type: lhs.Type, L: lhs, R: rhs, Pos: pos}
}

func (p *Parser) condExpr() *Expr {
	c := p.logOrExpr()
	if p.tok.Kind != Tok('?') {
		return c
	}
	pos := p.tok.Pos
	p.next()
	c = p.decay(c)
	a := p.decay(p.expr())
	p.expect(Tok(':'), "':'")
	b := p.decay(p.condExpr())
	var t *Type
	switch {
	case a.Type.IsArith() && b.Type.IsArith():
		a, b, t = p.usual(a, b)
	case Same(a.Type, b.Type):
		t = a.Type
	case a.Type.Kind == TyPtr && b.Op == EConst && b.IVal == 0:
		t = a.Type
		b = p.cast(b, t)
	case b.Type.Kind == TyPtr && a.Op == EConst && a.IVal == 0:
		t = b.Type
		a = p.cast(a, t)
	default:
		p.errs.Add(pos, "mismatched branches of ?: (%s vs %s)", a.Type, b.Type)
		t = a.Type
	}
	return &Expr{Op: ECond, Type: t, L: c, Args: []*Expr{a, b}, Pos: pos}
}

// binExpr climbs the binary-operator precedence levels.
func (p *Parser) binExpr(prec int) *Expr {
	levels := [][]struct {
		tok Tok
		op  ExprOp
	}{
		{{TOrOr, ELogOr}},
		{{TAndAnd, ELogAnd}},
		{{Tok('|'), EOr}},
		{{Tok('^'), EXor}},
		{{Tok('&'), EAnd}},
		{{TEq, EEq}, {TNe, ENe}},
		{{Tok('<'), ELt}, {Tok('>'), EGt}, {TLe, ELe}, {TGe, EGe}},
		{{TShl, EShl}, {TShr, EShr}},
		{{Tok('+'), EAdd}, {Tok('-'), ESub}},
		{{Tok('*'), EMul}, {Tok('/'), EDiv}, {Tok('%'), ERem}},
	}
	if prec >= len(levels) {
		return p.unaryExpr()
	}
	lhs := p.binExpr(prec + 1)
	for {
		matched := false
		for _, cand := range levels[prec] {
			if p.tok.Kind == cand.tok {
				pos := p.tok.Pos
				p.next()
				rhs := p.binExpr(prec + 1)
				lhs = p.mkBin(cand.op, lhs, rhs, pos)
				matched = true
				break
			}
		}
		if !matched {
			return lhs
		}
	}
}

func (p *Parser) logOrExpr() *Expr { return p.binExpr(0) }

func (p *Parser) mkBin(op ExprOp, a, b *Expr, pos Pos) *Expr {
	a, b = p.decay(a), p.decay(b)
	switch op {
	case ELogAnd, ELogOr:
		if !a.Type.IsScalar() || !b.Type.IsScalar() {
			p.errs.Add(pos, "scalar operands required for %v", op)
		}
		return &Expr{Op: op, Type: IntType, L: a, R: b, Pos: pos}
	case EEq, ENe, ELt, ELe, EGt, EGe:
		if a.Type.Kind == TyPtr || b.Type.Kind == TyPtr {
			// pointer comparison (including against the constant 0)
			if a.Type.Kind != TyPtr {
				a = p.cast(a, b.Type)
			}
			if b.Type.Kind != TyPtr {
				b = p.cast(b, a.Type)
			}
			return &Expr{Op: op, Type: IntType, L: a, R: b, Pos: pos}
		}
		if !a.Type.IsArith() || !b.Type.IsArith() {
			p.errs.Add(pos, "invalid comparison of %s and %s", a.Type, b.Type)
			return &Expr{Op: op, Type: IntType, L: a, R: b, Pos: pos}
		}
		a, b, _ = p.usual(a, b)
		return &Expr{Op: op, Type: IntType, L: a, R: b, Pos: pos}
	case EAdd, ESub:
		if a.Type.Kind == TyPtr && b.Type.IsInteger() {
			return &Expr{Op: op, Type: a.Type, L: a, R: p.promote(b), Pos: pos}
		}
		if op == EAdd && a.Type.IsInteger() && b.Type.Kind == TyPtr {
			return &Expr{Op: op, Type: b.Type, L: b, R: p.promote(a), Pos: pos}
		}
		if op == ESub && a.Type.Kind == TyPtr && b.Type.Kind == TyPtr {
			if !Same(a.Type.Base, b.Type.Base) {
				p.errs.Add(pos, "subtraction of incompatible pointers")
			}
			return &Expr{Op: ESub, Type: IntType, L: a, R: b, Pos: pos}
		}
		fallthrough
	case EMul, EDiv:
		if !a.Type.IsArith() || !b.Type.IsArith() {
			p.errs.Add(pos, "arithmetic operands required for %v", op)
			return &Expr{Op: op, Type: IntType, L: a, R: b, Pos: pos}
		}
		var t *Type
		a, b, t = p.usual(a, b)
		e := &Expr{Op: op, Type: t, L: a, R: b, Pos: pos}
		if v, ok := constInt(e); ok && t.IsInteger() {
			return &Expr{Op: EConst, Type: t, IVal: v, Pos: pos}
		}
		return e
	case ERem, EAnd, EOr, EXor, EShl, EShr:
		if !a.Type.IsInteger() || !b.Type.IsInteger() {
			p.errs.Add(pos, "integer operands required for %v", op)
			return &Expr{Op: op, Type: IntType, L: a, R: b, Pos: pos}
		}
		var t *Type
		a, b, t = p.usual(a, b)
		if op == EShl || op == EShr {
			t = a.Type
		}
		e := &Expr{Op: op, Type: t, L: a, R: b, Pos: pos}
		if v, ok := constInt(e); ok {
			return &Expr{Op: EConst, Type: t, IVal: v, Pos: pos}
		}
		return e
	}
	p.errs.Add(pos, "unexpected operator %v", op)
	return a
}

func (p *Parser) unaryExpr() *Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case Tok('-'):
		p.next()
		e := p.promote(p.decay(p.unaryExpr()))
		if !e.Type.IsArith() {
			p.errs.Add(pos, "arithmetic operand required for unary minus")
		}
		if e.Op == EConst {
			return &Expr{Op: EConst, Type: e.Type, IVal: -e.IVal, Pos: pos}
		}
		if e.Op == EFConst {
			return &Expr{Op: EFConst, Type: e.Type, FVal: -e.FVal, Pos: pos}
		}
		return &Expr{Op: ENeg, Type: e.Type, L: e, Pos: pos}
	case Tok('+'):
		p.next()
		return p.promote(p.decay(p.unaryExpr()))
	case Tok('!'):
		p.next()
		e := p.decay(p.unaryExpr())
		return &Expr{Op: ELogNot, Type: IntType, L: e, Pos: pos}
	case Tok('~'):
		p.next()
		e := p.promote(p.decay(p.unaryExpr()))
		if !e.Type.IsInteger() {
			p.errs.Add(pos, "integer operand required for ~")
		}
		if v, ok := constInt(&Expr{Op: EBitNot, L: e}); ok {
			return &Expr{Op: EConst, Type: e.Type, IVal: v, Pos: pos}
		}
		return &Expr{Op: EBitNot, Type: e.Type, L: e, Pos: pos}
	case Tok('*'):
		p.next()
		e := p.decay(p.unaryExpr())
		if e.Type.Kind != TyPtr {
			p.errs.Add(pos, "cannot dereference %s", e.Type)
			return e
		}
		return &Expr{Op: EDeref, Type: e.Type.Base, L: e, Pos: pos}
	case Tok('&'):
		p.next()
		e := p.unaryExpr()
		if e.Op == EIdent && e.Sym != nil && e.Sym.Kind == SymFunc {
			return &Expr{Op: EAddr, Type: PtrTo(e.Type), L: e, Pos: pos}
		}
		if !e.IsLValue() {
			p.errs.Add(pos, "cannot take the address of a non-lvalue")
		}
		return &Expr{Op: EAddr, Type: PtrTo(e.Type), L: e, Pos: pos}
	case TInc, TDec:
		op := EPreInc
		if p.tok.Kind == TDec {
			op = EPreDec
		}
		p.next()
		e := p.unaryExpr()
		return p.incdec(op, e, pos)
	case TSizeof:
		p.next()
		if p.tok.Kind == Tok('(') && p.peekIsType() {
			p.next()
			base, _ := p.baseType()
			_, t := p.declarator(base)
			p.expect(Tok(')'), "')'")
			return intConst(int64(t.Size(p.tc)), pos)
		}
		e := p.unaryExpr()
		return intConst(int64(e.Type.Size(p.tc)), pos)
	case Tok('('):
		if p.peekIsType() {
			p.next()
			base, _ := p.baseType()
			_, t := p.declarator(base)
			p.expect(Tok(')'), "')'")
			e := p.decay(p.unaryExpr())
			if !t.IsScalar() && t.Kind != TyVoid {
				p.errs.Add(pos, "invalid cast to %s", t)
			}
			return p.cast(e, t)
		}
	}
	return p.postfixExpr()
}

// peekIsType reports whether '(' is followed by a type name. The lexer
// has one-token lookahead only, so peek into the raw source.
func (p *Parser) peekIsType() bool {
	if p.tok.Kind != Tok('(') {
		return false
	}
	save := *p.lex
	saveTok := p.tok
	p.next()
	isType := p.isTypeStart()
	*p.lex = save
	p.tok = saveTok
	return isType
}

func (p *Parser) incdec(op ExprOp, e *Expr, pos Pos) *Expr {
	if !e.IsLValue() || !e.Type.IsScalar() {
		p.errs.Add(pos, "++/-- requires a scalar lvalue")
	}
	return &Expr{Op: op, Type: e.Type, L: e, Pos: pos}
}

func (p *Parser) postfixExpr() *Expr {
	e := p.primaryExpr()
	for {
		pos := p.tok.Pos
		switch p.tok.Kind {
		case Tok('['):
			p.next()
			idx := p.expr()
			p.expect(Tok(']'), "']'")
			base := p.decay(e)
			if base.Type.Kind != TyPtr {
				p.errs.Add(pos, "subscripted value is not an array or pointer")
				return e
			}
			sum := p.mkBin(EAdd, base, idx, pos)
			e = &Expr{Op: EDeref, Type: base.Type.Base, L: sum, Pos: pos}
		case Tok('('):
			p.next()
			e = p.call(e, pos)
		case Tok('.'):
			p.next()
			name := p.expect(TIdent, "member name").Text
			if e.Type.Kind != TyStruct && e.Type.Kind != TyUnion {
				p.errs.Add(pos, ". applied to non-struct %s", e.Type)
				return e
			}
			f, ok := e.Type.FieldByName(name)
			if !ok {
				p.errs.Add(pos, "no member %q in %s", name, e.Type)
				return e
			}
			e = &Expr{Op: EMember, Type: f.Type, L: e, Field: f, Pos: pos}
		case TArrow:
			p.next()
			name := p.expect(TIdent, "member name").Text
			base := p.decay(e)
			if base.Type.Kind != TyPtr || (base.Type.Base.Kind != TyStruct && base.Type.Base.Kind != TyUnion) {
				p.errs.Add(pos, "-> applied to non-struct-pointer %s", e.Type)
				return e
			}
			st := base.Type.Base
			f, ok := st.FieldByName(name)
			if !ok {
				p.errs.Add(pos, "no member %q in struct %s", name, st.Tag)
				return e
			}
			deref := &Expr{Op: EDeref, Type: st, L: base, Pos: pos}
			e = &Expr{Op: EMember, Type: f.Type, L: deref, Field: f, Pos: pos}
		case TInc:
			p.next()
			e = p.incdec(EPostInc, e, pos)
		case TDec:
			p.next()
			e = p.incdec(EPostDec, e, pos)
		default:
			return e
		}
	}
}

func (p *Parser) call(callee *Expr, pos Pos) *Expr {
	var ft *Type
	switch {
	case callee.Type.Kind == TyFunc:
		ft = callee.Type
	case callee.Type.Kind == TyPtr && callee.Type.Base.Kind == TyFunc:
		ft = callee.Type.Base
	default:
		p.errs.Add(pos, "called object is not a function")
		ft = &Type{Kind: TyFunc, Base: IntType}
	}
	var args []*Expr
	for p.tok.Kind != Tok(')') && p.tok.Kind != TEOF {
		args = append(args, p.assignExpr())
		if !p.accept(Tok(',')) {
			break
		}
	}
	p.expect(Tok(')'), "')'")
	if ft.Params != nil {
		if len(args) != len(ft.Params) {
			p.errs.Add(pos, "wrong number of arguments: %d given, %d expected", len(args), len(ft.Params))
		}
		for i := range args {
			if i < len(ft.Params) {
				args[i] = p.assignConvert(args[i], ft.Params[i], "argument")
			}
		}
	} else {
		// Unchecked (printf-style): default promotions only. A struct
		// cannot travel through an unchecked call — the callee would
		// not know its size.
		for i := range args {
			args[i] = p.promote(p.decay(args[i]))
			if args[i].Type.Kind == TyStruct || args[i].Type.Kind == TyUnion {
				p.errs.Add(args[i].Pos, "aggregate argument requires a prototype")
			}
		}
	}
	return &Expr{Op: ECall, Type: ft.Base, L: callee, Args: args, Pos: pos}
}

func (p *Parser) primaryExpr() *Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TNumber, TChar:
		v := p.tok.IVal
		p.next()
		return intConst(v, pos)
	case TFNumber:
		v := p.tok.FVal
		p.next()
		return &Expr{Op: EFConst, Type: DoubleType, FVal: v, Pos: pos}
	case TString:
		idx := len(p.unit.Strings)
		p.unit.Strings = append(p.unit.Strings, p.tok.Text)
		n := len(p.tok.Text)
		p.next()
		return &Expr{Op: EString, Type: ArrayOf(CharType, n+1), IVal: int64(idx), SVal: p.unit.Strings[idx], Pos: pos}
	case TIdent:
		name := p.tok.Text
		p.next()
		sym := p.resolve(name)
		if sym == nil {
			if p.tok.Kind == Tok('(') {
				// implicit function declaration: extern int name()
				sym = &Symbol{
					Name: name, Kind: SymFunc, Storage: Extern,
					Type: &Type{Kind: TyFunc, Base: IntType}, Pos: pos,
					Label: "_" + name,
				}
				p.scopes[0][name] = sym
				sym.Uplink = nil
				sym.Seq = len(p.unit.Syms) + 1
				p.unit.Syms = append(p.unit.Syms, sym)
			} else {
				p.errs.Add(pos, "undeclared identifier %q", name)
				return intConst(0, pos)
			}
		}
		if sym.Kind == SymEnumConst {
			return intConst(sym.Init.IVal, pos)
		}
		return &Expr{Op: EIdent, Type: sym.Type, Sym: sym, Pos: pos}
	case Tok('('):
		p.next()
		e := p.expr()
		p.expect(Tok(')'), "')'")
		return e
	}
	p.errf("unexpected token %q in expression", p.tok.Text)
	p.next()
	return intConst(0, pos)
}

// ParseExpression parses a single expression followed by EOF — the
// expression server's entry point.
func (p *Parser) ParseExpression() (*Expr, error) {
	e := p.expr()
	if p.tok.Kind != TEOF && p.tok.Kind != Tok(';') {
		p.errf("trailing tokens after expression")
	}
	return e, p.errs.Err()
}
