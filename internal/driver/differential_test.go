package driver

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/link"
)

// A differential tester for the whole compile-assemble-link-simulate
// stack: generate random integer expressions, evaluate them in Go with
// C's int32 semantics, and require every target to print the same
// value.

// expr is a generated expression: C text plus its value.
type dexpr struct {
	text string
	val  int32
}

type dgen struct {
	r    *rand.Rand
	vars map[string]int32
}

func (g *dgen) leaf() dexpr {
	if g.r.Intn(3) == 0 {
		names := []string{"va", "vb", "vc"}
		n := names[g.r.Intn(len(names))]
		return dexpr{text: n, val: g.vars[n]}
	}
	v := int32(g.r.Intn(201) - 100)
	if v < 0 {
		return dexpr{text: fmt.Sprintf("(%d)", v), val: v}
	}
	return dexpr{text: fmt.Sprint(v), val: v}
}

func (g *dgen) gen(depth int) dexpr {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.r.Intn(14) {
	case 0, 1:
		l, r := g.gen(depth-1), g.gen(depth-1)
		return dexpr{text: "(" + l.text + " + " + r.text + ")", val: l.val + r.val}
	case 2, 3:
		l, r := g.gen(depth-1), g.gen(depth-1)
		return dexpr{text: "(" + l.text + " - " + r.text + ")", val: l.val - r.val}
	case 4, 5:
		l, r := g.gen(depth-1), g.gen(depth-1)
		return dexpr{text: "(" + l.text + " * " + r.text + ")", val: l.val * r.val}
	case 6:
		l, r := g.gen(depth-1), g.gen(depth-1)
		// Guarantee a nonzero divisor with | 1.
		div := r.val | 1
		return dexpr{text: "(" + l.text + " / (" + r.text + " | 1))", val: l.val / div}
	case 7:
		l, r := g.gen(depth-1), g.gen(depth-1)
		div := r.val | 1
		return dexpr{text: "(" + l.text + " % (" + r.text + " | 1))", val: l.val % div}
	case 8:
		l, r := g.gen(depth-1), g.gen(depth-1)
		return dexpr{text: "(" + l.text + " & " + r.text + ")", val: l.val & r.val}
	case 9:
		l, r := g.gen(depth-1), g.gen(depth-1)
		return dexpr{text: "(" + l.text + " | " + r.text + ")", val: l.val | r.val}
	case 10:
		l, r := g.gen(depth-1), g.gen(depth-1)
		return dexpr{text: "(" + l.text + " ^ " + r.text + ")", val: l.val ^ r.val}
	case 11:
		l := g.gen(depth - 1)
		sh := g.r.Intn(12)
		return dexpr{text: fmt.Sprintf("(%s << %d)", l.text, sh), val: l.val << uint(sh)}
	case 12:
		l := g.gen(depth - 1)
		sh := g.r.Intn(12)
		return dexpr{text: fmt.Sprintf("(%s >> %d)", l.text, sh), val: l.val >> uint(sh)}
	default:
		c, a, b := g.gen(depth-1), g.gen(depth-1), g.gen(depth-1)
		v := b.val
		if c.val != 0 {
			v = a.val
		}
		return dexpr{text: "(" + c.text + " ? " + a.text + " : " + b.text + ")", val: v}
	}
}

func TestDifferentialExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(421992)) // deterministic
	for round := 0; round < 12; round++ {
		g := &dgen{r: r, vars: map[string]int32{
			"va": int32(r.Intn(2001) - 1000),
			"vb": int32(r.Intn(2001) - 1000),
			"vc": int32(r.Intn(41) - 20),
		}}
		var exprs []dexpr
		var body strings.Builder
		fmt.Fprintf(&body, "int va = %d;\nint vb = %d;\nint vc = %d;\nint main() {\n", g.vars["va"], g.vars["vb"], g.vars["vc"])
		for i := 0; i < 6; i++ {
			e := g.gen(3)
			exprs = append(exprs, e)
			fmt.Fprintf(&body, "\tprintf(\"%%d\\n\", %s);\n", e.text)
		}
		body.WriteString("\treturn 0;\n}\n")
		var want strings.Builder
		for _, e := range exprs {
			fmt.Fprintf(&want, "%d\n", e.val)
		}
		for _, a := range allArches {
			prog, err := Build([]Source{{Name: "diff.c", Text: body.String()}}, Options{Arch: a, Sched: a == "mips" || a == "mipsbe"})
			if err != nil {
				t.Fatalf("round %d on %s: %v\nprogram:\n%s", round, a, err, body.String())
			}
			p := link.NewProcess(prog.Image)
			if f := p.Run(); f.Kind != arch.FaultHalt {
				t.Fatalf("round %d on %s: died: %v\nprogram:\n%s", round, a, f, body.String())
			}
			if got := p.Stdout.String(); got != want.String() {
				t.Fatalf("round %d on %s:\n got %q\nwant %q\nprogram:\n%s", round, a, got, want.String(), body.String())
			}
		}
	}
}

// TestDifferentialLoops runs randomly parameterized accumulation loops
// with data-dependent control flow on all targets.
func TestDifferentialLoops(t *testing.T) {
	r := rand.New(rand.NewSource(19920706))
	for round := 0; round < 8; round++ {
		n := r.Intn(40) + 10
		stepA := int32(r.Intn(9) + 1)
		stepB := int32(r.Intn(5) + 2)
		threshold := int32(r.Intn(200))
		src := fmt.Sprintf(`
int main() {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < %d; i++) {
		if (i %% %d == 0) acc = acc + i * %d;
		else if (acc > %d) acc = acc - %d;
		else acc = acc + %d;
		while (acc > 1000) acc = acc / 2;
	}
	printf("%%d\n", acc);
	return 0;
}`, n, stepB, stepA, threshold, stepB, stepA)
		// Reference evaluation in Go with the same semantics.
		var acc int32
		for i := int32(0); i < int32(n); i++ {
			switch {
			case i%stepB == 0:
				acc += i * stepA
			case acc > threshold:
				acc -= stepB
			default:
				acc += stepA
			}
			for acc > 1000 {
				acc /= 2
			}
		}
		want := fmt.Sprintf("%d\n", acc)
		for _, a := range allArches {
			prog, err := Build([]Source{{Name: "loop.c", Text: src}}, Options{Arch: a, Debug: round%2 == 0})
			if err != nil {
				t.Fatalf("round %d on %s: %v", round, a, err)
			}
			p := link.NewProcess(prog.Image)
			f := p.Run()
			for f.Kind == arch.FaultSignal && f.Sig == arch.SigTrap && f.Code == arch.TrapPause {
				p.SetPC(f.PC + f.Len)
				f = p.Run()
			}
			if f.Kind != arch.FaultHalt {
				t.Fatalf("round %d on %s: %v", round, a, f)
			}
			if got := p.Stdout.String(); got != want {
				t.Fatalf("round %d on %s: got %q want %q\n%s", round, a, got, want, src)
			}
		}
	}
}
