package driver

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"ldb/internal/core"
	"ldb/internal/machine"
	"ldb/internal/nub"
	"ldb/internal/nub/faultrw"
)

// The adversarial soak: a real TCP nub serves a legitimate debug
// session while being harassed — the session's connection is severed
// repeatedly, hostile peers connect between operations and feed the
// server oversize frames, unknown request kinds, raw junk, and
// trickled partial frames, and a server-side fault injector corrupts
// the wire underneath everyone. The legitimate session's transcript
// must come out byte-identical to a clean in-memory run, and the nub's
// robustness counters must show the attacks actually landed.

// hostileListener wraps every accepted connection in a server-side
// fault injector while keeping the net.Conn deadline methods the nub's
// slowloris defence needs.
type hostileListener struct {
	net.Listener
	inj *faultrw.Injector
}

func (l hostileListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &injConn{Conn: c, rw: l.inj.Wrap(c)}, nil
}

// injConn routes Read/Write/Close through the injector but leaves the
// deadline methods on the embedded net.Conn, which is the same
// underlying connection — so injected faults and read deadlines
// compose the way they would on a genuinely bad network.
type injConn struct {
	net.Conn
	rw *faultrw.Conn
}

func (c *injConn) Read(p []byte) (int, error)  { return c.rw.Read(p) }
func (c *injConn) Write(p []byte) (int, error) { return c.rw.Write(p) }
func (c *injConn) Close() error                { return c.rw.Close() }

// frameBytes encodes one wire frame.
func frameBytes(t *testing.T, m *nub.Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := nub.WriteMsg(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// oversizeFrame is a structurally valid header whose payload length
// word claims far more than the server's cap; the server must reply
// MError and close without draining the claimed payload.
func oversizeFrame(t *testing.T) []byte {
	t.Helper()
	b := frameBytes(t, &nub.Msg{Kind: nub.MStoreBytes, Space: 'd', Addr: 16, Data: []byte{1}})
	b = b[:31] // header + length word, no payload
	binary.LittleEndian.PutUint32(b[27:], 0x7fffffff)
	return b
}

// hostileScript drives a fixed debug session — the valid traffic of
// the soak — calling harass() between operations. The clean reference
// run passes a no-op.
func hostileScript(t *testing.T, d *core.Debugger, tgt *core.Target, stdout *bytes.Buffer, harass func()) string {
	t.Helper()
	var tr strings.Builder
	say := func(format string, args ...any) { fmt.Fprintf(&tr, format+"\n", args...) }

	addr, err := tgt.BreakStop("fib", 7)
	if err != nil {
		t.Fatalf("break: %v", err)
	}
	say("break fib@7 at %#x", addr)
	harass()

	ev, err := tgt.ContinueToBreakpoint()
	if err != nil {
		t.Fatalf("continue: %v", err)
	}
	say("stopped pc=%#x sig=%v", ev.PC, ev.Sig)
	say("i = %s", wirePrint(t, d, tgt, "i"))
	say("n = %s", wirePrint(t, d, tgt, "n"))
	harass()

	say("a = %s", wirePrint(t, d, tgt, "a"))
	ev, err = tgt.Step()
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	say("step to pc=%#x", ev.PC)
	bt, err := tgt.Backtrace(10)
	if err != nil {
		t.Fatalf("backtrace: %v", err)
	}
	say("backtrace: %s", strings.Join(bt, " <- "))
	harass()

	for _, expr := range []string{"a[i]", "a[i-1] + a[i-2]", "n"} {
		v, err := tgt.EvalInt(expr)
		if err != nil {
			t.Fatalf("eval %q: %v", expr, err)
		}
		say("eval %s = %d", expr, v)
	}
	harass()

	if err := tgt.Bpts.RemoveAll(); err != nil {
		t.Fatalf("clear: %v", err)
	}
	ev, err = tgt.ContinueToBreakpoint()
	if err != nil {
		t.Fatalf("run to exit: %v", err)
	}
	if !ev.Exited {
		t.Fatalf("expected exit, stopped at %#x", ev.PC)
	}
	say("exit=%d output=%q", ev.Status, stdout.String())
	return tr.String()
}

// TestHostileSoak runs the session on a TCP nub under attack and
// requires the transcript to match the clean run byte for byte.
func TestHostileSoak(t *testing.T) {
	// Clean reference run over the in-memory transport.
	var sink strings.Builder
	d, err := core.New(&sink)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build([]Source{{Name: "fib.c", Text: wireFibC}}, Options{Arch: "mips", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	client, _, proc, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := d.AttachClient("clean:fib.c", client, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	tgt.Stdout = &proc.Stdout
	clean := hostileScript(t, d, tgt, &proc.Stdout, func() {})

	// Hostile run: real TCP, server-side fault injection, and harassment
	// between operations.
	d2, err := core.New(&sink)
	if err != nil {
		t.Fatal(err)
	}
	proc2 := machine.New(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	n := nub.New(proc2)
	n.ReadTimeout = 250 * time.Millisecond
	n.Start()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	inj := faultrw.New(1992, faultrw.Config{
		DropEvery:      3000,
		TruncateWrites: true,
		ChunkWrites:    true,
	})
	go n.ServeListener(hostileListener{Listener: inner, inj: inj})
	addr := inner.Addr().String()

	var liveConn net.Conn
	dial := func() (io.ReadWriter, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		liveConn = conn
		return conn, nil
	}
	rw, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := nub.Connect(rw)
	if err != nil {
		t.Fatal(err)
	}
	inj.SetGate(c2.Replayable)
	c2.SetRedial(dial)
	c2.SetTimeout(2 * time.Second)
	c2.SetRetries(8)
	tgt2, err := d2.AttachClient("hostile:fib.c", c2, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	tgt2.Stdout = &proc2.Stdout
	c2.ResetStats()

	// Each hostile payload ends in a way that makes the server close the
	// connection, so draining to EOF keeps the rounds sequential and
	// deterministic: MError replies then an oversize reject, a junk
	// blast whose length word is astronomical, and a trickled partial
	// frame that must trip the slow-read deadline.
	unknownKinds := append(append(append(
		frameBytes(t, &nub.Msg{Kind: nub.MsgKind(200)}),
		frameBytes(t, &nub.Msg{Kind: nub.MsgKind(251), Addr: 4, Size: 8})...),
		frameBytes(t, &nub.Msg{Kind: nub.MFetchInt, Space: 'z', Addr: 16, Size: 4})...),
		oversizeFrame(t)...)
	junk := bytes.Repeat([]byte{0xff}, 31)
	partial := frameBytes(t, &nub.Msg{Kind: nub.MFetchInt, Space: 'd', Addr: 16, Size: 4})[:9]

	harass := func() {
		// Sever the session's connection: the nub must survive the loss
		// and the client must reattach transparently.
		_ = liveConn.Close()
		for _, payload := range [][]byte{unknownKinds, junk, partial} {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			_ = c.SetDeadline(time.Now().Add(10 * time.Second))
			_, _ = c.Write(payload)
			_, _ = io.Copy(io.Discard, c) // drain until the server drops us
			_ = c.Close()
		}
	}
	hostile := hostileScript(t, d2, tgt2, &proc2.Stdout, harass)

	if hostile != clean {
		t.Errorf("hostile transcript diverged:\n-- clean --\n%s\n-- hostile --\n%s", clean, hostile)
	}
	stats := c2.Stats()
	if stats.Reconnects < 4 {
		t.Errorf("reconnects = %d, want >= 4 (one per harassment round)", stats.Reconnects)
	}
	// The counters live on the nub; read them directly rather than over
	// the now-exited session's wire.
	if v := n.Stats.MalformedFrames.Load(); v == 0 {
		t.Error("no malformed frames counted; the unknown-kind attacks never landed")
	}
	if v := n.Stats.OversizeRejects.Load(); v == 0 {
		t.Error("no oversize rejects counted")
	}
	if v := n.Stats.SlowReads.Load(); v == 0 {
		t.Error("no slow reads counted; the trickled frames never tripped the deadline")
	}
	t.Logf("reconnects=%d replays=%d malformed=%d oversize=%d slow=%d recovered=%d",
		stats.Reconnects, stats.Replays,
		n.Stats.MalformedFrames.Load(), n.Stats.OversizeRejects.Load(),
		n.Stats.SlowReads.Load(), n.Stats.RecoveredPanics.Load())
}
