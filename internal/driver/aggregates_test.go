package driver

import "testing"

// End-to-end checks for the C constructs the scenario generator leans
// on: structs passed and returned by value, function pointers, and
// multi-dimensional arrays. Each source runs on all five targets and
// must print identical output (checkOutput).

func TestStructByValueArgs(t *testing.T) {
	checkOutput(t, `
struct point { int x; int y; };
int taxicab(struct point p, struct point q) {
	int dx; int dy;
	dx = p.x - q.x; if (dx < 0) dx = -dx;
	dy = p.y - q.y; if (dy < 0) dy = -dy;
	p.x = 0; /* callee-local copy: must not affect the caller */
	return dx + dy;
}
struct point a;
struct point b;
int main() {
	a.x = 3; a.y = 7;
	b.x = -2; b.y = 11;
	printf("%d %d\n", taxicab(a, b), a.x);
	return 0;
}
`, "9 3\n")
}

func TestStructReturnByValue(t *testing.T) {
	checkOutput(t, `
struct pair { int lo; int hi; };
struct pair minmax(int a, int b) {
	struct pair r;
	if (a < b) { r.lo = a; r.hi = b; }
	else { r.lo = b; r.hi = a; }
	return r;
}
int main() {
	struct pair p;
	p = minmax(42, 17);
	printf("%d %d\n", p.lo, p.hi);
	printf("%d\n", minmax(5, 9).hi);
	return 0;
}
`, "17 42\n9\n")
}

func TestStructAssignmentChains(t *testing.T) {
	checkOutput(t, `
struct box { int a; int b; int c; };
struct box x;
struct box y;
struct box z;
int main() {
	x.a = 1; x.b = 2; x.c = 3;
	z = y = x;
	y.b = 20; /* y is a distinct copy */
	printf("%d %d %d %d\n", z.a, z.b, z.c, y.b);
	return 0;
}
`, "1 2 3 20\n")
}

func TestNestedStructCopy(t *testing.T) {
	checkOutput(t, `
struct inner { int v; char tag; };
struct outer { struct inner i; int n; };
struct outer src;
struct outer dst;
struct outer mk(int v) {
	struct outer o;
	o.i.v = v;
	o.i.tag = 'q';
	o.n = v * 2;
	return o;
}
int main() {
	src = mk(21);
	dst = src;
	src.i.v = 0;
	printf("%d %c %d\n", dst.i.v, dst.i.tag, dst.n);
	return 0;
}
`, "21 q 42\n")
}

func TestStructArrayElements(t *testing.T) {
	checkOutput(t, `
struct rec { int key; int val; };
struct rec table[4];
struct rec pick(int i) { return table[i]; }
int main() {
	int i;
	for (i = 0; i < 4; i++) { table[i].key = i; table[i].val = i * i; }
	table[0] = table[3];
	for (i = 0; i < 4; i++) printf("%d:%d ", pick(i).key, table[i].val);
	printf("\n");
	return 0;
}
`, "3:9 1:1 2:4 3:9 \n")
}

func TestUnionByValue(t *testing.T) {
	checkOutput(t, `
union cell { int i; unsigned u; };
union cell bump(union cell c) { c.i = c.i + 1; return c; }
int main() {
	union cell a;
	union cell b;
	a.i = 41;
	b = bump(a);
	printf("%d %d\n", a.i, b.i);
	return 0;
}
`, "41 42\n")
}

func TestFunctionPointerDecay(t *testing.T) {
	checkOutput(t, `
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }
int apply(int (*op)(int, int), int a, int b) { return op(a, b); }
int (*ops[3])(int, int);
int main() {
	int (*f)(int, int);
	int i;
	ops[0] = add; ops[1] = sub; ops[2] = mul;
	f = &add;
	printf("%d ", f(2, 3));
	f = sub; /* function designator decays */
	printf("%d ", (*f)(10, 4));
	for (i = 0; i < 3; i++) printf("%d ", apply(ops[i], 7, 5));
	printf("\n");
	return 0;
}
`, "5 6 12 2 35 \n")
}

func TestFunctionPointerInitializers(t *testing.T) {
	checkOutput(t, `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int (*scale)(int) = twice;
int (*jump[2])(int) = { twice, thrice };
int main() {
	printf("%d %d %d\n", scale(10), jump[0](5), jump[1](5));
	return 0;
}
`, "20 10 15\n")
}

func TestMultiDimArrays(t *testing.T) {
	checkOutput(t, `
int grid[3][4];
char cube[2][3][4];
int sum2(int m[3][4]) {
	int i; int j; int s;
	s = 0;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			s = s + m[i][j];
	return s;
}
int main() {
	int i; int j; int k; int s;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			grid[i][j] = i * 10 + j;
	s = 0;
	for (i = 0; i < 2; i++)
		for (j = 0; j < 3; j++)
			for (k = 0; k < 4; k++) {
				cube[i][j][k] = (char)(i + j + k);
				s = s + cube[i][j][k];
			}
	printf("%d %d %d\n", sum2(grid), grid[2][3], s);
	return 0;
}
`, "138 23 72\n")
}

func TestStructPointerMix(t *testing.T) {
	checkOutput(t, `
struct node { int v; struct node *next; };
struct node n0;
struct node n1;
struct node n2;
int main() {
	struct node *p;
	int s;
	n0.v = 1; n0.next = &n1;
	n1.v = 2; n1.next = &n2;
	n2.v = 4; n2.next = 0;
	s = 0;
	for (p = &n0; p != 0; p = p->next) s = s + p->v;
	printf("%d\n", s);
	return 0;
}
`, "7\n")
}
