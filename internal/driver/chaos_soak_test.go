package driver

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldb/internal/core"
	"ldb/internal/machine"
	"ldb/internal/nub"
)

// The chaos soak: the service soak's fleet again, but now the service
// itself is under attack from the inside. Checkpoints are taken every
// few thousand instructions, a fault hook crashes requests at random
// after scribbling over target memory, a third of the fleet runs over
// dying wires or detaches mid-script into a passivation/eviction cycle
// and resurrects from a stored checkpoint. The oracle is unchanged:
// every transcript must come out byte-identical to a clean solo run —
// crash-only recovery may move counters, never debugger-visible bytes.

// chaosDetach detaches mid-script and gives the passivation pumper a
// window to evict the session; the next request reconnects, re-attaches
// and — if the pumper won — resurrects the session from its stored
// checkpoint, all invisibly to the script.
func chaosDetach(c *nub.Client) error {
	if err := c.Detach(); err != nil {
		return fmt.Errorf("detach: %w", err)
	}
	time.Sleep(40 * time.Millisecond)
	return nil
}

func TestServiceChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	// Solo clean reference per architecture: the bytes every chaos'd
	// session must reproduce.
	progs := make(map[string]*Program, len(allArches))
	clean := make(map[string]string, len(allArches))
	for _, a := range allArches {
		prog, err := Build([]Source{{Name: "fib.c", Text: wireFibC}}, Options{Arch: a, Debug: true})
		if err != nil {
			t.Fatalf("%s: build: %v", a, err)
		}
		progs[a] = prog
		var sink strings.Builder
		d, err := core.New(&sink)
		if err != nil {
			t.Fatal(err)
		}
		client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
		if err != nil {
			t.Fatal(err)
		}
		tgt, err := d.AttachClient("clean:"+a, client, prog.LoaderPS)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := serviceSoakScript(d, tgt, nil)
		if err != nil {
			t.Fatalf("%s: clean run: %v", a, err)
		}
		clean[a] = tr
	}

	// The service under chaos: checkpoints every few thousand simulated
	// instructions so resumes cross several auto-checkpoints, and a
	// fault hook that crashes roughly one request in thirteen on a third
	// of the sessions — after corrupting target memory the way a real
	// crashed handler might.
	s := nub.NewService()
	s.ReadTimeout = 250 * time.Millisecond
	s.CheckpointInterval = 4096
	var hookFired atomic.Int64
	var perID sync.Map
	s.FaultHook = func(id uint64, n *nub.Nub, req *nub.Msg) bool {
		if id%3 != 0 {
			return false
		}
		v, _ := perID.LoadOrStore(id, new(atomic.Int64))
		if v.(*atomic.Int64).Add(1)%13 != 5 {
			return false
		}
		_ = n.P.WriteBytes(machine.DataBase, []byte{0xde, 0xad, 0xbe, 0xef})
		_ = n.P.WriteBytes(machine.TextBase, []byte{0, 0, 0, 0})
		hookFired.Add(1)
		return true
	}
	for _, a := range allArches {
		prog := progs[a]
		s.Register(a, prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeListener(l)
	defer s.Shutdown()
	addr := l.Addr().String()

	// The passivation pumper: every few milliseconds, evict whatever is
	// idle. Sessions mid-request hold their binding token and are
	// untouchable; only the deliberately detached ones get passivated.
	stop := make(chan struct{})
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.PassivateIdle(32)
			}
		}
	}()

	// Pre-warm one clean session per architecture so the fleet attaches
	// warm — and so the baseline holds with checkpointing armed.
	for _, a := range allArches {
		tr, _, err := soakServiceSession(addr, a, progs[a], -1, nil)
		if err != nil {
			t.Fatalf("%s: pre-warm: %v", a, err)
		}
		if tr != clean[a] {
			t.Fatalf("%s: pre-warm transcript diverged:\n-- clean --\n%s\n-- service --\n%s", a, clean[a], tr)
		}
	}

	// The fleet: 200 simultaneous sessions round-robin across the ISAs.
	// Every third one is chaos'd, alternating between a fault-injected
	// wire that keeps dying and a mid-script detach that rides a
	// passivation/resurrection cycle; the fault hook independently
	// crashes requests on a third of the session ids.
	type result struct {
		i   int
		a   string
		tr  string
		st  nub.StatsSnapshot
		err error
	}
	results := make(chan result, soakSessions)
	var wg sync.WaitGroup
	for i := 0; i < soakSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := allArches[i%len(allArches)]
			seed := int64(-1)
			var interrupt func(*nub.Client) error
			if i%3 == 0 {
				if (i/3)%2 == 0 {
					seed = int64(7711 + i)
				} else {
					interrupt = chaosDetach
				}
			}
			tr, st, err := soakServiceSession(addr, a, progs[a], seed, interrupt)
			results <- result{i: i, a: a, tr: tr, st: st, err: err}
		}(i)
	}
	wg.Wait()
	close(results)
	close(stop)
	pumpWG.Wait()

	var reconnects, replays int64
	diverged := 0
	for r := range results {
		if r.err != nil {
			t.Errorf("session %d (%s): %v", r.i, r.a, r.err)
			continue
		}
		if r.tr != clean[r.a] {
			diverged++
			if diverged <= 2 {
				t.Errorf("session %d (%s) transcript diverged:\n-- clean --\n%s\n-- service --\n%s", r.i, r.a, clean[r.a], r.tr)
			}
		}
		reconnects += r.st.Reconnects
		replays += r.st.Replays
	}
	if diverged > 2 {
		t.Errorf("%d transcripts diverged in total", diverged)
	}
	if reconnects == 0 {
		t.Error("no reconnects; neither the dying wires nor the detaches fired")
	}
	if hookFired.Load() == 0 {
		t.Error("fault hook never crashed a request")
	}
	if replays == 0 {
		t.Error("no client replays; rolled-back requests were never retried")
	}

	// The endpoint must come out healthy — one more clean session, then
	// the crash-only counters must show the chaos actually happened and
	// the pool must be drained.
	tr, _, err := soakServiceSession(addr, allArches[0], progs[allArches[0]], -1, nil)
	if err != nil {
		t.Fatalf("post-soak session: %v", err)
	}
	if tr != clean[allArches[0]] {
		t.Errorf("post-soak transcript diverged")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := nub.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 0 {
		t.Errorf("pool not drained: %d sessions live", st.Live)
	}
	if st.Passivated == 0 {
		t.Error("no sessions were passivated; the eviction chaos never fired")
	}
	if st.Resurrected == 0 {
		t.Error("no sessions were resurrected from a checkpoint")
	}
	if st.Rollbacks == 0 {
		t.Error("no rollbacks recorded despite injected crashes")
	}
	t.Logf("sessions=%d reconnects=%d replays=%d crashes=%d passivated=%d resurrected=%d rollbacks=%d evicted=%d",
		soakSessions, reconnects, replays, hookFired.Load(),
		st.Passivated, st.Resurrected, st.Rollbacks, st.Evicted)
}

// determinismScript is a seeded random debug session: a few rounds of
// plant/unplant churn on fib's loop body with random inspection between
// stops, then run to exit. The same seed must produce byte-identical
// transcripts on any transport — including one where requests keep
// crashing into checkpoint rollback and replay.
func determinismScript(rng *rand.Rand, d *core.Debugger, tgt *core.Target) (string, error) {
	var tr strings.Builder
	say := func(format string, args ...any) { fmt.Fprintf(&tr, format+"\n", args...) }
	rounds := 2 + rng.Intn(3) // fib@7 is hit 8 times; use at most 4
	for r := 0; r < rounds; r++ {
		addr, err := tgt.BreakStop("fib", 7)
		if err != nil {
			return "", fmt.Errorf("round %d: break: %w", r, err)
		}
		say("round %d: break fib@7 at %#x", r, addr)
		if rng.Intn(2) == 0 {
			// Churn the planted set: unplant everything and replant.
			if err := tgt.Bpts.RemoveAll(); err != nil {
				return "", fmt.Errorf("round %d: clear: %w", r, err)
			}
			if addr, err = tgt.BreakStop("fib", 7); err != nil {
				return "", fmt.Errorf("round %d: replant: %w", r, err)
			}
			say("round %d: replanted at %#x", r, addr)
		}
		ev, err := tgt.ContinueToBreakpoint()
		if err != nil {
			return "", fmt.Errorf("round %d: continue: %w", r, err)
		}
		if ev.Exited {
			return "", fmt.Errorf("round %d: exited before the breakpoint", r)
		}
		say("round %d: stopped pc=%#x", r, ev.PC)
		names := []string{"i", "n", "a"}
		name := names[rng.Intn(len(names))]
		v, err := serviceSoakPrint(d, tgt, name)
		if err != nil {
			return "", fmt.Errorf("round %d: print %s: %w", r, name, err)
		}
		say("%s = %s", name, v)
		exprs := []string{"a[i]", "a[i-1] + a[i-2]", "n", "i"}
		expr := exprs[rng.Intn(len(exprs))]
		x, err := tgt.EvalInt(expr)
		if err != nil {
			return "", fmt.Errorf("round %d: eval %q: %w", r, expr, err)
		}
		say("eval %s = %d", expr, x)
		if err := tgt.Bpts.RemoveAll(); err != nil {
			return "", fmt.Errorf("round %d: clear: %w", r, err)
		}
	}
	ev, err := tgt.ContinueToBreakpoint()
	if err != nil {
		return "", fmt.Errorf("run to exit: %w", err)
	}
	if !ev.Exited {
		return "", fmt.Errorf("expected exit, stopped at %#x", ev.PC)
	}
	say("exit=%d", ev.Status)
	return tr.String(), nil
}

// determinismClean runs the seeded script over the in-memory transport:
// the reference bytes.
func determinismClean(prog *Program, name string, seed int64) (string, error) {
	var sink strings.Builder
	d, err := core.New(&sink)
	if err != nil {
		return "", err
	}
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		return "", err
	}
	tgt, err := d.AttachClient("clean:"+name, client, prog.LoaderPS)
	if err != nil {
		return "", err
	}
	return determinismScript(rand.New(rand.NewSource(seed)), d, tgt)
}

// determinismService runs the same seeded script through a service
// session on the given endpoint.
func determinismService(addr, program string, prog *Program, seed int64) (string, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	client, err := nub.Connect(conn)
	if err != nil {
		return "", fmt.Errorf("connect: %w", err)
	}
	client.SetTimeout(2 * time.Second)
	client.SetRetries(8)
	if _, err := client.OpenSession(program); err != nil {
		return "", fmt.Errorf("open %s: %w", program, err)
	}
	var sink strings.Builder
	d, err := core.New(&sink)
	if err != nil {
		return "", err
	}
	tgt, err := d.AttachClient(program+":fib.c", client, prog.LoaderPS)
	if err != nil {
		return "", fmt.Errorf("attach: %w", err)
	}
	tr, err := determinismScript(rand.New(rand.NewSource(seed)), d, tgt)
	if err != nil {
		return "", err
	}
	if cerr := client.CloseSession(); cerr != nil {
		return "", fmt.Errorf("close session: %w", cerr)
	}
	return tr, nil
}

// TestCheckpointReplayDeterminism is the checkpoint subsystem's
// property test, run end-to-end on every ISA: take a checkpoint, let a
// crashed request mutate live state, restore, replay the logged inputs
// — and the debugger-visible bytes must reconverge exactly, under a
// randomized interleaving of plant, unplant, resume and inspection
// requests. The fault hook corrupts both data and text before every
// injected crash, so any page the restore path misses shows up as a
// transcript diff.
func TestCheckpointReplayDeterminism(t *testing.T) {
	seeds := []int64{1, 2, 3}
	for _, a := range allArches {
		t.Run(a, func(t *testing.T) {
			prog, err := Build([]Source{{Name: "fib.c", Text: wireFibC}}, Options{Arch: a, Debug: true})
			if err != nil {
				t.Fatalf("build: %v", err)
			}

			s := nub.NewService()
			s.ReadTimeout = 250 * time.Millisecond
			s.CheckpointInterval = 2048
			var crashes atomic.Int64
			var perID sync.Map
			s.FaultHook = func(id uint64, n *nub.Nub, req *nub.Msg) bool {
				v, _ := perID.LoadOrStore(id, new(atomic.Int64))
				if v.(*atomic.Int64).Add(1)%13 != 5 {
					return false
				}
				_ = n.P.WriteBytes(machine.DataBase, []byte{0xde, 0xad, 0xbe, 0xef})
				_ = n.P.WriteBytes(machine.TextBase, []byte{0, 0, 0, 0})
				crashes.Add(1)
				return true
			}
			s.Register(a, prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go s.ServeListener(l)
			defer s.Shutdown()
			addr := l.Addr().String()

			for _, seed := range seeds {
				want, err := determinismClean(prog, a, seed)
				if err != nil {
					t.Fatalf("seed %d: clean run: %v", seed, err)
				}
				got, err := determinismService(addr, a, prog, seed)
				if err != nil {
					t.Fatalf("seed %d: service run: %v", seed, err)
				}
				if got != want {
					t.Errorf("seed %d: transcript diverged:\n-- clean --\n%s\n-- service --\n%s", seed, want, got)
				}
			}
			if crashes.Load() == 0 {
				t.Error("fault hook never crashed a request; rollback/replay was not exercised")
			}
		})
	}
}
