package driver

import (
	"math/rand"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/link"
	"ldb/internal/machine"
	"ldb/internal/workload"
)

// Property: no interleaving of breakpoint plant/unplant (text writes)
// and execution ever lets a stale decoded instruction run. Two
// processes — one through the decode cache, one with it off — receive
// identical random text writes and execute in lockstep; any stale
// entry would make the cached process execute the overwritten bytes
// and diverge. Plants land on recently executed pcs (instruction
// starts that are hot in the cache — the hardest case to invalidate
// correctly), and, on the fixed-width ISAs, at arbitrary aligned text
// offsets as well.

func TestPredecodePlantUnplantProperty(t *testing.T) {
	for _, a := range allArches {
		prog, err := Build([]Source{{Name: "queens.c", Text: workload.Queens}}, Options{Arch: a})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		pc := link.NewProcess(prog.Image)
		pu := link.NewProcess(prog.Image)
		pu.NoPredecode = true

		br := prog.Image.Arch.BreakInstr()
		slots := len(prog.Image.Text) / len(br)
		fixedWidth := len(br) == 4
		r := rand.New(rand.NewSource(1))
		planted := map[uint32][]byte{}
		// Ring of recently executed pcs: known instruction starts, and
		// near-certain decode-cache hits when replanted.
		var recent [256]uint32
		executed := 0

		writeBoth := func(addr uint32, b []byte) {
			if err := pc.WriteBytes(addr, b); err != nil {
				t.Fatalf("%s: write %#x: %v", a, addr, err)
			}
			if err := pu.WriteBytes(addr, b); err != nil {
				t.Fatalf("%s: write %#x: %v", a, addr, err)
			}
		}
		plant := func(addr uint32) {
			// Corrupted control flow can leave text entirely; only
			// plant where the break instruction fits inside it.
			if addr-machine.TextBase > uint32(len(prog.Image.Text)-len(br)) {
				return
			}
			if _, ok := planted[addr]; ok {
				return
			}
			old := make([]byte, len(br))
			if err := pc.ReadBytes(addr, old); err != nil {
				t.Fatalf("%s: read %#x: %v", a, addr, err)
			}
			planted[addr] = old
			writeBoth(addr, br)
		}
		unplant := func(addr uint32) {
			old, ok := planted[addr]
			if !ok {
				return
			}
			delete(planted, addr)
			writeBoth(addr, old)
		}

		for step := 0; step < 200000; step++ {
			switch r.Intn(100) {
			case 0: // plant on a recently executed instruction
				if executed > 0 {
					n := executed
					if n > len(recent) {
						n = len(recent)
					}
					plant(recent[r.Intn(n)])
				}
			case 1: // plant right on the next instruction: a guaranteed cache hit goes stale
				plant(pc.PC())
			case 2: // unplant something random
				for addr := range planted {
					unplant(addr)
					break
				}
			case 3: // fixed-width ISAs: any aligned slot is an instruction start
				if fixedWidth {
					plant(machine.TextBase + uint32(r.Intn(slots)*len(br)))
				}
			}
			recent[executed%len(recent)] = pc.PC()
			executed++
			fc := pc.StepOne()
			fu := pu.StepOne()
			if (fc == nil) != (fu == nil) || (fc != nil && *fc != *fu) {
				t.Fatalf("%s: step %d diverged: cached %+v, uncached %+v", a, step, fc, fu)
			}
			if pc.PC() != pu.PC() || pc.Flag() != pu.Flag() {
				t.Fatalf("%s: step %d: cached pc=%#x flag=%#x, uncached pc=%#x flag=%#x",
					a, step, pc.PC(), pc.Flag(), pu.PC(), pu.Flag())
			}
			for i := 0; i < prog.Image.Arch.NumRegs(); i++ {
				if pc.Reg(i) != pu.Reg(i) {
					t.Fatalf("%s: step %d: r%d cached %#x, uncached %#x", a, step, i, pc.Reg(i), pu.Reg(i))
				}
			}
			if fc == nil {
				continue
			}
			if fc.Kind == arch.FaultHalt {
				break
			}
			// Stopped on a trap. If it is one of ours, unplant it —
			// the restored bytes must be re-decoded, not served stale —
			// and resume at the same pc like a debugger would.
			if _, ok := planted[fc.PC]; ok {
				unplant(fc.PC)
				continue
			}
			// A plant in the middle of a variable-length instruction
			// corrupted the stream (identically on both sides). Lift
			// every plant — more invalidation traffic — and resume; a
			// fault that persists on clean text means the run is
			// wedged, and the lockstep property has already held.
			if len(planted) == 0 {
				break
			}
			addrs := make([]uint32, 0, len(planted))
			for addr := range planted {
				addrs = append(addrs, addr)
			}
			for _, addr := range addrs {
				unplant(addr)
			}
		}
		if got, want := pc.Stdout.String(), pu.Stdout.String(); got != want {
			t.Fatalf("%s: cached stdout %q, uncached %q", a, got, want)
		}
		if pc.Steps != pu.Steps {
			t.Fatalf("%s: cached ran %d steps, uncached %d", a, pc.Steps, pu.Steps)
		}
	}
}

// TestSuperblockPlantLockstep is the fused engine's version of the
// plant/unplant property. Single-stepping bypasses superblocks, so the
// fused process advances with Run — stop to stop — while the uncached
// reference runs beside it; both receive identical plant and unplant
// traffic between stops. Plants land just ahead of the stopped pc
// (inside blocks about to be entered — the hardest invalidation case)
// and at random text offsets. Any stale block makes the fused side
// sail past a breakpoint or diverge in state at the next stop.
func TestSuperblockPlantLockstep(t *testing.T) {
	for _, a := range allArches {
		prog, err := Build([]Source{{Name: "queens.c", Text: workload.Queens}}, Options{Arch: a})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		pf := link.NewProcess(prog.Image)
		pu := link.NewProcess(prog.Image)
		pu.NoPredecode = true

		br := prog.Image.Arch.BreakInstr()
		r := rand.New(rand.NewSource(2))
		planted := map[uint32][]byte{}
		writeBoth := func(addr uint32, b []byte) {
			if err := pf.WriteBytes(addr, b); err != nil {
				t.Fatalf("%s: write %#x: %v", a, addr, err)
			}
			if err := pu.WriteBytes(addr, b); err != nil {
				t.Fatalf("%s: write %#x: %v", a, addr, err)
			}
		}
		plant := func(addr uint32) {
			if addr-machine.TextBase > uint32(len(prog.Image.Text)-len(br)) {
				return
			}
			if _, ok := planted[addr]; ok {
				return
			}
			old := make([]byte, len(br))
			if err := pf.ReadBytes(addr, old); err != nil {
				t.Fatalf("%s: read %#x: %v", a, addr, err)
			}
			planted[addr] = old
			writeBoth(addr, br)
		}
		unplant := func(addr uint32) {
			if old, ok := planted[addr]; ok {
				delete(planted, addr)
				writeBoth(addr, old)
			}
		}

		for round := 0; round < 400; round++ {
			// Plant ahead of the stopped pc — pcs the next Run's blocks
			// cover — and somewhere random; occasionally lift one.
			plant(pf.PC() + uint32(len(br)*(1+r.Intn(16))))
			if r.Intn(2) == 0 {
				plant(machine.TextBase + uint32(r.Intn(len(prog.Image.Text))))
			}
			if r.Intn(4) == 0 {
				for addr := range planted {
					unplant(addr)
					break
				}
			}
			ff := pf.Run()
			fu := pu.Run()
			if (ff == nil) != (fu == nil) || (ff != nil && *ff != *fu) {
				t.Fatalf("%s: round %d diverged: fused %+v, uncached %+v", a, round, ff, fu)
			}
			if pf.PC() != pu.PC() || pf.Flag() != pu.Flag() || pf.Steps != pu.Steps {
				t.Fatalf("%s: round %d: fused pc=%#x flag=%#x steps=%d, uncached pc=%#x flag=%#x steps=%d",
					a, round, pf.PC(), pf.Flag(), pf.Steps, pu.PC(), pu.Flag(), pu.Steps)
			}
			for i := 0; i < prog.Image.Arch.NumRegs(); i++ {
				if pf.Reg(i) != pu.Reg(i) {
					t.Fatalf("%s: round %d: r%d fused %#x, uncached %#x", a, round, i, pf.Reg(i), pu.Reg(i))
				}
			}
			if ff == nil || ff.Kind == arch.FaultHalt {
				break
			}
			if _, ok := planted[ff.PC]; ok {
				// Our breakpoint: lift it and resume at the same pc, as
				// a debugger stepping over a plant would.
				unplant(ff.PC)
				continue
			}
			// A plant mid-instruction corrupted the stream (identically
			// on both sides). Lift everything and resume; if the fault
			// persists on clean text the run is wedged and the property
			// has held.
			if len(planted) == 0 {
				break
			}
			addrs := make([]uint32, 0, len(planted))
			for addr := range planted {
				addrs = append(addrs, addr)
			}
			for _, addr := range addrs {
				unplant(addr)
			}
		}
		if got, want := pf.Stdout.String(), pu.Stdout.String(); got != want {
			t.Fatalf("%s: fused stdout %q, uncached %q", a, got, want)
		}
	}
}
