package driver

import (
	"math/rand"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/link"
	"ldb/internal/machine"
	"ldb/internal/workload"
)

// Property: no interleaving of breakpoint plant/unplant (text writes)
// and execution ever lets a stale decoded instruction run. Two
// processes — one through the decode cache, one with it off — receive
// identical random text writes and execute in lockstep; any stale
// entry would make the cached process execute the overwritten bytes
// and diverge. Plants land on recently executed pcs (instruction
// starts that are hot in the cache — the hardest case to invalidate
// correctly), and, on the fixed-width ISAs, at arbitrary aligned text
// offsets as well.

func TestPredecodePlantUnplantProperty(t *testing.T) {
	for _, a := range allArches {
		prog, err := Build([]Source{{Name: "queens.c", Text: workload.Queens}}, Options{Arch: a})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		pc := link.NewProcess(prog.Image)
		pu := link.NewProcess(prog.Image)
		pu.NoPredecode = true

		br := prog.Image.Arch.BreakInstr()
		slots := len(prog.Image.Text) / len(br)
		fixedWidth := len(br) == 4
		r := rand.New(rand.NewSource(1))
		planted := map[uint32][]byte{}
		// Ring of recently executed pcs: known instruction starts, and
		// near-certain decode-cache hits when replanted.
		var recent [256]uint32
		executed := 0

		writeBoth := func(addr uint32, b []byte) {
			if err := pc.WriteBytes(addr, b); err != nil {
				t.Fatalf("%s: write %#x: %v", a, addr, err)
			}
			if err := pu.WriteBytes(addr, b); err != nil {
				t.Fatalf("%s: write %#x: %v", a, addr, err)
			}
		}
		plant := func(addr uint32) {
			// Corrupted control flow can leave text entirely; only
			// plant where the break instruction fits inside it.
			if addr-machine.TextBase > uint32(len(prog.Image.Text)-len(br)) {
				return
			}
			if _, ok := planted[addr]; ok {
				return
			}
			old := make([]byte, len(br))
			if err := pc.ReadBytes(addr, old); err != nil {
				t.Fatalf("%s: read %#x: %v", a, addr, err)
			}
			planted[addr] = old
			writeBoth(addr, br)
		}
		unplant := func(addr uint32) {
			old, ok := planted[addr]
			if !ok {
				return
			}
			delete(planted, addr)
			writeBoth(addr, old)
		}

		for step := 0; step < 200000; step++ {
			switch r.Intn(100) {
			case 0: // plant on a recently executed instruction
				if executed > 0 {
					n := executed
					if n > len(recent) {
						n = len(recent)
					}
					plant(recent[r.Intn(n)])
				}
			case 1: // plant right on the next instruction: a guaranteed cache hit goes stale
				plant(pc.PC())
			case 2: // unplant something random
				for addr := range planted {
					unplant(addr)
					break
				}
			case 3: // fixed-width ISAs: any aligned slot is an instruction start
				if fixedWidth {
					plant(machine.TextBase + uint32(r.Intn(slots)*len(br)))
				}
			}
			recent[executed%len(recent)] = pc.PC()
			executed++
			fc := pc.StepOne()
			fu := pu.StepOne()
			if (fc == nil) != (fu == nil) || (fc != nil && *fc != *fu) {
				t.Fatalf("%s: step %d diverged: cached %+v, uncached %+v", a, step, fc, fu)
			}
			if pc.PC() != pu.PC() || pc.Flag() != pu.Flag() {
				t.Fatalf("%s: step %d: cached pc=%#x flag=%#x, uncached pc=%#x flag=%#x",
					a, step, pc.PC(), pc.Flag(), pu.PC(), pu.Flag())
			}
			for i := 0; i < prog.Image.Arch.NumRegs(); i++ {
				if pc.Reg(i) != pu.Reg(i) {
					t.Fatalf("%s: step %d: r%d cached %#x, uncached %#x", a, step, i, pc.Reg(i), pu.Reg(i))
				}
			}
			if fc == nil {
				continue
			}
			if fc.Kind == arch.FaultHalt {
				break
			}
			// Stopped on a trap. If it is one of ours, unplant it —
			// the restored bytes must be re-decoded, not served stale —
			// and resume at the same pc like a debugger would.
			if _, ok := planted[fc.PC]; ok {
				unplant(fc.PC)
				continue
			}
			// A plant in the middle of a variable-length instruction
			// corrupted the stream (identically on both sides). Lift
			// every plant — more invalidation traffic — and resume; a
			// fault that persists on clean text means the run is
			// wedged, and the lockstep property has already held.
			if len(planted) == 0 {
				break
			}
			addrs := make([]uint32, 0, len(planted))
			for addr := range planted {
				addrs = append(addrs, addr)
			}
			for _, addr := range addrs {
				unplant(addr)
			}
		}
		if got, want := pc.Stdout.String(), pu.Stdout.String(); got != want {
			t.Fatalf("%s: cached stdout %q, uncached %q", a, got, want)
		}
		if pc.Steps != pu.Steps {
			t.Fatalf("%s: cached ran %d steps, uncached %d", a, pc.Steps, pu.Steps)
		}
	}
}
