package driver

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/core"
	"ldb/internal/machine"
	"ldb/internal/nub"
	"ldb/internal/ps"
	"ldb/internal/symtab"
)

// The degraded-mode contract: a corrupt, missing, or truncated loader
// table must not end the session. The debugger falls back to machine-
// level debugging — registers, raw memory, address breakpoints, and
// single-instruction steps all work; source-level operations fail with
// ErrNoSymbols instead of crashing.

// degradedAttach launches fib and attaches with the given loader text,
// expecting a degraded target.
func degradedAttach(t *testing.T, loader string) (*core.Debugger, *core.Target, *Program, *machine.Process, string) {
	t.Helper()
	var sink strings.Builder
	d, err := core.New(&sink)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build([]Source{{Name: "fib.c", Text: wireFibC}}, Options{Arch: "mips", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	client, _, proc, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	tgt, warning, err := d.AttachDegraded("fib", client, loader)
	if err != nil {
		t.Fatalf("degraded attach: %v", err)
	}
	tgt.Stdout = &proc.Stdout
	return d, tgt, prog, proc, warning
}

func TestDegradedAttachFallsBack(t *testing.T) {
	corrupt := []struct{ name, loader string }{
		{"missing", ""},
		{"garbage", "this is not postscript ("},
		{"truncated", "<< /symtab << /architecture (mips)"},
		{"wrongshape", "<< /proctable 42 /anchormap [ ] >>"},
	}
	for _, c := range corrupt {
		t.Run(c.name, func(t *testing.T) {
			_, tgt, _, _, warning := degradedAttach(t, c.loader)
			if !tgt.Degraded() {
				t.Fatal("target is not degraded")
			}
			if warning == "" || !strings.Contains(warning, "machine-level") {
				t.Fatalf("warning = %q", warning)
			}
			// Source-level operations fail with the sentinel, not a crash.
			if _, err := tgt.BreakProc("fib"); !errors.Is(err, core.ErrNoSymbols) {
				t.Fatalf("BreakProc err = %v", err)
			}
			if _, err := tgt.Lookup("n"); !errors.Is(err, core.ErrNoSymbols) {
				t.Fatalf("Lookup err = %v", err)
			}
			if _, _, err := tgt.ProcStops("fib"); !errors.Is(err, core.ErrNoSymbols) {
				t.Fatalf("ProcStops err = %v", err)
			}
		})
	}
}

// TestDegradedMachineLevelSession drives a whole machine-level session
// against a target whose loader table is garbage: inspect registers,
// read raw memory, plant an address breakpoint at main (its address
// obtained out of band, as a user would from nm), single-step, and run
// to the breakpoint and then to exit.
func TestDegradedMachineLevelSession(t *testing.T) {
	_, tgt, prog, proc, _ := degradedAttach(t, "garbage (")

	// Registers come straight from the context record.
	regs, pc, err := tgt.RegsRaw()
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) == 0 || pc == 0 {
		t.Fatalf("regs = %d entries, pc = %#x", len(regs), pc)
	}

	// Raw memory matches the image.
	b, err := tgt.ExamineBytes(machine.TextBase, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, prog.Image.Text[:16]) {
		t.Fatalf("text bytes = % x, want % x", b, prog.Image.Text[:16])
	}

	// The user knows main's address out of band — recover it here from
	// the intact loader table the degraded session never saw.
	tbl, err := symtab.Load(ps.New(), prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	mainAddr, err := tbl.GlobalAddr("_main")
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.BreakAddr(mainAddr); err != nil {
		t.Fatal(err)
	}
	ev, err := tgt.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Exited || ev.PC != mainAddr {
		t.Fatalf("continue stopped at %v, want pc=%#x", ev, mainAddr)
	}
	if !tgt.Bpts.IsPlanted(ev.PC) {
		t.Fatal("stop is not at the planted breakpoint")
	}

	// Single steps retire one instruction each and advance the pc. The
	// first retires the instruction under the breakpoint, so this also
	// exercises the restore-step-replant resume of raw breakpoints.
	pc = ev.PC
	for i := 0; i < 3; i++ {
		ev, err := tgt.StepInst()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Exited || ev.Sig != arch.SigTrap || ev.Code != arch.TrapStep {
			t.Fatalf("step %d event = %v", i, ev)
		}
		if ev.PC == pc {
			t.Fatalf("step %d did not advance from %#x", i, pc)
		}
		pc = ev.PC
	}
	if !tgt.Bpts.IsPlanted(mainAddr) {
		t.Fatal("breakpoint not replanted after stepping off it")
	}

	// Run to completion: the target behaves exactly as if debugged with
	// full symbols.
	ev, err = tgt.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Exited || ev.Status != 0 {
		t.Fatalf("final event = %v", ev)
	}
	if out := proc.Stdout.String(); !strings.Contains(out, "1 1 2 3 5 8 13 21 34 55") {
		t.Fatalf("output = %q", out)
	}
}

// TestDegradedAttachRecoversWithGoodTable: the same debugger instance
// can hold a degraded target and a fully symbolic one; a good loader
// table still produces a non-degraded attach through AttachDegraded.
func TestDegradedAttachRecoversWithGoodTable(t *testing.T) {
	d, _, prog, _, _ := degradedAttach(t, "")
	client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatal(err)
	}
	tgt, warning, err := d.AttachDegraded("fib-good", client, prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	if warning != "" || tgt.Degraded() {
		t.Fatalf("good table degraded anyway: %q", warning)
	}
	if _, err := tgt.BreakProc("fib"); err != nil {
		t.Fatalf("source-level break on the good target: %v", err)
	}
}

// TestDegradedStepiRetiresOneInsn pins the stepi contract against the
// fused engine: once text is hot in the superblock cache (the continue
// to main executed it fused), each MStepInst must retire exactly one
// instruction — never a whole block — including the restore-step-
// replant sequence on the breakpoint itself.
func TestDegradedStepiRetiresOneInsn(t *testing.T) {
	_, tgt, prog, proc, _ := degradedAttach(t, "")
	tbl, err := symtab.Load(ps.New(), prog.LoaderPS)
	if err != nil {
		t.Fatal(err)
	}
	mainAddr, err := tbl.GlobalAddr("_main")
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.BreakAddr(mainAddr); err != nil {
		t.Fatal(err)
	}
	ev, err := tgt.Continue()
	if err != nil || ev.Exited || ev.PC != mainAddr {
		t.Fatalf("continue: %v %v", ev, err)
	}
	for i := 0; i < 5; i++ {
		before := proc.Steps
		ev, err := tgt.StepInst()
		if err != nil || ev.Exited {
			t.Fatalf("step %d: %v %v", i, ev, err)
		}
		if got := proc.Steps - before; got != 1 {
			t.Fatalf("step %d retired %d instructions, want exactly 1", i, got)
		}
		if ev.PC != proc.PC() {
			t.Fatalf("step %d: event pc %#x, process pc %#x", i, ev.PC, proc.PC())
		}
	}
}
