package driver

import (
	"testing"

	"ldb/internal/arch"
	"ldb/internal/link"
	"ldb/internal/machine"
	"ldb/internal/workload"
)

// The simulator's gate: all three engines — superblock-fused, cached
// per-instruction, and uncached — must be step-for-step identical:
// same step count, stdout, exit fault, and final machine state for
// every workload program on every target.

// simModes names the three execution engines a Process can run under.
var simModes = []struct {
	name                string
	noPredecode, noFuse bool
}{
	{"fused", false, false},
	{"insn", false, true},
	{"off", true, false},
}

// runWorkload runs prog to completion in the given mode, skipping the
// pause traps debug builds execute before main.
func runWorkload(t *testing.T, prog *Program, noPredecode, noFuse bool) (*machine.Process, *arch.Fault) {
	t.Helper()
	p := link.NewProcess(prog.Image)
	p.NoPredecode = noPredecode
	p.NoFuse = noFuse
	f := p.Run()
	for f.Kind == arch.FaultSignal && f.Sig == arch.SigTrap && f.Code == arch.TrapPause {
		p.SetPC(f.PC + f.Len)
		f = p.Run()
	}
	return p, f
}

func TestPredecodeDifferential(t *testing.T) {
	for _, a := range allArches {
		for _, name := range workload.Names {
			for _, opts := range []Options{
				{Arch: a},
				{Arch: a, Debug: true, Sched: a == "mips" || a == "mipsbe"},
			} {
				prog, err := Build([]Source{{Name: name + ".c", Text: workload.Programs[name]}}, opts)
				if err != nil {
					t.Fatalf("%s on %s: %v", name, a, err)
				}
				// The uncached engine is the reference: it predates the
				// decode cache and fusion and executes the architecture
				// manual's way, one fetch/decode/dispatch at a time.
				pu, fu := runWorkload(t, prog, true, false)
				for _, mode := range simModes[:2] {
					pc, fc := runWorkload(t, prog, mode.noPredecode, mode.noFuse)
					if *fc != *fu {
						t.Fatalf("%s on %s (%+v): %s exit %+v, uncached %+v", name, a, opts, mode.name, fc, fu)
					}
					if pc.Steps != pu.Steps {
						t.Errorf("%s on %s (%+v): %s ran %d steps, uncached %d", name, a, opts, mode.name, pc.Steps, pu.Steps)
					}
					if got, want := pc.Stdout.String(), pu.Stdout.String(); got != want {
						t.Errorf("%s on %s (%+v): %s stdout %q, uncached %q", name, a, opts, mode.name, got, want)
					}
					if got, want := pc.Stdout.String(), workload.Outputs[name]; got != want {
						t.Errorf("%s on %s (%+v): stdout %q, want %q", name, a, opts, got, want)
					}
					if pc.PC() != pu.PC() || pc.Flag() != pu.Flag() {
						t.Errorf("%s on %s (%+v): %s pc=%#x flag=%#x, uncached pc=%#x flag=%#x",
							name, a, opts, mode.name, pc.PC(), pc.Flag(), pu.PC(), pu.Flag())
					}
					for i := 0; i < prog.Image.Arch.NumRegs(); i++ {
						if pc.Reg(i) != pu.Reg(i) {
							t.Errorf("%s on %s (%+v): r%d %s %#x, uncached %#x", name, a, opts, i, mode.name, pc.Reg(i), pu.Reg(i))
						}
					}
					for i := 0; i < prog.Image.Arch.NumFRegs(); i++ {
						if pc.FReg(i) != pu.FReg(i) {
							t.Errorf("%s on %s (%+v): f%d %s %v, uncached %v", name, a, opts, i, mode.name, pc.FReg(i), pu.FReg(i))
						}
					}
					// All four ISAs implement arch.Decoder, so both cached
					// engines must actually have executed from the cache —
					// and only the fused one forms blocks.
					st := pc.SimStats()
					if st.Hits == 0 {
						t.Errorf("%s on %s (%+v): %s decode cache never hit (stats %+v)", name, a, opts, mode.name, st)
					}
					if mode.name == "fused" && st.Blocks == 0 {
						t.Errorf("%s on %s (%+v): fused run formed no superblocks (stats %+v)", name, a, opts, st)
					}
					if mode.name == "insn" && st.Blocks != 0 {
						t.Errorf("%s on %s (%+v): per-insn run formed superblocks (stats %+v)", name, a, opts, st)
					}
				}
			}
		}
	}
}
