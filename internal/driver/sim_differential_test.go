package driver

import (
	"testing"

	"ldb/internal/arch"
	"ldb/internal/link"
	"ldb/internal/machine"
	"ldb/internal/workload"
)

// The decode cache's gate: cached and uncached execution must be
// step-for-step identical — same step count, stdout, exit fault, and
// final machine state — for every workload program on every target.

// runWorkload builds name for a and runs it to completion in the given
// mode, skipping the pause traps debug builds execute before main.
func runWorkload(t *testing.T, prog *Program, noPredecode bool) (*machine.Process, *arch.Fault) {
	t.Helper()
	p := link.NewProcess(prog.Image)
	p.NoPredecode = noPredecode
	f := p.Run()
	for f.Kind == arch.FaultSignal && f.Sig == arch.SigTrap && f.Code == arch.TrapPause {
		p.SetPC(f.PC + f.Len)
		f = p.Run()
	}
	return p, f
}

func TestPredecodeDifferential(t *testing.T) {
	for _, a := range allArches {
		for _, name := range workload.Names {
			for _, opts := range []Options{
				{Arch: a},
				{Arch: a, Debug: true, Sched: a == "mips" || a == "mipsbe"},
			} {
				prog, err := Build([]Source{{Name: name + ".c", Text: workload.Programs[name]}}, opts)
				if err != nil {
					t.Fatalf("%s on %s: %v", name, a, err)
				}
				pc, fc := runWorkload(t, prog, false)
				pu, fu := runWorkload(t, prog, true)
				if *fc != *fu {
					t.Fatalf("%s on %s (%+v): cached exit %+v, uncached %+v", name, a, opts, fc, fu)
				}
				if pc.Steps != pu.Steps {
					t.Errorf("%s on %s (%+v): cached ran %d steps, uncached %d", name, a, opts, pc.Steps, pu.Steps)
				}
				if got, want := pc.Stdout.String(), pu.Stdout.String(); got != want {
					t.Errorf("%s on %s (%+v): cached stdout %q, uncached %q", name, a, opts, got, want)
				}
				if got, want := pc.Stdout.String(), workload.Outputs[name]; got != want {
					t.Errorf("%s on %s (%+v): stdout %q, want %q", name, a, opts, got, want)
				}
				if pc.PC() != pu.PC() || pc.Flag() != pu.Flag() {
					t.Errorf("%s on %s (%+v): cached pc=%#x flag=%#x, uncached pc=%#x flag=%#x",
						name, a, opts, pc.PC(), pc.Flag(), pu.PC(), pu.Flag())
				}
				for i := 0; i < prog.Image.Arch.NumRegs(); i++ {
					if pc.Reg(i) != pu.Reg(i) {
						t.Errorf("%s on %s (%+v): r%d cached %#x, uncached %#x", name, a, opts, i, pc.Reg(i), pu.Reg(i))
					}
				}
				for i := 0; i < prog.Image.Arch.NumFRegs(); i++ {
					if pc.FReg(i) != pu.FReg(i) {
						t.Errorf("%s on %s (%+v): f%d cached %v, uncached %v", name, a, opts, i, pc.FReg(i), pu.FReg(i))
					}
				}
				// All four ISAs implement arch.Decoder, so the cached
				// run must actually have executed from the cache.
				if st := pc.SimStats(); st.Hits == 0 {
					t.Errorf("%s on %s (%+v): decode cache never hit (stats %+v)", name, a, opts, st)
				}
			}
		}
	}
}
