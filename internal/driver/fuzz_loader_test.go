package driver

import (
	"strings"
	"testing"

	"ldb/internal/ps"
	"ldb/internal/symtab"
)

// FuzzLoaderTable mutates the loader table — the PostScript program ldb
// interprets at attach time, which arrives from the filesystem and is
// untrusted. For any input, Load either fails cleanly or yields a table
// whose accessors return values or errors: no panic, and no runaway
// interpretation (Load and the deferred-entry realizer run under the
// interpreter's step-and-depth budget).
func FuzzLoaderTable(f *testing.F) {
	prog, err := Build([]Source{{Name: "fib.c", Text: wireFibC}}, Options{Arch: "mips", Debug: true})
	if err != nil {
		f.Fatal(err)
	}
	real := prog.LoaderPS
	f.Add(real)
	f.Add("")
	f.Add("<<")
	f.Add("<< /symtab << >> /anchormap << >> /proctable [ ] >>")
	f.Add("<< /proctable [ 16#100 42 ] >>") // name slot holds an int
	f.Add(strings.Replace(real, "/proctable", "/proctables", 1))
	f.Add(strings.Replace(real, "/anchormap", "/anchormaps", 1))
	f.Add("{ } loop") // would run forever without the step budget

	f.Fuzz(func(t *testing.T, loader string) {
		if len(loader) > 1<<20 {
			return // cap interpreter workload per input
		}
		in := ps.New()
		tbl, err := symtab.Load(in, loader)
		if err != nil {
			return
		}
		// Whatever loaded, every accessor must return cleanly.
		_ = tbl.Validate()
		_, _ = tbl.Architecture()
		_, _ = tbl.ProcTable()
		_, _ = tbl.AnchorAddr("_stanchor")
		_, _ = tbl.GlobalAddr("_main")
		_, _ = tbl.ProcContaining(0x400100)
		_, _ = tbl.RPTAddr()
		_, _, _ = tbl.ProcEntryByName("fib")
	})
}
