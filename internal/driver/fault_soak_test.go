package driver

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"ldb/internal/core"
	"ldb/internal/machine"
	"ldb/internal/nub"
	"ldb/internal/nub/faultrw"
)

// The fault-injection soak: the full debug script from the wire
// differential test runs over a real TCP connection that a seeded
// injector keeps killing — dropping the connection mid-message,
// truncating writes, splitting writes into short chunks, and delaying
// reads. The client's deadlines, reconnection, and replay machinery
// must hide every fault: the transcript has to come out byte-identical
// to a clean in-memory run, on every architecture.
//
// The injector's drops are gated on Client.Replayable, so faults land
// only in windows the client can recover transparently — which is the
// contract's whole point: inside those windows, NO failure may leak to
// the debugger.

// soakTranscript runs the script over a faulty TCP wire and reports
// the transcript plus how many reconnects the faults forced.
func soakTranscript(t *testing.T, archName string, seed int64) (string, nub.StatsSnapshot) {
	t.Helper()
	var sink strings.Builder
	d, err := core.New(&sink)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build([]Source{{Name: "fib.c", Text: wireFibC}}, Options{Arch: archName, Debug: true})
	if err != nil {
		t.Fatalf("%s: build: %v", archName, err)
	}

	// A real nub on a real TCP listener, accepting one debugger at a
	// time — the deployment shape from §4.2, where the connection can
	// actually die.
	proc := machine.New(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	n := nub.New(proc)
	n.Start()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go n.ServeListener(l)

	inj := faultrw.New(seed, faultrw.Config{
		DropEvery:      1500,
		TruncateWrites: true,
		ChunkWrites:    true,
		Delay:          100 * time.Microsecond,
		DelayEvery:     4096,
	})
	dial := func() (io.ReadWriter, error) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		return inj.Wrap(conn), nil
	}
	rw, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client, err := nub.Connect(rw)
	if err != nil {
		t.Fatalf("%s: connect: %v", archName, err)
	}
	inj.SetGate(client.Replayable)
	client.SetRedial(dial)
	client.SetTimeout(2 * time.Second)
	client.SetRetries(8)

	tgt, err := d.AttachClient(archName+":fib.c", client, prog.LoaderPS)
	if err != nil {
		t.Fatalf("%s: attach: %v", archName, err)
	}
	tgt.Stdout = &proc.Stdout
	client.ResetStats()
	tr := runWireScript(t, archName, d, tgt, &proc.Stdout)
	return tr, client.Stats()
}

// TestFaultSoakAllTargets: on every architecture, the faulty-wire
// transcript must be byte-identical to the clean run's, and the faults
// must actually have fired (otherwise the test proves nothing).
func TestFaultSoakAllTargets(t *testing.T) {
	var reconnects int64
	for _, a := range allArches {
		t.Run(a, func(t *testing.T) {
			clean, _ := wireTranscript(t, a, true)
			faulty, stats := soakTranscript(t, a, 1992)
			if faulty != clean {
				t.Errorf("faulty-wire transcript diverged:\n-- clean --\n%s\n-- faulty --\n%s", clean, faulty)
			}
			t.Logf("%s: %d reconnects, %d replays, %d timeouts", a, stats.Reconnects, stats.Replays, stats.Timeouts)
			reconnects += stats.Reconnects
		})
	}
	if reconnects == 0 {
		t.Error("no faults fired across the whole soak; the wire was never exercised")
	}
}
