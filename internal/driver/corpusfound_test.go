package driver

import "testing"

// Regression tests for miscompiles shaken out by the differential
// scenario corpus (internal/corpus). Each test is the minimized form
// of a generated program whose output diverged across targets, checked
// against the behavior all targets must agree on.

// Found by corpus seed 1006: the frame-sizing pass modeled
// right-to-left argument pushes on every target, but MIPS pushes left
// to right, and the push order changes the evaluation-stack depth
// profile — a deep final argument costs extra slots under
// left-to-right pushing. The sizing pass therefore under-reserved the
// eval area on MIPS and the emitted spills ran past it into the
// adjacent local (y below, clobbered with the spilled k). Three
// arguments make the gap two words, which clears the 8-byte frame
// rounding slack that hides a one-word overflow.
func TestEvalDepthSizingMatchesArgOrder(t *testing.T) {
	checkOutput(t, `
int three(int a, int b, int c) { return a + b + c; }
int main() {
	int x;
	int k;
	int y;
	k = 3;
	y = 1000;
	x = three(k, k, k + (k + (k + (k + k))));
	printf("%d %d\n", x, y);
	return 0;
}
`, "21 1000\n")
}
