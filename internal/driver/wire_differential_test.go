package driver

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ldb/internal/core"
	"ldb/internal/nub"
)

// A differential tester for the wire transport: the same debug session
// — break in fib, run to the breakpoint, inspect locals, step, walk
// the stack, evaluate expressions, run to completion — must produce
// byte-identical debugger-visible output whether the client batches
// and caches (the optimized transport) or speaks the paper's plain
// one-request-one-reply protocol. Only the round-trip count may
// differ.

// wireFibC is Fig. 1's program, block scoping as in the paper, so
// stopping point 7 of fib is the loop body a[i] = a[i-1] + a[i-2].
const wireFibC = `void fib(int n)
{
	static int a[20];
	if (n > 20) n = 20;
	a[0] = a[1] = 1;
	{	int i;
		for (i=2; i<n; i++)
			a[i] = a[i-1] + a[i-2];
	}
	{	int j;
		for (j=0; j<n; j++)
			printf("%d ", a[j]);
	}
	printf("\n");
}
int main() { fib(10); return 0; }
`

// wirePrint runs Print and captures what it writes.
func wirePrint(t *testing.T, d *core.Debugger, tgt *core.Target, name string) string {
	t.Helper()
	var buf strings.Builder
	old := d.In.Stdout
	d.In.Stdout = &buf
	defer func() { d.In.Stdout = old }()
	if err := tgt.Print(name); err != nil {
		t.Fatalf("print %s: %v", name, err)
	}
	return strings.TrimRight(buf.String(), "\n")
}

// wireTranscript runs the fixed debug script on one target and returns
// every piece of debugger-visible output, plus the wire statistics it
// cost. optimized selects batching+caching on versus both off.
func wireTranscript(t *testing.T, archName string, optimized bool) (string, nub.StatsSnapshot) {
	t.Helper()
	var sink strings.Builder
	d, err := core.New(&sink)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build([]Source{{Name: "fib.c", Text: wireFibC}}, Options{Arch: archName, Debug: true})
	if err != nil {
		t.Fatalf("%s: build: %v", archName, err)
	}
	client, _, proc, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	if err != nil {
		t.Fatalf("%s: launch: %v", archName, err)
	}
	tgt, err := d.AttachClient(archName+":fib.c", client, prog.LoaderPS)
	if err != nil {
		t.Fatalf("%s: attach: %v", archName, err)
	}
	tgt.Stdout = &proc.Stdout
	tgt.Client.SetBatching(optimized)
	tgt.Client.SetCaching(optimized)
	tgt.Client.ResetStats()
	return runWireScript(t, archName, d, tgt, &proc.Stdout), tgt.Client.Stats()
}

// runWireScript drives the fixed debug session — break in fib, run to
// the breakpoint, inspect locals, step, walk the stack, evaluate
// expressions, run to exit — and returns everything debugger-visible.
// Any transport under the target must produce the same bytes; the
// fault-injection soak reuses it verbatim for exactly that comparison.
func runWireScript(t *testing.T, archName string, d *core.Debugger, tgt *core.Target, stdout *bytes.Buffer) string {
	t.Helper()
	var tr strings.Builder
	say := func(format string, args ...any) { fmt.Fprintf(&tr, format+"\n", args...) }

	addr, err := tgt.BreakStop("fib", 7)
	if err != nil {
		t.Fatalf("%s: break: %v", archName, err)
	}
	say("break fib@7 at %#x", addr)

	ev, err := tgt.ContinueToBreakpoint()
	if err != nil {
		t.Fatalf("%s: continue: %v", archName, err)
	}
	say("stopped pc=%#x sig=%v", ev.PC, ev.Sig)

	say("i = %s", wirePrint(t, d, tgt, "i"))
	say("n = %s", wirePrint(t, d, tgt, "n"))
	say("a = %s", wirePrint(t, d, tgt, "a"))

	ev, err = tgt.Step()
	if err != nil {
		t.Fatalf("%s: step: %v", archName, err)
	}
	say("step to pc=%#x", ev.PC)

	bt, err := tgt.Backtrace(10)
	if err != nil {
		t.Fatalf("%s: backtrace: %v", archName, err)
	}
	say("backtrace: %s", strings.Join(bt, " <- "))

	for _, expr := range []string{"a[i]", "a[i-1] + a[i-2]", "n"} {
		v, err := tgt.EvalInt(expr)
		if err != nil {
			t.Fatalf("%s: eval %q: %v", archName, expr, err)
		}
		say("eval %s = %d", expr, v)
	}

	// Re-inspect without resuming — the second look at the same state
	// is where a session spends much of its time.
	say("i = %s", wirePrint(t, d, tgt, "i"))
	say("a = %s", wirePrint(t, d, tgt, "a"))
	bt, err = tgt.Backtrace(10)
	if err != nil {
		t.Fatalf("%s: backtrace: %v", archName, err)
	}
	say("backtrace: %s", strings.Join(bt, " <- "))

	if err := tgt.Bpts.RemoveAll(); err != nil {
		t.Fatalf("%s: clear: %v", archName, err)
	}
	ev, err = tgt.ContinueToBreakpoint()
	if err != nil {
		t.Fatalf("%s: continue: %v", archName, err)
	}
	if !ev.Exited {
		t.Fatalf("%s: expected exit, stopped at %#x", archName, ev.PC)
	}
	say("exit=%d output=%q", ev.Status, stdout.String())
	return tr.String()
}

// TestDifferentialWireModes runs the script on every target with the
// optimized transport on and off and requires byte-identical
// transcripts; the optimized arm must also cost fewer round trips.
func TestDifferentialWireModes(t *testing.T) {
	var rtOn, rtOff int64
	for _, a := range allArches {
		t.Run(a, func(t *testing.T) {
			on, statsOn := wireTranscript(t, a, true)
			off, statsOff := wireTranscript(t, a, false)
			if on != off {
				t.Errorf("transcripts differ:\n-- batching+cache on --\n%s\n-- off --\n%s", on, off)
			}
			if statsOn.RoundTrips >= statsOff.RoundTrips {
				t.Errorf("round trips: %d optimized, %d plain — expected fewer",
					statsOn.RoundTrips, statsOff.RoundTrips)
			}
			if statsOff.Batches != 0 || statsOff.CacheHits != 0 {
				t.Errorf("plain transport used batches (%d) or cache (%d hits)",
					statsOff.Batches, statsOff.CacheHits)
			}
			rtOn += statsOn.RoundTrips
			rtOff += statsOff.RoundTrips
		})
	}
	if rtOn > 0 && rtOff < 3*rtOn {
		t.Errorf("aggregate round trips: %d optimized vs %d plain — want >= 3x reduction", rtOn, rtOff)
	}
	t.Logf("aggregate round trips: %d optimized, %d plain (%.1fx)", rtOn, rtOff, float64(rtOff)/float64(max(rtOn, 1)))
}
