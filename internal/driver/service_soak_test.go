package driver

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldb/internal/core"
	"ldb/internal/nub"
	"ldb/internal/nub/faultrw"
)

// The service soak: one debug-service endpoint carries 200 simultaneous
// sessions across every ISA while hostile peers spray junk at the same
// port and a third of the legitimate clients run over fault-injected
// wires that keep dying. Every session's transcript must come out
// byte-identical to a solo clean run of the same program — concurrency,
// eviction pressure, shared decode caches, reconnect-and-reattach, and
// harassment may move only performance counters, never debugger-visible
// bytes. Run under -race this is also the data-race gate for the whole
// session-multiplexing and cache-sharing seam.

const soakSessions = 200

// serviceSoakPrint is wirePrint without the testing.T: the soak's
// workers run off the test goroutine, where Fatalf is not allowed.
func serviceSoakPrint(d *core.Debugger, tgt *core.Target, name string) (string, error) {
	var buf strings.Builder
	old := d.In.Stdout
	d.In.Stdout = &buf
	defer func() { d.In.Stdout = old }()
	if err := tgt.Print(name); err != nil {
		return "", err
	}
	return strings.TrimRight(buf.String(), "\n"), nil
}

// serviceSoakScript is the fixed debug session every soak worker runs:
// break in fib, inspect locals, evaluate expressions, backtrace, then
// run to exit. Its output is the byte-equality oracle. A non-nil
// interrupt is invoked halfway through — between inspecting locals and
// evaluating expressions — and must leave the session attachable; it
// contributes nothing to the transcript, so an interrupted run must
// still come out byte-identical.
func serviceSoakScript(d *core.Debugger, tgt *core.Target, interrupt func() error) (string, error) {
	var tr strings.Builder
	say := func(format string, args ...any) { fmt.Fprintf(&tr, format+"\n", args...) }

	addr, err := tgt.BreakStop("fib", 7)
	if err != nil {
		return "", fmt.Errorf("break: %w", err)
	}
	say("break fib@7 at %#x", addr)
	ev, err := tgt.ContinueToBreakpoint()
	if err != nil {
		return "", fmt.Errorf("continue: %w", err)
	}
	if ev.Exited {
		return "", fmt.Errorf("exited before the breakpoint")
	}
	say("stopped pc=%#x sig=%v", ev.PC, ev.Sig)
	for _, name := range []string{"i", "n", "a"} {
		v, err := serviceSoakPrint(d, tgt, name)
		if err != nil {
			return "", fmt.Errorf("print %s: %w", name, err)
		}
		say("%s = %s", name, v)
	}
	if interrupt != nil {
		if err := interrupt(); err != nil {
			return "", fmt.Errorf("interrupt: %w", err)
		}
	}
	for _, expr := range []string{"a[i]", "a[i-1] + a[i-2]", "n"} {
		v, err := tgt.EvalInt(expr)
		if err != nil {
			return "", fmt.Errorf("eval %q: %w", expr, err)
		}
		say("eval %s = %d", expr, v)
	}
	bt, err := tgt.Backtrace(10)
	if err != nil {
		return "", fmt.Errorf("backtrace: %w", err)
	}
	say("backtrace: %s", strings.Join(bt, " <- "))
	if err := tgt.Bpts.RemoveAll(); err != nil {
		return "", fmt.Errorf("clear: %w", err)
	}
	ev, err = tgt.ContinueToBreakpoint()
	if err != nil {
		return "", fmt.Errorf("run to exit: %w", err)
	}
	if !ev.Exited {
		return "", fmt.Errorf("expected exit, stopped at %#x", ev.PC)
	}
	say("exit=%d", ev.Status)
	return tr.String(), nil
}

// soakServiceSession dials the service, opens a session of the given
// program, and runs the script. With an injector seed >= 0 the wire is
// fault-injected and kept dying underneath the session. A non-nil
// interrupt runs mid-script with the live client — the chaos soak's
// hook for detaching and riding a passivation/resurrection cycle.
func soakServiceSession(addr, program string, prog *Program, seed int64, interrupt func(*nub.Client) error) (string, nub.StatsSnapshot, error) {
	var inj *faultrw.Injector
	if seed >= 0 {
		inj = faultrw.New(seed, faultrw.Config{
			DropEvery:      2000,
			TruncateWrites: true,
			ChunkWrites:    true,
		})
	}
	dial := func() (io.ReadWriter, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if inj != nil {
			return inj.Wrap(conn), nil
		}
		return conn, nil
	}
	rw, err := dial()
	if err != nil {
		return "", nub.StatsSnapshot{}, err
	}
	defer func() {
		if cl, ok := rw.(io.Closer); ok {
			cl.Close()
		}
	}()
	client, err := nub.Connect(rw)
	if err != nil {
		return "", nub.StatsSnapshot{}, fmt.Errorf("connect: %w", err)
	}
	if inj != nil {
		inj.SetGate(client.Replayable)
	}
	client.SetRedial(dial)
	client.SetTimeout(2 * time.Second)
	client.SetRetries(8)
	if _, err := client.OpenSession(program); err != nil {
		return "", nub.StatsSnapshot{}, fmt.Errorf("open %s: %w", program, err)
	}
	var sink strings.Builder
	d, err := core.New(&sink)
	if err != nil {
		return "", nub.StatsSnapshot{}, err
	}
	tgt, err := d.AttachClient(program+":fib.c", client, prog.LoaderPS)
	if err != nil {
		return "", nub.StatsSnapshot{}, fmt.Errorf("attach: %w", err)
	}
	var mid func() error
	if interrupt != nil {
		mid = func() error { return interrupt(client) }
	}
	tr, err := serviceSoakScript(d, tgt, mid)
	if err != nil {
		return "", nub.StatsSnapshot{}, err
	}
	if cerr := client.CloseSession(); cerr != nil {
		return "", nub.StatsSnapshot{}, fmt.Errorf("close session: %w", cerr)
	}
	return tr, client.Stats(), nil
}

func TestServiceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	// Solo clean reference per architecture, over the in-memory
	// transport: the bytes every concurrent session must reproduce.
	progs := make(map[string]*Program, len(allArches))
	clean := make(map[string]string, len(allArches))
	for _, a := range allArches {
		prog, err := Build([]Source{{Name: "fib.c", Text: wireFibC}}, Options{Arch: a, Debug: true})
		if err != nil {
			t.Fatalf("%s: build: %v", a, err)
		}
		progs[a] = prog
		var sink strings.Builder
		d, err := core.New(&sink)
		if err != nil {
			t.Fatal(err)
		}
		client, _, _, err := nub.Launch(prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
		if err != nil {
			t.Fatal(err)
		}
		tgt, err := d.AttachClient("clean:"+a, client, prog.LoaderPS)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := serviceSoakScript(d, tgt, nil)
		if err != nil {
			t.Fatalf("%s: clean run: %v", a, err)
		}
		clean[a] = tr
	}

	// One endpoint for everything.
	s := nub.NewService()
	s.ReadTimeout = 250 * time.Millisecond
	for _, a := range allArches {
		prog := progs[a]
		s.Register(a, prog.Arch, prog.Image.Text, prog.Image.Data, prog.Image.Entry)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeListener(l)
	defer s.Shutdown()
	addr := l.Addr().String()

	// Pre-warm: one clean session per architecture, so its close
	// publishes the program's decode products (the script unplants its
	// breakpoints before exiting, leaving the text pristine) and every
	// fleet session below attaches warm.
	for _, a := range allArches {
		tr, _, err := soakServiceSession(addr, a, progs[a], -1, nil)
		if err != nil {
			t.Fatalf("%s: pre-warm: %v", a, err)
		}
		if tr != clean[a] {
			t.Fatalf("%s: pre-warm transcript diverged:\n-- clean --\n%s\n-- service --\n%s", a, clean[a], tr)
		}
	}

	// Hostile peers hammer the same port for the soak's whole duration:
	// junk bytes, unknown kinds, session requests for programs that do
	// not exist, an oversize frame, and a trickled partial frame that
	// must trip the service's read deadline.
	stop := make(chan struct{})
	var hostileRounds atomic.Int64
	var hostileWG sync.WaitGroup
	payloads := [][]byte{
		append(frameBytes(t, &nub.Msg{Kind: nub.MsgKind(200)}),
			frameBytes(t, &nub.Msg{Kind: nub.MOpenSession, Data: []byte("no-such-program")})...),
		append(frameBytes(t, &nub.Msg{Kind: nub.MAttachSession, Val: ^uint64(0)}),
			oversizeFrame(t)...),
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		frameBytes(t, &nub.Msg{Kind: nub.MFetchInt, Space: 'd', Addr: 16, Size: 4})[:9],
	}
	for w := 0; w < 4; w++ {
		hostileWG.Add(1)
		go func(w int) {
			defer hostileWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				_ = c.SetDeadline(time.Now().Add(5 * time.Second))
				_, _ = c.Write(payloads[(w+i)%len(payloads)])
				_, _ = io.Copy(io.Discard, c) // drain until dropped or replied-and-idle times out
				_ = c.Close()
				hostileRounds.Add(1)
			}
		}(w)
	}

	// The fleet: 200 simultaneous sessions, round-robin across the
	// ISAs, every third one over a fault-injected wire.
	type result struct {
		i   int
		a   string
		tr  string
		st  nub.StatsSnapshot
		err error
	}
	results := make(chan result, soakSessions)
	var wg sync.WaitGroup
	for i := 0; i < soakSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := allArches[i%len(allArches)]
			seed := int64(-1)
			if i%3 == 0 {
				seed = int64(1992 + i)
			}
			tr, st, err := soakServiceSession(addr, a, progs[a], seed, nil)
			results <- result{i: i, a: a, tr: tr, st: st, err: err}
		}(i)
	}
	wg.Wait()
	close(results)
	close(stop)
	hostileWG.Wait()

	var reconnects, replays int64
	diverged := 0
	for r := range results {
		if r.err != nil {
			t.Errorf("session %d (%s): %v", r.i, r.a, r.err)
			continue
		}
		if r.tr != clean[r.a] {
			diverged++
			if diverged <= 2 { // the first mismatches tell the story; 200 would drown it
				t.Errorf("session %d (%s) transcript diverged:\n-- clean --\n%s\n-- service --\n%s", r.i, r.a, clean[r.a], r.tr)
			}
		}
		reconnects += r.st.Reconnects
		replays += r.st.Replays
	}
	if diverged > 2 {
		t.Errorf("%d transcripts diverged in total", diverged)
	}
	if reconnects == 0 {
		t.Error("no reconnects across the faulty third; the wire faults never fired")
	}
	if hostileRounds.Load() == 0 {
		t.Error("no hostile rounds completed; the endpoint was never attacked")
	}

	// The endpoint must still be healthy, the pool drained, and the
	// shared decode cache must have carried the fleet: every fleet
	// session attached after the pre-warm publishes, so warm adoptions
	// must at least match the fleet size.
	tr, _, err := soakServiceSession(addr, allArches[0], progs[allArches[0]], -1, nil)
	if err != nil {
		t.Fatalf("post-soak session: %v", err)
	}
	if tr != clean[allArches[0]] {
		t.Errorf("post-soak transcript diverged")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := nub.Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 0 {
		t.Errorf("pool not drained: %d sessions live", st.Live)
	}
	if want := int64(soakSessions + len(allArches) + 1); st.Opened < want {
		t.Errorf("opened = %d, want >= %d", st.Opened, want)
	}
	if st.SharedHits < soakSessions {
		t.Errorf("shared-cache hits = %d, want >= %d (fleet should attach warm)", st.SharedHits, soakSessions)
	}
	t.Logf("sessions=%d reconnects=%d replays=%d hostile=%d peak=%d evicted=%d shared=%d/%d requests=%d",
		soakSessions, reconnects, replays, hostileRounds.Load(),
		st.Peak, st.Evicted, st.SharedHits, st.SharedMisses, st.TotalRequests)
}
