// Package driver is the compiler driver: it compiles C sources for a
// target, links them with the runtime, and (when compiling for
// debugging) collects the PostScript symbol tables and generates the
// loader table, cooperating with the linker the way lcc's driver does
// with nm (§3).
package driver

import (
	"fmt"
	"strings"

	"ldb/internal/arch"
	"ldb/internal/asm"
	"ldb/internal/cc"
	"ldb/internal/codegen"
	"ldb/internal/link"
	"ldb/internal/symtab"
)

// Source is one C translation unit.
type Source struct {
	Name string
	Text string
}

// Options selects the target and debugging.
type Options struct {
	Arch  string
	Debug bool
	// Sched enables the MIPS load-delay-slot scheduler (ignored on the
	// other targets, whose assemblers do not schedule).
	Sched bool
}

// Program is a built executable plus its debugging information.
type Program struct {
	Arch     arch.Arch
	Image    *link.Image
	Units    []*cc.Unit
	Objs     []*asm.Unit
	SymtabPS string // the combined top-level dictionary source
	LoaderPS string // the loader table source
	// SchedFilled and SchedPadded total the MIPS scheduler's results.
	SchedFilled int
	SchedPadded int
}

// Build compiles and links the sources.
func Build(sources []Source, opts Options) (*Program, error) {
	a, ok := arch.Lookup(opts.Arch)
	if !ok {
		return nil, fmt.Errorf("driver: unknown architecture %q (have %s)", opts.Arch, strings.Join(arch.Names(), ", "))
	}
	prog := &Program{Arch: a}
	var objs []*asm.Unit
	em := codegen.NewEmitterFor(a)
	objs = append(objs, em.Runtime(opts.Debug))

	for _, src := range sources {
		tc := *em.Conf()
		unit, err := cc.Compile(src.Text, src.Name, &tc)
		if err != nil {
			return nil, err
		}
		uem := codegen.NewEmitterFor(a)
		if opts.Sched {
			if sch, ok := uem.(codegen.Scheduler); ok {
				sch.EnableSched(true)
			}
		}
		obj, err := codegen.GenUnit(unit, uem, codegen.Options{Debug: opts.Debug})
		if err != nil {
			return nil, err
		}
		if sch, ok := uem.(codegen.Scheduler); ok {
			f, p := sch.SchedStats()
			prog.SchedFilled += f
			prog.SchedPadded += p
		}
		prog.Units = append(prog.Units, unit)
		objs = append(objs, obj)
	}
	img, err := link.Link(a, objs...)
	if err != nil {
		return nil, err
	}
	prog.Image = img
	prog.Objs = objs
	if opts.Debug {
		prog.SymtabPS = symtab.EmitProgramPS(prog.Units, a.Name())
		prog.LoaderPS = link.LoaderPS(img, prog.SymtabPS)
	}
	return prog, nil
}

// TextWords reports the number of machine instructions in the
// program's compiled units (excluding the fixed runtime) — the measure
// used by the code-growth experiments (§3 reports no-op growth in
// instructions).
func TextWords(p *Program) int {
	n := 0
	for _, o := range p.Objs {
		if o.Name == "runtime" {
			continue
		}
		n += o.Instrs
	}
	return n
}
