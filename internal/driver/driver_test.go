package driver

import (
	"strings"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/link"
	"ldb/internal/machine"
	"ldb/internal/nub"
)

var allArches = []string{"mips", "mipsbe", "sparc", "m68k", "vax"}

// runProgram builds src for the given target (not for debugging) and
// runs it to completion.
func runProgram(t *testing.T, archName, src string) (*machine.Process, int) {
	t.Helper()
	prog, err := Build([]Source{{Name: "test.c", Text: src}}, Options{Arch: archName})
	if err != nil {
		t.Fatalf("%s: build: %v", archName, err)
	}
	p := link.NewProcess(prog.Image)
	f := p.Run()
	if f.Kind != arch.FaultHalt {
		t.Fatalf("%s: program died: %v (output so far %q)", archName, f, p.Stdout.String())
	}
	return p, p.ExitCode
}

func checkOutput(t *testing.T, src, want string) {
	t.Helper()
	for _, a := range allArches {
		p, _ := runProgram(t, a, src)
		if got := p.Stdout.String(); got != want {
			t.Errorf("%s: output = %q, want %q", a, got, want)
		}
	}
}

func checkExit(t *testing.T, src string, want int) {
	t.Helper()
	for _, a := range allArches {
		_, code := runProgram(t, a, src)
		if code != want {
			t.Errorf("%s: exit = %d, want %d", a, code, want)
		}
	}
}

const fibC = `
void fib(int n)
{
	static int a[20];
	int i;
	if (n > 20) n = 20;
	a[0] = a[1] = 1;
	for (i = 2; i < n; i++)
		a[i] = a[i-1] + a[i-2];
	{	int j;
		for (j = 0; j < n; j++)
			printf("%d ", a[j]);
	}
	printf("\n");
}
int main() { fib(10); return 0; }
`

func TestFibAllTargets(t *testing.T) {
	checkOutput(t, fibC, "1 1 2 3 5 8 13 21 34 55 \n")
}

func TestArithmetic(t *testing.T) {
	checkOutput(t, `
int main() {
	int a;
	int b;
	a = 21; b = 4;
	printf("%d %d %d %d %d\n", a+b, a-b, a*b, a/b, a%b);
	printf("%d %d %d\n", a << 2, a >> 1, -a);
	printf("%d %d %d %d\n", a & b, a | b, a ^ b, ~a);
	printf("%d %d %d\n", a > b, a == b, a != b);
	printf("%d %d\n", a > 0 && b > 10, a > 0 || b > 10);
	printf("%d\n", !a);
	return 0;
}`, "25 17 84 5 1\n84 10 -21\n4 21 17 -22\n1 0 1\n0 1\n0\n")
}

func TestNegativeDivRem(t *testing.T) {
	checkOutput(t, `
int main() {
	printf("%d %d %d %d\n", -7 / 2, -7 % 2, 7 / -2, 7 % -2);
	return 0;
}`, "-3 -1 -3 1\n")
}

func TestUnsigned(t *testing.T) {
	checkOutput(t, `
int main() {
	unsigned u;
	u = 0 - 1;
	printf("%d\n", u > 1);         /* unsigned compare: max > 1 */
	printf("%d\n", (int)(u >> 28)); /* logical shift: 15 */
	return 0;
}`, "1\n15\n")
}

func TestCharShortAndSignExtension(t *testing.T) {
	checkOutput(t, `
char c;
short s;
int main() {
	c = 200;   /* becomes negative as signed char */
	s = -2;
	printf("%d %d\n", c, s);
	c = 'A';
	printf("%c%c\n", c, c + 1);
	return 0;
}`, "-56 -2\nAB\n")
}

func TestControlFlow(t *testing.T) {
	checkOutput(t, `
int main() {
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < 10; i++) {
		if (i == 3) continue;
		if (i == 8) break;
		sum = sum + i;
	}
	while (sum > 20) sum = sum - 5;
	printf("%d\n", sum);
	printf("%d\n", sum > 15 ? 1 : sum);
	return 0;
}`, "20\n1\n")
}

func TestRecursion(t *testing.T) {
	checkOutput(t, `
int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
int fibr(int n) { if (n < 2) return n; return fibr(n-1) + fibr(n-2); }
int main() {
	printf("%d %d\n", fact(7), fibr(15));
	return 0;
}`, "5040 610\n")
}

func TestPointersAndArrays(t *testing.T) {
	checkOutput(t, `
int a[8];
int sum(int *p, int n) {
	int s;
	s = 0;
	while (n-- > 0) s = s + *p++;
	return s;
}
int main() {
	int i;
	for (i = 0; i < 8; i++) a[i] = i * i;
	printf("%d\n", sum(a, 8));
	printf("%d %d\n", a[3], *(a + 4));
	printf("%d\n", &a[7] - &a[2]);
	return 0;
}`, "140\n9 16\n5\n")
}

func TestBubbleSort(t *testing.T) {
	checkOutput(t, `
int v[10];
void sort(int *p, int n) {
	int i; int j;
	for (i = 0; i < n; i++)
		for (j = 0; j < n - 1 - i; j++)
			if (p[j] > p[j+1]) {
				int t;
				t = p[j]; p[j] = p[j+1]; p[j+1] = t;
			}
}
int main() {
	int i;
	for (i = 0; i < 10; i++) v[i] = (i * 7 + 3) % 10;
	sort(v, 10);
	for (i = 0; i < 10; i++) printf("%d", v[i]);
	printf("\n");
	return 0;
}`, "0123456789\n")
}

func TestStrings(t *testing.T) {
	checkOutput(t, `
int length(char *s) {
	int n;
	n = 0;
	while (*s++) n++;
	return n;
}
int main() {
	char *msg;
	msg = "hello, world";
	printf("%s has %d chars\n", msg, length(msg));
	return 0;
}`, "hello, world has 12 chars\n")
}

func TestStructs(t *testing.T) {
	checkOutput(t, `
struct point { int x; int y; };
struct rect { struct point min; struct point max; };
struct rect r;
int area(struct rect *p) {
	return (p->max.x - p->min.x) * (p->max.y - p->min.y);
}
int main() {
	r.min.x = 1; r.min.y = 2;
	r.max.x = 11; r.max.y = 7;
	printf("%d\n", area(&r));
	return 0;
}`, "50\n")
}

func TestFloats(t *testing.T) {
	checkOutput(t, `
double half(double x) { return x / 2.0; }
int main() {
	double d;
	float f;
	int i;
	d = 3.5;
	f = 1.25;
	printf("%g %g\n", d + f, half(d));
	printf("%g\n", d * 2.0 - 1.0);
	i = (int) (d + 0.6);
	printf("%d\n", i);
	d = i;
	printf("%g\n", d);
	printf("%d %d\n", d > 3.9, 1.5 == 1.5);
	return 0;
}`, "4.75 1.75\n6\n4\n4\n1 1\n")
}

func TestFloatNegationAndIncrement(t *testing.T) {
	// Exercises the FNeg and FMove back-end operations on every target:
	// unary minus on floats and the value-producing pre/post forms of
	// ++/-- on doubles and floats.
	checkOutput(t, `
double d = 2.5;
float f = 1.5;
int main() {
	double e;
	e = -d;
	printf("%g %g %g\n", e, -e, -(d + e));
	printf("%g %g\n", ++d, d);   /* pre: new value */
	printf("%g %g\n", d++, d);   /* post: old value */
	printf("%g %g\n", --f, f--);
	printf("%g\n", f);
	printf("%g\n", -f * -2.0);
	return 0;
}`, "-2.5 2.5 -0\n3.5 3.5\n3.5 4.5\n0.5 0.5\n-0.5\n-1\n")
}

func TestFloatArguments(t *testing.T) {
	checkOutput(t, `
double mix(double a, int b, double c) { return a + b * c; }
int main() {
	printf("%g\n", mix(0.5, 3, 1.5));
	return 0;
}`, "5\n")
}

func TestFunctionPointers(t *testing.T) {
	checkOutput(t, `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int apply(int (*f)(int), int v) { return f(v); }
int main() {
	int (*g)(int);
	g = &twice;
	printf("%d %d\n", apply(g, 10), apply(&thrice, 10));
	return 0;
}`, "20 30\n")
}

func TestGlobalsStaticsInitializers(t *testing.T) {
	checkOutput(t, `
int g = 42;
static int hidden = 7;
double dg = 2.5;
char *msg = "init";
int bump() {
	static int counter;
	counter = counter + 1;
	return counter;
}
int main() {
	printf("%d %d %g %s\n", g, hidden, dg, msg);
	printf("%d%d%d\n", bump(), bump(), bump());
	return 0;
}`, "42 7 2.5 init\n123\n")
}

func TestExitStatus(t *testing.T) {
	checkExit(t, `int main() { return 42; }`, 42)
}

func TestMultipleUnits(t *testing.T) {
	srcs := []Source{
		{Name: "main.c", Text: `
extern int helper(int x);
int main() { printf("%d\n", helper(20)); return 0; }
`},
		{Name: "helper.c", Text: `
static int secret = 22;
int helper(int x) { return x + secret; }
`},
	}
	for _, a := range allArches {
		prog, err := Build(srcs, Options{Arch: a})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		p := link.NewProcess(prog.Image)
		if f := p.Run(); f.Kind != arch.FaultHalt {
			t.Fatalf("%s: %v", a, f)
		}
		if got := p.Stdout.String(); got != "42\n" {
			t.Errorf("%s: output %q", a, got)
		}
	}
}

func TestLongDoubleOnM68k(t *testing.T) {
	src := `
long double x;
int main() {
	x = 1.5;
	x = x * 4.0;
	printf("%d\n", (int)x);
	printf("%d\n", sizeof(long double));
	return 0;
}`
	p, _ := runProgram(t, "m68k", src)
	if got := p.Stdout.String(); got != "6\n12\n" {
		t.Errorf("m68k long double: %q", got)
	}
	p, _ = runProgram(t, "sparc", src)
	if got := p.Stdout.String(); got != "6\n8\n" {
		t.Errorf("sparc long double: %q", got)
	}
}

func TestDebugBuildRunsIdentically(t *testing.T) {
	for _, a := range allArches {
		prog, err := Build([]Source{{Name: "fib.c", Text: fibC}}, Options{Arch: a, Debug: true})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		p := link.NewProcess(prog.Image)
		n := nub.New(p)
		n.Start() // runs to the pause trap
		c, err := nub.Pair(n)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if c.Last.Sig != arch.SigTrap || c.Last.Code != arch.TrapPause {
			t.Fatalf("%s: first event %v", a, c.Last)
		}
		ev, err := c.Continue()
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !ev.Exited || ev.Status != 0 {
			t.Fatalf("%s: final event %v", a, ev)
		}
		if got := p.Stdout.String(); got != "1 1 2 3 5 8 13 21 34 55 \n" {
			t.Errorf("%s: debug run output %q", a, got)
		}
	}
}

func TestDebugCodeIsBigger(t *testing.T) {
	// §3: the no-ops at stopping points grow the code.
	for _, a := range allArches {
		plain, err := Build([]Source{{Name: "fib.c", Text: fibC}}, Options{Arch: a})
		if err != nil {
			t.Fatal(err)
		}
		debug, err := Build([]Source{{Name: "fib.c", Text: fibC}}, Options{Arch: a, Debug: true})
		if err != nil {
			t.Fatal(err)
		}
		pw, dw := TextWords(plain), TextWords(debug)
		if dw <= pw {
			t.Errorf("%s: debug text %d not larger than plain %d", a, dw, pw)
		}
		growth := float64(dw-pw) / float64(pw)
		t.Logf("%s: no-op growth %.1f%% (%d → %d)", a, growth*100, pw, dw)
	}
}

func TestLoaderPSGenerated(t *testing.T) {
	prog, err := Build([]Source{{Name: "fib.c", Text: fibC}}, Options{Arch: "sparc", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"/symtab", "/anchormap", "/proctable", "_stanchor__V", "(_fib)", "(_main)"} {
		if !strings.Contains(prog.LoaderPS, want) {
			t.Errorf("loader PS missing %q", want)
		}
	}
	if !strings.Contains(prog.SymtabPS, "/architecture (sparc)") {
		t.Error("symtab PS missing architecture")
	}
}

func TestMipsRuntimeProcedureTable(t *testing.T) {
	prog, err := Build([]Source{{Name: "fib.c", Text: fibC}}, Options{Arch: "mips", Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Image.RPTAddr == 0 {
		t.Fatal("no runtime procedure table")
	}
	if _, ok := prog.Image.SymAddr("_procedure_table"); !ok {
		t.Fatal("no _procedure_table symbol")
	}
	// Every compiled function appears with a plausible frame size.
	found := map[string]int32{}
	for _, f := range prog.Image.Funcs {
		found[f.Name] = f.FrameSize
	}
	if found["_fib"] <= 0 {
		t.Errorf("fib frame size = %d", found["_fib"])
	}
}

func TestFaultingProgram(t *testing.T) {
	for _, a := range allArches {
		prog, err := Build([]Source{{Name: "bad.c", Text: `
int main() {
	int *p;
	p = (int *) 16;
	return *p;
}`}}, Options{Arch: a})
		if err != nil {
			t.Fatal(err)
		}
		p := link.NewProcess(prog.Image)
		f := p.Run()
		if f.Kind != arch.FaultSignal || f.Sig != arch.SigSegv {
			t.Errorf("%s: fault = %v, want SIGSEGV", a, f)
		}
	}
}

func TestDivideByZeroProgram(t *testing.T) {
	for _, a := range allArches {
		prog, err := Build([]Source{{Name: "dz.c", Text: `
int main() { int z; z = 0; return 5 / z; }`}}, Options{Arch: a})
		if err != nil {
			t.Fatal(err)
		}
		p := link.NewProcess(prog.Image)
		if f := p.Run(); f.Sig != arch.SigFPE {
			t.Errorf("%s: %v, want SIGFPE", a, f)
		}
	}
}

func TestNestedCallsInArguments(t *testing.T) {
	checkOutput(t, `
int add(int a, int b) { return a + b; }
int main() {
	printf("%d\n", add(add(1, 2), add(add(3, 4), 5)));
	return 0;
}`, "15\n")
}

func TestDeepExpressionSpill(t *testing.T) {
	checkOutput(t, `
int main() {
	int a;
	a = 1;
	printf("%d\n", ((((a+1)*2+1)*2+1)*2+1)*2 + (a+2)*(a+3)*(a+4));
	return 0;
}`, "106\n")
}

func TestFloatConditions(t *testing.T) {
	checkOutput(t, `
double d;
float f;
int main() {
	d = 0.0;
	if (d) printf("x"); else printf("zero ");
	d = 0.25;
	if (d) printf("nonzero "); else printf("x");
	f = 2.0;
	while (f > 0.5) f = f / 2.0;
	printf("%g\n", f);
	return 0;
}`, "zero nonzero 0.5\n")
}

func TestCastsEverywhere(t *testing.T) {
	checkOutput(t, `
int main() {
	int i;
	char c;
	short s;
	double d;
	i = 300;
	c = (char) i;             /* 300 -> 44 */
	s = (short) 70000;        /* 70000 -> 4464 */
	d = (double) 7 / 2;
	printf("%d %d %d %g\n", c, s, (int) d, d);
	printf("%d\n", (int) 2.75 + (int) -1.5);
	return 0;
}`, "44 4464 3 3.5\n1\n")
}

func TestRunawayTargetIsStopped(t *testing.T) {
	// An infinite loop cannot wedge the machinery: the simulator's
	// step limit turns it into a signal the nub reports.
	old := machine.MaxSteps
	machine.MaxSteps = 1_000_000
	defer func() { machine.MaxSteps = old }()
	prog, err := Build([]Source{{Name: "spin.c", Text: `
int main() { for (;;) ; return 0; }`}}, Options{Arch: "vax"})
	if err != nil {
		t.Fatal(err)
	}
	p := link.NewProcess(prog.Image)
	f := p.Run()
	if f.Kind != arch.FaultSignal {
		t.Fatalf("runaway target: %v", f)
	}
	if p.State != machine.StateStopped {
		t.Fatalf("state = %v", p.State)
	}
}

func TestDoWhileSwitchCompoundComma(t *testing.T) {
	checkOutput(t, `
int classify(int x) {
	switch (x % 5) {
	case 0: return 100;
	case 1:
	case 2: return 200;   /* fallthrough from 1 into 2 */
	case 3: x += 1000;    /* fall into default */
	default: return x;
	}
}
int main() {
	int i;
	int acc;
	acc = 0;
	i = 0;
	do {
		acc += classify(i);
		i++;
	} while (i < 7);
	printf("%d\n", acc);
	acc <<= 2;
	acc |= 3;
	acc -= 1;
	printf("%d\n", acc);
	for (i = 0, acc = 0; i < 5; i++, acc += i) ;
	printf("%d %d\n", i, acc);
	return 0;
}`, "1807\n7230\n5 15\n")
}

func TestDoWhileRunsBodyAtLeastOnce(t *testing.T) {
	checkOutput(t, `
int main() {
	int n;
	n = 10;
	do { printf("once "); n++; } while (n < 5);
	printf("%d\n", n);
	return 0;
}`, "once 11\n")
}

func TestSwitchBreakAndNesting(t *testing.T) {
	checkOutput(t, `
int main() {
	int i;
	for (i = 0; i < 6; i++) {
		switch (i) {
		case 0: printf("z"); break;
		case 2:
		case 4: printf("e"); break;
		case 5: printf("f"); continue;
		default: printf("o"); break;
		}
		printf(".");
	}
	printf("\n");
	return 0;
}`, "z.o.e.o.e.f\n")
}

func TestCompoundAssignErrors(t *testing.T) {
	_, err := Build([]Source{{Name: "x.c", Text: `
int a[4];
int main() { int i; i = 0; a[i++] += 1; return 0; }`}}, Options{Arch: "vax"})
	if err == nil || !strings.Contains(err.Error(), "side effects") {
		t.Fatalf("err = %v", err)
	}
	_, err = Build([]Source{{Name: "y.c", Text: `
int main() { switch (1) { case 1: ; case 1: ; } return 0; }`}}, Options{Arch: "vax"})
	if err == nil || !strings.Contains(err.Error(), "duplicate case") {
		t.Fatalf("err = %v", err)
	}
}

func TestPrintfHexAndUnsigned(t *testing.T) {
	checkOutput(t, `
int main() {
	unsigned u;
	u = 0 - 1;
	printf("%x %u\n", 255, u);
	printf("%x\n", 4096);
	return 0;
}`, "ff 4294967295\n1000\n")
}

func TestUnions(t *testing.T) {
	// Members share storage: writing one is visible through another.
	checkOutput(t, `
union value { int i; unsigned u; char c; };
union value v;
union number { double d; int half[2]; };
union number n;
int main() {
	v.i = -1;
	printf("%d %d\n", (int) v.u == -1, v.c);   /* all-ones through every view */
	v.c = 'A';
	printf("%d\n", v.i != -1);                 /* low byte changed the int */
	printf("%d\n", sizeof(union value));
	n.d = 1.0;
	printf("%d\n", n.half[0] != 0 || n.half[1] != 0);
	printf("%d %d\n", sizeof(union number), sizeof(n.half));
	return 0;
}`, "1 -1\n1\n4\n1\n8 8\n")
	// Unions nest in structs and pass through pointers.
	checkOutput(t, `
union u { int i; char c; };
struct box { int tag; union u body; };
struct box b;
int get(union u *p) { return p->i; }
int main() {
	b.tag = 1;
	b.body.i = 42;
	printf("%d %d\n", b.body.i, get(&b.body));
	return 0;
}`, "42 42\n")
}

func TestEnumsRuntime(t *testing.T) {
	checkOutput(t, `
enum op { ADD, SUB = 10, NEG };
int apply(int op, int a, int b) {
	switch (op) {
	case ADD: return a + b;
	case SUB: return a - b;
	case NEG: return -a;
	}
	return -999;
}
int main() {
	printf("%d %d %d\n", apply(ADD, 7, 2), apply(SUB, 7, 2), apply(NEG, 7, 0));
	printf("%d %d %d\n", ADD, SUB, NEG);
	return 0;
}`, "9 5 -7\n0 10 11\n")
}

func TestBracedInitializers(t *testing.T) {
	checkOutput(t, `
int primes[5] = {2, 3, 5, 7, 11};
int part[4] = {9, 8};                 /* trailing elements zero */
int sized[] = {4, 5, 6};              /* length from the initializer */
char msg[] = "wide";
char small[8] = "ok";
struct point { int x; int y; };
struct point origin = {3, 4};
struct line { struct point a; struct point b; } seg = {{1, 2}, {3, 4}};
double weights[2] = {0.5, 1.5};
static int hidden[3] = {7, 7, 7};
int main() {
	int i;
	int sum;
	sum = 0;
	for (i = 0; i < 5; i++) sum = sum + primes[i];
	printf("%d\n", sum);
	printf("%d %d %d %d\n", part[0], part[1], part[2], part[3]);
	printf("%d %d\n", sizeof(sized) / sizeof(sized[0]), sized[2]);
	printf("%s %d %s\n", msg, sizeof(msg), small);
	printf("%d %d\n", origin.x + origin.y, seg.b.y);
	printf("%g\n", weights[0] + weights[1]);
	printf("%d\n", hidden[0] + hidden[1] + hidden[2]);
	return 0;
}`, "28\n9 8 0 0\n3 6\nwide 5 ok\n7 4\n2\n21\n")
}

func TestInitializerErrors(t *testing.T) {
	for _, src := range []string{
		`int a[2] = {1, 2, 3}; int main() { return 0; }`,
		`char s[2] = "toolong"; int main() { return 0; }`,
		`int x = {1}; int main() { return 0; }`,
		`struct p { int x; }; struct p v = {1, 2}; int main() { return 0; }`,
		`int main() { int a[2] = {1, 2}; return 0; }`,
	} {
		if _, err := Build([]Source{{Name: "bad.c", Text: src}}, Options{Arch: "vax"}); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestGoto(t *testing.T) {
	checkOutput(t, `
int main() {
	int i;
	int sum;
	i = 0; sum = 0;
again:
	sum = sum + i;
	i = i + 1;
	if (i < 5) goto again;
	if (sum > 100) goto skip;
	printf("%d\n", sum);
skip:
	/* goto out of a nested loop, the classic use */
	for (i = 0; i < 10; i++) {
		int j;
		for (j = 0; j < 10; j++)
			if (i * j == 12) goto found;
	}
	printf("none\n");
	goto done;
found:
	printf("%d\n", i);
done:
	return 0;
}`, "10\n2\n")
}

func TestGotoErrors(t *testing.T) {
	for _, src := range []string{
		`int main() { goto nowhere; return 0; }`,
		`int main() { x: x: return 0; }`,
	} {
		if _, err := Build([]Source{{Name: "bad.c", Text: src}}, Options{Arch: "mips"}); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestFloatGlobalInitializers(t *testing.T) {
	// float initializers use the 32-bit image; long double uses the
	// 80-bit extended image on the 68020 and 64 bits elsewhere.
	src := `
float fg = 1.25;
double dg = -2.5;
long double lg = 3.75;
int main() {
	printf("%g %g %g\n", fg, dg, lg);
	printf("%g\n", fg + dg + lg);
	return 0;
}`
	checkOutput(t, src, "1.25 -2.5 3.75\n2.5\n")
}
