package stab

import (
	"bytes"
	"compress/lzw"
	"strings"
	"testing"

	"ldb/internal/cc"
	"ldb/internal/symtab"
	"ldb/internal/workload"
)

var conf = &cc.TargetConf{Name: "sparc", LDoubleSize: 8}

func compile(t *testing.T, src, file string) *cc.Unit {
	t.Helper()
	u, err := cc.Compile(src, file, conf)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestRoundTrip(t *testing.T) {
	u := compile(t, workload.Fib, "fib.c")
	data := Emit([]*cc.Unit{u})
	tbl, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Syms) != len(u.Syms) {
		t.Fatalf("syms = %d, want %d", len(tbl.Syms), len(u.Syms))
	}
	byName := map[string]Sym{}
	for _, s := range tbl.Syms {
		byName[s.Name] = s
	}
	a := byName["a"]
	if a.Where != WhereAnchor || a.Label != u.AnchorSym {
		t.Fatalf("a: %+v", a)
	}
	if tbl.Types[a.Type][0] != 'A' {
		t.Fatalf("a's type descriptor: %q", tbl.Types[a.Type])
	}
	i := byName["i"]
	if i.Where != WhereFrame {
		t.Fatalf("i: %+v", i)
	}
	// The uplink tree survives: i's uplink is a, a's is n.
	if tbl.Syms[i.Uplink].Name != "a" {
		t.Fatalf("i.Uplink → %s", tbl.Syms[i.Uplink].Name)
	}
	if tbl.Syms[tbl.Syms[i.Uplink].Uplink].Name != "n" {
		t.Fatal("a.Uplink is not n")
	}
	// Stops survive with visibility.
	nstops := 0
	for _, st := range tbl.Stops {
		if tbl.Syms[st.Func].Name == "fib" {
			nstops++
		}
	}
	if nstops != 14 {
		t.Fatalf("fib stops = %d", nstops)
	}
}

func TestTypeSharing(t *testing.T) {
	u := compile(t, `int a; int b; int c[4]; int d[4];`, "t.c")
	data := Emit([]*cc.Unit{u})
	tbl, err := Read(data)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Sym{}
	for _, s := range tbl.Syms {
		byName[s.Name] = s
	}
	if byName["a"].Type != byName["b"].Type {
		t.Error("int type not interned")
	}
	// c and d have structurally equal but distinct array types; the
	// descriptors must at least reference the same element type.
	tc, td := tbl.Types[byName["c"].Type], tbl.Types[byName["d"].Type]
	if tc != td {
		t.Errorf("array descriptors differ: %q vs %q", tc, td)
	}
}

func TestStructDescriptors(t *testing.T) {
	u := compile(t, `struct p { char tag; int x; struct p *next; }; struct p head;`, "t.c")
	tbl, err := Read(Emit([]*cc.Unit{u}))
	if err != nil {
		t.Fatal(err)
	}
	var head Sym
	for _, s := range tbl.Syms {
		if s.Name == "head" {
			head = s
		}
	}
	d := tbl.Types[head.Type]
	if d[0] != 'S' {
		t.Fatalf("struct descriptor: %q", d)
	}
	// Recursive struct: the pointer member refers back by index without
	// looping the encoder.
	if len(tbl.Types) < 3 {
		t.Fatalf("types: %v", tbl.Types)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Read([]byte{1, 2, 3}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := Read([]byte("XXXXGARBAGE")); err == nil {
		t.Error("bad magic accepted")
	}
	u := compile(t, `int x;`, "t.c")
	data := Emit([]*cc.Unit{u})
	if _, err := Read(data[:len(data)/2]); err == nil {
		t.Error("truncated input accepted")
	}
}

// TestSizeRatioVsPostScript reproduces the shape of §7's measurement:
// the PostScript symbol table is several times larger than stabs raw,
// and the gap narrows substantially after compression.
func TestSizeRatioVsPostScript(t *testing.T) {
	src := workload.Big(2000)
	u := compile(t, src, "big.c")
	stabs := Emit([]*cc.Unit{u})
	pts := symtab.EmitProgramPS([]*cc.Unit{u}, conf.Name)

	rawRatio := float64(len(pts)) / float64(len(stabs))
	compress := func(b []byte) int {
		var buf bytes.Buffer
		w := lzw.NewWriter(&buf, lzw.LSB, 8)
		w.Write(b)
		w.Close()
		return buf.Len()
	}
	compRatio := float64(compress([]byte(pts))) / float64(compress(stabs))
	t.Logf("PostScript %d bytes, stabs %d bytes: raw ratio %.1f, compressed ratio %.1f (paper: ~9 and ~2)",
		len(pts), len(stabs), rawRatio, compRatio)
	if rawRatio < 3 {
		t.Errorf("raw ratio %.1f: PostScript should be several times larger than stabs", rawRatio)
	}
	if compRatio >= rawRatio {
		t.Errorf("compression did not narrow the gap: %.1f vs %.1f", compRatio, rawRatio)
	}
}

func TestUnionDescriptors(t *testing.T) {
	u := compile(t, `union v { int i; double d; }; union v shared;`, "t.c")
	tbl, err := Read(Emit([]*cc.Unit{u}))
	if err != nil {
		t.Fatal(err)
	}
	var sym Sym
	for _, s := range tbl.Syms {
		if s.Name == "shared" {
			sym = s
		}
	}
	d := tbl.Types[sym.Type]
	if len(d) == 0 || d[0] != 'U' {
		t.Fatalf("union descriptor: %q", d)
	}
	// Members share offset 0 in the descriptor.
	if !strings.Contains(d, "i:0:") || !strings.Contains(d, "d:0:") {
		t.Fatalf("union member offsets: %q", d)
	}
}
