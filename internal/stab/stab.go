// Package stab is the baseline the paper compares PostScript symbol
// tables against: a compact, machine-oriented binary format in the
// spirit of the dbx "stabs" that production lcc emits (§2, §7). It
// encodes the same information a debugger minimally needs — names,
// interned type descriptors, source positions, and locations — with
// varint integers and an interned string table, standing in for the
// a.out stabs dbx and gdb read.
//
// The experiments use it two ways: symbol-table size (the paper
// measures PostScript at about 9× stabs raw and about 2× after
// compression) and read time (dbx/gdb start faster than ldb because
// binary tables parse faster than PostScript, §7's timing table).
package stab

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"

	"ldb/internal/cc"
)

// Where kinds.
const (
	WhereFrame  = byte('f') // frame offset
	WhereAnchor = byte('a') // anchor + index
	WhereGlobal = byte('g') // global label
	WhereCode   = byte('c') // procedure label
)

// Sym is one decoded stab.
type Sym struct {
	Name   string
	Kind   byte // 'v' variable, 'p' parameter, 'F' function
	Type   int  // index into the type table
	File   string
	Line   int
	Col    int
	Where  byte
	Label  string // anchor or global label
	Off    int32  // frame offset or anchor index
	Uplink int32  // index of the preceding visible symbol, -1 at roots
}

// Stop is one decoded stopping point.
type Stop struct {
	Func    int32 // symbol index of the function
	Index   int
	Line    int
	Col     int
	Anchor  string
	WordIdx int
	Visible int32 // symbol index, -1 if none
}

// Table is a decoded stab table.
type Table struct {
	Types []string
	Syms  []Sym
	Stops []Stop
}

// writer emits the binary form.
type writer struct {
	buf     bytes.Buffer
	strs    map[string]int
	strList []string
}

func (w *writer) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

func (w *writer) varint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

func (w *writer) str(s string) {
	if i, ok := w.strs[s]; ok {
		w.uvarint(uint64(i))
		return
	}
	i := len(w.strList)
	w.strs[s] = i
	w.strList = append(w.strList, s)
	w.uvarint(uint64(i))
}

// typeDesc renders a type as a compact stabs-style descriptor with
// references to already-interned types.
func typeDesc(t *cc.Type, tc *cc.TargetConf, ids map[*cc.Type]int, list *[]string) int {
	if id, ok := ids[t]; ok {
		return id
	}
	id := len(*list)
	ids[t] = id
	*list = append(*list, "") // reserve
	var d string
	switch t.Kind {
	case cc.TyVoid:
		d = "v"
	case cc.TyChar:
		d = "c"
	case cc.TyShort:
		d = "s"
	case cc.TyInt:
		d = "i"
	case cc.TyUInt:
		d = "u"
	case cc.TyFloat:
		d = "f"
	case cc.TyDouble:
		d = "d"
	case cc.TyLDouble:
		d = fmt.Sprintf("l%d", t.Size(tc))
	case cc.TyPtr:
		d = fmt.Sprintf("P%d", typeDesc(t.Base, tc, ids, list))
	case cc.TyArray:
		d = fmt.Sprintf("A%d,%d", t.Len, typeDesc(t.Base, tc, ids, list))
	case cc.TyStruct, cc.TyUnion:
		var b strings.Builder
		k := "S"
		if t.Kind == cc.TyUnion {
			k = "U"
		}
		fmt.Fprintf(&b, "%s%s{", k, t.Tag)
		for _, f := range t.Fields {
			fmt.Fprintf(&b, "%s:%d:%d;", f.Name, f.Off, typeDesc(f.Type, tc, ids, list))
		}
		b.WriteString("}")
		d = b.String()
	case cc.TyFunc:
		var b strings.Builder
		fmt.Fprintf(&b, "F%d(", typeDesc(t.Base, tc, ids, list))
		for i, p := range t.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", typeDesc(p, tc, ids, list))
		}
		b.WriteString(")")
		d = b.String()
	default:
		d = "i"
	}
	(*list)[id] = d
	return id
}

const magic = uint32(0x5374_6162) // "Stab"

// Emit encodes the units' symbol information in the binary format.
func Emit(units []*cc.Unit) []byte {
	w := &writer{strs: make(map[string]int)}
	ids := make(map[*cc.Type]int)
	var types []string

	// Assign global symbol indices across units in Seq order.
	index := make(map[*cc.Symbol]int32)
	var all []*cc.Symbol
	for _, u := range units {
		for _, s := range u.Syms {
			index[s] = int32(len(all))
			all = append(all, s)
		}
	}

	var syms []Sym
	for _, u := range units {
		tc := u.Target
		for _, s := range u.Syms {
			rec := Sym{Name: s.Name, File: s.Pos.File, Line: s.Pos.Line, Col: s.Pos.Col, Uplink: -1}
			rec.Type = typeDesc(s.Type, tc, ids, &types)
			if s.Uplink != nil {
				if i, ok := index[s.Uplink]; ok {
					rec.Uplink = i
				}
			}
			switch {
			case s.Kind == cc.SymFunc:
				rec.Kind = 'F'
				rec.Where, rec.Label = WhereCode, s.Label
			case s.Kind == cc.SymParam:
				rec.Kind = 'p'
				rec.Where, rec.Off = WhereFrame, s.FrameOff
			case s.Storage == cc.Auto:
				rec.Kind = 'v'
				rec.Where, rec.Off = WhereFrame, s.FrameOff
			case s.Storage == cc.Static:
				rec.Kind = 'v'
				rec.Where, rec.Label, rec.Off = WhereAnchor, u.AnchorSym, int32(s.AnchorIdx)
			default:
				rec.Kind = 'v'
				rec.Where, rec.Label = WhereGlobal, s.Label
			}
			syms = append(syms, rec)
		}
	}

	var stops []Stop
	for _, u := range units {
		for _, fn := range u.Funcs {
			fi := index[fn.Sym]
			for _, sp := range fn.Stops {
				st := Stop{Func: fi, Index: sp.Index, Line: sp.Pos.Line, Col: sp.Pos.Col,
					Anchor: u.AnchorSym, WordIdx: sp.AnchorIdx, Visible: -1}
				if sp.Visible != nil {
					if i, ok := index[sp.Visible]; ok {
						st.Visible = i
					}
				}
				stops = append(stops, st)
			}
		}
	}

	// Serialize: the string table is built as a side effect of the
	// entry encoding, so entries go to a scratch buffer first.
	entries := &writer{strs: w.strs, strList: w.strList}
	entries.uvarint(uint64(len(types)))
	for _, t := range types {
		entries.str(t)
	}
	entries.uvarint(uint64(len(syms)))
	for _, s := range syms {
		entries.str(s.Name)
		entries.buf.WriteByte(s.Kind)
		entries.uvarint(uint64(s.Type))
		entries.str(s.File)
		entries.uvarint(uint64(s.Line))
		entries.uvarint(uint64(s.Col))
		entries.buf.WriteByte(s.Where)
		entries.str(s.Label)
		entries.varint(int64(s.Off))
		entries.varint(int64(s.Uplink))
	}
	entries.uvarint(uint64(len(stops)))
	for _, st := range stops {
		entries.varint(int64(st.Func))
		entries.uvarint(uint64(st.Index))
		entries.uvarint(uint64(st.Line))
		entries.uvarint(uint64(st.Col))
		entries.str(st.Anchor)
		entries.uvarint(uint64(st.WordIdx))
		entries.varint(int64(st.Visible))
	}

	var out bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], magic) //ldb:allow endian the .ldb symbol-table format is defined little-endian on every host
	out.Write(hdr[:])
	// String table.
	wstr := &writer{}
	wstr.uvarint(uint64(len(entries.strList)))
	for _, s := range entries.strList {
		wstr.uvarint(uint64(len(s)))
		wstr.buf.WriteString(s)
	}
	out.Write(wstr.buf.Bytes())
	out.Write(entries.buf.Bytes())
	return out.Bytes()
}

// reader decodes.
type reader struct {
	b    []byte
	strs []string
	err  error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("stab: truncated")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("stab: truncated")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string {
	i := r.uvarint()
	if r.err != nil || i >= uint64(len(r.strs)) {
		if r.err == nil {
			r.err = fmt.Errorf("stab: bad string index")
		}
		return ""
	}
	return r.strs[i]
}

// Read decodes a stab table.
func Read(data []byte) (*Table, error) {
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != magic { //ldb:allow endian the .ldb symbol-table format is defined little-endian on every host
		return nil, fmt.Errorf("stab: bad magic")
	}
	r := &reader{b: data[4:]}
	nstr := r.uvarint()
	if nstr > uint64(len(data)) {
		return nil, fmt.Errorf("stab: implausible string count")
	}
	for i := uint64(0); i < nstr && r.err == nil; i++ {
		n := r.uvarint()
		if r.err != nil || n > uint64(len(r.b)) {
			return nil, fmt.Errorf("stab: truncated string")
		}
		r.strs = append(r.strs, string(r.b[:n]))
		r.b = r.b[n:]
	}
	t := &Table{}
	ntypes := r.uvarint()
	for i := uint64(0); i < ntypes && r.err == nil; i++ {
		t.Types = append(t.Types, r.str())
	}
	nsyms := r.uvarint()
	for i := uint64(0); i < nsyms && r.err == nil; i++ {
		var s Sym
		s.Name = r.str()
		if len(r.b) == 0 {
			return nil, fmt.Errorf("stab: truncated")
		}
		s.Kind = r.b[0]
		r.b = r.b[1:]
		s.Type = int(r.uvarint())
		s.File = r.str()
		s.Line = int(r.uvarint())
		s.Col = int(r.uvarint())
		if len(r.b) == 0 {
			return nil, fmt.Errorf("stab: truncated")
		}
		s.Where = r.b[0]
		r.b = r.b[1:]
		s.Label = r.str()
		s.Off = int32(r.varint())
		s.Uplink = int32(r.varint())
		t.Syms = append(t.Syms, s)
	}
	nstops := r.uvarint()
	for i := uint64(0); i < nstops && r.err == nil; i++ {
		var st Stop
		st.Func = int32(r.varint())
		st.Index = int(r.uvarint())
		st.Line = int(r.uvarint())
		st.Col = int(r.uvarint())
		st.Anchor = r.str()
		st.WordIdx = int(r.uvarint())
		st.Visible = int32(r.varint())
		t.Stops = append(t.Stops, st)
	}
	if r.err != nil {
		return nil, r.err
	}
	return t, nil
}
