// Package symtab implements ldb's machine-independent PostScript symbol
// tables (§2 of the paper): emission on the compiler side, reading and
// name resolution on the debugger side.
//
// A symbol-table entry is a PostScript dictionary describing a source
// identifier; uplink entries link the dictionaries into the tree of
// Fig. 2; a procedure's entry carries its formals, its array of
// stopping points (loci), and the statics dictionary of its compilation
// unit. Symbol tables contain code as well as data — printer procedures
// and where procedures that ldb interprets — so ldb need not know the
// layout of runtime data structures.
//
// Following §5, the bulky parts (symbol entry bodies, loci arrays,
// struct field tables) are emitted as quoted strings by default: their
// lexical analysis is deferred until first use, and because procedures
// interpreted at most once can be replaced with their results, the
// reader swaps each string for its value on first access.
package symtab

import (
	"fmt"
	"strings"

	"ldb/internal/cc"
)

// EmitOptions controls symbol-table emission.
type EmitOptions struct {
	// Prefix distinguishes units combined into one program ("U0", ...).
	Prefix string
	// Deferred quotes entry bodies as strings (§5's deferral).
	Deferred bool
}

// psStr renders s as a PostScript string literal.
func psStr(s string) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '(', ')', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// emitter builds one unit's PostScript.
type emitter struct {
	u    *cc.Unit
	opts EmitOptions
	b    strings.Builder
	tids map[*cc.Type]int
	tord []*cc.Type
}

func (e *emitter) sname(s *cc.Symbol) string {
	return fmt.Sprintf("%sS%d", e.opts.Prefix, s.Seq)
}

func (e *emitter) tname(t *cc.Type) string {
	return fmt.Sprintf("%sT%d", e.opts.Prefix, e.tids[t])
}

func (e *emitter) staticsName() string { return e.opts.Prefix + "STATICS" }

func (e *emitter) collectType(t *cc.Type) {
	if t == nil {
		return
	}
	if _, ok := e.tids[t]; ok {
		return
	}
	e.tids[t] = len(e.tord) + 1
	e.tord = append(e.tord, t)
	e.collectType(t.Base)
	for _, f := range t.Fields {
		e.collectType(f.Type)
	}
	for _, p := range t.Params {
		e.collectType(p)
	}
}

var printerNames = map[cc.TypeKind]string{
	cc.TyVoid: "VOIDP", cc.TyChar: "CHAR", cc.TyShort: "SHORT",
	cc.TyInt: "INT", cc.TyUInt: "UINT", cc.TyFloat: "FLOAT",
	cc.TyDouble: "DOUBLE", cc.TyLDouble: "LDOUBLE", cc.TyPtr: "PTR",
	cc.TyArray: "ARRAY", cc.TyStruct: "STRUCT", cc.TyUnion: "UNION", cc.TyFunc: "PROC",
}

// kindName returns the /kind string of a type dictionary.
func kindName(k cc.TypeKind) string {
	switch k {
	case cc.TyPtr:
		return "pointer"
	case cc.TyArray:
		return "array"
	case cc.TyStruct:
		return "struct"
	case cc.TyUnion:
		return "union"
	case cc.TyFunc:
		return "function"
	default:
		return "scalar"
	}
}

// emitTypes declares all type dictionaries first (so recursive types
// resolve), then fills them in.
func (e *emitter) emitTypes() {
	for _, t := range e.tord {
		fmt.Fprintf(&e.b, "/%s 10 dict def\n", e.tname(t))
	}
	tc := e.u.Target
	for _, t := range e.tord {
		n := e.tname(t)
		fmt.Fprintf(&e.b, "%s /decl %s put\n", n, psStr(t.Decl("%s")))
		fmt.Fprintf(&e.b, "%s /printer {%s} put\n", n, printerNames[t.Kind])
		fmt.Fprintf(&e.b, "%s /size %d put\n", n, t.Size(tc))
		fmt.Fprintf(&e.b, "%s /kind %s put\n", n, psStr(kindName(t.Kind)))
		switch t.Kind {
		case cc.TyFloat:
			fmt.Fprintf(&e.b, "%s /fsize 4 put\n", n)
		case cc.TyDouble:
			fmt.Fprintf(&e.b, "%s /fsize 8 put\n", n)
		case cc.TyLDouble:
			fsize := 8
			if tc != nil && tc.LDoubleSize == 12 {
				fsize = 10
			}
			fmt.Fprintf(&e.b, "%s /fsize %d put\n", n, fsize)
		case cc.TyPtr, cc.TyFunc:
			// A pointer's referent, or a function's return type.
			fmt.Fprintf(&e.b, "%s /&basetype %s put\n", n, e.tname(t.Base))
		case cc.TyArray:
			fmt.Fprintf(&e.b, "%s /&elemtype %s put\n", n, e.tname(t.Base))
			fmt.Fprintf(&e.b, "%s /&elemsize %d put\n", n, t.Base.Size(tc))
			fmt.Fprintf(&e.b, "%s /&arraysize %d put\n", n, t.Len)
		case cc.TyStruct, cc.TyUnion:
			var fields strings.Builder
			fields.WriteString("[ ")
			for _, f := range t.Fields {
				fmt.Fprintf(&fields, "[ %s %d %s ] ", psStr(f.Name), f.Off, e.tname(f.Type))
			}
			fields.WriteString("]")
			if e.opts.Deferred {
				fmt.Fprintf(&e.b, "%s /&fields %s put\n", n, psStr(fields.String()))
			} else {
				fmt.Fprintf(&e.b, "%s /&fields %s put\n", n, fields.String())
			}
			if t.Tag != "" {
				fmt.Fprintf(&e.b, "%s /tag %s put\n", n, psStr(t.Tag))
			}
		}
	}
}

// whereOf renders a symbol's location procedure. The forms are the
// paper's: frame-resident symbols compute from the frame, statics go
// through the anchor table (LazyData), and externals resolve through
// the loader table.
func (e *emitter) whereOf(s *cc.Symbol) string {
	switch {
	case s.Kind == cc.SymFunc:
		return fmt.Sprintf("{ %s GlobalCode }", psStr(s.Label))
	case s.Storage == cc.Auto:
		return fmt.Sprintf("{ %d FrameOffset }", s.FrameOff)
	case s.Storage == cc.Static:
		return fmt.Sprintf("{ %s %d LazyData }", psStr(e.u.AnchorSym), s.AnchorIdx)
	default:
		return fmt.Sprintf("{ %s GlobalData }", psStr(s.Label))
	}
}

// entryBody renders the dictionary body of one symbol-table entry.
func (e *emitter) entryBody(s *cc.Symbol) string {
	var b strings.Builder
	b.WriteString("<<\n")
	fmt.Fprintf(&b, "  /name %s\n", psStr(s.Name))
	fmt.Fprintf(&b, "  /type %s\n", e.tname(s.Type))
	fmt.Fprintf(&b, "  /sourcefile %s\n", psStr(s.Pos.File))
	fmt.Fprintf(&b, "  /sourcey %d\n", s.Pos.Line)
	fmt.Fprintf(&b, "  /sourcex %d\n", s.Pos.Col)
	fmt.Fprintf(&b, "  /kind %s\n", psStr(s.Kind.String()))
	if s.Kind != cc.SymFunc || s.Def != nil {
		fmt.Fprintf(&b, "  /where %s\n", e.whereOf(s))
	}
	if s.Uplink != nil {
		fmt.Fprintf(&b, "  /uplink /%s\n", e.sname(s.Uplink))
	} else {
		b.WriteString("  /uplink null\n")
	}
	b.WriteString(">>")
	return b.String()
}

// lociBody renders a function's stopping-point array (each element has
// a source location, an object location bound through the anchor
// table, and the symbol visible there).
func (e *emitter) lociBody(fn *cc.Func) string {
	var b strings.Builder
	b.WriteString("[\n")
	for _, sp := range fn.Stops {
		vis := "null"
		if sp.Visible != nil {
			vis = "/" + e.sname(sp.Visible)
		}
		fmt.Fprintf(&b, "  << /index %d /sourcey %d /sourcex %d /where { %s %d LazyCode } /visible %s >>\n",
			sp.Index, sp.Pos.Line, sp.Pos.Col, psStr(e.u.AnchorSym), sp.AnchorIdx, vis)
	}
	b.WriteString("]")
	return b.String()
}

// EmitUnitPS renders one unit's definitions. The caller composes units
// into a program's top-level dictionary.
func EmitUnitPS(u *cc.Unit, opts EmitOptions) string {
	e := &emitter{u: u, opts: opts, tids: make(map[*cc.Type]int)}
	for _, s := range u.Syms {
		e.collectType(s.Type)
	}
	fmt.Fprintf(&e.b, "%% symbol table for %s\n", u.File)
	e.emitTypes()
	for _, s := range u.Syms {
		body := e.entryBody(s)
		if opts.Deferred {
			fmt.Fprintf(&e.b, "/%s %s def\n", e.sname(s), psStr(body))
		} else {
			fmt.Fprintf(&e.b, "/%s %s def\n", e.sname(s), body)
		}
	}
	// The unit's statics dictionary (file-scope statics).
	fmt.Fprintf(&e.b, "/%s <<\n", e.staticsName())
	for _, s := range u.Globals {
		if s.Storage == cc.Static {
			fmt.Fprintf(&e.b, "  /%s /%s\n", s.Name, e.sname(s))
		}
	}
	e.b.WriteString(">> def\n")
	// Attach formals, loci, and statics to procedure entries. When
	// entries are deferred these land in side dictionaries keyed by
	// entry name, applied by the reader when the entry is realized.
	for _, fn := range u.Funcs {
		pn := e.sname(fn.Sym)
		loci := e.lociBody(fn)
		if opts.Deferred {
			loci = psStr(loci)
		}
		formals := "null"
		if len(fn.Params) > 0 {
			formals = "/" + e.sname(fn.Params[len(fn.Params)-1])
		}
		fmt.Fprintf(&e.b, "/%s.proc <<\n  /formals %s\n  /loci %s\n  /statics /%s\n>> def\n",
			pn, formals, loci, e.staticsName())
	}
	return e.b.String()
}

// EmitProgramPS renders the definitions for all units plus the
// program's top-level dictionary expression (§2), using deferral.
func EmitProgramPS(units []*cc.Unit, archName string) string {
	return EmitProgramPSOpts(units, archName, true)
}

// EmitProgramPSOpts is EmitProgramPS with explicit deferral control
// (the deferral experiment compares both).
func EmitProgramPSOpts(units []*cc.Unit, archName string, deferred bool) string {
	var b strings.Builder
	prefixes := make([]string, len(units))
	for i, u := range units {
		prefixes[i] = fmt.Sprintf("U%d", i)
		b.WriteString(EmitUnitPS(u, EmitOptions{Prefix: prefixes[i], Deferred: deferred}))
	}
	b.WriteString("<<\n/procs [")
	for i, u := range units {
		for _, fn := range u.Funcs {
			fmt.Fprintf(&b, " /%sS%d", prefixes[i], fn.Sym.Seq)
		}
	}
	b.WriteString(" ]\n/externs <<\n")
	for i, u := range units {
		for _, s := range u.Syms {
			if s.Storage == cc.Extern && (s.Kind == cc.SymFunc && s.Def != nil || s.Kind == cc.SymVar) {
				fmt.Fprintf(&b, "  /%s /%sS%d\n", s.Name, prefixes[i], s.Seq)
			}
		}
	}
	b.WriteString(">>\n/sourcemap <<\n")
	for i, u := range units {
		fmt.Fprintf(&b, "  %s [", psStr(u.File))
		for _, fn := range u.Funcs {
			fmt.Fprintf(&b, " /%sS%d", prefixes[i], fn.Sym.Seq)
		}
		b.WriteString(" ]\n")
	}
	b.WriteString(">>\n/anchors [")
	for _, u := range units {
		if u.AnchorWords > 0 {
			fmt.Fprintf(&b, " /%s", u.AnchorSym)
		}
	}
	b.WriteString(" ]\n")
	fmt.Fprintf(&b, "/architecture %s\n>>\n", psStr(archName))
	return b.String()
}
