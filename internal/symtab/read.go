package symtab

import (
	"fmt"

	"ldb/internal/ps"
)

// Table is the debugger's view of a program's symbol tables: the
// loader table (§3) wrapping the top-level dictionary (§2).
type Table struct {
	In     *ps.Interp
	Loader *ps.Dict
	Top    *ps.Dict
	// Env holds this program's definitions. Each target gets its own
	// environment so several targets can share one interpreter without
	// their symbol names colliding (§7: no target state in globals).
	Env *ps.Dict
}

// Execution budgets for untrusted symbol-table code. A loader table
// comes from the file system, not from the program being debugged, but
// §2's validation story assumes it can be stale, truncated, or wrong —
// so it gets a step-and-depth allowance far below the interpreter's
// default rather than the run of the machine. Deferred entry bodies
// (realized lazily during accessors) are smaller still.
const (
	loadBudgetSteps    = 2_000_000
	loadBudgetDepth    = 100
	realizeBudgetSteps = 1_000_000
	realizeBudgetDepth = 100
)

// Load interprets loader-table PostScript (the output of link.LoaderPS)
// and wraps the resulting dictionary. The untrusted code runs under an
// explicit step-and-depth budget: a hostile or corrupt table errors out
// instead of spinning or recursing the interpreter into the ground.
func Load(in *ps.Interp, loaderPS string) (*Table, error) {
	env := ps.NewDict(256)
	in.DStack = append(in.DStack, env)
	err := in.WithBudget(loadBudgetSteps, loadBudgetDepth, func() error {
		return in.RunStringNamed(loaderPS, "<loader>")
	})
	in.DStack = in.DStack[:len(in.DStack)-1]
	if err != nil {
		return nil, fmt.Errorf("symtab: reading loader table: %w", err)
	}
	o, err := in.Pop()
	if err != nil || o.Kind != ps.KDict {
		return nil, fmt.Errorf("symtab: loader table did not yield a dictionary")
	}
	t := &Table{In: in, Loader: o.D, Env: env}
	if top, ok := o.D.GetName("symtab"); ok && top.Kind == ps.KDict {
		t.Top = top.D
	}
	if t.Top == nil {
		return nil, fmt.Errorf("symtab: loader table has no /symtab")
	}
	return t, nil
}

// Architecture returns the name recorded in the top-level dictionary,
// which ldb uses at debug time to find its machine-dependent code and
// data (§2). A missing or non-string entry is an error, not an empty
// name: an empty name would silently fail the arch match downstream.
func (t *Table) Architecture() (string, error) {
	v, ok := t.Top.GetName("architecture")
	if !ok {
		return "", fmt.Errorf("symtab: top-level dictionary has no /architecture")
	}
	if v.Kind != ps.KString && v.Kind != ps.KName {
		return "", fmt.Errorf("symtab: /architecture is %s, not a name", v.TypeName())
	}
	return v.S, nil
}

// Validate compares the anchor-symbol names in the top-level dictionary
// with those in the loader table, ensuring the symbol table matches the
// object code (§2).
func (t *Table) Validate() error {
	anchors, ok := t.Top.GetName("anchors")
	if !ok || anchors.Kind != ps.KArray {
		return fmt.Errorf("symtab: top-level dictionary has no /anchors")
	}
	am, ok := t.Loader.GetName("anchormap")
	if !ok || am.Kind != ps.KDict {
		return fmt.Errorf("symtab: loader table has no /anchormap")
	}
	for _, a := range anchors.A.E {
		if _, ok := am.D.Get(a); !ok {
			return fmt.Errorf("symtab: anchor %s missing from the loader table: symbol table does not match object code", ps.Cvs(a))
		}
	}
	return nil
}

// AnchorAddr returns the link-time address of an anchor symbol. The
// error distinguishes a malformed table (no usable /anchormap) from a
// merely absent name.
func (t *Table) AnchorAddr(name string) (uint32, error) {
	am, ok := t.Loader.GetName("anchormap")
	if !ok || am.Kind != ps.KDict {
		return 0, fmt.Errorf("symtab: loader table has no /anchormap")
	}
	v, ok := am.D.GetName(name)
	if !ok {
		return 0, fmt.Errorf("symtab: no anchor %q", name)
	}
	if v.Kind != ps.KInt {
		return 0, fmt.Errorf("symtab: anchor %q is %s, not an address", name, v.TypeName())
	}
	return uint32(v.I), nil
}

// GlobalAddr resolves an external symbol through the nm-derived table
// in the loader table (§3: nm output is mostly machine-independent and
// easily transformed into PostScript).
func (t *Table) GlobalAddr(label string) (uint32, error) {
	nm, ok := t.Loader.GetName("nm")
	if !ok || nm.Kind != ps.KDict {
		return 0, fmt.Errorf("symtab: loader table has no /nm")
	}
	v, ok := nm.D.GetName(label)
	if !ok {
		return 0, fmt.Errorf("symtab: no global %q", label)
	}
	if v.Kind != ps.KInt {
		return 0, fmt.Errorf("symtab: global %q is %s, not an address", label, v.TypeName())
	}
	return uint32(v.I), nil
}

// ProcAddr is a (address, name) pair from the loader table's proctable.
type ProcAddr struct {
	Addr uint32
	Name string
}

// ProcTable returns the proctable, sorted by address as emitted. A
// malformed table — missing, the wrong kind, an odd element count, or
// pairs that are not (int, string) — is an error: silently skipping bad
// pairs would misattribute pcs to the procedures around them.
func (t *Table) ProcTable() ([]ProcAddr, error) {
	v, ok := t.Loader.GetName("proctable")
	if !ok {
		return nil, fmt.Errorf("symtab: loader table has no /proctable")
	}
	if v.Kind != ps.KArray {
		return nil, fmt.Errorf("symtab: /proctable is %s, not an array", v.TypeName())
	}
	e := v.A.E
	if len(e)%2 != 0 {
		return nil, fmt.Errorf("symtab: /proctable has %d elements, not (addr, name) pairs", len(e))
	}
	out := make([]ProcAddr, 0, len(e)/2)
	for i := 0; i+1 < len(e); i += 2 {
		if e[i].Kind != ps.KInt || (e[i+1].Kind != ps.KString && e[i+1].Kind != ps.KName) {
			return nil, fmt.Errorf("symtab: /proctable pair %d is (%s, %s), not (addr, name)", i/2, e[i].TypeName(), e[i+1].TypeName())
		}
		out = append(out, ProcAddr{Addr: uint32(e[i].I), Name: e[i+1].S})
	}
	return out, nil
}

// ProcContaining maps a program counter to the procedure whose code
// contains it (the first step in mapping a pc to a symbol-table entry,
// §3). A malformed proctable contains no pc.
func (t *Table) ProcContaining(pc uint32) (ProcAddr, bool) {
	procs, err := t.ProcTable()
	if err != nil {
		return ProcAddr{}, false
	}
	best := -1
	for i, p := range procs {
		if p.Addr <= pc && (best < 0 || p.Addr >= procs[best].Addr) {
			best = i
		}
	}
	if best < 0 {
		return ProcAddr{}, false
	}
	return procs[best], true
}

// RPTAddr returns the address of the MIPS runtime procedure table.
func (t *Table) RPTAddr() (uint32, bool) {
	v, ok := t.Loader.GetName("rpt")
	if !ok || v.Kind != ps.KInt {
		return 0, false
	}
	return uint32(v.I), true
}

// lookup finds a definition in the table's environment (falling back
// to the interpreter's dictionary stack).
func (t *Table) lookup(name string) (ps.Object, bool) {
	if t.Env != nil {
		if v, ok := t.Env.GetName(name); ok {
			return v, true
		}
	}
	return t.In.Lookup(name)
}

func (t *Table) define(name string, v ps.Object) {
	if t.Env != nil {
		t.Env.PutName(name, v)
		return
	}
	t.In.UserDict().PutName(name, v)
}

// realize turns a deferred value (an entry body quoted as a string,
// §5's deferral) into its real value by scanning and executing it.
// Procedures interpreted at most once are replaced with their results:
// callers re-store the realized value.
func (t *Table) realize(v ps.Object) (ps.Object, error) {
	if v.Kind != ps.KString {
		return v, nil
	}
	// Execute the string's tokens and take the resulting object. The
	// body references type dictionaries by name, so the table's
	// environment must be searchable while it runs.
	pushed := false
	if t.Env != nil {
		found := false
		for _, d := range t.In.DStack {
			if d == t.Env {
				found = true
			}
		}
		if !found {
			t.In.DStack = append(t.In.DStack, t.Env)
			pushed = true
		}
	}
	before := len(t.In.Stack)
	// Deferred bodies are as untrusted as the loader table they came
	// from, and they run lazily inside accessors — budget them too.
	err := t.In.WithBudget(realizeBudgetSteps, realizeBudgetDepth, func() error {
		return t.In.RunStringNamed(v.S, "<deferred>")
	})
	if pushed {
		for i := len(t.In.DStack) - 1; i >= 0; i-- {
			if t.In.DStack[i] == t.Env {
				t.In.DStack = append(t.In.DStack[:i], t.In.DStack[i+1:]...)
				break
			}
		}
	}
	if err != nil {
		return v, err
	}
	if len(t.In.Stack) != before+1 {
		return v, fmt.Errorf("symtab: deferred body left %d values", len(t.In.Stack)-before)
	}
	return t.In.Pop()
}

// EntryOf resolves a symbol-table entry by its PostScript name,
// realizing and replacing a deferred body on first access.
func (t *Table) EntryOf(name string) (*ps.Dict, error) {
	v, ok := t.lookup(name)
	if !ok {
		return nil, fmt.Errorf("symtab: no entry %s", name)
	}
	if v.Kind == ps.KString {
		realized, err := t.realize(v)
		if err != nil {
			return nil, err
		}
		t.define(name, realized)
		v = realized
	}
	if v.Kind != ps.KDict {
		return nil, fmt.Errorf("symtab: entry %s is a %s, not a dictionary", name, v.TypeName())
	}
	return v.D, nil
}

// EntryRef resolves an entry reference — a literal name (the deferred
// form) or a dictionary — to the entry dictionary.
func (t *Table) EntryRef(o ps.Object) (*ps.Dict, error) {
	switch o.Kind {
	case ps.KDict:
		return o.D, nil
	case ps.KName, ps.KString:
		return t.EntryOf(o.S)
	case ps.KNull:
		return nil, nil
	}
	return nil, fmt.Errorf("symtab: bad entry reference %s", ps.Format(o))
}

// GetMemo fetches key from d, realizing and replacing a deferred value
// (used for /loci arrays and /&fields tables).
func (t *Table) GetMemo(d *ps.Dict, key string) (ps.Object, error) {
	v, ok := d.GetName(key)
	if !ok {
		return ps.Object{}, fmt.Errorf("symtab: no /%s", key)
	}
	if v.Kind == ps.KString && (key == "loci" || key == "&fields") {
		realized, err := t.realize(v)
		if err != nil {
			return ps.Object{}, err
		}
		d.PutName(key, realized)
		return realized, nil
	}
	return v, nil
}

// Entry is a convenience wrapper over a symbol-table entry dictionary.
type Entry struct {
	D *ps.Dict
	T *Table
}

// Name returns the entry's source-language name. A /name that is not a
// string (a corrupt entry) reads as absent rather than as whatever
// bytes happen to sit in the object's string slot.
func (e Entry) Name() string {
	if v, ok := e.D.GetName("name"); ok && (v.Kind == ps.KString || v.Kind == ps.KName) {
		return v.S
	}
	return ""
}

// Kind returns "variable", "parameter", or "procedure".
func (e Entry) Kind() string {
	if v, ok := e.D.GetName("kind"); ok && (v.Kind == ps.KString || v.Kind == ps.KName) {
		return v.S
	}
	return ""
}

// TypeDict returns the entry's type dictionary.
func (e Entry) TypeDict() *ps.Dict {
	if v, ok := e.D.GetName("type"); ok && v.Kind == ps.KDict {
		return v.D
	}
	return nil
}

// Decl renders the declaration of the entry, as the type's /decl
// template applied to the name.
func (e Entry) Decl() string {
	td := e.TypeDict()
	if td == nil {
		return e.Name()
	}
	decl, _ := td.GetName("decl")
	out := ""
	for i := 0; i < len(decl.S); i++ {
		if decl.S[i] == '%' && i+1 < len(decl.S) && decl.S[i+1] == 's' {
			out += e.Name()
			i++
			continue
		}
		out += string(decl.S[i])
	}
	return out
}

// Uplink returns the preceding entry in the current or enclosing scope.
func (e Entry) Uplink() (Entry, bool) {
	v, ok := e.D.GetName("uplink")
	if !ok || v.Kind == ps.KNull {
		return Entry{}, false
	}
	d, err := e.T.EntryRef(v)
	if err != nil || d == nil {
		return Entry{}, false
	}
	return Entry{D: d, T: e.T}, true
}

// ProcInfo returns the side dictionary holding a procedure's formals,
// loci, and statics.
func (t *Table) ProcInfo(entryName string) (*ps.Dict, error) {
	return t.EntryOf(entryName + ".proc")
}

// Stop describes one stopping point read from a loci array.
type Stop struct {
	Index   int
	Line    int
	Col     int
	Where   ps.Object // the location procedure (or realized location)
	Visible ps.Object // entry reference
	Elem    *ps.Dict
}

// Loci returns a procedure's stopping points.
func (t *Table) Loci(procInfo *ps.Dict) ([]Stop, error) {
	v, err := t.GetMemo(procInfo, "loci")
	if err != nil {
		return nil, err
	}
	if v.Kind != ps.KArray {
		return nil, fmt.Errorf("symtab: /loci is %s", v.TypeName())
	}
	var out []Stop
	for _, el := range v.A.E {
		if el.Kind != ps.KDict {
			continue
		}
		s := Stop{Elem: el.D}
		if x, ok := el.D.GetName("index"); ok {
			s.Index = int(x.I)
		}
		if x, ok := el.D.GetName("sourcey"); ok {
			s.Line = int(x.I)
		}
		if x, ok := el.D.GetName("sourcex"); ok {
			s.Col = int(x.I)
		}
		s.Where, _ = el.D.GetName("where")
		s.Visible, _ = el.D.GetName("visible")
		out = append(out, s)
	}
	return out, nil
}

// Externs returns the program's externs dictionary.
func (t *Table) Externs() *ps.Dict {
	if v, ok := t.Top.GetName("externs"); ok && v.Kind == ps.KDict {
		return v.D
	}
	return nil
}

// ExternEntry resolves a global symbol by source name.
func (t *Table) ExternEntry(name string) (Entry, bool) {
	ex := t.Externs()
	if ex == nil {
		return Entry{}, false
	}
	v, ok := ex.GetName(name)
	if !ok {
		return Entry{}, false
	}
	d, err := t.EntryRef(v)
	if err != nil || d == nil {
		return Entry{}, false
	}
	return Entry{D: d, T: t}, true
}

// ProcEntryByName finds a procedure entry via externs, also returning
// the PostScript entry name (needed for ProcInfo).
func (t *Table) ProcEntryByName(name string) (Entry, string, bool) {
	ex := t.Externs()
	if ex == nil {
		return Entry{}, "", false
	}
	v, ok := ex.GetName(name)
	if !ok || (v.Kind != ps.KName && v.Kind != ps.KString) {
		return Entry{}, "", false
	}
	d, err := t.EntryOf(v.S)
	if err != nil {
		return Entry{}, "", false
	}
	return Entry{D: d, T: t}, v.S, true
}

// ResolveAt implements ldb's name resolution (§2): walk up the tree of
// entries for local symbols beginning with the stopping point's visible
// entry; at the root search the statics dictionary of the procedure's
// compilation unit, then the program's externs.
func (t *Table) ResolveAt(procEntryName string, stop *Stop, id string) (Entry, error) {
	if stop != nil && stop.Visible.Kind != ps.KNull {
		d, err := t.EntryRef(stop.Visible)
		if err != nil {
			return Entry{}, err
		}
		for e := (Entry{D: d, T: t}); e.D != nil; {
			if e.Name() == id {
				return e, nil
			}
			up, ok := e.Uplink()
			if !ok {
				break
			}
			e = up
		}
	}
	if procEntryName != "" {
		if info, err := t.ProcInfo(procEntryName); err == nil {
			if sv, ok := info.GetName("statics"); ok && sv.Kind != ps.KNull {
				var sd *ps.Dict
				if sv.Kind == ps.KDict {
					sd = sv.D
				} else if v2, ok := t.lookup(sv.S); ok && v2.Kind == ps.KDict {
					sd = v2.D
				}
				if sd != nil {
					if ref, ok := sd.GetName(id); ok {
						d, err := t.EntryRef(ref)
						if err == nil && d != nil {
							return Entry{D: d, T: t}, nil
						}
					}
				}
			}
		}
	}
	if e, ok := t.ExternEntry(id); ok {
		return e, nil
	}
	return Entry{}, fmt.Errorf("symtab: %q is not visible here", id)
}
