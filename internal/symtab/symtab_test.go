package symtab

import (
	"strings"
	"testing"
	"testing/quick"

	"ldb/internal/cc"
	"ldb/internal/ps"
)

func quickCheck(f any) error { return quick.Check(f, nil) }

var conf = &cc.TargetConf{Name: "sparc", LDoubleSize: 8}

const fibSrc = `void fib(int n)
{
	static int a[20];
	if (n > 20) n = 20;
	a[0] = a[1] = 1;
	{	int i;
		for (i=2; i<n; i++)
			a[i] = a[i-1] + a[i-2];
	}
	{	int j;
		for (j=0; j<n; j++)
			printf("%d ", a[j]);
	}
	printf("\n");
}
int main() { fib(10); return 0; }
`

func compileFib(t *testing.T) *cc.Unit {
	t.Helper()
	u, err := cc.Compile(fibSrc, "fib.c", conf)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// loadTable emits the program PS (without a linker) and reads it back
// by wrapping it in a minimal loader table.
func loadTable(t *testing.T, u *cc.Unit, deferred bool) *Table {
	t.Helper()
	symPS := EmitProgramPSOpts([]*cc.Unit{u}, conf.Name, deferred)
	loader := "<<\n/symtab " + symPS + "\n/anchormap << /" + u.AnchorSym + " 16#1000 >>\n/proctable [ 16#100 (_fib) 16#200 (_main) ]\n/nm << /_fib 16#100 /_main 16#200 >>\n>>"
	in := ps.New()
	tbl, err := Load(in, loader)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestEmitAndLoadBothModes(t *testing.T) {
	u := compileFib(t)
	for _, deferred := range []bool{false, true} {
		tbl := loadTable(t, u, deferred)
		if got, err := tbl.Architecture(); err != nil || got != "sparc" {
			t.Fatalf("architecture = %q (%v)", got, err)
		}
		if err := tbl.Validate(); err != nil {
			t.Fatalf("validate (deferred=%v): %v", deferred, err)
		}
		// Resolve fib via externs.
		e, name, ok := tbl.ProcEntryByName("fib")
		if !ok {
			t.Fatalf("no fib entry (deferred=%v)", deferred)
		}
		if e.Name() != "fib" || e.Kind() != "procedure" {
			t.Fatalf("entry: %s %s", e.Name(), e.Kind())
		}
		info, err := tbl.ProcInfo(name)
		if err != nil {
			t.Fatal(err)
		}
		stops, err := tbl.Loci(info)
		if err != nil {
			t.Fatal(err)
		}
		if len(stops) != 14 {
			t.Fatalf("loci = %d, want 14 (Fig. 1)", len(stops))
		}
		// §2: the 9th element of fib's stopping-point array contains
		// the entry for the symbol j.
		vis, err := tbl.EntryRef(stops[9].Visible)
		if err != nil || vis == nil {
			t.Fatalf("stop 9 visible: %v", err)
		}
		je := Entry{D: vis, T: tbl}
		if je.Name() != "j" {
			t.Fatalf("stop 9 sees %q, want j", je.Name())
		}
		// Walking up from stop 9: j, a, n, fib visible.
		var chain []string
		for e := je; ; {
			chain = append(chain, e.Name())
			up, ok := e.Uplink()
			if !ok {
				break
			}
			e = up
		}
		if strings.Join(chain, " ") != "j a n fib" {
			t.Fatalf("uplink chain = %v", chain)
		}
	}
}

func TestResolveAt(t *testing.T) {
	u := compileFib(t)
	tbl := loadTable(t, u, true)
	_, name, _ := tbl.ProcEntryByName("fib")
	info, _ := tbl.ProcInfo(name)
	stops, _ := tbl.Loci(info)
	// At stop 7 (the i-loop body) i, a, n, fib, main are visible; j is
	// not.
	for _, id := range []string{"i", "a", "n", "fib", "main"} {
		if _, err := tbl.ResolveAt(name, &stops[7], id); err != nil {
			t.Errorf("resolve %s at stop 7: %v", id, err)
		}
	}
	if _, err := tbl.ResolveAt(name, &stops[7], "j"); err == nil {
		t.Error("j resolved at stop 7")
	}
	// At stop 9, j is visible but i is not.
	if _, err := tbl.ResolveAt(name, &stops[9], "j"); err != nil {
		t.Errorf("resolve j at stop 9: %v", err)
	}
	if _, err := tbl.ResolveAt(name, &stops[9], "i"); err == nil {
		t.Error("i resolved at stop 9")
	}
}

func TestFileScopeStaticsResolve(t *testing.T) {
	u, err := cc.Compile(`
static int counter;
int bump() { counter = counter + 1; return counter; }
`, "s.c", conf)
	if err != nil {
		t.Fatal(err)
	}
	tbl := loadTable(t, u, true)
	_, name, ok := tbl.ProcEntryByName("bump")
	if !ok {
		t.Fatal("no bump")
	}
	info, _ := tbl.ProcInfo(name)
	stops, _ := tbl.Loci(info)
	e, err := tbl.ResolveAt(name, &stops[0], "counter")
	if err != nil {
		t.Fatalf("counter via statics dict: %v", err)
	}
	if e.Decl() != "int counter" {
		t.Fatalf("decl = %q", e.Decl())
	}
	// counter is NOT in externs.
	if _, ok := tbl.ExternEntry("counter"); ok {
		t.Error("static leaked into externs")
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	u := compileFib(t)
	symPS := EmitProgramPSOpts([]*cc.Unit{u}, conf.Name, true)
	// Loader table with the WRONG anchor: validation must fail (§2).
	loader := "<<\n/symtab " + symPS + "\n/anchormap << /_stanchor__Vdeadbeef_c0ffee 16#1000 >>\n/proctable [ ]\n>>"
	in := ps.New()
	tbl, err := Load(in, loader)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Validate(); err == nil {
		t.Fatal("validation passed with mismatched anchors")
	}
}

func TestDeferredEntriesAreStringsUntilUsed(t *testing.T) {
	u := compileFib(t)
	tbl := loadTable(t, u, true)
	// Find some entry binding in the environment: it must be a string
	// before access and a dict afterward (§5's replacement).
	var name string
	for _, k := range tbl.Env.Keys() {
		if v, _ := tbl.Env.Get(k); v.Kind == ps.KString && strings.HasPrefix(ps.Cvs(k), "U0S") && !strings.Contains(ps.Cvs(k), ".") {
			name = ps.Cvs(k)
			break
		}
	}
	if name == "" {
		t.Fatal("no deferred entries found")
	}
	if _, err := tbl.EntryOf(name); err != nil {
		t.Fatal(err)
	}
	v, _ := tbl.Env.GetName(name)
	if v.Kind != ps.KDict {
		t.Fatalf("entry %s not replaced after access: %s", name, v.TypeName())
	}
}

func TestEagerAndDeferredSizesDiffer(t *testing.T) {
	u := compileFib(t)
	eager := EmitProgramPSOpts([]*cc.Unit{u}, conf.Name, false)
	deferred := EmitProgramPSOpts([]*cc.Unit{u}, conf.Name, true)
	if len(eager) == 0 || len(deferred) == 0 {
		t.Fatal("empty emission")
	}
	// Both must load to the same structure.
	for _, mode := range []bool{false, true} {
		tbl := loadTable(t, u, mode)
		if _, _, ok := tbl.ProcEntryByName("main"); !ok {
			t.Fatalf("main missing in mode deferred=%v", mode)
		}
	}
}

func TestTypeDictsShared(t *testing.T) {
	u, err := cc.Compile(`int x; int y; int add(int a, int b) { return a + b; }`, "t.c", conf)
	if err != nil {
		t.Fatal(err)
	}
	tbl := loadTable(t, u, false)
	ex, _ := tbl.ExternEntry("x")
	ey, _ := tbl.ExternEntry("y")
	if ex.TypeDict() == nil || ex.TypeDict() != ey.TypeDict() {
		t.Error("int type dictionary not shared between entries")
	}
	if d, _ := ex.TypeDict().GetName("decl"); d.S != "int %s" {
		t.Errorf("decl = %q", d.S)
	}
	if p, ok := ex.TypeDict().GetName("printer"); !ok || p.Kind != ps.KArray || !p.Exec {
		t.Error("printer is not a procedure")
	}
}

func TestProcContaining(t *testing.T) {
	u := compileFib(t)
	tbl := loadTable(t, u, true)
	if p, ok := tbl.ProcContaining(0x150); !ok || p.Name != "_fib" {
		t.Fatalf("0x150 → %v %v", p, ok)
	}
	if p, ok := tbl.ProcContaining(0x250); !ok || p.Name != "_main" {
		t.Fatalf("0x250 → %v %v", p, ok)
	}
	if _, ok := tbl.ProcContaining(0x50); ok {
		t.Fatal("0x50 mapped to a procedure")
	}
	if a, err := tbl.GlobalAddr("_fib"); err != nil || a != 0x100 {
		t.Fatalf("GlobalAddr = %#x %v", a, err)
	}
	if a, err := tbl.AnchorAddr(u.AnchorSym); err != nil || a != 0x1000 {
		t.Fatalf("AnchorAddr = %#x %v", a, err)
	}
}

func TestPSStringEscapingProperty(t *testing.T) {
	// Any byte string survives the psStr → scanner round trip — the
	// foundation under deferred entry bodies, which nest arbitrarily
	// many quoted strings.
	f := func(raw []byte) bool {
		s := string(raw)
		in := ps.New()
		if err := in.RunString(psStr(s)); err != nil {
			return false
		}
		if len(in.Stack) != 1 || in.Stack[0].Kind != ps.KString {
			return false
		}
		return in.Stack[0].S == s
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
	// Double nesting: a deferred body containing a string literal.
	inner := "has (parens) and \\ slashes\nand newlines"
	body := "<< /name " + psStr(inner) + " >>"
	in := ps.New()
	if err := in.RunString(psStr(body)); err != nil {
		t.Fatal(err)
	}
	quoted, _ := in.Pop()
	if err := in.RunString(quoted.S); err != nil {
		t.Fatal(err)
	}
	d, _ := in.Pop()
	v, _ := d.D.GetName("name")
	if v.S != inner {
		t.Fatalf("nested round trip: %q", v.S)
	}
}

func TestEntryRefForms(t *testing.T) {
	u := compileFib(t)
	tbl := loadTable(t, u, true)
	_, name, _ := tbl.ProcEntryByName("fib")
	// A literal name (the deferred reference form) resolves through the
	// environment; so does the same name as a string.
	for _, o := range []ps.Object{ps.LitName(name), ps.Str(name)} {
		d, err := tbl.EntryRef(o)
		if err != nil || d == nil {
			t.Fatalf("EntryRef(%s): %v %v", ps.Format(o), d, err)
		}
	}
	// Null means "no entry" (the tree root's uplink).
	if d, err := tbl.EntryRef(ps.Null()); err != nil || d != nil {
		t.Fatalf("EntryRef(null) = %v %v", d, err)
	}
	// Anything else is a malformed table.
	if _, err := tbl.EntryRef(ps.Int(7)); err == nil {
		t.Fatal("EntryRef accepted an int")
	}
}
