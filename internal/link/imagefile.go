package link

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ldb/internal/arch"
	"ldb/internal/asm"
)

// The executable image file format used by cmd/lcc and cmd/ldb: a
// small, explicit binary encoding (the paper's driver dealt with a.out;
// ours is deliberately simple since nm-style information travels in the
// loader-table PostScript instead).

const imgMagic = uint32(0x6c64_6230) // "ldb0"

type imgWriter struct {
	buf bytes.Buffer
}

func (w *imgWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v) //ldb:allow endian the .img image format is defined little-endian on every host
	w.buf.Write(b[:])
}

func (w *imgWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

func (w *imgWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf.Write(b)
}

// EncodeImage serializes an image.
func EncodeImage(img *Image) []byte {
	w := &imgWriter{}
	w.u32(imgMagic)
	w.str(img.Arch.Name())
	w.u32(img.Entry)
	w.u32(img.RPTAddr)
	w.bytes(img.Text)
	w.bytes(img.Data)
	w.u32(uint32(len(img.Syms)))
	for _, s := range img.Syms {
		w.str(s.Name)
		w.u32(s.Addr)
		flags := uint32(0)
		if s.Sec == asm.SecData {
			flags |= 1
		}
		if s.Global {
			flags |= 2
		}
		w.u32(flags)
	}
	w.u32(uint32(len(img.Funcs)))
	for _, f := range img.Funcs {
		w.str(f.Name)
		w.u32(f.Addr)
		w.u32(uint32(f.FrameSize))
	}
	return w.buf.Bytes()
}

type imgReader struct {
	b   []byte
	err error
}

func (r *imgReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = fmt.Errorf("link: truncated image")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b) //ldb:allow endian the .img image format is defined little-endian on every host
	r.b = r.b[4:]
	return v
}

func (r *imgReader) str() string {
	n := r.u32()
	if r.err != nil || uint64(n) > uint64(len(r.b)) {
		if r.err == nil {
			r.err = fmt.Errorf("link: truncated image string")
		}
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *imgReader) bytes() []byte {
	n := r.u32()
	if r.err != nil || uint64(n) > uint64(len(r.b)) {
		if r.err == nil {
			r.err = fmt.Errorf("link: truncated image section")
		}
		return nil
	}
	b := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return b
}

// DecodeImage parses a serialized image.
func DecodeImage(data []byte) (*Image, error) {
	r := &imgReader{b: data}
	if r.u32() != imgMagic {
		return nil, fmt.Errorf("link: not an ldb image")
	}
	name := r.str()
	a, ok := arch.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("link: image for unknown architecture %q", name)
	}
	img := &Image{Arch: a}
	img.Entry = r.u32()
	img.RPTAddr = r.u32()
	img.Text = r.bytes()
	img.Data = r.bytes()
	nsyms := r.u32()
	if uint64(nsyms) > uint64(len(data)) {
		return nil, fmt.Errorf("link: implausible symbol count")
	}
	for i := uint32(0); i < nsyms && r.err == nil; i++ {
		var s ImgSym
		s.Name = r.str()
		s.Addr = r.u32()
		flags := r.u32()
		if flags&1 != 0 {
			s.Sec = asm.SecData
		}
		s.Global = flags&2 != 0
		img.Syms = append(img.Syms, s)
	}
	nfuncs := r.u32()
	for i := uint32(0); i < nfuncs && r.err == nil; i++ {
		var f FuncAddr
		f.Name = r.str()
		f.Addr = r.u32()
		f.FrameSize = int32(r.u32())
		img.Funcs = append(img.Funcs, f)
	}
	if r.err != nil {
		return nil, r.err
	}
	return img, nil
}
