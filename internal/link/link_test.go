package link

import (
	"strings"
	"testing"

	"ldb/internal/arch"
	"ldb/internal/arch/mips"
	"ldb/internal/asm"
)

// tiny builds a two-unit MIPS program: unit A calls symbol _f in unit
// B through every interesting relocation kind.
func tiny(t *testing.T) (*Image, error) {
	t.Helper()
	m := mips.Little
	a1 := mips.NewAsm(m)
	a1.Label("_start")
	a1.LA(mips.T0, "_gvar", 4) // hi16/lo16 with addend
	a1.I(mips.OpLw, mips.A0, mips.T0, 0)
	a1.Jal("_f") // pc26
	a1.LI(mips.V0, arch.SysExit)
	a1.Syscall()
	code1, rel1, err := a1.Finish()
	if err != nil {
		t.Fatal(err)
	}
	u1 := &asm.Unit{Name: "a", Arch: m.Name(), Text: code1, TextRelocs: rel1}
	u1.AddSym("_start", asm.SecText, 0, len(code1), true)
	u1.Funcs = append(u1.Funcs, asm.FuncInfo{Sym: "_start", FrameSize: 0})

	a2 := mips.NewAsm(m)
	a2.Label("_f")
	a2.R(mips.FnAddu, mips.A0, mips.A0, mips.A0) // status = 2*gvar[1]
	a2.R(mips.FnJr, 0, mips.RA, 0)
	code2, rel2, err := a2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	u2 := &asm.Unit{Name: "b", Arch: m.Name(), Text: code2, TextRelocs: rel2}
	u2.AddSym("_f", asm.SecText, 0, len(code2), true)
	u2.Funcs = append(u2.Funcs, asm.FuncInfo{Sym: "_f", FrameSize: 8})
	// Data: _gvar with a word at +4 = 21, and an abs32 reloc pointing
	// at _f for good measure.
	u2.Data = make([]byte, 12)
	u2.Data[4] = 21
	u2.AddSym("_gvar", asm.SecData, 0, 8, true)
	u2.DataRelocs = append(u2.DataRelocs, arch.Reloc{Off: 8, Kind: arch.RelAbs32, Sym: "_f"})

	return Link(m, u1, u2)
}

func TestLinkAndRun(t *testing.T) {
	img, err := tiny(t)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(img)
	f := p.Run()
	if f.Kind != arch.FaultHalt || p.ExitCode != 42 {
		t.Fatalf("fault %v, exit %d", f, p.ExitCode)
	}
	// The data-section abs32 reloc resolved to _f's address.
	fAddr, _ := img.SymAddr("_f")
	gAddr, _ := img.SymAddr("_gvar")
	got, fault := p.Load(gAddr+8, 4)
	if fault != nil || got != fAddr {
		t.Fatalf("data reloc = %#x, want %#x", got, fAddr)
	}
}

func TestUndefinedSymbol(t *testing.T) {
	m := mips.Little
	a := mips.NewAsm(m)
	a.Label("_start")
	a.Jal("_missing")
	code, rel, _ := a.Finish()
	u := &asm.Unit{Name: "a", Arch: m.Name(), Text: code, TextRelocs: rel}
	u.AddSym("_start", asm.SecText, 0, 4, true)
	if _, err := Link(m, u); err == nil || !strings.Contains(err.Error(), "_missing") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateSymbol(t *testing.T) {
	m := mips.Little
	mk := func() *asm.Unit {
		a := mips.NewAsm(m)
		a.Label("_start")
		a.Nop()
		code, _, _ := a.Finish()
		u := &asm.Unit{Name: "x", Arch: m.Name(), Text: code}
		u.AddSym("_start", asm.SecText, 0, 4, true)
		return u
	}
	if _, err := Link(m, mk(), mk()); err == nil || !strings.Contains(err.Error(), "multiple definitions") {
		t.Fatalf("err = %v", err)
	}
}

func TestWrongArch(t *testing.T) {
	u := &asm.Unit{Name: "x", Arch: "vax"}
	if _, err := Link(mips.Little, u); err == nil {
		t.Fatal("cross-arch link accepted")
	}
}

func TestNmAndLoaderPS(t *testing.T) {
	img, err := tiny(t)
	if err != nil {
		t.Fatal(err)
	}
	nm := Nm(img)
	var sawStart, sawG bool
	for i := 1; i < len(nm); i++ {
		if nm[i].Addr < nm[i-1].Addr {
			t.Fatal("nm not sorted")
		}
	}
	for _, s := range nm {
		if s.Name == "_start" && s.Kind == 'T' {
			sawStart = true
		}
		if s.Name == "_gvar" && s.Kind == 'D' {
			sawG = true
		}
	}
	if !sawStart || !sawG {
		t.Fatalf("nm misses symbols: %v", nm)
	}
	ps := LoaderPS(img, "null")
	for _, want := range []string{"/proctable", "/nm", "(_f)", "/rpt", "/entry"} {
		if !strings.Contains(ps, want) {
			t.Errorf("loader PS missing %q", want)
		}
	}
}

func TestMIPSRuntimeProcedureTableContents(t *testing.T) {
	img, err := tiny(t)
	if err != nil {
		t.Fatal(err)
	}
	if img.RPTAddr == 0 {
		t.Fatal("no RPT on mips")
	}
	p := NewProcess(img)
	count, f := p.Load(img.RPTAddr, 4)
	if f != nil || count != 2 {
		t.Fatalf("rpt count = %d, %v", count, f)
	}
	// Entries sorted by address, (addr, framesize) pairs.
	fAddr, _ := img.SymAddr("_f")
	found := false
	for i := uint32(0); i < count; i++ {
		a, _ := p.Load(img.RPTAddr+4+8*i, 4)
		fs, _ := p.Load(img.RPTAddr+4+8*i+4, 4)
		if a == fAddr && fs == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("_f missing from RPT")
	}
}
