package link

import (
	"testing"
	"testing/quick"

	"ldb/internal/arch"
	_ "ldb/internal/arch/mips"
	"ldb/internal/asm"
)

func TestImageRoundTrip(t *testing.T) {
	img, err := tiny(t)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImage(EncodeImage(img))
	if err != nil {
		t.Fatal(err)
	}
	if got.Arch.Name() != img.Arch.Name() || got.Entry != img.Entry || got.RPTAddr != img.RPTAddr {
		t.Fatal("header fields lost")
	}
	if string(got.Text) != string(img.Text) || string(got.Data) != string(img.Data) {
		t.Fatal("sections lost")
	}
	if len(got.Syms) != len(img.Syms) || len(got.Funcs) != len(img.Funcs) {
		t.Fatal("tables lost")
	}
	for i := range img.Syms {
		if got.Syms[i] != img.Syms[i] {
			t.Fatalf("symbol %d: %+v != %+v", i, got.Syms[i], img.Syms[i])
		}
	}
	// The decoded image still runs.
	p := NewProcess(got)
	if f := p.Run(); f.Kind != arch.FaultHalt || p.ExitCode != 42 {
		t.Fatalf("decoded image: %v exit %d", f, p.ExitCode)
	}
}

func TestImageRoundTripProperty(t *testing.T) {
	a, _ := arch.Lookup("mips")
	f := func(text, data []byte, entry, rpt uint32, names []string) bool {
		img := &Image{Arch: a, Entry: entry, RPTAddr: rpt, Text: text, Data: data}
		for i, n := range names {
			if len(n) > 64 {
				n = n[:64]
			}
			img.Syms = append(img.Syms, ImgSym{Name: n, Addr: uint32(i), Sec: asm.Section(i % 2), Global: i%3 == 0})
		}
		got, err := DecodeImage(EncodeImage(img))
		if err != nil {
			return false
		}
		if got.Entry != entry || got.RPTAddr != rpt ||
			string(got.Text) != string(text) || string(got.Data) != string(data) ||
			len(got.Syms) != len(img.Syms) {
			return false
		}
		for i := range img.Syms {
			if got.Syms[i] != img.Syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {1, 2, 3}, []byte("not an image at all")} {
		if _, err := DecodeImage(data); err == nil {
			t.Errorf("accepted %q", data)
		}
	}
	img, err := tiny(t)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeImage(img)
	if _, err := DecodeImage(enc[:len(enc)/3]); err == nil {
		t.Error("accepted truncated image")
	}
}
