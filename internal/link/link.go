// Package link combines object units into an executable image,
// resolves relocations, and produces the link-time information ldb
// depends on: nm-style symbol listings, the loader-table PostScript
// (§3), and — on the MIPS — the runtime procedure table placed in the
// target's address space (§4.3), from which ldb's MIPS linker
// interface learns procedure addresses and frame sizes.
package link

import (
	"fmt"
	"sort"
	"strings"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/asm"
	"ldb/internal/machine"
)

// ImgSym is a resolved symbol.
type ImgSym struct {
	Name   string
	Addr   uint32
	Sec    asm.Section
	Global bool
}

// FuncAddr records a linked procedure for the proctable and the MIPS
// runtime procedure table.
type FuncAddr struct {
	Name      string
	Addr      uint32
	FrameSize int32
}

// Image is a linked executable.
type Image struct {
	Arch  arch.Arch
	Text  []byte
	Data  []byte
	Entry uint32
	Syms  []ImgSym
	Funcs []FuncAddr
	// RPTAddr is the address of the MIPS runtime procedure table (zero
	// on other targets).
	RPTAddr uint32
}

// SymAddr finds a global symbol's address.
func (img *Image) SymAddr(name string) (uint32, bool) {
	for _, s := range img.Syms {
		if s.Name == name && s.Global {
			return s.Addr, true
		}
	}
	return 0, false
}

// align4 pads b to a 4-byte boundary.
func align4(b []byte) []byte {
	for len(b)%4 != 0 {
		b = append(b, 0)
	}
	return b
}

// Link combines units (the runtime first, by convention) into an image
// for the given architecture. The entry point is _start.
func Link(a arch.Arch, units ...*asm.Unit) (*Image, error) {
	img := &Image{Arch: a}
	order := a.Order()

	type placed struct {
		unit     *asm.Unit
		textBase uint32
		dataBase uint32
	}
	var pls []placed
	var text, data []byte
	for _, u := range units {
		if u == nil {
			continue
		}
		if u.Arch != a.Name() {
			return nil, fmt.Errorf("link: unit %q is for %s, not %s", u.Name, u.Arch, a.Name())
		}
		text = align4(text)
		data = align4(data)
		pls = append(pls, placed{u, machine.TextBase + uint32(len(text)), machine.DataBase + uint32(len(data))})
		text = append(text, u.Text...)
		data = append(data, u.Data...)
	}

	// Resolve symbols: global table plus per-unit locals.
	global := map[string]ImgSym{}
	locals := make([]map[string]ImgSym, len(pls))
	addrOf := func(p placed, s asm.Sym) uint32 {
		if s.Sec == asm.SecText {
			return p.textBase + uint32(s.Off)
		}
		return p.dataBase + uint32(s.Off)
	}
	for i, p := range pls {
		locals[i] = map[string]ImgSym{}
		for _, s := range p.unit.Syms {
			is := ImgSym{Name: s.Name, Addr: addrOf(p, s), Sec: s.Sec, Global: s.Global}
			locals[i][s.Name] = is
			if s.Global {
				if _, dup := global[s.Name]; dup {
					return nil, fmt.Errorf("link: multiple definitions of %s", s.Name)
				}
				global[s.Name] = is
			}
			img.Syms = append(img.Syms, is)
		}
		for _, f := range p.unit.Funcs {
			// Function addresses resolve within the same unit.
			if s, ok := locals[i][f.Sym]; ok {
				img.Funcs = append(img.Funcs, FuncAddr{Name: f.Sym, Addr: s.Addr, FrameSize: f.FrameSize})
			}
		}
	}
	resolve := func(i int, name string) (ImgSym, error) {
		if s, ok := locals[i][name]; ok {
			return s, nil
		}
		if s, ok := global[name]; ok {
			return s, nil
		}
		return ImgSym{}, fmt.Errorf("link: undefined symbol %q (referenced from %s)", name, pls[i].unit.Name)
	}

	// The MIPS runtime procedure table goes at the end of data, before
	// relocation so nothing here needs patching.
	if strings.HasPrefix(a.Name(), "mips") {
		data = align4(data)
		img.RPTAddr = machine.DataBase + uint32(len(data))
		sort.Slice(img.Funcs, func(i, j int) bool { return img.Funcs[i].Addr < img.Funcs[j].Addr })
		var rpt []byte
		var cnt [4]byte
		amem.WriteInt(order, cnt[:], uint64(len(img.Funcs)))
		rpt = append(rpt, cnt[:]...)
		for _, f := range img.Funcs {
			var e [8]byte
			amem.WriteInt(order, e[0:4], uint64(f.Addr))
			amem.WriteInt(order, e[4:8], uint64(uint32(f.FrameSize)))
			rpt = append(rpt, e[:]...)
		}
		data = append(data, rpt...)
		img.Syms = append(img.Syms, ImgSym{Name: "_procedure_table", Addr: img.RPTAddr, Sec: asm.SecData, Global: true})
	}

	// Apply relocations.
	apply := func(i int, base, secStart uint32, buf []byte, relocs []arch.Reloc) error {
		for _, r := range relocs {
			sym, err := resolve(i, r.Sym)
			if err != nil {
				return err
			}
			target := sym.Addr + uint32(r.Add)
			site := base + uint32(r.Off)
			at := site - secStart
			switch r.Kind {
			case arch.RelAbs32:
				amem.WriteInt(order, buf[at:at+4], uint64(target))
			case arch.RelHi16:
				w := uint32(amem.ReadInt(order, buf[at:at+4]))
				w = w&0xffff0000 | target>>16
				amem.WriteInt(order, buf[at:at+4], uint64(w))
			case arch.RelLo16:
				w := uint32(amem.ReadInt(order, buf[at:at+4]))
				w = w&0xffff0000 | target&0xffff
				amem.WriteInt(order, buf[at:at+4], uint64(w))
			case arch.RelHi22:
				w := uint32(amem.ReadInt(order, buf[at:at+4]))
				w = w&0xffc00000 | target>>10
				amem.WriteInt(order, buf[at:at+4], uint64(w))
			case arch.RelLo10:
				w := uint32(amem.ReadInt(order, buf[at:at+4]))
				w = w&^uint32(0x3ff) | target&0x3ff
				amem.WriteInt(order, buf[at:at+4], uint64(w))
			case arch.RelPC26:
				w := uint32(amem.ReadInt(order, buf[at:at+4]))
				w = w&0xfc000000 | target<<4>>6
				amem.WriteInt(order, buf[at:at+4], uint64(w))
			case arch.RelPC30:
				disp := int32(target-site) / 4
				w := uint32(amem.ReadInt(order, buf[at:at+4]))
				w = w&0xc0000000 | uint32(disp)&0x3fffffff
				amem.WriteInt(order, buf[at:at+4], uint64(w))
			case arch.RelPC32:
				disp := target - (site + 4)
				amem.WriteInt(order, buf[at:at+4], uint64(disp))
			default:
				return fmt.Errorf("link: unknown relocation kind %d", r.Kind)
			}
		}
		return nil
	}
	for i, p := range pls {
		if err := apply(i, p.textBase, machine.TextBase, text, p.unit.TextRelocs); err != nil {
			return nil, err
		}
		if err := apply(i, p.dataBase, machine.DataBase, data, p.unit.DataRelocs); err != nil {
			return nil, err
		}
	}

	entry, ok := global["_start"]
	if !ok {
		return nil, fmt.Errorf("link: no _start")
	}
	img.Entry = entry.Addr
	img.Text = text
	img.Data = data
	return img, nil
}

// NmSym is one line of nm-style output.
type NmSym struct {
	Addr uint32
	Kind byte // 'T'/'t' text, 'D'/'d' data
	Name string
}

// Nm lists the image's symbols the way the UNIX nm program would; the
// compiler driver transforms this listing into the loader table (§3:
// using nm makes ldb independent of linker formats).
func Nm(img *Image) []NmSym {
	var out []NmSym
	for _, s := range img.Syms {
		kind := byte('t')
		if s.Sec == asm.SecData {
			kind = 'd'
		}
		if s.Global {
			kind -= 'a' - 'A'
		}
		out = append(out, NmSym{Addr: s.Addr, Kind: kind, Name: s.Name})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// LoaderPS renders the loader table as PostScript (§3): the program's
// top-level dictionary, the anchormap associating anchor-symbol names
// with addresses, and the proctable of (address, name) pairs.
func LoaderPS(img *Image, topLevelPS string) string {
	var b strings.Builder
	b.WriteString("<<\n/symtab ")
	if topLevelPS == "" {
		b.WriteString("null")
	} else {
		b.WriteString(topLevelPS)
	}
	b.WriteString("\n/anchormap <<\n")
	for _, s := range Nm(img) {
		if strings.HasPrefix(s.Name, "_stanchor__") {
			fmt.Fprintf(&b, "  /%s 16#%08x\n", s.Name, s.Addr)
		}
	}
	b.WriteString(">>\n/nm <<\n")
	for _, s := range Nm(img) {
		if s.Kind == 'T' || s.Kind == 'D' {
			fmt.Fprintf(&b, "  /%s 16#%08x\n", s.Name, s.Addr)
		}
	}
	b.WriteString(">>\n/proctable [\n")
	funcs := append([]FuncAddr(nil), img.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Addr < funcs[j].Addr })
	for _, f := range funcs {
		fmt.Fprintf(&b, "  16#%08x (%s)\n", f.Addr, f.Name)
	}
	b.WriteString("]\n")
	fmt.Fprintf(&b, "/entry 16#%08x\n", img.Entry)
	if img.RPTAddr != 0 {
		fmt.Fprintf(&b, "/rpt 16#%08x\n", img.RPTAddr)
	}
	b.WriteString(">>\n")
	return b.String()
}

// NewProcess loads the image into a fresh simulated process.
func NewProcess(img *Image) *machine.Process {
	return machine.New(img.Arch, img.Text, img.Data, img.Entry)
}
