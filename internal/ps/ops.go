package ps

import (
	"errors"
	"math"
)

// registerAll installs the built-in operators of the dialect.
func registerAll(in *Interp) {
	registerStackOps(in)
	registerArithOps(in)
	registerRelationalOps(in)
	registerControlOps(in)
	registerDictOps(in)
	registerArrayOps(in)
	registerConversionOps(in)
	registerIOOps(in)
	registerPrettyOps(in)
}

func registerStackOps(in *Interp) {
	in.Register("pop", func(in *Interp) error {
		_, err := in.Pop()
		return err
	})
	in.Register("exch", func(in *Interp) error {
		b, err := in.Pop()
		if err != nil {
			return err
		}
		a, err := in.Pop()
		if err != nil {
			return err
		}
		in.Push(b, a)
		return nil
	})
	in.Register("dup", func(in *Interp) error {
		o, err := in.Top()
		if err != nil {
			return err
		}
		in.Push(o)
		return nil
	})
	in.Register("copy", func(in *Interp) error {
		n, err := in.PopInt("copy")
		if err != nil {
			return err
		}
		if n < 0 || int(n) > len(in.Stack) {
			return &Error{Name: "rangecheck", Cmd: "copy"}
		}
		in.Stack = append(in.Stack, in.Stack[len(in.Stack)-int(n):]...)
		return nil
	})
	in.Register("index", func(in *Interp) error {
		n, err := in.PopInt("index")
		if err != nil {
			return err
		}
		if n < 0 || int(n) >= len(in.Stack) {
			return &Error{Name: "rangecheck", Cmd: "index"}
		}
		in.Push(in.Stack[len(in.Stack)-1-int(n)])
		return nil
	})
	in.Register("roll", func(in *Interp) error {
		j, err := in.PopInt("roll")
		if err != nil {
			return err
		}
		n, err := in.PopInt("roll")
		if err != nil {
			return err
		}
		if n < 0 || int(n) > len(in.Stack) {
			return &Error{Name: "rangecheck", Cmd: "roll"}
		}
		if n == 0 {
			return nil
		}
		seg := in.Stack[len(in.Stack)-int(n):]
		k := int(((j % n) + n) % n)
		rotated := make([]Object, 0, n)
		rotated = append(rotated, seg[int(n)-k:]...)
		rotated = append(rotated, seg[:int(n)-k]...)
		copy(seg, rotated)
		return nil
	})
	in.Register("clear", func(in *Interp) error {
		in.Stack = in.Stack[:0]
		return nil
	})
	in.Register("count", func(in *Interp) error {
		in.Push(Int(int64(len(in.Stack))))
		return nil
	})
	in.Register("mark", func(in *Interp) error {
		in.Push(Mark())
		return nil
	})
	in.Register("counttomark", func(in *Interp) error {
		for i := len(in.Stack) - 1; i >= 0; i-- {
			if in.Stack[i].Kind == KMark {
				in.Push(Int(int64(len(in.Stack) - 1 - i)))
				return nil
			}
		}
		return &Error{Name: "unmatchedmark", Cmd: "counttomark"}
	})
	in.Register("cleartomark", func(in *Interp) error {
		for i := len(in.Stack) - 1; i >= 0; i-- {
			if in.Stack[i].Kind == KMark {
				in.Stack = in.Stack[:i]
				return nil
			}
		}
		return &Error{Name: "unmatchedmark", Cmd: "cleartomark"}
	})
}

func numeric2(in *Interp, cmd string) (a, b Object, err error) {
	b, err = in.Pop()
	if err != nil {
		return
	}
	a, err = in.Pop()
	if err != nil {
		return
	}
	if !a.IsNumber() || !b.IsNumber() {
		err = typecheck(cmd, a)
	}
	return
}

func registerArithOps(in *Interp) {
	binop := func(name string, ifn func(a, b int64) int64, ffn func(a, b float64) float64) {
		in.Register(name, func(in *Interp) error {
			a, b, err := numeric2(in, name)
			if err != nil {
				return err
			}
			if a.Kind == KInt && b.Kind == KInt {
				in.Push(Int(ifn(a.I, b.I)))
			} else {
				in.Push(Real(ffn(a.Num(), b.Num())))
			}
			return nil
		})
	}
	binop("add", func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b })
	binop("sub", func(a, b int64) int64 { return a - b }, func(a, b float64) float64 { return a - b })
	binop("mul", func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b })
	in.Register("div", func(in *Interp) error {
		a, b, err := numeric2(in, "div")
		if err != nil {
			return err
		}
		if b.Num() == 0 {
			return &Error{Name: "undefinedresult", Cmd: "div"}
		}
		in.Push(Real(a.Num() / b.Num()))
		return nil
	})
	in.Register("idiv", func(in *Interp) error {
		b, err := in.PopInt("idiv")
		if err != nil {
			return err
		}
		a, err := in.PopInt("idiv")
		if err != nil {
			return err
		}
		if b == 0 {
			return &Error{Name: "undefinedresult", Cmd: "idiv"}
		}
		in.Push(Int(a / b))
		return nil
	})
	in.Register("mod", func(in *Interp) error {
		b, err := in.PopInt("mod")
		if err != nil {
			return err
		}
		a, err := in.PopInt("mod")
		if err != nil {
			return err
		}
		if b == 0 {
			return &Error{Name: "undefinedresult", Cmd: "mod"}
		}
		in.Push(Int(a % b))
		return nil
	})
	in.Register("neg", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		switch o.Kind {
		case KInt:
			in.Push(Int(-o.I))
		case KReal:
			in.Push(Real(-o.R))
		default:
			return typecheck("neg", o)
		}
		return nil
	})
	in.Register("abs", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		switch o.Kind {
		case KInt:
			if o.I < 0 {
				o.I = -o.I
			}
			in.Push(o)
		case KReal:
			in.Push(Real(math.Abs(o.R)))
		default:
			return typecheck("abs", o)
		}
		return nil
	})
	in.Register("sqrt", func(in *Interp) error {
		v, err := in.PopNum("sqrt")
		if err != nil {
			return err
		}
		if v < 0 {
			return &Error{Name: "rangecheck", Cmd: "sqrt"}
		}
		in.Push(Real(math.Sqrt(v)))
		return nil
	})
	roundop := func(name string, fn func(float64) float64) {
		in.Register(name, func(in *Interp) error {
			o, err := in.Pop()
			if err != nil {
				return err
			}
			switch o.Kind {
			case KInt:
				in.Push(o)
			case KReal:
				in.Push(Real(fn(o.R)))
			default:
				return typecheck(name, o)
			}
			return nil
		})
	}
	roundop("truncate", math.Trunc)
	roundop("round", math.Round)
	roundop("floor", math.Floor)
	roundop("ceiling", math.Ceil)
	in.Register("bitshift", func(in *Interp) error {
		sh, err := in.PopInt("bitshift")
		if err != nil {
			return err
		}
		v, err := in.PopInt("bitshift")
		if err != nil {
			return err
		}
		if sh >= 0 {
			in.Push(Int(v << uint(sh&63)))
		} else {
			in.Push(Int(int64(uint64(v) >> uint((-sh)&63))))
		}
		return nil
	})
	boolOrIntOp := func(name string, bfn func(a, b bool) bool, ifn func(a, b int64) int64) {
		in.Register(name, func(in *Interp) error {
			b, err := in.Pop()
			if err != nil {
				return err
			}
			a, err := in.Pop()
			if err != nil {
				return err
			}
			switch {
			case a.Kind == KBool && b.Kind == KBool:
				in.Push(Boolean(bfn(a.B, b.B)))
			case a.Kind == KInt && b.Kind == KInt:
				in.Push(Int(ifn(a.I, b.I)))
			default:
				return typecheck(name, a)
			}
			return nil
		})
	}
	boolOrIntOp("and", func(a, b bool) bool { return a && b }, func(a, b int64) int64 { return a & b })
	boolOrIntOp("or", func(a, b bool) bool { return a || b }, func(a, b int64) int64 { return a | b })
	boolOrIntOp("xor", func(a, b bool) bool { return a != b }, func(a, b int64) int64 { return a ^ b })
	in.Register("not", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		switch o.Kind {
		case KBool:
			in.Push(Boolean(!o.B))
		case KInt:
			in.Push(Int(^o.I))
		default:
			return typecheck("not", o)
		}
		return nil
	})
}

func registerRelationalOps(in *Interp) {
	in.Register("eq", func(in *Interp) error {
		b, err := in.Pop()
		if err != nil {
			return err
		}
		a, err := in.Pop()
		if err != nil {
			return err
		}
		in.Push(Boolean(Equal(a, b)))
		return nil
	})
	in.Register("ne", func(in *Interp) error {
		b, err := in.Pop()
		if err != nil {
			return err
		}
		a, err := in.Pop()
		if err != nil {
			return err
		}
		in.Push(Boolean(!Equal(a, b)))
		return nil
	})
	cmp := func(name string, want func(int) bool) {
		in.Register(name, func(in *Interp) error {
			b, err := in.Pop()
			if err != nil {
				return err
			}
			a, err := in.Pop()
			if err != nil {
				return err
			}
			var c int
			switch {
			case a.IsNumber() && b.IsNumber():
				av, bv := a.Num(), b.Num()
				switch {
				case av < bv:
					c = -1
				case av > bv:
					c = 1
				}
			case a.Kind == KString && b.Kind == KString:
				switch {
				case a.S < b.S:
					c = -1
				case a.S > b.S:
					c = 1
				}
			default:
				return typecheck(name, a)
			}
			in.Push(Boolean(want(c)))
			return nil
		})
	}
	cmp("gt", func(c int) bool { return c > 0 })
	cmp("ge", func(c int) bool { return c >= 0 })
	cmp("lt", func(c int) bool { return c < 0 })
	cmp("le", func(c int) bool { return c <= 0 })
}

func registerControlOps(in *Interp) {
	in.Register("exec", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		return in.execValue(o)
	})
	in.Register("if", func(in *Interp) error {
		proc, err := in.PopProc("if")
		if err != nil {
			return err
		}
		cond, err := in.PopBool("if")
		if err != nil {
			return err
		}
		if cond {
			return in.runProc(proc)
		}
		return nil
	})
	in.Register("ifelse", func(in *Interp) error {
		pelse, err := in.PopProc("ifelse")
		if err != nil {
			return err
		}
		pthen, err := in.PopProc("ifelse")
		if err != nil {
			return err
		}
		cond, err := in.PopBool("ifelse")
		if err != nil {
			return err
		}
		if cond {
			return in.runProc(pthen)
		}
		return in.runProc(pelse)
	})
	in.Register("for", func(in *Interp) error {
		proc, err := in.PopProc("for")
		if err != nil {
			return err
		}
		limit, err := in.PopNum("for")
		if err != nil {
			return err
		}
		incr, err := in.PopNum("for")
		if err != nil {
			return err
		}
		initial, err := in.PopNum("for")
		if err != nil {
			return err
		}
		if incr == 0 {
			return &Error{Name: "rangecheck", Cmd: "for (zero increment)"}
		}
		push := func(v float64) {
			if v == math.Trunc(v) && math.Abs(v) < 1e18 {
				in.Push(Int(int64(v)))
			} else {
				in.Push(Real(v))
			}
		}
		for v := initial; (incr > 0 && v <= limit) || (incr < 0 && v >= limit); v += incr {
			push(v)
			if err := in.runProc(proc); err != nil {
				if errors.Is(err, errExit) {
					return nil
				}
				return err
			}
		}
		return nil
	})
	in.Register("repeat", func(in *Interp) error {
		proc, err := in.PopProc("repeat")
		if err != nil {
			return err
		}
		n, err := in.PopInt("repeat")
		if err != nil {
			return err
		}
		if n < 0 {
			return &Error{Name: "rangecheck", Cmd: "repeat"}
		}
		for i := int64(0); i < n; i++ {
			if err := in.runProc(proc); err != nil {
				if errors.Is(err, errExit) {
					return nil
				}
				return err
			}
		}
		return nil
	})
	in.Register("loop", func(in *Interp) error {
		proc, err := in.PopProc("loop")
		if err != nil {
			return err
		}
		for {
			if err := in.runProc(proc); err != nil {
				if errors.Is(err, errExit) {
					return nil
				}
				return err
			}
			if err := in.tick(); err != nil {
				return err
			}
		}
	})
	in.Register("exit", func(in *Interp) error { return errExit })
	in.Register("stop", func(in *Interp) error { return errStop })
	in.Register("stopped", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		stopped, err := in.Stopped(o)
		if err != nil {
			return err
		}
		in.Push(Boolean(stopped))
		return nil
	})
	in.Register("forall", func(in *Interp) error {
		proc, err := in.PopProc("forall")
		if err != nil {
			return err
		}
		o, err := in.Pop()
		if err != nil {
			return err
		}
		runBody := func(push ...Object) error {
			in.Push(push...)
			return in.runProc(proc)
		}
		switch o.Kind {
		case KArray:
			for _, e := range o.A.E {
				if err := runBody(e); err != nil {
					if errors.Is(err, errExit) {
						return nil
					}
					return err
				}
			}
		case KString:
			for _, c := range []byte(o.S) {
				if err := runBody(Int(int64(c))); err != nil {
					if errors.Is(err, errExit) {
						return nil
					}
					return err
				}
			}
		case KDict:
			err := o.D.ForAll(func(k, v Object) error { return runBody(k, v) })
			if errors.Is(err, errExit) {
				return nil
			}
			return err
		default:
			return typecheck("forall", o)
		}
		return nil
	})
}

func registerDictOps(in *Interp) {
	in.Register("dict", func(in *Interp) error {
		n, err := in.PopInt("dict")
		if err != nil {
			return err
		}
		in.Push(DictObj(NewDict(int(n))))
		return nil
	})
	in.Register("<<", func(in *Interp) error {
		in.Push(Mark())
		return nil
	})
	in.Register(">>", func(in *Interp) error {
		var pairs []Object
		for {
			o, err := in.Pop()
			if err != nil {
				return &Error{Name: "unmatchedmark", Cmd: ">>"}
			}
			if o.Kind == KMark {
				break
			}
			pairs = append(pairs, o)
		}
		if len(pairs)%2 != 0 {
			return &Error{Name: "rangecheck", Cmd: ">> (odd number of operands)"}
		}
		d := NewDict(len(pairs) / 2)
		for i := len(pairs) - 1; i > 0; i -= 2 {
			if err := d.Put(pairs[i], pairs[i-1]); err != nil {
				return err
			}
		}
		in.Push(DictObj(d))
		return nil
	})
	in.Register("def", func(in *Interp) error {
		val, err := in.Pop()
		if err != nil {
			return err
		}
		key, err := in.Pop()
		if err != nil {
			return err
		}
		return in.DStack[len(in.DStack)-1].Put(key, val)
	})
	in.Register("load", func(in *Interp) error {
		key, err := in.Pop()
		if err != nil {
			return err
		}
		if key.Kind != KName && key.Kind != KString {
			return typecheck("load", key)
		}
		v, ok := in.Lookup(key.S)
		if !ok {
			return undefined(key.S)
		}
		in.Push(v)
		return nil
	})
	in.Register("store", func(in *Interp) error {
		val, err := in.Pop()
		if err != nil {
			return err
		}
		key, err := in.Pop()
		if err != nil {
			return err
		}
		if key.Kind == KName || key.Kind == KString {
			if _, d, ok := in.LookupWhere(key.S); ok {
				return d.Put(key, val)
			}
		}
		return in.DStack[len(in.DStack)-1].Put(key, val)
	})
	in.Register("begin", func(in *Interp) error {
		d, err := in.PopDict("begin")
		if err != nil {
			return err
		}
		in.DStack = append(in.DStack, d)
		return nil
	})
	in.Register("end", func(in *Interp) error {
		if len(in.DStack) <= 2 {
			return &Error{Name: "dictstackunderflow", Cmd: "end"}
		}
		in.DStack = in.DStack[:len(in.DStack)-1]
		return nil
	})
	in.Register("currentdict", func(in *Interp) error {
		in.Push(DictObj(in.DStack[len(in.DStack)-1]))
		return nil
	})
	in.Register("countdictstack", func(in *Interp) error {
		in.Push(Int(int64(len(in.DStack))))
		return nil
	})
	in.Register("known", func(in *Interp) error {
		key, err := in.Pop()
		if err != nil {
			return err
		}
		d, err := in.PopDict("known")
		if err != nil {
			return err
		}
		_, ok := d.Get(key)
		in.Push(Boolean(ok))
		return nil
	})
	in.Register("where", func(in *Interp) error {
		key, err := in.Pop()
		if err != nil {
			return err
		}
		if key.Kind != KName && key.Kind != KString {
			return typecheck("where", key)
		}
		if _, d, ok := in.LookupWhere(key.S); ok {
			in.Push(DictObj(d), Boolean(true))
		} else {
			in.Push(Boolean(false))
		}
		return nil
	})
	in.Register("undef", func(in *Interp) error {
		key, err := in.Pop()
		if err != nil {
			return err
		}
		d, err := in.PopDict("undef")
		if err != nil {
			return err
		}
		d.Undef(key)
		return nil
	})
}

func registerArrayOps(in *Interp) {
	in.Register("array", func(in *Interp) error {
		n, err := in.PopInt("array")
		if err != nil {
			return err
		}
		if n < 0 {
			return &Error{Name: "rangecheck", Cmd: "array"}
		}
		in.Push(ArrayObj(make([]Object, n)...))
		return nil
	})
	in.Register("[", func(in *Interp) error {
		in.Push(Mark())
		return nil
	})
	in.Register("]", func(in *Interp) error {
		var elems []Object
		for {
			o, err := in.Pop()
			if err != nil {
				return &Error{Name: "unmatchedmark", Cmd: "]"}
			}
			if o.Kind == KMark {
				break
			}
			elems = append(elems, o)
		}
		// Reverse into stack order.
		for i, j := 0, len(elems)-1; i < j; i, j = i+1, j-1 {
			elems[i], elems[j] = elems[j], elems[i]
		}
		in.Push(ArrayObj(elems...))
		return nil
	})
	in.Register("aload", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		if o.Kind != KArray {
			return typecheck("aload", o)
		}
		in.Push(o.A.E...)
		in.Push(o)
		return nil
	})
	in.Register("astore", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		if o.Kind != KArray {
			return typecheck("astore", o)
		}
		n := len(o.A.E)
		if len(in.Stack) < n {
			return &Error{Name: "stackunderflow", Cmd: "astore"}
		}
		copy(o.A.E, in.Stack[len(in.Stack)-n:])
		in.Stack = in.Stack[:len(in.Stack)-n]
		in.Push(o)
		return nil
	})
	in.Register("length", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		switch o.Kind {
		case KArray:
			in.Push(Int(int64(len(o.A.E))))
		case KString, KName:
			in.Push(Int(int64(len(o.S))))
		case KDict:
			in.Push(Int(int64(o.D.Len())))
		default:
			return typecheck("length", o)
		}
		return nil
	})
	in.Register("get", func(in *Interp) error {
		key, err := in.Pop()
		if err != nil {
			return err
		}
		o, err := in.Pop()
		if err != nil {
			return err
		}
		switch o.Kind {
		case KArray:
			if key.Kind != KInt {
				return typecheck("get", key)
			}
			if key.I < 0 || key.I >= int64(len(o.A.E)) {
				return &Error{Name: "rangecheck", Cmd: "get"}
			}
			in.Push(o.A.E[key.I])
		case KString:
			if key.Kind != KInt {
				return typecheck("get", key)
			}
			if key.I < 0 || key.I >= int64(len(o.S)) {
				return &Error{Name: "rangecheck", Cmd: "get"}
			}
			in.Push(Int(int64(o.S[key.I])))
		case KDict:
			v, ok := o.D.Get(key)
			if !ok {
				return undefined("get: " + Cvs(key))
			}
			in.Push(v)
		default:
			return typecheck("get", o)
		}
		return nil
	})
	in.Register("put", func(in *Interp) error {
		val, err := in.Pop()
		if err != nil {
			return err
		}
		key, err := in.Pop()
		if err != nil {
			return err
		}
		o, err := in.Pop()
		if err != nil {
			return err
		}
		switch o.Kind {
		case KArray:
			if key.Kind != KInt {
				return typecheck("put", key)
			}
			if key.I < 0 || key.I >= int64(len(o.A.E)) {
				return &Error{Name: "rangecheck", Cmd: "put"}
			}
			o.A.E[key.I] = val
		case KDict:
			return o.D.Put(key, val)
		case KString:
			// Strings are immutable in the dialect (§5).
			return &Error{Name: "invalidaccess", Cmd: "put (strings are immutable)"}
		default:
			return typecheck("put", o)
		}
		return nil
	})
}

func registerConversionOps(in *Interp) {
	in.Register("cvx", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		o.Exec = true
		in.Push(o)
		return nil
	})
	in.Register("cvlit", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		o.Exec = false
		in.Push(o)
		return nil
	})
	in.Register("xcheck", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		in.Push(Boolean(o.Exec))
		return nil
	})
	in.Register("cvi", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		switch o.Kind {
		case KInt:
			in.Push(o)
		case KReal:
			in.Push(Int(int64(math.Trunc(o.R))))
		case KString:
			n, ok := parseNumber(o.S)
			if !ok {
				return typecheck("cvi", o)
			}
			if n.Kind == KReal {
				n = Int(int64(math.Trunc(n.R)))
			}
			in.Push(n)
		default:
			return typecheck("cvi", o)
		}
		return nil
	})
	in.Register("cvr", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		switch o.Kind {
		case KInt:
			in.Push(Real(float64(o.I)))
		case KReal:
			in.Push(o)
		case KString:
			n, ok := parseNumber(o.S)
			if !ok {
				return typecheck("cvr", o)
			}
			in.Push(Real(n.Num()))
		default:
			return typecheck("cvr", o)
		}
		return nil
	})
	in.Register("cvn", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		if o.Kind != KString {
			return typecheck("cvn", o)
		}
		n := LitName(o.S)
		n.Exec = o.Exec
		in.Push(n)
		return nil
	})
	in.Register("cvs", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		in.Push(Str(Cvs(o)))
		return nil
	})
	in.Register("type", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		in.Push(ExecName(o.TypeName()))
		return nil
	})
	in.Register("bind", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		if o.Kind == KArray && o.Exec {
			in.bindProc(o)
		}
		in.Push(o)
		return nil
	})
}

// bindProc replaces executable names bound to operators with the
// operators themselves, recursively through nested procedures.
func (in *Interp) bindProc(p Object) {
	for i, e := range p.A.E {
		switch {
		case e.Kind == KName && e.Exec:
			if v, ok := in.Lookup(e.S); ok && v.Kind == KOperator {
				p.A.E[i] = v
			}
		case e.Kind == KArray && e.Exec:
			in.bindProc(e)
		}
	}
}

func registerIOOps(in *Interp) {
	in.Register("print", func(in *Interp) error {
		s, err := in.PopString("print")
		if err != nil {
			return err
		}
		in.printf("%s", s)
		return nil
	})
	in.Register("=", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		in.printf("%s\n", Cvs(o))
		return nil
	})
	in.Register("==", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		in.printf("%s\n", Format(o))
		return nil
	})
	in.Register("pstack", func(in *Interp) error {
		in.printf("%s", in.StackDump())
		return nil
	})
	in.Register("stack", func(in *Interp) error {
		for i := len(in.Stack) - 1; i >= 0; i-- {
			in.printf("%s\n", Cvs(in.Stack[i]))
		}
		return nil
	})
	in.Register("flush", func(in *Interp) error { return nil })
}
