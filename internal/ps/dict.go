package ps

import "fmt"

// dictKey is the comparable projection of an object used as a dictionary
// key. Names and strings share key space (as in PostScript), and integer
// and real keys with the same value collide, matching `eq`.
type dictKey struct {
	kind Kind
	s    string
	n    float64
	b    bool
	p    any
}

func keyOf(o Object) (dictKey, error) {
	switch o.Kind {
	case KName, KString:
		return dictKey{kind: KName, s: o.S}, nil
	case KInt:
		return dictKey{kind: KInt, n: float64(o.I)}, nil
	case KReal:
		return dictKey{kind: KInt, n: o.R}, nil
	case KBool:
		return dictKey{kind: KBool, b: o.B}, nil
	case KNull:
		return dictKey{kind: KNull}, nil
	case KArray:
		return dictKey{kind: KArray, p: o.A}, nil
	case KDict:
		return dictKey{kind: KDict, p: o.D}, nil
	case KOperator:
		return dictKey{kind: KOperator, p: o.Op}, nil
	case KExt:
		return dictKey{kind: KExt, p: o.X}, nil
	default:
		return dictKey{}, typecheck("dict key", o)
	}
}

type dictEntry struct {
	key Object
	val Object
}

// Dict is a PostScript dictionary. Iteration order is insertion order,
// so `forall` and `==` are deterministic.
type Dict struct {
	m     map[dictKey]int
	items []dictEntry
}

// NewDict returns an empty dictionary. The capacity hint may be zero;
// dictionaries grow without bound, as in Level-2 PostScript.
func NewDict(capacity int) *Dict {
	if capacity < 0 {
		capacity = 0
	}
	return &Dict{m: make(map[dictKey]int, capacity)}
}

// Len returns the number of key/value pairs.
func (d *Dict) Len() int { return len(d.items) }

// Get looks up key; ok reports whether it was present.
func (d *Dict) Get(key Object) (Object, bool) {
	k, err := keyOf(key)
	if err != nil {
		return Object{}, false
	}
	i, ok := d.m[k]
	if !ok {
		return Object{}, false
	}
	return d.items[i].val, true
}

// GetName looks up a name key given as a Go string.
func (d *Dict) GetName(name string) (Object, bool) {
	return d.Get(LitName(name))
}

// Put stores val under key, replacing any existing binding.
func (d *Dict) Put(key, val Object) error {
	k, err := keyOf(key)
	if err != nil {
		return err
	}
	if i, ok := d.m[k]; ok {
		d.items[i].val = val
		return nil
	}
	d.m[k] = len(d.items)
	d.items = append(d.items, dictEntry{key: key, val: val})
	return nil
}

// PutName stores val under the name key given as a Go string.
func (d *Dict) PutName(name string, val Object) {
	if err := d.Put(LitName(name), val); err != nil {
		panic(fmt.Sprintf("ps: PutName(%q): %v", name, err))
	}
}

// Undef removes key if present.
func (d *Dict) Undef(key Object) {
	k, err := keyOf(key)
	if err != nil {
		return
	}
	i, ok := d.m[k]
	if !ok {
		return
	}
	delete(d.m, k)
	d.items = append(d.items[:i], d.items[i+1:]...)
	for j := i; j < len(d.items); j++ {
		kj, _ := keyOf(d.items[j].key)
		d.m[kj] = j
	}
}

// Keys returns the keys in insertion order.
func (d *Dict) Keys() []Object {
	keys := make([]Object, len(d.items))
	for i, it := range d.items {
		keys[i] = it.key
	}
	return keys
}

// ForAll calls f on each pair in insertion order; a non-nil error stops
// the iteration and is returned.
func (d *Dict) ForAll(f func(k, v Object) error) error {
	// Iterate over a snapshot so that f may mutate d.
	snapshot := make([]dictEntry, len(d.items))
	copy(snapshot, d.items)
	for _, it := range snapshot {
		if err := f(it.key, it.val); err != nil {
			return err
		}
	}
	return nil
}
