package ps

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// genObject builds a bounded random object tree from raw fuzz inputs.
func genObject(ints []int64, strs []string, depth int) Object {
	pick := func(i int) int64 {
		if len(ints) == 0 {
			return 0
		}
		return ints[i%len(ints)]
	}
	kind := int(pick(depth)) % 6
	if kind < 0 {
		kind = -kind
	}
	if depth <= 0 {
		kind %= 4
	}
	switch kind {
	case 0:
		return Int(pick(depth + 1))
	case 1:
		v := float64(pick(depth+2)) / 8
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 1.5
		}
		return Real(v)
	case 2:
		if len(strs) == 0 {
			return Str("")
		}
		return Str(strs[depth%len(strs)])
	case 3:
		return Boolean(pick(depth)%2 == 0)
	case 4:
		n := int(pick(depth)%3) + 1
		var elems []Object
		for i := 0; i < n; i++ {
			elems = append(elems, genObject(ints, strs, depth-1))
		}
		return ArrayObj(elems...)
	default:
		d := NewDict(2)
		d.PutName("k", genObject(ints, strs, depth-1))
		return DictObj(d)
	}
}

// structurallyEqual compares objects by value (composites by content,
// unlike Equal's identity semantics).
func structurallyEqual(a, b Object) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KInt:
		return a.I == b.I
	case KReal:
		return a.R == b.R
	case KString, KName:
		return a.S == b.S
	case KBool:
		return a.B == b.B
	case KArray:
		if len(a.A.E) != len(b.A.E) {
			return false
		}
		for i := range a.A.E {
			if !structurallyEqual(a.A.E[i], b.A.E[i]) {
				return false
			}
		}
		return true
	case KDict:
		if a.D.Len() != b.D.Len() {
			return false
		}
		for _, k := range a.D.Keys() {
			av, _ := a.D.Get(k)
			bv, ok := b.D.Get(k)
			if !ok || !structurallyEqual(av, bv) {
				return false
			}
		}
		return true
	}
	return true
}

// TestFormatScanRoundTripProperty: the == rendering of any literal
// object scans back to a structurally equal object. This is what makes
// deferral (§5) sound: a quoted body re-scans to the same data.
func TestFormatScanRoundTripProperty(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		// Strings must be valid byte content; the scanner handles any
		// escaped byte, but raw NULs inside the generator's Go strings
		// are fine since Format escapes only what it must — restrict to
		// printable input to keep the property crisp.
		var cleaned []string
		for _, s := range strs {
			var b strings.Builder
			for _, r := range s {
				if r >= 32 && r < 127 {
					b.WriteRune(r)
				}
			}
			cleaned = append(cleaned, b.String())
		}
		obj := genObject(ints, cleaned, 3)
		in := New()
		if err := in.RunString(Format(obj)); err != nil {
			return false
		}
		if len(in.Stack) != 1 {
			return false
		}
		return structurallyEqual(obj, in.Stack[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRollProperty: n j roll is a rotation — applying it n times with
// j=1 restores the stack.
func TestRollProperty(t *testing.T) {
	f := func(vals []int64) bool {
		n := len(vals)
		if n == 0 || n > 20 {
			return true
		}
		in := New()
		for _, v := range vals {
			in.Push(Int(v))
		}
		for i := 0; i < n; i++ {
			in.Push(Int(int64(n)), Int(1))
			if err := in.RunString("roll"); err != nil {
				return false
			}
		}
		for i, v := range vals {
			if in.Stack[i].I != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDictPutGetProperty: what you put is what you get, and Len counts
// distinct keys.
func TestDictPutGetProperty(t *testing.T) {
	f := func(keys []string, vals []int64) bool {
		d := NewDict(0)
		want := map[string]int64{}
		for i, k := range keys {
			var v int64
			if len(vals) > 0 {
				v = vals[i%len(vals)]
			}
			d.PutName(k, Int(v))
			want[k] = v
		}
		if d.Len() != len(want) {
			return false
		}
		for k, v := range want {
			got, ok := d.GetName(k)
			if !ok || got.I != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestArithEvalProperty: PS integer arithmetic matches Go's int64.
func TestArithEvalProperty(t *testing.T) {
	in := New()
	f := func(a, b int64) bool {
		in.Stack = in.Stack[:0]
		in.Push(Int(a), Int(b))
		if err := in.RunString("add"); err != nil || in.Stack[0].I != a+b {
			return false
		}
		in.Stack = in.Stack[:0]
		in.Push(Int(a), Int(b))
		if err := in.RunString("mul"); err != nil || in.Stack[0].I != a*b {
			return false
		}
		if b != 0 {
			in.Stack = in.Stack[:0]
			in.Push(Int(a), Int(b))
			if err := in.RunString("idiv"); err != nil || in.Stack[0].I != a/b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrettyLineBreaking(t *testing.T) {
	in := New()
	var buf strings.Builder
	in.Stdout = &buf
	in.Pretty.Width = 24
	// An array print through the debugger's own mechanism: long content
	// breaks at Break points and indents to the Begin column.
	src := `({) Put 2 Begin 1 1 12 { (, ) Put 0 Break (element) Put } for End (}) Put`
	if err := in.RunString(src); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "\n") {
		t.Fatalf("no line breaks in %q", out)
	}
	for _, line := range strings.Split(out, "\n")[1:] {
		if line != "" && !strings.HasPrefix(line, "  ") {
			t.Fatalf("continuation not indented: %q", line)
		}
	}
}

func TestExitInsideForallAndRepeat(t *testing.T) {
	in := New()
	if err := in.RunString("0 [1 2 3 4 5] { dup 3 eq {pop exit} if add } forall"); err != nil {
		t.Fatal(err)
	}
	if in.Stack[len(in.Stack)-1].I != 3 {
		t.Fatalf("forall exit: %v", in.Stack)
	}
	in = New()
	if err := in.RunString("0 10 { 1 add dup 4 eq {exit} if } repeat"); err != nil {
		t.Fatal(err)
	}
	if in.Stack[len(in.Stack)-1].I != 4 {
		t.Fatalf("repeat exit: %v", in.Stack)
	}
}

func TestNestedStopped(t *testing.T) {
	in := New()
	if err := in.RunString("{ {stop} stopped } stopped"); err != nil {
		t.Fatal(err)
	}
	// inner stopped caught the stop → true; outer sees no stop → false.
	if len(in.Stack) != 2 || in.Stack[0].B != true || in.Stack[1].B != false {
		t.Fatalf("nested stopped: %v", in.Stack)
	}
}

func TestDeepNestingScan(t *testing.T) {
	// Deeply nested procedures scan and execute without trouble.
	src := strings.Repeat("{ ", 50) + "42" + strings.Repeat(" }", 50) + strings.Repeat(" exec", 50)
	in := New()
	if err := in.RunString(src); err != nil {
		t.Fatal(err)
	}
	if in.Stack[0].I != 42 {
		t.Fatalf("nested exec: %v", in.Stack)
	}
}

// TestInterpreterSurvivesGarbage: random token soup must terminate
// with a normal error, never panic or hang (MaxSteps bounds loops).
func TestInterpreterSurvivesGarbage(t *testing.T) {
	tokens := []string{
		"1", "2.5", "(s)", "/n", "name", "add", "sub", "mul", "idiv",
		"dup", "pop", "exch", "roll", "index", "copy", "def", "load",
		"begin", "end", "dict", "get", "put", "known", "if", "ifelse",
		"for", "repeat", "loop", "exit", "stop", "stopped", "forall",
		"[", "]", "<<", ">>", "{", "}", "cvx", "cvlit", "cvi", "cvs",
		"exec", "mark", "cleartomark", "aload", "astore", "length",
		"16#ff", "true", "false", "null", "==", "=",
	}
	r := newDetRand(99)
	for i := 0; i < 400; i++ {
		n := r(50)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteString(tokens[r(len(tokens))])
			b.WriteByte(' ')
		}
		in := New()
		in.MaxSteps = 200_000
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("panic on %q: %v", b.String(), p)
				}
			}()
			_ = in.RunString(b.String())
		}()
	}
}

// newDetRand is a tiny deterministic generator (xorshift) so the fuzz
// corpus is reproducible without importing math/rand here.
func newDetRand(seed uint64) func(int) int {
	s := seed
	return func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
}
