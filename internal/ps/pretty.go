package ps

import (
	"io"
	"strings"
)

// Pretty is a small prettyprinter in the spirit of the one supplied with
// Modula-3 (§5): PostScript code that prints structured data calls it
// through the Put, Break, Begin, and End operators. Begin/End bracket a
// group with an indentation amount; Break marks an optional break point
// that becomes a newline (indented to the enclosing group) only when the
// current line would overflow the width.
type Pretty struct {
	w      io.Writer
	Width  int
	col    int
	indent []int
	err    error
}

// NewPretty returns a prettyprinter writing to w with the default width.
func NewPretty(w io.Writer) *Pretty {
	return &Pretty{w: w, Width: 79}
}

func (p *Pretty) write(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s)
}

// Put emits text on the current line.
func (p *Pretty) Put(s string) {
	for {
		nl := strings.IndexByte(s, '\n')
		if nl < 0 {
			break
		}
		p.write(s[:nl+1])
		p.col = 0
		s = s[nl+1:]
	}
	p.write(s)
	p.col += len(s)
}

// Begin opens a group whose continuation lines indent by extra columns
// relative to the column at which the group began.
func (p *Pretty) Begin(extra int) {
	p.indent = append(p.indent, p.col+extra)
}

// End closes the innermost group.
func (p *Pretty) End() {
	if len(p.indent) > 0 {
		p.indent = p.indent[:len(p.indent)-1]
	}
}

// Break emits a newline (plus indentation) if the line is already past
// the width less slack columns; otherwise it emits nothing.
func (p *Pretty) Break(slack int) {
	if p.col+slack < p.Width {
		return
	}
	ind := 0
	if len(p.indent) > 0 {
		ind = p.indent[len(p.indent)-1]
	}
	p.write("\n")
	p.write(strings.Repeat(" ", ind))
	p.col = ind
}

// Err reports the first write error, if any.
func (p *Pretty) Err() error { return p.err }

// registerPrettyOps installs the prettyprinter interface used by the
// PostScript code that prints structured data.
func registerPrettyOps(in *Interp) {
	in.Register("Put", func(in *Interp) error {
		o, err := in.Pop()
		if err != nil {
			return err
		}
		in.Pretty.Put(Cvs(o))
		return in.Pretty.Err()
	})
	in.Register("Begin", func(in *Interp) error {
		n, err := in.PopInt("Begin")
		if err != nil {
			return err
		}
		in.Pretty.Begin(int(n))
		return nil
	})
	in.Register("End", func(in *Interp) error {
		in.Pretty.End()
		return nil
	})
	in.Register("Break", func(in *Interp) error {
		n, err := in.PopInt("Break")
		if err != nil {
			return err
		}
		in.Pretty.Break(int(n))
		return nil
	})
}
