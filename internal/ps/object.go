// Package ps implements the dialect of PostScript embedded in ldb.
//
// Following the paper (§5), the dialect omits the font and imaging types
// and operators of full PostScript and adds types and operators for
// debugging (abstract memories and locations are registered by higher
// layers as extension objects). Strings are immutable, there are no
// save/restore operators (the Go garbage collector reclaims memory),
// there are no substrings or subarrays, interpreter errors are ordinary
// Go errors, and files are readers or writers.
package ps

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind identifies the type of a PostScript object.
type Kind uint8

// The object kinds of the dialect.
const (
	KNull Kind = iota
	KBool
	KInt
	KReal
	KName
	KString
	KArray
	KDict
	KOperator
	KMark
	KFile
	KExt
)

var kindNames = [...]string{
	KNull:     "nulltype",
	KBool:     "booleantype",
	KInt:      "integertype",
	KReal:     "realtype",
	KName:     "nametype",
	KString:   "stringtype",
	KArray:    "arraytype",
	KDict:     "dicttype",
	KOperator: "operatortype",
	KMark:     "marktype",
	KFile:     "filetype",
	KExt:      "exttype",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Ext is implemented by extension objects (abstract memories, locations,
// target handles) that higher layers embed in the interpreter.
type Ext interface {
	// ExtType names the extension type; the PostScript `type` operator
	// reports it and type checks compare against it.
	ExtType() string
}

// Object is a PostScript object. The zero value is the null object.
type Object struct {
	Kind Kind
	// Exec reports whether the object carries the executable attribute.
	// Every object tells explicitly whether it is literal or executable
	// (§5); the distinction is never inferred from context.
	Exec bool

	B  bool
	I  int64
	R  float64
	S  string // payload of names and strings
	A  *Array
	D  *Dict
	Op *Operator
	F  *File
	X  Ext
}

// Array is the backing store of an array object. Arrays are mutable;
// the dialect has no subarrays, so every array object owns its storage.
type Array struct {
	E []Object
}

// Operator is a built-in operator.
type Operator struct {
	Name string
	Fn   func(*Interp) error
}

// File is a reader or writer usable from PostScript. Executing an
// executable file object reads and executes tokens from it until EOF or
// until a `stop`; this is how ldb applies "cvx stopped" to the open pipe
// from the expression server (§3).
type File struct {
	Name string
	R    io.Reader
	W    io.Writer
	sc   *Scanner
}

// Null returns the null object.
func Null() Object { return Object{Kind: KNull} }

// Boolean returns a boolean object.
func Boolean(b bool) Object { return Object{Kind: KBool, B: b} }

// Int returns an integer object.
func Int(i int64) Object { return Object{Kind: KInt, I: i} }

// Real returns a real object.
func Real(r float64) Object { return Object{Kind: KReal, R: r} }

// Str returns an (immutable) string object.
func Str(s string) Object { return Object{Kind: KString, S: s} }

// LitName returns a literal name, as written /name.
func LitName(s string) Object { return Object{Kind: KName, S: s} }

// ExecName returns an executable name, as written bare.
func ExecName(s string) Object { return Object{Kind: KName, S: s, Exec: true} }

// Mark returns a mark object.
func Mark() Object { return Object{Kind: KMark} }

// ArrayObj returns a literal array object wrapping elems.
func ArrayObj(elems ...Object) Object {
	return Object{Kind: KArray, A: &Array{E: elems}}
}

// Proc returns an executable array (a procedure) wrapping elems.
func Proc(elems ...Object) Object {
	return Object{Kind: KArray, Exec: true, A: &Array{E: elems}}
}

// DictObj returns a dictionary object wrapping d.
func DictObj(d *Dict) Object { return Object{Kind: KDict, D: d} }

// ExtObj wraps an extension value as a literal object.
func ExtObj(x Ext) Object { return Object{Kind: KExt, X: x} }

// FileObj wraps a file as a literal object.
func FileObj(f *File) Object { return Object{Kind: KFile, F: f} }

// OpObj wraps an operator (always executable).
func OpObj(name string, fn func(*Interp) error) Object {
	return Object{Kind: KOperator, Exec: true, Op: &Operator{Name: name, Fn: fn}}
}

// IsNumber reports whether o is an integer or a real.
func (o Object) IsNumber() bool { return o.Kind == KInt || o.Kind == KReal }

// Num returns the numeric value of an integer or real object.
func (o Object) Num() float64 {
	if o.Kind == KInt {
		return float64(o.I)
	}
	return o.R
}

// TypeName returns the name reported by the `type` operator.
func (o Object) TypeName() string {
	if o.Kind == KExt && o.X != nil {
		return o.X.ExtType()
	}
	return o.Kind.String()
}

// Equal reports object equality in the sense of the `eq` operator:
// numbers compare by value across int/real, strings and names compare by
// text (and to each other, as in PostScript), composites by identity.
func Equal(a, b Object) bool {
	textual := func(o Object) (string, bool) {
		if o.Kind == KString || o.Kind == KName {
			return o.S, true
		}
		return "", false
	}
	if sa, ok := textual(a); ok {
		if sb, ok := textual(b); ok {
			return sa == sb
		}
		return false
	}
	if a.IsNumber() && b.IsNumber() {
		return a.Num() == b.Num()
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KNull, KMark:
		return true
	case KBool:
		return a.B == b.B
	case KArray:
		return a.A == b.A
	case KDict:
		return a.D == b.D
	case KOperator:
		return a.Op == b.Op
	case KFile:
		return a.F == b.F
	case KExt:
		return a.X == b.X
	}
	return false
}

// Format renders o the way the `==` operator would.
func Format(o Object) string {
	var b strings.Builder
	formatInto(&b, o, 0)
	return b.String()
}

const maxFormatDepth = 8

func formatInto(b *strings.Builder, o Object, depth int) {
	if depth > maxFormatDepth {
		b.WriteString("...")
		return
	}
	switch o.Kind {
	case KNull:
		b.WriteString("null")
	case KBool:
		b.WriteString(strconv.FormatBool(o.B))
	case KInt:
		b.WriteString(strconv.FormatInt(o.I, 10))
	case KReal:
		s := strconv.FormatFloat(o.R, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		b.WriteString(s)
	case KName:
		if !o.Exec {
			b.WriteByte('/')
		}
		b.WriteString(o.S)
	case KString:
		b.WriteByte('(')
		for _, c := range []byte(o.S) {
			switch c {
			case '(', ')', '\\':
				b.WriteByte('\\')
				b.WriteByte(c)
			case '\n':
				b.WriteString(`\n`)
			case '\t':
				b.WriteString(`\t`)
			default:
				b.WriteByte(c)
			}
		}
		b.WriteByte(')')
	case KArray:
		open, close := "[", "]"
		if o.Exec {
			open, close = "{", "}"
		}
		b.WriteString(open)
		for i, e := range o.A.E {
			if i > 0 || true {
				b.WriteByte(' ')
			}
			formatInto(b, e, depth+1)
			_ = i
		}
		b.WriteByte(' ')
		b.WriteString(close)
	case KDict:
		b.WriteString("<<")
		for _, k := range o.D.Keys() {
			v, _ := o.D.Get(k)
			b.WriteByte(' ')
			formatInto(b, k, depth+1)
			b.WriteByte(' ')
			formatInto(b, v, depth+1)
		}
		b.WriteString(" >>")
	case KOperator:
		fmt.Fprintf(b, "--%s--", o.Op.Name)
	case KMark:
		b.WriteString("-mark-")
	case KFile:
		fmt.Fprintf(b, "-file:%s-", o.F.Name)
	case KExt:
		if s, ok := o.X.(fmt.Stringer); ok {
			fmt.Fprintf(b, "-%s:%s-", o.TypeName(), s)
		} else {
			fmt.Fprintf(b, "-%s-", o.TypeName())
		}
	default:
		b.WriteString("-unknown-")
	}
}

// Cvs renders o the way the `cvs`/`=` operators would: strings are their
// own text, names their text, numbers and booleans their printed form,
// and everything else the `==` form.
func Cvs(o Object) string {
	switch o.Kind {
	case KString, KName:
		return o.S
	case KInt:
		return strconv.FormatInt(o.I, 10)
	case KReal:
		return Format(o)
	case KBool:
		return strconv.FormatBool(o.B)
	default:
		return Format(o)
	}
}
