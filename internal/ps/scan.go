package ps

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Scanner reads PostScript tokens. `{ ... }` bodies are scanned into
// executable arrays; `[`, `]`, `<<`, and `>>` are returned as executable
// names and interpreted by operators of the same name.
type Scanner struct {
	r    *bufio.Reader
	name string
	line int
}

// NewScanner returns a scanner reading from r; name labels errors.
func NewScanner(r io.Reader, name string) *Scanner {
	return &Scanner{r: bufio.NewReader(r), name: name, line: 1}
}

// NewStringScanner scans the given source text.
func NewStringScanner(src, name string) *Scanner {
	return NewScanner(strings.NewReader(src), name)
}

func (s *Scanner) errf(format string, args ...any) error {
	return &Error{Name: "syntaxerror", Cmd: fmt.Sprintf("%s:%d: %s", s.name, s.line, fmt.Sprintf(format, args...))}
}

func (s *Scanner) readByte() (byte, error) {
	c, err := s.r.ReadByte()
	if c == '\n' {
		s.line++
	}
	return c, err
}

func (s *Scanner) unread(c byte) {
	if c == '\n' {
		s.line--
	}
	_ = s.r.UnreadByte()
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == 0
}

func isDelim(c byte) bool {
	switch c {
	case '(', ')', '<', '>', '[', ']', '{', '}', '/', '%':
		return true
	}
	return false
}

// Next returns the next token, or io.EOF when the input is exhausted.
func (s *Scanner) Next() (Object, error) {
	for {
		c, err := s.readByte()
		if err != nil {
			return Object{}, err
		}
		switch {
		case isSpace(c):
			continue
		case c == '%':
			for {
				c, err = s.readByte()
				if err == io.EOF {
					break
				}
				if err != nil {
					return Object{}, err
				}
				if c == '\n' {
					break
				}
			}
			continue
		case c == '(':
			return s.scanString()
		case c == '{':
			return s.scanProc()
		case c == '}':
			return Object{}, s.errf("unmatched }")
		case c == '/':
			name, err := s.scanName()
			if err != nil {
				return Object{}, err
			}
			return LitName(name), nil
		case c == '[' || c == ']':
			return ExecName(string(c)), nil
		case c == '<':
			c2, err := s.readByte()
			if err == nil && c2 == '<' {
				return ExecName("<<"), nil
			}
			if err == nil {
				s.unread(c2)
			}
			return Object{}, s.errf("hex strings are not in the dialect")
		case c == '>':
			c2, err := s.readByte()
			if err == nil && c2 == '>' {
				return ExecName(">>"), nil
			}
			if err == nil {
				s.unread(c2)
			}
			return Object{}, s.errf("unexpected >")
		case c == ')':
			return Object{}, s.errf("unmatched )")
		default:
			s.unread(c)
			word, err := s.scanWord()
			if err != nil {
				return Object{}, err
			}
			if o, ok := parseNumber(word); ok {
				return o, nil
			}
			return ExecName(word), nil
		}
	}
}

func (s *Scanner) scanWord() (string, error) {
	var b strings.Builder
	for {
		c, err := s.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", err
		}
		if isSpace(c) || isDelim(c) {
			s.unread(c)
			break
		}
		b.WriteByte(c)
	}
	if b.Len() == 0 {
		return "", s.errf("empty token")
	}
	return b.String(), nil
}

func (s *Scanner) scanName() (string, error) {
	var b strings.Builder
	for {
		c, err := s.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", err
		}
		if isSpace(c) || isDelim(c) {
			s.unread(c)
			break
		}
		b.WriteByte(c)
	}
	return b.String(), nil
}

func (s *Scanner) scanString() (Object, error) {
	var b strings.Builder
	depth := 1
	for {
		c, err := s.readByte()
		if err != nil {
			return Object{}, s.errf("unterminated string")
		}
		switch c {
		case '\\':
			c2, err := s.readByte()
			if err != nil {
				return Object{}, s.errf("unterminated string escape")
			}
			switch c2 {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '\n':
				// line continuation: nothing
			case '(', ')', '\\':
				b.WriteByte(c2)
			default:
				if c2 >= '0' && c2 <= '7' {
					v := int(c2 - '0')
					for i := 0; i < 2; i++ {
						c3, err := s.readByte()
						if err != nil {
							break
						}
						if c3 < '0' || c3 > '7' {
							s.unread(c3)
							break
						}
						v = v*8 + int(c3-'0')
					}
					b.WriteByte(byte(v))
				} else {
					b.WriteByte(c2)
				}
			}
		case '(':
			depth++
			b.WriteByte(c)
		case ')':
			depth--
			if depth == 0 {
				return Str(b.String()), nil
			}
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
}

func (s *Scanner) scanProc() (Object, error) {
	var elems []Object
	for {
		c, err := s.readByte()
		if err != nil {
			return Object{}, s.errf("unterminated procedure")
		}
		if isSpace(c) {
			continue
		}
		if c == '}' {
			return Proc(elems...), nil
		}
		s.unread(c)
		tok, err := s.Next()
		if err != nil {
			if err == io.EOF {
				return Object{}, s.errf("unterminated procedure")
			}
			return Object{}, err
		}
		elems = append(elems, tok)
	}
}

// parseNumber recognizes integers, reals, and radix literals like
// 16#000023d8 (§3 uses radix-16 addresses in loader tables).
func parseNumber(word string) (Object, bool) {
	if word == "" {
		return Object{}, false
	}
	if i := strings.IndexByte(word, '#'); i > 0 {
		base, err := strconv.ParseInt(word[:i], 10, 32)
		if err != nil || base < 2 || base > 36 {
			return Object{}, false
		}
		v, err := strconv.ParseInt(word[i+1:], int(base), 64)
		if err != nil {
			// Addresses can fill 32 bits; retry unsigned.
			u, uerr := strconv.ParseUint(word[i+1:], int(base), 64)
			if uerr != nil {
				return Object{}, false
			}
			return Int(int64(u)), true
		}
		return Int(v), true
	}
	if v, err := strconv.ParseInt(word, 10, 64); err == nil {
		return Int(v), true
	}
	if v, err := strconv.ParseFloat(word, 64); err == nil {
		// Require a leading digit, sign, or dot so that names such as
		// `e10` are not misread as numbers.
		c := word[0]
		if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' {
			return Real(v), true
		}
	}
	return Object{}, false
}
