package ps

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// Error is a PostScript interpreter error. Interpreter errors surface as
// Go errors (the paper's dialect raised Modula-3 exceptions); `stopped`
// catches them.
type Error struct {
	Name string // e.g. "typecheck", "undefined", "stackunderflow"
	Cmd  string // offending command or context
}

func (e *Error) Error() string {
	if e.Cmd == "" {
		return "ps: " + e.Name
	}
	return fmt.Sprintf("ps: %s in %s", e.Name, e.Cmd)
}

func typecheck(cmd string, got Object) error {
	return &Error{Name: "typecheck", Cmd: fmt.Sprintf("%s (got %s)", cmd, got.TypeName())}
}

func undefined(name string) error {
	return &Error{Name: "undefined", Cmd: name}
}

// errStop is raised by the `stop` operator and caught by `stopped`.
var errStop = errors.New("ps: stop")

// errExit is raised by `exit` and caught by the looping operators.
var errExit = errors.New("ps: exit")

// Interp is an instance of the embedded interpreter. One interpreter
// supports code in symbol-table entries and expression evaluation (§3).
type Interp struct {
	// Stack is the operand stack; Stack[len-1] is the top.
	Stack []Object
	// DStack is the dictionary stack; DStack[len-1] is searched first.
	// The dictionary stack is distinct from the call stack and is
	// explicitly controlled by the PostScript program (§5): when ldb
	// changes architectures it rebinds machine-dependent names by
	// pushing a per-architecture dictionary here.
	DStack []*Dict

	// Stdout receives the output of print, =, ==, and pstack.
	Stdout io.Writer

	// Pretty is the prettyprinter driven by Put/Break/Begin/End.
	Pretty *Pretty

	// MaxSteps bounds execution (a defense against runaway symbol-table
	// code); zero means the default.
	MaxSteps int64

	// MaxDepth bounds nested procedure and scanner execution; zero means
	// the default. Like MaxSteps it defends against hostile symbol-table
	// code — here, unbounded recursion.
	MaxDepth int

	systemdict *Dict
	userdict   *Dict
	steps      int64
	depth      int
}

const (
	defaultMaxSteps = 200_000_000
	maxExecDepth    = 400
)

// New returns an interpreter with the system and user dictionaries on
// the dictionary stack and all built-in operators defined.
func New() *Interp {
	in := &Interp{
		Stdout:     io.Discard,
		systemdict: NewDict(256),
		userdict:   NewDict(64),
	}
	in.Pretty = NewPretty(&stdoutOf{in})
	in.DStack = []*Dict{in.systemdict, in.userdict}
	in.systemdict.PutName("systemdict", DictObj(in.systemdict))
	in.systemdict.PutName("userdict", DictObj(in.userdict))
	in.systemdict.PutName("true", Boolean(true))
	in.systemdict.PutName("false", Boolean(false))
	in.systemdict.PutName("null", Null())
	registerAll(in)
	return in
}

// stdoutOf indirects through in.Stdout so the prettyprinter follows
// later reassignments of Stdout.
type stdoutOf struct{ in *Interp }

func (w *stdoutOf) Write(p []byte) (int, error) { return w.in.Stdout.Write(p) }

// SystemDict returns the system dictionary, where embedders register
// debugging operators.
func (in *Interp) SystemDict() *Dict { return in.systemdict }

// UserDict returns the user dictionary.
func (in *Interp) UserDict() *Dict { return in.userdict }

// Register defines a built-in operator in the system dictionary.
func (in *Interp) Register(name string, fn func(*Interp) error) {
	in.systemdict.PutName(name, OpObj(name, fn))
}

// Push pushes objects onto the operand stack.
func (in *Interp) Push(objs ...Object) {
	in.Stack = append(in.Stack, objs...)
}

// Pop removes and returns the top of the operand stack.
func (in *Interp) Pop() (Object, error) {
	if len(in.Stack) == 0 {
		return Object{}, &Error{Name: "stackunderflow"}
	}
	o := in.Stack[len(in.Stack)-1]
	in.Stack = in.Stack[:len(in.Stack)-1]
	return o, nil
}

// Top returns the top of the operand stack without removing it.
func (in *Interp) Top() (Object, error) {
	if len(in.Stack) == 0 {
		return Object{}, &Error{Name: "stackunderflow"}
	}
	return in.Stack[len(in.Stack)-1], nil
}

// PopKind pops an object, requiring the given kind.
func (in *Interp) PopKind(k Kind, cmd string) (Object, error) {
	o, err := in.Pop()
	if err != nil {
		return o, err
	}
	if o.Kind != k {
		return o, typecheck(cmd, o)
	}
	return o, nil
}

// PopInt pops an integer.
func (in *Interp) PopInt(cmd string) (int64, error) {
	o, err := in.PopKind(KInt, cmd)
	return o.I, err
}

// PopNum pops an integer or real as float64.
func (in *Interp) PopNum(cmd string) (float64, error) {
	o, err := in.Pop()
	if err != nil {
		return 0, err
	}
	if !o.IsNumber() {
		return 0, typecheck(cmd, o)
	}
	return o.Num(), nil
}

// PopBool pops a boolean.
func (in *Interp) PopBool(cmd string) (bool, error) {
	o, err := in.PopKind(KBool, cmd)
	return o.B, err
}

// PopString pops a string and returns its text.
func (in *Interp) PopString(cmd string) (string, error) {
	o, err := in.PopKind(KString, cmd)
	return o.S, err
}

// PopName pops a name or string and returns its text.
func (in *Interp) PopName(cmd string) (string, error) {
	o, err := in.Pop()
	if err != nil {
		return "", err
	}
	if o.Kind != KName && o.Kind != KString {
		return "", typecheck(cmd, o)
	}
	return o.S, nil
}

// PopDict pops a dictionary.
func (in *Interp) PopDict(cmd string) (*Dict, error) {
	o, err := in.PopKind(KDict, cmd)
	return o.D, err
}

// PopArray pops an array (literal or executable).
func (in *Interp) PopArray(cmd string) (*Array, error) {
	o, err := in.Pop()
	if err != nil {
		return nil, err
	}
	if o.Kind != KArray {
		return nil, typecheck(cmd, o)
	}
	return o.A, nil
}

// PopProc pops a procedure (executable array) object.
func (in *Interp) PopProc(cmd string) (Object, error) {
	o, err := in.Pop()
	if err != nil {
		return o, err
	}
	if o.Kind != KArray || !o.Exec {
		return o, typecheck(cmd, o)
	}
	return o, nil
}

// PopExt pops an extension object of the given extension type.
func (in *Interp) PopExt(extType, cmd string) (Ext, error) {
	o, err := in.Pop()
	if err != nil {
		return nil, err
	}
	if o.Kind != KExt || o.X == nil || o.X.ExtType() != extType {
		return nil, typecheck(cmd+" expects "+extType, o)
	}
	return o.X, nil
}

// Lookup searches the dictionary stack for name.
func (in *Interp) Lookup(name string) (Object, bool) {
	for i := len(in.DStack) - 1; i >= 0; i-- {
		if v, ok := in.DStack[i].GetName(name); ok {
			return v, true
		}
	}
	return Object{}, false
}

// LookupWhere searches the dictionary stack, also returning the
// dictionary holding the binding.
func (in *Interp) LookupWhere(name string) (Object, *Dict, bool) {
	for i := len(in.DStack) - 1; i >= 0; i-- {
		if v, ok := in.DStack[i].GetName(name); ok {
			return v, in.DStack[i], true
		}
	}
	return Object{}, nil, false
}

// Def defines name in the current (topmost) dictionary.
func (in *Interp) Def(name string, val Object) {
	in.DStack[len(in.DStack)-1].PutName(name, val)
}

func (in *Interp) maxDepth() int {
	if in.MaxDepth > 0 {
		return in.MaxDepth
	}
	return maxExecDepth
}

// WithBudget runs f with execution bounded by a step and depth budget
// relative to the work the interpreter has already done, restoring the
// previous limits afterward. Embedders use it to run untrusted code —
// a loader's symbol table, say — without letting a hostile table spend
// the whole default allowance or recurse to a Go stack overflow. A
// non-positive budget leaves that limit untouched.
func (in *Interp) WithBudget(steps int64, depth int, f func() error) error {
	oldSteps, oldDepth := in.MaxSteps, in.MaxDepth
	if steps > 0 {
		in.MaxSteps = in.steps + steps
	}
	if depth > 0 {
		in.MaxDepth = in.depth + depth
	}
	defer func() { in.MaxSteps, in.MaxDepth = oldSteps, oldDepth }()
	return f()
}

func (in *Interp) tick() error {
	in.steps++
	limit := in.MaxSteps
	if limit == 0 {
		limit = defaultMaxSteps
	}
	if in.steps > limit {
		return &Error{Name: "timeout", Cmd: "step limit exceeded"}
	}
	return nil
}

// Exec executes a single object encountered by the interpreter:
// literal objects push themselves (attempts to execute a literal object
// put that object on the stack, §5); executable names are looked up and
// their values executed; operators run; procedures encountered here are
// pushed (they execute only via names, exec, or control operators).
func (in *Interp) Exec(o Object) error {
	if err := in.tick(); err != nil {
		return err
	}
	if !o.Exec {
		in.Push(o)
		return nil
	}
	switch o.Kind {
	case KName:
		v, ok := in.Lookup(o.S)
		if !ok {
			return undefined(o.S)
		}
		return in.execValue(v)
	case KOperator:
		return o.Op.Fn(in)
	case KArray, KString, KFile:
		// An executable procedure/string/file reached as interpreter
		// input is data: push it. (The body of a procedure token is
		// deferred; see execValue.)
		in.Push(o)
		return nil
	default:
		in.Push(o)
		return nil
	}
}

// execValue executes the value of a name binding or the operand of
// `exec`: procedures run their elements; executable strings are scanned
// and executed (the deferral technique of §5); executable files are read
// and executed until EOF; operators run; anything else is pushed.
func (in *Interp) execValue(v Object) error {
	if err := in.tick(); err != nil {
		return err
	}
	if !v.Exec {
		in.Push(v)
		return nil
	}
	switch v.Kind {
	case KOperator:
		return v.Op.Fn(in)
	case KArray:
		return in.runProc(v)
	case KName:
		vv, ok := in.Lookup(v.S)
		if !ok {
			return undefined(v.S)
		}
		return in.execValue(vv)
	case KString:
		return in.runScanner(NewStringScanner(v.S, "<string>"))
	case KFile:
		if v.F.sc == nil {
			if v.F.R == nil {
				return &Error{Name: "ioerror", Cmd: "execute write-only file " + v.F.Name}
			}
			v.F.sc = NewScanner(v.F.R, v.F.Name)
		}
		return in.runScanner(v.F.sc)
	default:
		in.Push(v)
		return nil
	}
}

func (in *Interp) runProc(p Object) error {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > in.maxDepth() {
		return &Error{Name: "execstackoverflow"}
	}
	for _, e := range p.A.E {
		if err := in.Exec(e); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) runScanner(sc *Scanner) error {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > in.maxDepth() {
		return &Error{Name: "execstackoverflow"}
	}
	for {
		tok, err := sc.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := in.Exec(tok); err != nil {
			return err
		}
	}
}

// ExecProc executes a procedure (or any executable value) the way the
// `exec` operator would.
func (in *Interp) ExecProc(o Object) error { return in.execValue(o) }

// Run scans and executes PostScript source from r; name labels errors.
func (in *Interp) Run(r io.Reader, name string) error {
	return in.runScanner(NewScanner(r, name))
}

// RunString scans and executes the given source text.
func (in *Interp) RunString(src string) error {
	return in.runScanner(NewStringScanner(src, "<string>"))
}

// RunStringNamed scans and executes src, labeling errors with name.
func (in *Interp) RunStringNamed(src, name string) error {
	return in.runScanner(NewStringScanner(src, name))
}

// Eval runs src and returns the object left on top of the stack.
func (in *Interp) Eval(src string) (Object, error) {
	if err := in.RunString(src); err != nil {
		return Object{}, err
	}
	return in.Pop()
}

// Stopped executes proc the way the `stopped` operator does and reports
// whether a stop (or interpreter error) occurred.
func (in *Interp) Stopped(proc Object) (bool, error) {
	err := in.execValue(proc)
	if err == nil {
		return false, nil
	}
	var pe *Error
	if errors.Is(err, errStop) || errors.As(err, &pe) {
		return true, nil
	}
	// errExit outside a loop, or a Go-level failure: propagate.
	return false, err
}

func (in *Interp) printf(format string, args ...any) {
	fmt.Fprintf(in.Stdout, format, args...)
}

// StackDump renders the operand stack, top first, like pstack.
func (in *Interp) StackDump() string {
	var b strings.Builder
	for i := len(in.Stack) - 1; i >= 0; i-- {
		b.WriteString(Format(in.Stack[i]))
		b.WriteByte('\n')
	}
	return b.String()
}
