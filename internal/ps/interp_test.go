package ps

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// eval runs src in a fresh interpreter and returns the resulting stack.
func eval(t *testing.T, src string) []Object {
	t.Helper()
	in := New()
	if err := in.RunString(src); err != nil {
		t.Fatalf("RunString(%q): %v", src, err)
	}
	return in.Stack
}

// evalTop runs src and returns the single object left on the stack.
func evalTop(t *testing.T, src string) Object {
	t.Helper()
	st := eval(t, src)
	if len(st) != 1 {
		t.Fatalf("eval(%q) left %d objects on the stack, want 1", src, len(st))
	}
	return st[0]
}

func wantInt(t *testing.T, src string, want int64) {
	t.Helper()
	o := evalTop(t, src)
	if o.Kind != KInt || o.I != want {
		t.Fatalf("eval(%q) = %s, want %d", src, Format(o), want)
	}
}

func wantReal(t *testing.T, src string, want float64) {
	t.Helper()
	o := evalTop(t, src)
	if o.Kind != KReal || o.R != want {
		t.Fatalf("eval(%q) = %s, want %g", src, Format(o), want)
	}
}

func wantBool(t *testing.T, src string, want bool) {
	t.Helper()
	o := evalTop(t, src)
	if o.Kind != KBool || o.B != want {
		t.Fatalf("eval(%q) = %s, want %v", src, Format(o), want)
	}
}

func wantString(t *testing.T, src string, want string) {
	t.Helper()
	o := evalTop(t, src)
	if o.Kind != KString || o.S != want {
		t.Fatalf("eval(%q) = %s, want (%s)", src, Format(o), want)
	}
}

func wantErr(t *testing.T, src, errName string) {
	t.Helper()
	in := New()
	err := in.RunString(src)
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("eval(%q): err = %v, want *ps.Error %q", src, err, errName)
	}
	if pe.Name != errName {
		t.Fatalf("eval(%q): error %q, want %q", src, pe.Name, errName)
	}
}

func TestArithmetic(t *testing.T) {
	wantInt(t, "3 4 add", 7)
	wantInt(t, "10 4 sub", 6)
	wantInt(t, "6 7 mul", 42)
	wantInt(t, "17 5 idiv", 3)
	wantInt(t, "17 5 mod", 2)
	wantReal(t, "7 2 div", 3.5)
	wantInt(t, "5 neg", -5)
	wantInt(t, "-5 abs", 5)
	wantReal(t, "1.5 2.5 add", 4.0)
	wantReal(t, "1 2.5 add", 3.5)
	wantInt(t, "1 3 bitshift", 8)
	wantInt(t, "8 -3 bitshift", 1)
	wantInt(t, "12 10 and", 8)
	wantInt(t, "12 10 or", 14)
	wantInt(t, "12 10 xor", 6)
	wantInt(t, "0 not", -1)
	wantReal(t, "2.7 truncate", 2.0)
	wantReal(t, "2.5 round", 3.0)
	wantReal(t, "2.7 floor", 2.0)
	wantReal(t, "2.1 ceiling", 3.0)
	wantReal(t, "9 sqrt", 3.0)
}

func TestArithmeticErrors(t *testing.T) {
	wantErr(t, "1 0 idiv", "undefinedresult")
	wantErr(t, "1 0 mod", "undefinedresult")
	wantErr(t, "1 0 div", "undefinedresult")
	wantErr(t, "(x) 1 add", "typecheck")
	wantErr(t, "add", "stackunderflow")
	wantErr(t, "-1 sqrt", "rangecheck")
}

func TestStackOps(t *testing.T) {
	wantInt(t, "1 2 pop", 1)
	wantInt(t, "1 2 exch pop", 2)
	wantInt(t, "5 dup add", 10)
	st := eval(t, "1 2 3 2 copy")
	if len(st) != 5 || st[3].I != 2 || st[4].I != 3 {
		t.Fatalf("copy: got %v", st)
	}
	wantInt(t, "10 20 30 2 index pop pop pop", 10)
	st = eval(t, "1 2 3 3 1 roll")
	if st[0].I != 3 || st[1].I != 1 || st[2].I != 2 {
		t.Fatalf("roll: got %v %v %v", st[0].I, st[1].I, st[2].I)
	}
	st = eval(t, "1 2 3 3 -1 roll")
	if st[0].I != 2 || st[1].I != 3 || st[2].I != 1 {
		t.Fatalf("roll -1: got %v %v %v", st[0].I, st[1].I, st[2].I)
	}
	wantInt(t, "1 2 3 clear 9", 9)
	wantInt(t, "7 8 count exch pop exch pop", 2)
	wantInt(t, "mark 1 2 3 counttomark exch pop exch pop exch pop exch pop", 3)
	if st := eval(t, "5 mark 1 2 3 cleartomark"); len(st) != 1 || st[0].I != 5 {
		t.Fatalf("cleartomark: got %v", st)
	}
}

func TestRelational(t *testing.T) {
	wantBool(t, "1 1 eq", true)
	wantBool(t, "1 2 eq", false)
	wantBool(t, "1 1.0 eq", true)
	wantBool(t, "(abc) (abc) eq", true)
	wantBool(t, "(abc) /abc eq", true) // strings and names compare by text
	wantBool(t, "1 2 ne", true)
	wantBool(t, "2 1 gt", true)
	wantBool(t, "1 1 ge", true)
	wantBool(t, "1 2 lt", true)
	wantBool(t, "(a) (b) lt", true)
	wantBool(t, "true false and", false)
	wantBool(t, "true false or", true)
	wantBool(t, "true not", false)
}

func TestControl(t *testing.T) {
	wantInt(t, "true {1} {2} ifelse", 1)
	wantInt(t, "false {1} {2} ifelse", 2)
	wantInt(t, "0 true {1 add} if", 1)
	wantInt(t, "0 false {1 add} if", 0)
	wantInt(t, "0 1 1 10 {add} for", 55)
	wantInt(t, "0 5 {1 add} repeat", 5)
	wantInt(t, "0 { 1 add dup 7 eq {exit} if } loop", 7)
	wantInt(t, "0 1 1 100 { dup 5 gt {pop exit} if add } for", 15)
	wantInt(t, "{3 4 add} exec", 7)
}

func TestStoppedAndStop(t *testing.T) {
	wantBool(t, "{1 2 add pop} stopped", false)
	wantBool(t, "{stop} stopped", true)
	wantBool(t, "{1 0 idiv} stopped", true) // errors behave like stop
	// exit inside stopped but outside a loop is an error, not a stop.
	in := New()
	err := in.RunString("{exit} stopped")
	if err == nil {
		t.Fatal("exit outside loop inside stopped: want error")
	}
}

func TestDictOps(t *testing.T) {
	wantInt(t, "/x 42 def x", 42)
	wantInt(t, "<< /a 1 /b 2 >> /b get", 2)
	wantInt(t, "<< /a 1 >> dup /c 3 put /c get", 3)
	wantBool(t, "<< /a 1 >> /a known", true)
	wantBool(t, "<< /a 1 >> /b known", false)
	wantInt(t, "<< /a 1 /b 2 >> length", 2)
	wantInt(t, "5 dict dup /k 9 put /k get", 9)
	wantInt(t, "/d << /v 10 >> def d begin v end", 10)
	wantInt(t, "/x 1 def /x 2 store x", 2)
	wantBool(t, "/x 5 def /x where exch pop", true)
	wantBool(t, "/no-such-name-xyz where", false)
	wantInt(t, "/x 3 def /x load", 3)
	wantErr(t, "undefined-name-abc", "undefined")
	wantInt(t, "0 << /a 1 /b 2 /c 3 >> { exch pop add } forall", 6)
	// undef removes a binding
	wantBool(t, "/d << /a 1 /b 2 >> def d /a undef d /a known", false)
}

func TestDictInsertionOrderForall(t *testing.T) {
	in := New()
	var got []string
	in.Register("record", func(in *Interp) error {
		s, err := in.PopName("record")
		if err != nil {
			return err
		}
		got = append(got, s)
		return nil
	})
	if err := in.RunString("<< /z 1 /a 2 /m 3 >> { pop record } forall"); err != nil {
		t.Fatal(err)
	}
	want := []string{"z", "a", "m"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forall order = %v, want %v", got, want)
		}
	}
}

func TestArrayOps(t *testing.T) {
	wantInt(t, "[1 2 3] length", 3)
	wantInt(t, "[1 2 3] 1 get", 2)
	wantInt(t, "[1 2 3] dup 1 99 put 1 get", 99)
	wantInt(t, "3 array length", 3)
	wantInt(t, "0 [1 2 3 4] {add} forall", 10)
	st := eval(t, "[10 20] aload")
	if len(st) != 3 || st[0].I != 10 || st[1].I != 20 || st[2].Kind != KArray {
		t.Fatalf("aload: got %v", st)
	}
	wantInt(t, "7 8 2 array astore 1 get", 8)
	wantInt(t, "[ 1 2 3 ] 2 get", 3)
}

func TestStringOps(t *testing.T) {
	wantInt(t, "(hello) length", 5)
	wantInt(t, "(abc) 1 get", int64('b'))
	wantErr(t, "(abc) 0 88 put", "invalidaccess") // immutable strings
	wantString(t, "(nested (parens) ok)", "nested (parens) ok")
	wantString(t, "(tab\\there)", "tab\there")
	wantInt(t, "0 (ab) {add} forall", int64('a'+'b'))
}

func TestConversions(t *testing.T) {
	wantInt(t, "3.9 cvi", 3)
	wantReal(t, "3 cvr", 3.0)
	wantInt(t, "(42) cvi", 42)
	wantString(t, "42 cvs", "42")
	wantString(t, "/name cvs", "name")
	wantString(t, "true cvs", "true")
	wantBool(t, "{1} xcheck", true)
	wantBool(t, "[1] xcheck", false)
	wantBool(t, "(x) cvx xcheck", true)
	wantBool(t, "(x) cvx cvlit xcheck", false)
	o := evalTop(t, "(foo) cvn")
	if o.Kind != KName || o.S != "foo" {
		t.Fatalf("cvn: got %s", Format(o))
	}
	o = evalTop(t, "1 type")
	if o.Kind != KName || o.S != "integertype" {
		t.Fatalf("type: got %s", Format(o))
	}
}

func TestExecutableStringDeferral(t *testing.T) {
	// §5: lexical analysis of quoted code is deferred; executing the
	// string with cvx exec scans and runs it.
	wantInt(t, "(3 4 add) cvx exec", 7)
	// A deferred procedure replaced by its result.
	wantInt(t, "/p (10 20 mul) cvx def p", 200)
}

func TestRadixNumbers(t *testing.T) {
	wantInt(t, "16#000023d8", 0x23d8)
	wantInt(t, "16#ff", 255)
	wantInt(t, "2#1010", 10)
	wantInt(t, "8#777", 511)
}

func TestProcedureAndRecursion(t *testing.T) {
	wantInt(t, "/fact { dup 1 le { pop 1 } { dup 1 sub fact mul } ifelse } def 6 fact", 720)
	wantInt(t, "/fib { dup 2 lt { pop 1 } { dup 1 sub fib exch 2 sub fib add } ifelse } def 10 fib", 89)
}

func TestSymbolTableShape(t *testing.T) {
	// The exact shape used for symbol-table entries in §2.
	src := `
/S10 <<
  /name (i)
  /type << /decl (int %s) /printer {42} >>
  /sourcefile (fib.c)
  /sourcey 6
  /sourcex 8
  /kind (variable)
  /where 30
>> def
S10 /sourcey get
S10 /type get /printer get exec
`
	st := eval(t, src)
	if len(st) != 2 || st[0].I != 6 || st[1].I != 42 {
		t.Fatalf("symbol-table shape: got %v", st)
	}
}

func TestOutput(t *testing.T) {
	in := New()
	var buf strings.Builder
	in.Stdout = &buf
	if err := in.RunString("(hello) print 42 = [1 2] =="); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "hello42\n[ 1 2 ]\n"
	if got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}

func TestPrettyOps(t *testing.T) {
	in := New()
	var buf strings.Builder
	in.Stdout = &buf
	if err := in.RunString("({) Put 0 Begin (a) Put 200 Break (b) Put End (}) Put"); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "{a\n") || !strings.Contains(got, "b}") {
		t.Fatalf("pretty output = %q", got)
	}
}

func TestExecutableFile(t *testing.T) {
	// Executing an executable file object reads and runs tokens until
	// EOF — how ldb listens to the expression server.
	in := New()
	f := &File{Name: "pipe", R: strings.NewReader("1 2 add 4 mul")}
	in.Push(FileObj(f))
	if err := in.RunString("cvx exec"); err != nil {
		t.Fatal(err)
	}
	if len(in.Stack) != 1 || in.Stack[0].I != 12 {
		t.Fatalf("file exec: stack %v", in.Stack)
	}
}

func TestFileStoppedStopsListening(t *testing.T) {
	// "cvx stopped" applied to the open pipe (§3): the server sends
	// tokens, then `stop` tells ldb to stop listening.
	in := New()
	f := &File{Name: "pipe", R: strings.NewReader("10 20 add stop ignored tokens")}
	in.Push(FileObj(f))
	if err := in.RunString("cvx stopped"); err != nil {
		t.Fatal(err)
	}
	if len(in.Stack) != 2 {
		t.Fatalf("stack = %v", in.Stack)
	}
	if in.Stack[1].Kind != KBool || !in.Stack[1].B {
		t.Fatalf("stopped = %s, want true", Format(in.Stack[1]))
	}
	if in.Stack[0].I != 30 {
		t.Fatalf("result = %s, want 30", Format(in.Stack[0]))
	}
}

func TestDictStackArchitectureSwitch(t *testing.T) {
	// §5: when ldb changes architectures it rebinds machine-dependent
	// names by placing a per-architecture dictionary on the dict stack.
	in := New()
	if err := in.RunString(`
/mips << /WordSize 4 /Endian (big) >> def
/vax  << /WordSize 4 /Endian (little) >> def
mips begin Endian end
vax begin Endian end
`); err != nil {
		t.Fatal(err)
	}
	if in.Stack[0].S != "big" || in.Stack[1].S != "little" {
		t.Fatalf("architecture switch: %v", in.Stack)
	}
}

func TestComments(t *testing.T) {
	wantInt(t, "1 % a comment\n2 add", 3)
	wantInt(t, "% only a comment\n5", 5)
}

func TestScannerErrors(t *testing.T) {
	for _, src := range []string{"(unterminated", "{ unterminated", ")", "}", ">"} {
		in := New()
		err := in.RunString(src)
		var pe *Error
		if !errors.As(err, &pe) || pe.Name != "syntaxerror" {
			t.Fatalf("eval(%q): err = %v, want syntaxerror", src, err)
		}
	}
}

func TestExecDepthLimit(t *testing.T) {
	in := New()
	err := in.RunString("/f { f } def f")
	var pe *Error
	if !errors.As(err, &pe) || pe.Name != "execstackoverflow" {
		t.Fatalf("infinite recursion: err = %v, want execstackoverflow", err)
	}
}

func TestStepLimit(t *testing.T) {
	in := New()
	in.MaxSteps = 10_000
	err := in.RunString("{ } loop")
	var pe *Error
	if !errors.As(err, &pe) || pe.Name != "timeout" {
		t.Fatalf("runaway loop: err = %v, want timeout", err)
	}
}

func TestBind(t *testing.T) {
	in := New()
	if err := in.RunString("/p {1 2 add} bind def /add {sub} def p"); err != nil {
		t.Fatal(err)
	}
	if in.Stack[len(in.Stack)-1].I != 3 {
		t.Fatalf("bind did not freeze operator: %v", in.Stack)
	}
}

func TestEqualComposites(t *testing.T) {
	a := ArrayObj(Int(1))
	if !Equal(a, a) {
		t.Fatal("array must equal itself")
	}
	if Equal(a, ArrayObj(Int(1))) {
		t.Fatal("distinct arrays must not be eq")
	}
	d := NewDict(0)
	if !Equal(DictObj(d), DictObj(d)) {
		t.Fatal("dict must equal itself")
	}
}

func TestRunReader(t *testing.T) {
	in := New()
	if err := in.Run(strings.NewReader("1 2 add"), "test"); err != nil {
		t.Fatal(err)
	}
	if in.Stack[0].I != 3 {
		t.Fatalf("Run: stack %v", in.Stack)
	}
}

func TestEval(t *testing.T) {
	in := New()
	o, err := in.Eval("2 3 mul")
	if err != nil || o.I != 6 {
		t.Fatalf("Eval = %v, %v", o, err)
	}
	if _, err := in.Eval("clear"); err == nil {
		t.Fatal("Eval of empty-stack program should error on Pop")
	}
}

func TestEOFMidProc(t *testing.T) {
	var r io.Reader = strings.NewReader("{ 1 2")
	in := New()
	if err := in.Run(r, "x"); err == nil {
		t.Fatal("want error for EOF inside procedure")
	}
}

func TestEmbedderHelpers(t *testing.T) {
	in := New()
	// Def defines in the top dictionary; SystemDict/UserDict expose the
	// two permanent dictionaries for embedders.
	in.Def("answer", Int(42))
	if v, ok := in.UserDict().GetName("answer"); !ok || v.I != 42 {
		t.Fatalf("Def into userdict: %v %v", v, ok)
	}
	if _, ok := in.SystemDict().GetName("add"); !ok {
		t.Fatal("add missing from systemdict")
	}
	if err := in.RunString("[1 2 3]"); err != nil {
		t.Fatal(err)
	}
	a, err := in.PopArray("test")
	if err != nil || len(a.E) != 3 {
		t.Fatalf("PopArray: %v %v", a, err)
	}
	in.Push(Int(5))
	if _, err := in.PopArray("test"); err == nil {
		t.Fatal("PopArray accepted an int")
	}
	// pstack renders the stack top-first without consuming it.
	var buf strings.Builder
	in.Stdout = &buf
	in.Push(Int(1), Str("two"))
	if err := in.RunString("pstack"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "(two)\n1\n" {
		t.Fatalf("pstack = %q", buf.String())
	}
	if len(in.Stack) != 2 {
		t.Fatalf("pstack consumed the stack: %v", in.Stack)
	}
}

func TestNonNameDictKeys(t *testing.T) {
	// PostScript dictionaries accept any object as a key; integers and
	// reals compare numerically (1 and 1.0 are the same key).
	in := New()
	src := `<< 1 (one) true (yes) null (nil) >>`
	if err := in.RunString(src); err != nil {
		t.Fatal(err)
	}
	d, err := in.PopDict("test")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Get(Int(1)); !ok || v.S != "one" {
		t.Fatalf("int key: %v %v", v, ok)
	}
	if v, ok := d.Get(Real(1.0)); !ok || v.S != "one" {
		t.Fatalf("real 1.0 key should equal int 1: %v %v", v, ok)
	}
	if v, ok := d.Get(Boolean(true)); !ok || v.S != "yes" {
		t.Fatalf("bool key: %v %v", v, ok)
	}
	if v, ok := d.Get(Null()); !ok || v.S != "nil" {
		t.Fatalf("null key: %v %v", v, ok)
	}
	// Composite keys compare by identity.
	a1 := ArrayObj(Int(1))
	a2 := ArrayObj(Int(1))
	d.Put(a1, Str("first"))
	if _, ok := d.Get(a2); ok {
		t.Fatal("distinct arrays share a key")
	}
	if v, ok := d.Get(a1); !ok || v.S != "first" {
		t.Fatalf("array identity key: %v %v", v, ok)
	}
	// A mark cannot be a key.
	in2 := New()
	if err := in2.RunString("<< mark (v) >> pop"); err == nil {
		t.Fatal("mark accepted as dict key")
	}
}
