package codegen

import (
	"fmt"
	"strings"

	"ldb/internal/cc"
)

// memType maps a scalar C type to its access width and signedness.
func memType(t *cc.Type) MemType {
	switch t.Kind {
	case cc.TyChar:
		return MI8
	case cc.TyShort:
		return MI16
	default:
		return M32
	}
}

// floatSize maps a floating C type to its abstract-memory size.
func (g *gen) floatSize(t *cc.Type) int {
	switch t.Kind {
	case cc.TyFloat:
		return 4
	case cc.TyLDouble:
		if g.em.Conf().LDoubleSize == 12 {
			return 10
		}
		return 8
	default:
		return 8
	}
}

// isLeaf reports whether e can be evaluated into an arbitrary register
// without disturbing T or the evaluation stack.
func (g *gen) isLeaf(e *cc.Expr) bool {
	switch e.Op {
	case cc.EConst:
		return true
	case cc.EIdent:
		return e.Sym != nil && e.Sym.Kind != cc.SymFunc && e.Type.IsInteger() ||
			(e.Sym != nil && e.Type.Kind == cc.TyPtr)
	}
	return false
}

// genLeaf evaluates a leaf into register r. The address goes through
// the V scratch register so consecutive statements' address
// computations are independent of the accumulator — freedom the MIPS
// delay-slot scheduler exploits (§3).
func (g *gen) genLeaf(e *cc.Expr, r int) {
	switch e.Op {
	case cc.EConst:
		g.em.Const(r, int32(e.IVal))
	case cc.EIdent:
		ar := g.leafAddrReg()
		g.genAddrLeafInto(e.Sym, ar)
		g.em.Load(r, ar, memType(e.Type))
	default:
		panic("codegen: genLeaf on non-leaf")
	}
}

// leafAddrReg alternates between the two address scratch registers so
// consecutive leaf accesses are register-independent: that is what
// gives the MIPS delay-slot scheduler instructions to move (§3).
func (g *gen) leafAddrReg() int {
	g.leafAlt = !g.leafAlt
	if g.leafAlt {
		return regV
	}
	return regW
}

func (g *gen) genAddrLeafInto(sym *cc.Symbol, r int) {
	if sym.Storage == cc.Auto {
		g.em.AddrLocal(r, sym.FrameOff)
	} else {
		g.em.AddrGlobal(r, sym.Label, 0)
	}
}

// genOperands evaluates L and R (integer/pointer case) and reports
// which registers hold them: when R is a leaf it loads straight into U
// (L stays in T); otherwise L spills around R and pops into U.
func (g *gen) genOperands(l, r *cc.Expr) (la, rb int) {
	if g.isLeaf(r) {
		g.genExpr(l)
		g.genLeaf(r, regU)
		return regT, regU
	}
	g.genExpr(l)
	g.push(regT)
	g.genExpr(r)
	g.pop(regU)
	return regU, regT
}

// genAddr leaves the address of lvalue e in T.
func (g *gen) genAddr(e *cc.Expr) {
	switch e.Op {
	case cc.EIdent:
		g.genAddrLeafInto(e.Sym, regT)
	case cc.EDeref:
		g.genExpr(e.L)
	case cc.EMember:
		g.genAddr(e.L)
		if e.Field.Off != 0 {
			g.em.Const(regU, int32(e.Field.Off))
			g.em.BinOp(OpAdd, regT, regT, regU)
		}
	case cc.EString:
		g.em.AddrGlobal(regT, g.strLabel(int(e.IVal)), 0)
	case cc.ECall, cc.EAssign, cc.ECond, cc.EComma:
		if isAgg(e.Type) {
			g.genExpr(e) // aggregate values are addresses already
			return
		}
		g.errf(e.Pos, "cannot take the address of this expression")
	default:
		g.errf(e.Pos, "cannot take the address of this expression")
	}
}

func (g *gen) strLabel(i int) string { return fmt.Sprintf(".str%d", i) }

func (g *gen) fconstLabel(v float64) string {
	for i, f := range g.fconsts {
		if f == v {
			return fmt.Sprintf(".fc%d", i)
		}
	}
	g.fconsts = append(g.fconsts, v)
	return fmt.Sprintf(".fc%d", len(g.fconsts)-1)
}

// loadFConst materializes a float constant into float register fr,
// using integer scratch r for the address.
func (g *gen) loadFConst(v float64, fr, r int) {
	if v == float64(int32(v)) {
		g.em.Const(r, int32(v))
		g.em.CvtIF(fr, r)
		return
	}
	g.em.AddrGlobal(r, g.fconstLabel(v), 0)
	g.em.LoadF(fr, r, 8)
}

// isAgg reports whether t is a struct or union — a value the walker
// represents by its address.
func isAgg(t *cc.Type) bool {
	return t != nil && (t.Kind == cc.TyStruct || t.Kind == cc.TyUnion)
}

// aggWords returns an aggregate's size in words. The front end fixes
// aggregate alignment (and hence size) at a word multiple on every
// target (see cc.Type.Align), so struct copies, arguments, and returns
// are pure word loops — no target ever assembles partial words, which
// would drag byte order into the machine-independent walker.
func (g *gen) aggWords(t *cc.Type) int {
	return (t.Size(g.em.Conf()) + 3) / 4
}

// structCopy copies an aggregate word by word from the address in src
// to the address in dst. It clobbers V and W but preserves dst and src.
func (g *gen) structCopy(dst, src int, words int) {
	for w := 0; w < words; w++ {
		g.em.Const(regW, int32(4*w))
		g.em.BinOp(OpAdd, regW, src, regW)
		g.em.Load(regW, regW, M32)
		g.em.Const(regV, int32(4*w))
		g.em.BinOp(OpAdd, regV, dst, regV)
		g.em.Store(regW, regV, M32)
	}
}

// elemSize returns the pointee size for pointer arithmetic.
func (g *gen) elemSize(t *cc.Type) int32 {
	if t.Kind != cc.TyPtr || t.Base == nil {
		return 1
	}
	return int32(t.Base.Size(g.em.Conf()))
}

// genExpr evaluates e into T (integers and pointers) or FT (floats).
func (g *gen) genExpr(e *cc.Expr) {
	if e == nil {
		return
	}
	switch e.Op {
	case cc.EConst:
		g.em.Const(regT, int32(e.IVal))
	case cc.EFConst:
		g.loadFConst(e.FVal, regT, regT)
	case cc.EString:
		g.genAddr(e)
	case cc.EIdent:
		sym := e.Sym
		if sym == nil {
			g.em.Const(regT, 0)
			return
		}
		if sym.Kind == cc.SymFunc {
			g.em.AddrGlobal(regT, sym.Label, 0)
			return
		}
		if e.Type.Kind == cc.TyArray || isAgg(e.Type) {
			g.genAddrLeafInto(sym, regT) // address is the value for aggregates
			return
		}
		ar := g.leafAddrReg()
		g.genAddrLeafInto(sym, ar)
		if isFloat(e.Type) {
			g.em.LoadF(regT, ar, g.floatSize(e.Type))
		} else {
			g.em.Load(regT, ar, memType(e.Type))
		}
	case cc.EAddr:
		if e.L.Op == cc.EIdent && e.L.Sym != nil && e.L.Sym.Kind == cc.SymFunc {
			g.em.AddrGlobal(regT, e.L.Sym.Label, 0)
			return
		}
		g.genAddr(e.L)
	case cc.EDeref:
		g.genExpr(e.L)
		if e.Type.Kind == cc.TyArray || e.Type.Kind == cc.TyStruct || e.Type.Kind == cc.TyUnion || e.Type.Kind == cc.TyFunc {
			return // address is the value for aggregates
		}
		if isFloat(e.Type) {
			g.em.LoadF(regT, regT, g.floatSize(e.Type))
		} else {
			g.em.Load(regT, regT, memType(e.Type))
		}
	case cc.EMember:
		g.genAddr(e)
		if e.Type.Kind == cc.TyArray || e.Type.Kind == cc.TyStruct || e.Type.Kind == cc.TyUnion {
			return
		}
		if isFloat(e.Type) {
			g.em.LoadF(regT, regT, g.floatSize(e.Type))
		} else {
			g.em.Load(regT, regT, memType(e.Type))
		}
	case cc.EAssign:
		g.genAssign(e)
	case cc.ECast:
		g.genCast(e)
	case cc.ECall:
		g.genCall(e)
	case cc.ENeg:
		g.genExpr(e.L)
		if isFloat(e.Type) {
			g.em.FNeg(regT, regT)
		} else {
			g.em.Neg(regT, regT)
		}
	case cc.EBitNot:
		g.genExpr(e.L)
		g.em.Com(regT, regT)
	case cc.ELogNot, cc.ELogAnd, cc.ELogOr, cc.EEq, cc.ENe, cc.ELt, cc.ELe, cc.EGt, cc.EGe:
		lTrue := g.label("true")
		lEnd := g.label("bool")
		g.genCondTrue(e, lTrue)
		g.em.Const(regT, 0)
		g.em.Branch(lEnd)
		g.em.Label(lTrue)
		g.em.Const(regT, 1)
		g.em.Label(lEnd)
	case cc.EAdd, cc.ESub, cc.EMul, cc.EDiv, cc.ERem, cc.EAnd, cc.EOr, cc.EXor, cc.EShl, cc.EShr:
		g.genBinary(e)
	case cc.EPostInc, cc.EPostDec, cc.EPreInc, cc.EPreDec:
		g.genIncDec(e)
	case cc.EComma:
		g.genExpr(e.L) // for effect
		g.genExpr(e.R)
	case cc.ECond:
		lElse := g.label("celse")
		lEnd := g.label("cend")
		g.genCondFalse(e.L, lElse)
		g.genExpr(e.Args[0])
		g.em.Branch(lEnd)
		g.em.Label(lElse)
		g.genExpr(e.Args[1])
		g.em.Label(lEnd)
	default:
		g.errf(e.Pos, "codegen: unhandled expression %v", e.Op)
	}
}

func (g *gen) genBinary(e *cc.Expr) {
	if isFloat(e.Type) {
		var op Op
		switch e.Op {
		case cc.EAdd:
			op = OpAdd
		case cc.ESub:
			op = OpSub
		case cc.EMul:
			op = OpMul
		case cc.EDiv:
			op = OpDiv
		default:
			g.errf(e.Pos, "invalid float operator %v", e.Op)
			return
		}
		g.genExpr(e.L)
		g.pushF(regT)
		g.genExpr(e.R)
		g.popF(regU)
		g.em.FBinOp(op, regT, regU, regT)
		return
	}
	// Pointer arithmetic scales by the element size.
	if e.Type.Kind == cc.TyPtr && (e.Op == cc.EAdd || e.Op == cc.ESub) && e.R.Type.IsInteger() {
		size := g.elemSize(e.Type)
		g.genExpr(e.L)
		g.push(regT)
		g.genExpr(e.R)
		if size != 1 {
			g.em.Move(regU, regT)
			g.em.Const(regT, size)
			g.em.BinOp(OpMul, regT, regU, regT)
		}
		g.pop(regU)
		op := OpAdd
		if e.Op == cc.ESub {
			op = OpSub
		}
		g.em.BinOp(op, regT, regU, regT)
		return
	}
	// Pointer difference divides by the element size.
	if e.Op == cc.ESub && e.L.Type.Kind == cc.TyPtr && e.R.Type.Kind == cc.TyPtr {
		la, rb := g.genOperands(e.L, e.R)
		g.em.BinOp(OpSub, regT, la, rb)
		if size := g.elemSize(e.L.Type); size != 1 {
			g.em.Move(regU, regT)
			g.em.Const(regT, size)
			g.em.BinOp(OpDiv, regT, regU, regT)
		}
		return
	}
	var op Op
	switch e.Op {
	case cc.EAdd:
		op = OpAdd
	case cc.ESub:
		op = OpSub
	case cc.EMul:
		op = OpMul
	case cc.EDiv:
		op = OpDiv
	case cc.ERem:
		op = OpRem
	case cc.EAnd:
		op = OpAnd
	case cc.EOr:
		op = OpOr
	case cc.EXor:
		op = OpXor
	case cc.EShl:
		op = OpShl
	case cc.EShr:
		if e.L.Type.Kind == cc.TyUInt {
			op = OpShrU
		} else {
			op = OpShr
		}
	}
	la, rb := g.genOperands(e.L, e.R)
	g.em.BinOp(op, regT, la, rb)
}

func (g *gen) genAssign(e *cc.Expr) {
	if isAgg(e.Type) {
		// Struct assignment: both sides evaluate to addresses; copy
		// word by word. The destination address is the expression's
		// value (so s1 = s2 = s3 chains).
		words := g.aggWords(e.Type)
		g.genExpr(e.R) // source address
		g.push(regT)
		g.genAddr(e.L) // destination address
		g.pop(regU)
		g.structCopy(regT, regU, words)
		return
	}
	if isFloat(e.Type) {
		// Evaluate the address first: calls inside the value would
		// clobber FT, and calls inside the address would clobber FT if
		// the value went first, so the address is spilled around the
		// value computation.
		size := g.floatSize(e.Type)
		if e.L.Op == cc.EIdent {
			g.genExpr(e.R)
			g.genAddrLeafInto(e.L.Sym, regT)
			g.em.StoreF(regT, regT, size)
			return
		}
		g.genAddr(e.L)
		g.push(regT)
		g.genExpr(e.R)
		g.pop(regT)
		g.em.StoreF(regT, regT, size)
		return
	}
	if l := e.L; l.Op == cc.EIdent {
		g.genExpr(e.R)
		ar := g.leafAddrReg()
		g.genAddrLeafInto(l.Sym, ar)
		g.em.Store(regT, ar, memType(e.Type))
		return
	}
	g.genExpr(e.R)
	g.push(regT)
	g.genAddr(e.L)
	g.pop(regU)
	g.em.Store(regU, regT, memType(e.Type))
	g.em.Move(regT, regU) // the assignment's value
}

func (g *gen) genCast(e *cc.Expr) {
	from, to := e.L.Type, e.Type
	g.genExpr(e.L)
	switch {
	case from.IsInteger() && to.IsFloat():
		// Unsigned sources convert as signed (documented subset
		// restriction); values above 2^31 are rare in the workloads.
		g.em.CvtIF(regT, regT)
		if to.Kind == cc.TyFloat {
			g.em.RoundSingle(regT)
		}
	case from.IsFloat() && to.IsInteger():
		g.em.CvtFI(regT, regT)
		g.narrow(to)
	case from.IsFloat() && to.IsFloat():
		if to.Kind == cc.TyFloat {
			g.em.RoundSingle(regT)
		}
	case to.Kind == cc.TyVoid:
	default:
		g.narrow(to)
	}
}

// narrow truncates/extends the value in T to an integer subtype.
func (g *gen) narrow(to *cc.Type) {
	var bits int32
	switch to.Kind {
	case cc.TyChar:
		bits = 24
	case cc.TyShort:
		bits = 16
	default:
		return
	}
	g.em.Const(regU, bits)
	g.em.BinOp(OpShl, regT, regT, regU)
	g.em.BinOp(OpShr, regT, regT, regU)
}

func (g *gen) genIncDec(e *cc.Expr) {
	if isFloat(e.Type) {
		size := g.floatSize(e.Type)
		g.genAddr(e.L)
		g.em.Move(regV, regT) // V = address
		g.em.LoadF(regT, regV, size)
		g.loadFConst(1, regU, regU)
		op := OpAdd
		if e.Op == cc.EPostDec || e.Op == cc.EPreDec {
			op = OpSub
		}
		g.em.FBinOp(op, regU, regT, regU) // FU = old ± 1
		g.em.StoreF(regU, regV, size)
		if e.Op == cc.EPreInc || e.Op == cc.EPreDec {
			g.em.FMove(regT, regU)
		}
		// post forms leave the old value in FT
		return
	}
	delta := int32(1)
	if e.Type.Kind == cc.TyPtr {
		delta = g.elemSize(e.Type)
	}
	op := OpAdd
	if e.Op == cc.EPostDec || e.Op == cc.EPreDec {
		op = OpSub
	}
	g.genAddr(e.L)
	g.em.Move(regV, regT) // V = address
	g.em.Load(regT, regV, memType(e.Type))
	g.em.Const(regU, delta)
	g.em.BinOp(op, regU, regT, regU) // U = new value
	g.em.Store(regU, regV, memType(e.Type))
	if e.Op == cc.EPreInc || e.Op == cc.EPreDec {
		g.em.Move(regT, regU)
	}
	// post forms leave the old value in T
}

func (g *gen) genCall(e *cc.Expr) {
	// printf with a constant format expands into runtime output calls.
	if id := e.L; id.Op == cc.EIdent && id.Sym != nil && id.Sym.Name == "printf" {
		g.genPrintf(e)
		return
	}
	words := 0
	argWords := func(a *cc.Expr) int {
		if isFloat(a.Type) {
			return 2
		}
		if isAgg(a.Type) {
			return g.aggWords(a.Type)
		}
		return 1
	}
	for _, a := range e.Args {
		words += argWords(a)
	}
	pushArg := func(a *cc.Expr) {
		if isAgg(a.Type) {
			g.pushAgg(a)
			return
		}
		g.genExpr(a)
		if isFloat(a.Type) {
			g.pushF(regT)
		} else {
			g.push(regT)
		}
	}
	if g.em.ArgsLeftToRight() {
		for _, a := range e.Args {
			pushArg(a)
		}
	} else {
		for i := len(e.Args) - 1; i >= 0; i-- {
			pushArg(e.Args[i])
		}
	}
	if words > g.maxArgs {
		g.maxArgs = words
	}
	switch {
	case e.L.Op == cc.EIdent && e.L.Sym != nil && e.L.Sym.Kind == cc.SymFunc:
		g.em.Call(e.L.Sym.Label, words, g.depth)
	default:
		g.genExpr(e.L) // function pointer value
		g.em.CallInd(regT, words, g.depth)
	}
	g.depth -= words
	switch {
	case e.Type.Kind == cc.TyVoid:
	case isFloat(e.Type):
		g.em.FResult(regT)
	default:
		// For aggregate-returning calls the return register carries the
		// address of the callee's static return buffer (see genStmt
		// SReturn), so Result leaves exactly the address the walker
		// expects for an aggregate value.
		g.em.Result(regT)
	}
}

// pushAgg pushes a struct or union argument word by word. On the
// left-to-right targets (MIPS block-copies evaluation slots into the
// outgoing area in push order) word 0 goes first; the right-to-left
// stack targets push descending, so the order is reversed to land word
// 0 at the lowest address either way.
func (g *gen) pushAgg(a *cc.Expr) {
	words := g.aggWords(a.Type)
	g.genExpr(a) // aggregate value = its address, in T
	if g.em.ArgsLeftToRight() {
		for w := 0; w < words; w++ {
			g.pushAggWord(w)
		}
	} else {
		for w := words - 1; w >= 0; w-- {
			g.pushAggWord(w)
		}
	}
}

// pushAggWord pushes word w of the aggregate whose address is in T.
func (g *gen) pushAggWord(w int) {
	g.em.Const(regU, int32(4*w))
	g.em.BinOp(OpAdd, regU, regT, regU)
	g.em.Load(regU, regU, M32)
	g.push(regU)
}

// genPrintf expands printf("fmt", args...) into calls to the runtime
// output routines (_putstr, _putint, _putchar, _putfloat); the
// simulated OS implements those with write system calls.
func (g *gen) genPrintf(e *cc.Expr) {
	if len(e.Args) == 0 {
		g.errf(e.Pos, "printf requires a constant format string")
		return
	}
	fmtArg := e.Args[0]
	if fmtArg.Op == cc.EAddr && fmtArg.L != nil {
		fmtArg = fmtArg.L // the literal decayed to &"..."[0]
	}
	if fmtArg.Op != cc.EString {
		g.errf(e.Pos, "printf requires a constant format string")
		return
	}
	format := fmtArg.SVal
	args := e.Args[1:]
	nextArg := func() *cc.Expr {
		if len(args) == 0 {
			g.errf(e.Pos, "printf: not enough arguments for format %q", format)
			return nil
		}
		a := args[0]
		args = args[1:]
		return a
	}
	call1 := func(fn string, a *cc.Expr) {
		if a == nil {
			return
		}
		words := 1
		g.genExpr(a)
		if isFloat(a.Type) {
			words = 2
			g.pushF(regT)
		} else {
			g.push(regT)
		}
		if words > g.maxArgs {
			g.maxArgs = words
		}
		g.em.Call(fn, words, g.depth)
		g.depth -= words
	}
	emitText := func(s string) {
		if s == "" {
			return
		}
		idx := g.internString(s)
		lit := &cc.Expr{Op: cc.EString, Type: cc.ArrayOf(cc.CharType, len(s)+1), IVal: int64(idx), SVal: s}
		addr := &cc.Expr{Op: cc.EAddr, Type: cc.PtrTo(cc.CharType), L: lit}
		call1("_putstr", addr)
	}
	var text strings.Builder
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			text.WriteByte(c)
			continue
		}
		i++
		switch format[i] {
		case '%':
			text.WriteByte('%')
		case 'd', 'i':
			emitText(text.String())
			text.Reset()
			call1("_putint", nextArg())
		case 'c':
			emitText(text.String())
			text.Reset()
			call1("_putchar", nextArg())
		case 's':
			emitText(text.String())
			text.Reset()
			call1("_putstr", nextArg())
		case 'x':
			emitText(text.String())
			text.Reset()
			call1("_puthex", nextArg())
		case 'u':
			emitText(text.String())
			text.Reset()
			call1("_putuint", nextArg())
		case 'f', 'g', 'e':
			emitText(text.String())
			text.Reset()
			call1("_putfloat", nextArg())
		default:
			g.errf(e.Pos, "printf: unsupported conversion %%%c", format[i])
		}
	}
	emitText(text.String())
	if len(args) > 0 {
		g.errf(e.Pos, "printf: too many arguments for format %q", format)
	}
	g.em.Const(regT, 0) // printf's value
}

func (g *gen) internString(s string) int {
	for i, t := range g.u.Strings {
		if t == s {
			return i
		}
	}
	g.u.Strings = append(g.u.Strings, s)
	return len(g.u.Strings) - 1
}
