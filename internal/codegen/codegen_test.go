package codegen

import (
	"testing"
	"testing/quick"

	"ldb/internal/arch"
	_ "ldb/internal/arch/m68k"
	_ "ldb/internal/arch/mips"
	_ "ldb/internal/arch/sparc"
	_ "ldb/internal/arch/vax"
	"ldb/internal/cc"
)

func TestCondNegateInvolution(t *testing.T) {
	f := func(raw uint8) bool {
		c := Cond(raw % 10)
		return c.Negate().Negate() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Negation never maps signed to unsigned or vice versa.
	for c := CondEq; c <= CondGeU; c++ {
		unsigned := c >= CondLtU
		nu := c.Negate() >= CondLtU
		if c != CondEq && c != CondNe && unsigned != nu {
			t.Errorf("negate crosses signedness: %v → %v", c, c.Negate())
		}
	}
}

func TestMemTypeWidths(t *testing.T) {
	if MI8.Width() != 1 || MU8.Width() != 1 || MI16.Width() != 2 || MU16.Width() != 2 || M32.Width() != 4 {
		t.Fatal("widths")
	}
}

func TestNewEmitterForAllTargets(t *testing.T) {
	for _, name := range []string{"mips", "mipsbe", "sparc", "m68k", "vax"} {
		a, ok := arch.Lookup(name)
		if !ok {
			t.Fatal(name)
		}
		em := NewEmitterFor(a)
		if em.Conf().Name != name {
			t.Errorf("conf name %q for %s", em.Conf().Name, name)
		}
		// Runtime units exist and define the output routines.
		rt := em.Runtime(true)
		for _, sym := range []string{"_start", "_putint", "_putchar", "_putstr", "_putfloat"} {
			if _, ok := rt.FindSym(sym); !ok {
				t.Errorf("%s runtime missing %s", name, sym)
			}
		}
		if rt.Instrs == 0 {
			t.Errorf("%s runtime has no instruction count", name)
		}
		// Debug runtimes pause before main and are longer than plain
		// ones.
		plain := NewEmitterFor(a).Runtime(false)
		if len(rt.Text) <= len(plain.Text) {
			t.Errorf("%s: debug runtime not longer (pause trap missing?)", name)
		}
	}
}

func TestNewEmitterForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEmitterFor(fakeArch{})
}

type fakeArch struct{ arch.Arch }

func (fakeArch) Name() string { return "pdp11" }

// TestAssignFrameInvariants checks every target's frame layout: all
// parameter offsets distinct and on the incoming side, all local
// offsets distinct and on the frame side, nothing overlapping.
func TestAssignFrameInvariants(t *testing.T) {
	src := `
int f(int a, double b, char c, int *d) {
	int x;
	double y;
	char z;
	int w[3];
	x = a; y = b; z = c; w[0] = *d;
	return x + (int)y + z + w[0];
}
`
	for _, name := range []string{"mips", "sparc", "m68k", "vax"} {
		a, _ := arch.Lookup(name)
		em := NewEmitterFor(a)
		unit, err := cc.Compile(src, "f.c", em.Conf())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := GenUnit(unit, em, Options{}); err != nil {
			t.Fatal(err)
		}
		fn := unit.Funcs[0]
		if fn.FrameSize <= 0 {
			t.Errorf("%s: frame size %d", name, fn.FrameSize)
		}
		type span struct{ lo, hi int32 }
		var spans []span
		addSpan := func(s *cc.Symbol) {
			size := int32(s.Type.Size(em.Conf()))
			if size < 4 {
				size = 4
			}
			spans = append(spans, span{s.FrameOff, s.FrameOff + size})
		}
		for _, p := range fn.Params {
			if p.FrameOff < 0 {
				t.Errorf("%s: param %s at %d (incoming side must be non-negative)", name, p.Name, p.FrameOff)
			}
			addSpan(p)
		}
		for _, l := range fn.Locals {
			if l.FrameOff >= 0 {
				t.Errorf("%s: local %s at %d (locals live below the frame base)", name, l.Name, l.FrameOff)
			}
			if -l.FrameOff > fn.FrameSize {
				t.Errorf("%s: local %s at %d outside frame %d", name, l.Name, l.FrameOff, fn.FrameSize)
			}
			addSpan(l)
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.lo < b.hi && b.lo < a.hi {
					t.Errorf("%s: overlapping frame slots %v %v", name, a, b)
				}
			}
		}
	}
}

// TestDebugOnlyAddsStopsAndAnchors: with Debug off there is no anchor
// table and no stop symbols; with it on, both appear.
func TestDebugOnlyAddsStopsAndAnchors(t *testing.T) {
	src := `static int s; int main() { s = 1; return s; }`
	a, _ := arch.Lookup("vax")
	for _, debug := range []bool{false, true} {
		em := NewEmitterFor(a)
		unit, err := cc.Compile(src, "s.c", em.Conf())
		if err != nil {
			t.Fatal(err)
		}
		obj, err := GenUnit(unit, em, Options{Debug: debug})
		if err != nil {
			t.Fatal(err)
		}
		_, hasAnchor := obj.FindSym(unit.AnchorSym)
		if hasAnchor != debug {
			t.Errorf("debug=%v: anchor present=%v", debug, hasAnchor)
		}
		_, hasStop := obj.FindSym(".stop_main_0")
		if hasStop != debug {
			t.Errorf("debug=%v: stop symbol present=%v", debug, hasStop)
		}
		if debug && len(obj.DataRelocs) == 0 {
			t.Error("debug build has no anchor relocations")
		}
	}
}
