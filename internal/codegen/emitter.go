// Package codegen is the retargetable back end: a machine-independent
// tree-walking code generator drives a per-target Emitter (one file per
// target), mirroring how lcc's machine-independent front end drives
// per-target code generators through a small interface [10].
//
// The generator keeps the expression value being computed in a "top"
// scratch register and spills deeper intermediates to an in-frame
// evaluation stack, so the emitters stay small: each only knows how to
// render ~30 primitive operations, its calling convention, and its
// frame layout. When compiling for debugging it emits a label and a
// no-op at every stopping point (§3: lcc already places labels at
// stopping points, so putting no-ops there requires no extra effort).
package codegen

import (
	"ldb/internal/arch"
	"ldb/internal/asm"
	"ldb/internal/cc"
)

// Op is a generic binary operator.
type Op int

// Generic binary operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr  // arithmetic (signed) right shift
	OpShrU // logical (unsigned) right shift
)

// Cond is a generic comparison condition.
type Cond int

// Generic conditions; the U forms compare unsigned.
const (
	CondEq Cond = iota
	CondNe
	CondLt
	CondLe
	CondGt
	CondGe
	CondLtU
	CondLeU
	CondGtU
	CondGeU
)

// Negate returns the complementary condition.
func (c Cond) Negate() Cond {
	switch c {
	case CondEq:
		return CondNe
	case CondNe:
		return CondEq
	case CondLt:
		return CondGe
	case CondLe:
		return CondGt
	case CondGt:
		return CondLe
	case CondGe:
		return CondLt
	case CondLtU:
		return CondGeU
	case CondLeU:
		return CondGtU
	case CondGtU:
		return CondLeU
	case CondGeU:
		return CondLtU
	}
	return c
}

// MemType describes the width and signedness of a scalar memory access.
type MemType int

// Memory access types.
const (
	MI8 MemType = iota
	MU8
	MI16
	MU16
	M32
)

// Width returns the access width in bytes.
func (m MemType) Width() int {
	switch m {
	case MI8, MU8:
		return 1
	case MI16, MU16:
		return 2
	}
	return 4
}

// Emitter is the machine-dependent half of the back end. Integer
// scratch registers are named by small indices (0, 1, 2); float scratch
// likewise. Depth arguments give the evaluation-stack depth in words
// before the operation, for targets that place the evaluation stack at
// fixed frame offsets (the MIPS keeps sp fixed so the runtime procedure
// table can describe frames).
type Emitter interface {
	Conf() *cc.TargetConf
	// ArgsLeftToRight reports the argument evaluation order the
	// calling convention wants (true on the MIPS, where arguments are
	// block-copied to the outgoing area; false on the stack-pushing
	// targets, which push right to left).
	ArgsLeftToRight() bool

	// AssignFrame fixes FrameOff for every parameter and local and
	// returns the frame size, given the maximum evaluation-stack depth
	// and outgoing-argument area in words.
	AssignFrame(fn *cc.Func, evalWords, maxArgWords int) int32
	Prologue(fn *cc.Func)
	Epilogue(fn *cc.Func)

	Label(name string)
	// StopPoint emits the stopping-point label and its no-op.
	StopPoint(name string)
	Branch(name string)

	Const(r int, v int32)
	AddrLocal(r int, off int32)
	AddrGlobal(r int, sym string, add int64)
	Load(dst, addr int, ty MemType)
	Store(val, addr int, ty MemType)
	LoadF(fdst, addr, size int)
	StoreF(fsrc, addr, size int)
	Move(dst, src int)
	BinOp(op Op, dst, a, b int)
	Neg(dst, a int)
	Com(dst, a int)
	CmpBr(c Cond, a, b int, label string)

	Push(r, depth int)
	Pop(r, depth int)
	PushF(fr, depth int)
	PopF(fr, depth int)

	Call(sym string, argWords, depth int)
	CallInd(r, argWords, depth int)
	Result(r int)
	SetRet(r int)
	FResult(fr int)
	SetFRet(fr int)

	FBinOp(op Op, dst, a, b int)
	FMove(dst, src int)
	FNeg(dst, a int)
	FCmpBr(c Cond, a, b int, label string)
	CvtIF(fdst, rsrc int)
	CvtFI(rdst, fsrc int)
	RoundSingle(fr int)

	// Finish returns the assembled text, its relocations, and the
	// offsets of all labels bound in this fragment.
	Finish() ([]byte, []arch.Reloc, map[string]int, error)
	// InstrCount reports the number of instructions emitted so far.
	InstrCount() int

	// Runtime returns the target's runtime-support object: _start
	// (which calls the nub pause before main, then exits), and the
	// output routines _putint, _putchar, _putstr, and _putfloat.
	Runtime(debug bool) *asm.Unit
}

// Scheduler is implemented by emitters whose assembler schedules
// instructions — only the MIPS back end (§3: "lcc does not do
// instruction scheduling, but the MIPS assembler does").
type Scheduler interface {
	EnableSched(bool)
	// SchedStats reports how many load delay slots were filled by
	// moving instructions and how many had to be padded with no-ops.
	SchedStats() (filled, padded int)
}
