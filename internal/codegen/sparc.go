//ldb:target sparc
package codegen

import (
	"ldb/internal/arch"
	"ldb/internal/arch/sparc"
	"ldb/internal/asm"
	"ldb/internal/cc"
)

// sparcEmitter targets the SPARC with an explicit frame-pointer chain
// (no register windows in this dialect): the prologue saves %o7 and the
// caller's %fp below the incoming arguments, so the shared
// frame-pointer walker applies (*fp = old fp, *(fp+4) = return address,
// arguments at fp+8, locals below fp).
type sparcEmitter struct {
	a    *sparc.Asm
	conf *cc.TargetConf
}

// NewSPARC returns the SPARC emitter.
func NewSPARC() Emitter {
	return &sparcEmitter{a: sparc.NewAsm(), conf: &cc.TargetConf{Name: "sparc", LDoubleSize: 8}}
}

// Scratch: %l0-%l3; %g2 is the emitter's private temporary.
func sr(i int) int  { return 16 + i }
func sfr(i int) int { return i + 1 }

const sparcTmp = 2 // %g2

func (e *sparcEmitter) Conf() *cc.TargetConf  { return e.conf }
func (e *sparcEmitter) ArgsLeftToRight() bool { return false }

func (e *sparcEmitter) AssignFrame(fn *cc.Func, evalWords, maxArgWords int) int32 {
	off := int32(8)
	for _, p := range fn.Params {
		p.FrameOff = off
		size := int32(p.Type.Size(e.conf))
		if size < 4 {
			size = 4
		}
		off += (size + 3) &^ 3
	}
	loc := int32(0)
	for _, l := range fn.Locals {
		size := int32(l.Type.Size(e.conf))
		if size < 4 {
			size = 4
		}
		loc -= (size + 3) &^ 3
		l.FrameOff = loc
	}
	return (-loc + 7) &^ 7
}

func (e *sparcEmitter) Prologue(fn *cc.Func) {
	e.a.RI(sparc.Op3Sub, sparc.SP, sparc.SP, 8)
	e.a.Store(sparc.Op3St, sparc.O7, sparc.SP, 4)
	e.a.Store(sparc.Op3St, sparc.FP, sparc.SP, 0)
	e.a.RI(sparc.Op3Add, sparc.FP, sparc.SP, 0)
	if fn.FrameSize != 0 {
		e.a.RI(sparc.Op3Sub, sparc.SP, sparc.SP, fn.FrameSize)
	}
}

func (e *sparcEmitter) Epilogue(fn *cc.Func) {
	e.a.RI(sparc.Op3Add, sparc.SP, sparc.FP, 0)
	e.a.Load(sparc.Op3Ld, sparc.O7, sparc.SP, 4)
	e.a.Load(sparc.Op3Ld, sparc.FP, sparc.SP, 0)
	e.a.RI(sparc.Op3Add, sparc.SP, sparc.SP, 8)
	e.a.Ret()
}

func (e *sparcEmitter) Label(name string) { e.a.Label(name) }

func (e *sparcEmitter) StopPoint(name string) {
	e.a.Label(name)
	e.a.Nop()
}

func (e *sparcEmitter) Branch(name string) { e.a.Ba(name) }

func (e *sparcEmitter) Const(r int, v int32) { e.a.LI(sr(r), v) }

func (e *sparcEmitter) AddrLocal(r int, off int32) {
	e.a.RI(sparc.Op3Add, sr(r), sparc.FP, off)
}

func (e *sparcEmitter) AddrGlobal(r int, sym string, add int64) {
	e.a.LA(sr(r), sym, add)
}

func (e *sparcEmitter) Load(dst, addr int, ty MemType) {
	op := map[MemType]int{MI8: sparc.Op3Ldsb, MU8: sparc.Op3Ldub, MI16: sparc.Op3Ldsh, MU16: sparc.Op3Lduh, M32: sparc.Op3Ld}[ty]
	e.a.Load(op, sr(dst), sr(addr), 0)
}

func (e *sparcEmitter) Store(val, addr int, ty MemType) {
	op := map[MemType]int{MI8: sparc.Op3Stb, MU8: sparc.Op3Stb, MI16: sparc.Op3Sth, MU16: sparc.Op3Sth, M32: sparc.Op3St}[ty]
	e.a.Store(op, sr(val), sr(addr), 0)
}

func (e *sparcEmitter) LoadF(fdst, addr, size int) {
	if size == 4 {
		e.a.Load(sparc.Op3Ldf, sfr(fdst), sr(addr), 0)
	} else {
		e.a.Load(sparc.Op3Lddf, sfr(fdst), sr(addr), 0)
	}
}

func (e *sparcEmitter) StoreF(fsrc, addr, size int) {
	if size == 4 {
		e.a.Store(sparc.Op3Stf, sfr(fsrc), sr(addr), 0)
	} else {
		e.a.Store(sparc.Op3Stdf, sfr(fsrc), sr(addr), 0)
	}
}

func (e *sparcEmitter) Move(dst, src int) {
	e.a.RR(sparc.Op3Or, sr(dst), sr(src), sparc.G0)
}

func (e *sparcEmitter) BinOp(op Op, dst, a, b int) {
	d, x, y := sr(dst), sr(a), sr(b)
	switch op {
	case OpAdd:
		e.a.RR(sparc.Op3Add, d, x, y)
	case OpSub:
		e.a.RR(sparc.Op3Sub, d, x, y)
	case OpMul:
		e.a.RR(sparc.Op3SMul, d, x, y)
	case OpDiv:
		e.a.RR(sparc.Op3SDiv, d, x, y)
	case OpRem:
		// No hardware remainder: r = a - (a/b)*b through %g2.
		e.a.RR(sparc.Op3SDiv, sparcTmp, x, y)
		e.a.RR(sparc.Op3SMul, sparcTmp, sparcTmp, y)
		e.a.RR(sparc.Op3Sub, d, x, sparcTmp)
	case OpAnd:
		e.a.RR(sparc.Op3And, d, x, y)
	case OpOr:
		e.a.RR(sparc.Op3Or, d, x, y)
	case OpXor:
		e.a.RR(sparc.Op3Xor, d, x, y)
	case OpShl:
		e.a.RR(sparc.Op3Sll, d, x, y)
	case OpShr:
		e.a.RR(sparc.Op3Sra, d, x, y)
	case OpShrU:
		e.a.RR(sparc.Op3Srl, d, x, y)
	}
}

func (e *sparcEmitter) Neg(dst, a int) { e.a.RR(sparc.Op3Sub, sr(dst), sparc.G0, sr(a)) }

func (e *sparcEmitter) Com(dst, a int) {
	e.a.RI(sparc.Op3Xor, sr(dst), sr(a), -1)
}

var sparcCond = map[Cond]int{
	CondEq: sparc.CondE, CondNe: sparc.CondNE,
	CondLt: sparc.CondL, CondLe: sparc.CondLE,
	CondGt: sparc.CondG, CondGe: sparc.CondGE,
	CondLtU: sparc.CondCS, CondLeU: sparc.CondLEU,
	CondGtU: sparc.CondGU, CondGeU: sparc.CondCC,
}

func (e *sparcEmitter) CmpBr(c Cond, a, b int, label string) {
	e.a.RR(sparc.Op3SubCC, sparc.G0, sr(a), sr(b))
	e.a.Branch(sparcCond[c], label)
}

func (e *sparcEmitter) Push(r, depth int) {
	e.a.RI(sparc.Op3Sub, sparc.SP, sparc.SP, 4)
	e.a.Store(sparc.Op3St, sr(r), sparc.SP, 0)
}

func (e *sparcEmitter) Pop(r, depth int) {
	e.a.Load(sparc.Op3Ld, sr(r), sparc.SP, 0)
	e.a.RI(sparc.Op3Add, sparc.SP, sparc.SP, 4)
}

func (e *sparcEmitter) PushF(fr, depth int) {
	e.a.RI(sparc.Op3Sub, sparc.SP, sparc.SP, 8)
	e.a.Store(sparc.Op3Stdf, sfr(fr), sparc.SP, 0)
}

func (e *sparcEmitter) PopF(fr, depth int) {
	e.a.Load(sparc.Op3Lddf, sfr(fr), sparc.SP, 0)
	e.a.RI(sparc.Op3Add, sparc.SP, sparc.SP, 8)
}

func (e *sparcEmitter) Call(sym string, argWords, depth int) {
	e.a.Call(sym)
	if argWords > 0 {
		e.a.RI(sparc.Op3Add, sparc.SP, sparc.SP, int32(argWords)*4)
	}
}

func (e *sparcEmitter) CallInd(r, argWords, depth int) {
	e.a.Jmpl(sparc.O7, sr(r), 0)
	if argWords > 0 {
		e.a.RI(sparc.Op3Add, sparc.SP, sparc.SP, int32(argWords)*4)
	}
}

func (e *sparcEmitter) Result(r int) { e.a.RR(sparc.Op3Or, sr(r), sparc.O0, sparc.G0) }
func (e *sparcEmitter) SetRet(r int) { e.a.RR(sparc.Op3Or, sparc.O0, sr(r), sparc.G0) }

func (e *sparcEmitter) FResult(fr int) { e.a.Fp(sparc.OpfFMovs, sfr(fr), 0, 0) }
func (e *sparcEmitter) SetFRet(fr int) { e.a.Fp(sparc.OpfFMovs, 0, sfr(fr), 0) }

func (e *sparcEmitter) FBinOp(op Op, dst, a, b int) {
	opf := map[Op]int{OpAdd: sparc.OpfFAddD, OpSub: sparc.OpfFSubD, OpMul: sparc.OpfFMulD, OpDiv: sparc.OpfFDivD}[op]
	e.a.Fp(opf, sfr(dst), sfr(a), sfr(b))
}

func (e *sparcEmitter) FMove(dst, src int) { e.a.Fp(sparc.OpfFMovs, sfr(dst), sfr(src), 0) }
func (e *sparcEmitter) FNeg(dst, a int) {
	if dst != a {
		e.a.Fp(sparc.OpfFMovs, sfr(dst), sfr(a), 0)
	}
	e.a.Fp(sparc.OpfFNegs, sfr(dst), sfr(dst), 0)
}

func (e *sparcEmitter) FCmpBr(c Cond, a, b int, label string) {
	e.a.FCmp(sparc.OpfFCmpD, sfr(a), sfr(b))
	e.a.FBranch(sparcCond[c], label)
}

func (e *sparcEmitter) CvtIF(fdst, rsrc int) { e.a.FiToD(sfr(fdst), sr(rsrc)) }
func (e *sparcEmitter) CvtFI(rdst, fsrc int) { e.a.FdToI(sr(rdst), sfr(fsrc)) }
func (e *sparcEmitter) RoundSingle(fr int) {
	e.a.Fp(sparc.OpfFdToS, sfr(fr), sfr(fr), 0)
}

// InstrCount implements Emitter.
func (e *sparcEmitter) InstrCount() int { return e.a.Instrs() }

func (e *sparcEmitter) Finish() ([]byte, []arch.Reloc, map[string]int, error) {
	code, relocs, err := e.a.Finish()
	return code, relocs, e.a.Labels(), err
}

// Runtime implements Emitter.
func (e *sparcEmitter) Runtime(debug bool) *asm.Unit {
	a := sparc.NewAsm()
	obj := &asm.Unit{Name: "runtime", Arch: "sparc"}
	def := func(name string, f func()) {
		start := a.Off()
		a.Label(name)
		f()
		obj.AddSym(name, asm.SecText, start, a.Off()-start, true)
		obj.Funcs = append(obj.Funcs, asm.FuncInfo{Sym: name, FrameSize: 0})
	}
	def("_start", func() {
		if debug {
			a.Trap(arch.TrapPause)
		}
		a.Call("_main")
		// main's return value is already in %o0.
		a.LI(sparc.G1, arch.SysExit)
		a.Trap(1)
	})
	put := func(name string, sys int32, addrOf bool) {
		def(name, func() {
			if addrOf {
				a.RI(sparc.Op3Add, sparc.O0, sparc.SP, 0)
			} else {
				a.Load(sparc.Op3Ld, sparc.O0, sparc.SP, 0)
			}
			a.LI(sparc.G1, sys)
			a.Trap(1)
			a.Ret()
		})
	}
	put("_putint", arch.SysPutInt, false)
	put("_putchar", arch.SysPutChar, false)
	put("_putstr", arch.SysPutStr, false)
	put("_puthex", arch.SysPutHex, false)
	put("_putuint", arch.SysPutUint, false)
	put("_putfloat", arch.SysPutFloat, true)
	code, relocs, err := a.Finish()
	if err != nil {
		panic("sparc runtime: " + err.Error())
	}
	obj.Text, obj.TextRelocs = code, relocs
	obj.Instrs = a.Instrs()
	return obj
}
