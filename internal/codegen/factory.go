package codegen

import (
	"fmt"

	"ldb/internal/arch"
	"ldb/internal/arch/mips"
)

// NewEmitterFor returns a fresh back end for a registered architecture.
// Emitters buffer output and are not reusable across units.
func NewEmitterFor(a arch.Arch) Emitter {
	switch a.Name() {
	case "mips":
		return NewMIPS(mips.Little)
	case "mipsbe":
		return NewMIPS(mips.Big)
	case "sparc":
		return NewSPARC()
	case "m68k":
		return NewM68k()
	case "vax":
		return NewVAX()
	}
	panic(fmt.Sprintf("codegen: no back end for %s", a.Name()))
}
