//ldb:target m68k
package codegen

import (
	"ldb/internal/arch"
	"ldb/internal/arch/m68k"
	"ldb/internal/asm"
	"ldb/internal/cc"
)

// m68kEmitter targets the 68020: link/unlk frames on a6, arguments
// pushed right to left, two-address arithmetic (with d7/f7 as private
// temporaries for the rare three-address shapes), and long double as a
// genuine third float size (80-bit extended, 12-byte storage).
type m68kEmitter struct {
	a    *m68k.Asm
	conf *cc.TargetConf
}

// NewM68k returns the 68020 emitter.
func NewM68k() Emitter {
	return &m68kEmitter{a: m68k.NewAsm(), conf: &cc.TargetConf{Name: "m68k", LDoubleSize: 12}}
}

// Scratch: d4, d5, d6, d3; d7 and f7 are private temporaries.
func kr(i int) int {
	if i == 3 {
		return m68k.D3 // d3 is free outside the runtime's syscall glue
	}
	return m68k.D4 + i
}
func kfr(i int) int { return i + 1 }

const (
	kTmp  = m68k.D7
	kFTmp = 7
)

func (e *m68kEmitter) Conf() *cc.TargetConf  { return e.conf }
func (e *m68kEmitter) ArgsLeftToRight() bool { return false }

func (e *m68kEmitter) AssignFrame(fn *cc.Func, evalWords, maxArgWords int) int32 {
	off := int32(8) // a6+4 is the return address; arguments above
	for _, p := range fn.Params {
		p.FrameOff = off
		size := int32(p.Type.Size(e.conf))
		if size < 4 {
			size = 4
		}
		off += (size + 3) &^ 3
	}
	loc := int32(0)
	for _, l := range fn.Locals {
		size := int32(l.Type.Size(e.conf))
		if size < 4 {
			size = 4
		}
		loc -= (size + 3) &^ 3
		l.FrameOff = loc
	}
	return (-loc + 3) &^ 3
}

func (e *m68kEmitter) Prologue(fn *cc.Func) {
	e.a.Link(6, int16(-fn.FrameSize))
}

func (e *m68kEmitter) Epilogue(fn *cc.Func) {
	e.a.Unlk(6)
	e.a.Rts()
}

func (e *m68kEmitter) Label(name string) { e.a.Label(name) }

func (e *m68kEmitter) StopPoint(name string) {
	e.a.Label(name)
	e.a.Nop()
}

func (e *m68kEmitter) Branch(name string) { e.a.Bra(name) }

func (e *m68kEmitter) Const(r int, v int32) { e.a.MoveImm(kr(r), v) }

func (e *m68kEmitter) AddrLocal(r int, off int32) {
	e.a.LeaD(kr(r), m68k.FPr, int16(off))
}

func (e *m68kEmitter) AddrGlobal(r int, sym string, add int64) {
	e.a.Lea(kr(r), sym, add)
}

func (e *m68kEmitter) Load(dst, addr int, ty MemType) {
	minor := map[MemType]int{MI8: m68k.MvLoadB, MU8: m68k.MvLoadBu, MI16: m68k.MvLoadW, MU16: m68k.MvLoadWu, M32: m68k.MvLoadL}[ty]
	e.a.Mem(minor, kr(dst), kr(addr), 0)
}

func (e *m68kEmitter) Store(val, addr int, ty MemType) {
	minor := map[MemType]int{MI8: m68k.MvStoreB, MU8: m68k.MvStoreB, MI16: m68k.MvStoreW, MU16: m68k.MvStoreW, M32: m68k.MvStoreL}[ty]
	e.a.Mem(minor, kr(val), kr(addr), 0)
}

func m68kFSize(size int) (load, store int) {
	switch size {
	case 4:
		return m68k.FLoadS, m68k.FStoreS
	case 10:
		return m68k.FLoadX, m68k.FStoreX
	default:
		return m68k.FLoadD, m68k.FStoreD
	}
}

func (e *m68kEmitter) LoadF(fdst, addr, size int) {
	ld, _ := m68kFSize(size)
	e.a.FMem(ld, kfr(fdst), kr(addr), 0)
}

func (e *m68kEmitter) StoreF(fsrc, addr, size int) {
	_, st := m68kFSize(size)
	e.a.FMem(st, kfr(fsrc), kr(addr), 0)
}

func (e *m68kEmitter) Move(dst, src int) { e.a.Move(kr(dst), kr(src)) }

var m68kArith = map[Op]int{
	OpAdd: m68k.ArAdd, OpSub: m68k.ArSub, OpMul: m68k.ArMul,
	OpDiv: m68k.ArDiv, OpAnd: m68k.ArAnd, OpOr: m68k.ArOr,
	OpXor: m68k.ArXor, OpShl: m68k.ArLsl, OpShr: m68k.ArAsr,
	OpShrU: m68k.ArLsr,
}

func (e *m68kEmitter) BinOp(op Op, dst, a, b int) {
	d, x, y := kr(dst), kr(a), kr(b)
	if op == OpRem {
		// d7 = x; d7 /= y; d7 *= y; then dst = x - d7.
		e.a.Move(kTmp, x)
		e.a.Arith(m68k.ArDiv, kTmp, y)
		e.a.Arith(m68k.ArMul, kTmp, y)
		if d != x {
			e.a.Move(d, x)
		}
		e.a.Arith(m68k.ArSub, d, kTmp)
		return
	}
	minor := m68kArith[op]
	switch {
	case d == x:
		e.a.Arith(minor, d, y)
	case d == y:
		e.a.Move(kTmp, x)
		e.a.Arith(minor, kTmp, y)
		e.a.Move(d, kTmp)
	default:
		e.a.Move(d, x)
		e.a.Arith(minor, d, y)
	}
}

func (e *m68kEmitter) Neg(dst, a int) {
	if dst != a {
		e.a.Move(kr(dst), kr(a))
	}
	e.a.Arith(m68k.ArNeg, kr(dst), 0)
}

func (e *m68kEmitter) Com(dst, a int) {
	if dst != a {
		e.a.Move(kr(dst), kr(a))
	}
	e.a.Arith(m68k.ArNot, kr(dst), 0)
}

var m68kCond = map[Cond]int{
	CondEq: m68k.CcEQ, CondNe: m68k.CcNE,
	CondLt: m68k.CcLT, CondLe: m68k.CcLE,
	CondGt: m68k.CcGT, CondGe: m68k.CcGE,
	CondLtU: m68k.CcCS, CondLeU: m68k.CcLS,
	CondGtU: m68k.CcHI, CondGeU: m68k.CcCC,
}

func (e *m68kEmitter) CmpBr(c Cond, a, b int, label string) {
	e.a.Cmp(kr(a), kr(b))
	e.a.Branch(m68kCond[c], label)
}

func (e *m68kEmitter) Push(r, depth int) { e.a.Push(kr(r)) }
func (e *m68kEmitter) Pop(r, depth int)  { e.a.Pop(kr(r)) }

func (e *m68kEmitter) PushF(fr, depth int) {
	e.a.AddI(m68k.SPr, -8)
	e.a.FMem(m68k.FStoreD, kfr(fr), m68k.SPr, 0)
}

func (e *m68kEmitter) PopF(fr, depth int) {
	e.a.FMem(m68k.FLoadD, kfr(fr), m68k.SPr, 0)
	e.a.AddI(m68k.SPr, 8)
}

func (e *m68kEmitter) Call(sym string, argWords, depth int) {
	e.a.Jsr(sym)
	if argWords > 0 {
		e.a.AddI(m68k.SPr, int16(argWords)*4)
	}
}

func (e *m68kEmitter) CallInd(r, argWords, depth int) {
	e.a.Move(m68k.A0, kr(r))
	e.a.JsrReg(0)
	if argWords > 0 {
		e.a.AddI(m68k.SPr, int16(argWords)*4)
	}
}

func (e *m68kEmitter) Result(r int)   { e.a.Move(kr(r), m68k.D0) }
func (e *m68kEmitter) SetRet(r int)   { e.a.Move(m68k.D0, kr(r)) }
func (e *m68kEmitter) FResult(fr int) { e.a.F(m68k.FMove, kfr(fr), 0) }
func (e *m68kEmitter) SetFRet(fr int) { e.a.F(m68k.FMove, 0, kfr(fr)) }

var m68kFArith = map[Op]int{
	OpAdd: m68k.FAdd, OpSub: m68k.FSub, OpMul: m68k.FMul, OpDiv: m68k.FDiv,
}

func (e *m68kEmitter) FBinOp(op Op, dst, a, b int) {
	d, x, y := kfr(dst), kfr(a), kfr(b)
	minor := m68kFArith[op]
	switch {
	case d == x:
		e.a.F(minor, d, y)
	case d == y:
		e.a.F(m68k.FMove, kFTmp, x)
		e.a.F(minor, kFTmp, y)
		e.a.F(m68k.FMove, d, kFTmp)
	default:
		e.a.F(m68k.FMove, d, x)
		e.a.F(minor, d, y)
	}
}

func (e *m68kEmitter) FMove(dst, src int) { e.a.F(m68k.FMove, kfr(dst), kfr(src)) }

func (e *m68kEmitter) FNeg(dst, a int) {
	if dst != a {
		e.a.F(m68k.FMove, kfr(dst), kfr(a))
	}
	e.a.F(m68k.FNeg, kfr(dst), 0)
}

func (e *m68kEmitter) FCmpBr(c Cond, a, b int, label string) {
	e.a.F(m68k.FCmp, kfr(a), kfr(b))
	e.a.Branch(m68kCond[c], label)
}

func (e *m68kEmitter) CvtIF(fdst, rsrc int) { e.a.F(m68k.FFromI, kfr(fdst), kr(rsrc)) }
func (e *m68kEmitter) CvtFI(rdst, fsrc int) { e.a.F(m68k.FToI, kr(rdst), kfr(fsrc)) }

func (e *m68kEmitter) RoundSingle(fr int) {
	// Round through a single-precision memory image on the stack.
	e.a.AddI(m68k.SPr, -4)
	e.a.FMem(m68k.FStoreS, kfr(fr), m68k.SPr, 0)
	e.a.FMem(m68k.FLoadS, kfr(fr), m68k.SPr, 0)
	e.a.AddI(m68k.SPr, 4)
}

// InstrCount implements Emitter.
func (e *m68kEmitter) InstrCount() int { return e.a.Instrs() }

func (e *m68kEmitter) Finish() ([]byte, []arch.Reloc, map[string]int, error) {
	code, relocs, err := e.a.Finish()
	return code, relocs, e.a.Labels(), err
}

// Runtime implements Emitter.
func (e *m68kEmitter) Runtime(debug bool) *asm.Unit {
	a := m68k.NewAsm()
	obj := &asm.Unit{Name: "runtime", Arch: "m68k"}
	def := func(name string, f func()) {
		start := a.Off()
		a.Label(name)
		f()
		obj.AddSym(name, asm.SecText, start, a.Off()-start, true)
		obj.Funcs = append(obj.Funcs, asm.FuncInfo{Sym: name, FrameSize: 0})
	}
	def("_start", func() {
		if debug {
			a.Trap(14)
		}
		a.Jsr("_main")
		a.Move(m68k.D2, m68k.D0)
		a.MoveImm(m68k.D1, arch.SysExit)
		a.Trap(1)
	})
	put := func(name string, sys int32, addrOf bool) {
		def(name, func() {
			if addrOf {
				a.LeaD(m68k.D2, m68k.SPr, 4)
			} else {
				a.Mem(m68k.MvLoadL, m68k.D2, m68k.SPr, 4)
			}
			a.MoveImm(m68k.D1, sys)
			a.Trap(1)
			a.Rts()
		})
	}
	put("_putint", arch.SysPutInt, false)
	put("_putchar", arch.SysPutChar, false)
	put("_putstr", arch.SysPutStr, false)
	put("_puthex", arch.SysPutHex, false)
	put("_putuint", arch.SysPutUint, false)
	put("_putfloat", arch.SysPutFloat, true)
	code, relocs, err := a.Finish()
	if err != nil {
		panic("m68k runtime: " + err.Error())
	}
	obj.Text, obj.TextRelocs = code, relocs
	obj.Instrs = a.Instrs()
	return obj
}
