package codegen

import (
	"encoding/binary"
	"fmt"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/asm"
	"ldb/internal/cc"
)

// buildData lays out the unit's data section: file-scope variables,
// function-scope statics, string and float literals, and — when
// compiling for debugging — the anchor table, one relocated word per
// static variable and per stopping point (§2's anchor-symbol
// technique: inserting relocatable addresses into locations known
// relative to anchor symbols means ldb never needs the value of a
// private or static symbol from the linker).
func (g *gen) buildData(obj *asm.Unit) error {
	a, ok := arch.Lookup(g.em.Conf().Name)
	if !ok {
		return fmt.Errorf("codegen: unknown architecture %q", g.em.Conf().Name)
	}
	order := a.Order()
	tc := g.em.Conf()
	var data []byte
	align := func(n int) {
		for len(data)%n != 0 {
			data = append(data, 0)
		}
	}
	addVar := func(sym *cc.Symbol) error {
		al := sym.Type.Align(tc)
		if al < 1 {
			al = 1
		}
		align(al)
		off := len(data)
		size := sym.Type.Size(tc)
		if size == 0 {
			size = 4
		}
		data = append(data, make([]byte, size)...)
		if sym.Init != nil {
			if err := encodeInit(data[off:off+size], sym.Init, order, tc, obj, off, &g.errs); err != nil {
				return err
			}
		}
		obj.AddSym(sym.Label, asm.SecData, off, size, sym.Storage == cc.Extern)
		return nil
	}
	for _, sym := range g.u.Globals {
		if err := addVar(sym); err != nil {
			return err
		}
	}
	for _, fn := range g.u.Funcs {
		for _, sym := range fn.Statics {
			if err := addVar(sym); err != nil {
				return err
			}
		}
	}
	// Static return buffers for aggregate-returning functions: the
	// callee copies its return value here and hands back the address
	// (genStmt SReturn / genCall Result).
	for _, fn := range g.u.Funcs {
		rt := fn.Sym.Type.Base
		if rt == nil || (rt.Kind != cc.TyStruct && rt.Kind != cc.TyUnion) {
			continue
		}
		align(4)
		off := len(data)
		size := rt.Size(tc)
		data = append(data, make([]byte, size)...)
		obj.AddSym(retBufLabel(fn), asm.SecData, off, size, false)
	}
	for i, s := range g.u.Strings {
		off := len(data)
		data = append(data, []byte(s)...)
		data = append(data, 0)
		obj.AddSym(g.strLabel(i), asm.SecData, off, len(s)+1, false)
	}
	align(4)
	for i, v := range g.fconsts {
		align(8)
		off := len(data)
		data = append(data, make([]byte, 8)...)
		amem.EncodeFloat(order, data[off:off+8], amem.Float64, v)
		obj.AddSym(fmt.Sprintf(".fc%d", i), asm.SecData, off, 8, false)
	}
	if g.opts.Debug && g.u.AnchorWords > 0 {
		align(4)
		off := len(data)
		targets := make([]string, g.u.AnchorWords)
		record := func(idx int, label string) {
			if idx >= 0 && idx < len(targets) {
				targets[idx] = label
			}
		}
		for _, sym := range g.u.Globals {
			if sym.Storage == cc.Static {
				record(sym.AnchorIdx, sym.Label)
			}
		}
		for _, fn := range g.u.Funcs {
			for _, sym := range fn.Statics {
				record(sym.AnchorIdx, sym.Label)
			}
			for _, sp := range fn.Stops {
				record(sp.AnchorIdx, sp.Label)
			}
		}
		for i, label := range targets {
			if label == "" {
				return fmt.Errorf("codegen: anchor word %d has no target", i)
			}
			obj.DataRelocs = append(obj.DataRelocs, arch.Reloc{
				Off: off + 4*i, Kind: arch.RelAbs32, Sym: label,
			})
		}
		data = append(data, make([]byte, 4*g.u.AnchorWords)...)
		obj.AddSym(g.u.AnchorSym, asm.SecData, off, 4*g.u.AnchorWords, true)
	}
	obj.Data = data
	return nil
}

func encodeInit(dst []byte, init *cc.Expr, order binary.ByteOrder, tc *cc.TargetConf, obj *asm.Unit, off int, errs *[]error) error {
	switch init.Op {
	case cc.EConst:
		switch len(dst) {
		case 1:
			dst[0] = byte(init.IVal)
		case 2:
			amem.WriteInt(order, dst[:2], uint64(init.IVal))
		default:
			amem.WriteInt(order, dst[:4], uint64(init.IVal))
		}
	case cc.EFConst:
		switch len(dst) {
		case 4:
			amem.EncodeFloat(order, dst[:4], amem.Float32, init.FVal)
		case 12:
			amem.EncodeFloat(order, dst[:12], amem.Float80, init.FVal)
		default:
			amem.EncodeFloat(order, dst[:8], amem.Float64, init.FVal)
		}
	case cc.ECast:
		return encodeInit(dst, init.L, order, tc, obj, off, errs)
	case cc.EInitList:
		t := init.Type
		switch t.Kind {
		case cc.TyArray:
			es := t.Base.Size(tc)
			for i, el := range init.Args {
				if (i+1)*es > len(dst) {
					return fmt.Errorf("%s: too many initializers", el.Pos)
				}
				if err := encodeInit(dst[i*es:(i+1)*es], el, order, tc, obj, off+i*es, errs); err != nil {
					return err
				}
			}
		case cc.TyStruct, cc.TyUnion:
			for i, el := range init.Args {
				if i >= len(t.Fields) {
					return fmt.Errorf("%s: too many initializers", el.Pos)
				}
				f := t.Fields[i]
				fs := f.Type.Size(tc)
				if err := encodeInit(dst[f.Off:f.Off+fs], el, order, tc, obj, off+f.Off, errs); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("%s: braced initializer for a scalar", init.Pos)
		}
	case cc.EString:
		// char array from a string literal; the rest stays zero.
		copy(dst, init.SVal)
	case cc.EAddr:
		if init.L.Op == cc.EString {
			obj.DataRelocs = append(obj.DataRelocs, arch.Reloc{
				Off: off, Kind: arch.RelAbs32, Sym: fmt.Sprintf(".str%d", init.L.IVal),
			})
			return nil
		}
		if init.L.Op == cc.EIdent && init.L.Sym != nil {
			obj.DataRelocs = append(obj.DataRelocs, arch.Reloc{
				Off: off, Kind: arch.RelAbs32, Sym: init.L.Sym.Label,
			})
			return nil
		}
		return fmt.Errorf("%s: unsupported address initializer", init.Pos)
	default:
		if v, ok := constIntExpr(init); ok {
			amem.WriteInt(order, dst[:4], uint64(v))
			return nil
		}
		return fmt.Errorf("%s: initializer must be constant", init.Pos)
	}
	return nil
}

// constIntExpr mirrors cc's constant folding for initializers that
// reach the back end unfolded.
func constIntExpr(e *cc.Expr) (int64, bool) {
	if e.Op == cc.EConst {
		return e.IVal, true
	}
	return 0, false
}

// nullEmitter implements Emitter with no output; the sizing pass runs
// the generic walker against it to learn stack depths before frames
// are assigned.
type nullEmitter struct {
	conf *cc.TargetConf
	l2r  bool
}

func (n *nullEmitter) Conf() *cc.TargetConf { return n.conf }

// ArgsLeftToRight must mirror the real target: argument push order
// changes the evaluation-stack depth profile (a deep final argument
// costs one more slot under left-to-right pushing), and a sizing pass
// that models the wrong order under-reserves eval slots — the emitted
// code then spills past the eval area into a neighboring frame slot.
func (n *nullEmitter) ArgsLeftToRight() bool { return n.l2r }
func (n *nullEmitter) AssignFrame(*cc.Func, int, int) int32 {
	return 0
}
func (n *nullEmitter) Prologue(*cc.Func)             {}
func (n *nullEmitter) Epilogue(*cc.Func)             {}
func (n *nullEmitter) Label(string)                  {}
func (n *nullEmitter) StopPoint(string)              {}
func (n *nullEmitter) Branch(string)                 {}
func (n *nullEmitter) Const(int, int32)              {}
func (n *nullEmitter) AddrLocal(int, int32)          {}
func (n *nullEmitter) AddrGlobal(int, string, int64) {}
func (n *nullEmitter) Load(int, int, MemType)        {}
func (n *nullEmitter) Store(int, int, MemType)       {}
func (n *nullEmitter) LoadF(int, int, int)           {}
func (n *nullEmitter) StoreF(int, int, int)          {}
func (n *nullEmitter) Move(int, int)                 {}
func (n *nullEmitter) BinOp(Op, int, int, int)       {}
func (n *nullEmitter) Neg(int, int)                  {}
func (n *nullEmitter) Com(int, int)                  {}
func (n *nullEmitter) CmpBr(Cond, int, int, string)  {}
func (n *nullEmitter) Push(int, int)                 {}
func (n *nullEmitter) Pop(int, int)                  {}
func (n *nullEmitter) PushF(int, int)                {}
func (n *nullEmitter) PopF(int, int)                 {}
func (n *nullEmitter) Call(string, int, int)         {}
func (n *nullEmitter) CallInd(int, int, int)         {}
func (n *nullEmitter) Result(int)                    {}
func (n *nullEmitter) SetRet(int)                    {}
func (n *nullEmitter) FResult(int)                   {}
func (n *nullEmitter) SetFRet(int)                   {}
func (n *nullEmitter) FBinOp(Op, int, int, int)      {}
func (n *nullEmitter) FMove(int, int)                {}
func (n *nullEmitter) FNeg(int, int)                 {}
func (n *nullEmitter) FCmpBr(Cond, int, int, string) {}
func (n *nullEmitter) CvtIF(int, int)                {}
func (n *nullEmitter) CvtFI(int, int)                {}
func (n *nullEmitter) RoundSingle(int)               {}
func (n *nullEmitter) Finish() ([]byte, []arch.Reloc, map[string]int, error) {
	return nil, nil, nil, nil
}
func (n *nullEmitter) InstrCount() int        { return 0 }
func (n *nullEmitter) Runtime(bool) *asm.Unit { return nil }
