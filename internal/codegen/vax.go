//ldb:target vax
package codegen

import (
	"ldb/internal/arch"
	"ldb/internal/arch/vax"
	"ldb/internal/asm"
	"ldb/internal/cc"
)

// vaxEmitter targets the VAX: jsb/rsb calls with a pushl-fp frame
// chain, three-operand arithmetic with rich operand modes, and
// synthesized AND (via bicl) and remainder — the VAX has neither.
type vaxEmitter struct {
	a    *vax.Asm
	conf *cc.TargetConf
}

// NewVAX returns the VAX emitter.
func NewVAX() Emitter {
	return &vaxEmitter{a: vax.NewAsm(), conf: &cc.TargetConf{Name: "vax", LDoubleSize: 8}}
}

// Scratch: r2, r3, r4, r6; r5 is the emitter's private temporary.
func vr(i int) int {
	if i == 3 {
		return 6
	}
	return 2 + i
}
func vfrg(i int) int { return i + 1 }

const vaxTmp = 5

func (e *vaxEmitter) Conf() *cc.TargetConf  { return e.conf }
func (e *vaxEmitter) ArgsLeftToRight() bool { return false }

func (e *vaxEmitter) AssignFrame(fn *cc.Func, evalWords, maxArgWords int) int32 {
	off := int32(8) // fp+4 holds the return address; arguments above
	for _, p := range fn.Params {
		p.FrameOff = off
		size := int32(p.Type.Size(e.conf))
		if size < 4 {
			size = 4
		}
		off += (size + 3) &^ 3
	}
	loc := int32(0)
	for _, l := range fn.Locals {
		size := int32(l.Type.Size(e.conf))
		if size < 4 {
			size = 4
		}
		loc -= (size + 3) &^ 3
		l.FrameOff = loc
	}
	return (-loc + 3) &^ 3
}

func (e *vaxEmitter) Prologue(fn *cc.Func) {
	e.a.Op(vax.OpPushl, vax.Rn(vax.FP))
	e.a.Op(vax.OpMovl, vax.Rn(vax.SP), vax.Rn(vax.FP))
	if fn.FrameSize != 0 {
		e.a.Op(vax.OpSubl2, vax.ImmL(uint32(fn.FrameSize)), vax.Rn(vax.SP))
	}
}

func (e *vaxEmitter) Epilogue(fn *cc.Func) {
	e.a.Op(vax.OpMovl, vax.Rn(vax.FP), vax.Rn(vax.SP))
	e.a.Op(vax.OpMovl, vax.Pop(), vax.Rn(vax.FP))
	e.a.Rsb()
}

func (e *vaxEmitter) Label(name string) { e.a.Label(name) }

func (e *vaxEmitter) StopPoint(name string) {
	e.a.Label(name)
	e.a.Nop()
}

func (e *vaxEmitter) Branch(name string) { e.a.Branch(vax.OpBrw, name) }

func (e *vaxEmitter) Const(r int, v int32) { e.a.MoveImm(vr(r), v) }

func (e *vaxEmitter) AddrLocal(r int, off int32) {
	e.a.Op(vax.OpAddl3, vax.ImmL(uint32(off)), vax.Rn(vax.FP), vax.Rn(vr(r)))
}

func (e *vaxEmitter) AddrGlobal(r int, sym string, add int64) {
	e.a.Op(vax.OpMovl, vax.ImmSym(sym, add), vax.Rn(vr(r)))
}

func (e *vaxEmitter) Load(dst, addr int, ty MemType) {
	mem := vax.Disp(vr(addr), 0)
	d := vax.Rn(vr(dst))
	switch ty {
	case MI8:
		e.a.Op(vax.OpCvtbl, mem, d)
	case MU8:
		e.a.Op(vax.OpMovzbl, mem, d)
	case MI16:
		e.a.Op(vax.OpCvtwl, mem, d)
	case MU16:
		e.a.Op(vax.OpMovzwl, mem, d)
	default:
		e.a.Op(vax.OpMovl, mem, d)
	}
}

func (e *vaxEmitter) Store(val, addr int, ty MemType) {
	mem := vax.Disp(vr(addr), 0)
	v := vax.Rn(vr(val))
	switch ty {
	case MI8, MU8:
		e.a.Op(vax.OpMovb, v, mem)
	case MI16, MU16:
		e.a.Op(vax.OpMovw, v, mem)
	default:
		e.a.Op(vax.OpMovl, v, mem)
	}
}

func (e *vaxEmitter) LoadF(fdst, addr, size int) {
	mem := vax.Disp(vr(addr), 0)
	if size == 4 {
		e.a.Op(vax.OpMovf, mem, vax.Fn(vfrg(fdst)))
	} else {
		e.a.Op(vax.OpMovd, mem, vax.Fn(vfrg(fdst)))
	}
}

func (e *vaxEmitter) StoreF(fsrc, addr, size int) {
	mem := vax.Disp(vr(addr), 0)
	if size == 4 {
		e.a.Op(vax.OpMovf, vax.Fn(vfrg(fsrc)), mem)
	} else {
		e.a.Op(vax.OpMovd, vax.Fn(vfrg(fsrc)), mem)
	}
}

func (e *vaxEmitter) Move(dst, src int) {
	e.a.Op(vax.OpMovl, vax.Rn(vr(src)), vax.Rn(vr(dst)))
}

func (e *vaxEmitter) BinOp(op Op, dst, a, b int) {
	d, x, y := vax.Rn(vr(dst)), vax.Rn(vr(a)), vax.Rn(vr(b))
	tmp := vax.Rn(vaxTmp)
	switch op {
	case OpAdd:
		e.a.Op(vax.OpAddl3, x, y, d)
	case OpSub:
		e.a.Op(vax.OpSubl3, y, x, d) // dst = src2 - src1 = a - b
	case OpMul:
		e.a.Op(vax.OpMull3, x, y, d)
	case OpDiv:
		e.a.Op(vax.OpDivl3, y, x, d) // dst = src2 / src1 = a / b
	case OpRem:
		e.a.Op(vax.OpDivl3, y, x, tmp)
		e.a.Op(vax.OpMull3, tmp, y, tmp)
		e.a.Op(vax.OpSubl3, tmp, x, d)
	case OpAnd:
		e.a.Op(vax.OpMcoml, y, tmp)
		e.a.Op(vax.OpBicl3, tmp, x, d) // dst = x &^ ^y = x & y
	case OpOr:
		e.a.Op(vax.OpBisl3, x, y, d)
	case OpXor:
		e.a.Op(vax.OpXorl3, x, y, d)
	case OpShl:
		e.a.Op(vax.OpAshl, y, x, d)
	case OpShr:
		e.a.Op(vax.OpSubl3, y, vax.ImmL(0), tmp) // tmp = -count
		e.a.Op(vax.OpAshl, tmp, x, d)
	case OpShrU:
		e.a.Op(vax.OpLsrl, y, x, d)
	}
}

func (e *vaxEmitter) Neg(dst, a int) {
	e.a.Op(vax.OpSubl3, vax.Rn(vr(a)), vax.ImmL(0), vax.Rn(vr(dst)))
}

func (e *vaxEmitter) Com(dst, a int) {
	e.a.Op(vax.OpMcoml, vax.Rn(vr(a)), vax.Rn(vr(dst)))
}

var vaxCond = map[Cond]byte{
	CondEq: vax.OpBeql, CondNe: vax.OpBneq,
	CondLt: vax.OpBlss, CondLe: vax.OpBleq,
	CondGt: vax.OpBgtr, CondGe: vax.OpBgeq,
	CondLtU: vax.OpBlssu, CondLeU: vax.OpBlequ,
	CondGtU: vax.OpBgtru, CondGeU: vax.OpBgequ,
}

func (e *vaxEmitter) CmpBr(c Cond, a, b int, label string) {
	e.a.Op(vax.OpCmpl, vax.Rn(vr(a)), vax.Rn(vr(b)))
	e.a.Branch(vaxCond[c], label)
}

func (e *vaxEmitter) Push(r, depth int) { e.a.Op(vax.OpPushl, vax.Rn(vr(r))) }
func (e *vaxEmitter) Pop(r, depth int)  { e.a.Op(vax.OpMovl, vax.Pop(), vax.Rn(vr(r))) }

func (e *vaxEmitter) PushF(fr, depth int) {
	e.a.Op(vax.OpSubl2, vax.ImmL(8), vax.Rn(vax.SP))
	e.a.Op(vax.OpMovd, vax.Fn(vfrg(fr)), vax.Disp(vax.SP, 0))
}

func (e *vaxEmitter) PopF(fr, depth int) {
	e.a.Op(vax.OpMovd, vax.Disp(vax.SP, 0), vax.Fn(vfrg(fr)))
	e.a.Op(vax.OpAddl2, vax.ImmL(8), vax.Rn(vax.SP))
}

func (e *vaxEmitter) Call(sym string, argWords, depth int) {
	e.a.Jsb(sym)
	if argWords > 0 {
		e.a.Op(vax.OpAddl2, vax.ImmL(uint32(argWords)*4), vax.Rn(vax.SP))
	}
}

func (e *vaxEmitter) CallInd(r, argWords, depth int) {
	e.a.Op(vax.OpJsb, vax.Deferred(vr(r)))
	if argWords > 0 {
		e.a.Op(vax.OpAddl2, vax.ImmL(uint32(argWords)*4), vax.Rn(vax.SP))
	}
}

func (e *vaxEmitter) Result(r int) { e.a.Op(vax.OpMovl, vax.Rn(vax.R0), vax.Rn(vr(r))) }
func (e *vaxEmitter) SetRet(r int) { e.a.Op(vax.OpMovl, vax.Rn(vr(r)), vax.Rn(vax.R0)) }

func (e *vaxEmitter) FResult(fr int) { e.a.Op(vax.OpMovd, vax.Fn(0), vax.Fn(vfrg(fr))) }
func (e *vaxEmitter) SetFRet(fr int) { e.a.Op(vax.OpMovd, vax.Fn(vfrg(fr)), vax.Fn(0)) }

func (e *vaxEmitter) FBinOp(op Op, dst, a, b int) {
	d, x, y := vax.Fn(vfrg(dst)), vax.Fn(vfrg(a)), vax.Fn(vfrg(b))
	switch op {
	case OpAdd:
		e.a.Op(vax.OpAddd3, x, y, d)
	case OpSub:
		e.a.Op(vax.OpSubd3, y, x, d) // dst = src2 - src1 = a - b
	case OpMul:
		e.a.Op(vax.OpMuld3, x, y, d)
	case OpDiv:
		e.a.Op(vax.OpDivd3, y, x, d)
	}
}

func (e *vaxEmitter) FMove(dst, src int) {
	e.a.Op(vax.OpMovd, vax.Fn(vfrg(src)), vax.Fn(vfrg(dst)))
}

func (e *vaxEmitter) FNeg(dst, a int) {
	e.a.Op(vax.OpMnegd, vax.Fn(vfrg(a)), vax.Fn(vfrg(dst)))
}

func (e *vaxEmitter) FCmpBr(c Cond, a, b int, label string) {
	e.a.Op(vax.OpCmpd, vax.Fn(vfrg(a)), vax.Fn(vfrg(b)))
	e.a.Branch(vaxCond[c], label)
}

func (e *vaxEmitter) CvtIF(fdst, rsrc int) {
	e.a.Op(vax.OpCvtld, vax.Rn(vr(rsrc)), vax.Fn(vfrg(fdst)))
}

func (e *vaxEmitter) CvtFI(rdst, fsrc int) {
	e.a.Op(vax.OpCvtdl, vax.Fn(vfrg(fsrc)), vax.Rn(vr(rdst)))
}

func (e *vaxEmitter) RoundSingle(fr int) {
	e.a.Op(vax.OpSubl2, vax.ImmL(4), vax.Rn(vax.SP))
	e.a.Op(vax.OpMovf, vax.Fn(vfrg(fr)), vax.Disp(vax.SP, 0))
	e.a.Op(vax.OpMovf, vax.Disp(vax.SP, 0), vax.Fn(vfrg(fr)))
	e.a.Op(vax.OpAddl2, vax.ImmL(4), vax.Rn(vax.SP))
}

// InstrCount implements Emitter.
func (e *vaxEmitter) InstrCount() int { return e.a.Instrs() }

func (e *vaxEmitter) Finish() ([]byte, []arch.Reloc, map[string]int, error) {
	code, relocs, err := e.a.Finish()
	return code, relocs, e.a.Labels(), err
}

// Runtime implements Emitter.
func (e *vaxEmitter) Runtime(debug bool) *asm.Unit {
	a := vax.NewAsm()
	obj := &asm.Unit{Name: "runtime", Arch: "vax"}
	def := func(name string, f func()) {
		start := a.Off()
		a.Label(name)
		f()
		obj.AddSym(name, asm.SecText, start, a.Off()-start, true)
		obj.Funcs = append(obj.Funcs, asm.FuncInfo{Sym: name, FrameSize: 0})
	}
	def("_start", func() {
		if debug {
			a.Chmk(arch.TrapPause)
		}
		a.Jsb("_main")
		a.Op(vax.OpMovl, vax.Rn(vax.R0), vax.Rn(vax.R1))
		a.Chmk(arch.SysExit)
	})
	put := func(name string, sys uint32, addrOf bool) {
		def(name, func() {
			if addrOf {
				a.Op(vax.OpAddl3, vax.ImmL(4), vax.Rn(vax.SP), vax.Rn(vax.R1))
			} else {
				a.Op(vax.OpMovl, vax.Disp(vax.SP, 4), vax.Rn(vax.R1))
			}
			a.Chmk(sys)
			a.Rsb()
		})
	}
	put("_putint", arch.SysPutInt, false)
	put("_putchar", arch.SysPutChar, false)
	put("_putstr", arch.SysPutStr, false)
	put("_puthex", arch.SysPutHex, false)
	put("_putuint", arch.SysPutUint, false)
	put("_putfloat", arch.SysPutFloat, true)
	code, relocs, err := a.Finish()
	if err != nil {
		panic("vax runtime: " + err.Error())
	}
	obj.Text, obj.TextRelocs = code, relocs
	obj.Instrs = a.Instrs()
	return obj
}
