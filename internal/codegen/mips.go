//ldb:target mips
package codegen

import (
	"ldb/internal/arch"
	"ldb/internal/arch/mips"
	"ldb/internal/asm"
	"ldb/internal/cc"
)

// mipsEmitter targets the MIPS. The stack pointer is fixed for the
// whole body (the runtime procedure table describes frames by size, so
// nothing may move sp mid-function): the evaluation stack and the
// outgoing-argument area live at fixed offsets, and arguments are
// block-copied to the bottom of the frame before each call. Locals are
// addressed relative to the virtual frame pointer vfp = sp + frame.
type mipsEmitter struct {
	m    *mips.Mips
	a    *mips.Asm
	conf *cc.TargetConf

	frame   int32 // current function's frame size
	argArea int32 // bytes reserved for outgoing arguments
	layouts map[*cc.Func][2]int32
}

// NewMIPS returns the emitter for the given MIPS variant (big- or
// little-endian).
func NewMIPS(m *mips.Mips) Emitter {
	return &mipsEmitter{
		m:       m,
		a:       mips.NewAsm(m),
		conf:    &cc.TargetConf{Name: m.Name(), LDoubleSize: 8},
		layouts: make(map[*cc.Func][2]int32),
	}
}

// Scratch register maps.
var mipsR = [4]int{mips.T0, mips.T0 + 1, mips.T0 + 2, mips.T0 + 3}

func mr(i int) int  { return mipsR[i] }
func mfr(i int) int { return i + 1 } // f1, f2, f3; f0 is the return register

const mipsAT = 1 // assembler temporary, used for compares and arg copies

func (e *mipsEmitter) Conf() *cc.TargetConf  { return e.conf }
func (e *mipsEmitter) ArgsLeftToRight() bool { return true }

func (e *mipsEmitter) AssignFrame(fn *cc.Func, evalWords, maxArgWords int) int32 {
	// Incoming parameters sit above the frame at vfp+0, vfp+4, ...
	off := int32(0)
	for _, p := range fn.Params {
		p.FrameOff = off
		size := int32(p.Type.Size(e.conf))
		if size < 4 {
			size = 4
		}
		off += (size + 3) &^ 3
	}
	// Locals below the saved ra (vfp-4), growing down.
	loc := int32(-4)
	for _, l := range fn.Locals {
		size := int32(l.Type.Size(e.conf))
		if size < 4 {
			size = 4
		}
		loc -= (size + 3) &^ 3
		l.FrameOff = loc
	}
	localBytes := -4 - loc
	frame := 4 + localBytes + int32(evalWords)*4 + int32(maxArgWords)*4
	frame = (frame + 7) &^ 7
	e.layouts[fn] = [2]int32{frame, int32(maxArgWords) * 4}
	return frame
}

func (e *mipsEmitter) Prologue(fn *cc.Func) {
	l := e.layouts[fn]
	e.frame, e.argArea = l[0], l[1]
	e.a.I(mips.OpAddiu, mips.SP, mips.SP, -e.frame)
	e.a.I(mips.OpSw, mips.RA, mips.SP, e.frame-4)
}

func (e *mipsEmitter) Epilogue(fn *cc.Func) {
	e.a.I(mips.OpLw, mips.RA, mips.SP, e.frame-4)
	e.a.I(mips.OpAddiu, mips.SP, mips.SP, e.frame)
	e.a.R(mips.FnJr, 0, mips.RA, 0)
}

func (e *mipsEmitter) Label(name string) { e.a.Label(name) }

func (e *mipsEmitter) StopPoint(name string) {
	e.a.Label(name)
	e.a.Nop()
}

func (e *mipsEmitter) Branch(name string) { e.a.J(name) }

func (e *mipsEmitter) Const(r int, v int32) { e.a.LI(mr(r), v) }

func (e *mipsEmitter) AddrLocal(r int, off int32) {
	// vfp-relative: vfp = sp + frame.
	e.a.I(mips.OpAddiu, mr(r), mips.SP, e.frame+off)
}

func (e *mipsEmitter) AddrGlobal(r int, sym string, add int64) {
	e.a.LA(mr(r), sym, add)
}

func (e *mipsEmitter) Load(dst, addr int, ty MemType) {
	op := map[MemType]int{MI8: mips.OpLb, MU8: mips.OpLbu, MI16: mips.OpLh, MU16: mips.OpLhu, M32: mips.OpLw}[ty]
	e.a.I(op, mr(dst), mr(addr), 0)
}

func (e *mipsEmitter) Store(val, addr int, ty MemType) {
	op := map[MemType]int{MI8: mips.OpSb, MU8: mips.OpSb, MI16: mips.OpSh, MU16: mips.OpSh, M32: mips.OpSw}[ty]
	e.a.I(op, mr(val), mr(addr), 0)
}

func (e *mipsEmitter) LoadF(fdst, addr, size int) {
	if size == 4 {
		e.a.I(mips.OpLwc1, mfr(fdst), mr(addr), 0)
	} else {
		e.a.I(mips.OpLdc1, mfr(fdst), mr(addr), 0)
	}
}

func (e *mipsEmitter) StoreF(fsrc, addr, size int) {
	if size == 4 {
		e.a.I(mips.OpSwc1, mfr(fsrc), mr(addr), 0)
	} else {
		e.a.I(mips.OpSdc1, mfr(fsrc), mr(addr), 0)
	}
}

func (e *mipsEmitter) Move(dst, src int) {
	e.a.R(mips.FnAddu, mr(dst), mr(src), 0)
}

func (e *mipsEmitter) BinOp(op Op, dst, a, b int) {
	d, x, y := mr(dst), mr(a), mr(b)
	switch op {
	case OpAdd:
		e.a.R(mips.FnAddu, d, x, y)
	case OpSub:
		e.a.R(mips.FnSubu, d, x, y)
	case OpMul:
		e.a.R(mips.FnMul, d, x, y)
	case OpDiv:
		e.a.R(mips.FnDiv, d, x, y)
	case OpRem:
		e.a.R(mips.FnRem, d, x, y)
	case OpAnd:
		e.a.R(mips.FnAnd, d, x, y)
	case OpOr:
		e.a.R(mips.FnOr, d, x, y)
	case OpXor:
		e.a.R(mips.FnXor, d, x, y)
	case OpShl:
		e.a.R(mips.FnSllv, d, y, x) // rd = rt << rs
	case OpShr:
		e.a.R(mips.FnSrav, d, y, x)
	case OpShrU:
		e.a.R(mips.FnSrlv, d, y, x)
	}
}

func (e *mipsEmitter) Neg(dst, a int) { e.a.R(mips.FnSubu, mr(dst), 0, mr(a)) }
func (e *mipsEmitter) Com(dst, a int) { e.a.R(mips.FnNor, mr(dst), mr(a), 0) }

func (e *mipsEmitter) CmpBr(c Cond, a, b int, label string) {
	x, y := mr(a), mr(b)
	slt := mips.FnSlt
	switch c {
	case CondLtU, CondLeU, CondGtU, CondGeU:
		slt = mips.FnSltu
	}
	switch c {
	case CondEq:
		e.a.Branch(mips.OpBeq, x, y, label)
	case CondNe:
		e.a.Branch(mips.OpBne, x, y, label)
	case CondLt, CondLtU:
		e.a.R(slt, mipsAT, x, y)
		e.a.Branch(mips.OpBne, mipsAT, 0, label)
	case CondGe, CondGeU:
		e.a.R(slt, mipsAT, x, y)
		e.a.Branch(mips.OpBeq, mipsAT, 0, label)
	case CondGt, CondGtU:
		e.a.R(slt, mipsAT, y, x)
		e.a.Branch(mips.OpBne, mipsAT, 0, label)
	case CondLe, CondLeU:
		e.a.R(slt, mipsAT, y, x)
		e.a.Branch(mips.OpBeq, mipsAT, 0, label)
	}
}

func (e *mipsEmitter) slot(depth int) int32 { return e.argArea + 4*int32(depth) }

func (e *mipsEmitter) Push(r, depth int) {
	e.a.I(mips.OpSw, mr(r), mips.SP, e.slot(depth))
}

func (e *mipsEmitter) Pop(r, depth int) {
	e.a.I(mips.OpLw, mr(r), mips.SP, e.slot(depth))
}

func (e *mipsEmitter) PushF(fr, depth int) {
	e.a.I(mips.OpSdc1, mfr(fr), mips.SP, e.slot(depth))
}

func (e *mipsEmitter) PopF(fr, depth int) {
	e.a.I(mips.OpLdc1, mfr(fr), mips.SP, e.slot(depth))
}

// copyArgs block-copies the top argWords of the evaluation stack to the
// outgoing-argument area at sp+0.
func (e *mipsEmitter) copyArgs(argWords, depth int) {
	base := depth - argWords
	for i := 0; i < argWords; i++ {
		e.a.I(mips.OpLw, mipsAT, mips.SP, e.slot(base+i))
		e.a.I(mips.OpSw, mipsAT, mips.SP, 4*int32(i))
	}
}

func (e *mipsEmitter) Call(sym string, argWords, depth int) {
	e.copyArgs(argWords, depth)
	e.a.Jal(sym)
}

func (e *mipsEmitter) CallInd(r, argWords, depth int) {
	e.copyArgs(argWords, depth)
	e.a.R(mips.FnJalr, mips.RA, mr(r), 0)
}

func (e *mipsEmitter) Result(r int)   { e.a.R(mips.FnAddu, mr(r), mips.V0, 0) }
func (e *mipsEmitter) SetRet(r int)   { e.a.R(mips.FnAddu, mips.V0, mr(r), 0) }
func (e *mipsEmitter) FResult(fr int) { e.a.Fp(mips.FpMov, mips.C1FmtD, mfr(fr), 0, 0) }
func (e *mipsEmitter) SetFRet(fr int) { e.a.Fp(mips.FpMov, mips.C1FmtD, 0, mfr(fr), 0) }

func (e *mipsEmitter) FBinOp(op Op, dst, a, b int) {
	fn := map[Op]int{OpAdd: mips.FpAdd, OpSub: mips.FpSub, OpMul: mips.FpMul, OpDiv: mips.FpDiv}[op]
	e.a.Fp(fn, mips.C1FmtD, mfr(dst), mfr(a), mfr(b))
}

func (e *mipsEmitter) FMove(dst, src int) {
	e.a.Fp(mips.FpMov, mips.C1FmtD, mfr(dst), mfr(src), 0)
}

func (e *mipsEmitter) FNeg(dst, a int) {
	e.a.Fp(mips.FpNeg, mips.C1FmtD, mfr(dst), mfr(a), 0)
}

func (e *mipsEmitter) FCmpBr(c Cond, a, b int, label string) {
	x, y := mfr(a), mfr(b)
	switch c {
	case CondEq:
		e.a.Fp(mips.FpCEq, mips.C1FmtD, 0, x, y)
		e.a.Bc1(1, label)
	case CondNe:
		e.a.Fp(mips.FpCEq, mips.C1FmtD, 0, x, y)
		e.a.Bc1(0, label)
	case CondLt, CondLtU:
		e.a.Fp(mips.FpCLt, mips.C1FmtD, 0, x, y)
		e.a.Bc1(1, label)
	case CondLe, CondLeU:
		e.a.Fp(mips.FpCLe, mips.C1FmtD, 0, x, y)
		e.a.Bc1(1, label)
	case CondGt, CondGtU:
		e.a.Fp(mips.FpCLt, mips.C1FmtD, 0, y, x)
		e.a.Bc1(1, label)
	case CondGe, CondGeU:
		e.a.Fp(mips.FpCLe, mips.C1FmtD, 0, y, x)
		e.a.Bc1(1, label)
	}
}

func (e *mipsEmitter) CvtIF(fdst, rsrc int) { e.a.Mtc1(mr(rsrc), mfr(fdst)) }
func (e *mipsEmitter) CvtFI(rdst, fsrc int) { e.a.Mfc1(mr(rdst), mfr(fsrc)) }
func (e *mipsEmitter) RoundSingle(fr int) {
	e.a.Fp(mips.FpCvtS, mips.C1FmtD, mfr(fr), mfr(fr), 0)
}

// InstrCount implements Emitter.
func (e *mipsEmitter) InstrCount() int { return e.a.Instrs() }

// EnableSched implements Scheduler.
func (e *mipsEmitter) EnableSched(on bool) { e.a.Sched = on }

// SchedStats implements Scheduler.
func (e *mipsEmitter) SchedStats() (int, int) { return e.a.Filled, e.a.Padded }

func (e *mipsEmitter) Finish() ([]byte, []arch.Reloc, map[string]int, error) {
	code, relocs, err := e.a.Finish()
	return code, relocs, e.a.Labels(), err
}

// Runtime implements Emitter: _start pauses for the nub (when built for
// debugging), calls main, and exits with main's return value; the
// output routines wrap system calls.
func (e *mipsEmitter) Runtime(debug bool) *asm.Unit {
	a := mips.NewAsm(e.m)
	obj := &asm.Unit{Name: "runtime", Arch: e.m.Name()}
	def := func(name string, f func()) {
		start := a.Off()
		a.Label(name)
		f()
		obj.AddSym(name, asm.SecText, start, a.Off()-start, true)
		obj.Funcs = append(obj.Funcs, asm.FuncInfo{Sym: name, FrameSize: 0})
	}
	def("_start", func() {
		if debug {
			a.Break(arch.TrapPause)
		}
		a.Jal("_main")
		a.R(mips.FnAddu, mips.A0, mips.V0, 0)
		a.LI(mips.V0, arch.SysExit)
		a.Syscall()
	})
	put := func(name string, sys int32, addrOf bool) {
		def(name, func() {
			if addrOf {
				a.I(mips.OpAddiu, mips.A0, mips.SP, 0)
			} else {
				a.I(mips.OpLw, mips.A0, mips.SP, 0)
			}
			a.LI(mips.V0, sys)
			a.Syscall()
			a.R(mips.FnJr, 0, mips.RA, 0)
		})
	}
	put("_putint", arch.SysPutInt, false)
	put("_putchar", arch.SysPutChar, false)
	put("_putstr", arch.SysPutStr, false)
	put("_puthex", arch.SysPutHex, false)
	put("_putuint", arch.SysPutUint, false)
	put("_putfloat", arch.SysPutFloat, true)
	code, relocs, err := a.Finish()
	if err != nil {
		panic("mips runtime: " + err.Error())
	}
	obj.Text, obj.TextRelocs = code, relocs
	obj.Instrs = a.Instrs()
	return obj
}
