package codegen

import (
	"fmt"

	"ldb/internal/asm"
	"ldb/internal/cc"
)

// Scratch register indices used by the generic walker.
const (
	regT = 0 // expression value
	regU = 1 // second operand / scratch
	regV = 2 // address scratch for read-modify-write
	regW = 3 // alternate address scratch (see leafAddrReg)
)

// Options controls code generation.
type Options struct {
	// Debug emits stopping-point labels and no-ops and the anchor
	// table (compiling with -g).
	Debug bool
}

// GenUnit compiles a typechecked unit through the given emitter.
func GenUnit(u *cc.Unit, em Emitter, opts Options) (*asm.Unit, error) {
	g := &gen{em: em, u: u, opts: opts}
	// Sizing pass: compute evaluation-stack and argument-area maxima
	// per function, then assign frames.
	null := &nullEmitter{conf: em.Conf(), l2r: em.ArgsLeftToRight()}
	for _, fn := range u.Funcs {
		gs := &gen{em: null, u: u, opts: opts}
		gs.fn = fn
		gs.genFunc(fn)
		fn.FrameSize = em.AssignFrame(fn, gs.maxEval, gs.maxArgs)
	}
	// Emitting pass.
	for _, fn := range u.Funcs {
		g.fn = fn
		g.genFunc(fn)
	}
	if len(g.errs) > 0 {
		return nil, g.errs[0]
	}
	text, relocs, labels, err := em.Finish()
	if err != nil {
		return nil, err
	}
	obj := &asm.Unit{Name: u.File, Arch: em.Conf().Name, Text: text, TextRelocs: relocs, Instrs: em.InstrCount()}
	for name, off := range labels {
		global := false
		for _, fn := range u.Funcs {
			if fn.Sym.Label == name {
				global = true
			}
		}
		obj.AddSym(name, asm.SecText, off, 0, global)
	}
	for _, fn := range u.Funcs {
		obj.Funcs = append(obj.Funcs, asm.FuncInfo{Sym: fn.Sym.Label, FrameSize: fn.FrameSize})
	}
	if err := g.buildData(obj); err != nil {
		return nil, err
	}
	return obj, nil
}

// gen is the per-unit generator state.
type gen struct {
	em   Emitter
	u    *cc.Unit
	fn   *cc.Func
	opts Options

	depth   int // evaluation-stack depth in words
	maxEval int
	maxArgs int
	labelN  int
	brk     []string
	cont    []string

	fconsts []float64 // float literals, labeled .fc<N> in data
	errs    []error
	leafAlt bool // alternates leaf-address registers between V and W
}

func (g *gen) errf(pos cc.Pos, format string, args ...any) {
	if len(g.errs) < 20 {
		g.errs = append(g.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	}
}

// userLabel names a source-level goto label uniquely per function,
// outside both the compiler's ".p_f_N" space and the stop labels.
func (g *gen) userLabel(name string) string {
	return ".ul_" + g.fn.Sym.Name + "_" + name
}

// retBufLabel names a function's static aggregate-return buffer,
// outside both the ".ret_" return-label space and user symbols.
func retBufLabel(fn *cc.Func) string { return ".rbuf_" + fn.Sym.Name }

func (g *gen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf(".%s_%s_%d", prefix, g.fn.Sym.Name, g.labelN)
}

func (g *gen) push(r int) {
	g.em.Push(r, g.depth)
	g.depth++
	if g.depth > g.maxEval {
		g.maxEval = g.depth
	}
}

func (g *gen) pop(r int) {
	g.depth--
	g.em.Pop(r, g.depth)
}

func (g *gen) pushF(fr int) {
	g.em.PushF(fr, g.depth)
	g.depth += 2
	if g.depth > g.maxEval {
		g.maxEval = g.depth
	}
}

func (g *gen) popF(fr int) {
	g.depth -= 2
	g.em.PopF(fr, g.depth)
}

func (g *gen) stop(sp *cc.StopPoint) {
	if g.opts.Debug && sp != nil {
		g.em.StopPoint(sp.Label)
	}
}

func (g *gen) genFunc(fn *cc.Func) {
	g.fn = fn
	g.depth, g.maxEval, g.maxArgs, g.labelN = 0, 0, 0, 0
	retLabel := ".ret_" + fn.Sym.Name
	g.em.Label(fn.Sym.Label)
	g.em.Prologue(fn)
	g.genStmt(fn.Body, retLabel)
	g.em.Label(retLabel)
	g.stop(fn.ExitStop)
	g.em.Epilogue(fn)
}

// --- statements ---

func (g *gen) genStmt(s *cc.Stmt, retLabel string) {
	if s == nil {
		return
	}
	switch s.Op {
	case cc.SBlock:
		g.stop(s.Stop) // function-entry stop, when attached
		for _, st := range s.Body {
			g.genStmt(st, retLabel)
		}
	case cc.SEmpty:
	case cc.SLabel:
		g.em.Label(g.userLabel(s.Name))
		g.genStmt(s.Then, retLabel)
	case cc.SGoto:
		g.stop(s.Stop)
		g.em.Branch(g.userLabel(s.Name))
	case cc.SExpr:
		g.stop(s.Stop)
		g.genExpr(s.Expr)
	case cc.SReturn:
		g.stop(s.Stop)
		if s.Expr != nil {
			if isAgg(s.Expr.Type) {
				// Aggregate return: copy the value into the function's
				// static return buffer and return the buffer's address
				// (the classic non-reentrant convention; documented
				// subset restriction).
				words := g.aggWords(s.Expr.Type)
				g.genExpr(s.Expr) // source address in T
				g.em.Move(regU, regT)
				g.em.AddrGlobal(regT, retBufLabel(g.fn), 0)
				g.structCopy(regT, regU, words)
				g.em.SetRet(regT)
			} else if isFloat(s.Expr.Type) {
				g.genExpr(s.Expr)
				g.em.SetFRet(regT)
			} else {
				g.genExpr(s.Expr)
				g.em.SetRet(regT)
			}
		}
		g.em.Branch(retLabel)
	case cc.SIf:
		lElse := g.label("else")
		lEnd := g.label("endif")
		g.stop(s.Stop)
		g.genCondFalse(s.Cond, lElse)
		g.genStmt(s.Then, retLabel)
		if s.Else != nil {
			g.em.Branch(lEnd)
		}
		g.em.Label(lElse)
		if s.Else != nil {
			g.genStmt(s.Else, retLabel)
			g.em.Label(lEnd)
		}
	case cc.SWhile:
		lCond := g.label("while")
		lEnd := g.label("endwhile")
		g.em.Label(lCond)
		g.stop(s.Stop)
		g.genCondFalse(s.Cond, lEnd)
		g.brk = append(g.brk, lEnd)
		g.cont = append(g.cont, lCond)
		g.genStmt(s.Then, retLabel)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		g.em.Branch(lCond)
		g.em.Label(lEnd)
	case cc.SFor:
		lCond := g.label("for")
		lCont := g.label("forpost")
		lEnd := g.label("endfor")
		if s.Init != nil {
			g.stop(s.Stop)
			g.genExpr(s.Init)
		}
		g.em.Label(lCond)
		if s.Cond != nil {
			g.stop(s.CondStop)
			g.genCondFalse(s.Cond, lEnd)
		}
		g.brk = append(g.brk, lEnd)
		g.cont = append(g.cont, lCont)
		g.genStmt(s.Then, retLabel)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		g.em.Label(lCont)
		if s.Post != nil {
			g.stop(s.PostStop)
			g.genExpr(s.Post)
		}
		g.em.Branch(lCond)
		g.em.Label(lEnd)
	case cc.SDo:
		lBody := g.label("do")
		lCond := g.label("docond")
		lEnd := g.label("enddo")
		g.em.Label(lBody)
		g.brk = append(g.brk, lEnd)
		g.cont = append(g.cont, lCond)
		g.genStmt(s.Then, retLabel)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		g.em.Label(lCond)
		g.stop(s.CondStop)
		g.genCondTrue(s.Cond, lBody)
		g.em.Label(lEnd)
	case cc.SSwitch:
		g.stop(s.Stop)
		g.genSwitch(s, retLabel)
	case cc.SBreak:
		if len(g.brk) > 0 {
			g.em.Branch(g.brk[len(g.brk)-1])
		}
	case cc.SContinue:
		if len(g.cont) > 0 {
			g.em.Branch(g.cont[len(g.cont)-1])
		}
	}
}

// genSwitch compiles a switch as a compare chain into labeled arms
// with C fall-through; break exits past the last arm.
func (g *gen) genSwitch(s *cc.Stmt, retLabel string) {
	lEnd := g.label("endswitch")
	g.genExpr(s.Expr) // value stays in T across the CmpBr chain
	caseLabels := make([]string, len(s.Cases))
	defaultLabel := lEnd
	for i, c := range s.Cases {
		caseLabels[i] = g.label("case")
		if c.IsDefault {
			defaultLabel = caseLabels[i]
			continue
		}
		g.em.Const(regU, int32(c.Val))
		g.em.CmpBr(CondEq, regT, regU, caseLabels[i])
	}
	g.em.Branch(defaultLabel)
	g.brk = append(g.brk, lEnd)
	for i, c := range s.Cases {
		g.em.Label(caseLabels[i])
		for _, st := range c.Body {
			g.genStmt(st, retLabel)
		}
		// fall through to the next arm, as in C
	}
	g.brk = g.brk[:len(g.brk)-1]
	g.em.Label(lEnd)
}

// --- conditions ---

func condOf(op cc.ExprOp, unsigned bool) (Cond, bool) {
	var c Cond
	switch op {
	case cc.EEq:
		c = CondEq
	case cc.ENe:
		c = CondNe
	case cc.ELt:
		c = CondLt
	case cc.ELe:
		c = CondLe
	case cc.EGt:
		c = CondGt
	case cc.EGe:
		c = CondGe
	default:
		return 0, false
	}
	if unsigned && c != CondEq && c != CondNe {
		c += CondLtU - CondLt
	}
	return c, true
}

func isUnsignedCmp(e *cc.Expr) bool {
	t := e.L.Type
	return t.Kind == cc.TyUInt || t.Kind == cc.TyPtr
}

// genCondFalse branches to label when e is false.
func (g *gen) genCondFalse(e *cc.Expr, label string) {
	switch e.Op {
	case cc.ELogAnd:
		g.genCondFalse(e.L, label)
		g.genCondFalse(e.R, label)
		return
	case cc.ELogOr:
		lTrue := g.label("or")
		g.genCondTrue(e.L, lTrue)
		g.genCondFalse(e.R, label)
		g.em.Label(lTrue)
		return
	case cc.ELogNot:
		g.genCondTrue(e.L, label)
		return
	case cc.EEq, cc.ENe, cc.ELt, cc.ELe, cc.EGt, cc.EGe:
		c, _ := condOf(e.Op, isUnsignedCmp(e))
		la, rb := g.genCmpOperands(e)
		if isFloat(e.L.Type) {
			g.em.FCmpBr(c.Negate(), la, rb, label)
		} else {
			g.em.CmpBr(c.Negate(), la, rb, label)
		}
		return
	case cc.EConst:
		if e.IVal == 0 {
			g.em.Branch(label)
		}
		return
	}
	g.genExpr(e)
	if isFloat(e.Type) {
		g.zeroF(regU + 1)
		g.em.FCmpBr(CondEq, regT, regU+1, label)
	} else {
		g.em.Const(regU, 0)
		g.em.CmpBr(CondEq, regT, regU, label)
	}
}

// genCondTrue branches to label when e is true.
func (g *gen) genCondTrue(e *cc.Expr, label string) {
	switch e.Op {
	case cc.ELogOr:
		g.genCondTrue(e.L, label)
		g.genCondTrue(e.R, label)
		return
	case cc.ELogAnd:
		lFalse := g.label("and")
		g.genCondFalse(e.L, lFalse)
		g.genCondTrue(e.R, label)
		g.em.Label(lFalse)
		return
	case cc.ELogNot:
		g.genCondFalse(e.L, label)
		return
	case cc.EEq, cc.ENe, cc.ELt, cc.ELe, cc.EGt, cc.EGe:
		c, _ := condOf(e.Op, isUnsignedCmp(e))
		la, rb := g.genCmpOperands(e)
		if isFloat(e.L.Type) {
			g.em.FCmpBr(c, la, rb, label)
		} else {
			g.em.CmpBr(c, la, rb, label)
		}
		return
	case cc.EConst:
		if e.IVal != 0 {
			g.em.Branch(label)
		}
		return
	}
	g.genExpr(e)
	if isFloat(e.Type) {
		g.zeroF(regU + 1)
		g.em.FCmpBr(CondNe, regT, regU+1, label)
	} else {
		g.em.Const(regU, 0)
		g.em.CmpBr(CondNe, regT, regU, label)
	}
}

// genCmpOperands evaluates the comparison operands and reports which
// registers hold (left, right).
func (g *gen) genCmpOperands(e *cc.Expr) (la, rb int) {
	if isFloat(e.L.Type) {
		g.genExpr(e.L)
		g.pushF(regT)
		g.genExpr(e.R)
		g.popF(regU)
		return regU, regT
	}
	return g.genOperands(e.L, e.R)
}

// zeroF materializes 0.0 into the given float scratch register.
func (g *gen) zeroF(fr int) {
	g.em.Const(regU, 0)
	g.em.CvtIF(fr, regU)
}

func isFloat(t *cc.Type) bool { return t != nil && t.IsFloat() }
