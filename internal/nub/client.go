package nub

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/machine"
)

func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(u uint64) float64 { return math.Float64frombits(u) }

// Event is a signal or exit reported by the nub.
type Event struct {
	Exited bool
	Status int
	Sig    arch.Signal
	Code   int
	PC     uint32
	// Ctx is the target address of the context record.
	Ctx uint32
}

func (e *Event) String() string {
	if e.Exited {
		return fmt.Sprintf("exited(%d)", e.Status)
	}
	return fmt.Sprintf("%v code=%d pc=%#x", e.Sig, e.Code, e.PC)
}

// Client is the debugger end of the nub protocol.
type Client struct {
	conn     io.ReadWriter
	ArchName string
	CtxAddr  uint32
	CtxSize  uint32
	// Last is the most recent event.
	Last *Event
}

// Connect performs the protocol handshake: it reads the nub's welcome
// and the pending event.
func Connect(conn io.ReadWriter) (*Client, error) {
	w, err := ReadMsg(conn)
	if err != nil {
		return nil, err
	}
	if w.Kind != MWelcome {
		return nil, fmt.Errorf("nub: expected welcome, got %v", w.Kind)
	}
	c := &Client{conn: conn, ArchName: string(w.Data), CtxAddr: w.Addr, CtxSize: w.Size}
	ev, err := c.readEvent()
	if err != nil {
		return nil, err
	}
	c.Last = ev
	return c, nil
}

// Dial connects to a nub listening on a TCP address.
func Dial(addr string) (*Client, net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	c, err := Connect(conn)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return c, conn, nil
}

func (c *Client) readEvent() (*Event, error) {
	m, err := ReadMsg(c.conn)
	if err != nil {
		return nil, err
	}
	switch m.Kind {
	case MEvent:
		return &Event{Sig: arch.Signal(m.Sig), Code: int(m.Code), PC: uint32(m.Val), Ctx: m.Addr}, nil
	case MExited:
		return &Event{Exited: true, Status: int(m.Code)}, nil
	default:
		return nil, fmt.Errorf("nub: expected event, got %v", m.Kind)
	}
}

func (c *Client) roundTrip(req *Msg, want MsgKind) (*Msg, error) {
	if err := WriteMsg(c.conn, req); err != nil {
		return nil, err
	}
	rep, err := ReadMsg(c.conn)
	if err != nil {
		return nil, err
	}
	if rep.Kind == MError {
		return nil, errors.New("nub: " + string(rep.Data))
	}
	if rep.Kind != want {
		return nil, fmt.Errorf("nub: expected %v, got %v", want, rep.Kind)
	}
	return rep, nil
}

// FetchInt reads a size-byte integer at addr in the given space.
func (c *Client) FetchInt(space amem.Space, addr uint32, size int) (uint64, error) {
	rep, err := c.roundTrip(&Msg{Kind: MFetchInt, Space: byte(space), Addr: addr, Size: uint32(size)}, MValue)
	if err != nil {
		return 0, err
	}
	return rep.Val, nil
}

// StoreInt writes a size-byte integer.
func (c *Client) StoreInt(space amem.Space, addr uint32, size int, val uint64) error {
	_, err := c.roundTrip(&Msg{Kind: MStoreInt, Space: byte(space), Addr: addr, Size: uint32(size), Val: val}, MOK)
	return err
}

// FetchFloat reads a float of logical size 4, 8, or 10.
func (c *Client) FetchFloat(space amem.Space, addr uint32, size int) (float64, error) {
	rep, err := c.roundTrip(&Msg{Kind: MFetchFloat, Space: byte(space), Addr: addr, Size: uint32(size)}, MFValue)
	if err != nil {
		return 0, err
	}
	return float64frombits(rep.Val), nil
}

// StoreFloat writes a float of logical size 4, 8, or 10.
func (c *Client) StoreFloat(space amem.Space, addr uint32, size int, val float64) error {
	_, err := c.roundTrip(&Msg{Kind: MStoreFloat, Space: byte(space), Addr: addr, Size: uint32(size), Val: float64bits(val)}, MOK)
	return err
}

// FetchBytes reads n raw bytes.
func (c *Client) FetchBytes(space amem.Space, addr uint32, n int) ([]byte, error) {
	rep, err := c.roundTrip(&Msg{Kind: MFetchBytes, Space: byte(space), Addr: addr, Size: uint32(n)}, MBytes)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// StoreBytes writes raw bytes.
func (c *Client) StoreBytes(space amem.Space, addr uint32, data []byte) error {
	_, err := c.roundTrip(&Msg{Kind: MStoreBytes, Space: byte(space), Addr: addr, Data: data}, MOK)
	return err
}

// PlantStore writes a breakpoint trap through the special planting
// store (§7.1), so the nub remembers the overwritten instruction.
func (c *Client) PlantStore(addr uint32, trap []byte) error {
	_, err := c.roundTrip(&Msg{Kind: MPlantStore, Space: byte(amem.Code), Addr: addr, Data: trap}, MOK)
	return err
}

// UnplantStore removes a planted breakpoint, restoring the original
// instruction from the nub's record.
func (c *Client) UnplantStore(addr uint32) error {
	_, err := c.roundTrip(&Msg{Kind: MUnplantStore, Space: byte(amem.Code), Addr: addr}, MOK)
	return err
}

// PlantedRecord is one breakpoint the nub knows about.
type PlantedRecord struct {
	Addr     uint32
	Original []byte
}

// ListPlanted asks the nub which breakpoints are planted — how a new
// debugger recovers the breakpoints of a lost one (§7.1).
func (c *Client) ListPlanted() ([]PlantedRecord, error) {
	rep, err := c.roundTrip(&Msg{Kind: MListPlanted}, MPlanted)
	if err != nil {
		return nil, err
	}
	var out []PlantedRecord
	b := rep.Data
	for len(b) >= 8 {
		addr := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		n := int(uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24)
		b = b[8:]
		if n > len(b) {
			return nil, fmt.Errorf("nub: malformed planted list")
		}
		out = append(out, PlantedRecord{Addr: addr, Original: append([]byte(nil), b[:n]...)})
		b = b[n:]
	}
	return out, nil
}

// Continue resumes the target and blocks until the next event.
func (c *Client) Continue() (*Event, error) {
	if err := WriteMsg(c.conn, &Msg{Kind: MContinue}); err != nil {
		return nil, err
	}
	ev, err := c.readEvent()
	if err != nil {
		return nil, err
	}
	c.Last = ev
	return ev, nil
}

// Close severs the connection without telling the nub — the way a
// crashed debugger disappears. The nub preserves target state.
func (c *Client) Close() error {
	if closer, ok := c.conn.(interface{ Close() error }); ok {
		return closer.Close()
	}
	return nil
}

// Kill terminates the target.
func (c *Client) Kill() error {
	_, err := c.roundTrip(&Msg{Kind: MKill}, MOK)
	return err
}

// Detach breaks the connection, leaving the target stopped and the nub
// waiting for a new debugger.
func (c *Client) Detach() error {
	_, err := c.roundTrip(&Msg{Kind: MDetach}, MOK)
	return err
}

// Wire is the abstract memory that holds the connection to the nub
// (§4.1): it forwards fetch and store requests over the protocol. Only
// the code and data spaces (and immediates) are served; register spaces
// are handled above the wire by alias memories.
type Wire struct {
	C *Client
}

// Name implements amem.Memory.
func (w *Wire) Name() string { return "wire" }

// FetchInt implements amem.Memory.
func (w *Wire) FetchInt(loc amem.Location, size int) (uint64, error) {
	if loc.Mode == amem.Immediate {
		return loc.Imm, nil
	}
	if !validSpace(byte(loc.Space)) {
		return 0, fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.FetchInt(loc.Space, uint32(loc.Offset), size)
}

// StoreInt implements amem.Memory.
func (w *Wire) StoreInt(loc amem.Location, size int, val uint64) error {
	if loc.Mode == amem.Immediate {
		return amem.ErrImmStore
	}
	if !validSpace(byte(loc.Space)) {
		return fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.StoreInt(loc.Space, uint32(loc.Offset), size, val)
}

// FetchFloat implements amem.Memory.
func (w *Wire) FetchFloat(loc amem.Location, size int) (float64, error) {
	if loc.Mode == amem.Immediate {
		return loc.ImmF, nil
	}
	if !validSpace(byte(loc.Space)) {
		return 0, fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.FetchFloat(loc.Space, uint32(loc.Offset), size)
}

// StoreFloat implements amem.Memory.
func (w *Wire) StoreFloat(loc amem.Location, size int, val float64) error {
	if loc.Mode == amem.Immediate {
		return amem.ErrImmStore
	}
	if !validSpace(byte(loc.Space)) {
		return fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.StoreFloat(loc.Space, uint32(loc.Offset), size, val)
}

// Pair wires a client directly to a nub over an in-memory connection —
// the "target process forked as a child" arrangement. It starts the
// target if it has not produced an event yet.
func Pair(n *Nub) (*Client, error) {
	a, b := net.Pipe()
	go func() {
		for {
			if err := n.Serve(b); err == nil {
				return
			}
			// Connection broken; in the paired arrangement there is no
			// one to reconnect, so stop.
			return
		}
	}()
	return Connect(a)
}

// Launch builds a process for the architecture, attaches a nub, and
// returns a connected client: the complete "debugger forks the target"
// path used by tests and examples.
func Launch(a arch.Arch, text, data []byte, entry uint32) (*Client, *Nub, *machine.Process, error) {
	p := machine.New(a, text, data, entry)
	n := New(p)
	c, err := Pair(n)
	if err != nil {
		return nil, nil, nil, err
	}
	return c, n, p, nil
}
