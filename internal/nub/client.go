package nub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"sync/atomic"
	"time"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/machine"
)

func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(u uint64) float64 { return math.Float64frombits(u) }

// Event is a signal or exit reported by the nub.
type Event struct {
	Exited bool
	Status int
	Sig    arch.Signal
	Code   int
	PC     uint32
	// Ctx is the target address of the context record.
	Ctx uint32
}

func (e *Event) String() string {
	if e.Exited {
		return fmt.Sprintf("exited(%d)", e.Status)
	}
	return fmt.Sprintf("%v code=%d pc=%#x", e.Sig, e.Code, e.PC)
}

// ErrConnLost is wrapped into every error caused by a broken or
// timed-out connection, as opposed to an error the nub itself reported
// over a healthy wire. Callers can test with errors.Is (or IsConnLost).
var ErrConnLost = errors.New("nub: connection lost")

// ErrWelcomeMismatch is wrapped into reconnect errors when the redialed
// endpoint announces a different target than the session began with.
var ErrWelcomeMismatch = errors.New("nub: reconnected to a different target")

// ErrRolledBack is wrapped into errors for requests that crashed
// server-side: the debug service rolled the session back to its last
// checkpoint, restoring exactly the state the request saw, so the
// request — any request, stores and resumes included — may be safely
// retried. The client does so transparently, bounded by maxReplays.
var ErrRolledBack = errors.New("nub: session rolled back to its last checkpoint")

// IsConnLost reports whether err was caused by a broken or timed-out
// connection (the session may have been transparently reconnected; see
// Client.Last for the nub's latched event in that case).
func IsConnLost(err error) bool { return errors.Is(err, ErrConnLost) }

const (
	// DefaultTimeout bounds each wire request so a dead nub yields an
	// error, never a hang. SetTimeout overrides; 0 disables.
	DefaultTimeout = 30 * time.Second
	// DefaultRetries is how many redials one reconnect cycle attempts.
	DefaultRetries = 3
	// maxReplays bounds how many times one request is transparently
	// re-sent across reconnects before the error surfaces.
	maxReplays = 4
)

// Client is the debugger end of the nub protocol. On top of the plain
// request/reply protocol it batches messages into MBatch envelopes
// (when the nub's welcome advertises support), keeps a read-through
// cache of target memory that a continue fully invalidates, counts
// wire traffic in a Stats, and survives a flaky wire: every request
// runs under a deadline, and on connection loss the client redials,
// re-validates the welcome, resyncs planted breakpoints, drops the
// cache, and replays the interrupted request when that is safe.
type Client struct {
	conn     io.ReadWriter // counted view of raw
	raw      io.ReadWriter // the connection itself (deadlines, close)
	ArchName string
	CtxAddr  uint32
	CtxSize  uint32
	// Last is the most recent event. A reconnect updates it from the
	// event the nub replays in its handshake.
	Last *Event

	stats   Stats
	batchOK bool // the nub's welcome advertised MBatch
	batchOn bool // client-side switch (default on)
	cache   *memCache
	order   binary.ByteOrder // target byte order, for serving cached ints

	timeout time.Duration
	retries int
	redial  func() (io.ReadWriter, error)
	// replayable is false only while awaiting the reply to a delivered
	// non-idempotent request — the one window where a connection loss
	// cannot be recovered transparently. Fault injectors gate on it.
	replayable atomic.Bool
	// planted is the nub's planted-breakpoint list from the most recent
	// reconnect resync.
	planted []PlantedRecord

	sessionsOK bool // the welcome advertised sessions (a debug service)
	// sessionID is the service session this connection is bound to, 0
	// when none. A reconnect re-attaches to it instead of trusting the
	// front-door welcome.
	sessionID      uint64
	sessionProgram string
}

// Connect performs the protocol handshake: it reads the nub's welcome
// and the pending event. Batching is negotiated from the welcome's
// capability bits; caching is on by default (Continue invalidates it).
// The welcome must name a registered architecture — the integer cache
// and context layout depend on it.
func Connect(conn io.ReadWriter) (*Client, error) {
	c := &Client{batchOn: true, cache: newMemCache(), timeout: DefaultTimeout, retries: DefaultRetries}
	c.replayable.Store(true)
	if err := c.adopt(conn, false); err != nil {
		return nil, err
	}
	return c, nil
}

// adopt performs the welcome handshake on rw and makes it the client's
// connection. With verify set (reconnecting) the welcome must name the
// same target the session began with, the memory cache is dropped, and
// the nub's planted-breakpoint list is resynced; without it (first
// connect) the welcome establishes the session's identity.
//
// Against a debug service the welcome describes the front door, not
// necessarily this client's target: a pool-only service greets with a
// capabilities-only lobby welcome (empty architecture name, no event),
// and a reconnecting client that had opened a session must re-attach to
// it rather than compare its identity against whatever the front door
// announces.
func (c *Client) adopt(rw io.ReadWriter, verify bool) error {
	c.raw = rw
	c.conn = &countRW{rw: rw, s: &c.stats}
	w, err := c.readWire()
	if err != nil {
		return err
	}
	if w.Kind != MWelcome {
		return fmt.Errorf("nub: expected welcome, got %v", w.Kind)
	}
	archName, ctxAddr, ctxSize := string(w.Data), w.Addr, w.Size
	c.batchOK = w.Val&WelcomeBatch != 0
	c.sessionsOK = w.Val&WelcomeSessions != 0
	lobby := archName == "" && c.sessionsOK
	if verify && c.sessionID != 0 {
		// Re-binding to a session. Drain the front door's handshake
		// event if it carries a target, then re-attach; attachWire
		// verifies the session's identity and replays its event.
		if !c.sessionsOK {
			return fmt.Errorf("%w: reconnected endpoint does not speak sessions", ErrWelcomeMismatch)
		}
		if !lobby {
			if _, err := c.readEvent(); err != nil {
				return err
			}
		}
		if err := c.attachWire(c.sessionID, true); err != nil {
			return err
		}
		c.InvalidateCache()
		if !c.Last.Exited {
			return c.resyncPlanted()
		}
		return nil
	}
	if lobby {
		// No target yet: identity arrives with OpenSession.
		c.ArchName, c.CtxAddr, c.CtxSize = "", 0, 0
		c.order = nil
		if verify {
			c.InvalidateCache()
		}
		return nil
	}
	a, ok := arch.Lookup(archName)
	if !ok {
		return fmt.Errorf("nub: welcome names unknown architecture %q", archName)
	}
	if verify && (archName != c.ArchName || ctxAddr != c.CtxAddr || ctxSize != c.CtxSize) {
		return fmt.Errorf("%w: welcome says %s ctx=%#x+%d, session began with %s ctx=%#x+%d",
			ErrWelcomeMismatch, archName, ctxAddr, ctxSize, c.ArchName, c.CtxAddr, c.CtxSize)
	}
	c.ArchName, c.CtxAddr, c.CtxSize = archName, ctxAddr, ctxSize
	c.order = a.Order()
	ev, err := c.readEvent()
	if err != nil {
		return err
	}
	c.Last = ev
	if verify {
		// No cached byte may survive: this connection may have been
		// preceded by stores whose replies were lost.
		c.InvalidateCache()
		if !ev.Exited {
			if err := c.resyncPlanted(); err != nil {
				return err
			}
		}
	}
	return nil
}

// attachWire binds the connection to session id, speaking the wire
// directly — roundTrip would recurse into reconnection, and a failure
// here must fail the adoption attempt instead. With verify set the
// MSession reply must match the identity the session began with;
// without it the reply establishes that identity.
func (c *Client) attachWire(id uint64, verify bool) error {
	if err := c.writeWire(&Msg{Kind: MAttachSession, Val: id}); err != nil {
		return err
	}
	rep, err := c.readWire()
	if err != nil {
		return err
	}
	c.stats.RoundTrips.Add(1)
	return c.adoptSession(rep, verify)
}

// adoptSession installs the identity carried by an MSession reply and
// reads the session's replayed stop event.
func (c *Client) adoptSession(rep *Msg, verify bool) error {
	if rep.Kind == MError {
		return errors.New("nub: " + string(rep.Data))
	}
	if rep.Kind != MSession {
		return fmt.Errorf("nub: expected %v, got %v", MSession, rep.Kind)
	}
	archName, ctxAddr, ctxSize := string(rep.Data), rep.Addr, rep.Size
	a, ok := arch.Lookup(archName)
	if !ok {
		return fmt.Errorf("nub: session names unknown architecture %q", archName)
	}
	if verify && (rep.Val != c.sessionID || archName != c.ArchName || ctxAddr != c.CtxAddr || ctxSize != c.CtxSize) {
		return fmt.Errorf("%w: session %d says %s ctx=%#x+%d, session began with %s ctx=%#x+%d",
			ErrWelcomeMismatch, rep.Val, archName, ctxAddr, ctxSize, c.ArchName, c.CtxAddr, c.CtxSize)
	}
	c.sessionID = rep.Val
	c.ArchName, c.CtxAddr, c.CtxSize = archName, ctxAddr, ctxSize
	c.order = a.Order()
	ev, err := c.readEvent()
	if err != nil {
		return err
	}
	c.Last = ev
	return nil
}

// resyncPlanted asks the just-adopted connection for the nub's planted
// breakpoints. It speaks the wire directly — roundTrip would recurse
// into reconnection on failure, and a failure here must instead fail
// this adoption attempt.
func (c *Client) resyncPlanted() error {
	if err := c.writeWire(&Msg{Kind: MListPlanted}); err != nil {
		return err
	}
	rep, err := c.readWire()
	if err != nil {
		return err
	}
	c.stats.RoundTrips.Add(1)
	if rep.Kind != MPlanted {
		return fmt.Errorf("nub: expected %v, got %v", MPlanted, rep.Kind)
	}
	recs, err := parsePlanted(rep.Data)
	if err != nil {
		return err
	}
	c.planted = recs
	return nil
}

// ResyncedPlanted returns the planted-breakpoint records the nub
// reported during the most recent reconnect (nil before the first).
func (c *Client) ResyncedPlanted() []PlantedRecord { return c.planted }

// SetTimeout bounds every wire request (and the event wait of a
// Continue); 0 disables the deadline. A timed-out request poisons the
// stream, so it is treated as a connection loss.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Timeout returns the per-request deadline.
func (c *Client) Timeout() time.Duration { return c.timeout }

// SetRetries sets how many redials one reconnect cycle attempts before
// giving up. Values below 1 mean one attempt.
func (c *Client) SetRetries(n int) { c.retries = n }

// Retries returns the reconnect attempt bound.
func (c *Client) Retries() int { return max(c.retries, 1) }

// SetRedial installs the dial function used to re-establish a lost
// connection. Dial installs one automatically; embedders handing
// Connect a raw conn must call this for reconnection to work.
func (c *Client) SetRedial(f func() (io.ReadWriter, error)) { c.redial = f }

// Replayable reports whether losing the connection at this instant is
// transparently recoverable: true except while awaiting the reply to a
// delivered store, plant, or continue. Deterministic fault injectors
// (faultrw) gate drops on it so a soak run stays byte-identical to a
// clean one.
func (c *Client) Replayable() bool { return c.replayable.Load() }

// SetBatching enables or disables MBatch envelopes. Batching is used
// only when the nub also advertised support; turning it off here forces
// the one-message-at-a-time protocol.
func (c *Client) SetBatching(on bool) { c.batchOn = on }

// SetCaching enables or disables the client-side memory cache. Turning
// it off drops everything cached.
func (c *Client) SetCaching(on bool) {
	if on {
		if c.cache == nil {
			c.cache = newMemCache()
		}
		return
	}
	c.cache = nil
}

// Batching reports whether envelopes are in use on this connection.
func (c *Client) Batching() bool { return c.batchOn && c.batchOK }

// Caching reports whether the client-side memory cache is in use.
func (c *Client) Caching() bool { return c.cache != nil }

// Stats returns a snapshot of the wire counters.
func (c *Client) Stats() StatsSnapshot { return c.stats.Snapshot() }

// ResetStats zeroes the wire counters.
func (c *Client) ResetStats() { c.stats.Reset() }

// InvalidateCache drops every cached byte. Continue does this
// automatically; it is exported for embedders that know the target
// changed some other way.
func (c *Client) InvalidateCache() {
	if c.cache != nil {
		c.cache.reset()
		c.stats.Invalidations.Add(1)
	}
}

// Dial connects to a nub listening on a TCP address and installs a
// redial function so a lost connection reconnects to the same address.
func Dial(addr string) (*Client, net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	c, err := Connect(conn)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	c.SetRedial(func() (io.ReadWriter, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return nc, nil
	})
	return c, conn, nil
}

// writeWire encodes one message under the deadline, classifying any
// failure as a connection loss.
func (c *Client) writeWire(m *Msg) error {
	if err := c.guarded(func() error { return WriteMsg(c.conn, m) }); err != nil {
		return fmt.Errorf("%w writing %v: %v", ErrConnLost, m.Kind, err)
	}
	c.stats.MsgsSent.Add(1)
	return nil
}

// readWire decodes one message under the deadline.
func (c *Client) readWire() (*Msg, error) {
	var m *Msg
	err := c.guarded(func() error {
		var e error
		m, e = ReadMsg(c.conn)
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("%w reading reply: %v", ErrConnLost, err)
	}
	c.stats.MsgsReceived.Add(1)
	return m, nil
}

// guarded runs one wire operation under the configured deadline:
// through net.Conn deadlines when the connection supports them, else
// through a watchdog that severs the connection so the blocked
// operation returns. With neither, the deadline is unenforceable.
func (c *Client) guarded(op func() error) error {
	if c.timeout <= 0 {
		return op()
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := c.raw.(deadliner); ok {
		if d.SetDeadline(time.Now().Add(c.timeout)) == nil {
			err := op()
			d.SetDeadline(time.Time{})
			if err != nil && isTimeout(err) {
				c.stats.Timeouts.Add(1)
				err = fmt.Errorf("timed out after %v: %w", c.timeout, err)
			}
			return err
		}
	}
	if cl, ok := c.raw.(io.Closer); ok {
		var fired atomic.Bool
		t := time.AfterFunc(c.timeout, func() { fired.Store(true); cl.Close() })
		err := op()
		t.Stop()
		//ldb:allow detstate the watchdog flag only reshapes a timeout error message on an already-failed request; transcript content is unaffected
		if err != nil && fired.Load() {
			c.stats.Timeouts.Add(1)
			err = fmt.Errorf("timed out after %v (watchdog): %w", c.timeout, err)
		}
		return err
	}
	return op()
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (c *Client) readEvent() (*Event, error) {
	m, err := c.readWire()
	if err != nil {
		return nil, err
	}
	switch m.Kind {
	case MEvent:
		return &Event{Sig: arch.Signal(m.Sig), Code: int(m.Code), PC: uint32(m.Val), Ctx: m.Addr}, nil
	case MExited:
		return &Event{Exited: true, Status: int(m.Code)}, nil
	case MError:
		// The nub refused or could not complete the resume (a legacy nub
		// seeing MStepInst, a recovered server panic): a clean protocol
		// error on a healthy wire, not a connection loss. A rolled-back
		// resume is marked retryable — the session is back at the state
		// the resume saw.
		if m.Code == CodeRolledBack {
			return nil, fmt.Errorf("%w: %s", ErrRolledBack, m.Data)
		}
		return nil, errors.New("nub: " + string(m.Data))
	default:
		return nil, fmt.Errorf("nub: expected event, got %v", m.Kind)
	}
}

// exchange performs one request/reply on the current connection.
// delivered reports whether the request was fully written — if so, the
// nub may have executed it even when the reply was lost.
func (c *Client) exchange(req *Msg, want MsgKind) (rep *Msg, delivered bool, err error) {
	if err := c.writeWire(req); err != nil {
		return nil, false, err
	}
	if !reqIdempotent(req) {
		c.replayable.Store(false)
	}
	rep, err = c.readWire()
	c.replayable.Store(true)
	if err != nil {
		return nil, true, err
	}
	c.stats.RoundTrips.Add(1)
	if rep.Kind == MError {
		if rep.Code == CodeRolledBack {
			return nil, true, fmt.Errorf("%w: %s", ErrRolledBack, rep.Data)
		}
		return nil, true, errors.New("nub: " + string(rep.Data))
	}
	if rep.Kind != want {
		return nil, true, fmt.Errorf("nub: expected %v, got %v", want, rep.Kind)
	}
	return rep, true, nil
}

// roundTrip performs a request/reply exchange, riding out connection
// loss: it reconnects and replays the request when that cannot change
// target state — the request is idempotent, or its write never
// completed, so the nub never saw a whole message. A delivered store
// or plant whose reply was lost surfaces the error instead: the
// session is reconnected, but whether the request executed is unknown.
func (c *Client) roundTrip(req *Msg, want MsgKind) (*Msg, error) {
	for replay := 0; ; replay++ {
		rep, delivered, err := c.exchange(req, want)
		if err == nil {
			return rep, nil
		}
		if errors.Is(err, ErrRolledBack) {
			// The request crashed server-side and the session was rolled
			// back to exactly the state the request saw: retrying is safe
			// even for stores, plants, and resumes. Deterministic crashes
			// surface once the replay budget runs out.
			if replay >= maxReplays {
				return nil, fmt.Errorf("nub: %v failed after %d replays: %w", req.Kind, replay, err)
			}
			c.stats.Replays.Add(1)
			c.InvalidateCache()
			continue
		}
		if !errors.Is(err, ErrConnLost) {
			return rep, err
		}
		if rerr := c.reconnect(); rerr != nil {
			return nil, fmt.Errorf("%w (%w)", err, rerr)
		}
		if delivered && !reqIdempotent(req) {
			return nil, fmt.Errorf("%w during %v; session reconnected, but the request may have executed and was not replayed", ErrConnLost, req.Kind)
		}
		if replay >= maxReplays {
			return nil, fmt.Errorf("nub: %v failed after %d replays: %w", req.Kind, replay, err)
		}
		c.stats.Replays.Add(1)
	}
}

// reconnect redials the nub with bounded exponential backoff and
// jitter, re-validates the welcome against the session's identity, and
// re-adopts the connection (resyncing planted breakpoints and dropping
// the cache). A welcome mismatch aborts immediately — redialing a
// different target is not a transient failure.
func (c *Client) reconnect() error {
	if c.redial == nil {
		return errors.New("no redial endpoint configured")
	}
	c.closeRaw()
	retries := max(c.retries, 1)
	var last error
	for i := 0; i < retries; i++ {
		if i > 0 {
			time.Sleep(backoff(i))
		}
		rw, err := c.redial()
		if err != nil {
			last = err
			continue
		}
		if err := c.adopt(rw, true); err != nil {
			if cl, ok := rw.(io.Closer); ok {
				cl.Close()
			}
			if errors.Is(err, ErrWelcomeMismatch) {
				c.stats.ReconnectFails.Add(1)
				return err
			}
			last = err
			continue
		}
		c.stats.Reconnects.Add(1)
		return nil
	}
	c.stats.ReconnectFails.Add(1)
	return fmt.Errorf("reconnect gave up after %d attempts: %v", retries, last)
}

// backoff is the delay before reconnect attempt i (i >= 1): roughly
// 5ms doubling per attempt, capped at 250ms, with ±50% jitter so
// simultaneous clients do not redial in lockstep.
func backoff(attempt int) time.Duration {
	base := 5 * time.Millisecond << min(attempt-1, 6)
	if base > 250*time.Millisecond {
		base = 250 * time.Millisecond
	}
	//ldb:allow detstate reconnect jitter paces redials; it never reaches reply bytes or the transcript
	return base/2 + rand.N(base)
}

// cacheable reports whether the cache may serve this space at all: only
// the code and data spaces travel on the wire.
func cacheable(space amem.Space) bool {
	return space == amem.Code || space == amem.Data
}

// readahead is how many bytes a cache-missing FetchInt pulls over the
// wire instead of just the word asked for: one fetch of a line makes
// the neighboring words — the rest of an array, the anchor table, the
// next context slots — free. Lines travel as MFetchLine requests,
// which the nub truncates at the segment end, so readahead never
// manufactures errors that an exact fetch would not have hit.
const readahead = 256

// fetchLine pulls a readahead line via MFetchLine; the reply may be
// shorter than asked when the containing segment ends early. Only sent
// to nubs that negotiated the batch capability — a legacy nub never
// sees the request kind.
func (c *Client) fetchLine(space amem.Space, addr uint32, n int) ([]byte, error) {
	rep, err := c.roundTrip(&Msg{Kind: MFetchLine, Space: byte(space), Addr: addr, Size: uint32(n)}, MBytes)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// FetchInt reads a size-byte integer at addr in the given space. With
// the cache on, a hit costs nothing on the wire and a miss pulls a
// readahead line so neighboring fetches hit.
func (c *Client) FetchInt(space amem.Space, addr uint32, size int) (uint64, error) {
	if c.cache != nil && cacheable(space) {
		if v, ok := c.cache.serveInt(c.order, space, addr, size); ok {
			c.stats.CacheHits.Add(1)
			return v, nil
		}
		c.stats.CacheMisses.Add(1)
		if c.batchOK && c.order != nil && size > 0 && size <= 4 {
			// Pull a line; if it comes up short (or the line base sits
			// in an unmapped hole) fall through to the exact fetch,
			// which preserves the uncached error behavior bit for bit.
			base := addr &^ (readahead/2 - 1)
			if line, err := c.fetchLine(space, base, readahead); err == nil && len(line) > 0 {
				c.cache.insert(space, base, line)
				if v, ok := c.cache.serveInt(c.order, space, addr, size); ok {
					return v, nil
				}
			}
		}
	}
	rep, err := c.roundTrip(&Msg{Kind: MFetchInt, Space: byte(space), Addr: addr, Size: uint32(size)}, MValue)
	if err != nil {
		return 0, err
	}
	if c.cache != nil && cacheable(space) && c.order != nil && size > 0 && size <= 4 {
		buf := make([]byte, size)
		amem.WriteInt(c.order, buf, rep.Val)
		c.cache.insert(space, addr, buf)
	}
	return rep.Val, nil
}

// StoreInt writes a size-byte integer, writing through the cache.
func (c *Client) StoreInt(space amem.Space, addr uint32, size int, val uint64) error {
	_, err := c.roundTrip(&Msg{Kind: MStoreInt, Space: byte(space), Addr: addr, Size: uint32(size), Val: val}, MOK)
	if err == nil {
		c.writeThroughInt(space, addr, size, val)
	}
	return err
}

// writeThroughInt patches the cached copy after a successful StoreInt.
func (c *Client) writeThroughInt(space amem.Space, addr uint32, size int, val uint64) {
	if c.cache == nil || !cacheable(space) {
		return
	}
	if c.order == nil || size <= 0 || size > 4 {
		c.cache.invalidate(space, addr, max(size, 8))
		return
	}
	buf := make([]byte, size)
	amem.WriteInt(c.order, buf, val)
	c.cache.patch(space, addr, buf)
}

// FetchFloat reads a float of logical size 4, 8, or 10. Floats always
// go to the wire: the nub applies machine-dependent compensation (the
// big-endian MIPS word swap) that raw cached bytes would miss.
func (c *Client) FetchFloat(space amem.Space, addr uint32, size int) (float64, error) {
	rep, err := c.roundTrip(&Msg{Kind: MFetchFloat, Space: byte(space), Addr: addr, Size: uint32(size)}, MFValue)
	if err != nil {
		return 0, err
	}
	return float64frombits(rep.Val), nil
}

// StoreFloat writes a float of logical size 4, 8, or 10. The cached
// bytes under the store are evicted (the nub may word-swap on the way
// in, so the client cannot patch them itself).
func (c *Client) StoreFloat(space amem.Space, addr uint32, size int, val float64) error {
	_, err := c.roundTrip(&Msg{Kind: MStoreFloat, Space: byte(space), Addr: addr, Size: uint32(size), Val: float64bits(val)}, MOK)
	if err == nil && c.cache != nil && cacheable(space) {
		c.cache.invalidate(space, addr, 12)
	}
	return err
}

// fetchBytesWire is FetchBytes without cache involvement.
func (c *Client) fetchBytesWire(space amem.Space, addr uint32, n int) ([]byte, error) {
	rep, err := c.roundTrip(&Msg{Kind: MFetchBytes, Space: byte(space), Addr: addr, Size: uint32(n)}, MBytes)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// FetchBytes reads n raw bytes, through the cache when possible.
func (c *Client) FetchBytes(space amem.Space, addr uint32, n int) ([]byte, error) {
	if c.cache != nil && cacheable(space) && n > 0 {
		if b, ok := c.cache.lookup(space, addr, n); ok {
			c.stats.CacheHits.Add(1)
			return append([]byte(nil), b...), nil
		}
		c.stats.CacheMisses.Add(1)
	}
	data, err := c.fetchBytesWire(space, addr, n)
	if err != nil {
		return nil, err
	}
	if c.cache != nil && cacheable(space) {
		c.cache.insert(space, addr, data)
	}
	return data, nil
}

// Prefetch warms the cache with [addr, addr+n) in one round trip; with
// the cache off it is a no-op, so turning caching off never adds
// traffic. Callers use it to coalesce multi-word reads they know are
// coming — the context record after a stop, say.
func (c *Client) Prefetch(space amem.Space, addr uint32, n int) error {
	if c.cache == nil || !cacheable(space) || n <= 0 {
		return nil
	}
	if _, ok := c.cache.lookup(space, addr, n); ok {
		return nil
	}
	_, err := c.FetchBytes(space, addr, n)
	return err
}

// StoreBytes writes raw bytes, writing through the cache.
func (c *Client) StoreBytes(space amem.Space, addr uint32, data []byte) error {
	_, err := c.roundTrip(&Msg{Kind: MStoreBytes, Space: byte(space), Addr: addr, Data: data}, MOK)
	if err == nil && c.cache != nil && cacheable(space) {
		c.cache.patch(space, addr, data)
	}
	return err
}

// PlantStore writes a breakpoint trap through the special planting
// store (§7.1), so the nub remembers the overwritten instruction.
func (c *Client) PlantStore(addr uint32, trap []byte) error {
	_, err := c.roundTrip(&Msg{Kind: MPlantStore, Space: byte(amem.Code), Addr: addr, Data: trap}, MOK)
	if err == nil && c.cache != nil {
		c.cache.patch(amem.Code, addr, trap)
	}
	return err
}

// UnplantStore removes a planted breakpoint, restoring the original
// instruction from the nub's record. The client does not know the
// restored bytes, so the cached line under them is evicted.
func (c *Client) UnplantStore(addr uint32) error {
	_, err := c.roundTrip(&Msg{Kind: MUnplantStore, Space: byte(amem.Code), Addr: addr}, MOK)
	if err == nil && c.cache != nil {
		c.cache.invalidate(amem.Code, addr, 16)
	}
	return err
}

// PlantedRecord is one breakpoint the nub knows about.
type PlantedRecord struct {
	Addr     uint32
	Original []byte
}

// ListPlanted asks the nub which breakpoints are planted — how a new
// debugger recovers the breakpoints of a lost one (§7.1).
func (c *Client) ListPlanted() ([]PlantedRecord, error) {
	rep, err := c.roundTrip(&Msg{Kind: MListPlanted}, MPlanted)
	if err != nil {
		return nil, err
	}
	return parsePlanted(rep.Data)
}

// SimStats asks the nub for its simulator counters. A legacy nub
// refuses the request; callers treat the error as "nothing to report".
func (c *Client) SimStats() (SimStatsReport, error) {
	rep, err := c.roundTrip(&Msg{Kind: MSimStats}, MSimStatsReply)
	if err != nil {
		return SimStatsReport{}, err
	}
	return decodeSimStats(rep.Data)
}

// ServerStats asks the nub for its robustness counters. A legacy nub
// refuses the request; callers treat the error as "nothing to report".
func (c *Client) ServerStats() (ServerStatsReport, error) {
	rep, err := c.roundTrip(&Msg{Kind: MServerStats}, MServerStatsReply)
	if err != nil {
		return ServerStatsReport{}, err
	}
	return decodeServerStats(rep.Data)
}

// Sessions reports whether the connected endpoint is a debug service
// (its welcome advertised the sessions capability).
func (c *Client) Sessions() bool { return c.sessionsOK }

// SessionID returns the service session this client is bound to, 0 when
// none (plain nub, or lobby before OpenSession).
func (c *Client) SessionID() uint64 { return c.sessionID }

// SessionProgram returns the registry name passed to OpenSession, ""
// when the session was not opened by this client.
func (c *Client) SessionProgram() string { return c.sessionProgram }

// OpenSession asks the debug service to spawn the named program and
// binds this connection — and every future reconnect — to the new
// session. It speaks the wire directly: spawning is not idempotent, so
// a loss while awaiting the reply must surface (gated on replayable for
// fault injectors) rather than replay and spawn twice.
func (c *Client) OpenSession(program string) (*Event, error) {
	if !c.sessionsOK {
		return nil, errors.New("nub: endpoint does not speak sessions")
	}
	c.replayable.Store(false)
	defer c.replayable.Store(true)
	if err := c.writeWire(&Msg{Kind: MOpenSession, Data: []byte(program)}); err != nil {
		return nil, err
	}
	rep, err := c.readWire()
	if err != nil {
		return nil, err
	}
	c.stats.RoundTrips.Add(1)
	if err := c.adoptSession(rep, false); err != nil {
		return nil, err
	}
	c.sessionProgram = program
	c.InvalidateCache()
	return c.Last, nil
}

// AttachSession binds this connection to an existing service session by
// id, establishing the session's identity from the reply. Idempotent:
// connection loss mid-attach is ridden out by the normal reconnect
// path, which re-attaches by itself.
func (c *Client) AttachSession(id uint64) (*Event, error) {
	if !c.sessionsOK {
		return nil, errors.New("nub: endpoint does not speak sessions")
	}
	if err := c.attachWire(id, false); err != nil {
		return nil, err
	}
	c.InvalidateCache()
	return c.Last, nil
}

// CloseSession terminates the bound session and releases its pool slot.
// The connection survives; the client is back in the lobby.
func (c *Client) CloseSession() error {
	if c.sessionID == 0 {
		return errors.New("nub: no session bound")
	}
	if _, err := c.roundTrip(&Msg{Kind: MCloseSession, Val: c.sessionID}, MOK); err != nil {
		return err
	}
	c.sessionID, c.sessionProgram = 0, ""
	c.ArchName, c.CtxAddr, c.CtxSize = "", 0, 0
	c.order = nil
	c.InvalidateCache()
	return nil
}

// ServiceStats asks the debug service for its health counters. A plain
// nub refuses the request; callers treat the error as "not a service".
func (c *Client) ServiceStats() (ServiceStatsReport, error) {
	rep, err := c.roundTrip(&Msg{Kind: MServiceStats}, MServiceStatsReply)
	if err != nil {
		return ServiceStatsReport{}, err
	}
	return decodeServiceStats(rep.Data)
}

// parsePlanted decodes an MPlanted payload: (addr32, len32, bytes)
// records, little-endian, sorted by address on the wire.
func parsePlanted(b []byte) ([]PlantedRecord, error) {
	var out []PlantedRecord
	for len(b) >= 8 {
		addr := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		n := int(uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24)
		b = b[8:]
		if n < 0 || n > len(b) {
			return nil, fmt.Errorf("nub: malformed planted list")
		}
		out = append(out, PlantedRecord{Addr: addr, Original: append([]byte(nil), b[:n]...)})
		b = b[n:]
	}
	return out, nil
}

// Continue resumes the target and blocks until the next event. The
// whole cache is invalidated first: once the target runs, no cached
// state may be trusted again.
//
// Connection loss is handled like any other request: a continue whose
// write never completed is replayed after reconnecting (the nub never
// resumed the target), but once the continue was delivered, a lost
// event wait surfaces the error — the reconnect handshake has already
// replayed the nub's latched event into Last, so the caller can resync
// from there.
func (c *Client) Continue() (*Event, error) {
	return c.resume(MContinue)
}

// StepInst resumes the target for exactly one instruction and blocks
// until its event: SIGTRAP with code arch.TrapStep when the instruction
// retired cleanly, or whatever fault it raised. This is the machine-
// level step that needs no symbol table; a legacy nub refuses the
// request with a clean error. Connection-loss handling is Continue's.
func (c *Client) StepInst() (*Event, error) {
	return c.resume(MStepInst)
}

// resume sends a resume request (MContinue or MStepInst) and waits for
// the resulting event, with Continue's replay-or-surface semantics.
func (c *Client) resume(kind MsgKind) (*Event, error) {
	c.InvalidateCache()
	for replay := 0; ; replay++ {
		err := c.writeWire(&Msg{Kind: kind})
		if err == nil {
			c.replayable.Store(false)
			ev, rerr := c.readEvent()
			c.replayable.Store(true)
			if rerr == nil {
				c.stats.RoundTrips.Add(1)
				c.Last = ev
				return ev, nil
			}
			if errors.Is(rerr, ErrRolledBack) {
				// The resume crashed server-side; the rollback rewound the
				// session to the state the resume saw, so resuming again
				// re-runs the exact same execution.
				if replay >= maxReplays {
					return nil, rerr
				}
				c.stats.Replays.Add(1)
				continue
			}
			if !errors.Is(rerr, ErrConnLost) {
				return nil, rerr
			}
			if re := c.reconnect(); re != nil {
				return nil, fmt.Errorf("%w (%w)", rerr, re)
			}
			return nil, fmt.Errorf("%w awaiting the %v event; session reconnected at the nub's latched event", ErrConnLost, kind)
		}
		if !errors.Is(err, ErrConnLost) {
			return nil, err
		}
		if re := c.reconnect(); re != nil {
			return nil, fmt.Errorf("%w (%w)", err, re)
		}
		if replay >= maxReplays {
			return nil, err
		}
		c.stats.Replays.Add(1)
	}
}

// Ping asks the nub for a sign of life: a hello request answered with
// an OK. It touches no target state, so it is freely replayable after
// reconnects — a cheap way to probe a session that has been idle.
func (c *Client) Ping() error {
	_, err := c.roundTrip(&Msg{Kind: MHello}, MOK)
	return err
}

// Close severs the connection without telling the nub — the way a
// crashed debugger disappears. The nub preserves target state.
func (c *Client) Close() error { return c.closeRaw() }

func (c *Client) closeRaw() error {
	if closer, ok := c.raw.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

// Kill terminates the target.
func (c *Client) Kill() error {
	_, err := c.roundTrip(&Msg{Kind: MKill}, MOK)
	return err
}

// Detach breaks the connection, leaving the target stopped and the nub
// waiting for a new debugger.
func (c *Client) Detach() error {
	_, err := c.roundTrip(&Msg{Kind: MDetach}, MOK)
	return err
}

// Wire is the abstract memory that holds the connection to the nub
// (§4.1): it forwards fetch and store requests over the protocol. Only
// the code and data spaces (and immediates) are served; register spaces
// are handled above the wire by alias memories.
type Wire struct {
	C *Client
}

// Name implements amem.Memory.
func (w *Wire) Name() string { return "wire" }

// FetchInt implements amem.Memory.
func (w *Wire) FetchInt(loc amem.Location, size int) (uint64, error) {
	if loc.Mode == amem.Immediate {
		return loc.Imm, nil
	}
	if !validSpace(byte(loc.Space)) {
		return 0, fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.FetchInt(loc.Space, uint32(loc.Offset), size)
}

// StoreInt implements amem.Memory.
func (w *Wire) StoreInt(loc amem.Location, size int, val uint64) error {
	if loc.Mode == amem.Immediate {
		return amem.ErrImmStore
	}
	if !validSpace(byte(loc.Space)) {
		return fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.StoreInt(loc.Space, uint32(loc.Offset), size, val)
}

// FetchFloat implements amem.Memory.
func (w *Wire) FetchFloat(loc amem.Location, size int) (float64, error) {
	if loc.Mode == amem.Immediate {
		return loc.ImmF, nil
	}
	if !validSpace(byte(loc.Space)) {
		return 0, fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.FetchFloat(loc.Space, uint32(loc.Offset), size)
}

// StoreFloat implements amem.Memory.
func (w *Wire) StoreFloat(loc amem.Location, size int, val float64) error {
	if loc.Mode == amem.Immediate {
		return amem.ErrImmStore
	}
	if !validSpace(byte(loc.Space)) {
		return fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.StoreFloat(loc.Space, uint32(loc.Offset), size, val)
}

// Pair wires a client directly to a nub over an in-memory connection —
// the "target process forked as a child" arrangement. It starts the
// target if it has not produced an event yet.
func Pair(n *Nub) (*Client, error) {
	a, b := net.Pipe()
	go func() {
		for {
			if err := n.Serve(b); err == nil {
				return
			}
			// Connection broken; in the paired arrangement there is no
			// one to reconnect, so stop.
			return
		}
	}()
	return Connect(a)
}

// Launch builds a process for the architecture, attaches a nub, and
// returns a connected client: the complete "debugger forks the target"
// path used by tests and examples.
func Launch(a arch.Arch, text, data []byte, entry uint32) (*Client, *Nub, *machine.Process, error) {
	p := machine.New(a, text, data, entry)
	n := New(p)
	c, err := Pair(n)
	if err != nil {
		return nil, nil, nil, err
	}
	return c, n, p, nil
}
