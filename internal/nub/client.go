package nub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/machine"
)

func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(u uint64) float64 { return math.Float64frombits(u) }

// Event is a signal or exit reported by the nub.
type Event struct {
	Exited bool
	Status int
	Sig    arch.Signal
	Code   int
	PC     uint32
	// Ctx is the target address of the context record.
	Ctx uint32
}

func (e *Event) String() string {
	if e.Exited {
		return fmt.Sprintf("exited(%d)", e.Status)
	}
	return fmt.Sprintf("%v code=%d pc=%#x", e.Sig, e.Code, e.PC)
}

// Client is the debugger end of the nub protocol. On top of the plain
// request/reply protocol it batches messages into MBatch envelopes
// (when the nub's welcome advertises support), keeps a read-through
// cache of target memory that a continue fully invalidates, and counts
// wire traffic in a Stats.
type Client struct {
	conn     io.ReadWriter
	ArchName string
	CtxAddr  uint32
	CtxSize  uint32
	// Last is the most recent event.
	Last *Event

	stats   Stats
	batchOK bool // the nub's welcome advertised MBatch
	batchOn bool // client-side switch (default on)
	cache   *memCache
	order   binary.ByteOrder // target byte order, for serving cached ints
}

// Connect performs the protocol handshake: it reads the nub's welcome
// and the pending event. Batching is negotiated from the welcome's
// capability bits; caching is on by default (Continue invalidates it).
func Connect(conn io.ReadWriter) (*Client, error) {
	c := &Client{batchOn: true, cache: newMemCache()}
	c.conn = &countRW{rw: conn, s: &c.stats}
	w, err := ReadMsg(c.conn)
	if err != nil {
		return nil, err
	}
	c.stats.MsgsReceived.Add(1)
	if w.Kind != MWelcome {
		return nil, fmt.Errorf("nub: expected welcome, got %v", w.Kind)
	}
	c.ArchName, c.CtxAddr, c.CtxSize = string(w.Data), w.Addr, w.Size
	c.batchOK = w.Val&WelcomeBatch != 0
	if a, ok := arch.Lookup(c.ArchName); ok {
		c.order = a.Order()
	}
	ev, err := c.readEvent()
	if err != nil {
		return nil, err
	}
	c.Last = ev
	return c, nil
}

// SetBatching enables or disables MBatch envelopes. Batching is used
// only when the nub also advertised support; turning it off here forces
// the one-message-at-a-time protocol.
func (c *Client) SetBatching(on bool) { c.batchOn = on }

// SetCaching enables or disables the client-side memory cache. Turning
// it off drops everything cached.
func (c *Client) SetCaching(on bool) {
	if on {
		if c.cache == nil {
			c.cache = newMemCache()
		}
		return
	}
	c.cache = nil
}

// Batching reports whether envelopes are in use on this connection.
func (c *Client) Batching() bool { return c.batchOn && c.batchOK }

// Caching reports whether the client-side memory cache is in use.
func (c *Client) Caching() bool { return c.cache != nil }

// Stats returns a snapshot of the wire counters.
func (c *Client) Stats() StatsSnapshot { return c.stats.Snapshot() }

// ResetStats zeroes the wire counters.
func (c *Client) ResetStats() { c.stats.Reset() }

// InvalidateCache drops every cached byte. Continue does this
// automatically; it is exported for embedders that know the target
// changed some other way.
func (c *Client) InvalidateCache() {
	if c.cache != nil {
		c.cache.reset()
		c.stats.Invalidations.Add(1)
	}
}

// Dial connects to a nub listening on a TCP address.
func Dial(addr string) (*Client, net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	c, err := Connect(conn)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return c, conn, nil
}

func (c *Client) readEvent() (*Event, error) {
	m, err := ReadMsg(c.conn)
	if err != nil {
		return nil, err
	}
	c.stats.MsgsReceived.Add(1)
	switch m.Kind {
	case MEvent:
		return &Event{Sig: arch.Signal(m.Sig), Code: int(m.Code), PC: uint32(m.Val), Ctx: m.Addr}, nil
	case MExited:
		return &Event{Exited: true, Status: int(m.Code)}, nil
	default:
		return nil, fmt.Errorf("nub: expected event, got %v", m.Kind)
	}
}

func (c *Client) roundTrip(req *Msg, want MsgKind) (*Msg, error) {
	if err := WriteMsg(c.conn, req); err != nil {
		return nil, err
	}
	c.stats.MsgsSent.Add(1)
	rep, err := ReadMsg(c.conn)
	if err != nil {
		return nil, err
	}
	c.stats.MsgsReceived.Add(1)
	c.stats.RoundTrips.Add(1)
	if rep.Kind == MError {
		return nil, errors.New("nub: " + string(rep.Data))
	}
	if rep.Kind != want {
		return nil, fmt.Errorf("nub: expected %v, got %v", want, rep.Kind)
	}
	return rep, nil
}

// cacheable reports whether the cache may serve this space at all: only
// the code and data spaces travel on the wire.
func cacheable(space amem.Space) bool {
	return space == amem.Code || space == amem.Data
}

// readahead is how many bytes a cache-missing FetchInt pulls over the
// wire instead of just the word asked for: one fetch of a line makes
// the neighboring words — the rest of an array, the anchor table, the
// next context slots — free. Lines travel as MFetchLine requests,
// which the nub truncates at the segment end, so readahead never
// manufactures errors that an exact fetch would not have hit.
const readahead = 256

// fetchLine pulls a readahead line via MFetchLine; the reply may be
// shorter than asked when the containing segment ends early. Only sent
// to nubs that negotiated the batch capability — a legacy nub never
// sees the request kind.
func (c *Client) fetchLine(space amem.Space, addr uint32, n int) ([]byte, error) {
	rep, err := c.roundTrip(&Msg{Kind: MFetchLine, Space: byte(space), Addr: addr, Size: uint32(n)}, MBytes)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// FetchInt reads a size-byte integer at addr in the given space. With
// the cache on, a hit costs nothing on the wire and a miss pulls a
// readahead line so neighboring fetches hit.
func (c *Client) FetchInt(space amem.Space, addr uint32, size int) (uint64, error) {
	if c.cache != nil && cacheable(space) {
		if v, ok := c.cache.serveInt(c.order, space, addr, size); ok {
			c.stats.CacheHits.Add(1)
			return v, nil
		}
		c.stats.CacheMisses.Add(1)
		if c.batchOK && c.order != nil && size > 0 && size <= 8 {
			// Pull a line; if it comes up short (or the line base sits
			// in an unmapped hole) fall through to the exact fetch,
			// which preserves the uncached error behavior bit for bit.
			base := addr &^ (readahead/2 - 1)
			if line, err := c.fetchLine(space, base, readahead); err == nil && len(line) > 0 {
				c.cache.insert(space, base, line)
				if v, ok := c.cache.serveInt(c.order, space, addr, size); ok {
					return v, nil
				}
			}
		}
	}
	rep, err := c.roundTrip(&Msg{Kind: MFetchInt, Space: byte(space), Addr: addr, Size: uint32(size)}, MValue)
	if err != nil {
		return 0, err
	}
	if c.cache != nil && cacheable(space) && c.order != nil && size > 0 && size <= 8 {
		buf := make([]byte, size)
		amem.WriteInt(c.order, buf, rep.Val)
		c.cache.insert(space, addr, buf)
	}
	return rep.Val, nil
}

// StoreInt writes a size-byte integer, writing through the cache.
func (c *Client) StoreInt(space amem.Space, addr uint32, size int, val uint64) error {
	_, err := c.roundTrip(&Msg{Kind: MStoreInt, Space: byte(space), Addr: addr, Size: uint32(size), Val: val}, MOK)
	if err == nil {
		c.writeThroughInt(space, addr, size, val)
	}
	return err
}

// writeThroughInt patches the cached copy after a successful StoreInt.
func (c *Client) writeThroughInt(space amem.Space, addr uint32, size int, val uint64) {
	if c.cache == nil || !cacheable(space) {
		return
	}
	if c.order == nil || size <= 0 || size > 8 {
		c.cache.invalidate(space, addr, max(size, 8))
		return
	}
	buf := make([]byte, size)
	amem.WriteInt(c.order, buf, val)
	c.cache.patch(space, addr, buf)
}

// FetchFloat reads a float of logical size 4, 8, or 10. Floats always
// go to the wire: the nub applies machine-dependent compensation (the
// big-endian MIPS word swap) that raw cached bytes would miss.
func (c *Client) FetchFloat(space amem.Space, addr uint32, size int) (float64, error) {
	rep, err := c.roundTrip(&Msg{Kind: MFetchFloat, Space: byte(space), Addr: addr, Size: uint32(size)}, MFValue)
	if err != nil {
		return 0, err
	}
	return float64frombits(rep.Val), nil
}

// StoreFloat writes a float of logical size 4, 8, or 10. The cached
// bytes under the store are evicted (the nub may word-swap on the way
// in, so the client cannot patch them itself).
func (c *Client) StoreFloat(space amem.Space, addr uint32, size int, val float64) error {
	_, err := c.roundTrip(&Msg{Kind: MStoreFloat, Space: byte(space), Addr: addr, Size: uint32(size), Val: float64bits(val)}, MOK)
	if err == nil && c.cache != nil && cacheable(space) {
		c.cache.invalidate(space, addr, 12)
	}
	return err
}

// fetchBytesWire is FetchBytes without cache involvement.
func (c *Client) fetchBytesWire(space amem.Space, addr uint32, n int) ([]byte, error) {
	rep, err := c.roundTrip(&Msg{Kind: MFetchBytes, Space: byte(space), Addr: addr, Size: uint32(n)}, MBytes)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// FetchBytes reads n raw bytes, through the cache when possible.
func (c *Client) FetchBytes(space amem.Space, addr uint32, n int) ([]byte, error) {
	if c.cache != nil && cacheable(space) && n > 0 {
		if b, ok := c.cache.lookup(space, addr, n); ok {
			c.stats.CacheHits.Add(1)
			return append([]byte(nil), b...), nil
		}
		c.stats.CacheMisses.Add(1)
	}
	data, err := c.fetchBytesWire(space, addr, n)
	if err != nil {
		return nil, err
	}
	if c.cache != nil && cacheable(space) {
		c.cache.insert(space, addr, data)
	}
	return data, nil
}

// Prefetch warms the cache with [addr, addr+n) in one round trip; with
// the cache off it is a no-op, so turning caching off never adds
// traffic. Callers use it to coalesce multi-word reads they know are
// coming — the context record after a stop, say.
func (c *Client) Prefetch(space amem.Space, addr uint32, n int) error {
	if c.cache == nil || !cacheable(space) || n <= 0 {
		return nil
	}
	if _, ok := c.cache.lookup(space, addr, n); ok {
		return nil
	}
	_, err := c.FetchBytes(space, addr, n)
	return err
}

// StoreBytes writes raw bytes, writing through the cache.
func (c *Client) StoreBytes(space amem.Space, addr uint32, data []byte) error {
	_, err := c.roundTrip(&Msg{Kind: MStoreBytes, Space: byte(space), Addr: addr, Data: data}, MOK)
	if err == nil && c.cache != nil && cacheable(space) {
		c.cache.patch(space, addr, data)
	}
	return err
}

// PlantStore writes a breakpoint trap through the special planting
// store (§7.1), so the nub remembers the overwritten instruction.
func (c *Client) PlantStore(addr uint32, trap []byte) error {
	_, err := c.roundTrip(&Msg{Kind: MPlantStore, Space: byte(amem.Code), Addr: addr, Data: trap}, MOK)
	if err == nil && c.cache != nil {
		c.cache.patch(amem.Code, addr, trap)
	}
	return err
}

// UnplantStore removes a planted breakpoint, restoring the original
// instruction from the nub's record. The client does not know the
// restored bytes, so the cached line under them is evicted.
func (c *Client) UnplantStore(addr uint32) error {
	_, err := c.roundTrip(&Msg{Kind: MUnplantStore, Space: byte(amem.Code), Addr: addr}, MOK)
	if err == nil && c.cache != nil {
		c.cache.invalidate(amem.Code, addr, 16)
	}
	return err
}

// PlantedRecord is one breakpoint the nub knows about.
type PlantedRecord struct {
	Addr     uint32
	Original []byte
}

// ListPlanted asks the nub which breakpoints are planted — how a new
// debugger recovers the breakpoints of a lost one (§7.1).
func (c *Client) ListPlanted() ([]PlantedRecord, error) {
	rep, err := c.roundTrip(&Msg{Kind: MListPlanted}, MPlanted)
	if err != nil {
		return nil, err
	}
	var out []PlantedRecord
	b := rep.Data
	for len(b) >= 8 {
		addr := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		n := int(uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24)
		b = b[8:]
		if n > len(b) {
			return nil, fmt.Errorf("nub: malformed planted list")
		}
		out = append(out, PlantedRecord{Addr: addr, Original: append([]byte(nil), b[:n]...)})
		b = b[n:]
	}
	return out, nil
}

// Continue resumes the target and blocks until the next event. The
// whole cache is invalidated first: once the target runs, no cached
// state may be trusted again.
func (c *Client) Continue() (*Event, error) {
	c.InvalidateCache()
	if err := WriteMsg(c.conn, &Msg{Kind: MContinue}); err != nil {
		return nil, err
	}
	c.stats.MsgsSent.Add(1)
	ev, err := c.readEvent()
	if err != nil {
		return nil, err
	}
	c.stats.RoundTrips.Add(1)
	c.Last = ev
	return ev, nil
}

// Close severs the connection without telling the nub — the way a
// crashed debugger disappears. The nub preserves target state.
func (c *Client) Close() error {
	if closer, ok := c.conn.(interface{ Close() error }); ok {
		return closer.Close()
	}
	return nil
}

// Kill terminates the target.
func (c *Client) Kill() error {
	_, err := c.roundTrip(&Msg{Kind: MKill}, MOK)
	return err
}

// Detach breaks the connection, leaving the target stopped and the nub
// waiting for a new debugger.
func (c *Client) Detach() error {
	_, err := c.roundTrip(&Msg{Kind: MDetach}, MOK)
	return err
}

// Wire is the abstract memory that holds the connection to the nub
// (§4.1): it forwards fetch and store requests over the protocol. Only
// the code and data spaces (and immediates) are served; register spaces
// are handled above the wire by alias memories.
type Wire struct {
	C *Client
}

// Name implements amem.Memory.
func (w *Wire) Name() string { return "wire" }

// FetchInt implements amem.Memory.
func (w *Wire) FetchInt(loc amem.Location, size int) (uint64, error) {
	if loc.Mode == amem.Immediate {
		return loc.Imm, nil
	}
	if !validSpace(byte(loc.Space)) {
		return 0, fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.FetchInt(loc.Space, uint32(loc.Offset), size)
}

// StoreInt implements amem.Memory.
func (w *Wire) StoreInt(loc amem.Location, size int, val uint64) error {
	if loc.Mode == amem.Immediate {
		return amem.ErrImmStore
	}
	if !validSpace(byte(loc.Space)) {
		return fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.StoreInt(loc.Space, uint32(loc.Offset), size, val)
}

// FetchFloat implements amem.Memory.
func (w *Wire) FetchFloat(loc amem.Location, size int) (float64, error) {
	if loc.Mode == amem.Immediate {
		return loc.ImmF, nil
	}
	if !validSpace(byte(loc.Space)) {
		return 0, fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.FetchFloat(loc.Space, uint32(loc.Offset), size)
}

// StoreFloat implements amem.Memory.
func (w *Wire) StoreFloat(loc amem.Location, size int, val float64) error {
	if loc.Mode == amem.Immediate {
		return amem.ErrImmStore
	}
	if !validSpace(byte(loc.Space)) {
		return fmt.Errorf("%w: %s on the wire", amem.ErrBadSpace, loc)
	}
	return w.C.StoreFloat(loc.Space, uint32(loc.Offset), size, val)
}

// Pair wires a client directly to a nub over an in-memory connection —
// the "target process forked as a child" arrangement. It starts the
// target if it has not produced an event yet.
func Pair(n *Nub) (*Client, error) {
	a, b := net.Pipe()
	go func() {
		for {
			if err := n.Serve(b); err == nil {
				return
			}
			// Connection broken; in the paired arrangement there is no
			// one to reconnect, so stop.
			return
		}
	}()
	return Connect(a)
}

// Launch builds a process for the architecture, attaches a nub, and
// returns a connected client: the complete "debugger forks the target"
// path used by tests and examples.
func Launch(a arch.Arch, text, data []byte, entry uint32) (*Client, *Nub, *machine.Process, error) {
	p := machine.New(a, text, data, entry)
	n := New(p)
	c, err := Pair(n)
	if err != nil {
		return nil, nil, nil, err
	}
	return c, n, p, nil
}
