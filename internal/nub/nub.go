package nub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/machine"
)

// NubDataBase is where the nub keeps its data structures — in user
// space, where a faulty program could destroy them (§4.2 discusses
// exactly this vulnerability).
const (
	NubDataBase = 0x0ffe0000
	nubDataSize = 4096
)

// DefaultServeTimeout is how long the serving nub waits for the rest of
// a frame once its first byte arrives. Nub.ReadTimeout overrides it.
const DefaultServeTimeout = 30 * time.Second

// Nub controls one target process and serves the debugger protocol.
// The guiding principle is to keep it as small as possible (§4.2);
// batching adds one envelope handler, not new concepts.
type Nub struct {
	P       *machine.Process
	ctxAddr uint32

	// LegacyProtocol, when set before serving, makes the nub behave
	// like one built before MBatch existed: the welcome does not
	// advertise batch support and envelopes are rejected. Clients fall
	// back to one message at a time.
	LegacyProtocol bool

	// Stats counts messages served; atomic because the nub runs in its
	// own goroutine while tests and debuggers read the counters.
	Stats Stats

	// ReadTimeout bounds how long the nub waits for the REST of a frame
	// once its first byte has arrived (the idle wait between requests is
	// unbounded — a debugger may sit at its prompt forever). A peer that
	// starts a frame and trickles it cannot hold the nub hostage. Zero
	// means DefaultServeTimeout; negative disables the deadline.
	ReadTimeout time.Duration

	mu      sync.Mutex //ldb:lock nub.mu 20
	pending *Msg       // event to (re)send when a connection arrives
	dead    bool

	// lnMu guards the listener fields separately from mu, which Serve
	// holds for the whole of a connection: Shutdown must be callable
	// while a request is being serviced.
	lnMu     sync.Mutex //ldb:lock nub.lnMu 41
	listener net.Listener
	closing  bool
	// serving is the connection Serve is currently blocked on, if any;
	// Shutdown expires its read deadline so an idle debugger connection
	// drains instead of pinning the serve goroutine.
	serving net.Conn
	// planted records breakpoint stores (§7.1's protocol enrichment):
	// address → the instruction bytes the trap overwrote, so the nub
	// can report them to a new debugger if the old one is lost.
	planted map[uint32][]byte
}

// New attaches a nub to a process, reserving the context area in the
// target's address space.
func New(p *machine.Process) *Nub {
	n := &Nub{P: p, ctxAddr: NubDataBase, planted: make(map[uint32][]byte)}
	for _, s := range p.Segs {
		if s.Name == "nub" && s.Base == NubDataBase {
			// A process rebuilt from a checkpoint already carries the
			// context area; mapping a second copy would shadow it.
			return n
		}
	}
	p.Segs = append(p.Segs, &machine.Segment{
		Name: "nub",
		Base: NubDataBase,
		Data: make([]byte, nubDataSize),
	})
	return n
}

// CtxAddr returns the target address of the context record.
func (n *Nub) CtxAddr() uint32 { return n.ctxAddr }

// Start runs the target to its first stop — normally the pause trap the
// startup code executes before calling main (§4.3) — and latches the
// event for the first connection.
func (n *Nub) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resumeAndLatch(n.runAndLatch)
}

// RunFree runs the target with pause traps ignored, as a program that
// is not (yet) being debugged: if it faults, the fault is latched so a
// debugger can connect afterward — the target need not be a child of
// the debugger (§4.2).
func (n *Nub) RunFree() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.resumeAndLatch(func() {
		for {
			f := n.P.Run()
			if f.Kind == arch.FaultSignal && f.Sig == arch.SigTrap && f.Code == arch.TrapPause {
				n.P.SetPC(f.PC + f.Len)
				continue
			}
			n.latch(f)
			return
		}
	})
}

// runAndLatch resumes the target and latches the resulting event. It
// may panic on corrupted process state, so it must only run under the
// resumeAndLatch containment — recoverguard enforces this.
//
//ldb:contain
func (n *Nub) runAndLatch() {
	f := n.P.Run()
	if f.Kind == arch.FaultSignal && f.Sig == arch.SigTrap && f.Code == arch.TrapPause {
		// Step past our own pause trap so a plain continue works.
		n.P.SetPC(f.PC + f.Len)
	}
	n.latch(f)
}

// stepAndLatch retires exactly one instruction and latches the result.
// A step that completes without faulting reports SIGTRAP with code
// TrapStep — the convention MStepInst clients decode. A pause trap is
// stepped past, as in runAndLatch; like runAndLatch it must only run
// under the resumeAndLatch containment.
//
//ldb:contain
func (n *Nub) stepAndLatch() {
	f := n.P.StepOne()
	if f != nil && f.Kind == arch.FaultSignal && f.Sig == arch.SigTrap && f.Code == arch.TrapPause {
		n.P.SetPC(f.PC + f.Len)
		f = nil
	}
	if f == nil {
		f = &arch.Fault{Kind: arch.FaultSignal, Sig: arch.SigTrap, Code: arch.TrapStep, PC: n.P.PC()}
	}
	n.latch(f)
}

// resumeAndLatch runs resume — which advances the target and latches
// its next event — with panic containment: a simulator panic, reachable
// only through corrupted process state, latches an error reply rather
// than killing the serving goroutine and the target with it.
func (n *Nub) resumeAndLatch(resume func()) {
	defer func() {
		if r := recover(); r != nil {
			n.Stats.RecoveredPanics.Add(1)
			n.pending = &Msg{Kind: MError, Data: []byte(fmt.Sprintf("nub: recovered from panic: %v", r))}
		}
	}()
	resume()
}

func (n *Nub) latch(f *arch.Fault) {
	if f.Kind == arch.FaultHalt {
		n.pending = &Msg{Kind: MExited, Code: int32(n.P.ExitCode)}
		return
	}
	if err := n.saveContext(); err != nil {
		n.latchCtxFault(f.PC)
		return
	}
	n.pending = &Msg{
		Kind: MEvent,
		Sig:  int32(f.Sig),
		Code: int32(f.Code),
		Addr: n.ctxAddr,
		Val:  uint64(f.PC),
	}
}

// latchCtxFault latches an unusable context area as a target fault: the
// nub's data lives in user space where a faulty program can destroy it
// (§4.2), so destroying it is the target's bug, reported as a SIGSEGV
// at the context address — not a reason for the nub to crash.
func (n *Nub) latchCtxFault(pc uint32) {
	n.Stats.CtxFaults.Add(1)
	n.pending = &Msg{
		Kind: MEvent,
		Sig:  int32(arch.SigSegv),
		Addr: n.ctxAddr,
		Val:  uint64(pc),
	}
}

// saveContext writes the processor state into the context record in
// target memory, in the target's byte order, per the machine-dependent
// layout. On a big-endian MIPS the kernel's quirk applies: saved
// doubleword floating registers go least significant word first (§4.3
// footnote), and fetchFloat compensates. An unmapped context area is
// reported, not panicked over: the caller latches it as a target fault.
func (n *Nub) saveContext() error {
	p := n.P
	l := p.A.Context()
	order := p.A.Order()
	buf := make([]byte, l.Size)
	amem.WriteInt(order, buf[l.PCOff:l.PCOff+4], uint64(p.PC()))
	amem.WriteInt(order, buf[l.FlagOff:l.FlagOff+4], uint64(p.Flag()))
	for i, off := range l.RegOffs {
		if off == l.PCOff {
			continue // the VAX keeps the pc in the r15 slot
		}
		amem.WriteInt(order, buf[off:off+4], uint64(p.Reg(i)))
	}
	for i, off := range l.FRegOffs {
		img := buf[off : off+l.FRegSize]
		if l.FRegSize == 12 {
			amem.EncodeFloat(order, img, amem.Float80, p.FReg(i))
		} else {
			amem.EncodeFloat(order, img, amem.Float64, p.FReg(i))
			if l.FloatWordSwap {
				swapWords(img)
			}
		}
	}
	if err := p.WriteBytes(n.ctxAddr, buf); err != nil {
		return fmt.Errorf("nub: context area unmapped: %w", err)
	}
	return nil
}

// restoreContext reads the (possibly debugger-modified) context back
// into the processor before resuming (assignments to registers work by
// storing into the context through the alias memory). An unmapped
// context area is reported, not panicked over.
func (n *Nub) restoreContext() error {
	p := n.P
	l := p.A.Context()
	order := p.A.Order()
	buf := make([]byte, l.Size)
	if err := p.ReadBytes(n.ctxAddr, buf); err != nil {
		return fmt.Errorf("nub: context area unmapped: %w", err)
	}
	p.SetPC(uint32(amem.ReadInt(order, buf[l.PCOff:l.PCOff+4])))
	p.SetFlag(uint32(amem.ReadInt(order, buf[l.FlagOff:l.FlagOff+4])))
	for i, off := range l.RegOffs {
		if off == l.PCOff {
			continue
		}
		p.SetReg(i, uint32(amem.ReadInt(order, buf[off:off+4])))
	}
	for i, off := range l.FRegOffs {
		img := append([]byte(nil), buf[off:off+l.FRegSize]...)
		if l.FRegSize == 12 {
			p.SetFReg(i, amem.DecodeFloat(order, img, amem.Float80))
		} else {
			if l.FloatWordSwap {
				swapWords(img)
			}
			p.SetFReg(i, amem.DecodeFloat(order, img, amem.Float64))
		}
	}
	return nil
}

func swapWords(b []byte) {
	for i := 0; i < 4; i++ {
		b[i], b[i+4] = b[i+4], b[i]
	}
}

// quirkRange reports the context subrange holding saved floating
// registers that the MIPS quirk applies to. The bounds are uint64: a
// context area near the top of the address space would make the
// uint32 sums (and the callers' m.Addr+8 checks) wrap and misclassify
// accesses on both sides of the boundary.
func (n *Nub) quirkRange() (lo, hi uint64, ok bool) {
	l := n.P.A.Context()
	if !l.FloatWordSwap || len(l.FRegOffs) == 0 {
		return 0, 0, false
	}
	lo = uint64(n.ctxAddr) + uint64(l.FRegOffs[0])
	hi = uint64(n.ctxAddr) + uint64(l.FRegOffs[len(l.FRegOffs)-1]+l.FRegSize)
	return lo, hi, true
}

func validSpace(s byte) bool { return s == byte(amem.Code) || s == byte(amem.Data) }

// errMsg builds an MError reply.
func errMsg(format string, args ...any) *Msg {
	return &Msg{Kind: MError, Data: []byte(fmt.Sprintf(format, args...))}
}

// handlers dispatches validated requests to their servicing methods.
// It is indexed by kind byte, filled once at init, and read only from
// safeHandle, behind the recover and after checkRequest — properties
// the recoverguard and wireproto analyzers enforce. The control
// messages that own the connection (continue, step, kill, detach) are
// deliberately absent: they are cases in Serve's loop, because their
// replies interleave with resuming the target.
//
//ldb:dispatch-table
var handlers [256]func(*Nub, *Msg) *Msg

func init() {
	handlers[MHello] = (*Nub).handleHello
	handlers[MBatch] = (*Nub).handleBatch
	handlers[MPlantStore] = (*Nub).handlePlantStore
	handlers[MUnplantStore] = (*Nub).handleUnplantStore
	handlers[MListPlanted] = (*Nub).handleListPlanted
	handlers[MFetchInt] = (*Nub).handleFetchInt
	handlers[MStoreInt] = (*Nub).handleStoreInt
	handlers[MFetchFloat] = (*Nub).handleFetchFloat
	handlers[MStoreFloat] = (*Nub).handleStoreFloat
	handlers[MFetchBytes] = (*Nub).handleFetchBytes
	handlers[MFetchLine] = (*Nub).handleFetchLine
	handlers[MStoreBytes] = (*Nub).handleStoreBytes
	handlers[MSimStats] = (*Nub).handleSimStats
	handlers[MServerStats] = (*Nub).handleServerStats
}

// checkRequest validates a request's kind, space, and size ranges
// before any handler sees it. Everything a peer sends is untrusted: a
// reply kind arriving as a request, an unassigned kind byte, a space
// outside code/data, or a size past the payload cap is rejected here,
// counted as a malformed frame, and answered with an error — the
// handlers then run only on requests whose operands are in range. The
// kind table drives it, so a new kind's validation exists the moment
// its row does.
func (n *Nub) checkRequest(m *Msg) error {
	info, ok := kinds[m.Kind]
	if !ok || !info.request {
		return fmt.Errorf("unexpected request %v", m.Kind)
	}
	if info.space && !validSpace(m.Space) {
		return fmt.Errorf("nub serves only code and data spaces, not %q", string(m.Space))
	}
	if m.Size > maxDataLen {
		return fmt.Errorf("request size %d exceeds the %d-byte cap", m.Size, maxDataLen)
	}
	return nil
}

// safeHandle validates and services one request with panic containment:
// a panic in a handler — a corrupted segment list, an input no handler
// foresaw — becomes an MError reply and a RecoveredPanics count, never
// a dead target (the nub must not take the target down with it, §4.2).
func (n *Nub) safeHandle(m *Msg) (rep *Msg) {
	if err := n.checkRequest(m); err != nil {
		n.Stats.MalformedFrames.Add(1)
		return &Msg{Kind: MError, Data: []byte(err.Error())}
	}
	defer func() {
		if r := recover(); r != nil {
			n.Stats.RecoveredPanics.Add(1)
			rep = &Msg{Kind: MError, Data: []byte(fmt.Sprintf("nub: recovered from panic: %v", r))}
		}
	}()
	h := handlers[m.Kind]
	if h == nil {
		// A valid request kind with no table entry: a control message
		// (continue, step, kill, detach) sent outside Serve's loop.
		return errMsg("unexpected request %v", m.Kind)
	}
	return h(n, m)
}

// handleHello answers the liveness probe: the connection and the nub
// are alive, nothing else is touched.
func (n *Nub) handleHello(m *Msg) *Msg {
	return &Msg{Kind: MOK}
}

// handlePlantStore services a store used only for planting breakpoints:
// remember what it overwrites.
func (n *Nub) handlePlantStore(m *Msg) *Msg {
	p := n.P
	old := make([]byte, len(m.Data))
	if err := p.ReadBytes(m.Addr, old); err != nil {
		return errMsg("plant %#x: %v", m.Addr, err)
	}
	if err := p.WriteBytes(m.Addr, m.Data); err != nil {
		return errMsg("plant %#x: %v", m.Addr, err)
	}
	n.planted[m.Addr] = old
	return &Msg{Kind: MOK}
}

func (n *Nub) handleUnplantStore(m *Msg) *Msg {
	old, ok := n.planted[m.Addr]
	if !ok {
		return errMsg("no breakpoint planted at %#x", m.Addr)
	}
	if err := n.P.WriteBytes(m.Addr, old); err != nil {
		return errMsg("unplant %#x: %v", m.Addr, err)
	}
	delete(n.planted, m.Addr)
	return &Msg{Kind: MOK}
}

// handleListPlanted reports every planted breakpoint as (addr, original
// bytes) records: addr32, len32, bytes. Sorted by address — map
// iteration order would make the reply differ run to run, and the reply
// feeds reconnect resyncs that must be deterministic.
func (n *Nub) handleListPlanted(m *Msg) *Msg {
	addrs := make([]uint32, 0, len(n.planted))
	for addr := range n.planted {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var data []byte
	for _, addr := range addrs {
		old := n.planted[addr]
		var rec [8]byte
		amem.WriteInt(binary.LittleEndian, rec[0:4], uint64(addr))
		amem.WriteInt(binary.LittleEndian, rec[4:8], uint64(len(old)))
		data = append(data, rec[:]...)
		data = append(data, old...)
	}
	return &Msg{Kind: MPlanted, Data: data}
}

func (n *Nub) handleFetchInt(m *Msg) *Msg {
	if m.Size > 4 {
		return errMsg("fetch %#x: integer size %d exceeds the 4-byte wire word", m.Addr, m.Size)
	}
	v, f := n.P.Load(m.Addr, int(m.Size))
	if f != nil {
		return errMsg("fetch %#x: %v", m.Addr, f)
	}
	return &Msg{Kind: MValue, Val: uint64(v)}
}

// handleStoreInt refuses sizes past the wire word: the machine's Store
// takes a uint32, and silently narrowing an 8-byte value would store
// the low half and claim success.
func (n *Nub) handleStoreInt(m *Msg) *Msg {
	if m.Size > 4 {
		return errMsg("store %#x: integer size %d exceeds the 4-byte wire word", m.Addr, m.Size)
	}
	if f := n.P.Store(m.Addr, int(m.Size), uint32(m.Val)); f != nil {
		return errMsg("store %#x: %v", m.Addr, f)
	}
	return &Msg{Kind: MOK}
}

func (n *Nub) handleFetchFloat(m *Msg) *Msg {
	p := n.P
	size := int(m.Size)
	if lo, hi, ok := n.quirkRange(); ok && size == 8 && uint64(m.Addr) >= lo && uint64(m.Addr)+8 <= hi {
		// Machine-dependent nub code: un-swap the kernel's saved
		// floating registers.
		raw := make([]byte, 8)
		if err := p.ReadBytes(m.Addr, raw); err != nil {
			return errMsg("fetch %#x: %v", m.Addr, err)
		}
		swapWords(raw)
		v := amem.DecodeFloat(p.A.Order(), raw, amem.Float64)
		return &Msg{Kind: MFValue, Val: float64bits(v)}
	}
	v, f := p.LoadFloat(m.Addr, size)
	if f != nil {
		return errMsg("fetch %#x: %v", m.Addr, f)
	}
	return &Msg{Kind: MFValue, Val: float64bits(v)}
}

func (n *Nub) handleStoreFloat(m *Msg) *Msg {
	p := n.P
	size := int(m.Size)
	v := float64frombits(m.Val)
	if lo, hi, ok := n.quirkRange(); ok && size == 8 && uint64(m.Addr) >= lo && uint64(m.Addr)+8 <= hi {
		raw := make([]byte, 8)
		amem.EncodeFloat(p.A.Order(), raw, amem.Float64, v)
		swapWords(raw)
		if err := p.WriteBytes(m.Addr, raw); err != nil {
			return errMsg("store %#x: %v", m.Addr, err)
		}
		return &Msg{Kind: MOK}
	}
	if f := p.StoreFloat(m.Addr, size, v); f != nil {
		return errMsg("store %#x: %v", m.Addr, f)
	}
	return &Msg{Kind: MOK}
}

func (n *Nub) handleFetchBytes(m *Msg) *Msg {
	if m.Size > maxDataLen {
		return errMsg("fetch too large")
	}
	out := make([]byte, m.Size)
	if err := n.P.ReadBytes(m.Addr, out); err != nil {
		return errMsg("fetch %#x: %v", m.Addr, err)
	}
	return &Msg{Kind: MBytes, Data: out}
}

// handleFetchLine services a readahead fetch: return however many of
// the requested bytes exist in the containing segment rather than
// failing at the segment's edge. Rides the batch capability bit, so a
// legacy nub refuses it like any unknown request.
func (n *Nub) handleFetchLine(m *Msg) *Msg {
	p := n.P
	if n.LegacyProtocol {
		return errMsg("unknown request %v", m.Kind)
	}
	if m.Size > maxDataLen {
		return errMsg("fetch too large")
	}
	for _, s := range p.Segs {
		if m.Addr < s.Base || m.Addr >= s.Base+uint32(len(s.Data)) {
			continue
		}
		size := min(uint64(m.Size), uint64(s.Base)+uint64(len(s.Data))-uint64(m.Addr))
		out := make([]byte, size)
		if err := p.ReadBytes(m.Addr, out); err != nil {
			return errMsg("fetch %#x: %v", m.Addr, err)
		}
		return &Msg{Kind: MBytes, Data: out}
	}
	return errMsg("fetch %#x: unmapped", m.Addr)
}

func (n *Nub) handleStoreBytes(m *Msg) *Msg {
	if err := n.P.WriteBytes(m.Addr, m.Data); err != nil {
		return errMsg("store %#x: %v", m.Addr, err)
	}
	return &Msg{Kind: MOK}
}

// handleSimStats serves the simulator counters. Rides the batch
// capability bit, so a legacy nub refuses it like any unknown request.
func (n *Nub) handleSimStats(m *Msg) *Msg {
	if n.LegacyProtocol {
		return errMsg("unknown request %v", m.Kind)
	}
	st := n.P.SimStats()
	return &Msg{Kind: MSimStatsReply, Data: encodeSimStats(SimStatsReport{
		Steps: n.P.Steps, Hits: st.Hits, Decodes: st.Decodes,
		Invalidations: st.Invalidations, Fallbacks: st.Fallbacks,
		Blocks: st.Blocks, BlockInsns: st.BlockInsns,
	})}
}

// handleServerStats serves the robustness counters. Rides the batch
// capability bit, so a legacy nub refuses it like any unknown request.
func (n *Nub) handleServerStats(m *Msg) *Msg {
	if n.LegacyProtocol {
		return errMsg("unknown request %v", m.Kind)
	}
	st := n.Stats.Snapshot()
	return &Msg{Kind: MServerStatsReply, Data: encodeServerStats(ServerStatsReport{
		RecoveredPanics: st.RecoveredPanics, MalformedFrames: st.MalformedFrames,
		OversizeRejects: st.OversizeRejects, SlowReads: st.SlowReads,
		CtxFaults: st.CtxFaults,
	})}
}

// handleBatch services an MBatch envelope: each member is handled in
// order and the member replies travel back in one MBatchReply. Control
// messages — continue, kill, detach, nested batches — may not ride in
// an envelope; such members get individual error replies so the other
// members still complete.
func (n *Nub) handleBatch(m *Msg) *Msg {
	if n.LegacyProtocol {
		return errMsg("nub does not understand batches")
	}
	subs, err := DecodeBatch(m)
	if err != nil {
		return errMsg("%v", err)
	}
	n.Stats.Batches.Add(1)
	n.Stats.BatchedMsgs.Add(int64(len(subs)))
	reps := make([]*Msg, len(subs))
	for i, sub := range subs {
		switch sub.Kind {
		case MContinue, MStepInst, MKill, MDetach, MHello, MBatch, MBatchReply:
			reps[i] = errMsg("%v may not ride in a batch", sub.Kind)
		default:
			// Members go through the full validate-and-contain path: a
			// panic on one member yields that member an error reply and
			// lets the others complete.
			reps[i] = n.safeHandle(sub)
		}
	}
	env, err := EncodeBatch(MBatchReply, reps)
	if err != nil {
		// Oversized reply payloads and the like: report instead of
		// breaking the connection.
		return errMsg("batch reply: %v", err)
	}
	return env
}

// Serve handles one debugger connection: it announces the target,
// replays the pending event, then services requests until told to
// continue (which runs the target to its next event), to terminate, or
// to break the connection. On connection loss it returns with target
// state preserved, ready for a new Serve.
func (n *Nub) Serve(conn io.ReadWriter) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.welcomeLocked(conn, 0); err != nil {
		return err
	}
	for {
		req, err := n.readRequest(conn)
		if err != nil {
			if errors.Is(err, errOversize) {
				// An attacker-chosen payload length. Reply, then close:
				// the stream cannot be resynced past the bogus frame, and
				// draining it would read however many bytes the peer
				// declared.
				n.Stats.OversizeRejects.Add(1)
				_ = WriteMsg(conn, &Msg{Kind: MError, Data: []byte(err.Error())})
				n.Stats.MsgsSent.Add(1)
			}
			return err // connection broken; state preserved
		}
		done, err := n.serveOneLocked(conn, req)
		if done || err != nil {
			return err
		}
	}
}

// serveWelcome runs the handshake only — Serve's prologue, factored out
// so the debug service can bind a connection to a session (welcome with
// extra capability bits, then request-by-request dispatch through
// serveOneLocked) without holding the nub for the connection's
// lifetime.
func (n *Nub) serveWelcome(conn io.ReadWriter, extra uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.welcomeLocked(conn, extra)
}

// welcomeLocked announces the target and replays the pending stop
// event, running the target to its first stop if nothing is latched
// yet. extra ORs additional capability bits into the welcome's Val (the
// debug service advertises WelcomeSessions). Callers hold n.mu.
func (n *Nub) welcomeLocked(conn io.ReadWriter, extra uint64) error {
	if n.dead {
		return fmt.Errorf("nub: target terminated")
	}
	welcome := &Msg{
		Kind: MWelcome,
		Addr: n.ctxAddr,
		Size: uint32(n.P.A.Context().Size),
		Data: []byte(n.P.A.Name()),
	}
	if !n.LegacyProtocol {
		welcome.Val |= WelcomeBatch | extra
	}
	if err := WriteMsg(conn, welcome); err != nil {
		return err
	}
	n.Stats.MsgsSent.Add(1)
	if n.pending == nil {
		n.resumeAndLatch(n.runAndLatch)
	}
	if err := WriteMsg(conn, n.pending); err != nil {
		return err
	}
	n.Stats.MsgsSent.Add(1)
	return nil
}

// serveOneLocked services one already-read request on conn: the
// control kinds inline — they manipulate nub lifecycle state no handler
// may touch — and everything else through the validate-and-contain
// dispatch path. done reports that the connection is finished (the
// target was killed or the debugger detached). Callers hold n.mu.
func (n *Nub) serveOneLocked(conn io.ReadWriter, req *Msg) (done bool, err error) {
	n.Stats.MsgsReceived.Add(1)
	n.Stats.RoundTrips.Add(1)
	switch req.Kind {
	case MContinue, MStepInst:
		if req.Kind == MStepInst && n.LegacyProtocol {
			// Rides the batch capability bit, like any post-legacy
			// request.
			if err := WriteMsg(conn, &Msg{Kind: MError, Data: []byte(fmt.Sprintf("unknown request %v", req.Kind))}); err != nil {
				return false, err
			}
			n.Stats.MsgsSent.Add(1)
			return false, nil
		}
		if n.P.State == machine.StateExited {
			if err := WriteMsg(conn, &Msg{Kind: MExited, Code: int32(n.P.ExitCode)}); err != nil {
				return false, err
			}
			n.Stats.MsgsSent.Add(1)
			return false, nil
		}
		n.resumeAndLatch(func() {
			if rerr := n.restoreContext(); rerr != nil {
				// The debugger scribbled the context away, or the
				// target unmapped it: latch the fault instead of
				// resuming with garbage registers.
				n.latchCtxFault(n.P.PC())
				return
			}
			if req.Kind == MStepInst {
				n.stepAndLatch()
			} else {
				n.runAndLatch()
			}
		})
		if err := WriteMsg(conn, n.pending); err != nil {
			return false, err
		}
		n.Stats.MsgsSent.Add(1)
	case MKill:
		n.dead = true
		n.P.State = machine.StateExited
		_ = WriteMsg(conn, &Msg{Kind: MOK})
		n.Stats.MsgsSent.Add(1)
		return true, nil
	case MDetach:
		_ = WriteMsg(conn, &Msg{Kind: MOK})
		n.Stats.MsgsSent.Add(1)
		return true, nil
	default:
		if err := WriteMsg(conn, n.safeHandle(req)); err != nil {
			return false, err
		}
		n.Stats.MsgsSent.Add(1)
	}
	return false, nil
}

// readRequest reads one request from conn under the two-phase server
// read deadline: the idle wait for a frame's first byte is unbounded —
// a debugger may sit at its prompt for hours — but once a frame has
// started, the rest must arrive within ReadTimeout, so a peer that
// opens a frame and trickles bytes (slowloris) is dropped instead of
// pinning the nub forever. Connections without deadline support (in-
// memory pipes wrapped by fault injectors) are served without the
// defence.
func (n *Nub) readRequest(conn io.ReadWriter) (*Msg, error) {
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return nil, err
	}
	timeout := n.ReadTimeout
	if timeout == 0 {
		timeout = DefaultServeTimeout
	}
	type deadliner interface{ SetReadDeadline(time.Time) error }
	d, ok := conn.(deadliner)
	armed := ok && timeout > 0 && d.SetReadDeadline(time.Now().Add(timeout)) == nil
	m, err := readMsgRest(first[0], conn)
	if armed {
		_ = d.SetReadDeadline(time.Time{})
		if err != nil && isTimeout(err) {
			n.Stats.SlowReads.Add(1)
			err = fmt.Errorf("nub: dropped slow read after %v: %w", timeout, err)
		}
	}
	return m, err
}

// ServeListener accepts connections one at a time, preserving target
// state between them, until the target is killed, the listener closes,
// or Shutdown is called. This is how a process waits on the network for
// a debugger.
func (n *Nub) ServeListener(l net.Listener) {
	n.lnMu.Lock()
	n.listener = l
	closing := n.closing
	n.lnMu.Unlock()
	if closing {
		_ = l.Close()
		return
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		n.lnMu.Lock()
		if n.closing {
			// Shutdown raced the accept: drop the connection instead of
			// serving past the drain.
			n.lnMu.Unlock()
			_ = conn.Close()
			return
		}
		n.serving = conn
		n.lnMu.Unlock()
		err = n.Serve(conn)
		_ = conn.Close()
		n.lnMu.Lock()
		n.serving = nil
		closing := n.closing
		n.lnMu.Unlock()
		n.mu.Lock()
		dead := n.dead
		n.mu.Unlock()
		if closing || (err == nil && dead) {
			return
		}
	}
}

// Shutdown stops ServeListener gracefully: a blocked Accept is
// unblocked by closing the listener, a connection being served finishes
// its in-flight request, an *idle* connection — a debugger sitting at
// its prompt, whose unbounded first-byte wait would otherwise pin the
// serve goroutine forever — is unblocked by expiring its read deadline,
// and no further connections are accepted. Target state is preserved —
// shutdown severs the debugger endpoint, it does not kill the target.
func (n *Nub) Shutdown() {
	n.lnMu.Lock()
	n.closing = true
	l := n.listener
	serving := n.serving
	n.lnMu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	if d, ok := serving.(interface{ SetReadDeadline(time.Time) error }); ok {
		// The expired deadline makes the idle readRequest return a
		// timeout error; the in-flight reply, if any, still writes.
		_ = d.SetReadDeadline(time.Now())
	}
}
