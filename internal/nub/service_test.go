package nub

import (
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/machine"
)

// startService builds a service with every test architecture's program
// registered under the architecture's name, serving on a loopback TCP
// listener. Shutdown runs at test cleanup.
func startService(t *testing.T, cfg func(*Service)) (*Service, string) {
	t.Helper()
	s := NewService()
	for _, a := range allArches {
		s.Register(a.Name(), a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	}
	if cfg != nil {
		cfg(s)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeListener(l)
	t.Cleanup(s.Shutdown)
	return s, l.Addr().String()
}

// TestServiceOpenRunClose drives one session through its life: lobby
// welcome, open, run to the embedded trap, fetch the store it made,
// close, and open a fresh one on the same connection.
func TestServiceOpenRunClose(t *testing.T) {
	_, addr := startService(t, nil)
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if !c.Sessions() {
		t.Fatal("lobby welcome did not advertise sessions")
	}
	if c.ArchName != "" || c.SessionID() != 0 {
		t.Fatalf("lobby client has identity already: %q session %d", c.ArchName, c.SessionID())
	}
	ev, err := c.OpenSession("mips")
	if err != nil {
		t.Fatal(err)
	}
	if c.ArchName != "mips" || c.SessionID() == 0 {
		t.Fatalf("after open: arch %q session %d", c.ArchName, c.SessionID())
	}
	if ev.Exited || ev.Sig != arch.SigTrap || ev.Code != arch.TrapPause {
		t.Fatalf("first event = %v", ev)
	}
	if ev, err = c.Continue(); err != nil || ev.Sig != arch.SigTrap || ev.Code != 3 {
		t.Fatalf("continue: %v, %v", ev, err)
	}
	v, err := c.FetchInt(amem.Data, machine.DataBase, 4)
	if err != nil || v != 42 {
		t.Fatalf("fetch = %d, %v", v, err)
	}
	if err := c.CloseSession(); err != nil {
		t.Fatal(err)
	}
	if c.SessionID() != 0 {
		t.Fatalf("session id survives close: %d", c.SessionID())
	}
	// The connection is back in the lobby; target requests must be
	// refused, and a new session must open.
	if _, err := c.FetchInt(amem.Data, machine.DataBase, 4); err == nil || !strings.Contains(err.Error(), "no session bound") {
		t.Fatalf("lobby fetch: %v", err)
	}
	if _, err := c.OpenSession("sparc"); err != nil {
		t.Fatal(err)
	}
	if c.ArchName != "sparc" {
		t.Fatalf("rebound arch = %q", c.ArchName)
	}
}

// TestServiceAllISAs opens a session of each registered architecture
// through one endpoint and runs each to its trap — the pool really does
// spawn every ISA on demand.
func TestServiceAllISAs(t *testing.T) {
	_, addr := startService(t, nil)
	for _, a := range allArches {
		c, conn, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.OpenSession(a.Name()); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if ev, err := c.Continue(); err != nil || ev.Exited || ev.Sig != arch.SigTrap {
			t.Fatalf("%s continue: %v, %v", a.Name(), ev, err)
		}
		if v, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil || v != 42 {
			t.Fatalf("%s fetch = %d, %v", a.Name(), v, err)
		}
		conn.Close()
	}
}

// TestServiceDetachAttachResumes detaches from a session and re-attaches
// from a new connection: the target's state survives the connection, as
// a single-target nub's does, but addressed by session id.
func TestServiceDetachAttachResumes(t *testing.T) {
	_, addr := startService(t, nil)
	c1, conn1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	if _, err := c1.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	id := c1.SessionID()
	if ev, err := c1.Continue(); err != nil || ev.Code != 3 {
		t.Fatalf("continue: %v, %v", ev, err)
	}
	if err := c1.Detach(); err != nil {
		t.Fatal(err)
	}
	conn1.Close()

	c2, conn2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	ev, err := c2.AttachSession(id)
	if err != nil {
		t.Fatal(err)
	}
	// The replayed event is the trap the first connection stopped at.
	if ev.Exited || ev.Sig != arch.SigTrap || ev.Code != 3 {
		t.Fatalf("replayed event = %v", ev)
	}
	if c2.ArchName != "mips" || c2.SessionID() != id {
		t.Fatalf("attached identity: %q session %d", c2.ArchName, c2.SessionID())
	}
	if v, err := c2.FetchInt(amem.Data, machine.DataBase, 4); err != nil || v != 42 {
		t.Fatalf("fetch after attach = %d, %v", v, err)
	}
	if _, err := c2.AttachSession(999); err == nil {
		t.Fatal("attach to unknown session succeeded")
	}
}

// TestServiceReconnectReattaches severs a session-bound connection
// under the client and checks the next request rides the reconnect
// path: redial, lobby welcome, re-attach by session id, resync.
func TestServiceReconnectReattaches(t *testing.T) {
	_, addr := startService(t, nil)
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	id := c.SessionID()
	if ev, err := c.Continue(); err != nil || ev.Code != 3 {
		t.Fatalf("continue: %v, %v", ev, err)
	}
	conn.Close() // sever under the client
	v, err := c.FetchInt(amem.Data, machine.DataBase, 4)
	if err != nil || v != 42 {
		t.Fatalf("fetch across reconnect = %d, %v", v, err)
	}
	if c.SessionID() != id {
		t.Fatalf("reconnect changed session: %d -> %d", id, c.SessionID())
	}
	if c.Stats().Reconnects == 0 {
		t.Fatal("no reconnect recorded")
	}
}

// TestServiceLegacyFallback points the service at a legacy target: a
// client that knows nothing of sessions debugs it exactly as it would a
// single-target nub, while a session-aware client on the same endpoint
// can still rebind to a pool session.
func TestServiceLegacyFallback(t *testing.T) {
	a := allArches[0]
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()
	_, addr := startService(t, func(s *Service) { s.SetLegacyTarget(n) })

	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if c.ArchName != a.Name() {
		t.Fatalf("legacy welcome arch = %q", c.ArchName)
	}
	if c.Last.Sig != arch.SigTrap || c.Last.Code != arch.TrapPause {
		t.Fatalf("legacy first event = %v", c.Last)
	}
	if ev, err := c.Continue(); err != nil || ev.Code != 3 {
		t.Fatalf("legacy continue: %v, %v", ev, err)
	}
	if v, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil || v != 42 {
		t.Fatalf("legacy fetch = %d, %v", v, err)
	}
	if err := c.Detach(); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A second connection sees the same target where it stopped, then
	// rebinds to a pool session of a different architecture.
	c2, conn2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if c2.Last.Code != 3 {
		t.Fatalf("second legacy event = %v", c2.Last)
	}
	if _, err := c2.OpenSession("vax"); err != nil {
		t.Fatal(err)
	}
	if c2.ArchName != "vax" {
		t.Fatalf("rebound arch = %q", c2.ArchName)
	}
}

// A connection arriving while another one holds the legacy target must
// land in the lobby immediately, not queue behind the live session.
func TestServiceLegacyBusyFallsToLobby(t *testing.T) {
	a := allArches[0]
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()
	_, addr := startService(t, func(s *Service) { s.SetLegacyTarget(n) })

	c1, conn1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	if c1.ArchName != a.Name() {
		t.Fatalf("first connection arch = %q, want legacy target", c1.ArchName)
	}

	// The legacy token is held by c1; this connection gets the lobby
	// and can still open a pool session.
	c2, conn2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if !c2.Sessions() || c2.ArchName != "" {
		t.Fatalf("second connection: sessions=%v arch=%q, want lobby", c2.Sessions(), c2.ArchName)
	}
	if _, err := c2.OpenSession("sparc"); err != nil {
		t.Fatal(err)
	}
	// The legacy session was untouched throughout.
	if ev, err := c1.Continue(); err != nil || ev.Code != 3 {
		t.Fatalf("legacy continue: %v, %v", ev, err)
	}
}

// TestServiceLRUEviction caps the pool at two sessions and opens three:
// the least recently used idle session is evicted to make room —
// passivated, so an attach to it resurrects it transparently (evicting
// someone else in turn). With passivation disabled, the attach reports
// the session gone, as eviction always did.
func TestServiceLRUEviction(t *testing.T) {
	s, addr := startService(t, func(s *Service) { s.MaxSessions = 2 })
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	first := c.SessionID()
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if got := s.Sessions(); got != 2 {
		t.Fatalf("pool holds %d sessions, want 2", got)
	}
	if _, err := c.AttachSession(first); err != nil {
		t.Fatalf("attach to evicted session should resurrect it: %v", err)
	}
	if c.SessionID() != first {
		t.Fatalf("resurrected session id = %d, want %d", c.SessionID(), first)
	}
	st, err := c.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 2 || st.Peak != 2 || st.Opened != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Evicted < 2 || st.Passivated < 2 || st.Resurrected != 1 {
		t.Fatalf("lifecycle stats = %+v, want ≥2 evicted/passivated and 1 resurrected", st)
	}
}

// TestServiceEvictionWithoutPassivation pins the pre-crash-only
// behavior: with checkpoints disabled, an evicted session is simply
// gone.
func TestServiceEvictionWithoutPassivation(t *testing.T) {
	s, addr := startService(t, func(s *Service) { s.MaxSessions = 2; s.CheckpointInterval = -1 })
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	first := c.SessionID()
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AttachSession(first); err == nil || !strings.Contains(err.Error(), "no such session") {
		t.Fatalf("attach to evicted session: %v", err)
	}
	if got := s.Sessions(); got != 2 {
		t.Fatalf("pool holds %d sessions, want 2", got)
	}
}

// TestServiceCapacityAllBusy: when every session is bound, open fails
// instead of evicting someone's live debugging session.
func TestServiceCapacityAllBusy(t *testing.T) {
	_, addr := startService(t, func(s *Service) { s.MaxSessions = 1 })
	c1, conn1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	if _, err := c1.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	c2, conn2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := c2.OpenSession("mips"); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("open at capacity: %v", err)
	}
}

// TestServiceWarmAttachZeroDecodes is the shared-decode-cache gate at
// the service level: close a session (publishing its decode products)
// and a fresh session of the same program must run entirely warm.
func TestServiceWarmAttachZeroDecodes(t *testing.T) {
	_, addr := startService(t, nil)
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if ev, err := c.Continue(); err != nil || ev.Code != 3 {
		t.Fatalf("cold continue: %v, %v", ev, err)
	}
	cold, err := c.SimStats()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Decodes == 0 {
		t.Fatal("cold session decoded nothing; the gate below would be vacuous")
	}
	if err := c.CloseSession(); err != nil {
		t.Fatal(err)
	}

	if _, err := c.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if ev, err := c.Continue(); err != nil || ev.Code != 3 {
		t.Fatalf("warm continue: %v, %v", ev, err)
	}
	warm, err := c.SimStats()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Decodes != 0 {
		t.Fatalf("warm session decoded %d instructions, want 0 (%+v)", warm.Decodes, warm)
	}
	st, err := c.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SharedHits < 1 {
		t.Fatalf("no shared-cache hit recorded: %+v", st)
	}
}

// TestServiceStatsPerSession: the health line's per-session request
// count is the bound session's alone, while the aggregate spans the
// pool.
func TestServiceStatsPerSession(t *testing.T) {
	_, addr := startService(t, nil)
	c1, conn1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	c2, conn2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := c1.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	c1.SetCaching(false)
	for i := 0; i < 10; i++ {
		if _, err := c1.FetchInt(amem.Data, machine.DataBase, 4); err != nil {
			t.Fatal(err)
		}
	}
	st1, err := c1.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c2.ServiceStats()
	if err != nil {
		t.Fatal(err)
	}
	if st1.SessionRequests < 10 {
		t.Fatalf("session 1 requests = %d, want >= 10", st1.SessionRequests)
	}
	if st2.SessionRequests >= st1.SessionRequests {
		t.Fatalf("idle session counts the busy one's requests: %d vs %d", st2.SessionRequests, st1.SessionRequests)
	}
	if st1.TotalRequests < st1.SessionRequests+st2.SessionRequests {
		t.Fatalf("aggregate %d below sum of sessions %d+%d", st1.TotalRequests, st1.SessionRequests, st2.SessionRequests)
	}
}

// TestServicePlainNubRefusesSessionKinds pins the legacy story on the
// wire: a single-target nub answers MOpenSession with a clean error and
// keeps serving, and the client API refuses locally before sending.
func TestServicePlainNubRefusesSessionKinds(t *testing.T) {
	a := allArches[0]
	c, _, _, err := Launch(a, testProgram(t, a), nil, machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sessions() {
		t.Fatal("plain nub advertised sessions")
	}
	if _, err := c.OpenSession("mips"); err == nil {
		t.Fatal("OpenSession against plain nub did not refuse")
	}
	if _, err := c.ServiceStats(); err == nil || !strings.Contains(err.Error(), "unexpected request") {
		t.Fatalf("servicestats against plain nub: %v", err)
	}
	// The refusal left the connection healthy.
	if _, err := c.Continue(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceShutdownDrains is the goroutine-leak gate: spin up live
// sessions on idle connections, shut down, and the process must return
// to its pre-service goroutine count — no accept loop, no connection
// goroutines, nothing parked in a read.
func TestServiceShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewService()
	for _, a := range allArches {
		s.Register(a.Name(), a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeListener(l)

	var conns []net.Conn
	for i := 0; i < 8; i++ {
		c, conn, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, conn)
		if _, err := c.OpenSession(allArches[i%len(allArches)].Name()); err != nil {
			t.Fatal(err)
		}
		if _, err := c.StepInst(); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	go func() { s.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not drain idle connections")
	}
	for _, conn := range conns {
		conn.Close()
	}
	if _, err := net.DialTimeout("tcp", l.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceSessionIsolation runs two sessions of the same program and
// checks one's breakpoint plant never perturbs the other — the shared
// cache's per-session copy-on-write seam, exercised over the wire.
func TestServiceSessionIsolation(t *testing.T) {
	_, addr := startService(t, nil)
	// Warm the cache so both sessions below adopt the same entry.
	cw, connw, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Continue(); err != nil {
		t.Fatal(err)
	}
	if err := cw.CloseSession(); err != nil {
		t.Fatal(err)
	}
	connw.Close()

	c1, conn1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	c2, conn2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := c1.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.OpenSession("mips"); err != nil {
		t.Fatal(err)
	}
	// Session 1 plants a breakpoint over its second instruction.
	a, _ := arch.Lookup("mips")
	if err := c1.PlantStore(machine.TextBase+4, a.BreakInstr()); err != nil {
		t.Fatal(err)
	}
	if ev, err := c1.Continue(); err != nil || ev.Code != arch.TrapBreakpoint {
		t.Fatalf("planter stop: %v, %v", ev, err)
	}
	// Session 2 runs clean and warm despite session 1's plant.
	if ev, err := c2.Continue(); err != nil || ev.Code != 3 {
		t.Fatalf("clean session stop: %v, %v", ev, err)
	}
	st, err := c2.SimStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Decodes != 0 {
		t.Fatalf("clean session decoded %d after peer plant, want 0", st.Decodes)
	}
}

// TestServiceShutdownIdempotent makes Shutdown safe to call repeatedly
// (the cleanup hook adds a third call after these two).
func TestServiceShutdownIdempotent(t *testing.T) {
	s, _ := startService(t, nil)
	s.Shutdown()
	s.Shutdown()
}
