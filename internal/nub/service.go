// The multi-session debug service: one endpoint, many targets. Hanson's
// follow-up ("A Machine-Independent Debugger—Revisited") reframes the
// nub as a server that outlives any single client; Service is that
// server. Connections are served concurrently, each in its own
// goroutine with its own panic containment; session ids ride the wire
// (MOpenSession/MAttachSession, negotiated by the WelcomeSessions
// capability bit); a target pool spawns simulated processes on demand
// from a registry of named programs and evicts the least recently used
// idle session under a configurable cap.
//
// The perf core is the shared decode cache: when a session leaves the
// pool, its predecoded instructions and superblocks are published to a
// machine.TextCache keyed by (arch, text content hash), and every later
// session debugging the same binary adopts them — a warm attach does
// zero decode work. Per-session generation counters keep breakpoint
// invalidation session-local (one user's breakpoint never slows
// another's fused run), and per-session statistics are plain atomic
// counters aggregated only when asked, so the request path takes no
// global mutex — only the bound session's own.
//
// Legacy fallback: a service given a legacy target (SetLegacyTarget)
// greets each connection with that target's welcome, exactly as a
// single-target nub would, so clients that ignore the sessions bit
// debug it unchanged; session-aware clients may still open pool
// sessions on the same connection.
package nub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ldb/internal/arch"
	"ldb/internal/machine"
)

// DefaultMaxSessions bounds the target pool when Service.MaxSessions is
// unset.
const DefaultMaxSessions = 256

// defaultAttachWait bounds how long an attach waits for a session whose
// previous connection has not yet noticed it is dead (a reconnecting
// client redials before the service's read on the old connection
// fails).
const defaultAttachWait = 2 * time.Second

// session is one pooled target: a nub plus the binding token that makes
// a connection the session's sole driver. The busy channel holds a
// token when the session is idle; binding takes it, unbinding returns
// it. lastUsed is the service clock at the last unbind — the LRU key —
// written only while the token is held, so the evictor (which acquires
// the token before reading) never races it.
type session struct {
	id      uint64
	program string
	nub     *Nub
	busy    chan struct{}
	lastUsed uint64
}

// Service is a concurrent, session-multiplexed debug server.
type Service struct {
	// MaxSessions caps the pool; opening past it evicts the least
	// recently used idle session, and fails when none is idle. Zero
	// means DefaultMaxSessions.
	MaxSessions int
	// ReadTimeout is the per-connection slowloris bound, as Nub.ReadTimeout.
	ReadTimeout time.Duration
	// AttachWait bounds how long MAttachSession waits for a busy
	// session to come free. Zero means defaultAttachWait.
	AttachWait time.Duration

	legacy *session

	share *machine.TextCache

	mu       sync.Mutex
	programs map[string]spawnSpec
	sessions map[uint64]*session
	nextID   uint64
	peak     int

	clock   atomic.Uint64
	opened  atomic.Int64
	evicted atomic.Int64
	// closedRequests accumulates the request counts of sessions that
	// have left the pool, so the aggregate survives eviction.
	closedRequests atomic.Int64

	lnMu     sync.Mutex
	listener net.Listener
	closing  bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closeCh  chan struct{}
}

// spawnSpec is the stored form of a registered program.
type spawnSpec struct {
	arch  arch.Arch
	text  []byte
	data  []byte
	entry uint32
}

// NewService returns an empty service with a fresh shared decode cache.
func NewService() *Service {
	return &Service{
		programs: make(map[string]spawnSpec),
		sessions: make(map[uint64]*session),
		conns:    make(map[net.Conn]struct{}),
		closeCh:  make(chan struct{}),
		share:    machine.NewTextCache(),
	}
}

// Register adds a spawnable program to the service's registry under
// name. The images are referenced, not copied; callers must not mutate
// them afterwards.
func (s *Service) Register(name string, a arch.Arch, text, data []byte, entry uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.programs[name] = spawnSpec{arch: a, text: text, data: data, entry: entry}
}

// SetLegacyTarget installs a single target that every connection is
// bound to on arrival, the way a classic single-target nub greets its
// debugger. Legacy clients debug it unchanged; session-aware clients
// can rebind with MOpenSession. Call before serving.
func (s *Service) SetLegacyTarget(n *Nub) {
	b := make(chan struct{}, 1)
	b <- struct{}{}
	s.legacy = &session{nub: n, busy: b}
}

// SharedCache exposes the service's shared decode cache (for tests and
// embedders that pre-publish programs).
func (s *Service) SharedCache() *machine.TextCache { return s.share }

// Serve handles one connection to the debug service. The function is
// deliberately named Serve: the wireproto analyzer accepts a dispatch
// arm for a request kind only inside a function by that name, which
// keeps the session kinds' dispatch visible to the kind-table totality
// proof.
func (s *Service) Serve(conn net.Conn) (err error) {
	defer func() {
		// Per-session containment: a panic on this connection's
		// goroutine must not take down the service or any other
		// session. The nub's own dispatch already contains handler
		// panics; this guards the service layer itself.
		if r := recover(); r != nil {
			err = fmt.Errorf("nub: service connection panicked: %v", r)
		}
	}()
	var sess *session
	unbind := func() {
		if sess == nil {
			return
		}
		sess.lastUsed = s.clock.Add(1)
		sess.busy <- struct{}{}
		sess = nil
	}
	defer func() { unbind() }()

	if leg := s.legacy; leg != nil {
		select {
		case <-leg.busy:
			leg.nub.mu.Lock()
			dead := leg.nub.dead
			leg.nub.mu.Unlock()
			if dead {
				// The legacy target was killed; fall back to the lobby
				// so session-aware clients can still open pool targets.
				leg.busy <- struct{}{}
			} else {
				sess = leg
				if err := leg.nub.serveWelcome(conn, WelcomeSessions); err != nil {
					return err
				}
			}
		default:
			// The legacy target is bound to another live connection;
			// this one lands in the lobby instead of queueing behind it.
		}
	}
	if sess == nil {
		// Lobby welcome: capabilities only, no target, no event. A
		// session-aware client proceeds to MOpenSession/MAttachSession;
		// a legacy client rejects the empty architecture name cleanly.
		if err := WriteMsg(conn, &Msg{Kind: MWelcome, Val: WelcomeBatch | WelcomeSessions}); err != nil {
			return err
		}
	}

	for {
		req, rerr := s.readRequest(conn, sess)
		if rerr != nil {
			if errors.Is(rerr, errOversize) {
				if sess != nil {
					sess.nub.Stats.OversizeRejects.Add(1)
				}
				_ = WriteMsg(conn, &Msg{Kind: MError, Data: []byte(rerr.Error())})
			}
			return rerr // connection broken; session state preserved
		}
		switch req.Kind {
		case MOpenSession:
			unbind()
			ns, rep := s.openSession(string(req.Data))
			if rep != nil {
				if err := WriteMsg(conn, rep); err != nil {
					return err
				}
				continue
			}
			sess = ns
			if err := s.announce(conn, sess); err != nil {
				return err
			}
		case MAttachSession:
			unbind()
			ns, rep := s.attachSession(req.Val)
			if rep != nil {
				if err := WriteMsg(conn, rep); err != nil {
					return err
				}
				continue
			}
			sess = ns
			if err := s.announce(conn, sess); err != nil {
				return err
			}
		case MCloseSession:
			if sess == nil || sess.id == 0 {
				if err := WriteMsg(conn, errMsg("no session bound")); err != nil {
					return err
				}
				continue
			}
			s.kill(sess)
			s.remove(sess)
			sess = nil
			if err := WriteMsg(conn, &Msg{Kind: MOK}); err != nil {
				return err
			}
		case MServiceStats:
			if err := WriteMsg(conn, s.statsReply(sess)); err != nil {
				return err
			}
		default:
			if sess == nil {
				if err := WriteMsg(conn, errMsg("no session bound")); err != nil {
					return err
				}
				continue
			}
			n := sess.nub
			n.mu.Lock()
			done, derr := n.serveOneLocked(conn, req)
			n.mu.Unlock()
			if derr != nil {
				return derr
			}
			if done {
				// MKill leaves the nub dead: drop the session from the
				// pool. MDetach leaves it stopped for a later attach.
				if sess.id != 0 && s.dead(sess) {
					s.remove(sess)
					sess = nil
				}
				return nil
			}
		}
	}
}

// readRequest mirrors Nub.readRequest for the service's connection
// loop: unbounded idle wait for a frame's first byte, ReadTimeout for
// the rest. Slow reads are charged to the bound session, if any.
func (s *Service) readRequest(conn net.Conn, sess *session) (*Msg, error) {
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return nil, err
	}
	timeout := s.ReadTimeout
	if timeout == 0 {
		timeout = DefaultServeTimeout
	}
	armed := timeout > 0 && conn.SetReadDeadline(time.Now().Add(timeout)) == nil
	m, err := readMsgRest(first[0], conn)
	if armed {
		_ = conn.SetReadDeadline(time.Time{})
		if err != nil && isTimeout(err) {
			if sess != nil {
				sess.nub.Stats.SlowReads.Add(1)
			}
			err = fmt.Errorf("nub: dropped slow read after %v: %w", timeout, err)
		}
	}
	return m, err
}

// announce sends the MSession reply and the session's pending stop
// event — the session flavor of the single-target welcome handshake.
func (s *Service) announce(conn net.Conn, sess *session) error {
	n := sess.nub
	n.mu.Lock()
	defer n.mu.Unlock()
	rep := &Msg{
		Kind: MSession,
		Val:  sess.id,
		Addr: n.ctxAddr,
		Size: uint32(n.P.A.Context().Size),
		Data: []byte(n.P.A.Name()),
	}
	if err := WriteMsg(conn, rep); err != nil {
		return err
	}
	n.Stats.MsgsSent.Add(1)
	if n.pending == nil {
		n.resumeAndLatch(n.runAndLatch)
	}
	if err := WriteMsg(conn, n.pending); err != nil {
		return err
	}
	n.Stats.MsgsSent.Add(1)
	return nil
}

// openSession spawns the named program into a new session and returns
// it with its binding token held. A non-nil reply is the error to send
// instead.
func (s *Service) openSession(name string) (*session, *Msg) {
	s.mu.Lock()
	spec, ok := s.programs[name]
	if !ok {
		s.mu.Unlock()
		return nil, errMsg("unknown program %q", name)
	}
	cap := s.MaxSessions
	if cap <= 0 {
		cap = DefaultMaxSessions
	}
	for len(s.sessions) >= cap {
		victim := s.idleLRULocked()
		if victim == nil {
			s.mu.Unlock()
			return nil, errMsg("service at capacity (%d sessions, none idle)", cap)
		}
		delete(s.sessions, victim.id)
		s.mu.Unlock()
		s.kill(victim)
		s.retire(victim)
		s.evicted.Add(1)
		s.mu.Lock()
	}
	s.nextID++
	id := s.nextID
	p := machine.New(spec.arch, spec.text, spec.data, spec.entry)
	s.share.Adopt(p)
	n := New(p)
	sess := &session{id: id, program: name, nub: n, busy: make(chan struct{}, 1)}
	// The binding token starts held: the opener is the first driver.
	s.sessions[id] = sess
	if len(s.sessions) > s.peak {
		s.peak = len(s.sessions)
	}
	s.mu.Unlock()
	s.opened.Add(1)
	n.Start()
	return sess, nil
}

// idleLRULocked finds the least recently used idle session and takes
// its binding token, or returns nil when every session is bound.
// Callers hold s.mu.
func (s *Service) idleLRULocked() *session {
	var best *session
	for _, sess := range s.sessions {
		select {
		case <-sess.busy:
		default:
			continue
		}
		if best == nil || sess.lastUsed < best.lastUsed {
			if best != nil {
				best.busy <- struct{}{}
			}
			best = sess
		} else {
			sess.busy <- struct{}{}
		}
	}
	return best
}

// attachSession binds to the identified live session, waiting briefly
// for its token if a dying connection still holds it.
func (s *Service) attachSession(id uint64) (*session, *Msg) {
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return nil, errMsg("no such session %d", id)
	}
	wait := s.AttachWait
	if wait <= 0 {
		wait = defaultAttachWait
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-sess.busy:
	case <-t.C:
		return nil, errMsg("session %d is busy", id)
	case <-s.closeCh:
		return nil, errMsg("service shutting down")
	}
	// The session may have been killed and removed while we waited.
	s.mu.Lock()
	live := s.sessions[id] == sess
	s.mu.Unlock()
	if !live {
		return nil, errMsg("no such session %d", id)
	}
	return sess, nil
}

// dead reports whether the session's target has terminated.
func (s *Service) dead(sess *session) bool {
	sess.nub.mu.Lock()
	defer sess.nub.mu.Unlock()
	return sess.nub.dead
}

// kill terminates a session's target. Callers hold its binding token.
func (s *Service) kill(sess *session) {
	n := sess.nub
	n.mu.Lock()
	n.dead = true
	n.P.State = machine.StateExited
	n.mu.Unlock()
}

// remove drops a session from the pool and retires it. Callers hold its
// binding token (which is never released again: the session is gone).
func (s *Service) remove(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	s.retire(sess)
}

// retire finalizes a session leaving the pool: its decode products are
// published to the shared cache — end of life is maximal warmth, and
// the first publisher of a content key wins — and its request count is
// folded into the service aggregate.
func (s *Service) retire(sess *session) {
	s.share.Publish(sess.nub.P)
	s.closedRequests.Add(sess.nub.Stats.RoundTrips.Load())
}

// statsReply builds the MServiceStatsReply body: eight little-endian
// 64-bit values — sessions live, peak, evicted, opened, shared-cache
// hits, misses, the bound session's request count, and the aggregate
// across all sessions ever.
func (s *Service) statsReply(sess *session) *Msg {
	s.mu.Lock()
	live := int64(len(s.sessions))
	peak := int64(s.peak)
	var total int64
	for _, t := range s.sessions {
		total += t.nub.Stats.RoundTrips.Load()
	}
	s.mu.Unlock()
	total += s.closedRequests.Load()
	if s.legacy != nil {
		total += s.legacy.nub.Stats.RoundTrips.Load()
	}
	hits, misses := s.share.Stats()
	var bound int64
	if sess != nil {
		bound = sess.nub.Stats.RoundTrips.Load()
	}
	body := make([]byte, 64)
	for i, v := range []int64{live, peak, s.evicted.Load(), s.opened.Load(), hits, misses, bound, total} {
		binary.LittleEndian.PutUint64(body[i*8:], uint64(v))
	}
	return &Msg{Kind: MServiceStatsReply, Data: body}
}

// Sessions reports how many sessions are live (for tests).
func (s *Service) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// ServeListener accepts connections until the listener closes or
// Shutdown is called, serving each on its own goroutine — the
// concurrent successor of Nub.ServeListener's one-at-a-time loop.
func (s *Service) ServeListener(l net.Listener) {
	s.lnMu.Lock()
	if s.closing {
		s.lnMu.Unlock()
		_ = l.Close()
		return
	}
	s.listener = l
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.lnMu.Lock()
		if s.closing {
			s.lnMu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.lnMu.Unlock()
		go func() {
			defer s.wg.Done()
			_ = s.Serve(conn)
			_ = conn.Close()
			s.lnMu.Lock()
			delete(s.conns, conn)
			s.lnMu.Unlock()
		}()
	}
}

// Shutdown drains the service: the listener closes, every idle
// connection's read deadline is expired so its goroutine unblocks,
// in-flight requests finish and write their replies, and Shutdown
// returns only when every connection goroutine has exited. Session
// state is preserved — shutdown severs the endpoint, it does not kill
// targets.
func (s *Service) Shutdown() {
	s.lnMu.Lock()
	if !s.closing {
		s.closing = true
		close(s.closeCh)
	}
	l := s.listener
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.lnMu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.wg.Wait()
}
