// The multi-session debug service: one endpoint, many targets. Hanson's
// follow-up ("A Machine-Independent Debugger—Revisited") reframes the
// nub as a server that outlives any single client; Service is that
// server. Connections are served concurrently, each in its own
// goroutine with its own panic containment; session ids ride the wire
// (MOpenSession/MAttachSession, negotiated by the WelcomeSessions
// capability bit); a target pool spawns simulated processes on demand
// from a registry of named programs and evicts the least recently used
// idle session under a configurable cap.
//
// The perf core is the shared decode cache: when a session leaves the
// pool, its predecoded instructions and superblocks are published to a
// machine.TextCache keyed by (arch, text content hash), and every later
// session debugging the same binary adopts them — a warm attach does
// zero decode work. Per-session generation counters keep breakpoint
// invalidation session-local (one user's breakpoint never slows
// another's fused run), and per-session statistics are plain atomic
// counters aggregated only when asked, so the request path takes no
// global mutex — only the bound session's own.
//
// Legacy fallback: a service given a legacy target (SetLegacyTarget)
// greets each connection with that target's welcome, exactly as a
// single-target nub would, so clients that ignore the sessions bit
// debug it unchanged; session-aware clients may still open pool
// sessions on the same connection.
//
// Sessions are crash-only. Every pooled session auto-checkpoints at a
// configurable instruction interval and carries a compact log of the
// replayable inputs accepted since (stores, plants, resumes); there is
// no graceful teardown path that the correctness of anything depends
// on. Eviction passivates: the victim's checkpoint is serialized into a
// bounded in-service store (optionally spilled to disk), and a later
// MAttachSession to the evicted id resurrects it transparently —
// breakpoints, registers, memory, and the latched stop event included.
// A request that panics mid-flight rolls the session back to its last
// checkpoint and replays the log, so the client sees a retryable
// CodeRolledBack error instead of a corrupted target. MCloseSession is
// idempotent: closing a dead, unknown, or passivated session is a clean
// success, because the close's postcondition — the session is gone —
// already holds.
package nub

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ldb/internal/arch"
	"ldb/internal/machine"
)

// DefaultMaxSessions bounds the target pool when Service.MaxSessions is
// unset.
const DefaultMaxSessions = 256

// defaultAttachWait bounds how long an attach waits for a session whose
// previous connection has not yet noticed it is dead (a reconnecting
// client redials before the service's read on the old connection
// fails).
const defaultAttachWait = 2 * time.Second

// session is one pooled target: a nub plus the binding token that makes
// a connection the session's sole driver. The busy channel holds a
// token when the session is idle; binding takes it, unbinding returns
// it. lastUsed is the service clock at the last unbind — the LRU key —
// written only while the token is held, so the evictor (which acquires
// the token before reading) never races it.
//
// The checkpoint fields are likewise guarded by the token: the bound
// connection is the only writer, whether it mutates them between
// requests (logRequest, rollback) or from inside Run via the
// auto-checkpoint callback.
type session struct {
	id       uint64
	program  string
	nub      *Nub
	busy     chan struct{}
	lastUsed uint64

	// ck is the session's latest checkpoint, ckPending the stop event
	// that was latched when it was taken, and ckLog the replayable
	// inputs accepted since: ck + ckLog always reaches the current
	// state. replayLog/replayIdx are live only while a rollback walks
	// the log, so a mid-replay auto-checkpoint can rebase onto the
	// events that still remain; resumeCovered marks that the resume
	// request being served is already covered by a mid-run checkpoint's
	// EvResume and must not be logged a second time.
	ck            *machine.Checkpoint
	ckPending     *Msg
	ckLog         []machine.Event
	replayLog     []machine.Event
	replayIdx     int
	resumeCovered bool
}

// Service is a concurrent, session-multiplexed debug server.
type Service struct {
	// MaxSessions caps the pool; opening past it evicts the least
	// recently used idle session, and fails when none is idle. Zero
	// means DefaultMaxSessions.
	MaxSessions int
	// ReadTimeout is the per-connection slowloris bound, as Nub.ReadTimeout.
	ReadTimeout time.Duration
	// AttachWait bounds how long MAttachSession waits for a busy
	// session to come free. Zero means defaultAttachWait.
	AttachWait time.Duration
	// CheckpointInterval paces per-session auto-checkpoints, in
	// executed instructions. Zero means
	// machine.DefaultCheckpointInterval; negative disables checkpoints
	// entirely — and with them rollback, passivation, and resurrection.
	CheckpointInterval int64
	// MaxPassivated bounds the in-service store of passivated session
	// checkpoints; the oldest record is dropped past it. Zero means
	// DefaultMaxPassivated.
	MaxPassivated int
	// PassivateDir, when set, spills passivated checkpoints to disk
	// (one session-<id>.ck file each), so a session can outlive both
	// the pool and the bounded in-memory store.
	PassivateDir string
	// FaultHook, when set, runs before dispatching a bound session's
	// request; returning true simulates a crash mid-request — the hook
	// may corrupt target state through n — and forces a rollback. Chaos
	// tests inject failures here; production leaves it nil.
	FaultHook func(id uint64, n *Nub, req *Msg) bool

	legacy *session

	share *machine.TextCache

	mu       sync.Mutex //ldb:lock service.mu 10
	programs map[string]spawnSpec
	sessions map[uint64]*session
	nextID   uint64
	peak     int

	// passive stores the serialized checkpoints of evicted sessions,
	// keyed by session id; passiveSeq orders them for bounded-store
	// eviction. Guarded by mu.
	passive    map[uint64]*passiveRec
	passiveSeq uint64

	clock   atomic.Uint64
	opened  atomic.Int64
	evicted atomic.Int64
	// closedRequests accumulates the request counts of sessions that
	// have left the pool, so the aggregate survives eviction.
	closedRequests atomic.Int64
	// Crash-only lifecycle counters: sessions passivated on eviction,
	// sessions resurrected from a stored checkpoint, and per-request
	// rollbacks to the last checkpoint.
	passivated  atomic.Int64
	resurrected atomic.Int64
	rollbacks   atomic.Int64

	lnMu     sync.Mutex //ldb:lock service.lnMu 40
	listener net.Listener
	closing  bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closeCh  chan struct{}
}

// spawnSpec is the stored form of a registered program.
type spawnSpec struct {
	arch  arch.Arch
	text  []byte
	data  []byte
	entry uint32
}

// passiveRec is one passivated session: its serialized checkpoint and
// its age in the bounded store.
type passiveRec struct {
	seq  uint64
	blob []byte
}

// DefaultMaxPassivated bounds the passivated-checkpoint store when
// Service.MaxPassivated is unset.
const DefaultMaxPassivated = 64

// maxCkLog bounds the replay log between checkpoints: past it the
// service takes a fresh checkpoint instead of letting rollback replay
// an unbounded tail.
const maxCkLog = 1024

// NewService returns an empty service with a fresh shared decode cache.
func NewService() *Service {
	return &Service{
		programs: make(map[string]spawnSpec),
		sessions: make(map[uint64]*session),
		passive:  make(map[uint64]*passiveRec),
		conns:    make(map[net.Conn]struct{}),
		closeCh:  make(chan struct{}),
		share:    machine.NewTextCache(),
	}
}

// Register adds a spawnable program to the service's registry under
// name. The images are referenced, not copied; callers must not mutate
// them afterwards.
func (s *Service) Register(name string, a arch.Arch, text, data []byte, entry uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.programs[name] = spawnSpec{arch: a, text: text, data: data, entry: entry}
}

// SetLegacyTarget installs a single target that every connection is
// bound to on arrival, the way a classic single-target nub greets its
// debugger. Legacy clients debug it unchanged; session-aware clients
// can rebind with MOpenSession. Call before serving.
func (s *Service) SetLegacyTarget(n *Nub) {
	b := make(chan struct{}, 1)
	b <- struct{}{}
	s.legacy = &session{nub: n, busy: b}
}

// SharedCache exposes the service's shared decode cache (for tests and
// embedders that pre-publish programs).
func (s *Service) SharedCache() *machine.TextCache { return s.share }

// Serve handles one connection to the debug service. The function is
// deliberately named Serve: the wireproto analyzer accepts a dispatch
// arm for a request kind only inside a function by that name, which
// keeps the session kinds' dispatch visible to the kind-table totality
// proof.
func (s *Service) Serve(conn net.Conn) (err error) {
	defer func() {
		// Per-session containment: a panic on this connection's
		// goroutine must not take down the service or any other
		// session. The nub's own dispatch already contains handler
		// panics; this guards the service layer itself.
		if r := recover(); r != nil {
			err = fmt.Errorf("nub: service connection panicked: %v", r)
		}
	}()
	var sess *session
	unbind := func() {
		if sess == nil {
			return
		}
		sess.lastUsed = s.clock.Add(1)
		sess.busy <- struct{}{}
		sess = nil
	}
	defer func() { unbind() }()

	if leg := s.legacy; leg != nil {
		select {
		case <-leg.busy:
			leg.nub.mu.Lock()
			dead := leg.nub.dead
			leg.nub.mu.Unlock()
			if dead {
				// The legacy target was killed; fall back to the lobby
				// so session-aware clients can still open pool targets.
				leg.busy <- struct{}{}
			} else {
				sess = leg
				if err := leg.nub.serveWelcome(conn, WelcomeSessions); err != nil {
					return err
				}
			}
		default:
			// The legacy target is bound to another live connection;
			// this one lands in the lobby instead of queueing behind it.
		}
	}
	if sess == nil {
		// Lobby welcome: capabilities only, no target, no event. A
		// session-aware client proceeds to MOpenSession/MAttachSession;
		// a legacy client rejects the empty architecture name cleanly.
		if err := WriteMsg(conn, &Msg{Kind: MWelcome, Val: WelcomeBatch | WelcomeSessions}); err != nil {
			return err
		}
	}

	for {
		req, rerr := s.readRequest(conn, sess)
		if rerr != nil {
			if errors.Is(rerr, errOversize) {
				if sess != nil {
					sess.nub.Stats.OversizeRejects.Add(1)
				}
				_ = WriteMsg(conn, &Msg{Kind: MError, Data: []byte(rerr.Error())})
			}
			return rerr // connection broken; session state preserved
		}
		switch req.Kind {
		case MOpenSession:
			unbind()
			ns, rep := s.openSession(string(req.Data))
			if rep != nil {
				if err := WriteMsg(conn, rep); err != nil {
					return err
				}
				continue
			}
			sess = ns
			if err := s.announce(conn, sess); err != nil {
				return err
			}
		case MAttachSession:
			unbind()
			ns, rep := s.attachSession(req.Val)
			if rep != nil {
				if err := WriteMsg(conn, rep); err != nil {
					return err
				}
				continue
			}
			sess = ns
			if err := s.announce(conn, sess); err != nil {
				return err
			}
		case MCloseSession:
			// Idempotent by design: close means "make the session not
			// exist", and if it already does not — unknown id, already
			// closed, or passivated (Val names it) — the postcondition
			// holds and the answer is a clean MOK. A stored checkpoint
			// is dropped either way, so a closed session cannot
			// resurrect.
			if sess != nil && sess.id != 0 {
				id := sess.id
				s.kill(sess)
				s.remove(sess)
				sess = nil
				s.dropPassivated(id)
			} else {
				s.dropPassivated(req.Val)
			}
			if err := WriteMsg(conn, &Msg{Kind: MOK}); err != nil {
				return err
			}
		case MServiceStats:
			if err := WriteMsg(conn, s.statsReply(sess)); err != nil {
				return err
			}
		default:
			if sess == nil {
				if err := WriteMsg(conn, errMsg("no session bound")); err != nil {
					return err
				}
				continue
			}
			n := sess.nub
			if h := s.FaultHook; h != nil && sess.ck != nil && h(sess.id, n, req) {
				// Injected crash: the hook may have corrupted target
				// state through n, exactly as a mid-request panic would.
				n.Stats.RecoveredPanics.Add(1)
				s.rollback(sess)
				if err := WriteMsg(conn, rolledBack(req.Kind)); err != nil {
					return err
				}
				continue
			}
			sess.resumeCovered = false
			// Replies go through a buffer so a dispatch that panicked —
			// visible as a RecoveredPanics bump — can be answered with a
			// rollback error instead of its contained-panic reply: the
			// panic left the target in an unknown state, and nothing of
			// it may reach the wire.
			var buf bytes.Buffer
			n.mu.Lock()
			panics0 := n.Stats.RecoveredPanics.Load()
			done, derr := n.serveOneLocked(&buf, req)
			rolled := sess.ck != nil && !done && n.Stats.RecoveredPanics.Load() != panics0
			n.mu.Unlock()
			if derr != nil {
				return derr
			}
			if rolled {
				s.rollback(sess)
				if err := WriteMsg(conn, rolledBack(req.Kind)); err != nil {
					return err
				}
				continue
			}
			if _, err := conn.Write(buf.Bytes()); err != nil {
				return err
			}
			if done {
				// MKill leaves the nub dead: drop the session from the
				// pool. MDetach leaves it stopped for a later attach.
				if sess.id != 0 && s.dead(sess) {
					s.remove(sess)
					sess = nil
				}
				return nil
			}
			s.logRequest(sess, req)
		}
	}
}

// readRequest mirrors Nub.readRequest for the service's connection
// loop: unbounded idle wait for a frame's first byte, ReadTimeout for
// the rest. Slow reads are charged to the bound session, if any.
func (s *Service) readRequest(conn net.Conn, sess *session) (*Msg, error) {
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return nil, err
	}
	timeout := s.ReadTimeout
	if timeout == 0 {
		timeout = DefaultServeTimeout
	}
	armed := timeout > 0 && conn.SetReadDeadline(time.Now().Add(timeout)) == nil
	m, err := readMsgRest(first[0], conn)
	if armed {
		_ = conn.SetReadDeadline(time.Time{})
		if err != nil && isTimeout(err) {
			if sess != nil {
				sess.nub.Stats.SlowReads.Add(1)
			}
			err = fmt.Errorf("nub: dropped slow read after %v: %w", timeout, err)
		}
	}
	return m, err
}

// announce sends the MSession reply and the session's pending stop
// event — the session flavor of the single-target welcome handshake.
func (s *Service) announce(conn net.Conn, sess *session) error {
	n := sess.nub
	n.mu.Lock()
	defer n.mu.Unlock()
	rep := &Msg{
		Kind: MSession,
		Val:  sess.id,
		Addr: n.ctxAddr,
		Size: uint32(n.P.A.Context().Size),
		Data: []byte(n.P.A.Name()),
	}
	if err := WriteMsg(conn, rep); err != nil {
		return err
	}
	n.Stats.MsgsSent.Add(1)
	if n.pending == nil {
		n.resumeAndLatch(n.runAndLatch)
	}
	if err := WriteMsg(conn, n.pending); err != nil {
		return err
	}
	n.Stats.MsgsSent.Add(1)
	return nil
}

// openSession spawns the named program into a new session and returns
// it with its binding token held. A non-nil reply is the error to send
// instead.
func (s *Service) openSession(name string) (*session, *Msg) {
	s.mu.Lock()
	spec, ok := s.programs[name]
	if !ok {
		s.mu.Unlock()
		return nil, errMsg("unknown program %q", name)
	}
	if rep := s.makeRoomLocked(); rep != nil {
		s.mu.Unlock()
		return nil, rep
	}
	s.nextID++
	id := s.nextID
	p := machine.New(spec.arch, spec.text, spec.data, spec.entry)
	s.share.Adopt(p)
	n := New(p)
	sess := &session{id: id, program: name, nub: n, busy: make(chan struct{}, 1), replayIdx: -1}
	// The binding token starts held: the opener is the first driver.
	s.sessions[id] = sess
	if len(s.sessions) > s.peak {
		s.peak = len(s.sessions)
	}
	s.mu.Unlock()
	s.opened.Add(1)
	n.Start()
	s.armCheckpoints(sess)
	return sess, nil
}

// makeRoomLocked evicts idle sessions (least recently used first) until
// the pool is under its cap, passivating each victim before it dies.
// Called with s.mu held; drops and retakes it around the eviction work.
// A non-nil reply is the error to send (the pool is full of bound
// sessions).
func (s *Service) makeRoomLocked() *Msg {
	cap := s.MaxSessions
	if cap <= 0 {
		cap = DefaultMaxSessions
	}
	for len(s.sessions) >= cap {
		victim := s.idleLRULocked()
		if victim == nil {
			return errMsg("service at capacity (%d sessions, none idle)", cap)
		}
		delete(s.sessions, victim.id)
		s.mu.Unlock()
		s.passivate(victim)
		s.kill(victim)
		s.retire(victim)
		s.evicted.Add(1)
		s.mu.Lock()
	}
	return nil
}

// idleLRULocked finds the least recently used idle session and takes
// its binding token, or returns nil when every session is bound.
// Callers hold s.mu.
func (s *Service) idleLRULocked() *session {
	var best *session
	for _, sess := range s.sessions {
		select {
		case <-sess.busy:
		default:
			continue
		}
		if best == nil || sess.lastUsed < best.lastUsed {
			if best != nil {
				best.busy <- struct{}{}
			}
			best = sess
		} else {
			sess.busy <- struct{}{}
		}
	}
	return best
}

// attachSession binds to the identified live session, waiting briefly
// for its token if a dying connection still holds it. A session that
// was evicted from the pool but passivated is resurrected transparently
// — the caller cannot tell it ever left.
func (s *Service) attachSession(id uint64) (*session, *Msg) {
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return s.resurrect(id)
	}
	wait := s.AttachWait
	if wait <= 0 {
		wait = defaultAttachWait
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-sess.busy:
	case <-t.C:
		return nil, errMsg("session %d is busy", id)
	case <-s.closeCh:
		return nil, errMsg("service shutting down")
	}
	// The session may have been killed and removed while we waited.
	s.mu.Lock()
	live := s.sessions[id] == sess
	s.mu.Unlock()
	if !live {
		return nil, errMsg("no such session %d", id)
	}
	return sess, nil
}

// dead reports whether the session's target has terminated.
func (s *Service) dead(sess *session) bool {
	sess.nub.mu.Lock()
	defer sess.nub.mu.Unlock()
	return sess.nub.dead
}

// kill terminates a session's target. Callers hold its binding token.
func (s *Service) kill(sess *session) {
	n := sess.nub
	n.mu.Lock()
	n.dead = true
	n.P.State = machine.StateExited
	n.mu.Unlock()
}

// remove drops a session from the pool and retires it. Callers hold its
// binding token (which is never released again: the session is gone).
func (s *Service) remove(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	s.retire(sess)
}

// retire finalizes a session leaving the pool: its decode products are
// published to the shared cache — end of life is maximal warmth, and
// the first publisher of a content key wins — and its request count is
// folded into the service aggregate.
func (s *Service) retire(sess *session) {
	s.share.Publish(sess.nub.P)
	s.closedRequests.Add(sess.nub.Stats.RoundTrips.Load())
}

// passivate serializes an evicted session's checkpoint into the
// bounded passivated store (and the spill directory, if configured) so
// a later attach can resurrect it. Called with the victim's binding
// token held and its nub still alive; a dead target has nothing worth
// preserving.
func (s *Service) passivate(victim *session) {
	if s.CheckpointInterval < 0 || victim.id == 0 {
		return
	}
	n := victim.nub
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		return
	}
	ck := n.checkpointLocked()
	pend := cloneMsg(n.pending)
	n.mu.Unlock()
	blob := encodeCheckpoint(victim.program, ck, pend)
	max := s.MaxPassivated
	if max <= 0 {
		max = DefaultMaxPassivated
	}
	s.mu.Lock()
	s.passiveSeq++
	s.passive[victim.id] = &passiveRec{seq: s.passiveSeq, blob: blob}
	for len(s.passive) > max {
		var oldest *passiveRec
		var oldestID uint64
		for id, rec := range s.passive {
			if oldest == nil || rec.seq < oldest.seq {
				oldest, oldestID = rec, id
			}
		}
		delete(s.passive, oldestID)
	}
	s.mu.Unlock()
	if dir := s.PassivateDir; dir != "" {
		_ = os.WriteFile(passivePath(dir, victim.id), blob, 0o600)
	}
	s.passivated.Add(1)
}

// resurrect rebuilds a passivated session from its stored checkpoint
// and re-inserts it into the pool with the binding token held — the
// transparent half of crash-only eviction: attaching to an evicted
// session is indistinguishable from attaching to a live one.
func (s *Service) resurrect(id uint64) (*session, *Msg) {
	blob := s.takePassivated(id)
	if blob == nil {
		return nil, errMsg("no such session %d", id)
	}
	sc, err := decodeCheckpoint(blob)
	if err != nil {
		return nil, errMsg("session %d: stored checkpoint corrupt: %v", id, err)
	}
	p, err := machine.FromCheckpoint(sc.ck)
	if err != nil {
		return nil, errMsg("session %d: %v", id, err)
	}
	s.share.Adopt(p)
	n := New(p)
	// The nub is not yet reachable from anywhere: restore its debug
	// state directly, no locks needed.
	n.planted = make(map[uint32][]byte, len(sc.ck.Planted))
	for addr, old := range sc.ck.Planted {
		n.planted[addr] = append([]byte(nil), old...)
	}
	n.pending = sc.pending
	sess := &session{id: id, program: sc.program, nub: n, busy: make(chan struct{}, 1), replayIdx: -1}
	s.mu.Lock()
	if s.sessions[id] != nil {
		// A concurrent attach resurrected it first; bind to that one.
		s.mu.Unlock()
		return s.attachSession(id)
	}
	if rep := s.makeRoomLocked(); rep != nil {
		s.mu.Unlock()
		return nil, rep
	}
	s.sessions[id] = sess
	if len(s.sessions) > s.peak {
		s.peak = len(s.sessions)
	}
	s.mu.Unlock()
	s.replay(sess, sc.ck.Events)
	s.armCheckpoints(sess)
	s.resurrected.Add(1)
	return sess, nil
}

// takePassivated removes and returns session id's stored checkpoint,
// falling back to the spill directory when the bounded in-memory store
// has already dropped it.
func (s *Service) takePassivated(id uint64) []byte {
	s.mu.Lock()
	rec := s.passive[id]
	delete(s.passive, id)
	s.mu.Unlock()
	if rec != nil {
		return rec.blob
	}
	if dir := s.PassivateDir; dir != "" {
		if blob, err := os.ReadFile(passivePath(dir, id)); err == nil {
			return blob
		}
	}
	return nil
}

// dropPassivated discards session id's stored checkpoint, memory and
// disk both — the close path's guarantee that a closed session stays
// closed.
func (s *Service) dropPassivated(id uint64) {
	s.mu.Lock()
	delete(s.passive, id)
	s.mu.Unlock()
	if dir := s.PassivateDir; dir != "" && id != 0 {
		_ = os.Remove(passivePath(dir, id))
	}
}

func passivePath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("session-%d.ck", id))
}

// PassivateIdle evicts up to max idle sessions (least recently used
// first), passivating each. It returns how many it evicted — the
// forcing lever chaos tests use to prove a session survives eviction
// mid-conversation.
func (s *Service) PassivateIdle(max int) int {
	evicted := 0
	for evicted < max {
		s.mu.Lock()
		victim := s.idleLRULocked()
		if victim == nil {
			s.mu.Unlock()
			break
		}
		delete(s.sessions, victim.id)
		s.mu.Unlock()
		s.passivate(victim)
		s.kill(victim)
		s.retire(victim)
		s.evicted.Add(1)
		evicted++
	}
	return evicted
}

// armCheckpoints turns on crash-only protection for a session: dirty
// tracking on every segment, the paced auto-checkpoint callback inside
// Run, and a baseline checkpoint so rollback is possible from the very
// first request. Called with the binding token held, after the target
// reached its first stop.
func (s *Service) armCheckpoints(sess *session) {
	every := s.CheckpointInterval
	if every < 0 {
		return
	}
	if every == 0 {
		every = machine.DefaultCheckpointInterval
	}
	p := sess.nub.P
	p.EnableCheckpoints()
	p.SetAutoCheckpoint(every, func() { s.autoCheckpoint(sess) })
	s.refreshCheckpoint(sess)
}

// refreshCheckpoint takes a fresh between-requests checkpoint and
// empties the event log.
func (s *Service) refreshCheckpoint(sess *session) {
	n := sess.nub
	n.mu.Lock()
	ck := n.checkpointLocked()
	pend := cloneMsg(n.pending)
	n.mu.Unlock()
	sess.ck, sess.ckPending, sess.ckLog = ck, pend, nil
}

// autoCheckpoint is the pacing callback Run fires every
// CheckpointInterval instructions. It runs with the nub's lock held,
// between fused blocks, with process state fully committed — so it
// forks the checkpoint directly and rebases the event log: a mid-run
// checkpoint is reached from itself by a bare resume (EvResume), plus
// whatever events were still outstanding if it fired mid-replay.
func (s *Service) autoCheckpoint(sess *session) {
	n := sess.nub
	ck := n.checkpointLocked()
	log := []machine.Event{{Kind: machine.EvResume}}
	if sess.replayIdx >= 0 && sess.replayIdx+1 <= len(sess.replayLog) {
		log = append(log, sess.replayLog[sess.replayIdx+1:]...)
	}
	sess.ck, sess.ckPending, sess.ckLog = ck, cloneMsg(n.pending), log
	sess.resumeCovered = true
}

// rollback rewinds a session to its last checkpoint and replays the
// logged inputs accepted since — the crash-only answer to a request
// that panicked mid-flight: the session returns to exactly the state
// the failed request saw, so the client may safely retry it.
func (s *Service) rollback(sess *session) {
	n := sess.nub
	events := sess.ckLog
	if err := n.RestoreCheckpoint(sess.ck, cloneMsg(sess.ckPending)); err != nil {
		// Unreachable today: the checkpoint came from this very
		// process. If the shape ever diverges, the session is
		// unsalvageable — kill it rather than serve corrupted state.
		s.kill(sess)
		return
	}
	s.replay(sess, events)
	s.rollbacks.Add(1)
}

// replay re-applies an event log through the nub's own handlers.
// replayLog/replayIdx are live during the walk so a mid-replay
// auto-checkpoint can rebase onto the events that still remain.
func (s *Service) replay(sess *session, events []machine.Event) {
	sess.replayLog = events
	for i := range events {
		sess.replayIdx = i
		sess.nub.ReplayEvent(events[i])
	}
	sess.replayLog, sess.replayIdx = nil, -1
}

// logRequest appends a served request's replayable mirror to the
// session's event log, refreshing the checkpoint when the log grows
// past maxCkLog. A resume an auto-checkpoint already covered with its
// EvResume is not logged a second time.
func (s *Service) logRequest(sess *session, req *Msg) {
	if sess.ck == nil {
		return
	}
	if sess.resumeCovered && (req.Kind == MContinue || req.Kind == MStepInst) {
		return
	}
	sess.ckLog = appendEvents(sess.ckLog, req)
	if len(sess.ckLog) > maxCkLog {
		s.refreshCheckpoint(sess)
	}
}

// appendEvents mirrors one request into replay events. Only mutating
// requests are logged — fetches and stats change nothing, and failed
// stores replay into the same failure, so logging unconditionally is
// still deterministic. Batch envelopes log their members.
func appendEvents(log []machine.Event, req *Msg) []machine.Event {
	switch req.Kind {
	case MStoreInt:
		return append(log, machine.Event{Kind: machine.EvStoreInt, Space: req.Space, Addr: req.Addr, Size: req.Size, Val: req.Val})
	case MStoreFloat:
		return append(log, machine.Event{Kind: machine.EvStoreFloat, Space: req.Space, Addr: req.Addr, Size: req.Size, Val: req.Val})
	case MStoreBytes:
		return append(log, machine.Event{Kind: machine.EvStoreBytes, Space: req.Space, Addr: req.Addr, Size: req.Size, Data: append([]byte(nil), req.Data...)})
	case MPlantStore:
		return append(log, machine.Event{Kind: machine.EvPlant, Space: req.Space, Addr: req.Addr, Size: req.Size, Data: append([]byte(nil), req.Data...)})
	case MUnplantStore:
		return append(log, machine.Event{Kind: machine.EvUnplant, Space: req.Space, Addr: req.Addr, Size: req.Size})
	case MContinue:
		return append(log, machine.Event{Kind: machine.EvContinue})
	case MStepInst:
		return append(log, machine.Event{Kind: machine.EvStep})
	case MBatch:
		subs, err := DecodeBatch(req)
		if err != nil {
			return log
		}
		for _, sub := range subs {
			log = appendEvents(log, sub)
		}
		return log
	default:
		// Fetches, stats, liveness probes: nothing to replay.
		return log
	}
}

// cloneMsg deep-copies a message so a checkpoint's pending event cannot
// alias a buffer a later request mutates.
func cloneMsg(m *Msg) *Msg {
	if m == nil {
		return nil
	}
	c := *m
	c.Data = append([]byte(nil), m.Data...)
	return &c
}

// rolledBack builds the retryable error reply for a crashed request.
func rolledBack(kind MsgKind) *Msg {
	return &Msg{
		Kind: MError,
		Code: CodeRolledBack,
		Data: []byte(fmt.Sprintf("nub: %v crashed mid-request; session rolled back to its last checkpoint", kind)),
	}
}

// statsReply builds the MServiceStatsReply body — a ServiceStatsReport
// through the shared wire-body codec. Clients built for the original
// eight-value body read a prefix of it (see wirebody.go).
func (s *Service) statsReply(sess *session) *Msg {
	s.mu.Lock()
	live := int64(len(s.sessions))
	peak := int64(s.peak)
	var total int64
	for _, t := range s.sessions {
		total += t.nub.Stats.RoundTrips.Load()
	}
	s.mu.Unlock()
	total += s.closedRequests.Load()
	if s.legacy != nil {
		total += s.legacy.nub.Stats.RoundTrips.Load()
	}
	hits, misses := s.share.Stats()
	var bound int64
	if sess != nil {
		bound = sess.nub.Stats.RoundTrips.Load()
	}
	return &Msg{Kind: MServiceStatsReply, Data: encodeServiceStats(ServiceStatsReport{
		Live: live, Peak: peak, Evicted: s.evicted.Load(), Opened: s.opened.Load(),
		SharedHits: hits, SharedMisses: misses,
		SessionRequests: bound, TotalRequests: total,
		Passivated: s.passivated.Load(), Resurrected: s.resurrected.Load(),
		Rollbacks: s.rollbacks.Load(),
	})}
}

// Sessions reports how many sessions are live (for tests).
func (s *Service) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// ServeListener accepts connections until the listener closes or
// Shutdown is called, serving each on its own goroutine — the
// concurrent successor of Nub.ServeListener's one-at-a-time loop.
func (s *Service) ServeListener(l net.Listener) {
	s.lnMu.Lock()
	if s.closing {
		s.lnMu.Unlock()
		_ = l.Close()
		return
	}
	s.listener = l
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.lnMu.Lock()
		if s.closing {
			s.lnMu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.lnMu.Unlock()
		go func() {
			defer s.wg.Done()
			_ = s.Serve(conn)
			_ = conn.Close()
			s.lnMu.Lock()
			delete(s.conns, conn)
			s.lnMu.Unlock()
		}()
	}
}

// Shutdown drains the service: the listener closes, every idle
// connection's read deadline is expired so its goroutine unblocks,
// in-flight requests finish and write their replies, and Shutdown
// returns only when every connection goroutine has exited. Session
// state is preserved — shutdown severs the endpoint, it does not kill
// targets.
func (s *Service) Shutdown() {
	s.lnMu.Lock()
	if !s.closing {
		s.closing = true
		close(s.closeCh)
	}
	l := s.listener
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.lnMu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.wg.Wait()
}
