package nub

import (
	"testing"

	"ldb/internal/arch"
	"ldb/internal/arch/mips"
	"ldb/internal/machine"
)

// FuzzCheckpointDecode feeds arbitrary bytes to the passivated-session
// decoder. The contract under fuzzing: for any input the decoder
// returns a checkpoint or an error — it never panics, never allocates
// an attacker-declared amount of memory, and anything it does accept
// must also survive process resurrection without panicking. This is the
// restorer's half of the crash-only bargain: a corrupted spill file or
// a hostile blob costs one failed attach, never the service.
func FuzzCheckpointDecode(f *testing.F) {
	a := mips.Little
	as := mips.NewAsm(a)
	as.Break(arch.TrapPause)
	as.LI(mips.T0, int32(machine.DataBase))
	as.LI(mips.T0+1, 42)
	as.I(mips.OpSw, mips.T0+1, mips.T0, 0)
	as.LI(mips.V0, arch.SysExit)
	as.LI(mips.A0, 0)
	as.Syscall()
	code, _, err := as.Finish()
	if err != nil {
		f.Fatal(err)
	}
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.Start()
	ck := n.Checkpoint()
	ck.Events = []machine.Event{
		{Kind: machine.EvStoreInt, Space: 'd', Addr: machine.DataBase, Size: 4, Val: 7},
		{Kind: machine.EvContinue},
	}
	blob := encodeCheckpoint("mips", ck, n.pending)

	// Seeds: a real blob, truncations at structure boundaries, a flipped
	// magic, a lying count, bare magic, and junk.
	f.Add(blob)
	for _, cut := range []int{0, len(ckMagic), len(ckMagic) + 4, len(blob) / 4, len(blob) / 2, len(blob) - 1} {
		f.Add(blob[:cut])
	}
	mut := append([]byte(nil), blob...)
	mut[2] ^= 0xff
	f.Add(mut)
	lie := append([]byte(nil), blob...)
	lie[len(ckMagic)] = 0xff
	lie[len(ckMagic)+3] = 0x7f
	f.Add(lie)
	f.Add([]byte(ckMagic))
	f.Add([]byte{0x41, 0x42, 0x43})

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := decodeCheckpoint(data)
		if err != nil {
			return
		}
		// Whatever decodes must also resurrect or refuse cleanly.
		q, err := machine.FromCheckpoint(sc.ck)
		if err != nil {
			return
		}
		// And the resurrected process must serve a checkpoint again.
		q.TakeCheckpoint()
	})
}
