package nub

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"ldb/internal/amem"
	"ldb/internal/arch"
	"ldb/internal/arch/mips"
	"ldb/internal/machine"
)

// FuzzServe feeds arbitrary bytes to a serving nub over an in-memory
// connection. The contract under fuzzing: for any input the nub either
// replies or closes the connection — it never panics, never hangs, and
// never allocates a peer-declared amount of memory. The target program
// exits quickly, so inputs that happen to decode as MContinue finish
// fast too.
func FuzzServe(f *testing.F) {
	a := mips.Little
	as := mips.NewAsm(a)
	as.Break(arch.TrapPause)
	as.LI(mips.V0, arch.SysExit)
	as.LI(mips.A0, 0)
	as.Syscall()
	code, _, err := as.Finish()
	if err != nil {
		f.Fatal(err)
	}

	// Seeds: nothing, a well-formed session, a truncated header, an
	// oversize frame, and plain junk.
	f.Add([]byte{})
	var valid bytes.Buffer
	_ = WriteMsg(&valid, &Msg{Kind: MFetchInt, Space: byte(amem.Data), Addr: machine.DataBase, Size: 4})
	_ = WriteMsg(&valid, &Msg{Kind: MListPlanted})
	_ = WriteMsg(&valid, &Msg{Kind: MStepInst})
	_ = WriteMsg(&valid, &Msg{Kind: MContinue})
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:7])
	var oversize bytes.Buffer
	_ = WriteMsg(&oversize, &Msg{Kind: MFetchBytes, Space: byte(amem.Data)})
	ob := oversize.Bytes()
	ob[27], ob[28], ob[29], ob[30] = 0xff, 0xff, 0xff, 0x7f
	f.Add(ob)
	f.Add([]byte{0xff, 0x00, 0x41, 0x41, 0x41})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := machine.New(a, code, make([]byte, 64), machine.TextBase)
		n := New(p)
		// A short deadline so a partial frame at the end of the input
		// terminates the connection quickly instead of idling out the
		// fuzz budget.
		n.ReadTimeout = 200 * time.Millisecond
		n.Start()
		srv, cli := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = n.Serve(srv)
			_ = srv.Close()
		}()
		go func() { _, _ = io.Copy(io.Discard, cli) }()
		_ = cli.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_, _ = cli.Write(data)
		_ = cli.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("nub hung on %d bytes of fuzz input", len(data))
		}
	})
}
