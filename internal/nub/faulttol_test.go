package nub

import (
	"errors"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ldb/internal/amem"
	"ldb/internal/arch/mips"
	"ldb/internal/machine"
)

// --- satellite regressions -------------------------------------------------

// TestListPlantedSorted plants breakpoints in descending address order
// and checks the wire reply comes back ascending and identical across
// calls — map iteration order must not leak onto the wire.
func TestListPlantedSorted(t *testing.T) {
	a := mips.Little
	c, _, _, err := Launch(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	trap := []byte{1, 2, 3, 4}
	addrs := []uint32{machine.TextBase + 24, machine.TextBase + 16, machine.TextBase + 8, machine.TextBase}
	for _, addr := range addrs {
		if err := c.PlantStore(addr, trap); err != nil {
			t.Fatal(err)
		}
	}
	first, err := c.ListPlanted()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(addrs) {
		t.Fatalf("listed %d records, want %d", len(first), len(addrs))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Addr >= first[i].Addr {
			t.Fatalf("records not ascending: %#x before %#x", first[i-1].Addr, first[i].Addr)
		}
	}
	second, err := c.ListPlanted()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two listings differ:\n%v\n%v", first, second)
	}
}

// TestIntSizeBounds: the machine's word is 32 bits, so an 8-byte
// integer store would silently drop the high half if the nub accepted
// it. Both directions must error, and a rejected store must not touch
// memory.
func TestIntSizeBounds(t *testing.T) {
	a := mips.Little
	c, _, p, err := Launch(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.StoreInt(amem.Data, machine.DataBase, 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	err = c.StoreInt(amem.Data, machine.DataBase, 8, 0xdeadbeefcafef00d)
	if err == nil || !strings.Contains(err.Error(), "size 8") {
		t.Fatalf("8-byte store: want size error, got %v", err)
	}
	v, f := p.Load(machine.DataBase, 4)
	if f != nil || v != 0x11223344 {
		t.Fatalf("memory after rejected store = %#x, %v; want original value intact", v, f)
	}
	if _, err := c.FetchInt(amem.Data, machine.DataBase, 8); err == nil || !strings.Contains(err.Error(), "size 8") {
		t.Fatalf("8-byte fetch: want size error, got %v", err)
	}
}

// TestCacheRangesAtAddressSpaceTop: a cached range abutting 0xFFFFFFFF
// ends at 1<<32, which used to wrap to 0 in uint32 arithmetic and turn
// every comparison against it inside out.
func TestCacheRangesAtAddressSpaceTop(t *testing.T) {
	c := newMemCache()
	top := uint32(0xFFFFFFF0)
	c.insert(amem.Data, top, []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})

	if b, ok := c.lookup(amem.Data, 0xFFFFFFFC, 4); !ok || b[0] != 12 {
		t.Fatalf("lookup of last word: ok=%v b=%v", ok, b)
	}
	if _, ok := c.lookup(amem.Data, 0xFFFFFFFC, 8); ok {
		t.Fatal("lookup past the top of the address space succeeded")
	}

	// A patch fully inside the range must update in place.
	c.patch(amem.Data, 0xFFFFFFFC, []byte{0xaa, 0xbb, 0xcc, 0xdd})
	if b, ok := c.lookup(amem.Data, 0xFFFFFFFC, 4); !ok || b[0] != 0xaa {
		t.Fatalf("patch at the top: ok=%v b=%v", ok, b)
	}

	// Adjacent insert below must coalesce, not be treated as disjoint.
	c.insert(amem.Data, top-4, []byte{9, 9, 9, 9})
	if b, ok := c.lookup(amem.Data, top-4, 8); !ok || b[4] != 0 {
		t.Fatalf("merge across %#x: ok=%v b=%v", top, ok, b)
	}

	// Invalidation overlapping the top range must evict it.
	c.invalidate(amem.Data, 0xFFFFFFFE, 2)
	if _, ok := c.lookup(amem.Data, top, 4); ok {
		t.Fatal("range survived an overlapping invalidation at the top")
	}
}

// TestQuirkRangeAtAddressSpaceTop: a context area near 0xFFFFFFFF makes
// the quirk-range bounds exceed 32 bits; uint32 sums would wrap and
// misclassify float accesses on both sides of the boundary.
func TestQuirkRangeAtAddressSpaceTop(t *testing.T) {
	a := mips.Big
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	n := New(p)
	n.ctxAddr = 0xFFFFFF00
	lo, hi, ok := n.quirkRange()
	if !ok {
		t.Fatal("mipsbe context has no quirk range")
	}
	if lo < uint64(n.ctxAddr) || hi <= lo {
		t.Fatalf("quirk range wrapped: lo=%#x hi=%#x", lo, hi)
	}
	l := a.Context()
	wantHi := uint64(n.ctxAddr) + uint64(l.FRegOffs[len(l.FRegOffs)-1]+l.FRegSize)
	if hi != wantHi {
		t.Fatalf("hi = %#x, want %#x", hi, wantHi)
	}
}

// TestConnectRejectsUnknownArch: a welcome naming an architecture the
// client has no layout for must fail the handshake, not leave a client
// with a nil byte order behind.
func TestConnectRejectsUnknownArch(t *testing.T) {
	cl, srv := net.Pipe()
	go func() {
		WriteMsg(srv, &Msg{Kind: MWelcome, Addr: 0x1000, Size: 64, Data: []byte("z80")})
		WriteMsg(srv, &Msg{Kind: MEvent})
		srv.Close()
	}()
	_, err := Connect(cl)
	if err == nil || !strings.Contains(err.Error(), `unknown architecture "z80"`) {
		t.Fatalf("Connect = %v, want unknown-architecture error", err)
	}
}

// --- deadlines -------------------------------------------------------------

// deadNub is a server that completes the handshake and then never
// answers another request — the shape of a hung or wedged nub.
func deadNub(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				WriteMsg(conn, &Msg{Kind: MWelcome, Addr: 0x1000, Size: 64, Data: []byte("mips")})
				WriteMsg(conn, &Msg{Kind: MEvent, Addr: 0x1000})
				io.Copy(io.Discard, conn) // swallow requests forever
			}(conn)
		}
	}()
	return l.Addr().String(), func() { l.Close() }
}

// TestDeadNubDeadline: every client operation against a wedged nub must
// error within the configured deadline — never hang.
func TestDeadNubDeadline(t *testing.T) {
	addr, stop := deadNub(t)
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := Connect(conn)
	if err != nil {
		t.Fatal(err)
	}
	const timeout = 150 * time.Millisecond
	c.SetTimeout(timeout)
	c.SetRetries(1)

	ops := []struct {
		name string
		run  func() error
	}{
		{"FetchInt", func() error { _, err := c.FetchInt(amem.Data, 0x1000, 4); return err }},
		{"StoreInt", func() error { return c.StoreInt(amem.Data, 0x1000, 4, 1) }},
		{"FetchBytes", func() error { _, err := c.FetchBytes(amem.Data, 0x1000, 8); return err }},
		{"ListPlanted", func() error { _, err := c.ListPlanted(); return err }},
		{"Continue", func() error { _, err := c.Continue(); return err }},
	}
	for _, op := range ops {
		start := time.Now()
		err := op.run()
		elapsed := time.Since(start)
		if err == nil {
			t.Fatalf("%s against a dead nub succeeded", op.name)
		}
		if !IsConnLost(err) {
			t.Fatalf("%s: error %v does not wrap ErrConnLost", op.name, err)
		}
		// Generous bound: one deadline plus reconnect overhead, far
		// below a hang.
		if elapsed > 10*timeout {
			t.Fatalf("%s took %v with a %v deadline", op.name, elapsed, timeout)
		}
	}
	if n := c.Stats().Timeouts; n < 1 {
		t.Fatalf("Timeouts = %d, want >= 1", n)
	}
}

// noDeadlineConn hides net.Conn's SetDeadline so the client must fall
// back to its watchdog timer.
type noDeadlineConn struct {
	conn net.Conn
}

func (c *noDeadlineConn) Read(p []byte) (int, error)  { return c.conn.Read(p) }
func (c *noDeadlineConn) Write(p []byte) (int, error) { return c.conn.Write(p) }
func (c *noDeadlineConn) Close() error                { return c.conn.Close() }

// TestWatchdogDeadline: connections without SetDeadline still get a
// deadline, enforced by severing the connection from a timer.
func TestWatchdogDeadline(t *testing.T) {
	addr, stop := deadNub(t)
	defer stop()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Connect(&noDeadlineConn{conn: raw})
	if err != nil {
		t.Fatal(err)
	}
	const timeout = 150 * time.Millisecond
	c.SetTimeout(timeout)
	c.SetRetries(1)
	start := time.Now()
	_, err = c.FetchInt(amem.Data, 0x1000, 4)
	elapsed := time.Since(start)
	if err == nil || !IsConnLost(err) {
		t.Fatalf("fetch = %v, want connection-lost error", err)
	}
	if elapsed > 10*timeout {
		t.Fatalf("watchdog took %v with a %v deadline", elapsed, timeout)
	}
	if n := c.Stats().Timeouts; n < 1 {
		t.Fatalf("Timeouts = %d, want >= 1", n)
	}
}

// --- reconnection ----------------------------------------------------------

// liveNub serves a real target over TCP, restartable on the same
// address.
func liveNub(t *testing.T) (n *Nub, addr string, stop func()) {
	t.Helper()
	a := mips.Little
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	n = New(p)
	n.Start()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go n.ServeListener(l)
	return n, l.Addr().String(), func() { l.Close() }
}

// TestTransparentReconnect: killing the connection under an idle client
// must be invisible — the next fetch redials, re-attaches, resyncs the
// planted breakpoints, and replays.
func TestTransparentReconnect(t *testing.T) {
	_, addr, stop := liveNub(t)
	defer stop()
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Caching off: every fetch must hit the wire, or the cache would
	// hide the dead connection from the test.
	c.SetCaching(false)
	bpAddr := uint32(machine.TextBase + 8)
	if err := c.PlantStore(bpAddr, []byte{0, 0, 0, 0xd}); err != nil {
		t.Fatal(err)
	}
	before, err := c.FetchInt(amem.Data, machine.DataBase, 4)
	if err != nil {
		t.Fatal(err)
	}

	conn.Close() // the wire dies under an idle client

	after, err := c.FetchInt(amem.Data, machine.DataBase+4, 4)
	if err != nil {
		t.Fatalf("fetch across a dead connection: %v", err)
	}
	_ = before
	_ = after
	s := c.Stats()
	if s.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", s.Reconnects)
	}
	if s.Replays < 1 {
		t.Fatalf("Replays = %d, want >= 1", s.Replays)
	}
	recs := c.ResyncedPlanted()
	found := false
	for _, r := range recs {
		if r.Addr == bpAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("resynced planted list %v does not contain %#x", recs, bpAddr)
	}
}

// TestReconnectGivesUp: with the listener gone, the reconnect cycle
// must fail within its bounded retries, not spin forever.
func TestReconnectGivesUp(t *testing.T) {
	_, addr, stop := liveNub(t)
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.SetCaching(false)
	if _, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil {
		t.Fatal(err)
	}
	stop() // no one is listening anymore
	conn.Close()
	c.SetRetries(2)
	start := time.Now()
	_, err = c.FetchInt(amem.Data, machine.DataBase+8, 4)
	elapsed := time.Since(start)
	if err == nil || !IsConnLost(err) {
		t.Fatalf("fetch = %v, want connection-lost error", err)
	}
	if !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("error %v does not report giving up", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("giving up took %v", elapsed)
	}
	if n := c.Stats().ReconnectFails; n != 1 {
		t.Fatalf("ReconnectFails = %d, want 1", n)
	}
}

// TestReconnectOutlastsListenerRestart: the nub's listener goes away
// and comes back on the same address while the client is mid-retry;
// the backoff loop must ride it out.
func TestReconnectOutlastsListenerRestart(t *testing.T) {
	n, addr, stop := liveNub(t)
	c, conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCaching(false)
	if _, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil {
		t.Fatal(err)
	}
	stop()
	conn.Close()
	c.SetRetries(10)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
		l, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("re-listen on %s: %v", addr, err)
			return
		}
		go n.ServeListener(l)
	}()
	if _, err := c.FetchInt(amem.Data, machine.DataBase, 4); err != nil {
		t.Fatalf("fetch across a listener restart: %v", err)
	}
	wg.Wait()
	if s := c.Stats(); s.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", s.Reconnects)
	}
}

// TestWelcomeMismatchRejected: redialing must not silently attach to a
// different target — the reconnect aborts on the first welcome that
// does not match the session's identity.
func TestWelcomeMismatchRejected(t *testing.T) {
	_, addrA, stopA := liveNub(t)
	defer stopA()

	// A second, different target on its own address.
	a := mips.Big
	p := machine.New(a, testProgram(t, a), make([]byte, 64), machine.TextBase)
	nB := New(p)
	nB.Start()
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lB.Close()
	go nB.ServeListener(lB)

	c, conn, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage the redial: it now lands on the wrong nub.
	c.SetRedial(func() (io.ReadWriter, error) { return net.Dial("tcp", lB.Addr().String()) })
	conn.Close()
	_, err = c.FetchInt(amem.Data, machine.DataBase, 4)
	if err == nil || !errors.Is(err, ErrWelcomeMismatch) {
		t.Fatalf("fetch = %v, want welcome-mismatch error", err)
	}
}

// storeDropRW delivers messages until it sees an MStoreInt header go
// out, then fails the next read — the precise window where the nub
// executed a store whose reply the debugger never saw.
type storeDropRW struct {
	conn net.Conn
	mu   sync.Mutex
	arm  bool
	dead bool
}

func (s *storeDropRW) Write(p []byte) (int, error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return 0, errors.New("storeDropRW: dead")
	}
	if len(p) > 0 && MsgKind(p[0]) == MStoreInt {
		s.arm = true
	}
	s.mu.Unlock()
	return s.conn.Write(p)
}

func (s *storeDropRW) Read(p []byte) (int, error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return 0, errors.New("storeDropRW: dead")
	}
	if s.arm {
		s.dead = true
		s.mu.Unlock()
		s.conn.Close()
		return 0, errors.New("storeDropRW: injected loss after store delivery")
	}
	s.mu.Unlock()
	return s.conn.Read(p)
}

func (s *storeDropRW) Close() error { return s.conn.Close() }

// TestDeliveredStoreIsNotReplayed: a store whose reply was lost may
// have executed; replaying it could double-apply. The client must
// reconnect but surface the error — and the store must indeed have
// reached memory exactly once.
func TestDeliveredStoreIsNotReplayed(t *testing.T) {
	_, addr, stop := liveNub(t)
	defer stop()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Connect(&storeDropRW{conn: raw})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRedial(func() (io.ReadWriter, error) { return net.Dial("tcp", addr) })
	c.SetBatching(false)

	err = c.StoreInt(amem.Data, machine.DataBase+16, 4, 0xfeedface)
	if err == nil {
		t.Fatal("store across the drop window succeeded; it must surface the ambiguity")
	}
	if !IsConnLost(err) || !strings.Contains(err.Error(), "not replayed") {
		t.Fatalf("store error = %v, want conn-lost error reporting the request was not replayed", err)
	}
	if s := c.Stats(); s.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", s.Reconnects)
	}
	// The nub did execute the store, exactly once; the reconnected
	// session reads it back.
	v, err := c.FetchInt(amem.Data, machine.DataBase+16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xfeedface {
		t.Fatalf("fetched %#x after the ambiguous store, want 0xfeedface", v)
	}
}
