package nub

import (
	"testing"

	"ldb/internal/arch/mips"
	"ldb/internal/machine"
)

// TestSimStatsRoundTrip fetches the simulator counters over the wire
// and checks they match the process they came from.
func TestSimStatsRoundTrip(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	c, _, p, err := Launch(a, code, make([]byte, 64), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SimStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != p.Steps {
		t.Errorf("wire reports %d steps, process ran %d", st.Steps, p.Steps)
	}
	want := p.SimStats()
	if st.Hits != want.Hits || st.Decodes != want.Decodes ||
		st.Invalidations != want.Invalidations || st.Fallbacks != want.Fallbacks {
		t.Errorf("wire reports %+v, process has %+v (steps %d)", st, want, p.Steps)
	}
	if st.Steps == 0 {
		t.Error("no instructions executed before the pause trap")
	}
}

// TestSimStatsLegacyNub pairs the client with a nub built before
// MSimStats existed: the request must be refused, not mishandled.
func TestSimStatsLegacyNub(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.LegacyProtocol = true
	n.Start()
	c, err := Pair(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SimStats(); err == nil {
		t.Fatal("legacy nub answered a simstats request")
	}
}
