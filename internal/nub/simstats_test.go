package nub

import (
	"encoding/binary"
	"fmt"
	"net"
	"testing"

	"ldb/internal/arch"

	"ldb/internal/arch/mips"
	"ldb/internal/machine"
)

// TestSimStatsRoundTrip fetches the simulator counters over the wire
// and checks they match the process they came from.
func TestSimStatsRoundTrip(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	c, _, p, err := Launch(a, code, make([]byte, 64), machine.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SimStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != p.Steps {
		t.Errorf("wire reports %d steps, process ran %d", st.Steps, p.Steps)
	}
	want := p.SimStats()
	if st.Hits != want.Hits || st.Decodes != want.Decodes ||
		st.Invalidations != want.Invalidations || st.Fallbacks != want.Fallbacks ||
		st.Blocks != want.Blocks || st.BlockInsns != want.BlockInsns {
		t.Errorf("wire reports %+v, process has %+v (steps %d)", st, want, p.Steps)
	}
	if st.Steps == 0 {
		t.Error("no instructions executed before the pause trap")
	}
	if st.Blocks == 0 || st.BlockInsns < st.Blocks {
		t.Errorf("fused run reports %d superblocks, %d fused instructions", st.Blocks, st.BlockInsns)
	}
}

// TestSimStatsPreFusionNub pairs the client with a nub from before
// superblock fusion: its simstats reply stops at Fallbacks (40 bytes).
// The client must accept the short body and report zero fusion
// counters, not reject the reply as malformed.
func TestSimStatsPreFusionNub(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			if err := WriteMsg(srvConn, &Msg{Kind: MWelcome, Data: []byte("mips"), Val: WelcomeBatch}); err != nil {
				return err
			}
			if err := WriteMsg(srvConn, &Msg{Kind: MEvent, Sig: int32(arch.SigTrap), Code: arch.TrapPause}); err != nil {
				return err
			}
			m, err := ReadMsg(srvConn)
			if err != nil {
				return err
			}
			if m.Kind != MSimStats {
				return fmt.Errorf("expected MSimStats, got %v", m.Kind)
			}
			body := make([]byte, 40)
			for i, v := range []uint64{100, 90, 8, 0, 2} {
				binary.LittleEndian.PutUint64(body[i*8:], v)
			}
			return WriteMsg(srvConn, &Msg{Kind: MSimStatsReply, Data: body})
		}()
	}()
	c, err := Connect(cliConn)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SimStats()
	if err != nil {
		t.Fatal(err)
	}
	if serr := <-done; serr != nil {
		t.Fatal(serr)
	}
	want := SimStatsReport{Steps: 100, Hits: 90, Decodes: 8, Fallbacks: 2}
	if st != want {
		t.Errorf("pre-fusion reply parsed as %+v, want %+v", st, want)
	}
}

// TestSimStatsLegacyNub pairs the client with a nub built before
// MSimStats existed: the request must be refused, not mishandled.
func TestSimStatsLegacyNub(t *testing.T) {
	a := mips.Little
	code := testProgram(t, a)
	p := machine.New(a, code, make([]byte, 64), machine.TextBase)
	n := New(p)
	n.LegacyProtocol = true
	n.Start()
	c, err := Pair(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SimStats(); err == nil {
		t.Fatal("legacy nub answered a simstats request")
	}
}
