package nub

import (
	"encoding/binary"
	"sort"

	"ldb/internal/amem"
)

// memCache is the client-side read-through cache over the wire's fetch
// requests. It holds raw target bytes keyed by address range, one range
// list per space (only code and data travel on the wire). Stores write
// through: the cached copy is patched or evicted before the store's
// reply even returns, so a read after a write always sees the write.
// A continue invalidates everything — the target ran, so no cached
// state may survive the resume.
//
// Values are byte images in the target's own order; FetchInt requests
// are served by decoding with the target's byte order, exactly what the
// nub's own Load does on the other end of the wire.
type memCache struct {
	spaces map[amem.Space][]cacheRange
	bytes  int // total cached payload, to bound growth
}

type cacheRange struct {
	addr uint32
	data []byte
}

// end is one past the last cached address, in uint64: a range abutting
// 0xFFFFFFFF ends at 1<<32, which uint32 arithmetic would wrap to 0
// and turn every comparison against it inside out.
func (r cacheRange) end() uint64 { return uint64(r.addr) + uint64(len(r.data)) }

// maxCacheBytes bounds the cache; past it the whole cache is dropped
// rather than managed — a debugger's working set never gets near it.
const maxCacheBytes = 4 << 20

func newMemCache() *memCache {
	return &memCache{spaces: make(map[amem.Space][]cacheRange)}
}

// lookup returns the cached bytes for [addr, addr+n) if some single
// range holds them all.
func (c *memCache) lookup(space amem.Space, addr uint32, n int) ([]byte, bool) {
	ranges := c.spaces[space]
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].end() > uint64(addr) })
	if i == len(ranges) || ranges[i].addr > addr || uint64(addr)+uint64(n) > ranges[i].end() {
		return nil, false
	}
	off := addr - ranges[i].addr
	return ranges[i].data[off : off+uint32(n)], true
}

// insert records freshly fetched (or freshly stored) bytes, coalescing
// with overlapping and adjacent ranges so coverage grows into contiguous
// runs instead of fragmenting.
func (c *memCache) insert(space amem.Space, addr uint32, data []byte) {
	if len(data) == 0 {
		return
	}
	if c.bytes+len(data) > maxCacheBytes {
		c.reset()
	}
	nr := cacheRange{addr: addr, data: append([]byte(nil), data...)}
	ranges := c.spaces[space]
	var merged []cacheRange
	for _, r := range ranges {
		switch {
		case r.end() < uint64(nr.addr) || uint64(r.addr) > nr.end():
			merged = append(merged, r) // disjoint, not even adjacent
		default:
			// Overlapping or adjacent: fold r into nr, with nr's bytes
			// winning where they overlap (they are newer).
			lo := min(r.addr, nr.addr)
			hi := max(r.end(), nr.end())
			buf := make([]byte, hi-uint64(lo))
			copy(buf[r.addr-lo:], r.data)
			copy(buf[nr.addr-lo:], nr.data)
			nr = cacheRange{addr: lo, data: buf}
		}
	}
	merged = append(merged, nr)
	sort.Slice(merged, func(i, j int) bool { return merged[i].addr < merged[j].addr })
	c.spaces[space] = merged
	c.recount()
}

// patch applies a store to the cached copy: ranges fully covering the
// write are updated in place; ranges partially overlapping it are
// evicted (correct and simpler than splitting).
func (c *memCache) patch(space amem.Space, addr uint32, data []byte) {
	if len(data) == 0 {
		return
	}
	end := uint64(addr) + uint64(len(data))
	ranges := c.spaces[space]
	var kept []cacheRange
	for _, r := range ranges {
		switch {
		case r.end() <= uint64(addr) || uint64(r.addr) >= end:
			kept = append(kept, r)
		case r.addr <= addr && r.end() >= end:
			copy(r.data[addr-r.addr:], data)
			kept = append(kept, r)
		default:
			// partial overlap: evict
		}
	}
	c.spaces[space] = kept
	c.recount()
}

// invalidate evicts every range overlapping [addr, addr+n).
func (c *memCache) invalidate(space amem.Space, addr uint32, n int) {
	end := uint64(addr) + uint64(n)
	ranges := c.spaces[space]
	var kept []cacheRange
	for _, r := range ranges {
		if r.end() <= uint64(addr) || uint64(r.addr) >= end {
			kept = append(kept, r)
		}
	}
	c.spaces[space] = kept
	c.recount()
}

// reset drops everything — called when the target resumes.
func (c *memCache) reset() {
	c.spaces = make(map[amem.Space][]cacheRange)
	c.bytes = 0
}

func (c *memCache) recount() {
	c.bytes = 0
	//ldb:allow detstate commutative sum: the total is the same in any iteration order
	for _, ranges := range c.spaces {
		for _, r := range ranges {
			c.bytes += len(r.data)
		}
	}
}

// serveInt decodes a cached integer in the target's byte order. Sizes
// past the wire's 4-byte word are never served: the nub rejects them,
// and the cache must not succeed where the wire would error.
func (c *memCache) serveInt(order binary.ByteOrder, space amem.Space, addr uint32, size int) (uint64, bool) {
	if order == nil || size <= 0 || size > 4 {
		return 0, false
	}
	b, ok := c.lookup(space, addr, size)
	if !ok {
		return 0, false
	}
	return amem.ReadInt(order, b), true
}
