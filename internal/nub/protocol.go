// Package nub implements ldb's debug nub and the little-endian
// communication protocol between ldb and the nub (§4.2 of the paper).
//
// The nub is loaded with the target program (here: attached to the
// simulated process); at startup it gets control from the pause trap in
// the startup code, and thereafter a signal handler gets control when
// the target faults or hits a breakpoint. The nub notifies ldb of the
// signal — passing a signal number, an associated code, and a context
// holding the registers — then services fetch and store requests until
// told to continue execution, to terminate, or to break the connection.
// When a connection breaks, even by a debugger crash, the nub preserves
// the state of the target program and waits for a new connection.
//
// Deliberately, the protocol does not mention breakpoints or
// single-stepping (§6): breakpoints are implemented entirely in ldb
// using fetches and stores.
package nub

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MsgKind identifies a protocol message.
type MsgKind uint8

// Requests (debugger → nub) and replies/events (nub → debugger).
const (
	// requests
	MHello MsgKind = iota + 1
	MFetchInt
	MStoreInt
	MFetchFloat
	MStoreFloat
	MFetchBytes
	MStoreBytes
	MContinue
	MKill
	MDetach
	// §7.1's protocol enrichment: stores used only for planting
	// breakpoints, so the nub can report to a NEW debugger the
	// instructions overwritten by a lost one.
	MPlantStore
	MUnplantStore
	MListPlanted
	// replies and events
	MWelcome
	MValue
	MFValue
	MBytes
	MOK
	MError
	MEvent
	MExited
	MPlanted
)

func (k MsgKind) String() string {
	names := map[MsgKind]string{
		MHello: "hello", MFetchInt: "fetchint", MStoreInt: "storeint",
		MFetchFloat: "fetchfloat", MStoreFloat: "storefloat",
		MFetchBytes: "fetchbytes", MStoreBytes: "storebytes",
		MContinue: "continue", MKill: "kill", MDetach: "detach",
		MPlantStore: "plantstore", MUnplantStore: "unplantstore",
		MListPlanted: "listplanted", MPlanted: "planted",
		MWelcome: "welcome", MValue: "value", MFValue: "fvalue",
		MBytes: "bytes", MOK: "ok", MError: "error",
		MEvent: "event", MExited: "exited",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// Msg is one protocol message. All integer fields travel little-endian
// regardless of either machine's byte order; the protocol has been used
// on all combinations of host and target byte orders (§4.2).
type Msg struct {
	Kind  MsgKind
	Space byte   // 'c' or 'd' for memory requests
	Size  uint32 // access size
	Addr  uint32
	Val   uint64 // integer value or float bits
	Code  int32  // signal code / error code / exit status
	Sig   int32  // signal number in events
	Data  []byte // bytes payload; arch name in Welcome
}

// maxDataLen bounds a message's byte payload.
const maxDataLen = 1 << 20

// WriteMsg encodes m to w in the little-endian wire format.
func WriteMsg(w io.Writer, m *Msg) error {
	if len(m.Data) > maxDataLen {
		return fmt.Errorf("nub: message payload too large (%d)", len(m.Data))
	}
	var hdr [27]byte
	hdr[0] = byte(m.Kind)
	hdr[1] = m.Space
	binary.LittleEndian.PutUint32(hdr[2:], m.Size)
	binary.LittleEndian.PutUint32(hdr[6:], m.Addr)
	binary.LittleEndian.PutUint64(hdr[10:], m.Val)
	binary.LittleEndian.PutUint32(hdr[18:], uint32(m.Code))
	binary.LittleEndian.PutUint32(hdr[22:], uint32(m.Sig))
	hdr[26] = 0 // reserved
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(m.Data)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	if len(m.Data) > 0 {
		if _, err := w.Write(m.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadMsg decodes one message from r.
func ReadMsg(r io.Reader) (*Msg, error) {
	var hdr [27]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	m := &Msg{
		Kind:  MsgKind(hdr[0]),
		Space: hdr[1],
		Size:  binary.LittleEndian.Uint32(hdr[2:]),
		Addr:  binary.LittleEndian.Uint32(hdr[6:]),
		Val:   binary.LittleEndian.Uint64(hdr[10:]),
		Code:  int32(binary.LittleEndian.Uint32(hdr[18:])),
		Sig:   int32(binary.LittleEndian.Uint32(hdr[22:])),
	}
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	dlen := binary.LittleEndian.Uint32(n[:])
	if dlen > maxDataLen {
		return nil, fmt.Errorf("nub: message payload too large (%d)", dlen)
	}
	if dlen > 0 {
		m.Data = make([]byte, dlen)
		if _, err := io.ReadFull(r, m.Data); err != nil {
			return nil, err
		}
	}
	return m, nil
}
